#include "fleet/fleet.h"

#include <gtest/gtest.h>

#include <chrono>
#include <utility>
#include <vector>

#include "cleaning/dedup.h"
#include "datagen/hospital.h"
#include "distributed/shard_merge.h"
#include "errorgen/injector.h"

namespace mlnclean {
namespace {

struct ServingCase {
  Workload wl;
  DirtyDataset dd;
  std::vector<Dataset> batches;
};

ServingCase MakeServingCase(uint64_t seed, size_t num_batches) {
  HospitalConfig config;
  config.num_hospitals = 30;
  config.num_measures = 10;
  Workload wl = *MakeHospitalWorkload(config);
  ErrorSpec spec;
  spec.error_rate = 0.05;
  spec.seed = seed;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  std::vector<Dataset> batches = SplitIntoBatches(dd.dirty, num_batches);
  return ServingCase{std::move(wl), std::move(dd), std::move(batches)};
}

CleaningOptions ServingOptions() {
  CleaningOptions options;
  options.agp_threshold = 3;
  return options;
}

void ExpectSameReport(const CleaningReport& a, const CleaningReport& b) {
  ASSERT_EQ(a.agp.size(), b.agp.size());
  for (size_t i = 0; i < a.agp.size(); ++i) {
    EXPECT_EQ(a.agp[i].abnormal_key, b.agp[i].abnormal_key);
    EXPECT_EQ(a.agp[i].abnormal_tuples, b.agp[i].abnormal_tuples);
    EXPECT_EQ(a.agp[i].target_key, b.agp[i].target_key);
    EXPECT_EQ(a.agp[i].merged, b.agp[i].merged);
  }
  ASSERT_EQ(a.rsc.size(), b.rsc.size());
  for (size_t i = 0; i < a.rsc.size(); ++i) {
    EXPECT_EQ(a.rsc[i].winner_values, b.rsc[i].winner_values);
    EXPECT_EQ(a.rsc[i].loser_values, b.rsc[i].loser_values);
    EXPECT_EQ(a.rsc[i].affected_tuples, b.rsc[i].affected_tuples);
  }
  ASSERT_EQ(a.fscr.size(), b.fscr.size());
  for (size_t i = 0; i < a.fscr.size(); ++i) {
    EXPECT_EQ(a.fscr[i].tuple, b.fscr[i].tuple);
    EXPECT_EQ(a.fscr[i].conflict_attrs, b.fscr[i].conflict_attrs);
    EXPECT_EQ(a.fscr[i].fused, b.fscr[i].fused);
    EXPECT_EQ(a.fscr[i].f_score, b.fscr[i].f_score);
  }
  EXPECT_EQ(a.duplicates, b.duplicates);
}

ShardRouter MakeRouter(const Dataset& reference, size_t num_shards) {
  ShardRouterOptions ropts;
  ropts.num_shards = num_shards;
  return *ShardRouter::Build(reference, ropts);
}

// The fleet determinism contract, part 1: a 1-shard fleet is
// bit-identical to a plain CleanServer over the same model, which is in
// turn bit-identical to cold engine runs (reuse off).
TEST(CleanFleetTest, OneShardFleetMatchesPlainServerAndColdEngine) {
  ServingCase c = MakeServingCase(41, 6);
  CleaningOptions options = ServingOptions();
  CleanModel model = *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);

  PoolExecutor pool(4);
  FleetOptions fopts;
  fopts.executor = &pool;
  fopts.max_concurrent_sessions = 4;
  fopts.queue_capacity = c.batches.size();
  CleanFleet fleet =
      *CleanFleet::Create(model, MakeRouter(c.dd.dirty, 1), fopts);
  ASSERT_EQ(fleet.num_shards(), 1u);

  ServerOptions sopts;
  sopts.executor = &pool;
  sopts.max_concurrent_sessions = 4;
  sopts.queue_capacity = c.batches.size();
  CleanServer server = *CleanServer::Create(model, sopts);

  std::vector<FleetTicket> fleet_tickets;
  std::vector<CleanTicket> server_tickets;
  for (const Dataset& batch : c.batches) {
    fleet_tickets.push_back(*fleet.Submit(batch));
    server_tickets.push_back(*server.Submit(batch));
  }
  CleaningEngine cold(options);
  for (size_t i = 0; i < c.batches.size(); ++i) {
    auto via_fleet = fleet_tickets[i].Take();
    ASSERT_TRUE(via_fleet.ok()) << via_fleet.status().ToString();
    auto via_server = server_tickets[i].Take();
    ASSERT_TRUE(via_server.ok()) << via_server.status().ToString();
    auto reference = cold.Clean(c.batches[i], c.wl.rules);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(via_fleet->cleaned, via_server->cleaned) << "batch " << i;
    EXPECT_EQ(via_fleet->deduped, via_server->deduped) << "batch " << i;
    ExpectSameReport(via_fleet->report, via_server->report);
    EXPECT_EQ(via_fleet->cleaned, reference->cleaned) << "batch " << i;
    EXPECT_EQ(via_fleet->deduped, reference->deduped) << "batch " << i;
    ExpectSameReport(via_fleet->report, reference->report);
  }
}

// Part 2 of the contract: same 1-shard identity with weight reuse on
// (warmed, read-only store) and parallel stage internals — at 1 and 4
// server threads.
TEST(CleanFleetTest, OneShardReuseFleetMatchesWarmRunsAtAnyThreadCount) {
  ServingCase c = MakeServingCase(43, 6);
  PoolExecutor pool(4);
  CleaningOptions options = ServingOptions();
  options.executor = &pool;
  options.num_threads = 2;
  CleanModel model = *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);
  ASSERT_TRUE(model.Warm(c.batches[0]).ok());

  SessionOptions reuse;
  reuse.reuse_model_weights = true;

  std::vector<CleanResult> reference;
  for (const Dataset& batch : c.batches) {
    reference.push_back(*model.Clean(batch, reuse));
  }

  for (size_t fleet_threads : {size_t{1}, size_t{4}}) {
    PoolExecutor fleet_pool(fleet_threads);
    FleetOptions fopts;
    fopts.executor = &fleet_pool;
    fopts.max_concurrent_sessions = fleet_threads;
    fopts.queue_capacity = c.batches.size();
    CleanFleet fleet =
        *CleanFleet::Create(model, MakeRouter(c.dd.dirty, 1), fopts);

    std::vector<FleetTicket> tickets;
    for (const Dataset& batch : c.batches) {
      tickets.push_back(*fleet.Submit(batch, reuse));
    }
    for (size_t i = 0; i < tickets.size(); ++i) {
      auto served = tickets[i].Take();
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      EXPECT_EQ(served->cleaned, reference[i].cleaned)
          << "batch " << i << " threads " << fleet_threads;
      EXPECT_EQ(served->deduped, reference[i].deduped)
          << "batch " << i << " threads " << fleet_threads;
      ExpectSameReport(served->report, reference[i].report);
    }
  }
}

// A 2-shard fleet is the staged protocol run by hand: route, run every
// shard to kLearn, Eq. 6 merge, resume to kFscr, id-remap merge in shard
// order, dedup. The fleet must reproduce that orchestration exactly.
TEST(CleanFleetTest, TwoShardFleetMatchesManualStagedOrchestration) {
  ServingCase c = MakeServingCase(47, 3);
  CleaningOptions options = ServingOptions();
  CleanModel model = *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);
  ShardRouter router = MakeRouter(c.dd.dirty, 2);

  PoolExecutor pool(4);
  FleetOptions fopts;
  fopts.executor = &pool;
  fopts.queue_capacity = 16;
  CleanFleet fleet = *CleanFleet::Create(model, router, fopts);

  for (size_t b = 0; b < c.batches.size(); ++b) {
    const Dataset& batch = c.batches[b];

    // Manual orchestration (sequential, no server involved).
    ShardedBatch sharded = *router.Shard(batch);
    std::vector<CleanSession> sessions;
    std::vector<size_t> active;
    for (size_t s = 0; s < sharded.shards.size(); ++s) {
      if (sharded.mapping[s].empty()) continue;
      active.push_back(s);
      sessions.push_back(model.NewSession(sharded.shards[s]));
    }
    for (CleanSession& session : sessions) {
      ASSERT_TRUE(session.RunUntil(Stage::kLearn).ok());
    }
    if (sessions.size() > 1) {
      std::vector<CleanSession*> ptrs;
      for (CleanSession& session : sessions) ptrs.push_back(&session);
      ASSERT_TRUE(model.AdjustWeightsAcross(ptrs).ok());
    }
    for (CleanSession& session : sessions) {
      ASSERT_TRUE(session.RunUntil(Stage::kFscr).ok());
    }
    Dataset expected_cleaned = batch.Clone();
    const std::vector<size_t> shipped = ShippedDictSizes(batch);
    for (size_t i = 0; i < sessions.size(); ++i) {
      MergeShardRows(sessions[i].cleaned(), sharded.mapping[active[i]],
                     shipped, &expected_cleaned);
    }
    Dataset expected_deduped =
        model.options().remove_duplicates
            ? RemoveDuplicates(expected_cleaned, nullptr)
            : expected_cleaned;

    FleetTicket ticket = *fleet.Submit(batch);
    auto served = ticket.Take();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_EQ(served->cleaned, expected_cleaned) << "batch " << b;
    EXPECT_EQ(served->deduped, expected_deduped) << "batch " << b;
  }
}

// Multi-shard determinism: the same submissions produce bit-identical
// results across thread counts and with the packed wire hop on or off.
TEST(CleanFleetTest, MultiShardResultsAreDeterministicAcrossExecutorsAndShipping) {
  ServingCase c = MakeServingCase(53, 4);
  CleaningOptions options = ServingOptions();
  CleanModel model = *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);
  ShardRouter router = MakeRouter(c.dd.dirty, 3);

  struct Config {
    size_t threads;
    bool ship_packed;
  };
  std::vector<CleanResult> reference;
  for (const Config& config :
       {Config{1, false}, Config{4, false}, Config{4, true}}) {
    PoolExecutor pool(config.threads);
    FleetOptions fopts;
    fopts.executor = &pool;
    fopts.max_concurrent_sessions = config.threads;
    fopts.queue_capacity = 16;
    fopts.ship_packed = config.ship_packed;
    CleanFleet fleet = *CleanFleet::Create(model, router, fopts);

    std::vector<FleetTicket> tickets;
    for (const Dataset& batch : c.batches) {
      tickets.push_back(*fleet.Submit(batch));
    }
    for (size_t i = 0; i < tickets.size(); ++i) {
      auto served = tickets[i].Take();
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      if (reference.size() <= i) {
        reference.push_back(std::move(*served));
        continue;
      }
      EXPECT_EQ(served->cleaned, reference[i].cleaned)
          << "batch " << i << " threads " << config.threads << " packed "
          << config.ship_packed;
      EXPECT_EQ(served->deduped, reference[i].deduped)
          << "batch " << i << " threads " << config.threads << " packed "
          << config.ship_packed;
      ExpectSameReport(served->report, reference[i].report);
    }
  }
}

// Cancellation fans out: a token cancelled before (or while) the shard
// legs run takes the whole fleet ticket to kCancelled, and every shard
// leg reaches a terminal state (nothing leaks parked).
TEST(CleanFleetTest, CancellationPropagatesToEveryShard) {
  ServingCase c = MakeServingCase(59, 1);
  CleaningOptions options = ServingOptions();
  CleanModel model = *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);

  PoolExecutor pool(2);
  FleetOptions fopts;
  fopts.executor = &pool;
  fopts.queue_capacity = 8;
  CleanFleet fleet =
      *CleanFleet::Create(model, MakeRouter(c.dd.dirty, 2), fopts);

  SessionOptions opts;
  opts.cancel.RequestCancel();  // pre-cancelled: no shard does stage work
  auto ticket = fleet.Submit(c.dd.dirty, opts);
  ASSERT_TRUE(ticket.ok());
  EXPECT_TRUE(ticket->Wait().IsCancelled());
  EXPECT_FALSE(ticket->Take().ok());

  FleetStats stats = fleet.Stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 0u);
  // Every shard server drained its legs (no parked/queued remnants).
  for (const ServerStats& shard : stats.shards) {
    EXPECT_EQ(shard.queued, 0u);
    EXPECT_EQ(shard.running, 0u);
  }

  // Cancel via the fleet ticket instead of the caller's token handle.
  auto second = fleet.Submit(c.dd.dirty);
  ASSERT_TRUE(second.ok());
  second->Cancel();
  Status st = second->Wait();
  // The legs may have already passed every cancellation point; both
  // outcomes are legal, but the ticket must reach a terminal state.
  EXPECT_TRUE(st.ok() || st.IsCancelled()) << st.ToString();
}

// Deadlines fan out the same way: an already-expired deadline fails the
// fleet ticket with kDeadlineExceeded before any shard does stage work.
TEST(CleanFleetTest, ExpiredDeadlinePropagatesToEveryShard) {
  ServingCase c = MakeServingCase(61, 1);
  CleaningOptions options = ServingOptions();
  CleanModel model = *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);

  PoolExecutor pool(2);
  FleetOptions fopts;
  fopts.executor = &pool;
  fopts.queue_capacity = 8;
  CleanFleet fleet =
      *CleanFleet::Create(model, MakeRouter(c.dd.dirty, 2), fopts);

  SessionOptions opts;
  opts.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  auto ticket = fleet.Submit(c.dd.dirty, opts);
  ASSERT_TRUE(ticket.ok());
  EXPECT_TRUE(ticket->Wait().IsDeadlineExceeded());

  FleetStats stats = fleet.Stats();
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(CleanFleetTest, StatsCountTicketsAndRecordLatencies) {
  ServingCase c = MakeServingCase(67, 4);
  CleaningOptions options = ServingOptions();
  CleanModel model = *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);

  PoolExecutor pool(4);
  FleetOptions fopts;
  fopts.executor = &pool;
  fopts.max_concurrent_sessions = 4;
  fopts.queue_capacity = c.batches.size();
  CleanFleet fleet =
      *CleanFleet::Create(model, MakeRouter(c.dd.dirty, 2), fopts);

  std::vector<FleetTicket> tickets;
  for (const Dataset& batch : c.batches) {
    tickets.push_back(*fleet.Submit(batch));
  }
  for (FleetTicket& t : tickets) {
    ASSERT_TRUE(t.Wait().ok());
    EXPECT_TRUE(t.done());
  }

  FleetStats stats = fleet.Stats();
  EXPECT_EQ(stats.submitted, c.batches.size());
  EXPECT_EQ(stats.completed, c.batches.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.latency.samples, c.batches.size());
  EXPECT_GT(stats.latency.p50, 0.0);
  EXPECT_GE(stats.latency.p99, stats.latency.p50);
  EXPECT_GE(stats.latency.p999, stats.latency.p99);
  ASSERT_EQ(stats.shards.size(), 2u);
  size_t shard_completed = 0;
  for (const ServerStats& shard : stats.shards) {
    shard_completed += shard.completed;
    EXPECT_EQ(shard.queued, 0u);
    EXPECT_EQ(shard.running, 0u);
  }
  // Every fleet ticket resolved through staged shard legs (one terminal
  // count per non-empty shard leg; with 2 shards and 4 batches there are
  // at least 4 legs).
  EXPECT_GE(shard_completed, c.batches.size());
}

TEST(CleanFleetTest, CreateValidatesRouterSchemaAndExecutorList) {
  ServingCase c = MakeServingCase(71, 1);
  CleaningOptions options = ServingOptions();
  CleanModel model = *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);

  Dataset other = *Dataset::Make(*Schema::Make({"A", "B"}),
                                 {{"x", "y"}, {"u", "v"}});
  ShardRouterOptions ropts;
  ropts.num_shards = 1;
  ShardRouter mismatched = *ShardRouter::Build(other, ropts);
  EXPECT_FALSE(CleanFleet::Create(model, mismatched).ok());

  PoolExecutor pool(1);
  FleetOptions bad;
  bad.shard_executors = {&pool};  // router has 2 shards
  EXPECT_FALSE(
      CleanFleet::Create(model, MakeRouter(c.dd.dirty, 2), bad).ok());

  SessionOptions incremental;
  incremental.incremental = true;
  CleanFleet fleet = *CleanFleet::Create(model, MakeRouter(c.dd.dirty, 2));
  EXPECT_FALSE(fleet.Submit(c.dd.dirty, incremental).ok());
}

}  // namespace
}  // namespace mlnclean
