#include "fleet/shard_router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "datagen/hospital.h"
#include "errorgen/injector.h"

namespace mlnclean {
namespace {

Dataset RouterReference() {
  HospitalConfig config;
  config.num_hospitals = 30;
  config.num_measures = 10;
  Workload wl = *MakeHospitalWorkload(config);
  ErrorSpec spec;
  spec.error_rate = 0.05;
  spec.seed = 17;
  return InjectErrors(wl.clean, wl.rules, spec)->dirty;
}

TEST(ShardRouterTest, BuildIsDeterministicForASeed) {
  Dataset reference = RouterReference();
  ShardRouterOptions opts;
  opts.num_shards = 3;
  ShardRouter a = *ShardRouter::Build(reference, opts);
  ShardRouter b = *ShardRouter::Build(reference, opts);
  EXPECT_EQ(a.num_shards(), 3u);
  EXPECT_EQ(a.centroids(), b.centroids());
  EXPECT_EQ(*a.RouteRows(reference), *b.RouteRows(reference));
}

// The routing contract: shard assignment depends on row *values*, never
// on the accident of dictionary id assignment — a batch whose
// dictionaries interned the same values in a different order routes
// identically.
TEST(ShardRouterTest, RoutingIgnoresDictionaryIdPermutation) {
  Dataset reference = RouterReference();
  ShardRouterOptions opts;
  opts.num_shards = 4;
  ShardRouter router = *ShardRouter::Build(reference, opts);

  // Same rows, permuted ids: pre-intern every attribute's domain in
  // reverse first-appearance order, then append the same rows.
  Dataset permuted(reference.schema());
  for (AttrId a = 0; a < static_cast<AttrId>(reference.num_attrs()); ++a) {
    std::vector<Value> domain = reference.Domain(a);
    for (auto it = domain.rbegin(); it != domain.rend(); ++it) {
      permuted.InternValue(a, *it);
    }
  }
  for (size_t r = 0; r < reference.num_rows(); ++r) {
    ASSERT_TRUE(permuted.Append(reference.row(static_cast<TupleId>(r))).ok());
  }
  ASSERT_EQ(permuted, reference);  // same content...
  bool ids_differ = false;         // ...under a different id assignment
  for (size_t r = 0; r < reference.num_rows() && !ids_differ; ++r) {
    for (AttrId a = 0; a < static_cast<AttrId>(reference.num_attrs()); ++a) {
      if (reference.id_at(static_cast<TupleId>(r), a) !=
          permuted.id_at(static_cast<TupleId>(r), a)) {
        ids_differ = true;
        break;
      }
    }
  }
  ASSERT_TRUE(ids_differ);

  EXPECT_EQ(*router.RouteRows(reference), *router.RouteRows(permuted));
}

TEST(ShardRouterTest, EncodeDecodeRoundTripsAndRoutesIdentically) {
  Dataset reference = RouterReference();
  ShardRouterOptions opts;
  opts.num_shards = 3;
  opts.distance = DistanceMetric::kCosine;
  ShardRouter router = *ShardRouter::Build(reference, opts);

  const std::vector<uint8_t> image = router.Encode();
  ShardRouter decoded = *ShardRouter::Decode(image);
  EXPECT_EQ(decoded.num_shards(), router.num_shards());
  EXPECT_TRUE(decoded.schema() == router.schema());
  EXPECT_EQ(decoded.distance(), router.distance());
  EXPECT_EQ(decoded.centroids(), router.centroids());
  EXPECT_EQ(decoded.Encode(), image);  // byte-stable across round trips
  EXPECT_EQ(*decoded.RouteRows(reference), *router.RouteRows(reference));
}

TEST(ShardRouterTest, DecodeRejectsMalformedImages) {
  Dataset reference = RouterReference();
  ShardRouterOptions opts;
  opts.num_shards = 2;
  std::vector<uint8_t> image = ShardRouter::Build(reference, opts)->Encode();

  // Every strict prefix is a truncation, never a crash or a success.
  for (size_t len = 0; len < image.size(); ++len) {
    EXPECT_FALSE(ShardRouter::Decode(image.data(), len).ok()) << "len " << len;
  }
  // Trailing garbage.
  std::vector<uint8_t> padded = image;
  padded.push_back(0);
  EXPECT_FALSE(ShardRouter::Decode(padded).ok());
  // Bad magic.
  std::vector<uint8_t> magic = image;
  magic[0] ^= 0xFF;
  EXPECT_FALSE(ShardRouter::Decode(magic).ok());
  // Unknown metric (byte 8 is the metric field's low byte).
  std::vector<uint8_t> metric = image;
  metric[8] = 0x7F;
  EXPECT_FALSE(ShardRouter::Decode(metric).ok());
}

TEST(ShardRouterTest, ShardCoversEveryRowExactlyOnce) {
  Dataset reference = RouterReference();
  ShardRouterOptions opts;
  opts.num_shards = 3;
  ShardRouter router = *ShardRouter::Build(reference, opts);

  ShardedBatch sharded = *router.Shard(reference);
  ASSERT_EQ(sharded.shards.size(), 3u);
  ASSERT_EQ(sharded.mapping.size(), 3u);
  std::vector<TupleId> covered;
  for (size_t s = 0; s < 3; ++s) {
    ASSERT_EQ(sharded.shards[s].num_rows(), sharded.mapping[s].size());
    // Mapping preserves batch row order within a shard.
    ASSERT_TRUE(std::is_sorted(sharded.mapping[s].begin(),
                               sharded.mapping[s].end()));
    for (size_t local = 0; local < sharded.mapping[s].size(); ++local) {
      EXPECT_EQ(sharded.shards[s].row(static_cast<TupleId>(local)),
                reference.row(sharded.mapping[s][local]));
      covered.push_back(sharded.mapping[s][local]);
    }
  }
  std::sort(covered.begin(), covered.end());
  std::vector<TupleId> all(reference.num_rows());
  std::iota(all.begin(), all.end(), 0);
  EXPECT_EQ(covered, all);

  // The packed wire round trip ships value- and id-identical shards.
  ShardedBatch packed = *router.Shard(reference, /*ship_packed=*/true);
  EXPECT_EQ(packed.mapping, sharded.mapping);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(packed.shards[s], sharded.shards[s]);
    for (size_t local = 0; local < packed.mapping[s].size(); ++local) {
      for (AttrId a = 0; a < static_cast<AttrId>(reference.num_attrs()); ++a) {
        EXPECT_EQ(packed.shards[s].id_at(static_cast<TupleId>(local), a),
                  sharded.shards[s].id_at(static_cast<TupleId>(local), a));
      }
    }
  }
}

TEST(ShardRouterTest, ValidatesOptionsAndSchemas) {
  Dataset reference = RouterReference();
  ShardRouterOptions zero;
  zero.num_shards = 0;
  EXPECT_FALSE(ShardRouter::Build(reference, zero).ok());

  ShardRouterOptions too_many;
  too_many.num_shards = reference.num_rows() + 1;
  EXPECT_FALSE(ShardRouter::Build(reference, too_many).ok());

  ShardRouterOptions opts;
  opts.num_shards = 2;
  ShardRouter router = *ShardRouter::Build(reference, opts);
  Dataset other(*Schema::Make({"A", "B"}));
  EXPECT_FALSE(router.RouteRows(other).ok());
}

}  // namespace
}  // namespace mlnclean
