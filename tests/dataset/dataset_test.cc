#include "dataset/dataset.h"

#include <gtest/gtest.h>

namespace mlnclean {
namespace {

Dataset MakeSmall() {
  Schema s = *Schema::Make({"A", "B"});
  return *Dataset::Make(s, {{"x", "1"}, {"y", "2"}, {"x", "3"}});
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = MakeSmall();
  EXPECT_EQ(d.num_rows(), 3u);
  EXPECT_EQ(d.num_attrs(), 2u);
  EXPECT_EQ(d.num_cells(), 6u);
  EXPECT_EQ(d.at(0, 0), "x");
  EXPECT_EQ(d.at(2, 1), "3");
  EXPECT_EQ(d.row(1), (std::vector<Value>{"y", "2"}));
}

TEST(DatasetTest, SetMutatesCell) {
  Dataset d = MakeSmall();
  d.set(1, 0, "z");
  EXPECT_EQ(d.at(1, 0), "z");
}

TEST(DatasetTest, AppendChecksArity) {
  Dataset d = MakeSmall();
  EXPECT_TRUE(d.Append({"a", "b"}).ok());
  EXPECT_TRUE(d.Append({"only-one"}).IsInvalid());
  EXPECT_EQ(d.num_rows(), 4u);
}

TEST(DatasetTest, MakeRejectsBadRows) {
  Schema s = *Schema::Make({"A", "B"});
  auto r = Dataset::Make(s, {{"x", "1"}, {"bad"}});
  EXPECT_FALSE(r.ok());
}

TEST(DatasetTest, DomainFirstAppearanceOrder) {
  Dataset d = MakeSmall();
  EXPECT_EQ(d.Domain(0), (std::vector<Value>{"x", "y"}));
  EXPECT_EQ(d.Domain(1), (std::vector<Value>{"1", "2", "3"}));
}

TEST(DatasetTest, CloneIsDeep) {
  Dataset d = MakeSmall();
  Dataset copy = d.Clone();
  copy.set(0, 0, "changed");
  EXPECT_EQ(d.at(0, 0), "x");
  EXPECT_EQ(copy.at(0, 0), "changed");
}

TEST(DatasetTest, Equality) {
  EXPECT_EQ(MakeSmall(), MakeSmall());
  Dataset d = MakeSmall();
  d.set(0, 0, "q");
  EXPECT_FALSE(d == MakeSmall());
}

TEST(DatasetTest, CsvRoundTrip) {
  Dataset d = MakeSmall();
  CsvTable t = d.ToCsv();
  EXPECT_EQ(t.header, (std::vector<std::string>{"A", "B"}));
  auto back = Dataset::FromCsv(WriteCsv(t));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, d);
}

TEST(DatasetTest, FromCsvRejectsDuplicateHeader) {
  EXPECT_FALSE(Dataset::FromCsv("A,A\n1,2\n").ok());
}

TEST(DatasetTest, EmptyValueIsNull) {
  Schema s = *Schema::Make({"A"});
  Dataset d = *Dataset::Make(s, {{""}});
  EXPECT_EQ(d.at(0, 0), "");
}

}  // namespace
}  // namespace mlnclean
