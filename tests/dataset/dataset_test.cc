#include "dataset/dataset.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace mlnclean {
namespace {

Dataset MakeSmall() {
  Schema s = *Schema::Make({"A", "B"});
  return *Dataset::Make(s, {{"x", "1"}, {"y", "2"}, {"x", "3"}});
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = MakeSmall();
  EXPECT_EQ(d.num_rows(), 3u);
  EXPECT_EQ(d.num_attrs(), 2u);
  EXPECT_EQ(d.num_cells(), 6u);
  EXPECT_EQ(d.at(0, 0), "x");
  EXPECT_EQ(d.at(2, 1), "3");
  EXPECT_EQ(d.row(1), (std::vector<Value>{"y", "2"}));
}

TEST(DatasetTest, SetMutatesCell) {
  Dataset d = MakeSmall();
  d.set(1, 0, "z");
  EXPECT_EQ(d.at(1, 0), "z");
}

TEST(DatasetTest, AppendChecksArity) {
  Dataset d = MakeSmall();
  EXPECT_TRUE(d.Append({"a", "b"}).ok());
  EXPECT_TRUE(d.Append({"only-one"}).IsInvalid());
  EXPECT_EQ(d.num_rows(), 4u);
}

TEST(DatasetTest, MakeRejectsBadRows) {
  Schema s = *Schema::Make({"A", "B"});
  auto r = Dataset::Make(s, {{"x", "1"}, {"bad"}});
  EXPECT_FALSE(r.ok());
}

TEST(DatasetTest, DomainFirstAppearanceOrder) {
  Dataset d = MakeSmall();
  EXPECT_EQ(d.Domain(0), (std::vector<Value>{"x", "y"}));
  EXPECT_EQ(d.Domain(1), (std::vector<Value>{"1", "2", "3"}));
}

TEST(DatasetTest, CloneIsDeep) {
  Dataset d = MakeSmall();
  Dataset copy = d.Clone();
  copy.set(0, 0, "changed");
  EXPECT_EQ(d.at(0, 0), "x");
  EXPECT_EQ(copy.at(0, 0), "changed");
}

TEST(DatasetTest, Equality) {
  EXPECT_EQ(MakeSmall(), MakeSmall());
  Dataset d = MakeSmall();
  d.set(0, 0, "q");
  EXPECT_FALSE(d == MakeSmall());
}

TEST(DatasetTest, CsvRoundTrip) {
  Dataset d = MakeSmall();
  CsvTable t = d.ToCsv();
  EXPECT_EQ(t.header, (std::vector<std::string>{"A", "B"}));
  auto back = Dataset::FromCsv(WriteCsv(t));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, d);
}

TEST(DatasetTest, FromCsvRejectsDuplicateHeader) {
  EXPECT_FALSE(Dataset::FromCsv("A,A\n1,2\n").ok());
}

TEST(DatasetTest, FromCsvQuarantinesMalformedRows) {
  QuarantineReport q;
  auto d = Dataset::FromCsv("A,B\nx,1\nonly-one\ny,2\n", &q);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->num_rows(), 2u);
  EXPECT_EQ(d->at(1, 0), "y");
  ASSERT_EQ(q.rows.size(), 1u);
  EXPECT_EQ(q.rows[0].row_number, 2u);
  EXPECT_EQ(q.rows_kept, 2u);
  // Strict mode still fails the same input outright.
  EXPECT_FALSE(Dataset::FromCsv("A,B\nx,1\nonly-one\ny,2\n").ok());
}

TEST(DatasetTest, EmptyValueIsNull) {
  Schema s = *Schema::Make({"A"});
  Dataset d = *Dataset::Make(s, {{""}});
  EXPECT_EQ(d.at(0, 0), "");
  EXPECT_EQ(d.id_at(0, 0), kNullValueId);
}

TEST(DatasetTest, CsvRoundTripWithNullsAndDuplicates) {
  Schema s = *Schema::Make({"A", "B"});
  Dataset d = *Dataset::Make(
      s, {{"x", ""}, {"", "x"}, {"x", "x"}, {"", ""}, {"x", "y"}});
  auto back = Dataset::FromCsv(WriteCsv(d.ToCsv()));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, d);
  // Domains survive the round trip, NULL at its first-appearance rank.
  EXPECT_EQ(back->Domain(0), (std::vector<Value>{"x", ""}));
  EXPECT_EQ(back->Domain(1), (std::vector<Value>{"", "x", "y"}));
}

TEST(DatasetTest, DuplicateValuesShareOneId) {
  Dataset d = MakeSmall();  // column A = x, y, x
  EXPECT_EQ(d.id_at(0, 0), d.id_at(2, 0));
  EXPECT_NE(d.id_at(0, 0), d.id_at(1, 0));
  EXPECT_EQ(d.dict(0).size(), 3u);  // NULL + x + y
}

TEST(DatasetTest, SetWithNovelValueGrowsDictionary) {
  Dataset d = MakeSmall();
  const size_t before = d.dict(0).size();
  d.set(1, 0, "novel");
  EXPECT_EQ(d.dict(0).size(), before + 1);
  EXPECT_EQ(d.at(1, 0), "novel");
  // Setting an existing value reuses its id instead of growing.
  d.set(1, 0, "x");
  EXPECT_EQ(d.dict(0).size(), before + 1);
  EXPECT_EQ(d.id_at(1, 0), d.id_at(0, 0));
  // The overwritten value stays in the attribute's domain (the dictionary
  // never forgets), in first-appearance order.
  EXPECT_EQ(d.Domain(0), (std::vector<Value>{"x", "y", "novel"}));
}

TEST(DatasetTest, CloneSharesIdUniverse) {
  Dataset d = MakeSmall();
  Dataset copy = d.Clone();
  for (TupleId t = 0; t < 3; ++t) {
    for (AttrId a = 0; a < 2; ++a) {
      EXPECT_EQ(copy.id_at(t, a), d.id_at(t, a));
    }
  }
  // Writing an original id into the clone round-trips through strings.
  copy.set_id(1, 0, d.id_at(0, 0));
  EXPECT_EQ(copy.at(1, 0), "x");
  EXPECT_EQ(d.at(1, 0), "y");  // deep copy: the original is untouched
}

TEST(DatasetTest, EmptyLikeAndAppendRowFrom) {
  Dataset d = MakeSmall();
  Dataset out = Dataset::EmptyLike(d);
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_EQ(out.dict(0).size(), d.dict(0).size());
  out.AppendRowFrom(d, 2);
  out.AppendRowFrom(d, 0);
  EXPECT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.row(0), (std::vector<Value>{"x", "3"}));
  EXPECT_EQ(out.row(1), (std::vector<Value>{"x", "1"}));
  EXPECT_EQ(out.id_at(0, 0), d.id_at(2, 0));
}

TEST(DatasetTest, SliceSharesIdsAndClampsBounds) {
  Dataset d = MakeSmall();
  Dataset mid = d.Slice(1, 3);
  EXPECT_EQ(mid.num_rows(), 2u);
  EXPECT_EQ(mid.row(0), d.row(1));
  EXPECT_EQ(mid.id_at(0, 0), d.id_at(1, 0));  // dictionary-sharing copy
  // end past the table clamps; an empty or inverted range is empty.
  EXPECT_EQ(d.Slice(2, 100).num_rows(), 1u);
  EXPECT_EQ(d.Slice(1, 1).num_rows(), 0u);
  EXPECT_EQ(d.Slice(5, 2).num_rows(), 0u);
  EXPECT_EQ(d.Slice(0, 0).dict(0).size(), d.dict(0).size());
}

TEST(DatasetTest, EqualityIgnoresIdAssignment) {
  // Same content, different intern order: b's dictionary assigns different
  // ids than a's, but the tables are equal.
  Schema s = *Schema::Make({"A"});
  Dataset a = *Dataset::Make(s, {{"x"}, {"y"}});
  Dataset b = *Dataset::Make(s, {{"y"}, {"y"}});
  b.set(0, 0, "x");
  b.set(1, 0, "y");
  EXPECT_NE(a.id_at(0, 0), b.id_at(0, 0));
  EXPECT_TRUE(a == b);
}

// ---- packed codec -------------------------------------------------------

TEST(DatasetPackedTest, RoundTripPreservesValuesAndIds) {
  Schema s = *Schema::Make({"name", "city", "zip"});
  Dataset d = *Dataset::Make(s, {{"alice", "rome", "00100"},
                                 {"bob", "", "00100"},
                                 {"alice", "oslo", ""},
                                 {"", "rome", "00100"}});
  const std::vector<uint8_t> bytes = d.EncodePacked();
  auto decoded = Dataset::DecodePacked(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_TRUE(*decoded == d);
  // Id-identical, not just value-identical: the packed image preserves the
  // id universe (dictionaries rebuilt in id order, null ranks restored).
  for (TupleId t = 0; t < static_cast<TupleId>(d.num_rows()); ++t) {
    for (AttrId a = 0; a < static_cast<AttrId>(d.num_attrs()); ++a) {
      EXPECT_EQ(decoded->id_at(t, a), d.id_at(t, a));
    }
  }
  for (AttrId a = 0; a < static_cast<AttrId>(d.num_attrs()); ++a) {
    EXPECT_EQ(decoded->Domain(a), d.Domain(a)) << "attr " << a;
  }
}

TEST(DatasetPackedTest, EmptyAndZeroAttrTables) {
  Dataset empty(*Schema::Make({"A", "B"}));
  auto round = Dataset::DecodePacked(empty.EncodePacked());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->num_rows(), 0u);
  EXPECT_EQ(round->num_attrs(), 2u);
}

TEST(DatasetPackedTest, EncodeIsDeterministic) {
  Dataset d = MakeSmall();
  EXPECT_EQ(d.EncodePacked(), d.EncodePacked());
}

TEST(DatasetPackedTest, CompressesRepetitiveColumns) {
  Schema s = *Schema::Make({"state"});
  Dataset d(s);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(d.Append({i % 7 == 0 ? "AL" : "AK"}).ok());
  }
  // Raw ids would be 8000 bytes; low-cardinality columns should pack to
  // roughly a byte per cell.
  EXPECT_LT(d.EncodePacked().size(), 3000u);
}

TEST(DatasetPackedTest, TruncationAlwaysRejects) {
  Dataset d = MakeSmall();
  const std::vector<uint8_t> bytes = d.EncodePacked();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto r = Dataset::DecodePacked(bytes.data(), cut);
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_TRUE(r.status().IsInvalid()) << "cut=" << cut;
  }
}

TEST(DatasetPackedTest, CorruptionFuzzDecodesOrRejects) {
  Schema s = *Schema::Make({"A", "B"});
  Dataset d(s);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        d.Append({"v" + std::to_string(i % 9), std::to_string(i)}).ok());
  }
  const std::vector<uint8_t> bytes = d.EncodePacked();
  Rng rng(424242);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> corrupt = bytes;
    for (int flips = 1 + static_cast<int>(rng.NextIndex(8)); flips > 0; --flips) {
      corrupt[rng.NextIndex(corrupt.size())] ^=
          static_cast<uint8_t>(1 + rng.NextIndex(255));
    }
    // Must decode to *some* dataset or reject with kInvalid — never crash,
    // over-read (ASan job), or return an inconsistent table.
    auto r = Dataset::DecodePacked(corrupt);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsInvalid()) << r.status().message();
    } else {
      EXPECT_EQ(r->num_attrs(), r->schema().num_attrs());
    }
  }
}

}  // namespace
}  // namespace mlnclean
