#include "dataset/schema.h"

#include <gtest/gtest.h>

namespace mlnclean {
namespace {

TEST(SchemaTest, MakeAndLookup) {
  auto r = Schema::Make({"HN", "CT", "ST", "PN"});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Schema& s = *r;
  EXPECT_EQ(s.num_attrs(), 4u);
  EXPECT_EQ(s.name(0), "HN");
  EXPECT_EQ(s.name(3), "PN");
  EXPECT_EQ(*s.Find("CT"), 1);
  EXPECT_TRUE(s.Find("missing").status().IsNotFound());
}

TEST(SchemaTest, DuplicateNameRejected) {
  auto r = Schema::Make({"A", "B", "A"});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAlreadyExists());
}

TEST(SchemaTest, EmptyNameRejected) {
  EXPECT_TRUE(Schema::Make({"A", ""}).status().IsInvalid());
}

TEST(SchemaTest, Contains) {
  Schema s = *Schema::Make({"A", "B"});
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(1));
  EXPECT_FALSE(s.Contains(2));
  EXPECT_FALSE(s.Contains(-1));
}

TEST(SchemaTest, Equality) {
  Schema a = *Schema::Make({"A", "B"});
  Schema b = *Schema::Make({"A", "B"});
  Schema c = *Schema::Make({"B", "A"});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(SchemaTest, EmptySchemaAllowed) {
  auto r = Schema::Make({});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_attrs(), 0u);
}

}  // namespace
}  // namespace mlnclean
