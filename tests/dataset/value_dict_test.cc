#include "dataset/value_dict.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mlnclean {
namespace {

TEST(ValueDictTest, NullIsIdZeroFromConstruction) {
  ValueDict d;
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.value(kNullValueId), "");
  EXPECT_FALSE(d.null_used());
  EXPECT_EQ(d.Intern(""), kNullValueId);
  EXPECT_TRUE(d.null_used());
}

TEST(ValueDictTest, InternIsIdempotentAndDense) {
  ValueDict d;
  ValueId x = d.Intern("x");
  ValueId y = d.Intern("y");
  EXPECT_EQ(x, 1u);
  EXPECT_EQ(y, 2u);
  EXPECT_EQ(d.Intern("x"), x);
  EXPECT_EQ(d.Intern("y"), y);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.value(x), "x");
  EXPECT_EQ(d.value(y), "y");
}

TEST(ValueDictTest, FindDoesNotInsert) {
  ValueDict d;
  EXPECT_EQ(d.Find("missing"), kInvalidValueId);
  EXPECT_EQ(d.size(), 1u);
  ValueId x = d.Intern("x");
  EXPECT_EQ(d.Find("x"), x);
  EXPECT_EQ(d.Find(""), kNullValueId);
  // Find("") must not count as a null *use*.
  EXPECT_FALSE(d.null_used());
}

TEST(ValueDictTest, DomainOrdersNullAtFirstUse) {
  ValueDict d;
  d.Intern("x");
  d.Intern("");
  d.Intern("y");
  d.Intern("x");
  EXPECT_EQ(d.FirstAppearanceDomain(), (std::vector<Value>{"x", "", "y"}));
}

TEST(ValueDictTest, DomainOmitsUnusedNullAndHandlesEdges) {
  ValueDict no_null;
  no_null.Intern("a");
  no_null.Intern("b");
  EXPECT_EQ(no_null.FirstAppearanceDomain(), (std::vector<Value>{"a", "b"}));

  ValueDict null_first;
  null_first.Intern("");
  null_first.Intern("a");
  EXPECT_EQ(null_first.FirstAppearanceDomain(), (std::vector<Value>{"", "a"}));

  ValueDict null_last;
  null_last.Intern("a");
  null_last.Intern("");
  EXPECT_EQ(null_last.FirstAppearanceDomain(), (std::vector<Value>{"a", ""}));

  ValueDict only_null;
  only_null.Intern("");
  EXPECT_EQ(only_null.FirstAppearanceDomain(), (std::vector<Value>{""}));

  ValueDict empty;
  EXPECT_TRUE(empty.FirstAppearanceDomain().empty());
}

TEST(ValueDictTest, ReferencesSurviveGrowth) {
  ValueDict d;
  ValueId first = d.Intern("stable-value");
  const Value& ref = d.value(first);
  // Force several rehashes of the slot table and growth of the storage.
  for (int i = 0; i < 5000; ++i) {
    d.Intern("v" + std::to_string(i));
  }
  EXPECT_EQ(ref, "stable-value");
  EXPECT_EQ(d.Find("stable-value"), first);
  // Every id still resolves after rehashing.
  for (int i = 0; i < 5000; ++i) {
    std::string v = "v" + std::to_string(i);
    ValueId id = d.Find(v);
    ASSERT_NE(id, kInvalidValueId);
    EXPECT_EQ(d.value(id), v);
  }
}

}  // namespace
}  // namespace mlnclean
