#include "cleaning/agp.h"

#include <gtest/gtest.h>

#include "datagen/sample.h"

namespace mlnclean {
namespace {

struct SampleFixture {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  MlnIndex index = *MlnIndex::Build(dirty, rules);
  CleaningOptions options;
  DistanceFn dist = MakeDistanceFn(DistanceMetric::kLevenshtein);
};

TEST(AgpTest, PaperExampleMergesWithTauOne) {
  // Section 5.1.1: with τ = 1, G12, G22 and G31 are abnormal; G12 merges
  // into G11, G22 into G23, G31 into G32.
  SampleFixture f;
  f.options.agp_threshold = 1;
  CleaningReport report;
  RunAgpAll(&f.index, f.options, f.dist, &report);

  ASSERT_EQ(report.agp.size(), 3u);
  EXPECT_EQ(report.agp[0].abnormal_key, (std::vector<Value>{"DOTH"}));
  EXPECT_EQ(report.agp[0].target_key, (std::vector<Value>{"DOTHAN"}));
  EXPECT_TRUE(report.agp[0].merged);
  EXPECT_EQ(report.agp[1].abnormal_key, (std::vector<Value>{"2567638410"}));
  EXPECT_EQ(report.agp[1].target_key, (std::vector<Value>{"2567688400"}));
  EXPECT_EQ(report.agp[2].abnormal_key, (std::vector<Value>{"ELIZA", "DOTHAN"}));
  EXPECT_EQ(report.agp[2].target_key, (std::vector<Value>{"ELIZA", "BOAZ"}));

  // Post-merge shape: 2, 2, 1 groups.
  EXPECT_EQ(f.index.block(0).groups.size(), 2u);
  EXPECT_EQ(f.index.block(1).groups.size(), 2u);
  EXPECT_EQ(f.index.block(2).groups.size(), 1u);
  // The merged-in γ keeps its own values inside the target group.
  const Group& g11 = f.index.block(0).groups[*f.index.FindGroup(0, {"DOTHAN"})];
  ASSERT_EQ(g11.pieces.size(), 2u);
  EXPECT_EQ(g11.pieces[1].reason, (std::vector<Value>{"DOTH"}));
}

TEST(AgpTest, TauZeroDetectsNothing) {
  SampleFixture f;
  f.options.agp_threshold = 0;
  CleaningReport report;
  RunAgpAll(&f.index, f.options, f.dist, &report);
  EXPECT_TRUE(report.agp.empty());
  EXPECT_EQ(f.index.block(0).groups.size(), 3u);
}

TEST(AgpTest, LargeTauSwallowsEverythingIntoNothing) {
  // When every group is "abnormal" there is no normal group to merge
  // into: groups stay, records say merged = false.
  SampleFixture f;
  f.options.agp_threshold = 100;
  CleaningReport report;
  RunAgpAll(&f.index, f.options, f.dist, &report);
  EXPECT_EQ(report.agp.size(), 8u);  // all groups of all blocks
  for (const auto& rec : report.agp) {
    EXPECT_FALSE(rec.merged);
  }
  EXPECT_EQ(f.index.block(0).groups.size(), 3u);
}

TEST(AgpTest, DagCountsPieces) {
  SampleFixture f;
  f.options.agp_threshold = 1;
  CleaningReport report;
  RunAgpAll(&f.index, f.options, f.dist, &report);
  // Each abnormal group in the sample holds exactly one γ.
  EXPECT_EQ(report.NumDetectedAbnormalPieces(), 3u);
  EXPECT_EQ(report.NumDetectedAbnormalGroups(), 3u);
}

TEST(AgpTest, ThresholdTwoMergesMidSizeGroups) {
  SampleFixture f;
  f.options.agp_threshold = 2;
  CleaningReport report;
  RunAgpAll(&f.index, f.options, f.dist, &report);
  // B1: G11 (2 tuples) and G12 (1) are now abnormal; only G13 (3) is
  // normal, so both merge into it.
  EXPECT_EQ(f.index.block(0).groups.size(), 1u);
  EXPECT_EQ(f.index.block(0).groups[0].TupleCount(), 6u);
}

TEST(AgpTest, RecordsAffectedTuples) {
  SampleFixture f;
  f.options.agp_threshold = 1;
  CleaningReport report;
  RunAgpAll(&f.index, f.options, f.dist, &report);
  EXPECT_EQ(report.agp[0].abnormal_tuples, (std::vector<TupleId>{1}));  // t2
  EXPECT_EQ(report.agp[2].abnormal_tuples, (std::vector<TupleId>{2}));  // t3
}

TEST(AgpTest, NullReportIsAllowed) {
  SampleFixture f;
  f.options.agp_threshold = 1;
  RunAgpAll(&f.index, f.options, f.dist, nullptr);
  EXPECT_EQ(f.index.block(0).groups.size(), 2u);
}

}  // namespace
}  // namespace mlnclean
