#include "cleaning/options.h"

#include <gtest/gtest.h>

#include <limits>

namespace mlnclean {
namespace {

TEST(CleaningOptionsTest, DefaultsValidate) {
  CleaningOptions options;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(CleaningOptionsTest, ZeroFusionNodesRejected) {
  CleaningOptions options;
  options.max_fusion_nodes = 0;
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalid());
}

TEST(CleaningOptionsTest, HugeFusionNodesAccepted) {
  // The cap is a budget, not an allocation size: the maximum value must
  // validate (and simply never trip during search).
  CleaningOptions options;
  options.max_fusion_nodes = std::numeric_limits<size_t>::max();
  EXPECT_TRUE(options.Validate().ok());
}

TEST(CleaningOptionsTest, NegativeLearnerIterationsRejected) {
  CleaningOptions options;
  options.learner.max_iterations = -1;
  EXPECT_TRUE(options.Validate().IsInvalid());
}

TEST(CleaningOptionsTest, ZeroLearnerIterationsAccepted) {
  // 0 iterations = Eq. 4 priors with no Newton refinement; a valid config.
  CleaningOptions options;
  options.learner.max_iterations = 0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(CleaningOptionsTest, NegativeL2Rejected) {
  CleaningOptions options;
  options.learner.l2 = -1e-6;
  EXPECT_TRUE(options.Validate().IsInvalid());
}

TEST(CleaningOptionsTest, MinimalityDiscountBounds) {
  CleaningOptions options;
  options.fscr_minimality_discount = 0.0;  // would zero every repair
  EXPECT_TRUE(options.Validate().IsInvalid());
  options.fscr_minimality_discount = -0.5;
  EXPECT_TRUE(options.Validate().IsInvalid());
  options.fscr_minimality_discount = 1.5;  // would reward non-minimality
  EXPECT_TRUE(options.Validate().IsInvalid());
  options.fscr_minimality_discount = 1.0;  // disables the bias; valid
  EXPECT_TRUE(options.Validate().ok());
}

TEST(CleaningOptionsTest, ZeroAgpThresholdAccepted) {
  // τ = 0 disables abnormal-group detection rather than being an error.
  CleaningOptions options;
  options.agp_threshold = 0;
  EXPECT_TRUE(options.Validate().ok());
}

}  // namespace
}  // namespace mlnclean
