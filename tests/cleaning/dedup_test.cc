#include "cleaning/dedup.h"

#include <gtest/gtest.h>

namespace mlnclean {
namespace {

TEST(DedupTest, RemovesExactDuplicates) {
  Schema s = *Schema::Make({"A", "B"});
  Dataset d = *Dataset::Make(
      s, {{"x", "1"}, {"y", "2"}, {"x", "1"}, {"x", "1"}, {"z", "3"}});
  std::vector<std::pair<TupleId, TupleId>> removed;
  Dataset out = RemoveDuplicates(d, &removed);
  EXPECT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.row(0), (std::vector<Value>{"x", "1"}));
  EXPECT_EQ(out.row(1), (std::vector<Value>{"y", "2"}));
  EXPECT_EQ(out.row(2), (std::vector<Value>{"z", "3"}));
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_EQ(removed[0], (std::pair<TupleId, TupleId>{2, 0}));
  EXPECT_EQ(removed[1], (std::pair<TupleId, TupleId>{3, 0}));
}

TEST(DedupTest, NoDuplicatesNoChange) {
  Schema s = *Schema::Make({"A"});
  Dataset d = *Dataset::Make(s, {{"x"}, {"y"}});
  std::vector<std::pair<TupleId, TupleId>> removed;
  Dataset out = RemoveDuplicates(d, &removed);
  EXPECT_EQ(out, d);
  EXPECT_TRUE(removed.empty());
}

TEST(DedupTest, EmptyDataset) {
  Schema s = *Schema::Make({"A"});
  Dataset d(s);
  Dataset out = RemoveDuplicates(d, nullptr);
  EXPECT_EQ(out.num_rows(), 0u);
}

TEST(DedupTest, ValuesDifferingOnlyInOneAttrAreKept) {
  Schema s = *Schema::Make({"A", "B"});
  Dataset d = *Dataset::Make(s, {{"x", "1"}, {"x", "2"}});
  Dataset out = RemoveDuplicates(d, nullptr);
  EXPECT_EQ(out.num_rows(), 2u);
}

TEST(DedupTest, SeparatorInjectionDoesNotConfuseKeys) {
  // Values containing the internal separator must not collide.
  Schema s = *Schema::Make({"A", "B"});
  Dataset d = *Dataset::Make(s, {{"x\x1fy", "z"}, {"x", "\x1fy z"}});
  Dataset out = RemoveDuplicates(d, nullptr);
  // These two rows are different; a naive concatenation would merge them.
  EXPECT_EQ(out.num_rows(), 2u);
}

}  // namespace
}  // namespace mlnclean
