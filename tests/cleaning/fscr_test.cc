#include "cleaning/fscr.h"

#include <gtest/gtest.h>

#include "cleaning/agp.h"
#include "cleaning/rsc.h"
#include "datagen/sample.h"

namespace mlnclean {
namespace {

// Runs stage I on the paper sample and returns the prepared index.
struct StageOneFixture {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions options;
  MlnIndex index = *MlnIndex::Build(dirty, rules);

  StageOneFixture() {
    options.agp_threshold = 1;
    DistanceFn dist = MakeDistanceFn(options.distance);
    RunAgpAll(&index, options, dist, nullptr);
    index.LearnWeights();
    RunRscAll(&index, options, dist, nullptr);
  }
};

TEST(FscrTest, Example3TupleT3Fusion) {
  // Example 3: the fused version of t3 is
  // {HN: ELIZA, CT: BOAZ, ST: AL, PN: 2567688400}.
  StageOneFixture f;
  Dataset cleaned = f.dirty.Clone();
  CleaningReport report;
  RunFscr(f.dirty, f.rules, f.index, f.options, &cleaned, &report);
  EXPECT_EQ(cleaned.row(2),
            (std::vector<Value>{"ELIZA", "BOAZ", "AL", "2567688400"}));
}

TEST(FscrTest, WholeSampleMatchesGroundTruth) {
  StageOneFixture f;
  Dataset cleaned = f.dirty.Clone();
  RunFscr(f.dirty, f.rules, f.index, f.options, &cleaned, nullptr);
  EXPECT_EQ(cleaned, *SampleHospitalClean());
}

TEST(FscrTest, ConflictsDetectedOnT3) {
  StageOneFixture f;
  Dataset cleaned = f.dirty.Clone();
  CleaningReport report;
  RunFscr(f.dirty, f.rules, f.index, f.options, &cleaned, &report);
  ASSERT_EQ(report.fscr.size(), f.dirty.num_rows());
  // t3's versions disagree on CT (DOTHAN from B1 vs BOAZ from B3).
  const FscrRecord& t3 = report.fscr[2];
  ASSERT_EQ(t3.conflict_attrs.size(), 1u);
  EXPECT_EQ(t3.conflict_attrs[0], 1);  // CT
  EXPECT_TRUE(t3.fused);
  EXPECT_GT(t3.f_score, 0.0);
  // t1 has no conflicts.
  EXPECT_TRUE(report.fscr[0].conflict_attrs.empty());
  EXPECT_TRUE(report.fscr[0].fused);
}

TEST(FscrTest, TupleWithNoVersionsKeepsValues) {
  Schema s = *Schema::Make({"A", "B", "C"});
  Dataset d = *Dataset::Make(s, {{"x", "y", "z"}});
  RuleSet rules(s);
  rules.Add(*Constraint::MakeFd(s, {0}, {1}));
  // Build an index over an unrelated dataset so the tuple is uncovered.
  Dataset other = *Dataset::Make(s, {{"q", "r", "s"}});
  MlnIndex index = *MlnIndex::Build(other, rules);
  index.LearnWeights();
  // Hack: pretend `other`'s pieces cover no tuple of `d` by clearing them.
  index.block(0).groups.clear();
  index.ReindexBlock(0);
  Dataset cleaned = d.Clone();
  CleaningOptions options;
  CleaningReport report;
  RunFscr(d, rules, index, options, &cleaned, &report);
  EXPECT_EQ(cleaned, d);
  EXPECT_FALSE(report.fscr[0].fused);
}

TEST(FscrTest, FusionFailureLeavesTupleUntouched) {
  // Two rules whose only γs conflict irreconcilably for a tuple and the
  // blocks offer no substitute: the tuple keeps its dirty values
  // (Algorithm 2 line 4: tfmax starts as t).
  Schema s = *Schema::Make({"A", "B", "C"});
  RuleSet rules(s);
  rules.Add(*Constraint::MakeFd(s, {0}, {1}));  // A -> B
  rules.Add(*Constraint::MakeFd(s, {2}, {1}));  // C -> B
  Dataset d = *Dataset::Make(s, {{"a1", "b1", "c1"}, {"a1", "b1", "c1"},
                                 {"a2", "b2", "c1"}, {"a2", "b2", "c1"}});
  // Tuple t4 = {a1, b?, c1}: B1 says b1 (via a1), B2 is keyed by c1 whose
  // winner is ambiguous. Construct index manually for precision:
  MlnIndex index = *MlnIndex::Build(d, rules);
  CleaningOptions options;
  DistanceFn dist = MakeDistanceFn(options.distance);
  index.LearnWeights();
  RunRscAll(&index, options, dist, nullptr);
  // After RSC the c1 group picked one of b1/b2. The a1/a2 groups are
  // unambiguous. Fusion of every tuple must succeed here (substitutes
  // exist), so all tuples get consistent values.
  Dataset cleaned = d.Clone();
  CleaningReport report;
  RunFscr(d, rules, index, options, &cleaned, &report);
  for (const auto& rec : report.fscr) {
    EXPECT_TRUE(rec.fused);
  }
}

TEST(FscrTest, GreedyPathForManyVersions) {
  // With max_exhaustive_fusion = 0 every tuple takes the greedy path;
  // on the conflict-free sample it must still reach the ground truth.
  StageOneFixture f;
  f.options.max_exhaustive_fusion = 0;
  Dataset cleaned = f.dirty.Clone();
  RunFscr(f.dirty, f.rules, f.index, f.options, &cleaned, nullptr);
  // t3 has a conflict; greedy merges by weight and resolves via γ'.
  EXPECT_EQ(cleaned, *SampleHospitalClean());
}

TEST(FscrTest, FScoreIsProductOfWeights) {
  // For a tuple with two conflict-free versions the f-score is w1 * w2.
  StageOneFixture f;
  Dataset cleaned = f.dirty.Clone();
  CleaningReport report;
  RunFscr(f.dirty, f.rules, f.index, f.options, &cleaned, &report);
  // t1's versions: B1 {DOTHAN, AL} and B2 {3347938701, AL}.
  double w1 = 0, w2 = 0;
  for (const Group& g : f.index.block(0).groups) {
    if (g.pieces[0].reason == std::vector<Value>{"DOTHAN"}) {
      w1 = g.pieces[0].weight;
    }
  }
  for (const Group& g : f.index.block(1).groups) {
    if (g.pieces[0].reason == std::vector<Value>{"3347938701"}) {
      w2 = g.pieces[0].weight;
    }
  }
  ASSERT_GT(w1, 0.0);
  ASSERT_GT(w2, 0.0);
  EXPECT_NEAR(report.fscr[0].f_score, w1 * w2, 1e-9);
}

}  // namespace
}  // namespace mlnclean
