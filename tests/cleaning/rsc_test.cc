#include "cleaning/rsc.h"

#include <gtest/gtest.h>

#include "cleaning/agp.h"
#include "datagen/sample.h"

namespace mlnclean {
namespace {

DistanceFn Lev() { return MakeDistanceFn(DistanceMetric::kLevenshtein); }

TEST(RscTest, Example2ReliabilityScores) {
  // Example 2 / Figure 3: in G13, γ1 = {BOAZ, AL} (t5, t6) must score
  // higher than γ2 = {BOAZ, AK} (t4), so γ1 wins and γ2 is replaced.
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  MlnIndex index = *MlnIndex::Build(dirty, rules);
  index.LearnWeights();
  Group& g13 = index.block(0).groups[2];
  std::vector<double> scores = ReliabilityScores(g13, Lev());
  ASSERT_EQ(scores.size(), 2u);
  // Piece order in the group: [0] = {BOAZ, AK}, [1] = {BOAZ, AL}.
  EXPECT_GT(scores[1], scores[0]);

  RunRscGroup(&g13, 0, Lev(), nullptr);
  ASSERT_EQ(g13.pieces.size(), 1u);
  EXPECT_EQ(g13.pieces[0].result, (std::vector<Value>{"AL"}));
  // The winner absorbed t4.
  EXPECT_EQ(g13.pieces[0].tuples, (std::vector<TupleId>{4, 5, 3}));
}

TEST(RscTest, SingletonGroupSkipped) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  MlnIndex index = *MlnIndex::Build(dirty, rules);
  index.LearnWeights();
  // G21 = {3347938701 -> AL} has one γ: Section 5.1.2 skips it.
  Group& g21 = index.block(1).groups[0];
  ASSERT_EQ(g21.pieces.size(), 1u);
  CleaningReport report;
  RunRscGroup(&g21, 1, Lev(), &report);
  EXPECT_TRUE(report.rsc.empty());
  EXPECT_EQ(g21.pieces.size(), 1u);
}

TEST(RscTest, Figure4CleanVersionsAfterAgpAndRsc) {
  // Figure 4: the three clean data versions after AGP + RSC.
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  MlnIndex index = *MlnIndex::Build(dirty, rules);
  CleaningOptions options;
  options.agp_threshold = 1;
  CleaningReport report;
  RunAgpAll(&index, options, Lev(), &report);
  index.LearnWeights();
  RunRscAll(&index, options, Lev(), &report);

  // Version 1 (B1): {DOTHAN, AL} for t1,t2,t3 and {BOAZ, AL} for t4,t5,t6.
  const Block& b1 = index.block(0);
  ASSERT_EQ(b1.groups.size(), 2u);
  for (const Group& g : b1.groups) {
    ASSERT_EQ(g.pieces.size(), 1u);
  }
  const Piece& v1a = b1.groups[0].pieces[0];
  EXPECT_EQ(v1a.reason, (std::vector<Value>{"DOTHAN"}));
  EXPECT_EQ(v1a.result, (std::vector<Value>{"AL"}));
  EXPECT_EQ(v1a.support(), 3u);
  const Piece& v1b = b1.groups[1].pieces[0];
  EXPECT_EQ(v1b.reason, (std::vector<Value>{"BOAZ"}));
  EXPECT_EQ(v1b.result, (std::vector<Value>{"AL"}));

  // Version 2 (B2): {3347938701, AL} (t1,t2) and {2567688400, AL} (t3-t6).
  const Block& b2 = index.block(1);
  ASSERT_EQ(b2.groups.size(), 2u);
  const Piece& v2b = b2.groups[1].pieces[0];
  EXPECT_EQ(v2b.reason, (std::vector<Value>{"2567688400"}));
  EXPECT_EQ(v2b.result, (std::vector<Value>{"AL"}));
  EXPECT_EQ(v2b.support(), 4u);

  // Version 3 (B3): {ELIZA, BOAZ, 2567688400} for t3-t6.
  const Block& b3 = index.block(2);
  ASSERT_EQ(b3.groups.size(), 1u);
  const Piece& v3 = b3.groups[0].pieces[0];
  EXPECT_EQ(v3.reason, (std::vector<Value>{"ELIZA", "BOAZ"}));
  EXPECT_EQ(v3.result, (std::vector<Value>{"2567688400"}));
  EXPECT_EQ(v3.support(), 4u);
}

TEST(RscTest, ReportRecordsReplacements) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  MlnIndex index = *MlnIndex::Build(dirty, rules);
  index.LearnWeights();
  CleaningOptions options;
  CleaningReport report;
  RunRscAll(&index, options, Lev(), &report);
  // Without AGP, two groups hold >1 γ: G13 (B1) and G23 (B2).
  ASSERT_EQ(report.rsc.size(), 2u);
  EXPECT_EQ(report.rsc[0].winner_values, (std::vector<Value>{"BOAZ", "AL"}));
  EXPECT_EQ(report.rsc[0].loser_values, (std::vector<Value>{"BOAZ", "AK"}));
  EXPECT_EQ(report.rsc[0].affected_tuples, (std::vector<TupleId>{3}));
}

TEST(RscTest, GroupKeyFollowsWinner) {
  // If a merged-in γ wins, the group key becomes the winner's reason.
  Group group;
  group.key = {"DOTH"};
  group.pieces.push_back(Piece{{"DOTH"}, {"AL"}, {1}, 0.1});
  group.pieces.push_back(Piece{{"DOTHAN"}, {"AL"}, {0, 2, 7}, 0.9});
  RunRscGroup(&group, 0, Lev(), nullptr);
  ASSERT_EQ(group.pieces.size(), 1u);
  EXPECT_EQ(group.key, (std::vector<Value>{"DOTHAN"}));
}

TEST(RscTest, TieBreaksByWeightThenSupport) {
  Group group;
  group.key = {"K"};
  // Identical supports and distances; weights decide.
  group.pieces.push_back(Piece{{"K"}, {"aa"}, {0}, 0.2});
  group.pieces.push_back(Piece{{"K"}, {"ab"}, {1}, 0.8});
  RunRscGroup(&group, 0, Lev(), nullptr);
  EXPECT_EQ(group.pieces[0].result, (std::vector<Value>{"ab"}));
}

TEST(RscTest, ReliabilityScoreUsesSupportScaling) {
  // Same weights, same distances: support decides (the n/Z factor).
  Group group;
  group.key = {"K"};
  group.pieces.push_back(Piece{{"K"}, {"xa"}, {0, 1, 2}, 0.5});
  group.pieces.push_back(Piece{{"K"}, {"xb"}, {3}, 0.5});
  std::vector<double> scores = ReliabilityScores(group, Lev());
  EXPECT_GT(scores[0], scores[1]);
}

}  // namespace
}  // namespace mlnclean
