#include "cleaning/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "baseline/holoclean.h"
#include "datagen/hospital.h"
#include "datagen/sample.h"
#include "distributed/distributed_pipeline.h"
#include "errorgen/injector.h"

namespace mlnclean {
namespace {

// A corrupted 30-hospital workload shared by the heavier tests.
struct GeneratedCase {
  Workload wl;
  DirtyDataset dd;
};

GeneratedCase MakeGenerated(uint64_t seed) {
  HospitalConfig config;
  config.num_hospitals = 30;
  config.num_measures = 10;
  Workload wl = *MakeHospitalWorkload(config);
  ErrorSpec spec;
  spec.error_rate = 0.05;
  spec.seed = seed;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  return GeneratedCase{std::move(wl), std::move(dd)};
}

// Field-wise equality of the full decision trace, timings excluded
// (mirrors the pipeline_test invariant; f-scores must be bit-identical).
void ExpectSameReport(const CleaningReport& a, const CleaningReport& b) {
  ASSERT_EQ(a.agp.size(), b.agp.size());
  for (size_t i = 0; i < a.agp.size(); ++i) {
    EXPECT_EQ(a.agp[i].block, b.agp[i].block);
    EXPECT_EQ(a.agp[i].abnormal_key, b.agp[i].abnormal_key);
    EXPECT_EQ(a.agp[i].abnormal_tuples, b.agp[i].abnormal_tuples);
    EXPECT_EQ(a.agp[i].num_pieces, b.agp[i].num_pieces);
    EXPECT_EQ(a.agp[i].target_key, b.agp[i].target_key);
    EXPECT_EQ(a.agp[i].merged, b.agp[i].merged);
  }
  ASSERT_EQ(a.rsc.size(), b.rsc.size());
  for (size_t i = 0; i < a.rsc.size(); ++i) {
    EXPECT_EQ(a.rsc[i].block, b.rsc[i].block);
    EXPECT_EQ(a.rsc[i].group_key, b.rsc[i].group_key);
    EXPECT_EQ(a.rsc[i].winner_values, b.rsc[i].winner_values);
    EXPECT_EQ(a.rsc[i].loser_values, b.rsc[i].loser_values);
    EXPECT_EQ(a.rsc[i].affected_tuples, b.rsc[i].affected_tuples);
  }
  ASSERT_EQ(a.fscr.size(), b.fscr.size());
  for (size_t i = 0; i < a.fscr.size(); ++i) {
    EXPECT_EQ(a.fscr[i].tuple, b.fscr[i].tuple);
    EXPECT_EQ(a.fscr[i].conflict_attrs, b.fscr[i].conflict_attrs);
    EXPECT_EQ(a.fscr[i].fused, b.fscr[i].fused);
    EXPECT_EQ(a.fscr[i].f_score, b.fscr[i].f_score);
  }
  EXPECT_EQ(a.duplicates, b.duplicates);
}

TEST(CleaningEngineTest, CompileRejectsInvalidOptions) {
  CleaningOptions options;
  options.max_fusion_nodes = 0;
  auto model = CleaningEngine(options).Compile(SampleHospitalDirty()->schema(),
                                               *SampleHospitalRules());
  ASSERT_FALSE(model.ok());
  EXPECT_TRUE(model.status().IsInvalid());
}

TEST(CleaningEngineTest, CompileRejectsForeignSchema) {
  Schema other = *Schema::Make({"A", "B"});
  auto model = CleaningEngine().Compile(other, *SampleHospitalRules());
  ASSERT_FALSE(model.ok());
  EXPECT_TRUE(model.status().IsInvalid());
}

TEST(CleaningEngineTest, CompileRejectsUnhostableRule) {
  // A DC whose result predicate is an inequality cannot live in the MLN
  // index; Compile must surface that once instead of per cleaning call.
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules(dirty.schema());
  rules.Add(*Constraint::MakeDc(
      dirty.schema(), {DcPredicate{0, PredOp::kEq, 0}, DcPredicate{1, PredOp::kLt, 1}}));
  auto model = CleaningEngine().Compile(dirty.schema(), rules);
  ASSERT_FALSE(model.ok());
  EXPECT_TRUE(model.status().IsInvalid());
}

TEST(CleaningEngineTest, SessionRejectsMismatchedDataset) {
  Dataset dirty = *SampleHospitalDirty();
  CleanModel model = *CleaningEngine().Compile(dirty.schema(), *SampleHospitalRules());
  Dataset other(*Schema::Make({"A", "B"}));
  CleanSession session = model.NewSession(other);
  Status status = session.Resume();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalid());
}

TEST(CleaningEngineTest, ModelCleanMatchesOneShotCleanBitIdentically) {
  GeneratedCase c = MakeGenerated(5);
  CleaningOptions options;
  options.agp_threshold = 3;
  auto old_api = CleaningEngine(options).Clean(c.dd.dirty, c.wl.rules);
  ASSERT_TRUE(old_api.ok()) << old_api.status().ToString();
  CleanModel model =
      *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);
  auto served = model.Clean(c.dd.dirty);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->cleaned, old_api->cleaned);
  EXPECT_EQ(served->deduped, old_api->deduped);
  ExpectSameReport(served->report, old_api->report);
}

TEST(CleaningEngineTest, StagedRunMatchesOneShot) {
  Dataset dirty = *SampleHospitalDirty();
  CleaningOptions options;
  options.agp_threshold = 1;
  CleanModel model = *CleaningEngine(options).Compile(dirty.schema(),
                                                      *SampleHospitalRules());
  CleanSession session = model.NewSession(dirty);
  EXPECT_EQ(session.next_stage(), Stage::kIndex);
  ASSERT_TRUE(session.RunUntil(Stage::kLearn).ok());
  EXPECT_EQ(session.next_stage(), Stage::kRsc);
  EXPECT_FALSE(session.finished());
  // The stage-I index is inspectable mid-plan.
  EXPECT_GT(session.index().num_blocks(), 0u);
  // Re-running an already-passed stage is an OK no-op.
  ASSERT_TRUE(session.RunUntil(Stage::kAgp).ok());
  EXPECT_EQ(session.next_stage(), Stage::kRsc);
  ASSERT_TRUE(session.Resume().ok());
  EXPECT_TRUE(session.finished());
  auto staged = session.TakeResult();
  ASSERT_TRUE(staged.ok());
  auto oneshot = model.Clean(dirty);
  ASSERT_TRUE(oneshot.ok());
  EXPECT_EQ(staged->cleaned, oneshot->cleaned);
  EXPECT_EQ(staged->deduped, oneshot->deduped);
  ExpectSameReport(staged->report, oneshot->report);
  // A second TakeResult has nothing left to hand out.
  EXPECT_FALSE(session.TakeResult().ok());
}

TEST(CleaningEngineTest, TakeResultBeforeFinishIsInvalid) {
  Dataset dirty = *SampleHospitalDirty();
  CleanModel model = *CleaningEngine().Compile(dirty.schema(), *SampleHospitalRules());
  CleanSession session = model.NewSession(dirty);
  ASSERT_TRUE(session.RunUntil(Stage::kRsc).ok());
  auto result = session.TakeResult();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalid());
}

TEST(CleaningEngineTest, ProgressEventsFireInStageOrder) {
  Dataset dirty = *SampleHospitalDirty();
  CleanModel model = *CleaningEngine().Compile(dirty.schema(), *SampleHospitalRules());
  std::vector<StageProgress> events;
  SessionOptions opts;
  opts.progress = [&](const StageProgress& p) { events.push_back(p); };
  CleanSession session = model.NewSession(dirty, opts);
  ASSERT_TRUE(session.Resume().ok());
  ASSERT_EQ(events.size(), 2u * kNumStages);
  for (int s = 0; s < kNumStages; ++s) {
    const StageProgress& begin = events[2 * s];
    const StageProgress& end = events[2 * s + 1];
    EXPECT_EQ(begin.stage, static_cast<Stage>(s));
    EXPECT_EQ(end.stage, static_cast<Stage>(s));
    EXPECT_EQ(begin.units_done, 0u);
    EXPECT_EQ(end.units_done, end.units_total);
    EXPECT_EQ(begin.units_total, end.units_total);
    EXPECT_GE(end.seconds, 0.0);
  }
  // Unit counts: rules for kIndex, tuples for kFscr.
  EXPECT_EQ(events[0].units_total, SampleHospitalRules()->size());
  EXPECT_EQ(events[2 * static_cast<int>(Stage::kFscr)].units_total,
            dirty.num_rows());
}

TEST(CleaningEngineTest, PreCancelledTokenAbortsBeforeAnyWork) {
  Dataset dirty = *SampleHospitalDirty();
  Dataset snapshot = dirty.Clone();
  CleanModel model = *CleaningEngine().Compile(dirty.schema(), *SampleHospitalRules());
  SessionOptions opts;
  opts.cancel.RequestCancel();
  CleanSession session = model.NewSession(dirty, opts);
  Status status = session.Resume();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCancelled());
  EXPECT_EQ(dirty, snapshot);
  // Cancellation is terminal: the session cannot be resumed or harvested.
  EXPECT_TRUE(session.Resume().IsCancelled());
  EXPECT_TRUE(session.TakeResult().status().IsCancelled());
}

TEST(CleaningEngineTest, CancellationAtEveryStageReturnsCancelled) {
  GeneratedCase c = MakeGenerated(11);
  CleaningOptions options;
  options.agp_threshold = 3;
  CleanModel model =
      *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);
  Dataset snapshot = c.dd.dirty.Clone();
  for (int s = 0; s < kNumStages; ++s) {
    const Stage target = static_cast<Stage>(s);
    SessionOptions opts;
    CancelToken token;
    opts.cancel = token;
    // Cancel from the progress callback the moment the target stage
    // starts: the stage driver then aborts at its first block/shard check.
    opts.progress = [&, target](const StageProgress& p) {
      if (p.stage == target && p.units_done == 0) token.RequestCancel();
    };
    CleanSession session = model.NewSession(c.dd.dirty, opts);
    Status status = session.Resume();
    ASSERT_FALSE(status.ok()) << "stage " << StageName(target);
    EXPECT_TRUE(status.IsCancelled()) << status.ToString();
    EXPECT_FALSE(session.finished());
    EXPECT_EQ(c.dd.dirty, snapshot) << "input mutated at " << StageName(target);
    EXPECT_TRUE(session.Resume().IsCancelled());
  }
}

TEST(CleaningEngineTest, ParallelSessionsBitIdenticalToSequential) {
  GeneratedCase c = MakeGenerated(7);
  CleaningOptions sequential;
  sequential.agp_threshold = 3;
  sequential.num_threads = 1;
  // Real 8-way parallelism even on a small host: the shared process pool
  // would clamp to the core count.
  PoolExecutor pool(8);
  CleaningOptions parallel = sequential;
  parallel.num_threads = 8;
  parallel.executor = &pool;
  auto seq = CleaningEngine(sequential)
                 .Compile(c.dd.dirty.schema(), c.wl.rules)
                 ->Clean(c.dd.dirty);
  auto par = CleaningEngine(parallel)
                 .Compile(c.dd.dirty.schema(), c.wl.rules)
                 ->Clean(c.dd.dirty);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_EQ(seq->cleaned, par->cleaned);
  EXPECT_EQ(seq->deduped, par->deduped);
  ExpectSameReport(seq->report, par->report);
}

TEST(CleaningEngineTest, FreshWeightSessionsMatchColdRunsPerBatch) {
  // Serving a stream without weight reuse must be indistinguishable from
  // K independent cold runs — the bit-identity half of the amortization
  // contract.
  GeneratedCase c = MakeGenerated(13);
  CleaningOptions options;
  options.agp_threshold = 3;
  CleanModel model =
      *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);
  CleaningEngine cold(options);
  const size_t rows = c.dd.dirty.num_rows();
  const size_t chunk = (rows + 3) / 4;
  for (size_t begin = 0; begin < rows; begin += chunk) {
    Dataset batch = c.dd.dirty.Slice(begin, begin + chunk);
    auto served = model.Clean(batch);  // reuse_model_weights defaults off
    auto reference = cold.Clean(batch, c.wl.rules);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    EXPECT_EQ(served->cleaned, reference->cleaned);
    EXPECT_EQ(served->deduped, reference->deduped);
    ExpectSameReport(served->report, reference->report);
  }
}

TEST(CleaningEngineTest, WarmedModelServesWithStoredWeights) {
  Dataset dirty = *SampleHospitalDirty();
  CleaningOptions options;
  options.agp_threshold = 1;
  CleanModel model =
      *CleaningEngine(options).Compile(dirty.schema(), *SampleHospitalRules());
  EXPECT_EQ(model.num_stored_weights(), 0u);
  ASSERT_TRUE(model.Warm(dirty).ok());
  EXPECT_GT(model.num_stored_weights(), 0u);

  SessionOptions serve;
  serve.reuse_model_weights = true;
  auto warm = model.Clean(dirty, serve);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  // Warmed on the same data, the stored Eq. 6 averages equal the learned
  // weights, so the served repair is the known-correct clean table.
  EXPECT_EQ(warm->cleaned, *SampleHospitalClean());
}

TEST(CleaningEngineTest, ReuseFallsBackToLearningOnColdStore) {
  Dataset dirty = *SampleHospitalDirty();
  CleaningOptions options;
  options.agp_threshold = 1;
  CleanModel model =
      *CleaningEngine(options).Compile(dirty.schema(), *SampleHospitalRules());
  SessionOptions serve;
  serve.reuse_model_weights = true;  // store is empty: learns fresh
  auto result = model.Clean(dirty, serve);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cleaned, *SampleHospitalClean());
  // A reuse-only session never contributes; the store stays cold.
  EXPECT_EQ(model.num_stored_weights(), 0u);
}

TEST(CleaningEngineTest, AdjustWeightsAcrossRequiresPostLearnSessions) {
  Dataset dirty = *SampleHospitalDirty();
  CleanModel model = *CleaningEngine().Compile(dirty.schema(), *SampleHospitalRules());
  CleanSession early = model.NewSession(dirty);
  ASSERT_TRUE(early.RunUntil(Stage::kAgp).ok());
  auto adjusted = model.AdjustWeightsAcross({&early});
  ASSERT_FALSE(adjusted.ok());
  EXPECT_TRUE(adjusted.status().IsInvalid());
}

TEST(CleaningEngineTest, AdjustWeightsAcrossMergesSessions) {
  GeneratedCase c = MakeGenerated(17);
  CleaningOptions options;
  options.agp_threshold = 3;
  CleanModel model =
      *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);
  // Two halves of the table, cleaned as concurrent sessions.
  const size_t rows = c.dd.dirty.num_rows();
  std::vector<Dataset> halves;
  halves.push_back(c.dd.dirty.Slice(0, rows / 2));
  halves.push_back(c.dd.dirty.Slice(rows / 2, rows));
  CleanSession a = model.NewSession(halves[0]);
  CleanSession b = model.NewSession(halves[1]);
  ASSERT_TRUE(a.RunUntil(Stage::kLearn).ok());
  ASSERT_TRUE(b.RunUntil(Stage::kLearn).ok());
  auto merged = model.AdjustWeightsAcross({&a, &b});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_GT(*merged, 0u);
  ASSERT_TRUE(a.RunUntil(Stage::kFscr).ok());
  ASSERT_TRUE(b.RunUntil(Stage::kFscr).ok());
  EXPECT_EQ(a.cleaned().num_rows(), halves[0].num_rows());
  EXPECT_EQ(b.cleaned().num_rows(), halves[1].num_rows());
}

TEST(CleaningEngineTest, DistributedDriverHonoursCancellation) {
  GeneratedCase c = MakeGenerated(19);
  DistributedOptions opts;
  opts.num_parts = 4;
  opts.num_workers = 2;
  opts.cleaning.agp_threshold = 3;
  opts.cancel.RequestCancel();
  Dataset snapshot = c.dd.dirty.Clone();
  auto result = DistributedMlnClean(opts).Clean(c.dd.dirty, c.wl.rules);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
  EXPECT_EQ(c.dd.dirty, snapshot);
}

TEST(CleaningEngineTest, HoloCleanBaselineHonoursCancellation) {
  GeneratedCase c = MakeGenerated(23);
  HoloCleanOptions opts;
  opts.cancel.RequestCancel();
  auto result =
      HoloCleanBaseline(opts).CleanWithOracle(c.dd.dirty, c.wl.rules, c.dd.truth);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
}

}  // namespace
}  // namespace mlnclean
