// Row-incremental sessions (docs/streaming.md): the concatenation
// bit-identity contract — an incremental session over batches B1..Bk
// equals a cold session over concat(B1..Bk) exactly, at any thread count,
// with weight reuse on or off — plus the v5 index snapshot round-trip and
// the cross-process ResumeIncrementalSession path.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <vector>

#include "cleaning/engine.h"
#include "cleaning/model_io.h"
#include "cleaning/server.h"
#include "datagen/hospital.h"
#include "errorgen/injector.h"
#include "index/mln_index.h"

namespace mlnclean {
namespace {

// A corrupted hospital workload small enough to reclean repeatedly.
struct GeneratedCase {
  Workload wl;
  DirtyDataset dd;
};

GeneratedCase MakeGenerated(uint64_t seed, size_t hospitals = 15) {
  HospitalConfig config;
  config.num_hospitals = hospitals;
  config.num_measures = 10;
  Workload wl = *MakeHospitalWorkload(config);
  ErrorSpec spec;
  spec.error_rate = 0.05;
  spec.seed = seed;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  return GeneratedCase{std::move(wl), std::move(dd)};
}

// Timings-excluded trace equality (the engine_test invariant).
void ExpectSameReport(const CleaningReport& a, const CleaningReport& b) {
  ASSERT_EQ(a.agp.size(), b.agp.size());
  for (size_t i = 0; i < a.agp.size(); ++i) {
    EXPECT_EQ(a.agp[i].abnormal_key, b.agp[i].abnormal_key);
    EXPECT_EQ(a.agp[i].abnormal_tuples, b.agp[i].abnormal_tuples);
    EXPECT_EQ(a.agp[i].target_key, b.agp[i].target_key);
    EXPECT_EQ(a.agp[i].merged, b.agp[i].merged);
  }
  ASSERT_EQ(a.rsc.size(), b.rsc.size());
  for (size_t i = 0; i < a.rsc.size(); ++i) {
    EXPECT_EQ(a.rsc[i].group_key, b.rsc[i].group_key);
    EXPECT_EQ(a.rsc[i].winner_values, b.rsc[i].winner_values);
    EXPECT_EQ(a.rsc[i].affected_tuples, b.rsc[i].affected_tuples);
  }
  ASSERT_EQ(a.fscr.size(), b.fscr.size());
  for (size_t i = 0; i < a.fscr.size(); ++i) {
    EXPECT_EQ(a.fscr[i].tuple, b.fscr[i].tuple);
    EXPECT_EQ(a.fscr[i].fused, b.fscr[i].fused);
    EXPECT_EQ(a.fscr[i].f_score, b.fscr[i].f_score);
  }
  EXPECT_EQ(a.duplicates, b.duplicates);
}

// Full structural equality of two indexes, ids and weights included.
void ExpectSameIndex(const MlnIndex& a, const MlnIndex& b) {
  ASSERT_EQ(a.num_blocks(), b.num_blocks());
  for (size_t bi = 0; bi < a.num_blocks(); ++bi) {
    const Block& ba = a.block(bi);
    const Block& bb = b.block(bi);
    EXPECT_EQ(ba.rule_index, bb.rule_index);
    ASSERT_EQ(ba.groups.size(), bb.groups.size()) << "block " << bi;
    for (size_t gi = 0; gi < ba.groups.size(); ++gi) {
      const Group& ga = ba.groups[gi];
      const Group& gb = bb.groups[gi];
      EXPECT_EQ(ga.key, gb.key);
      ASSERT_EQ(ga.pieces.size(), gb.pieces.size())
          << "block " << bi << " group " << gi;
      for (size_t pi = 0; pi < ga.pieces.size(); ++pi) {
        const Piece& pa = ga.pieces[pi];
        const Piece& pb = gb.pieces[pi];
        EXPECT_EQ(pa.reason, pb.reason);
        EXPECT_EQ(pa.result, pb.result);
        EXPECT_EQ(pa.tuples, pb.tuples);
        EXPECT_EQ(pa.reason_ids, pb.reason_ids);
        EXPECT_EQ(pa.result_ids, pb.result_ids);
        EXPECT_EQ(pa.weight, pb.weight);
      }
    }
  }
}

// Rows [0, end) of `src` re-appended into a fresh dataset — exactly how
// an incremental session accumulates rows, so dictionaries intern in the
// same order and ids line up with the session's.
Dataset Reaccumulate(const Dataset& src, size_t end) {
  Dataset out(src.schema());
  out.Reserve(end);
  for (size_t tid = 0; tid < end; ++tid) {
    EXPECT_TRUE(out.Append(src.row(static_cast<TupleId>(tid))).ok());
  }
  return out;
}

TEST(IncrementalIndexTest, AppendRowsMatchesColdBuild) {
  GeneratedCase c = MakeGenerated(11);
  const Dataset& full = c.dd.dirty;
  const size_t cut = full.num_rows() / 2;

  MlnIndex cold = *MlnIndex::Build(full, c.wl.rules);
  // Slices share the full dataset's dictionaries, so the prefix build and
  // the appended rows live in one id universe — like a live session.
  Dataset prefix = full.Slice(0, cut);
  MlnIndex incremental = *MlnIndex::Build(prefix, c.wl.rules);
  ASSERT_TRUE(incremental.AppendRows(full, c.wl.rules, cut).ok());
  ExpectSameIndex(incremental, cold);
}

TEST(IncrementalIndexTest, AppendInSeveralStepsMatchesColdBuild) {
  GeneratedCase c = MakeGenerated(12);
  const Dataset& full = c.dd.dirty;
  // The cold reference over a row-order re-accumulation: the step builds
  // below re-intern rows from scratch, so their dictionaries (and hence
  // the γ ids ExpectSameIndex compares) follow row order — `full`'s own
  // dictionaries instead carry error values in injection order.
  Dataset reference = Reaccumulate(full, full.num_rows());
  MlnIndex cold = *MlnIndex::Build(reference, c.wl.rules);

  MlnIndex incremental =
      *MlnIndex::Build(Dataset(full.schema()), c.wl.rules);
  // Uneven steps, including an empty one.
  const size_t cuts[] = {7, 7, full.num_rows() / 3, full.num_rows()};
  size_t covered = 0;
  for (size_t cut : cuts) {
    Dataset upto = Reaccumulate(full, cut);
    ASSERT_TRUE(incremental.AppendRows(upto, c.wl.rules, covered).ok());
    covered = cut;
  }
  // The step builds re-interned rows from scratch; ids still match the
  // full dataset's because interning order is row order either way.
  ExpectSameIndex(incremental, cold);
}

TEST(IncrementalIndexTest, ValidateCatchesForeignDataset) {
  GeneratedCase c = MakeGenerated(13);
  MlnIndex index = *MlnIndex::Build(c.dd.dirty, c.wl.rules);
  EXPECT_TRUE(index.Validate(c.dd.dirty, c.wl.rules).ok());

  // Fewer rows than the index covers.
  Dataset shorter = Reaccumulate(c.dd.dirty, c.dd.dirty.num_rows() / 2);
  EXPECT_FALSE(index.Validate(shorter, c.wl.rules).ok());

  // Same shape, different content: ids disagree with the dictionaries.
  GeneratedCase other = MakeGenerated(99);
  EXPECT_FALSE(index.Validate(other.dd.dirty, c.wl.rules).ok());
}

// The tentpole contract: incremental over B1..Bk == cold over
// concat(B1..Bk), for randomized batch splits, 1 and 4 threads, weight
// reuse off and on.
TEST(IncrementalSessionTest, MatchesColdAcrossRandomizedSplits) {
  GeneratedCase c = MakeGenerated(21);
  const Dataset& full = c.dd.dirty;
  std::mt19937_64 rng(2026);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (bool reuse : {false, true}) {
      CleaningOptions options;
      options.num_threads = threads;
      CleanModel model =
          *CleaningEngine(options).Compile(full.schema(), c.wl.rules);
      if (reuse) {
        // A warmed, no-longer-written store: reuse reads it identically
        // in the incremental and the cold arm.
        ASSERT_TRUE(model.Warm(c.wl.clean).ok());
      }
      SessionOptions sopts;
      sopts.reuse_model_weights = reuse;

      // One random split of the full table into 2..4 batches.
      std::uniform_int_distribution<size_t> nb(2, 4);
      const size_t num_batches = nb(rng);
      std::vector<size_t> ends;
      std::uniform_int_distribution<size_t> cut(1, full.num_rows() - 1);
      for (size_t i = 0; i + 1 < num_batches; ++i) ends.push_back(cut(rng));
      ends.push_back(full.num_rows());
      std::sort(ends.begin(), ends.end());

      CleanSession inc = model.NewIncrementalSession(sopts);
      size_t begin = 0;
      for (size_t end : ends) {
        Dataset batch = full.Slice(begin, end);
        begin = end;
        ASSERT_TRUE(inc.AppendRows(batch).ok());
        ASSERT_TRUE(inc.Resume().ok());

        Dataset prefix = full.Slice(0, end);  // sessions borrow their input
        CleanSession cold = model.NewSession(prefix, sopts);
        ASSERT_TRUE(cold.Resume().ok());
        EXPECT_EQ(inc.cleaned(), cold.cleaned())
            << "threads=" << threads << " reuse=" << reuse << " end=" << end;
        EXPECT_EQ(inc.deduped(), cold.deduped());
        ExpectSameReport(inc.report(), cold.report());
      }
    }
  }
}

TEST(IncrementalSessionTest, AppendRowsRequiresIncrementalSession) {
  GeneratedCase c = MakeGenerated(22);
  CleanModel model =
      *CleaningEngine().Compile(c.dd.dirty.schema(), c.wl.rules);
  CleanSession cold = model.NewSession(c.dd.dirty);
  Status st = cold.AppendRows(c.dd.dirty);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalid());
  // The session is not poisoned: it still cleans.
  EXPECT_TRUE(cold.Resume().ok());
}

TEST(IncrementalSessionTest, MismatchedBatchRejectedWithoutPoisoning) {
  GeneratedCase c = MakeGenerated(23);
  CleanModel model =
      *CleaningEngine().Compile(c.dd.dirty.schema(), c.wl.rules);
  CleanSession inc = model.NewIncrementalSession();
  Dataset foreign(*Schema::Make({"A", "B"}));
  Status st = inc.AppendRows(foreign);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalid());
  // The stream continues with a good batch.
  ASSERT_TRUE(inc.AppendRows(c.dd.dirty).ok());
  ASSERT_TRUE(inc.Resume().ok());
  CleanSession cold = model.NewSession(c.dd.dirty);
  ASSERT_TRUE(cold.Resume().ok());
  EXPECT_EQ(inc.cleaned(), cold.cleaned());
}

TEST(IncrementalSnapshotTest, IndexRoundTripsByteDeterministically) {
  GeneratedCase c = MakeGenerated(31);
  CleanModel model =
      *CleaningEngine().Compile(c.dd.dirty.schema(), c.wl.rules);
  CleanSession inc = model.NewIncrementalSession();
  ASSERT_TRUE(inc.AppendRows(c.dd.dirty).ok());
  ASSERT_TRUE(inc.RunUntil(Stage::kIndex).ok());

  std::ostringstream a, b;
  ASSERT_TRUE(model.Save(a, inc.base_index(), inc.data().num_rows()).ok());
  ASSERT_TRUE(model.Save(b, inc.base_index(), inc.data().num_rows()).ok());
  EXPECT_EQ(a.str(), b.str());  // save-is-deterministic

  std::istringstream in(a.str());
  LoadedSnapshot loaded = *CleaningEngine().LoadWithIndex(in);
  ASSERT_TRUE(loaded.index.has_value());
  EXPECT_EQ(loaded.indexed_rows, c.dd.dirty.num_rows());
  ExpectSameIndex(*loaded.index, inc.base_index());

  // Saving the loaded index again reproduces the bytes exactly.
  std::ostringstream again;
  ASSERT_TRUE(
      loaded.model.Save(again, *loaded.index, loaded.indexed_rows).ok());
  EXPECT_EQ(again.str(), a.str());
}

TEST(IncrementalSnapshotTest, PlainLoadDropsIndexSection) {
  GeneratedCase c = MakeGenerated(32);
  CleanModel model =
      *CleaningEngine().Compile(c.dd.dirty.schema(), c.wl.rules);
  CleanSession inc = model.NewIncrementalSession();
  ASSERT_TRUE(inc.AppendRows(c.dd.dirty).ok());
  ASSERT_TRUE(inc.RunUntil(Stage::kIndex).ok());

  std::ostringstream out;
  ASSERT_TRUE(model.Save(out, inc.base_index(), inc.data().num_rows()).ok());
  std::istringstream in(out.str());
  CleanModel loaded = *CleaningEngine().Load(in);
  auto cold = loaded.Clean(c.dd.dirty);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  // Inspect reports the section.
  std::istringstream in2(out.str());
  ModelSnapshotInfo info = *InspectModelSnapshot(in2);
  EXPECT_TRUE(info.has_index);
  EXPECT_EQ(info.indexed_rows, c.dd.dirty.num_rows());
  EXPECT_GT(info.index_pieces, 0u);
}

TEST(IncrementalSnapshotTest, CorruptIndexSectionIsDetected) {
  GeneratedCase c = MakeGenerated(33);
  CleanModel model =
      *CleaningEngine().Compile(c.dd.dirty.schema(), c.wl.rules);
  CleanSession inc = model.NewIncrementalSession();
  ASSERT_TRUE(inc.AppendRows(c.dd.dirty).ok());
  ASSERT_TRUE(inc.RunUntil(Stage::kIndex).ok());
  std::ostringstream out;
  ASSERT_TRUE(model.Save(out, inc.base_index(), inc.data().num_rows()).ok());
  const std::string bytes = out.str();

  std::ostringstream bare;
  ASSERT_TRUE(model.Save(bare).ok());
  // The index payload occupies the tail beyond the bare snapshot (the
  // four other sections are byte-identical), so flipping bytes there hits
  // the index section.
  ASSERT_GT(bytes.size(), bare.str().size());
  for (size_t probe = 1; probe <= 4; ++probe) {
    std::string torn = bytes;
    const size_t pos = bare.str().size() + (probe * 97) %
                       (bytes.size() - bare.str().size());
    torn[pos] = static_cast<char>(torn[pos] ^ 0x40);
    std::istringstream in(torn);
    auto loaded = CleaningEngine().LoadWithIndex(in);
    ASSERT_FALSE(loaded.ok()) << "flip at " << pos;
    EXPECT_TRUE(loaded.status().IsCorruption() || loaded.status().IsInvalid());
  }

  // Truncation sweep over the index section: framing or checksum must
  // reject every prefix, never crash.
  for (size_t len = bare.str().size(); len < bytes.size(); len += 31) {
    std::istringstream in(bytes.substr(0, len));
    auto loaded = CleaningEngine().LoadWithIndex(in);
    ASSERT_FALSE(loaded.ok()) << "prefix " << len;
    EXPECT_TRUE(loaded.status().IsCorruption() || loaded.status().IsInvalid());
  }
}

TEST(IncrementalSnapshotTest, AppendAfterResumeMatchesColdRun) {
  GeneratedCase c = MakeGenerated(34);
  const Dataset& full = c.dd.dirty;
  const size_t cut = (full.num_rows() * 2) / 3;
  CleanModel model = *CleaningEngine().Compile(full.schema(), c.wl.rules);

  // Process A: serve the first batches incrementally, snapshot mid-stream.
  CleanSession inc = model.NewIncrementalSession();
  ASSERT_TRUE(inc.AppendRows(full.Slice(0, cut)).ok());
  ASSERT_TRUE(inc.Resume().ok());
  std::ostringstream out;
  ASSERT_TRUE(model.Save(out, inc.base_index(), inc.data().num_rows()).ok());

  // Process B: load, rebuild the accumulation, resume, append the rest.
  std::istringstream in(out.str());
  LoadedSnapshot loaded = *CleaningEngine().LoadWithIndex(in);
  ASSERT_TRUE(loaded.index.has_value());
  Dataset accumulated = Reaccumulate(full, loaded.indexed_rows);
  CleanSession resumed = loaded.model.ResumeIncrementalSession(
      std::move(accumulated), std::move(*loaded.index));
  ASSERT_TRUE(resumed.AppendRows(full.Slice(cut, full.num_rows())).ok());
  ASSERT_TRUE(resumed.Resume().ok());

  CleanSession cold = model.NewSession(full);
  ASSERT_TRUE(cold.Resume().ok());
  EXPECT_EQ(resumed.cleaned(), cold.cleaned());
  EXPECT_EQ(resumed.deduped(), cold.deduped());
  ExpectSameReport(resumed.report(), cold.report());
}

TEST(IncrementalSnapshotTest, ResumeRejectsWrongAccumulation) {
  GeneratedCase c = MakeGenerated(35);
  CleanModel model =
      *CleaningEngine().Compile(c.dd.dirty.schema(), c.wl.rules);
  CleanSession inc = model.NewIncrementalSession();
  ASSERT_TRUE(inc.AppendRows(c.dd.dirty).ok());
  ASSERT_TRUE(inc.RunUntil(Stage::kIndex).ok());
  std::ostringstream out;
  ASSERT_TRUE(model.Save(out, inc.base_index(), inc.data().num_rows()).ok());
  std::istringstream in(out.str());
  LoadedSnapshot loaded = *CleaningEngine().LoadWithIndex(in);

  // A different corruption of the same table: values disagree with the
  // index's γs.
  GeneratedCase other = MakeGenerated(77);
  CleanSession resumed = loaded.model.ResumeIncrementalSession(
      other.dd.dirty.Clone(), std::move(*loaded.index));
  Status st = resumed.Resume();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalid());
}

TEST(IncrementalServerTest, TicketsResolveToAccumulatedPrefixResults) {
  GeneratedCase c = MakeGenerated(41);
  const Dataset& full = c.dd.dirty;
  CleanModel model = *CleaningEngine().Compile(full.schema(), c.wl.rules);
  PoolExecutor pool(2);
  ServerOptions sopts;
  sopts.executor = &pool;
  CleanServer server = *CleanServer::Create(model, sopts);

  const size_t k = 3;
  std::vector<Dataset> batches = SplitIntoBatches(full, k);
  std::vector<CleanTicket> tickets;
  SessionOptions inc_opts;
  inc_opts.incremental = true;
  for (Dataset& batch : batches) {
    tickets.push_back(*server.Submit(batch, inc_opts));
  }
  size_t end = 0;
  for (size_t i = 0; i < tickets.size(); ++i) {
    end += batches[i].num_rows();
    Result<CleanResult> got = tickets[i].Take();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    Dataset prefix = full.Slice(0, end);  // sessions borrow their input
    CleanSession cold = model.NewSession(prefix);
    ASSERT_TRUE(cold.Resume().ok());
    EXPECT_EQ(got->cleaned, cold.cleaned()) << "ticket " << i;
    EXPECT_EQ(got->deduped, cold.deduped());
  }
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.completed, k);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(IncrementalServerTest, IncrementalAndColdLanesCoexist) {
  GeneratedCase c = MakeGenerated(42);
  const Dataset& full = c.dd.dirty;
  CleanModel model = *CleaningEngine().Compile(full.schema(), c.wl.rules);
  PoolExecutor pool(2);
  ServerOptions sopts;
  sopts.executor = &pool;
  CleanServer server = *CleanServer::Create(model, sopts);

  SessionOptions inc_opts;
  inc_opts.incremental = true;
  CleanTicket inc_ticket = *server.Submit(full, inc_opts);
  CleanTicket cold_ticket = *server.Submit(full);

  Result<CleanResult> inc_result = inc_ticket.Take();
  Result<CleanResult> cold_result = cold_ticket.Take();
  ASSERT_TRUE(inc_result.ok()) << inc_result.status().ToString();
  ASSERT_TRUE(cold_result.ok()) << cold_result.status().ToString();
  EXPECT_EQ(inc_result->cleaned, cold_result->cleaned);
  EXPECT_EQ(inc_result->deduped, cold_result->deduped);
}

}  // namespace
}  // namespace mlnclean
