#include "cleaning/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.h"

#include "datagen/hospital.h"
#include "datagen/sample.h"
#include "errorgen/injector.h"

namespace mlnclean {
namespace {

struct ServingCase {
  Workload wl;
  DirtyDataset dd;
  std::vector<Dataset> batches;
};

ServingCase MakeServingCase(uint64_t seed, size_t num_batches) {
  HospitalConfig config;
  config.num_hospitals = 30;
  config.num_measures = 10;
  Workload wl = *MakeHospitalWorkload(config);
  ErrorSpec spec;
  spec.error_rate = 0.05;
  spec.seed = seed;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  std::vector<Dataset> batches = SplitIntoBatches(dd.dirty, num_batches);
  return ServingCase{std::move(wl), std::move(dd), std::move(batches)};
}

CleaningOptions ServingOptions() {
  CleaningOptions options;
  options.agp_threshold = 3;
  return options;
}

// Field-wise equality of the decision trace, timings excluded.
void ExpectSameReport(const CleaningReport& a, const CleaningReport& b) {
  ASSERT_EQ(a.agp.size(), b.agp.size());
  for (size_t i = 0; i < a.agp.size(); ++i) {
    EXPECT_EQ(a.agp[i].abnormal_key, b.agp[i].abnormal_key);
    EXPECT_EQ(a.agp[i].abnormal_tuples, b.agp[i].abnormal_tuples);
    EXPECT_EQ(a.agp[i].target_key, b.agp[i].target_key);
    EXPECT_EQ(a.agp[i].merged, b.agp[i].merged);
  }
  ASSERT_EQ(a.rsc.size(), b.rsc.size());
  for (size_t i = 0; i < a.rsc.size(); ++i) {
    EXPECT_EQ(a.rsc[i].winner_values, b.rsc[i].winner_values);
    EXPECT_EQ(a.rsc[i].loser_values, b.rsc[i].loser_values);
    EXPECT_EQ(a.rsc[i].affected_tuples, b.rsc[i].affected_tuples);
  }
  ASSERT_EQ(a.fscr.size(), b.fscr.size());
  for (size_t i = 0; i < a.fscr.size(); ++i) {
    EXPECT_EQ(a.fscr[i].tuple, b.fscr[i].tuple);
    EXPECT_EQ(a.fscr[i].conflict_attrs, b.fscr[i].conflict_attrs);
    EXPECT_EQ(a.fscr[i].fused, b.fscr[i].fused);
    EXPECT_EQ(a.fscr[i].f_score, b.fscr[i].f_score);
  }
  EXPECT_EQ(a.duplicates, b.duplicates);
}

// The serving invariant (reuse off): K sessions running concurrently on
// the shared executor are bit-identical to K sequential cold runs.
TEST(CleanServerTest, ConcurrentSessionsMatchSequentialColdRuns) {
  ServingCase c = MakeServingCase(31, 8);
  CleaningOptions options = ServingOptions();
  CleanModel model = *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);

  PoolExecutor pool(4);
  ServerOptions sopts;
  sopts.executor = &pool;
  sopts.max_concurrent_sessions = 4;
  sopts.queue_capacity = c.batches.size();
  CleanServer server = *CleanServer::Create(model, sopts);

  std::vector<CleanTicket> tickets;
  for (const Dataset& batch : c.batches) {
    auto ticket = server.Submit(batch);
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    tickets.push_back(*ticket);
  }
  CleaningEngine cold(options);
  for (size_t i = 0; i < tickets.size(); ++i) {
    auto served = tickets[i].Take();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    auto reference = cold.Clean(c.batches[i], c.wl.rules);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(served->cleaned, reference->cleaned) << "batch " << i;
    EXPECT_EQ(served->deduped, reference->deduped) << "batch " << i;
    ExpectSameReport(served->report, reference->report);
  }

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, c.batches.size());
  EXPECT_EQ(stats.completed, c.batches.size());
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_GT(stats.stage_seconds.total, 0.0);
  EXPECT_GT(stats.stage_seconds.fscr, 0.0);
}

// Same invariant with weight reuse on against a warmed (and from then on
// read-only) store — and with the sessions themselves parallel on the
// same pool the server schedules on (nested ParallelFor).
TEST(CleanServerTest, ConcurrentReuseSessionsMatchSequentialWarmRuns) {
  ServingCase c = MakeServingCase(33, 8);
  PoolExecutor pool(4);
  CleaningOptions options = ServingOptions();
  options.executor = &pool;
  options.num_threads = 2;
  CleanModel model = *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);
  ASSERT_TRUE(model.Warm(c.batches[0]).ok());

  SessionOptions reuse;
  reuse.reuse_model_weights = true;

  // Sequential reference first; the store is warmed and never written
  // again (reuse sessions do not contribute), so order cannot matter.
  std::vector<CleanResult> reference;
  for (const Dataset& batch : c.batches) {
    auto result = model.Clean(batch, reuse);
    ASSERT_TRUE(result.ok());
    reference.push_back(std::move(*result));
  }

  ServerOptions sopts;
  sopts.executor = &pool;
  sopts.max_concurrent_sessions = 4;
  sopts.queue_capacity = c.batches.size();
  CleanServer server = *CleanServer::Create(model, sopts);
  std::vector<CleanTicket> tickets;
  for (const Dataset& batch : c.batches) {
    tickets.push_back(*server.Submit(batch, reuse));
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    auto served = tickets[i].Take();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_EQ(served->cleaned, reference[i].cleaned) << "batch " << i;
    EXPECT_EQ(served->deduped, reference[i].deduped) << "batch " << i;
    ExpectSameReport(served->report, reference[i].report);
  }
}

// A latch the tests use to park a job inside its first progress event.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;

  void Enter() {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [this] { return released; });
  }
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
};

TEST(CleanServerTest, FullQueueReturnsUnavailable) {
  Dataset dirty = *SampleHospitalDirty();
  CleaningOptions options;
  options.agp_threshold = 1;
  CleanModel model = *CleaningEngine(options).Compile(dirty.schema(),
                                                      *SampleHospitalRules());
  PoolExecutor pool(1);
  ServerOptions sopts;
  sopts.executor = &pool;
  sopts.max_concurrent_sessions = 1;
  sopts.queue_capacity = 1;
  CleanServer server = *CleanServer::Create(model, sopts);

  Gate gate;
  SessionOptions blocking;
  blocking.progress = [&gate](const StageProgress& p) {
    if (p.stage == Stage::kIndex && p.units_done == 0) gate.Enter();
  };
  auto running = server.Submit(dirty, blocking);
  ASSERT_TRUE(running.ok());
  gate.AwaitEntered();  // the one worker is now parked inside the job

  auto queued = server.Submit(dirty);  // fills the pending queue
  ASSERT_TRUE(queued.ok());
  auto rejected = server.Submit(dirty);  // overflows it
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsUnavailable()) << rejected.status().ToString();
  // The rejection is actionable: it carries the live depth and capacity,
  // and IsRetryable tells clients it is worth backing off and retrying.
  EXPECT_EQ(rejected.status().message(),
            "server queue is full (1 of 1 pending submissions); retry later");
  EXPECT_TRUE(RetryPolicy::IsRetryable(rejected.status()));
  {
    ServerStats stats = server.Stats();
    EXPECT_EQ(stats.queued, 1u);
    EXPECT_EQ(stats.running, 1u);
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.rejected, 1u);
  }

  gate.Release();
  EXPECT_TRUE(running->Wait().ok());
  EXPECT_TRUE(queued->Wait().ok());
  // With the queue drained, admission opens again.
  auto retried = server.Submit(dirty);
  ASSERT_TRUE(retried.ok());
  EXPECT_TRUE(retried->Wait().ok());
  EXPECT_EQ(server.Stats().rejected, 1u);  // cumulative, not reset
}

TEST(CleanServerTest, SubmitWithRetryIsPlainSubmitWhenUncontended) {
  ServingCase c = MakeServingCase(35, 2);
  CleaningOptions options = ServingOptions();
  CleanModel model =
      *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);
  PoolExecutor pool(2);
  ServerOptions sopts;
  sopts.executor = &pool;
  CleanServer server = *CleanServer::Create(model, sopts);

  size_t retries = 99;
  auto ticket = server.SubmitWithRetry(c.batches[0], SessionOptions{},
                                       RetryPolicy{}, &retries);
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  EXPECT_EQ(retries, 0u);  // admitted first try: no delay was ever drawn
  auto served = ticket->Take();
  ASSERT_TRUE(served.ok());
  auto reference = CleaningEngine(options).Clean(c.batches[0], c.wl.rules);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(served->deduped, reference->deduped);
  EXPECT_EQ(server.Stats().rejected, 0u);
}

TEST(CleanServerTest, SubmitWithRetryRidesOutBackpressure) {
  Dataset dirty = *SampleHospitalDirty();
  CleaningOptions options;
  options.agp_threshold = 1;
  CleanModel model = *CleaningEngine(options).Compile(dirty.schema(),
                                                      *SampleHospitalRules());
  PoolExecutor pool(1);
  ServerOptions sopts;
  sopts.executor = &pool;
  sopts.max_concurrent_sessions = 1;
  sopts.queue_capacity = 1;
  CleanServer server = *CleanServer::Create(model, sopts);

  Gate gate;
  SessionOptions blocking;
  blocking.progress = [&gate](const StageProgress& p) {
    if (p.stage == Stage::kIndex && p.units_done == 0) gate.Enter();
  };
  auto running = server.Submit(dirty, blocking);
  ASSERT_TRUE(running.ok());
  gate.AwaitEntered();
  auto queued = server.Submit(dirty);  // queue now full
  ASSERT_TRUE(queued.ok());

  RetryPolicy fast;
  fast.initial_backoff = std::chrono::milliseconds(1);
  fast.max_backoff = std::chrono::milliseconds(5);

  // While the worker stays parked every attempt is rejected; the loop
  // must give up with the *last* kUnavailable after max_attempts tries.
  fast.max_attempts = 3;
  size_t retries = 0;
  auto exhausted =
      server.SubmitWithRetry(dirty, SessionOptions{}, fast, &retries);
  ASSERT_FALSE(exhausted.ok());
  EXPECT_TRUE(exhausted.status().IsUnavailable())
      << exhausted.status().ToString();
  EXPECT_EQ(retries, 2u);  // 3 attempts = 2 retries
  EXPECT_EQ(server.Stats().rejected, 3u);

  // Unblock the worker on a helper thread mid-retry-loop: a later attempt
  // then finds room and the submit goes through.
  fast.max_attempts = 200;
  std::thread releaser([&gate] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gate.Release();
  });
  auto admitted =
      server.SubmitWithRetry(dirty, SessionOptions{}, fast, &retries);
  releaser.join();
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_GE(retries, 1u);
  EXPECT_TRUE(running->Wait().ok());
  EXPECT_TRUE(queued->Wait().ok());
  EXPECT_TRUE(admitted->Wait().ok());
}

TEST(CleanServerTest, SubmitWithRetryRejectsABrokenPolicy) {
  ServingCase c = MakeServingCase(36, 1);
  CleanModel model = *CleaningEngine(ServingOptions())
                          .Compile(c.dd.dirty.schema(), c.wl.rules);
  PoolExecutor pool(1);
  ServerOptions sopts;
  sopts.executor = &pool;
  CleanServer server = *CleanServer::Create(model, sopts);
  RetryPolicy broken;
  broken.max_attempts = 0;
  auto r = server.SubmitWithRetry(c.batches[0], SessionOptions{}, broken);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
}

TEST(CleanServerTest, OwningSubmitOutlivesTheCallersDataset) {
  ServingCase c = MakeServingCase(37, 2);
  CleaningOptions options = ServingOptions();
  CleanModel model =
      *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);
  PoolExecutor pool(2);
  ServerOptions sopts;
  sopts.executor = &pool;
  CleanServer server = *CleanServer::Create(model, sopts);

  auto reference = CleaningEngine(options).Clean(c.batches[0], c.wl.rules);
  ASSERT_TRUE(reference.ok());
  CleanTicket ticket = [&] {
    Dataset local = c.batches[0];  // dies when this lambda returns
    return *server.Submit(std::move(local));
  }();
  auto served = ticket.Take();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->deduped, reference->deduped);
}

TEST(CleanServerTest, SubmitCsvParsesQuarantinesAndServes) {
  Dataset dirty = *SampleHospitalDirty();
  CleaningOptions options;
  options.agp_threshold = 1;
  CleanModel model = *CleaningEngine(options).Compile(dirty.schema(),
                                                      *SampleHospitalRules());
  PoolExecutor pool(1);
  ServerOptions sopts;
  sopts.executor = &pool;
  CleanServer server = *CleanServer::Create(model, sopts);

  std::string csv = WriteCsv(dirty.ToCsv());
  // Wedge one malformed row into the middle of the payload.
  size_t second_newline = csv.find('\n', csv.find('\n') + 1);
  ASSERT_NE(second_newline, std::string::npos);
  std::string broken =
      csv.substr(0, second_newline + 1) + "just,two\n" + csv.substr(second_newline + 1);

  // Strict: the submission fails before anything is enqueued.
  auto strict = server.SubmitCsv(broken);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsIOError()) << strict.status().ToString();
  EXPECT_EQ(server.Stats().submitted, 0u);

  // Quarantining: the bad row is set aside and the batch still serves.
  QuarantineReport q;
  auto ticket = server.SubmitCsv(broken, SessionOptions{}, &q);
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  ASSERT_EQ(q.rows.size(), 1u);
  EXPECT_EQ(q.rows[0].row_number, 2u);
  EXPECT_EQ(q.rows_kept, dirty.num_rows());
  auto served = ticket->Take();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  auto reference = CleaningEngine(options).Clean(dirty, *SampleHospitalRules());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(served->deduped, reference->deduped);
}

TEST(CleanServerTest, CancelledQueuedTicketReportsCancelled) {
  Dataset dirty = *SampleHospitalDirty();
  CleaningOptions options;
  options.agp_threshold = 1;
  CleanModel model = *CleaningEngine(options).Compile(dirty.schema(),
                                                      *SampleHospitalRules());
  PoolExecutor pool(1);
  ServerOptions sopts;
  sopts.executor = &pool;
  sopts.max_concurrent_sessions = 1;
  sopts.queue_capacity = 4;
  CleanServer server = *CleanServer::Create(model, sopts);

  Gate gate;
  SessionOptions blocking;
  blocking.progress = [&gate](const StageProgress& p) {
    if (p.stage == Stage::kIndex && p.units_done == 0) gate.Enter();
  };
  auto running = server.Submit(dirty, blocking);
  ASSERT_TRUE(running.ok());
  gate.AwaitEntered();

  auto doomed = server.Submit(dirty);
  ASSERT_TRUE(doomed.ok());
  EXPECT_FALSE(doomed->done());
  doomed->Cancel();
  gate.Release();

  Status status = doomed->Wait();
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
  auto harvested = doomed->TryGet();
  ASSERT_TRUE(harvested.has_value());
  EXPECT_TRUE(harvested->status().IsCancelled());
  EXPECT_TRUE(running->Wait().ok());
}

TEST(CleanServerTest, ExpiredDeadlineLeavesInputUntouchedAndTicketTerminal) {
  ServingCase c = MakeServingCase(37, 1);
  CleanModel model =
      *CleaningEngine(ServingOptions()).Compile(c.dd.dirty.schema(), c.wl.rules);
  PoolExecutor pool(2);
  ServerOptions sopts;
  sopts.executor = &pool;
  CleanServer server = *CleanServer::Create(model, sopts);

  Dataset snapshot = c.dd.dirty.Clone();
  SessionOptions expired;
  expired.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  auto ticket = server.Submit(c.dd.dirty, expired);
  ASSERT_TRUE(ticket.ok());
  Status status = ticket->Wait();
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  EXPECT_EQ(c.dd.dirty, snapshot);
  // Terminal: the ticket keeps reporting the deadline status.
  EXPECT_TRUE(ticket->done());
  auto harvested = ticket->TryGet();
  ASSERT_TRUE(harvested.has_value());
  EXPECT_TRUE(harvested->status().IsDeadlineExceeded());
  EXPECT_EQ(server.Stats().deadline_expired, 1u);
}

TEST(CleanServerTest, MidRunDeadlineAbortsBetweenBlocks) {
  // Arm the deadline from inside the first progress event: some stage
  // boundary after it must observe the expiry, whatever the timing.
  ServingCase c = MakeServingCase(41, 1);
  CleanModel model =
      *CleaningEngine(ServingOptions()).Compile(c.dd.dirty.schema(), c.wl.rules);
  Dataset snapshot = c.dd.dirty.Clone();
  SessionOptions opts;
  opts.deadline = std::chrono::steady_clock::now();  // expires immediately
  CleanSession session = model.NewSession(c.dd.dirty, opts);
  Status status = session.Resume();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  EXPECT_FALSE(session.finished());
  EXPECT_EQ(c.dd.dirty, snapshot);
  // Sticky, like cancellation.
  EXPECT_TRUE(session.Resume().IsDeadlineExceeded());
  EXPECT_TRUE(session.TakeResult().status().IsDeadlineExceeded());
}

TEST(CleanServerTest, ExplicitCancelWinsOverExpiredDeadline) {
  Dataset dirty = *SampleHospitalDirty();
  CleanModel model = *CleaningEngine().Compile(dirty.schema(), *SampleHospitalRules());
  SessionOptions opts;
  opts.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  opts.cancel.RequestCancel();
  Status status = model.NewSession(dirty, opts).Resume();
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
}

TEST(CleanServerTest, InlineExecutorDegradesToSynchronousServing) {
  Dataset dirty = *SampleHospitalDirty();
  CleaningOptions options;
  options.agp_threshold = 1;
  CleanModel model = *CleaningEngine(options).Compile(dirty.schema(),
                                                      *SampleHospitalRules());
  InlineExecutor inline_executor;
  ServerOptions sopts;
  sopts.executor = &inline_executor;
  CleanServer server = *CleanServer::Create(model, sopts);
  auto ticket = server.Submit(dirty);
  ASSERT_TRUE(ticket.ok());
  EXPECT_TRUE(ticket->done());  // ran inside Submit
  auto result = ticket->Take();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cleaned, *SampleHospitalClean());
}

TEST(CleanServerTest, ResultCanOnlyBeTakenOnce) {
  Dataset dirty = *SampleHospitalDirty();
  CleanModel model = *CleaningEngine().Compile(dirty.schema(), *SampleHospitalRules());
  CleanServer server = *CleanServer::Create(model, {});
  auto ticket = server.Submit(dirty);
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(ticket->Take().ok());
  auto again = ticket->TryGet();
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->status().IsInvalid());
}

TEST(CleanServerTest, CreateRejectsZeroQueueCapacity) {
  Dataset dirty = *SampleHospitalDirty();
  CleanModel model = *CleaningEngine().Compile(dirty.schema(), *SampleHospitalRules());
  ServerOptions sopts;
  sopts.queue_capacity = 0;
  auto server = CleanServer::Create(model, sopts);
  ASSERT_FALSE(server.ok());
  EXPECT_TRUE(server.status().IsInvalid());
}

// Intra-stage progress: events are monotone per stage, parallel stages
// emit mid-stage events through the MPSC tick path, and every stage's
// last event totals its unit count.
TEST(CleanServerTest, IntraStageProgressIsMonotoneAndTotals) {
  ServingCase c = MakeServingCase(43, 1);
  PoolExecutor pool(4);
  CleaningOptions options = ServingOptions();
  options.executor = &pool;
  options.num_threads = 4;
  CleanModel model =
      *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);

  std::vector<StageProgress> events;
  SessionOptions opts;
  opts.progress = [&events](const StageProgress& p) { events.push_back(p); };
  CleanSession session = model.NewSession(c.dd.dirty, opts);
  ASSERT_TRUE(session.Resume().ok());

  ASSERT_FALSE(events.empty());
  int last_stage = -1;
  size_t last_done = 0;
  size_t stage_total = 0;
  for (const StageProgress& event : events) {
    const int stage = static_cast<int>(event.stage);
    if (stage != last_stage) {
      // New stage: the previous one must have closed at its total, and
      // stages appear in plan order starting with a units_done == 0 event.
      if (last_stage >= 0) EXPECT_EQ(last_done, stage_total);
      EXPECT_EQ(stage, last_stage + 1);
      EXPECT_EQ(event.units_done, 0u);
      last_stage = stage;
      stage_total = event.units_total;
      last_done = 0;
      continue;
    }
    EXPECT_EQ(event.units_total, stage_total);
    EXPECT_GE(event.units_done, last_done) << "stage " << StageName(event.stage);
    EXPECT_LE(event.units_done, stage_total);
    last_done = event.units_done;
  }
  EXPECT_EQ(last_stage, kNumStages - 1);
  EXPECT_EQ(last_done, stage_total);

  // The parallel stages delivered at least one event beyond the begin/end
  // pair (the relay's final flush at minimum).
  size_t fscr_events = 0;
  for (const StageProgress& event : events) {
    if (event.stage == Stage::kFscr) ++fscr_events;
  }
  EXPECT_GE(fscr_events, 3u);
  // kFscr counts tuples: its total is the batch's row count.
  for (const StageProgress& event : events) {
    if (event.stage == Stage::kFscr) {
      EXPECT_EQ(event.units_total, c.dd.dirty.num_rows());
    }
  }
}

// The queue discipline, observed end to end: while the one worker is
// parked, four jobs of mixed priority/deadline queue up; they must run
// in (priority desc, deadline asc, admission order) — in particular the
// late-submitted high-priority job overtakes everything (the priority
// inversion this heap exists to prevent), and among equal priorities the
// earliest deadline wins with deadline-less jobs last.
TEST(CleanServerTest, QueuePopsByPriorityThenDeadlineThenAdmission) {
  Dataset dirty = *SampleHospitalDirty();
  CleaningOptions options;
  options.agp_threshold = 1;
  CleanModel model = *CleaningEngine(options).Compile(dirty.schema(),
                                                      *SampleHospitalRules());
  PoolExecutor pool(1);
  ServerOptions sopts;
  sopts.executor = &pool;
  sopts.max_concurrent_sessions = 1;
  sopts.queue_capacity = 8;
  CleanServer server = *CleanServer::Create(model, sopts);

  Gate gate;
  SessionOptions blocking;
  blocking.progress = [&gate](const StageProgress& p) {
    if (p.stage == Stage::kIndex && p.units_done == 0) gate.Enter();
  };
  auto parked = server.Submit(dirty, blocking);
  ASSERT_TRUE(parked.ok());
  gate.AwaitEntered();  // the worker is pinned; everything below queues

  std::mutex order_mu;
  std::vector<char> order;  // first progress event per job, in run order
  auto tracked = [&](char label) {
    SessionOptions opts;
    opts.progress = [&, label, seen = std::make_shared<bool>(false)](
                        const StageProgress&) {
      if (*seen) return;
      *seen = true;
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(label);
    };
    return opts;
  };
  const auto far = std::chrono::steady_clock::now() + std::chrono::hours(1);

  SessionOptions a = tracked('A');  // pri 0, no deadline -> last
  SessionOptions b = tracked('B');  // pri 0, later deadline
  SessionOptions d = tracked('D');  // pri 0, earliest deadline
  b.deadline = far + std::chrono::minutes(30);
  d.deadline = far;
  SessionOptions c = tracked('C');  // pri 1, submitted LAST, runs first
  c.priority = 1;

  std::vector<CleanTicket> tickets;
  tickets.push_back(*server.Submit(dirty, a));
  tickets.push_back(*server.Submit(dirty, b));
  tickets.push_back(*server.Submit(dirty, d));
  tickets.push_back(*server.Submit(dirty, c));

  gate.Release();
  ASSERT_TRUE(parked->Wait().ok());
  for (CleanTicket& t : tickets) ASSERT_TRUE(t.Wait().ok());
  EXPECT_EQ(order, (std::vector<char>{'C', 'D', 'B', 'A'}));
}

// Without priorities or deadlines the heap degrades to plain FIFO:
// admission order is the only key, so existing serving behaviour (and
// every recorded transcript) is unchanged.
TEST(CleanServerTest, QueueStaysFifoWhenNobodySetsSchedulingKnobs) {
  Dataset dirty = *SampleHospitalDirty();
  CleaningOptions options;
  options.agp_threshold = 1;
  CleanModel model = *CleaningEngine(options).Compile(dirty.schema(),
                                                      *SampleHospitalRules());
  PoolExecutor pool(1);
  ServerOptions sopts;
  sopts.executor = &pool;
  sopts.max_concurrent_sessions = 1;
  sopts.queue_capacity = 8;
  CleanServer server = *CleanServer::Create(model, sopts);

  Gate gate;
  SessionOptions blocking;
  blocking.progress = [&gate](const StageProgress& p) {
    if (p.stage == Stage::kIndex && p.units_done == 0) gate.Enter();
  };
  auto parked = server.Submit(dirty, blocking);
  ASSERT_TRUE(parked.ok());
  gate.AwaitEntered();

  std::mutex order_mu;
  std::vector<int> order;
  std::vector<CleanTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    SessionOptions opts;
    opts.progress = [&, i, seen = std::make_shared<bool>(false)](
                        const StageProgress&) {
      if (*seen) return;
      *seen = true;
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(i);
    };
    tickets.push_back(*server.Submit(dirty, opts));
  }
  gate.Release();
  for (CleanTicket& t : tickets) ASSERT_TRUE(t.Wait().ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// Coalescing batches the scheduling, not the evidence: a flurry of small
// jobs drained as one dispatch group produces results bit-identical to a
// server that coalesces nothing, and the group counters record the
// grouping.
TEST(CleanServerTest, CoalescedMicroBatchesMatchIndividualExecution) {
  ServingCase c = MakeServingCase(45, 4);
  CleaningOptions options = ServingOptions();
  CleanModel model =
      *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);

  // Reference: a plain non-coalescing server.
  PoolExecutor ref_pool(1);
  ServerOptions ref_opts;
  ref_opts.executor = &ref_pool;
  ref_opts.queue_capacity = c.batches.size();
  CleanServer reference = *CleanServer::Create(model, ref_opts);
  std::vector<CleanResult> expected;
  for (const Dataset& batch : c.batches) {
    auto ticket = reference.Submit(batch);
    ASSERT_TRUE(ticket.ok());
    expected.push_back(*ticket->Take());
  }
  EXPECT_EQ(reference.Stats().coalesced_groups, 0u);

  // Coalescing server: park the worker, queue all four small batches,
  // release — the worker drains them as one group.
  PoolExecutor pool(1);
  ServerOptions sopts;
  sopts.executor = &pool;
  sopts.max_concurrent_sessions = 1;
  sopts.queue_capacity = c.batches.size() + 1;
  sopts.coalesce_max_rows = c.dd.dirty.num_rows() + 1;  // fits every batch
  CleanServer server = *CleanServer::Create(model, sopts);

  Gate gate;
  SessionOptions blocking;
  blocking.progress = [&gate](const StageProgress& p) {
    if (p.stage == Stage::kIndex && p.units_done == 0) gate.Enter();
  };
  auto parked = server.Submit(c.batches[0], blocking);
  ASSERT_TRUE(parked.ok());
  gate.AwaitEntered();

  std::vector<CleanTicket> tickets;
  for (const Dataset& batch : c.batches) {
    tickets.push_back(*server.Submit(batch));
  }
  gate.Release();
  ASSERT_TRUE(parked->Wait().ok());
  for (size_t i = 0; i < tickets.size(); ++i) {
    auto served = tickets[i].Take();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_EQ(served->cleaned, expected[i].cleaned) << "batch " << i;
    EXPECT_EQ(served->deduped, expected[i].deduped) << "batch " << i;
    ExpectSameReport(served->report, expected[i].report);
  }
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.coalesced_groups, 1u);
  EXPECT_EQ(stats.coalesced_jobs, c.batches.size());
  EXPECT_EQ(stats.completed, c.batches.size() + 1);
}

// The fleet's coordination primitive on its own: a staged submission
// parks at the pause stage with its live session exposed, resumes on
// demand, and ends bit-identical to a plain submission of the same batch.
TEST(CleanServerTest, StagedSubmissionParksResumesAndMatchesPlainSubmit) {
  ServingCase c = MakeServingCase(46, 1);
  CleaningOptions options = ServingOptions();
  CleanModel model =
      *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);
  PoolExecutor pool(2);
  ServerOptions sopts;
  sopts.executor = &pool;
  CleanServer server = *CleanServer::Create(model, sopts);

  auto staged = server.SubmitStaged(c.dd.dirty, Stage::kLearn, Stage::kDedup);
  ASSERT_TRUE(staged.ok()) << staged.status().ToString();
  ASSERT_TRUE(staged->WaitPaused().ok());
  ASSERT_NE(staged->session(), nullptr);
  EXPECT_EQ(staged->session()->next_stage(), Stage::kRsc);
  EXPECT_NE(staged->session()->mutable_index(), nullptr);
  EXPECT_FALSE(staged->done());  // parked, not terminal

  ASSERT_TRUE(staged->ResumeJob().ok());
  EXPECT_TRUE(staged->ResumeJob().IsInvalid());  // resume is one-shot
  auto served = staged->Take();
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  auto plain = server.Submit(c.dd.dirty);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->session(), nullptr);  // staged-only accessor
  EXPECT_TRUE(plain->ResumeJob().IsInvalid());
  auto expected = plain->Take();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(served->cleaned, expected->cleaned);
  EXPECT_EQ(served->deduped, expected->deduped);
  ExpectSameReport(served->report, expected->report);

  // A final stage short of kDedup leaves the outputs on the session (the
  // fleet's merge reads them there); there is no CleanResult to take.
  auto partial = server.SubmitStaged(c.dd.dirty, Stage::kLearn, Stage::kFscr);
  ASSERT_TRUE(partial.ok());
  ASSERT_TRUE(partial->WaitPaused().ok());
  ASSERT_TRUE(partial->ResumeJob().ok());
  ASSERT_TRUE(partial->Wait().ok());
  EXPECT_EQ(partial->session()->cleaned(), expected->cleaned);
  EXPECT_FALSE(partial->Take().ok());

  // Staging is validated up front: the pause must precede the final
  // stage, and the incremental lane cannot stage.
  EXPECT_TRUE(server.SubmitStaged(c.dd.dirty, Stage::kFscr, Stage::kLearn)
                  .status()
                  .IsInvalid());
  EXPECT_TRUE(server.SubmitStaged(c.dd.dirty, Stage::kLearn, Stage::kLearn)
                  .status()
                  .IsInvalid());
  SessionOptions incremental;
  incremental.incremental = true;
  EXPECT_TRUE(server
                  .SubmitStaged(c.dd.dirty, Stage::kLearn, Stage::kDedup,
                                incremental)
                  .status()
                  .IsInvalid());
}

// Ticket latency percentiles: every finished job lands one sample in the
// reservoir, and the summary is ordered (p50 <= p99 <= p999).
TEST(CleanServerTest, StatsReportTicketLatencyPercentiles) {
  ServingCase c = MakeServingCase(48, 6);
  CleaningOptions options = ServingOptions();
  CleanModel model =
      *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);
  PoolExecutor pool(2);
  ServerOptions sopts;
  sopts.executor = &pool;
  sopts.max_concurrent_sessions = 2;
  sopts.queue_capacity = c.batches.size();
  CleanServer server = *CleanServer::Create(model, sopts);

  EXPECT_EQ(server.Stats().latency.samples, 0u);
  std::vector<CleanTicket> tickets;
  for (const Dataset& batch : c.batches) {
    tickets.push_back(*server.Submit(batch));
  }
  for (CleanTicket& t : tickets) ASSERT_TRUE(t.Wait().ok());

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.latency.samples, c.batches.size());
  EXPECT_GT(stats.latency.p50, 0.0);
  EXPECT_GE(stats.latency.p99, stats.latency.p50);
  EXPECT_GE(stats.latency.p999, stats.latency.p99);
}

}  // namespace
}  // namespace mlnclean
