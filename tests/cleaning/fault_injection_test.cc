// Fault-injection sweep (common/failpoint.h): every catalogued failpoint
// is fired, one at a time, against a live CleanServer or the snapshot
// paths, and each time the process must stay up, the failing operation
// must report a non-OK Status, the server's Stats() must stay consistent,
// and the *next* operation must succeed. The sweep tests run only in a
// fault build (cmake -DMLNCLEAN_FAILPOINTS=ON) and are exercised under
// ASan by CI's fault-injection job; the exception-hardening regressions
// at the bottom (a throwing progress callback must become a failed
// ticket, not a dead worker) need no failpoints and run in every build.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cleaning/server.h"
#include "common/retry.h"
#include "datagen/hospital.h"
#include "errorgen/injector.h"

namespace mlnclean {
namespace {

struct ServingCase {
  Workload wl;
  DirtyDataset dd;
  std::vector<Dataset> batches;
};

ServingCase MakeServingCase(uint64_t seed, size_t num_batches) {
  HospitalConfig config;
  config.num_hospitals = 20;
  config.num_measures = 6;
  Workload wl = *MakeHospitalWorkload(config);
  ErrorSpec spec;
  spec.error_rate = 0.05;
  spec.seed = seed;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  std::vector<Dataset> batches = SplitIntoBatches(dd.dirty, num_batches);
  return ServingCase{std::move(wl), std::move(dd), std::move(batches)};
}

// Terminal counters must reconcile with admissions once the server is
// idle: nothing lost, nothing double-counted, no stuck running/queued.
// Tickets are signalled just before the worker's running-count decrement,
// so give the bookkeeping a bounded moment to drain first.
void ExpectConsistentIdleStats(const CleanServer& server) {
  ServerStats stats = server.Stats();
  for (int spin = 0; (stats.running != 0 || stats.queued != 0) && spin < 2000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = server.Stats();
  }
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.failed + stats.cancelled +
                                 stats.deadline_expired);
}

// Resets failpoints on entry and exit so a failing test cannot leak an
// armed site into its neighbours.
class FailpointSweepTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetFailpoints(); }
  void TearDown() override { ResetFailpoints(); }
};

TEST_F(FailpointSweepTest, CatalogAndConfigureContract) {
  // The catalog exists in every build; arming only works in fault builds.
  const auto& catalog = FailpointCatalog();
  ASSERT_GE(catalog.size(), 15u);
  for (const FailpointInfo& info : catalog) {
    EXPECT_NE(info.name, nullptr);
    EXPECT_EQ(std::string(info.name).find(' '), std::string::npos)
        << info.name;
  }
  Status unknown = ConfigureFailpoint("no/such-site", FailpointSpec::Once());
  ASSERT_FALSE(unknown.ok());
  if (FailpointsCompiledIn()) {
    EXPECT_TRUE(unknown.IsNotFound()) << unknown.ToString();
    EXPECT_TRUE(ConfigureFailpoint("server/worker-loop", FailpointSpec::Once()).ok());
    ResetFailpoints();
    EXPECT_EQ(FailpointFires("server/worker-loop"), 0u);
  } else {
    EXPECT_TRUE(unknown.IsNotImplemented()) << unknown.ToString();
  }
}

// The tentpole gate: every serve-domain site fired exactly once against a
// live 4-worker server must produce a failed ticket (never a crash or a
// hang), leave Stats() consistent, and let the next submission succeed.
TEST_F(FailpointSweepTest, ServeDomainSweepFailsTicketsNotTheServer) {
  if (!FailpointsCompiledIn()) {
    GTEST_SKIP() << "requires -DMLNCLEAN_FAILPOINTS=ON";
  }
  ServingCase c = MakeServingCase(41, 4);
  PoolExecutor pool(4);
  CleaningOptions options;
  options.agp_threshold = 3;
  // Sessions parallelize on the same pool so the ParallelFor-internal
  // sites (executor/worker-task, parallel-for/block) are actually reached.
  options.executor = &pool;
  options.num_threads = 4;
  CleanModel model =
      *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);

  ServerOptions sopts;
  sopts.executor = &pool;
  sopts.max_concurrent_sessions = 4;
  sopts.queue_capacity = 16;
  CleanServer server = *CleanServer::Create(model, sopts);

  size_t sites_fired = 0;
  for (const FailpointInfo& info : FailpointCatalog()) {
    if (info.domain != FailpointDomain::kServe) continue;
    SCOPED_TRACE(info.name);

    // One legal fire can be invisible: executor/worker-task may throw in
    // a ParallelFor worker task that was dequeued only after the loop
    // already drained — such retired tasks are no-ops by contract, so
    // their error is (correctly) swallowed and the ticket succeeds.
    // Re-arm and resubmit until the fire lands where a live loop
    // observes it; every observed fire must fail the ticket.
    bool observed = false;
    bool reached = false;
    for (int attempt = 0; attempt < 10 && !observed; ++attempt) {
      ASSERT_TRUE(ConfigureFailpoint(info.name, FailpointSpec::Once()).ok());
      SessionOptions opts;
      // weight-contribute only evaluates on the write-back path.
      opts.contribute_weights = true;
      auto ticket = server.Submit(c.batches[0], opts);
      ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
      Status status = ticket->Wait();
      if (FailpointFires(info.name) == 0) {
        // Site not on this scenario's path: the run must have been clean.
        EXPECT_TRUE(status.ok()) << status.ToString();
        ResetFailpoints();
        break;
      }
      reached = true;
      if (!status.ok()) {
        observed = true;
        EXPECT_NE(status.message().find(info.name), std::string::npos)
            << "failure does not name the site: " << status.ToString();
      }
      ResetFailpoints();
    }
    if (observed) ++sites_fired;
    EXPECT_EQ(reached, observed)
        << "site fired repeatedly but never surfaced on a ticket";

    // The server must still be fully serviceable after the fault.
    auto next = server.Submit(c.batches[1]);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    EXPECT_TRUE(next->Wait().ok());
    ExpectConsistentIdleStats(server);
  }
  // The sweep is only meaningful if the scenario actually reaches the
  // sites: the serve-domain catalog is on this workload's path.
  EXPECT_GE(sites_fired, 9u);
}

TEST_F(FailpointSweepTest, InjectedBadAllocBecomesResourceExhausted) {
  if (!FailpointsCompiledIn()) {
    GTEST_SKIP() << "requires -DMLNCLEAN_FAILPOINTS=ON";
  }
  ServingCase c = MakeServingCase(42, 2);
  CleanModel model =
      *CleaningEngine(CleaningOptions{}).Compile(c.dd.dirty.schema(), c.wl.rules);
  PoolExecutor pool(2);
  ServerOptions sopts;
  sopts.executor = &pool;
  CleanServer server = *CleanServer::Create(model, sopts);

  ASSERT_TRUE(ConfigureFailpoint(
                  "engine/stage-rsc",
                  FailpointSpec::Once(FailpointSpec::Action::kThrowBadAlloc))
                  .ok());
  auto ticket = server.Submit(c.batches[0]);
  ASSERT_TRUE(ticket.ok());
  Status status = ticket->Wait();
  ASSERT_EQ(FailpointFires("engine/stage-rsc"), 1u);
  EXPECT_TRUE(status.IsResourceExhausted()) << status.ToString();
  EXPECT_TRUE(RetryPolicy::IsRetryable(status));
  ResetFailpoints();
  auto next = server.Submit(c.batches[0]);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->Wait().ok());
  ExpectConsistentIdleStats(server);
}

TEST_F(FailpointSweepTest, AdmissionFaultRejectsTheSubmitOnly) {
  if (!FailpointsCompiledIn()) {
    GTEST_SKIP() << "requires -DMLNCLEAN_FAILPOINTS=ON";
  }
  ServingCase c = MakeServingCase(43, 2);
  CleanModel model =
      *CleaningEngine(CleaningOptions{}).Compile(c.dd.dirty.schema(), c.wl.rules);
  PoolExecutor pool(2);
  ServerOptions sopts;
  sopts.executor = &pool;
  CleanServer server = *CleanServer::Create(model, sopts);

  ASSERT_TRUE(ConfigureFailpoint("server/admission", FailpointSpec::Once()).ok());
  auto rejected = server.Submit(c.batches[0]);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInternal()) << rejected.status().ToString();
  EXPECT_EQ(server.Stats().submitted, 0u);  // nothing half-admitted
  ResetFailpoints();
  auto ticket = server.Submit(c.batches[0]);
  ASSERT_TRUE(ticket.ok());
  EXPECT_TRUE(ticket->Wait().ok());
  ExpectConsistentIdleStats(server);
}

// Write-path sweep for the crash-safe snapshot contract: a fault at ANY
// write-path site must fail SaveToFile, leave the pre-existing snapshot
// at the target byte-identical and loadable, and leave no temp debris.
TEST_F(FailpointSweepTest, SaveToFileFaultsNeverDamageTheExistingSnapshot) {
  if (!FailpointsCompiledIn()) {
    GTEST_SKIP() << "requires -DMLNCLEAN_FAILPOINTS=ON";
  }
  ServingCase c = MakeServingCase(44, 2);
  CleaningOptions options;
  CleanModel model =
      *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);
  ASSERT_TRUE(model.Warm(c.batches[0]).ok());

  const std::string path =
      ::testing::TempDir() + "/mlnclean_fault_snapshot.bin";
  std::remove(path.c_str());
  ASSERT_TRUE(model.SaveToFile(path).ok());
  const auto read_file = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const std::string good_bytes = read_file(path);
  ASSERT_FALSE(good_bytes.empty());

  for (const FailpointInfo& info : FailpointCatalog()) {
    if (info.domain != FailpointDomain::kSnapshotWrite) continue;
    SCOPED_TRACE(info.name);
    ASSERT_TRUE(ConfigureFailpoint(info.name, FailpointSpec::Once()).ok());
    Status status = model.SaveToFile(path);
    ASSERT_EQ(FailpointFires(info.name), 1u) << "site not reached";
    EXPECT_FALSE(status.ok()) << "fired but SaveToFile succeeded";
    ResetFailpoints();
    // Old snapshot intact, still loadable, no temp file left behind.
    EXPECT_EQ(read_file(path), good_bytes);
    auto loaded = CleaningEngine().LoadFromFile(path);
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    std::ifstream tmp(path + ".tmp." + std::to_string(::getpid()),
                      std::ios::binary);
    EXPECT_FALSE(tmp.good()) << "temp debris left behind";
  }

  // And with every site disarmed the save path still works.
  ASSERT_TRUE(model.SaveToFile(path).ok());
  std::remove(path.c_str());
}

TEST_F(FailpointSweepTest, DecodeFaultIsAStatusNotACrash) {
  if (!FailpointsCompiledIn()) {
    GTEST_SKIP() << "requires -DMLNCLEAN_FAILPOINTS=ON";
  }
  ServingCase c = MakeServingCase(45, 2);
  CleanModel model =
      *CleaningEngine(CleaningOptions{}).Compile(c.dd.dirty.schema(), c.wl.rules);
  std::ostringstream out;
  ASSERT_TRUE(model.Save(out).ok());

  ASSERT_TRUE(ConfigureFailpoint("snapshot/decode", FailpointSpec::Once()).ok());
  std::istringstream in(out.str());
  auto loaded = CleaningEngine().Load(in);
  ASSERT_EQ(FailpointFires("snapshot/decode"), 1u);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInternal()) << loaded.status().ToString();
  ResetFailpoints();
  std::istringstream again(out.str());
  EXPECT_TRUE(CleaningEngine().Load(again).ok());
}

TEST_F(FailpointSweepTest, EveryNAndProbabilityPoliciesAreDeterministic) {
  if (!FailpointsCompiledIn()) {
    GTEST_SKIP() << "requires -DMLNCLEAN_FAILPOINTS=ON";
  }
  ServingCase c = MakeServingCase(46, 2);
  CleanModel model =
      *CleaningEngine(CleaningOptions{}).Compile(c.dd.dirty.schema(), c.wl.rules);
  PoolExecutor pool(2);
  ServerOptions sopts;
  sopts.executor = &pool;
  CleanServer server = *CleanServer::Create(model, sopts);

  // every-2nd: job 1 fires it (hits 1, 2 -> fire at 2? no: fire on
  // multiples), so with one evaluation per job, jobs 2 and 4 fail.
  ASSERT_TRUE(
      ConfigureFailpoint("server/worker-loop", FailpointSpec::EveryN(2)).ok());
  std::vector<bool> failed;
  for (int i = 0; i < 4; ++i) {
    auto ticket = server.Submit(c.batches[0]);
    ASSERT_TRUE(ticket.ok());
    failed.push_back(!ticket->Wait().ok());
  }
  EXPECT_EQ(failed, (std::vector<bool>{false, true, false, true}));
  EXPECT_EQ(FailpointHits("server/worker-loop"), 4u);
  EXPECT_EQ(FailpointFires("server/worker-loop"), 2u);
  ResetFailpoints();

  // Seeded probabilistic firing: the same seed produces the same
  // fire pattern across two sweeps of 16 evaluations.
  auto run_pattern = [&]() {
    std::vector<bool> pattern;
    EXPECT_TRUE(ConfigureFailpoint("server/worker-loop",
                                   FailpointSpec::Probability(0.5, 2021))
                    .ok());
    for (int i = 0; i < 16; ++i) {
      auto ticket = server.Submit(c.batches[1]);
      EXPECT_TRUE(ticket.ok());
      pattern.push_back(!ticket->Wait().ok());
    }
    ResetFailpoints();
    return pattern;
  };
  const std::vector<bool> first = run_pattern();
  EXPECT_EQ(first, run_pattern());
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  ExpectConsistentIdleStats(server);
}

// ------------------------------------------------- hardening (all builds)

// Regression for the worker-loop hardening: a progress callback that
// throws inside a stage must fail that job's ticket (kInternal), not
// propagate out of the CleanServer worker loop and kill the executor
// thread — and every other queued job must still drain normally.
TEST(ExceptionHardeningTest, ThrowingProgressCallbackFailsOnlyItsTicket) {
  ServingCase c = MakeServingCase(47, 6);
  PoolExecutor pool(4);
  CleaningOptions options;
  options.agp_threshold = 3;
  options.executor = &pool;
  options.num_threads = 2;
  CleanModel model =
      *CleaningEngine(options).Compile(c.dd.dirty.schema(), c.wl.rules);
  ServerOptions sopts;
  sopts.executor = &pool;
  sopts.max_concurrent_sessions = 4;
  sopts.queue_capacity = c.batches.size();
  CleanServer server = *CleanServer::Create(model, sopts);

  std::vector<CleanTicket> tickets;
  for (size_t i = 0; i < c.batches.size(); ++i) {
    SessionOptions opts;
    if (i == 2) {
      opts.progress = [](const StageProgress& p) {
        if (p.stage == Stage::kRsc && p.units_done == 0) {
          throw std::runtime_error("progress callback exploded");
        }
      };
    }
    auto ticket = server.Submit(c.batches[i], opts);
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    tickets.push_back(*ticket);
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    Status status = tickets[i].Wait();
    if (i == 2) {
      ASSERT_FALSE(status.ok());
      EXPECT_TRUE(status.IsInternal()) << status.ToString();
      EXPECT_NE(status.message().find("progress callback exploded"),
                std::string::npos)
          << status.ToString();
    } else {
      EXPECT_TRUE(status.ok()) << "sibling job " << i << ": " << status.ToString();
    }
  }
  ExpectConsistentIdleStats(server);
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, c.batches.size() - 1);

  // The server takes new work afterwards.
  auto next = server.Submit(c.batches[0]);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->Wait().ok());
}

// A callback that throws from the *sequential* engine path (no server)
// must surface as the session's terminal Status, and the session must
// stay terminal instead of half-running later stages.
TEST(ExceptionHardeningTest, SessionConvertsStageExceptionsToStatus) {
  ServingCase c = MakeServingCase(48, 2);
  CleanModel model =
      *CleaningEngine(CleaningOptions{}).Compile(c.dd.dirty.schema(), c.wl.rules);
  SessionOptions opts;
  int calls = 0;
  opts.progress = [&calls](const StageProgress&) {
    if (++calls == 3) throw std::logic_error("boom");
  };
  CleanSession session = model.NewSession(c.batches[0], opts);
  Status status = session.Resume();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInternal()) << status.ToString();
  EXPECT_NE(status.message().find("boom"), std::string::npos);
  // Sticky terminal: a later Run* reports the same failure, and the
  // result cannot be taken.
  EXPECT_FALSE(session.Resume().ok());
  EXPECT_FALSE(session.TakeResult().ok());
}

}  // namespace
}  // namespace mlnclean
