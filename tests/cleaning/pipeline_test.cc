// End-to-end pipeline behaviour through the engine API (these predate the
// CleaningEngine and rode on the removed MlnCleanPipeline facade; the
// invariants are facade-independent).

#include <gtest/gtest.h>

#include "cleaning/engine.h"
#include "datagen/hospital.h"
#include "datagen/sample.h"
#include "errorgen/injector.h"
#include "eval/metrics.h"

namespace mlnclean {
namespace {

TEST(PipelineTest, CleansTable1ToGroundTruth) {
  // The headline walk-through: MLNClean on Table 1 produces the clean
  // table, then deduplication collapses it to the two real entities.
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions options;
  options.agp_threshold = 1;
  auto result = CleaningEngine(options).Clean(dirty, rules);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->cleaned, *SampleHospitalClean());
  // t1/t2 collapse to one tuple, t3-t6 to another.
  EXPECT_EQ(result->deduped.num_rows(), 2u);
  EXPECT_EQ(result->report.duplicates.size(), 4u);
}

TEST(PipelineTest, CleanInputIsFixpoint) {
  // Cleaning already-clean data must not change it (idempotence).
  Dataset clean = *SampleHospitalClean();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions options;
  options.agp_threshold = 1;
  options.remove_duplicates = false;
  auto result = CleaningEngine(options).Clean(clean, rules);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->cleaned, clean);
}

TEST(PipelineTest, TimingsPopulated) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  auto result = CleaningEngine().Clean(dirty, rules);
  ASSERT_TRUE(result.ok());
  const StageTimings& t = result->report.timings;
  EXPECT_GE(t.index, 0.0);
  EXPECT_GT(t.total, 0.0);
  EXPECT_GE(t.total, t.index + t.agp + t.learn + t.rsc + t.fscr);
}

TEST(PipelineTest, OptionValidationRejectsBadConfig) {
  CleaningOptions options;
  options.max_fusion_nodes = 0;
  auto result =
      CleaningEngine(options).Clean(*SampleHospitalDirty(), *SampleHospitalRules());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalid());
}

TEST(PipelineTest, DuplicateRemovalCanBeDisabled) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions options;
  options.remove_duplicates = false;
  auto result = CleaningEngine(options).Clean(dirty, rules);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->deduped.num_rows(), dirty.num_rows());
  EXPECT_TRUE(result->report.duplicates.empty());
}

TEST(PipelineTest, PriorOnlyAblationStillCleansSample) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions options;
  options.agp_threshold = 1;
  options.learn_weights = false;  // Eq. 4 priors only
  auto result = CleaningEngine(options).Clean(dirty, rules);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cleaned, *SampleHospitalClean());
}

TEST(PipelineTest, RepairsInjectedErrorsOnGeneratedData) {
  HospitalConfig config;
  config.num_hospitals = 30;
  config.num_measures = 10;
  Workload wl = *MakeHospitalWorkload(config);
  ErrorSpec spec;
  spec.error_rate = 0.05;
  spec.seed = 3;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  CleaningOptions options;
  options.agp_threshold = 3;
  auto result = CleaningEngine(options).Clean(dd.dirty, wl.rules);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  RepairMetrics m = EvaluateRepair(dd.dirty, result->cleaned, dd.truth);
  EXPECT_GT(m.F1(), 0.6) << "precision=" << m.Precision()
                         << " recall=" << m.Recall();
}

TEST(PipelineTest, EmptyRuleSetLeavesDataUntouched) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules(dirty.schema());
  auto result = CleaningEngine().Clean(dirty, rules);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cleaned, dirty);
}

// Field-wise equality of the full decision trace (the record structs carry
// no operator==); timings are excluded, everything else must match.
void ExpectSameReport(const CleaningReport& a, const CleaningReport& b) {
  ASSERT_EQ(a.agp.size(), b.agp.size());
  for (size_t i = 0; i < a.agp.size(); ++i) {
    EXPECT_EQ(a.agp[i].block, b.agp[i].block);
    EXPECT_EQ(a.agp[i].abnormal_key, b.agp[i].abnormal_key);
    EXPECT_EQ(a.agp[i].abnormal_tuples, b.agp[i].abnormal_tuples);
    EXPECT_EQ(a.agp[i].num_pieces, b.agp[i].num_pieces);
    EXPECT_EQ(a.agp[i].target_key, b.agp[i].target_key);
    EXPECT_EQ(a.agp[i].merged, b.agp[i].merged);
  }
  ASSERT_EQ(a.rsc.size(), b.rsc.size());
  for (size_t i = 0; i < a.rsc.size(); ++i) {
    EXPECT_EQ(a.rsc[i].block, b.rsc[i].block);
    EXPECT_EQ(a.rsc[i].group_key, b.rsc[i].group_key);
    EXPECT_EQ(a.rsc[i].winner_values, b.rsc[i].winner_values);
    EXPECT_EQ(a.rsc[i].loser_values, b.rsc[i].loser_values);
    EXPECT_EQ(a.rsc[i].affected_tuples, b.rsc[i].affected_tuples);
  }
  ASSERT_EQ(a.fscr.size(), b.fscr.size());
  for (size_t i = 0; i < a.fscr.size(); ++i) {
    EXPECT_EQ(a.fscr[i].tuple, b.fscr[i].tuple);
    EXPECT_EQ(a.fscr[i].conflict_attrs, b.fscr[i].conflict_attrs);
    EXPECT_EQ(a.fscr[i].fused, b.fscr[i].fused);
    // Bit-identical, not just close: the parallel run must execute the
    // same floating-point operations in the same order per tuple.
    EXPECT_EQ(a.fscr[i].f_score, b.fscr[i].f_score);
  }
  EXPECT_EQ(a.duplicates, b.duplicates);
}

TEST(PipelineTest, ParallelRunMatchesSequentialBitIdentically) {
  HospitalConfig config;
  config.num_hospitals = 30;
  config.num_measures = 10;
  Workload wl = *MakeHospitalWorkload(config);
  ErrorSpec spec;
  spec.error_rate = 0.05;
  spec.seed = 7;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);

  CleaningOptions sequential;
  sequential.agp_threshold = 3;
  sequential.num_threads = 1;
  // An explicit 8-thread pool: the shared process executor would clamp to
  // the host's core count, which may be 1 on a small CI box.
  PoolExecutor pool(8);
  CleaningOptions parallel = sequential;
  parallel.num_threads = 8;
  parallel.executor = &pool;

  auto seq = CleaningEngine(sequential).Clean(dd.dirty, wl.rules);
  auto par = CleaningEngine(parallel).Clean(dd.dirty, wl.rules);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_EQ(seq->cleaned, par->cleaned);
  EXPECT_EQ(seq->deduped, par->deduped);
  ExpectSameReport(seq->report, par->report);
}

TEST(PipelineTest, CacheAndThreadKnobsDoNotChangeResults) {
  // All four {cache on/off} x {1/4 threads} corners agree on the sample.
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions base;
  base.agp_threshold = 1;
  PoolExecutor pool(4);
  Dataset reference;
  bool first = true;
  for (bool cached : {true, false}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      CleaningOptions options = base;
      options.cache_distances = cached;
      options.num_threads = threads;
      if (threads > 1) options.executor = &pool;
      auto result = CleaningEngine(options).Clean(dirty, rules);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      if (first) {
        reference = result->cleaned;
        first = false;
        EXPECT_EQ(reference, *SampleHospitalClean());
      } else {
        EXPECT_EQ(result->cleaned, reference)
            << "cache=" << cached << " threads=" << threads;
      }
    }
  }
}

TEST(PipelineTest, AutoThreadCountResolves) {
  CleaningOptions options;
  options.num_threads = 0;  // auto
  EXPECT_GE(options.ResolvedNumThreads(), 1u);
  EXPECT_NE(options.ResolvedExecutor(), nullptr);
  options.num_threads = 3;
  EXPECT_EQ(options.ResolvedNumThreads(), 3u);
  // num_threads == 1 resolves to the inline executor; > 1 to a pool.
  options.num_threads = 1;
  EXPECT_EQ(options.ResolvedExecutor()->concurrency(), 1u);
  PoolExecutor pool(2);
  options.executor = &pool;
  EXPECT_EQ(options.ResolvedExecutor(), &pool);
}

TEST(PipelineTest, StageDecompositionMatchesClean) {
  // The old RunStageOne / RunStageTwo split, as staged sessions: run one
  // session to kRsc, hand its index + trace to a ResumeSession, finish.
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions options;
  options.agp_threshold = 1;
  CleanModel model = *CleaningEngine(options).Compile(rules.schema(), rules);

  CleanSession one = model.NewSession(dirty);
  ASSERT_TRUE(one.RunUntil(Stage::kRsc).ok());
  CleanSession two = model.ResumeSession(dirty, &one.index(),
                                         std::move(*one.mutable_report()));
  ASSERT_TRUE(two.Resume().ok());
  auto decomposed = two.TakeResult();
  ASSERT_TRUE(decomposed.ok()) << decomposed.status().ToString();

  auto direct = model.Clean(dirty);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(decomposed->cleaned, direct->cleaned);
  // Stage-one records flowed through into the final trace.
  EXPECT_EQ(decomposed->report.agp.size(), direct->report.agp.size());
  EXPECT_EQ(decomposed->report.fscr.size(), direct->report.fscr.size());
}

}  // namespace
}  // namespace mlnclean
