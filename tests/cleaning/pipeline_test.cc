#include "cleaning/pipeline.h"

#include <gtest/gtest.h>

#include "datagen/hospital.h"
#include "datagen/sample.h"
#include "errorgen/injector.h"
#include "eval/metrics.h"

namespace mlnclean {
namespace {

TEST(PipelineTest, CleansTable1ToGroundTruth) {
  // The headline walk-through: MLNClean on Table 1 produces the clean
  // table, then deduplication collapses it to the two real entities.
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions options;
  options.agp_threshold = 1;
  MlnCleanPipeline cleaner(options);
  auto result = cleaner.Clean(dirty, rules);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->cleaned, *SampleHospitalClean());
  // t1/t2 collapse to one tuple, t3-t6 to another.
  EXPECT_EQ(result->deduped.num_rows(), 2u);
  EXPECT_EQ(result->report.duplicates.size(), 4u);
}

TEST(PipelineTest, CleanInputIsFixpoint) {
  // Cleaning already-clean data must not change it (idempotence).
  Dataset clean = *SampleHospitalClean();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions options;
  options.agp_threshold = 1;
  options.remove_duplicates = false;
  MlnCleanPipeline cleaner(options);
  auto result = cleaner.Clean(clean, rules);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->cleaned, clean);
}

TEST(PipelineTest, TimingsPopulated) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  MlnCleanPipeline cleaner;
  auto result = cleaner.Clean(dirty, rules);
  ASSERT_TRUE(result.ok());
  const StageTimings& t = result->report.timings;
  EXPECT_GE(t.index, 0.0);
  EXPECT_GT(t.total, 0.0);
  EXPECT_GE(t.total, t.index + t.agp + t.learn + t.rsc + t.fscr);
}

TEST(PipelineTest, OptionValidationRejectsBadConfig) {
  CleaningOptions options;
  options.max_fusion_nodes = 0;
  MlnCleanPipeline cleaner(options);
  auto result = cleaner.Clean(*SampleHospitalDirty(), *SampleHospitalRules());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalid());
}

TEST(PipelineTest, DuplicateRemovalCanBeDisabled) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions options;
  options.remove_duplicates = false;
  MlnCleanPipeline cleaner(options);
  auto result = cleaner.Clean(dirty, rules);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->deduped.num_rows(), dirty.num_rows());
  EXPECT_TRUE(result->report.duplicates.empty());
}

TEST(PipelineTest, PriorOnlyAblationStillCleansSample) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions options;
  options.agp_threshold = 1;
  options.learn_weights = false;  // Eq. 4 priors only
  MlnCleanPipeline cleaner(options);
  auto result = cleaner.Clean(dirty, rules);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cleaned, *SampleHospitalClean());
}

TEST(PipelineTest, RepairsInjectedErrorsOnGeneratedData) {
  HospitalConfig config;
  config.num_hospitals = 30;
  config.num_measures = 10;
  Workload wl = *MakeHospitalWorkload(config);
  ErrorSpec spec;
  spec.error_rate = 0.05;
  spec.seed = 3;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  CleaningOptions options;
  options.agp_threshold = 3;
  MlnCleanPipeline cleaner(options);
  auto result = cleaner.Clean(dd.dirty, wl.rules);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  RepairMetrics m = EvaluateRepair(dd.dirty, result->cleaned, dd.truth);
  EXPECT_GT(m.F1(), 0.6) << "precision=" << m.Precision()
                         << " recall=" << m.Recall();
}

TEST(PipelineTest, EmptyRuleSetLeavesDataUntouched) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules(dirty.schema());
  MlnCleanPipeline cleaner;
  auto result = cleaner.Clean(dirty, rules);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cleaned, dirty);
}

TEST(PipelineTest, StageDecompositionMatchesClean) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions options;
  options.agp_threshold = 1;
  MlnCleanPipeline cleaner(options);
  CleaningReport report;
  auto index = cleaner.RunStageOne(dirty, rules, &report);
  ASSERT_TRUE(index.ok());
  CleanResult two = cleaner.RunStageTwo(dirty, rules, *index, std::move(report));
  auto direct = cleaner.Clean(dirty, rules);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(two.cleaned, direct->cleaned);
}

}  // namespace
}  // namespace mlnclean
