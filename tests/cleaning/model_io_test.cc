// Snapshot round-trip and corrupt-input coverage for CleanModel::Save /
// CleaningEngine::Load (cleaning/model_io.h). The contract under test:
// a loaded model serves bit-identically to the in-process original (weight
// reuse on and off, γ ids stable under dictionary permutation), and every
// truncated or corrupt snapshot is rejected — kInvalid naming a byte
// position for malformed framing, kCorruption naming the section for
// torn/bit-rotted payloads (the per-section CRC-32C) — never a crash.

#include "cleaning/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include "cleaning/engine.h"
#include "common/csv.h"
#include "datagen/hospital.h"
#include "datagen/sample.h"
#include "errorgen/injector.h"
#include "rules/rule_parser.h"

namespace mlnclean {
namespace {

std::string SaveToString(const CleanModel& model) {
  std::ostringstream out;
  EXPECT_TRUE(model.Save(out).ok());
  return out.str();
}

Result<CleanModel> LoadFromString(const std::string& bytes,
                                  const CleaningEngine& engine = CleaningEngine()) {
  std::istringstream in(bytes);
  return engine.Load(in);
}

CleaningOptions NonDefaultOptions() {
  CleaningOptions options;
  options.agp_threshold = 2;
  options.distance = DistanceMetric::kDamerau;
  options.learner.max_iterations = 37;
  options.learner.l2 = 0.125;
  options.cache_distances = true;
  options.max_exhaustive_fusion = 5;
  options.fscr_minimality_discount = 0.5;
  return options;
}

// A small deterministic serving workload: dirty hospital table + batches.
struct ServingFixture {
  RuleSet rules;
  Dataset dirty;
  std::vector<Dataset> batches;

  ServingFixture() : rules(Schema()) {
    HospitalConfig config;
    config.num_hospitals = 10;
    config.num_measures = 4;
    Workload wl = *MakeHospitalWorkload(config);
    ErrorSpec spec;
    spec.error_rate = 0.06;
    spec.seed = 5;
    DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
    rules = std::move(wl.rules);
    dirty = std::move(dd.dirty);
    batches = SplitIntoBatches(dirty, 4);
  }
};

std::string ServeTranscript(const CleanModel& model,
                            const std::vector<Dataset>& batches, bool reuse) {
  std::string out;
  for (const Dataset& batch : batches) {
    SessionOptions opts;
    opts.reuse_model_weights = reuse;
    CleanSession session = model.NewSession(batch, opts);
    EXPECT_TRUE(session.Resume().ok());
    const CleaningReport& report = session.report();
    out += "agp=" + std::to_string(report.agp.size()) +
           " rsc=" + std::to_string(report.rsc.size()) +
           " fscr=" + std::to_string(report.fscr.size()) +
           " dups=" + std::to_string(report.duplicates.size()) + "\n";
    CleanResult result = *session.TakeResult();
    out += WriteCsv(result.cleaned.ToCsv());
    out += WriteCsv(result.deduped.ToCsv());
  }
  return out;
}

TEST(ModelIoTest, RoundTripPreservesSchemaRulesOptionsWeights) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions options = NonDefaultOptions();
  CleaningEngine engine(options);
  CleanModel model = *engine.Compile(dirty.schema(), rules);
  ASSERT_TRUE(model.Warm(dirty).ok());
  ASSERT_GT(model.num_stored_weights(), 0u);

  auto loaded = LoadFromString(SaveToString(model));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->schema() == model.schema());
  ASSERT_EQ(loaded->rules().size(), model.rules().size());
  for (size_t i = 0; i < model.rules().size(); ++i) {
    const Constraint& a = model.rules().rule(i);
    const Constraint& b = loaded->rules().rule(i);
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.rule_weight(), b.rule_weight());
    EXPECT_EQ(a.ToString(model.schema()), b.ToString(loaded->schema()));
  }
  const CleaningOptions& o = loaded->options();
  EXPECT_EQ(o.agp_threshold, options.agp_threshold);
  EXPECT_EQ(o.distance, options.distance);
  EXPECT_EQ(o.learner.max_iterations, options.learner.max_iterations);
  EXPECT_EQ(o.learner.l2, options.learner.l2);
  EXPECT_EQ(o.cache_distances, options.cache_distances);
  EXPECT_EQ(o.max_exhaustive_fusion, options.max_exhaustive_fusion);
  EXPECT_EQ(o.fscr_minimality_discount, options.fscr_minimality_discount);
  EXPECT_EQ(loaded->num_stored_weights(), model.num_stored_weights());
}

TEST(ModelIoTest, SaveIsDeterministicAndStableAcrossReload) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningEngine engine;
  CleanModel model = *engine.Compile(dirty.schema(), rules);
  ASSERT_TRUE(model.Warm(dirty).ok());

  const std::string bytes1 = SaveToString(model);
  const std::string bytes2 = SaveToString(model);
  EXPECT_EQ(bytes1, bytes2);  // sorted entry order: no hash-map jitter

  auto loaded = LoadFromString(bytes1);
  ASSERT_TRUE(loaded.ok());
  // Save(Load(bytes)) == bytes: nothing is lost or reordered in flight.
  EXPECT_EQ(SaveToString(*loaded), bytes1);
}

TEST(ModelIoTest, LoadedModelServesBitIdentically) {
  ServingFixture fx;
  CleaningOptions options;
  options.agp_threshold = 2;
  CleaningEngine engine(options);
  CleanModel model = *engine.Compile(fx.dirty.schema(), fx.rules);
  ASSERT_TRUE(model.Warm(fx.batches[0]).ok());

  auto loaded = LoadFromString(SaveToString(model));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (bool reuse : {false, true}) {
    EXPECT_EQ(ServeTranscript(model, fx.batches, reuse),
              ServeTranscript(*loaded, fx.batches, reuse))
        << "reuse_model_weights=" << reuse;
  }
}

TEST(ModelIoTest, ResumeSessionOnLoadedModelMatchesOriginal) {
  // Stage-II hand-off: both models resume over the same stage-I index.
  ServingFixture fx;
  CleaningEngine engine;
  CleanModel model = *engine.Compile(fx.dirty.schema(), fx.rules);
  auto loaded = LoadFromString(SaveToString(model));
  ASSERT_TRUE(loaded.ok());

  CleanSession stage1 = model.NewSession(fx.batches[0]);
  ASSERT_TRUE(stage1.RunUntil(Stage::kRsc).ok());
  const MlnIndex& index = stage1.index();

  auto finish = [&](const CleanModel& m) {
    CleanSession session =
        m.ResumeSession(fx.batches[0], &index, CleaningReport{});
    EXPECT_TRUE(session.Resume().ok());
    CleanResult result = *session.TakeResult();
    return WriteCsv(result.cleaned.ToCsv()) + WriteCsv(result.deduped.ToCsv());
  };
  EXPECT_EQ(finish(model), finish(*loaded));
}

TEST(ModelIoTest, LoadedWeightsAreIdStableUnderDictionaryPermutation) {
  // The weight store keys γs in its own interners, not the serving
  // dataset's: a batch whose dictionaries assign *different ids* to the
  // same values must clean identically under a loaded model.
  ServingFixture fx;
  CleaningOptions options;
  options.agp_threshold = 2;
  CleaningEngine engine(options);
  CleanModel model = *engine.Compile(fx.dirty.schema(), fx.rules);
  ASSERT_TRUE(model.Warm(fx.batches[0]).ok());
  auto loaded = LoadFromString(SaveToString(model));
  ASSERT_TRUE(loaded.ok());

  // Same rows as batch 1, but every attribute's values pre-interned in
  // reverse first-appearance order: same content, permuted ValueIds.
  const Dataset& batch = fx.batches[1];
  Dataset permuted(batch.schema());
  for (size_t a = 0; a < batch.num_attrs(); ++a) {
    std::vector<Value> domain = batch.Domain(static_cast<AttrId>(a));
    for (auto it = domain.rbegin(); it != domain.rend(); ++it) {
      permuted.InternValue(static_cast<AttrId>(a), *it);
    }
  }
  for (size_t t = 0; t < batch.num_rows(); ++t) {
    ASSERT_TRUE(permuted.Append(batch.row(static_cast<TupleId>(t))).ok());
  }
  ASSERT_TRUE(permuted == batch);  // content-equal, ids permuted

  SessionOptions reuse;
  reuse.reuse_model_weights = true;
  CleanResult original = *model.Clean(batch, reuse);
  CleanResult via_snapshot = *loaded->Clean(permuted, reuse);
  EXPECT_TRUE(original.cleaned == via_snapshot.cleaned);
  EXPECT_TRUE(original.deduped == via_snapshot.deduped);
}

TEST(ModelIoTest, DecayStateRoundTripsAndAgingResumes) {
  // A store with an active half-life must carry its decay clock through a
  // snapshot: the batch counter and per-entry batch stamps ride along, so
  // a loaded model ages exactly like the original when serving resumes.
  ServingFixture fx;
  CleaningOptions options;
  options.agp_threshold = 2;
  options.weight_half_life_batches = 1;
  CleaningEngine engine(options);
  CleanModel model = *engine.Compile(fx.dirty.schema(), fx.rules);
  ASSERT_TRUE(model.Warm(fx.batches[0]).ok());  // batch 1
  ASSERT_TRUE(model.Warm(fx.batches[1]).ok());  // batch 2 decays batch 1
  ASSERT_GT(model.num_stored_weights(), 0u);

  const std::string bytes = SaveToString(model);
  auto loaded = LoadFromString(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->options().weight_half_life_batches, 1u);
  EXPECT_EQ(loaded->num_stored_weights(), model.num_stored_weights());
  // Bit-exact including the decay state: saving the loaded model writes
  // the same bytes (batch counter and stamps included).
  EXPECT_EQ(SaveToString(*loaded), bytes);

  // Aging resumes identically: one more contributed batch on each side
  // must leave both stores byte-identical (wrong/missing batch stamps
  // would produce different decay factors here).
  ASSERT_TRUE(model.Warm(fx.batches[2]).ok());
  ASSERT_TRUE(loaded->Warm(fx.batches[2]).ok());
  EXPECT_EQ(SaveToString(*loaded), SaveToString(model));
  // And the aged stores serve identically.
  EXPECT_EQ(ServeTranscript(model, fx.batches, /*reuse=*/true),
            ServeTranscript(*loaded, fx.batches, /*reuse=*/true));
}

// ---------------------------------------------------------- corrupt input

// One snapshot mutation, the StatusCode it must reject with, and the
// substring its message must mention.
struct Mutation {
  const char* name;
  std::function<std::string(std::string)> apply;
  StatusCode expect_code;
  const char* expect_substring;
};

std::string ValidSnapshotBytes() {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningEngine engine;
  CleanModel model = *engine.Compile(dirty.schema(), rules);
  EXPECT_TRUE(model.Warm(dirty).ok());
  return SaveToString(model);
}

void PatchU32(std::string* bytes, size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i) (*bytes)[pos + i] = static_cast<char>((v >> (8 * i)) & 0xff);
}
void PatchU64(std::string* bytes, size_t pos, uint64_t v) {
  for (int i = 0; i < 8; ++i) (*bytes)[pos + i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

TEST(ModelIoTest, CorruptSnapshotsAreRejectedWithTheRightCode) {
  const std::string valid = ValidSnapshotBytes();
  ASSERT_TRUE(LoadFromString(valid).ok());

  // v3 layout: magic[4] version[4@4] section_count[4@8], then per section
  // tag[4@12] length[8@16] crc32c[4@24] payload[@28...]. Framing damage is
  // kInvalid with a byte position; payload/checksum damage is kCorruption
  // naming the section (the CRC is verified before the payload is parsed,
  // so a torn payload cannot masquerade as a framing error).
  const std::vector<Mutation> mutations = {
      {"empty input", [](std::string) { return std::string(); },
       StatusCode::kInvalid, "truncated"},
      {"bad magic",
       [](std::string s) {
         s[0] = 'X';
         return s;
       },
       StatusCode::kInvalid, "magic"},
      {"unsupported version",
       [](std::string s) {
         PatchU32(&s, 4, 99);
         return s;
       },
       StatusCode::kInvalid, "version"},
      {"wrong section count",
       [](std::string s) {
         PatchU32(&s, 8, 7);
         return s;
       },
       StatusCode::kInvalid, "sections"},
      {"unknown section tag",
       [](std::string s) {
         PatchU32(&s, 12, 42);
         return s;
       },
       StatusCode::kInvalid, "tag"},
      {"oversized section length",
       [](std::string s) {
         PatchU64(&s, 16, ~uint64_t{0} / 2);
         return s;
       },
       StatusCode::kInvalid, "declares"},
      {"shrunk section length (torn write)",
       [](std::string s) {
         PatchU64(&s, 16, 1);  // CRC over 1 byte cannot match
         return s;
       },
       StatusCode::kCorruption, "checksum"},
      {"corrupted section checksum field",
       [](std::string s) {
         PatchU32(&s, 24, 0xdeadbeef);
         return s;
       },
       StatusCode::kCorruption, "section 1"},
      {"payload flip (first attribute count)",
       [](std::string s) {
         PatchU32(&s, 28, 0x7fffffff);
         return s;
       },
       StatusCode::kCorruption, "checksum"},
      {"trailing garbage",
       [](std::string s) {
         s += "extra";
         return s;
       },
       StatusCode::kInvalid, "trailing"},
      {"content flip mid-file (structurally valid)",
       [](std::string s) {
         s[s.size() / 2] = static_cast<char>(s[s.size() / 2] ^ 0x01);
         return s;
       },
       StatusCode::kCorruption, "checksum"},
  };

  for (const Mutation& m : mutations) {
    auto result = LoadFromString(m.apply(valid));
    ASSERT_FALSE(result.ok()) << m.name;
    EXPECT_EQ(result.status().code(), m.expect_code)
        << m.name << ": " << result.status().ToString();
    EXPECT_NE(result.status().message().find(m.expect_substring), std::string::npos)
        << m.name << " message: " << result.status().message();
  }
}

TEST(ModelIoTest, CorruptionNamesTheSectionAndByteRange) {
  // kCorruption must localize the damage: section tag plus the payload's
  // byte range, so an operator can tell which part of the file tore.
  std::string bytes = ValidSnapshotBytes();
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0xff);
  auto result = LoadFromString(bytes);
  ASSERT_FALSE(result.ok());
  ASSERT_TRUE(result.status().IsCorruption()) << result.status().ToString();
  const std::string& msg = result.status().message();
  EXPECT_NE(msg.find("section 5"), std::string::npos) << msg;  // index
  EXPECT_NE(msg.find("bytes ["), std::string::npos) << msg;
}

TEST(ModelIoTest, EveryTruncationIsRejectedWithBytePosition) {
  const std::string valid = ValidSnapshotBytes();
  for (size_t len = 0; len < valid.size(); len += (len < 64 ? 1 : 13)) {
    auto result = LoadFromString(valid.substr(0, len));
    ASSERT_FALSE(result.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_TRUE(result.status().IsInvalid()) << len;
    EXPECT_NE(result.status().message().find("byte"), std::string::npos)
        << "no stream position in: " << result.status().message();
  }
  // The full prefix minus one byte, specifically.
  auto result = LoadFromString(valid.substr(0, valid.size() - 1));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalid());
}

TEST(ModelIoTest, EverySingleByteFlipIsRejected) {
  // Framing flips fail the structural pass (kInvalid); payload and
  // checksum-field flips fail the section CRC (kCorruption — CRC-32C
  // detects every single-byte error). Either way: rejected, never a
  // crash, never a silently altered model.
  const std::string valid = ValidSnapshotBytes();
  for (size_t pos = 0; pos < valid.size(); ++pos) {
    std::string mutated = valid;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    auto result = LoadFromString(mutated);
    ASSERT_FALSE(result.ok()) << "flip at byte " << pos << " decoded";
    EXPECT_TRUE(result.status().IsInvalid() || result.status().IsCorruption())
        << "flip at " << pos << ": " << result.status().ToString();
  }
}

// Walks the section frames of a valid snapshot and returns each section's
// [begin, end) byte range (frame included), so the fuzzer can target its
// mutations per section.
std::vector<std::pair<size_t, size_t>> SectionRanges(const std::string& bytes) {
  std::vector<std::pair<size_t, size_t>> ranges;
  size_t pos = 12;  // magic + version + section count
  for (int s = 0; s < 5; ++s) {
    const size_t begin = pos;
    uint64_t length = 0;
    for (int i = 7; i >= 0; --i) {
      length = (length << 8) | static_cast<unsigned char>(bytes[pos + 4 + i]);
    }
    pos += 4 + 8 + 4 + static_cast<size_t>(length);
    ranges.emplace_back(begin, pos);
  }
  EXPECT_EQ(pos, bytes.size());
  return ranges;
}

TEST(ModelIoTest, SeededCorruptionFuzzerNeverCrashesAndAlwaysRejects) {
  // Deterministic fuzz pass over every section: random byte mutations and
  // random truncations. Decode must reject each one (kInvalid or
  // kCorruption, with a byte position or section named in the message)
  // and never crash — this test runs in the sanitize CI job, so a stray
  // read past a buffer fails loudly. The seed is fixed and printed on
  // failure; to reproduce a report, rerun with the printed seed here.
  const uint64_t seed = 0x6d6c6e33u;  // "mln3"
  const std::string valid = ValidSnapshotBytes();
  const auto ranges = SectionRanges(valid);
  std::mt19937_64 rng(seed);

  auto check_rejected = [&](const std::string& mutated, const char* what,
                            size_t section, size_t detail) {
    auto result = LoadFromString(mutated);
    ASSERT_FALSE(result.ok())
        << what << " in section " << section + 1 << " (detail " << detail
        << ", fuzz seed " << seed << ") decoded";
    EXPECT_TRUE(result.status().IsInvalid() || result.status().IsCorruption())
        << what << " in section " << section + 1 << " (fuzz seed " << seed
        << "): " << result.status().ToString();
    const std::string& msg = result.status().message();
    EXPECT_TRUE(msg.find("byte") != std::string::npos ||
                msg.find("section") != std::string::npos)
        << what << " (fuzz seed " << seed << ") message lacks a position: "
        << msg;
  };

  constexpr int kMutationsPerSection = 48;
  constexpr int kTruncationsPerSection = 16;
  for (size_t s = 0; s < ranges.size(); ++s) {
    std::uniform_int_distribution<size_t> pos_dist(ranges[s].first,
                                                   ranges[s].second - 1);
    std::uniform_int_distribution<int> byte_dist(0, 255);
    std::uniform_int_distribution<int> burst_dist(1, 8);
    for (int i = 0; i < kMutationsPerSection; ++i) {
      std::string mutated = valid;
      // A burst of 1..8 random bytes starting inside the section.
      const size_t at = pos_dist(rng);
      const int burst = burst_dist(rng);
      bool changed = false;
      for (int b = 0; b < burst && at + b < mutated.size(); ++b) {
        const char next = static_cast<char>(byte_dist(rng));
        changed |= next != mutated[at + b];
        mutated[at + b] = next;
      }
      if (!changed) continue;  // the draw reproduced the original bytes
      check_rejected(mutated, "byte burst", s, at);
    }
    for (int i = 0; i < kTruncationsPerSection; ++i) {
      // Cut the file inside this section: a torn write that lost the tail.
      const size_t cut = pos_dist(rng);
      check_rejected(valid.substr(0, cut), "truncation", s, cut);
    }
  }
}

// CRC-32C (Castagnoli), mirroring the codec's checksum so the fuzzer
// below can re-seal a deliberately corrupted payload.
uint32_t TestCrc32c(const char* data, size_t size) {
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc ^= static_cast<unsigned char>(data[i]);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0x82f63b78u & (~(crc & 1u) + 1u));
    }
  }
  return ~crc;
}

TEST(ModelIoTest, ResealedWeightsCorruptionReachesTheVarintDecoderSafely) {
  // The per-section CRC normally rejects payload damage before the parse,
  // so the v4 varint-block decoder never sees corrupt bytes through the
  // normal path. This fuzzer corrupts the weights payload and then
  // *re-seals the section CRC*, forcing the structural decoder (varint
  // blocks, arities, id streams) to face arbitrary bytes directly. Every
  // outcome must be decode-or-reject — kInvalid/kCorruption, never a
  // crash or over-read (this runs under the sanitize CI job too).
  const std::string valid = ValidSnapshotBytes();
  const auto ranges = SectionRanges(valid);
  const auto [frame_begin, frame_end] = ranges[3];  // weights section
  const size_t payload_begin = frame_begin + 16;    // tag[4] len[8] crc[4]
  ASSERT_LT(payload_begin, frame_end);
  std::mt19937_64 rng(0x76340d34u);
  std::uniform_int_distribution<size_t> pos_dist(payload_begin, frame_end - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<int> flip_dist(1, 6);
  int rejected = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::string mutated = valid;
    for (int f = flip_dist(rng); f > 0; --f) {
      mutated[pos_dist(rng)] = static_cast<char>(byte_dist(rng));
    }
    PatchU32(&mutated, frame_begin + 12,
             TestCrc32c(mutated.data() + payload_begin,
                        frame_end - payload_begin));
    auto result = LoadFromString(mutated);
    if (!result.ok()) {
      ++rejected;
      EXPECT_TRUE(result.status().IsInvalid() || result.status().IsCorruption())
          << "trial " << trial << ": " << result.status().ToString();
    }
  }
  // Random damage to varint blocks should overwhelmingly fail structural
  // or semantic validation; a decode that happens to stay valid is fine.
  EXPECT_GT(rejected, kTrials / 2);
}

TEST(ModelIoTest, NullValuesInWeightDictionariesRoundTrip) {
  // NULL (empty string) cells reach the weight store as id-0 values; the
  // dictionary's null rank travels as a fixed u64 sentinel on the wire.
  Schema schema = *Schema::Make({"CT", "ST"});
  Dataset data = *Dataset::Make(
      schema, {{"DOTHAN", "AL"}, {"DOTHAN", "AL"}, {"", "AL"}, {"BOAZ", ""}});
  RuleSet rules(schema);
  rules.Add(*Constraint::MakeFd(schema, {0}, {1}));
  CleaningEngine engine;
  CleanModel model = *engine.Compile(schema, rules);
  ASSERT_TRUE(model.Warm(data).ok());

  const std::string bytes = SaveToString(model);
  auto loaded = LoadFromString(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_stored_weights(), model.num_stored_weights());
  EXPECT_EQ(SaveToString(*loaded), bytes);  // null ranks survived exactly

  SessionOptions reuse;
  reuse.reuse_model_weights = true;
  CleanResult a = *model.Clean(data, reuse);
  CleanResult b = *loaded->Clean(data, reuse);
  EXPECT_TRUE(a.cleaned == b.cleaned);
  EXPECT_TRUE(a.deduped == b.deduped);
}

TEST(ModelIoTest, SaveRejectsRulesWhoseTextCannotRoundTrip) {
  // The DC grammar has no quoting, so a DC over an attribute name with an
  // operator character has no parseable canonical text. Save must fail on
  // the builder box, not ship a snapshot Load can never read.
  Schema schema = *Schema::Make({"Price>0", "PN"});
  RuleSet rules(schema);
  rules.Add(*Constraint::MakeDc(
      schema, {DcPredicate{0, PredOp::kEq, 0}, DcPredicate{1, PredOp::kNeq, 1}}));
  CleaningEngine engine;
  CleanModel model = *engine.Compile(schema, rules);
  std::ostringstream out;
  Status saved = model.Save(out);
  ASSERT_TRUE(saved.IsInvalid()) << saved.ToString();
  EXPECT_NE(saved.message().find("round-trip"), std::string::npos)
      << saved.message();

  // The same metacharacter name under an FD is quoted and saves fine.
  RuleSet fd_rules(schema);
  fd_rules.Add(*Constraint::MakeFd(schema, {0}, {1}));
  CleanModel fd_model = *engine.Compile(schema, fd_rules);
  std::ostringstream fd_out;
  ASSERT_TRUE(fd_model.Save(fd_out).ok());
  EXPECT_TRUE(LoadFromString(fd_out.str()).ok());
}

TEST(ModelIoTest, InspectSummarizesWithoutCompiling) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningEngine engine(NonDefaultOptions());
  CleanModel model = *engine.Compile(dirty.schema(), rules);
  ASSERT_TRUE(model.Warm(dirty).ok());

  std::istringstream in(SaveToString(model));
  auto info = InspectModelSnapshot(in);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, kModelSnapshotVersion);
  EXPECT_EQ(info->attr_names, dirty.schema().names());
  ASSERT_EQ(info->rule_texts.size(), rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(info->rule_names[i], rules.rule(i).name());
    EXPECT_EQ(info->rule_texts[i], rules.rule(i).CanonicalText(dirty.schema()));
  }
  EXPECT_EQ(info->options.agp_threshold, NonDefaultOptions().agp_threshold);
  EXPECT_EQ(info->num_stored_weights, model.num_stored_weights());
  EXPECT_EQ(info->weight_dict_sizes.size(), dirty.schema().num_attrs());
}

}  // namespace
}  // namespace mlnclean
