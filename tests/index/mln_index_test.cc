#include "index/mln_index.h"

#include <gtest/gtest.h>

#include "datagen/sample.h"

namespace mlnclean {
namespace {

MlnIndex BuildSampleIndex() {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  return *MlnIndex::Build(dirty, rules);
}

TEST(MlnIndexTest, Figure2BlockAndGroupCounts) {
  // Figure 2: blocks B1, B2, B3 with 3, 3, 2 groups respectively.
  MlnIndex index = BuildSampleIndex();
  ASSERT_EQ(index.num_blocks(), 3u);
  EXPECT_EQ(index.block(0).groups.size(), 3u);
  EXPECT_EQ(index.block(1).groups.size(), 3u);
  EXPECT_EQ(index.block(2).groups.size(), 2u);
}

TEST(MlnIndexTest, Figure2GroupKeys) {
  MlnIndex index = BuildSampleIndex();
  // B1 keyed by CT.
  EXPECT_EQ(index.block(0).groups[0].key, (std::vector<Value>{"DOTHAN"}));
  EXPECT_EQ(index.block(0).groups[1].key, (std::vector<Value>{"DOTH"}));
  EXPECT_EQ(index.block(0).groups[2].key, (std::vector<Value>{"BOAZ"}));
  // B2 keyed by PN.
  EXPECT_EQ(index.block(1).groups[0].key, (std::vector<Value>{"3347938701"}));
  // B3 keyed by (HN, CT).
  EXPECT_EQ(index.block(2).groups[0].key,
            (std::vector<Value>{"ELIZA", "DOTHAN"}));
  EXPECT_EQ(index.block(2).groups[1].key, (std::vector<Value>{"ELIZA", "BOAZ"}));
}

TEST(MlnIndexTest, Figure2GroupContents) {
  MlnIndex index = BuildSampleIndex();
  // G13 (BOAZ) holds two γs: {BOAZ, AK} (t4) and {BOAZ, AL} (t5, t6).
  const Group& g13 = index.block(0).groups[2];
  ASSERT_EQ(g13.pieces.size(), 2u);
  EXPECT_EQ(g13.pieces[0].result, (std::vector<Value>{"AK"}));
  EXPECT_EQ(g13.pieces[0].tuples, (std::vector<TupleId>{3}));
  EXPECT_EQ(g13.pieces[1].result, (std::vector<Value>{"AL"}));
  EXPECT_EQ(g13.pieces[1].tuples, (std::vector<TupleId>{4, 5}));
  EXPECT_EQ(g13.TupleCount(), 3u);
  // γ* of G13 is the better-supported {BOAZ, AL}.
  EXPECT_EQ(g13.Star().result, (std::vector<Value>{"AL"}));
}

TEST(MlnIndexTest, BlockCounters) {
  MlnIndex index = BuildSampleIndex();
  // B1: 4 distinct γs over 6 tuples (the M and Σc of Eq. 4).
  EXPECT_EQ(index.block(0).PieceCount(), 4u);
  EXPECT_EQ(index.block(0).TupleCount(), 6u);
  // B3 covers only the four ELIZA tuples.
  EXPECT_EQ(index.block(2).TupleCount(), 4u);
}

TEST(MlnIndexTest, FindGroup) {
  MlnIndex index = BuildSampleIndex();
  auto idx = index.FindGroup(0, {"BOAZ"});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2u);
  EXPECT_TRUE(index.FindGroup(0, {"NOWHERE"}).status().IsNotFound());
}

TEST(MlnIndexTest, PriorWeightsMatchEq4) {
  // Section 5.1.2: {CT: BOAZ, ST: AK} in B1 gets prior weight 1/6.
  MlnIndex index = BuildSampleIndex();
  index.AssignPriorWeights();
  const Group& g13 = index.block(0).groups[2];
  EXPECT_DOUBLE_EQ(g13.pieces[0].weight, 1.0 / 6.0);  // {BOAZ, AK}
  EXPECT_DOUBLE_EQ(g13.pieces[1].weight, 2.0 / 6.0);  // {BOAZ, AL}
}

TEST(MlnIndexTest, LearnedWeightsOrderBySupportWithinGroup) {
  MlnIndex index = BuildSampleIndex();
  index.LearnWeights();
  const Group& g13 = index.block(0).groups[2];
  EXPECT_GT(g13.pieces[1].weight, g13.pieces[0].weight);  // AL beats AK
}

TEST(MlnIndexTest, ReindexAfterMutation) {
  MlnIndex index = BuildSampleIndex();
  Block& b1 = index.block(0);
  // Merge group 1 (DOTH) into group 0 (DOTHAN) manually.
  for (auto& piece : b1.groups[1].pieces) {
    b1.groups[0].pieces.push_back(std::move(piece));
  }
  b1.groups.erase(b1.groups.begin() + 1);
  index.ReindexBlock(0);
  EXPECT_TRUE(index.FindGroup(0, {"DOTH"}).status().IsNotFound());
  EXPECT_EQ(*index.FindGroup(0, {"BOAZ"}), 1u);
}

TEST(MlnIndexTest, GeneralDcRejectedAtBuild) {
  Schema s = *Schema::Make({"Salary", "Tax"});
  Dataset d = *Dataset::Make(s, {{"1", "2"}});
  RuleSet rules(s);
  rules.Add(*Constraint::MakeDc(s, {{0, PredOp::kGt, 0}, {1, PredOp::kLt, 1}}));
  auto r = MlnIndex::Build(d, rules);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
}

TEST(MlnIndexTest, EmptyRuleSetYieldsEmptyIndex) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules(dirty.schema());
  MlnIndex index = *MlnIndex::Build(dirty, rules);
  EXPECT_EQ(index.num_blocks(), 0u);
}

}  // namespace
}  // namespace mlnclean
