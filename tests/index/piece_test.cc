#include "index/piece.h"

#include <gtest/gtest.h>

namespace mlnclean {
namespace {

TEST(PieceTest, AllValuesConcatenatesReasonThenResult) {
  Piece p{{"BOAZ"}, {"AL"}, {4, 5}, 0.0};
  EXPECT_EQ(p.AllValues(), (std::vector<Value>{"BOAZ", "AL"}));
  EXPECT_EQ(p.support(), 2u);
}

TEST(PieceTest, ToStringRendering) {
  Schema s = *Schema::Make({"HN", "CT", "ST", "PN"});
  Piece p{{"BOAZ"}, {"AL"}, {4}, 0.0};
  EXPECT_EQ(p.ToString(s, {1}, {2}), "{CT: BOAZ, ST: AL}");
}

TEST(PieceDistanceTest, SumsAttributeWiseDistances) {
  auto lev = MakeDistanceFn(DistanceMetric::kLevenshtein);
  Piece a{{"DOTH"}, {"AL"}, {1}, 0.0};
  Piece b{{"DOTHAN"}, {"AL"}, {0, 2}, 0.0};
  EXPECT_DOUBLE_EQ(PieceDistance(a, b, lev), 2.0);  // DOTH->DOTHAN only
  Piece c{{"BOAZ"}, {"AK"}, {3}, 0.0};
  // lev(DOTHAN, BOAZ) = 4 plus lev(AL, AK) = 1.
  EXPECT_DOUBLE_EQ(PieceDistance(b, c, lev), 5.0);
}

TEST(PieceDistanceTest, Example2Distances) {
  // Figure 3: γ1 = {BOAZ, AL}, γ2 = {BOAZ, AK}: distance 1 (AL vs AK).
  auto lev = MakeDistanceFn(DistanceMetric::kLevenshtein);
  Piece g1{{"BOAZ"}, {"AL"}, {4, 5}, 0.0};
  Piece g2{{"BOAZ"}, {"AK"}, {3}, 0.0};
  EXPECT_DOUBLE_EQ(PieceDistance(g1, g2, lev), 1.0);
  EXPECT_DOUBLE_EQ(PieceDistance(g1, g1, lev), 0.0);
  EXPECT_DOUBLE_EQ(PieceDistance(g1, g2, lev), PieceDistance(g2, g1, lev));
}

}  // namespace
}  // namespace mlnclean
