#include "index/piece.h"

#include <gtest/gtest.h>

namespace mlnclean {
namespace {

TEST(PieceTest, AllValuesConcatenatesReasonThenResult) {
  Piece p{{"BOAZ"}, {"AL"}, {4, 5}, 0.0};
  EXPECT_EQ(p.AllValues(), (std::vector<Value>{"BOAZ", "AL"}));
  EXPECT_EQ(p.support(), 2u);
}

TEST(PieceTest, ToStringRendering) {
  Schema s = *Schema::Make({"HN", "CT", "ST", "PN"});
  Piece p{{"BOAZ"}, {"AL"}, {4}, 0.0};
  EXPECT_EQ(p.ToString(s, {1}, {2}), "{CT: BOAZ, ST: AL}");
}

TEST(PieceDistanceTest, SumsAttributeWiseDistances) {
  auto lev = MakeDistanceFn(DistanceMetric::kLevenshtein);
  Piece a{{"DOTH"}, {"AL"}, {1}, 0.0};
  Piece b{{"DOTHAN"}, {"AL"}, {0, 2}, 0.0};
  EXPECT_DOUBLE_EQ(PieceDistance(a, b, lev), 2.0);  // DOTH->DOTHAN only
  Piece c{{"BOAZ"}, {"AK"}, {3}, 0.0};
  // lev(DOTHAN, BOAZ) = 4 plus lev(AL, AK) = 1.
  EXPECT_DOUBLE_EQ(PieceDistance(b, c, lev), 5.0);
}

TEST(PieceDistanceTest, IdFastPathMatchesStringDistance) {
  auto lev = MakeDistanceFn(DistanceMetric::kLevenshtein);
  // Same values, ids attached (as grounding produces): equal ids skip the
  // kernel but the total must match the string-only computation.
  Piece a{{"DOTH"}, {"AL"}, {1}, 0.0, {1}, {5}};
  Piece b{{"DOTHAN"}, {"AL"}, {0, 2}, 0.0, {2}, {5}};
  EXPECT_DOUBLE_EQ(PieceDistance(a, b, lev), 2.0);
  EXPECT_DOUBLE_EQ(PieceDistanceBounded(a, b, lev, 100.0), 2.0);
  // Bounded abandon still returns >= bound.
  EXPECT_GE(PieceDistanceBounded(a, b, lev, 1.0), 1.0);
}

TEST(PieceDistanceTest, MemoMatchesDirectComputation) {
  auto lev = MakeDistanceFn(DistanceMetric::kLevenshtein);
  Piece a{{"DOTH"}, {"AL"}, {1}, 0.0, {1}, {5}};
  Piece b{{"DOTHAN"}, {"AL"}, {0, 2}, 0.0, {2}, {5}};
  Piece c{{"BOAZ"}, {"AK"}, {3}, 0.0, {3}, {6}};
  PieceDistanceMemo memo(lev);
  for (int round = 0; round < 2; ++round) {  // second round is all memo hits
    EXPECT_DOUBLE_EQ(memo.Distance(a, b), PieceDistance(a, b, lev));
    EXPECT_DOUBLE_EQ(memo.Distance(b, c), PieceDistance(b, c, lev));
    EXPECT_DOUBLE_EQ(memo.Distance(a, c), PieceDistance(a, c, lev));
    EXPECT_DOUBLE_EQ(memo.DistanceBounded(a, c, 100.0), PieceDistance(a, c, lev));
  }
  // Pieces without ids (hand-built) fall back to plain string distance.
  Piece no_ids{{"DOTH"}, {"AL"}, {1}, 0.0};
  EXPECT_DOUBLE_EQ(memo.Distance(no_ids, b), PieceDistance(no_ids, b, lev));
}

TEST(PieceDistanceTest, Example2Distances) {
  // Figure 3: γ1 = {BOAZ, AL}, γ2 = {BOAZ, AK}: distance 1 (AL vs AK).
  auto lev = MakeDistanceFn(DistanceMetric::kLevenshtein);
  Piece g1{{"BOAZ"}, {"AL"}, {4, 5}, 0.0};
  Piece g2{{"BOAZ"}, {"AK"}, {3}, 0.0};
  EXPECT_DOUBLE_EQ(PieceDistance(g1, g2, lev), 1.0);
  EXPECT_DOUBLE_EQ(PieceDistance(g1, g1, lev), 0.0);
  EXPECT_DOUBLE_EQ(PieceDistance(g1, g2, lev), PieceDistance(g2, g1, lev));
}

}  // namespace
}  // namespace mlnclean
