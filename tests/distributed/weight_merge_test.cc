#include "index/weight_merge.h"

#include <gtest/gtest.h>

#include "datagen/sample.h"

namespace mlnclean {
namespace {

// Builds a one-block index over the given rows with learned-looking
// weights assigned manually.
MlnIndex IndexOver(const std::vector<std::vector<Value>>& rows, double weight) {
  Schema s = *Schema::Make({"CT", "ST"});
  Dataset d = *Dataset::Make(s, rows);
  RuleSet rules(s);
  rules.Add(*Constraint::MakeFd(s, {0}, {1}));
  MlnIndex index = *MlnIndex::Build(d, rules);
  for (auto& block : index.blocks()) {
    for (auto& group : block.groups) {
      for (auto& piece : group.pieces) piece.weight = weight;
    }
  }
  return index;
}

TEST(WeightMergeTest, Eq6SupportWeightedAverage) {
  // Part 1: γ {DOTHAN, AL} with 3 tuples, weight 0.9.
  // Part 2: the same γ with 1 tuple, weight 0.1.
  // Eq. 6: w = (3*0.9 + 1*0.1) / 4 = 0.7.
  MlnIndex part1 = IndexOver({{"DOTHAN", "AL"}, {"DOTHAN", "AL"}, {"DOTHAN", "AL"}},
                             0.9);
  MlnIndex part2 = IndexOver({{"DOTHAN", "AL"}}, 0.1);
  GlobalWeightTable table;
  table.Accumulate(part1);
  table.Accumulate(part2);
  auto w = table.Lookup(0, {"DOTHAN"}, {"AL"});
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(*w, 0.7, 1e-12);
}

TEST(WeightMergeTest, ApplyOverwritesLocalWeights) {
  MlnIndex part1 = IndexOver({{"DOTHAN", "AL"}, {"DOTHAN", "AL"}}, 0.8);
  MlnIndex part2 = IndexOver({{"DOTHAN", "AL"}, {"BOAZ", "AL"}}, 0.2);
  GlobalWeightTable table;
  table.Accumulate(part1);
  table.Accumulate(part2);
  table.Apply(&part2);
  // {DOTHAN, AL}: (2*0.8 + 1*0.2)/3 = 0.6.
  EXPECT_NEAR(part2.block(0).groups[0].pieces[0].weight, 0.6, 1e-12);
  // {BOAZ, AL} was seen only in part2: stays at its own average (0.2).
  EXPECT_NEAR(part2.block(0).groups[1].pieces[0].weight, 0.2, 1e-12);
}

TEST(WeightMergeTest, DistinctGammasDoNotMix) {
  MlnIndex part1 = IndexOver({{"DOTHAN", "AL"}}, 0.9);
  MlnIndex part2 = IndexOver({{"DOTHAN", "AK"}}, 0.1);  // different result
  GlobalWeightTable table;
  table.Accumulate(part1);
  table.Accumulate(part2);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_NEAR(*table.Lookup(0, {"DOTHAN"}, {"AL"}), 0.9, 1e-12);
  EXPECT_NEAR(*table.Lookup(0, {"DOTHAN"}, {"AK"}), 0.1, 1e-12);
}

TEST(WeightMergeTest, LookupMissIsNotFound) {
  GlobalWeightTable table;
  EXPECT_TRUE(table.Lookup(0, {"X"}, {"Y"}).status().IsNotFound());
}

TEST(WeightMergeTest, RuleIndexSeparatesBlocks) {
  // The same (reason, result) under different rules must not merge.
  Dataset d = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  MlnIndex index = *MlnIndex::Build(d, rules);
  index.AssignPriorWeights();
  GlobalWeightTable table;
  table.Accumulate(index);
  // B1 has 4 γs, B2 has 4, B3 has 2: all distinct keys.
  EXPECT_EQ(table.size(), 10u);
}

}  // namespace
}  // namespace mlnclean
