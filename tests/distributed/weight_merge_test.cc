#include "index/weight_merge.h"

#include <gtest/gtest.h>

#include "datagen/sample.h"

namespace mlnclean {
namespace {

RuleSet CtStRules() {
  Schema s = *Schema::Make({"CT", "ST"});
  RuleSet rules(s);
  rules.Add(*Constraint::MakeFd(s, {0}, {1}));
  return rules;
}

// Builds a one-block index over the given rows with learned-looking
// weights assigned manually.
MlnIndex IndexOver(const std::vector<std::vector<Value>>& rows, double weight) {
  RuleSet rules = CtStRules();
  Dataset d = *Dataset::Make(rules.schema(), rows);
  MlnIndex index = *MlnIndex::Build(d, rules);
  for (auto& block : index.blocks()) {
    for (auto& group : block.groups) {
      for (auto& piece : group.pieces) piece.weight = weight;
    }
  }
  return index;
}

TEST(WeightMergeTest, Eq6SupportWeightedAverage) {
  // Part 1: γ {DOTHAN, AL} with 3 tuples, weight 0.9.
  // Part 2: the same γ with 1 tuple, weight 0.1.
  // Eq. 6: w = (3*0.9 + 1*0.1) / 4 = 0.7.
  RuleSet rules = CtStRules();
  MlnIndex part1 = IndexOver({{"DOTHAN", "AL"}, {"DOTHAN", "AL"}, {"DOTHAN", "AL"}},
                             0.9);
  MlnIndex part2 = IndexOver({{"DOTHAN", "AL"}}, 0.1);
  GlobalWeightTable table;
  table.Accumulate(part1, rules);
  table.Accumulate(part2, rules);
  auto w = table.Lookup(rules, 0, {"DOTHAN"}, {"AL"});
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(*w, 0.7, 1e-12);
}

TEST(WeightMergeTest, ApplyOverwritesLocalWeights) {
  RuleSet rules = CtStRules();
  MlnIndex part1 = IndexOver({{"DOTHAN", "AL"}, {"DOTHAN", "AL"}}, 0.8);
  MlnIndex part2 = IndexOver({{"DOTHAN", "AL"}, {"BOAZ", "AL"}}, 0.2);
  GlobalWeightTable table;
  table.Accumulate(part1, rules);
  table.Accumulate(part2, rules);
  table.Apply(&part2, rules);
  // {DOTHAN, AL}: (2*0.8 + 1*0.2)/3 = 0.6.
  EXPECT_NEAR(part2.block(0).groups[0].pieces[0].weight, 0.6, 1e-12);
  // {BOAZ, AL} was seen only in part2: stays at its own average (0.2).
  EXPECT_NEAR(part2.block(0).groups[1].pieces[0].weight, 0.2, 1e-12);
}

TEST(WeightMergeTest, DistinctGammasDoNotMix) {
  RuleSet rules = CtStRules();
  MlnIndex part1 = IndexOver({{"DOTHAN", "AL"}}, 0.9);
  MlnIndex part2 = IndexOver({{"DOTHAN", "AK"}}, 0.1);  // different result
  GlobalWeightTable table;
  table.Accumulate(part1, rules);
  table.Accumulate(part2, rules);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_NEAR(*table.Lookup(rules, 0, {"DOTHAN"}, {"AL"}), 0.9, 1e-12);
  EXPECT_NEAR(*table.Lookup(rules, 0, {"DOTHAN"}, {"AK"}), 0.1, 1e-12);
}

TEST(WeightMergeTest, LookupMissIsNotFound) {
  RuleSet rules = CtStRules();
  GlobalWeightTable table;
  EXPECT_TRUE(table.Lookup(rules, 0, {"X"}, {"Y"}).status().IsNotFound());
}

TEST(WeightMergeTest, RuleIndexSeparatesBlocks) {
  // The same (reason, result) under different rules must not merge.
  Dataset d = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  MlnIndex index = *MlnIndex::Build(d, rules);
  index.AssignPriorWeights();
  GlobalWeightTable table;
  table.Accumulate(index, rules);
  // B1 has 4 γs, B2 has 4, B3 has 2: all distinct keys.
  EXPECT_EQ(table.size(), 10u);
}

TEST(WeightMergeTest, AccumulateFromPermutedInternOrderAgrees) {
  // γ identity lives in the table's own interners, not the datasets': two
  // indexes over datasets whose dictionaries assign different ids to the
  // same values still merge into the same γs.
  RuleSet rules = CtStRules();
  MlnIndex part1 = IndexOver({{"BOAZ", "AL"}, {"DOTHAN", "AL"}}, 0.9);
  MlnIndex part2 = IndexOver({{"DOTHAN", "AL"}, {"BOAZ", "AL"}}, 0.1);  // swapped
  GlobalWeightTable table;
  table.Accumulate(part1, rules);
  table.Accumulate(part2, rules);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_NEAR(*table.Lookup(rules, 0, {"DOTHAN"}, {"AL"}), 0.5, 1e-12);
  EXPECT_NEAR(*table.Lookup(rules, 0, {"BOAZ"}, {"AL"}), 0.5, 1e-12);
}

TEST(WeightMergeTest, SortedEntryVisitRoundTripsIds) {
  RuleSet rules = CtStRules();
  MlnIndex part = IndexOver({{"DOTHAN", "AL"}, {"BOAZ", "AL"}}, 0.4);
  GlobalWeightTable table;
  table.Accumulate(part, rules);
  GlobalWeightTable restored;
  std::vector<ValueDict> dicts(rules.schema().num_attrs());
  for (size_t a = 0; a < table.num_attr_dicts(); ++a) {
    const ValueDict& dict = table.attr_dict(a);
    for (ValueId id = 1; id < dict.size(); ++id) dicts[a].Intern(dict.value(id));
    dicts[a].RestoreNullRank(dict.null_rank());
  }
  restored.RestoreDicts(std::move(dicts));
  table.ForEachEntrySorted([&](const GlobalWeightTable::EntryView& entry) {
    ASSERT_TRUE(restored.RestoreEntry(rules, entry).ok());
  });
  EXPECT_EQ(restored.size(), table.size());
  EXPECT_NEAR(*restored.Lookup(rules, 0, {"DOTHAN"}, {"AL"}), 0.4, 1e-12);
  EXPECT_NEAR(*restored.Lookup(rules, 0, {"BOAZ"}, {"AL"}), 0.4, 1e-12);
}

TEST(WeightMergeTest, HalfLifeDecaysOlderBatchesGeometrically) {
  // Same γ contributed in two consecutive batches with a one-batch
  // half-life: the first batch's mass halves before the second lands.
  //   w = (0.5·3·0.9 + 1·0.1) / (0.5·3 + 1) = 1.45 / 2.5 = 0.58
  // (vs 0.7 with decay off — see Eq6SupportWeightedAverage above).
  RuleSet rules = CtStRules();
  MlnIndex part1 = IndexOver({{"DOTHAN", "AL"}, {"DOTHAN", "AL"}, {"DOTHAN", "AL"}},
                             0.9);
  MlnIndex part2 = IndexOver({{"DOTHAN", "AL"}}, 0.1);
  GlobalWeightTable table;
  table.set_half_life_batches(1);
  table.Accumulate(part1, rules);
  table.Accumulate(part2, rules);
  EXPECT_EQ(table.batches(), 2u);
  auto w = table.Lookup(rules, 0, {"DOTHAN"}, {"AL"});
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(*w, 0.58, 1e-12);
}

TEST(WeightMergeTest, HalfLifeSkipsIdleBatchesLazily) {
  // A γ untouched for Δ batches decays by 2^(-Δ/H) in one step when it
  // finally receives support again: contribute at batch 1, let batches 2
  // and 3 pass without it, contribute at batch 4 (Δ = 3, H = 1).
  //   w = (2^-3·1·0.8 + 1·0.2) / (2^-3·1 + 1) = 0.3 / 1.125
  RuleSet rules = CtStRules();
  MlnIndex hit1 = IndexOver({{"DOTHAN", "AL"}}, 0.8);
  MlnIndex other = IndexOver({{"BOAZ", "AL"}}, 0.5);
  MlnIndex hit2 = IndexOver({{"DOTHAN", "AL"}}, 0.2);
  GlobalWeightTable table;
  table.set_half_life_batches(1);
  table.Accumulate(hit1, rules);
  table.Accumulate(other, rules);
  table.Accumulate(other, rules);
  table.Accumulate(hit2, rules);
  EXPECT_NEAR(*table.Lookup(rules, 0, {"DOTHAN"}, {"AL"}), 0.3 / 1.125, 1e-12);
  // An entry's stored average is untouched while it idles (the factor
  // cancels in the ratio): BOAZ still reads 0.5.
  EXPECT_NEAR(*table.Lookup(rules, 0, {"BOAZ"}, {"AL"}), 0.5, 1e-12);
}

TEST(WeightMergeTest, ZeroHalfLifeMatchesPlainAveragingBitExactly) {
  RuleSet rules = CtStRules();
  MlnIndex part1 = IndexOver({{"DOTHAN", "AL"}, {"DOTHAN", "AL"}}, 0.8);
  MlnIndex part2 = IndexOver({{"DOTHAN", "AL"}}, 0.2);
  GlobalWeightTable plain;
  plain.Accumulate(part1, rules);
  plain.Accumulate(part2, rules);
  GlobalWeightTable off;
  off.set_half_life_batches(0);
  off.Accumulate(part1, rules);
  off.Accumulate(part2, rules);
  EXPECT_EQ(*plain.Lookup(rules, 0, {"DOTHAN"}, {"AL"}),
            *off.Lookup(rules, 0, {"DOTHAN"}, {"AL"}));
}

TEST(WeightMergeTest, RestoreEntryRejectsOutOfRange) {
  RuleSet rules = CtStRules();
  GlobalWeightTable table;
  table.RestoreDicts(std::vector<ValueDict>(rules.schema().num_attrs()));
  GlobalWeightTable::EntryView entry;
  entry.rule_index = 7;  // no such rule
  EXPECT_TRUE(table.RestoreEntry(rules, entry).IsInvalid());
  entry.rule_index = 0;
  entry.reason_ids = {5};  // id outside the (empty) dictionary
  entry.result_ids = {0};
  EXPECT_TRUE(table.RestoreEntry(rules, entry).IsInvalid());
}

}  // namespace
}  // namespace mlnclean
