#include "distributed/distributed_pipeline.h"

#include <gtest/gtest.h>

#include "datagen/tpch.h"
#include "errorgen/injector.h"
#include "eval/metrics.h"

namespace mlnclean {
namespace {

struct TpchFixture {
  Workload wl = *MakeTpchWorkload({.num_customers = 40, .num_rows = 1200});
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules,
                                  ErrorSpec{.error_rate = 0.05, .seed = 9});
};

TEST(DistributedTest, CleansWithReasonableAccuracy) {
  TpchFixture f;
  DistributedOptions opts;
  opts.num_parts = 4;
  opts.num_workers = 2;
  // Per-part groups carry ~1/4 of their global support, so the per-part
  // AGP threshold scales down.
  opts.cleaning.agp_threshold = 1;
  DistributedMlnClean cleaner(opts);
  auto result = cleaner.Clean(f.dd.dirty, f.wl.rules);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  RepairMetrics m = EvaluateRepair(f.dd.dirty, result->cleaned, f.dd.truth);
  EXPECT_GT(m.F1(), 0.5) << "P=" << m.Precision() << " R=" << m.Recall();
  EXPECT_EQ(result->part_seconds.size(), 4u);
  EXPECT_GT(result->wall_seconds, 0.0);
  EXPECT_GT(result->global_weights, 0u);
}

TEST(DistributedTest, RowAlignmentPreserved) {
  TpchFixture f;
  DistributedOptions opts;
  opts.num_parts = 3;
  opts.num_workers = 2;
  DistributedMlnClean cleaner(opts);
  auto result = cleaner.Clean(f.dd.dirty, f.wl.rules);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cleaned.num_rows(), f.dd.dirty.num_rows());
  // Attributes untouched by any rule keep their dirty values.
  AttrId qty = *f.wl.clean.schema().Find("Quantity");
  for (TupleId t = 0; t < static_cast<TupleId>(f.dd.dirty.num_rows()); ++t) {
    EXPECT_EQ(result->cleaned.at(t, qty), f.dd.dirty.at(t, qty));
  }
}

TEST(DistributedTest, MoreWorkersNotWorseAccuracy) {
  // Accuracy should be roughly stable across worker counts (Table 6:
  // "the accuracy has very slight fluctuation").
  TpchFixture f;
  double f1[2];
  size_t workers[2] = {1, 2};
  for (int i = 0; i < 2; ++i) {
    DistributedOptions opts;
    opts.num_parts = 4;
    opts.num_workers = workers[i];
    opts.cleaning.agp_threshold = 2;
    DistributedMlnClean cleaner(opts);
    auto result = cleaner.Clean(f.dd.dirty, f.wl.rules);
    ASSERT_TRUE(result.ok());
    f1[i] = EvaluateRepair(f.dd.dirty, result->cleaned, f.dd.truth).F1();
  }
  // Worker count must not change the result at all: the partition and the
  // per-part cleaning are deterministic.
  EXPECT_NEAR(f1[0], f1[1], 1e-12);
}

TEST(DistributedTest, SimulatedMakespanDecreasesWithWorkers) {
  DistributedResult r;
  r.part_seconds = {4.0, 3.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0};
  double prev = 1e9;
  for (size_t w = 1; w <= 8; ++w) {
    double m = r.SimulatedMakespan(w);
    EXPECT_LE(m, prev);
    prev = m;
  }
  EXPECT_DOUBLE_EQ(r.SimulatedMakespan(1), 15.0);  // serial sum
  EXPECT_DOUBLE_EQ(r.SimulatedMakespan(8), 4.0);   // longest part
}

TEST(DistributedTest, MakespanEdgeCases) {
  DistributedResult r;
  EXPECT_DOUBLE_EQ(r.SimulatedMakespan(4), 0.0);  // no parts
  r.part_seconds = {2.5};
  EXPECT_DOUBLE_EQ(r.SimulatedMakespan(0), 0.0);
  EXPECT_DOUBLE_EQ(r.SimulatedMakespan(3), 2.5);
}

TEST(DistributedTest, InvalidOptionsRejected) {
  TpchFixture f;
  DistributedOptions opts;
  opts.num_parts = 0;
  EXPECT_FALSE(DistributedMlnClean(opts).Clean(f.dd.dirty, f.wl.rules).ok());
  opts.num_parts = 2;
  opts.num_workers = 0;
  EXPECT_FALSE(DistributedMlnClean(opts).Clean(f.dd.dirty, f.wl.rules).ok());
}

TEST(DistributedTest, PartsClampedToRowCount) {
  Schema s = *Schema::Make({"A", "B"});
  Dataset tiny = *Dataset::Make(s, {{"x", "1"}, {"y", "2"}});
  RuleSet rules(s);
  rules.Add(*Constraint::MakeFd(s, {0}, {1}));
  DistributedOptions opts;
  opts.num_parts = 10;  // more parts than rows
  opts.num_workers = 2;
  DistributedMlnClean cleaner(opts);
  auto result = cleaner.Clean(tiny, rules);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->part_seconds.size(), 2u);
}

}  // namespace
}  // namespace mlnclean
