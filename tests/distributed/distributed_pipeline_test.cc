#include "distributed/distributed_pipeline.h"

#include <gtest/gtest.h>

#include "cleaning/engine.h"
#include "datagen/hospital.h"
#include "datagen/tpch.h"
#include "errorgen/injector.h"
#include "eval/metrics.h"

namespace mlnclean {
namespace {

struct HospitalFixture {
  Workload wl = *[] {
    HospitalConfig config;
    config.num_hospitals = 40;
    config.num_measures = 10;
    return MakeHospitalWorkload(config);
  }();
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules,
                                  ErrorSpec{.error_rate = 0.05, .seed = 7});
};

// Content-identical copy whose dictionaries assign different ids (each
// attribute's domain is interned in reverse before the rows are appended).
Dataset WithPermutedIds(const Dataset& d) {
  Dataset out(d.schema());
  for (AttrId a = 0; a < static_cast<AttrId>(d.num_attrs()); ++a) {
    std::vector<Value> domain = d.Domain(a);
    for (auto it = domain.rbegin(); it != domain.rend(); ++it) {
      out.InternValue(a, *it);
    }
  }
  out.Reserve(d.num_rows());
  for (TupleId t = 0; t < static_cast<TupleId>(d.num_rows()); ++t) {
    EXPECT_TRUE(out.Append(d.row(t)).ok());
  }
  return out;
}

struct TpchFixture {
  Workload wl = *MakeTpchWorkload({.num_customers = 40, .num_rows = 1200});
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules,
                                  ErrorSpec{.error_rate = 0.05, .seed = 9});
};

TEST(DistributedTest, CleansWithReasonableAccuracy) {
  TpchFixture f;
  DistributedOptions opts;
  opts.num_parts = 4;
  opts.num_workers = 2;
  // Per-part groups carry ~1/4 of their global support, so the per-part
  // AGP threshold scales down.
  opts.cleaning.agp_threshold = 1;
  DistributedMlnClean cleaner(opts);
  auto result = cleaner.Clean(f.dd.dirty, f.wl.rules);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  RepairMetrics m = EvaluateRepair(f.dd.dirty, result->cleaned, f.dd.truth);
  EXPECT_GT(m.F1(), 0.5) << "P=" << m.Precision() << " R=" << m.Recall();
  EXPECT_EQ(result->part_seconds.size(), 4u);
  EXPECT_GT(result->wall_seconds, 0.0);
  EXPECT_GT(result->global_weights, 0u);
}

TEST(DistributedTest, RowAlignmentPreserved) {
  TpchFixture f;
  DistributedOptions opts;
  opts.num_parts = 3;
  opts.num_workers = 2;
  DistributedMlnClean cleaner(opts);
  auto result = cleaner.Clean(f.dd.dirty, f.wl.rules);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cleaned.num_rows(), f.dd.dirty.num_rows());
  // Attributes untouched by any rule keep their dirty values.
  AttrId qty = *f.wl.clean.schema().Find("Quantity");
  for (TupleId t = 0; t < static_cast<TupleId>(f.dd.dirty.num_rows()); ++t) {
    EXPECT_EQ(result->cleaned.at(t, qty), f.dd.dirty.at(t, qty));
  }
}

TEST(DistributedTest, MoreWorkersNotWorseAccuracy) {
  // Accuracy should be roughly stable across worker counts (Table 6:
  // "the accuracy has very slight fluctuation").
  TpchFixture f;
  double f1[2];
  size_t workers[2] = {1, 2};
  for (int i = 0; i < 2; ++i) {
    DistributedOptions opts;
    opts.num_parts = 4;
    opts.num_workers = workers[i];
    opts.cleaning.agp_threshold = 2;
    DistributedMlnClean cleaner(opts);
    auto result = cleaner.Clean(f.dd.dirty, f.wl.rules);
    ASSERT_TRUE(result.ok());
    f1[i] = EvaluateRepair(f.dd.dirty, result->cleaned, f.dd.truth).F1();
  }
  // Worker count must not change the result at all: the partition and the
  // per-part cleaning are deterministic.
  EXPECT_NEAR(f1[0], f1[1], 1e-12);
}

TEST(DistributedTest, SimulatedMakespanDecreasesWithWorkers) {
  DistributedResult r;
  r.part_seconds = {4.0, 3.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0};
  double prev = 1e9;
  for (size_t w = 1; w <= 8; ++w) {
    double m = r.SimulatedMakespan(w);
    EXPECT_LE(m, prev);
    prev = m;
  }
  EXPECT_DOUBLE_EQ(r.SimulatedMakespan(1), 15.0);  // serial sum
  EXPECT_DOUBLE_EQ(r.SimulatedMakespan(8), 4.0);   // longest part
}

TEST(DistributedTest, MakespanEdgeCases) {
  DistributedResult r;
  EXPECT_DOUBLE_EQ(r.SimulatedMakespan(4), 0.0);  // no parts
  r.part_seconds = {2.5};
  EXPECT_DOUBLE_EQ(r.SimulatedMakespan(0), 0.0);
  EXPECT_DOUBLE_EQ(r.SimulatedMakespan(3), 2.5);
}

TEST(DistributedTest, InvalidOptionsRejected) {
  TpchFixture f;
  DistributedOptions opts;
  opts.num_parts = 0;
  EXPECT_FALSE(DistributedMlnClean(opts).Clean(f.dd.dirty, f.wl.rules).ok());
  opts.num_parts = 2;
  opts.num_workers = 0;
  EXPECT_FALSE(DistributedMlnClean(opts).Clean(f.dd.dirty, f.wl.rules).ok());
}

TEST(DistributedTest, SinglePartMatchesSingleNodeOnHospital) {
  // Partition into one shard -> per-shard clean -> merge must reproduce
  // the single-node pipeline exactly: the shard ships with the global
  // dictionaries, cleans by id, and the merge remaps every id back. Any
  // drift in the ship/remap round trip shows up as a cell difference.
  HospitalFixture f;
  CleaningOptions copts;
  copts.agp_threshold = 3;
  auto single = CleaningEngine(copts).Clean(f.dd.dirty, f.wl.rules);
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  DistributedOptions opts;
  opts.num_parts = 1;
  opts.num_workers = 2;
  opts.cleaning = copts;
  auto distr = DistributedMlnClean(opts).Clean(f.dd.dirty, f.wl.rules);
  ASSERT_TRUE(distr.ok()) << distr.status().ToString();
  EXPECT_EQ(distr->cleaned, single->cleaned);
  EXPECT_EQ(distr->deduped, single->deduped);
}

TEST(DistributedTest, DictionaryIdAssignmentDoesNotChangeResult) {
  // The whole partition -> per-shard clean -> merge path must depend only
  // on cell *values*, never on how dictionaries happen to number them: a
  // content-identical dirty table with permuted ids yields a bit-identical
  // cleaned table. This pins the id-remapping merge (a shard id passed
  // through or re-interned wrongly would surface as a value difference).
  HospitalFixture f;
  Dataset permuted = WithPermutedIds(f.dd.dirty);
  ASSERT_TRUE(permuted == f.dd.dirty);
  ASSERT_NE(permuted.id_at(0, 2), f.dd.dirty.id_at(0, 2));  // ids really differ

  DistributedOptions opts;
  opts.num_parts = 3;
  opts.num_workers = 2;
  opts.cleaning.agp_threshold = 3;
  auto a = DistributedMlnClean(opts).Clean(f.dd.dirty, f.wl.rules);
  auto b = DistributedMlnClean(opts).Clean(permuted, f.wl.rules);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->cleaned, b->cleaned);
  EXPECT_EQ(a->deduped, b->deduped);
}

TEST(DistributedTest, PackedShardShippingIsBitIdentical) {
  // ship_packed rounds every shard through EncodePacked/DecodePacked —
  // what a remote worker process would receive. The packed image
  // preserves the id universe, so the run must be bit-identical to
  // in-process shipping, cell for cell.
  HospitalFixture f;
  DistributedOptions opts;
  opts.num_parts = 3;
  opts.num_workers = 2;
  opts.cleaning.agp_threshold = 3;
  auto unpacked = DistributedMlnClean(opts).Clean(f.dd.dirty, f.wl.rules);
  opts.ship_packed = true;
  auto packed = DistributedMlnClean(opts).Clean(f.dd.dirty, f.wl.rules);
  ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  EXPECT_EQ(packed->cleaned, unpacked->cleaned);
  EXPECT_EQ(packed->deduped, unpacked->deduped);
  EXPECT_EQ(packed->global_weights, unpacked->global_weights);
  EXPECT_EQ(packed->duplicates_removed, unpacked->duplicates_removed);
}

TEST(DistributedTest, PartsClampedToRowCount) {
  Schema s = *Schema::Make({"A", "B"});
  Dataset tiny = *Dataset::Make(s, {{"x", "1"}, {"y", "2"}});
  RuleSet rules(s);
  rules.Add(*Constraint::MakeFd(s, {0}, {1}));
  DistributedOptions opts;
  opts.num_parts = 10;  // more parts than rows
  opts.num_workers = 2;
  DistributedMlnClean cleaner(opts);
  auto result = cleaner.Clean(tiny, rules);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->part_seconds.size(), 2u);
}

}  // namespace
}  // namespace mlnclean
