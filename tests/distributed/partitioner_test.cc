#include "distributed/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "datagen/tpch.h"

namespace mlnclean {
namespace {

Dataset SmallData() {
  Workload wl = *MakeTpchWorkload({.num_customers = 10, .num_rows = 100});
  return wl.clean;
}

TEST(PartitionerTest, CoversEveryTupleExactlyOnce) {
  Dataset d = SmallData();
  PartitionOptions opts;
  opts.num_parts = 4;
  Partition p = *PartitionDataset(d, opts);
  std::vector<int> seen(d.num_rows(), 0);
  for (const auto& part : p.parts) {
    for (TupleId tid : part) seen[static_cast<size_t>(tid)]++;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](int c) { return c == 1; }));
}

TEST(PartitionerTest, RespectsCapacity) {
  Dataset d = SmallData();
  PartitionOptions opts;
  opts.num_parts = 3;
  Partition p = *PartitionDataset(d, opts);
  EXPECT_EQ(p.capacity, (d.num_rows() + 2) / 3);
  for (const auto& part : p.parts) {
    EXPECT_LE(part.size(), p.capacity);
    EXPECT_FALSE(part.empty());  // every part holds at least its centroid
  }
}

TEST(PartitionerTest, CentroidsAreMembersOfTheirParts) {
  Dataset d = SmallData();
  PartitionOptions opts;
  opts.num_parts = 5;
  Partition p = *PartitionDataset(d, opts);
  ASSERT_EQ(p.centroids.size(), 5u);
  for (size_t i = 0; i < p.parts.size(); ++i) {
    EXPECT_TRUE(std::find(p.parts[i].begin(), p.parts[i].end(), p.centroids[i]) !=
                p.parts[i].end());
  }
}

TEST(PartitionerTest, DeterministicForSeed) {
  Dataset d = SmallData();
  PartitionOptions opts;
  opts.num_parts = 4;
  opts.seed = 123;
  Partition a = *PartitionDataset(d, opts);
  Partition b = *PartitionDataset(d, opts);
  EXPECT_EQ(a.parts, b.parts);
  opts.seed = 124;
  Partition c = *PartitionDataset(d, opts);
  EXPECT_TRUE(a.parts != c.parts || a.centroids != c.centroids);
}

TEST(PartitionerTest, SinglePartHoldsEverything) {
  Dataset d = SmallData();
  PartitionOptions opts;
  opts.num_parts = 1;
  Partition p = *PartitionDataset(d, opts);
  ASSERT_EQ(p.parts.size(), 1u);
  EXPECT_EQ(p.parts[0].size(), d.num_rows());
}

TEST(PartitionerTest, PartsEqualRowsYieldsSingletons) {
  Schema s = *Schema::Make({"A"});
  Dataset d = *Dataset::Make(s, {{"aa"}, {"bb"}, {"cc"}});
  PartitionOptions opts;
  opts.num_parts = 3;
  Partition p = *PartitionDataset(d, opts);
  for (const auto& part : p.parts) {
    EXPECT_EQ(part.size(), 1u);
  }
}

TEST(PartitionerTest, InvalidConfigs) {
  Dataset d = SmallData();
  PartitionOptions opts;
  opts.num_parts = 0;
  EXPECT_FALSE(PartitionDataset(d, opts).ok());
  opts.num_parts = d.num_rows() + 1;
  EXPECT_FALSE(PartitionDataset(d, opts).ok());
}

TEST(PartitionerTest, SimilarTuplesGravitateToSameParts) {
  // Two well-separated clusters and k=2: whenever the random centroids
  // land in different clusters (centroid choice is random, so try a few
  // seeds), the partitioner must keep the clusters essentially intact.
  Schema s = *Schema::Make({"A"});
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 20; ++i) rows.push_back({"aaaaaaaa" + std::to_string(i % 3)});
  for (int i = 0; i < 20; ++i) rows.push_back({"zzzzzzzz" + std::to_string(i % 3)});
  Dataset d = *Dataset::Make(s, rows);
  bool checked = false;
  for (uint64_t seed = 1; seed <= 16 && !checked; ++seed) {
    PartitionOptions opts;
    opts.num_parts = 2;
    opts.seed = seed;
    Partition p = *PartitionDataset(d, opts);
    bool c0_in_a = p.centroids[0] < 20;
    bool c1_in_a = p.centroids[1] < 20;
    if (c0_in_a == c1_in_a) continue;  // both centroids in one cluster
    checked = true;
    size_t part_of_a = c0_in_a ? 0 : 1;
    size_t a_tuples = 0;
    for (TupleId tid : p.parts[part_of_a]) {
      if (tid < 20) ++a_tuples;
    }
    EXPECT_EQ(a_tuples, 20u) << "seed " << seed;
  }
  EXPECT_TRUE(checked) << "no seed produced cross-cluster centroids";
}

TEST(TupleDistanceTest, SumsAttributeDistances) {
  Schema s = *Schema::Make({"A", "B"});
  Dataset d = *Dataset::Make(s, {{"abc", "xy"}, {"abd", "xz"}});
  auto lev = MakeDistanceFn(DistanceMetric::kLevenshtein);
  EXPECT_DOUBLE_EQ(TupleDistance(d, 0, 1, lev), 2.0);
  EXPECT_DOUBLE_EQ(TupleDistance(d, 0, 0, lev), 0.0);
}

}  // namespace
}  // namespace mlnclean
