#include "baseline/holoclean.h"

#include <gtest/gtest.h>

#include "datagen/hospital.h"
#include "datagen/sample.h"
#include "eval/metrics.h"

namespace mlnclean {
namespace {

struct HaiFixture {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 30, .num_measures = 10});

  DirtyDataset Corrupt(double rate, double rret, uint64_t seed) const {
    ErrorSpec spec;
    spec.error_rate = rate;
    spec.replacement_ratio = rret;
    spec.seed = seed;
    return *InjectErrors(wl.clean, wl.rules, spec);
  }
};

TEST(HoloCleanTest, OracleRepairsReplacementErrorsOnDenseData) {
  HaiFixture f;
  DirtyDataset dd = f.Corrupt(0.05, 1.0, 11);  // replacements only
  HoloCleanBaseline baseline;
  auto result = baseline.CleanWithOracle(dd.dirty, f.wl.rules, dd.truth);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  RepairMetrics m = EvaluateRepair(dd.dirty, result->cleaned, dd.truth);
  EXPECT_GT(m.F1(), 0.5) << "P=" << m.Precision() << " R=" << m.Recall();
  EXPECT_EQ(result->noisy_cells, dd.truth.NumErrors());
}

TEST(HoloCleanTest, OnlyNoisyCellsAreTouched) {
  HaiFixture f;
  DirtyDataset dd = f.Corrupt(0.05, 0.5, 12);
  HoloCleanBaseline baseline;
  auto result = baseline.CleanWithOracle(dd.dirty, f.wl.rules, dd.truth);
  ASSERT_TRUE(result.ok());
  for (TupleId t = 0; t < static_cast<TupleId>(dd.dirty.num_rows()); ++t) {
    for (AttrId a = 0; a < static_cast<AttrId>(dd.dirty.num_attrs()); ++a) {
      if (!dd.truth.IsErrorCell(t, a)) {
        EXPECT_EQ(result->cleaned.at(t, a), dd.dirty.at(t, a));
      }
    }
  }
}

TEST(HoloCleanTest, DetectorVariantBlindToReasonPartTypos) {
  // The Example 1 blind spot: a typo in a rule's reason part ("DOTH")
  // violates nothing, so violation-based detection never flags it and the
  // repair stage cannot touch it.
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  HoloCleanBaseline baseline;
  auto result = baseline.CleanWithDetector(dirty, rules);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cleaned.at(1, 1), "DOTH");  // t2.CT stays broken
}

TEST(HoloCleanTest, DetectorVariantRuns) {
  HaiFixture f;
  DirtyDataset dd = f.Corrupt(0.05, 1.0, 14);
  HoloCleanBaseline baseline;
  auto result = baseline.CleanWithDetector(dd.dirty, f.wl.rules);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->noisy_cells, 0u);
  RepairMetrics m = EvaluateRepair(dd.dirty, result->cleaned, dd.truth);
  EXPECT_GE(m.F1(), 0.0);  // runs end to end; accuracy depends on detection
}

TEST(HoloCleanTest, MaskDimensionsValidated) {
  HaiFixture f;
  HoloCleanBaseline baseline;
  std::vector<std::vector<bool>> bad_mask(3);  // wrong row count
  EXPECT_FALSE(baseline.Clean(f.wl.clean, f.wl.rules, bad_mask).ok());
}

TEST(HoloCleanTest, TimingsPopulated) {
  HaiFixture f;
  DirtyDataset dd = f.Corrupt(0.05, 0.5, 15);
  HoloCleanBaseline baseline;
  auto result = baseline.CleanWithOracle(dd.dirty, f.wl.rules, dd.truth);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->total_seconds, 0.0);
  EXPECT_GE(result->learn_seconds, 0.0);
  EXPECT_GE(result->infer_seconds, 0.0);
}

TEST(HoloCleanTest, NoErrorsNothingRepaired) {
  HaiFixture f;
  GroundTruth truth(f.wl.clean.Clone(), {});
  HoloCleanBaseline baseline;
  auto result = baseline.CleanWithOracle(f.wl.clean, f.wl.rules, truth);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->noisy_cells, 0u);
  EXPECT_EQ(result->cleaned, f.wl.clean);
}

}  // namespace
}  // namespace mlnclean
