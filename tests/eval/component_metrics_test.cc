#include "eval/component_metrics.h"

#include <gtest/gtest.h>

#include "datagen/hospital.h"
#include "datagen/sample.h"

namespace mlnclean {
namespace {

// Ground truth of the paper's sample: the four dirty cells of Table 1.
GroundTruth SampleTruth() {
  Dataset clean = *SampleHospitalClean();
  std::vector<InjectedError> errors = {
      {1, 1, ErrorKind::kTypo, "DOTHAN"},            // t2.CT
      {2, 1, ErrorKind::kReplacement, "BOAZ"},       // t3.CT
      {2, 3, ErrorKind::kReplacement, "2567688400"}, // t3.PN
      {3, 2, ErrorKind::kReplacement, "AL"},         // t4.ST
  };
  return GroundTruth(std::move(clean), std::move(errors));
}

TEST(ComponentMetricsTest, SampleAllComponentsPerfect) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions options;
  options.agp_threshold = 1;
  auto eval = EvaluateComponents(dirty, rules, options, SampleTruth());
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();

  // AGP: 3 abnormal groups detected, all real, all merged correctly.
  EXPECT_EQ(eval->agp.detected, 3u);
  EXPECT_EQ(eval->agp.real, 3u);
  EXPECT_EQ(eval->agp.correct, 3u);
  EXPECT_DOUBLE_EQ(eval->agp.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(eval->agp.Recall(), 1.0);
  EXPECT_EQ(eval->dag, 3u);

  // RSC: 5 γs repaired, 5 erroneous, all correct.
  EXPECT_EQ(eval->rsc.detected, 5u);
  EXPECT_EQ(eval->rsc.real, 5u);
  EXPECT_DOUBLE_EQ(eval->rsc.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(eval->rsc.Recall(), 1.0);

  // FSCR: one conflicted erroneous cell (t3.CT), repaired correctly; the
  // dataset has 4 erroneous cells in total.
  EXPECT_EQ(eval->fscr.detected, 1u);
  EXPECT_EQ(eval->fscr.correct, 1u);
  EXPECT_EQ(eval->fscr.real, 4u);
  EXPECT_DOUBLE_EQ(eval->fscr.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(eval->fscr.Recall(), 0.25);

  // Overall: perfect repair of the sample.
  EXPECT_DOUBLE_EQ(eval->overall.F1(), 1.0);
  EXPECT_EQ(eval->cleaned, *SampleHospitalClean());
}

TEST(ComponentMetricsTest, TauZeroKillsAgp) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions options;
  options.agp_threshold = 0;
  auto eval = EvaluateComponents(dirty, rules, options, SampleTruth());
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->agp.detected, 0u);
  EXPECT_EQ(eval->dag, 0u);
  EXPECT_DOUBLE_EQ(eval->agp.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(eval->agp.Recall(), 0.0);
}

TEST(ComponentMetricsTest, OversizedTauHurtsPrecision) {
  // With τ large enough to flag everything, no normal target exists and
  // nothing merges: zero correct merges.
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  CleaningOptions options;
  options.agp_threshold = 50;
  auto eval = EvaluateComponents(dirty, rules, options, SampleTruth());
  ASSERT_TRUE(eval.ok());
  EXPECT_GT(eval->agp.detected, 3u);
  EXPECT_DOUBLE_EQ(eval->agp.Precision(), 0.0);
}

TEST(ComponentMetricsTest, ScoresBoundedOnGeneratedWorkload) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 20, .num_measures = 8});
  ErrorSpec spec;
  spec.error_rate = 0.08;
  spec.seed = 5;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  CleaningOptions options;
  options.agp_threshold = 2;
  auto eval = EvaluateComponents(dd.dirty, wl.rules, options, dd.truth);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  for (const ComponentScore* s : {&eval->agp, &eval->rsc, &eval->fscr}) {
    EXPECT_GE(s->Precision(), 0.0);
    EXPECT_LE(s->Precision(), 1.0);
    EXPECT_GE(s->Recall(), 0.0);
    EXPECT_LE(s->Recall(), 1.0);
  }
  EXPECT_GT(eval->overall.F1(), 0.3);
}

TEST(ComponentScoreTest, EdgeConventions) {
  ComponentScore s;
  EXPECT_DOUBLE_EQ(s.Precision(), 0.0);  // nothing detected
  EXPECT_DOUBLE_EQ(s.Recall(), 1.0);     // nothing real, nothing claimed
  s.real = 2;
  EXPECT_DOUBLE_EQ(s.Recall(), 0.0);
}

}  // namespace
}  // namespace mlnclean
