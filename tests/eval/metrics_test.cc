#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "datagen/sample.h"

namespace mlnclean {
namespace {

GroundTruth MakeTruth(const Dataset& clean, std::vector<InjectedError> errors) {
  return GroundTruth(clean.Clone(), std::move(errors));
}

TEST(MetricsTest, PerfectRepair) {
  Dataset clean = *SampleHospitalClean();
  Dataset dirty = *SampleHospitalDirty();
  // The sample has 4 dirty cells: t2.CT, t3.CT, t3.PN, t4.ST.
  GroundTruth truth = MakeTruth(clean, {});
  RepairMetrics m = EvaluateRepair(dirty, clean, truth);
  EXPECT_EQ(m.erroneous, 4u);
  EXPECT_EQ(m.updated, 4u);
  EXPECT_EQ(m.correct, 4u);
  EXPECT_DOUBLE_EQ(m.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(m.F1(), 1.0);
}

TEST(MetricsTest, NoRepair) {
  Dataset clean = *SampleHospitalClean();
  Dataset dirty = *SampleHospitalDirty();
  GroundTruth truth = MakeTruth(clean, {});
  RepairMetrics m = EvaluateRepair(dirty, dirty, truth);
  EXPECT_EQ(m.updated, 0u);
  EXPECT_EQ(m.correct, 0u);
  EXPECT_DOUBLE_EQ(m.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.F1(), 0.0);
}

TEST(MetricsTest, PartialAndWrongRepairs) {
  Schema s = *Schema::Make({"A", "B"});
  Dataset clean = *Dataset::Make(s, {{"x", "1"}, {"y", "2"}});
  Dataset dirty = *Dataset::Make(s, {{"x", "9"}, {"q", "2"}});  // 2 errors
  // Cleaner fixes (0,B) correctly, breaks (1,B), misses (1,A).
  Dataset repaired = *Dataset::Make(s, {{"x", "1"}, {"q", "7"}});
  GroundTruth truth = MakeTruth(clean, {});
  RepairMetrics m = EvaluateRepair(dirty, repaired, truth);
  EXPECT_EQ(m.erroneous, 2u);
  EXPECT_EQ(m.updated, 2u);  // (0,B) and (1,B)
  EXPECT_EQ(m.correct, 1u);
  EXPECT_DOUBLE_EQ(m.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.5);
  EXPECT_DOUBLE_EQ(m.F1(), 0.5);
}

TEST(MetricsTest, CleanInputPerfectRecallByConvention) {
  Schema s = *Schema::Make({"A"});
  Dataset d = *Dataset::Make(s, {{"x"}});
  GroundTruth truth = MakeTruth(d, {});
  RepairMetrics m = EvaluateRepair(d, d, truth);
  EXPECT_EQ(m.erroneous, 0u);
  EXPECT_DOUBLE_EQ(m.Recall(), 1.0);
}

TEST(MetricsTest, F1IsHarmonicMean) {
  RepairMetrics m;
  m.updated = 4;
  m.correct = 2;   // precision 0.5
  m.erroneous = 8;  // recall 0.25
  EXPECT_NEAR(m.F1(), 2 * 0.5 * 0.25 / 0.75, 1e-12);
}

}  // namespace
}  // namespace mlnclean
