#include "errorgen/injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "datagen/car.h"
#include "datagen/hospital.h"
#include "datagen/sample.h"

namespace mlnclean {
namespace {

TEST(TypoTest, DeletesOneCharacter) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    Value v = MakeTypo("DOTHAN", &rng);
    EXPECT_EQ(v.size(), 5u);
    EXPECT_NE(v, "DOTHAN");
  }
}

TEST(TypoTest, ShortValuesGrowInstead) {
  Rng rng(1);
  Value v = MakeTypo("a", &rng);
  EXPECT_EQ(v.size(), 2u);
  Value w = MakeTypo("", &rng);
  EXPECT_EQ(w.size(), 1u);
}

TEST(ReplacementTest, PicksDifferentDomainValue) {
  Rng rng(2);
  std::vector<Value> domain{"AL", "AK", "GA"};
  for (int i = 0; i < 50; ++i) {
    Value v = MakeReplacement("AL", domain, &rng);
    EXPECT_NE(v, "AL");
    EXPECT_TRUE(v == "AK" || v == "GA");
  }
}

TEST(ReplacementTest, DegenerateDomainFallsBackToTypo) {
  Rng rng(3);
  std::vector<Value> domain{"ONLY"};
  Value v = MakeReplacement("ONLY", domain, &rng);
  EXPECT_NE(v, "ONLY");
}

TEST(InjectorTest, ErrorCountMatchesRateOverAllCells) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 20, .num_measures = 10});
  ErrorSpec spec;
  spec.error_rate = 0.10;
  spec.restrict_to_rule_attrs = false;  // candidates = every cell
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  size_t expected = static_cast<size_t>(
      std::llround(0.10 * static_cast<double>(wl.clean.num_cells())));
  EXPECT_EQ(dd.truth.NumErrors(), expected);
}

TEST(InjectorTest, ErrorCountMatchesRateOverRuleCells) {
  // With scoping, the rate is measured against the rule-related cells:
  // HAI rules touch 8 of the 9 attributes on every tuple.
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 20, .num_measures = 10});
  ErrorSpec spec;
  spec.error_rate = 0.10;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  size_t expected = static_cast<size_t>(
      std::llround(0.10 * static_cast<double>(wl.clean.num_rows() * 8)));
  EXPECT_EQ(dd.truth.NumErrors(), expected);
}

TEST(InjectorTest, EveryErrorCellDiffersFromTruth) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 10, .num_measures = 5});
  ErrorSpec spec;
  spec.error_rate = 0.2;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  for (const auto& e : dd.truth.errors()) {
    EXPECT_NE(dd.dirty.at(e.tid, e.attr), dd.truth.TrueValue(e.tid, e.attr));
    EXPECT_EQ(e.original, dd.truth.TrueValue(e.tid, e.attr));
    EXPECT_TRUE(dd.truth.IsErrorCell(e.tid, e.attr));
  }
}

TEST(InjectorTest, NonErrorCellsUntouched) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 10, .num_measures = 5});
  ErrorSpec spec;
  spec.error_rate = 0.05;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  size_t touched = 0;
  for (TupleId t = 0; t < static_cast<TupleId>(wl.clean.num_rows()); ++t) {
    for (AttrId a = 0; a < static_cast<AttrId>(wl.clean.num_attrs()); ++a) {
      if (dd.dirty.at(t, a) != wl.clean.at(t, a)) {
        ++touched;
        EXPECT_TRUE(dd.truth.IsErrorCell(t, a));
      }
    }
  }
  EXPECT_EQ(touched, dd.truth.NumErrors());
}

TEST(InjectorTest, ReplacementRatioRespected) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 30, .num_measures = 10});
  ErrorSpec spec;
  spec.error_rate = 0.1;
  spec.replacement_ratio = 0.25;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  size_t replacements = 0;
  for (const auto& e : dd.truth.errors()) {
    if (e.kind == ErrorKind::kReplacement) ++replacements;
  }
  double ratio = static_cast<double>(replacements) / dd.truth.NumErrors();
  EXPECT_NEAR(ratio, 0.25, 0.01);
}

TEST(InjectorTest, RretExtremes) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 10, .num_measures = 5});
  ErrorSpec spec;
  spec.error_rate = 0.05;
  spec.replacement_ratio = 0.0;
  DirtyDataset all_typos = *InjectErrors(wl.clean, wl.rules, spec);
  for (const auto& e : all_typos.truth.errors()) {
    EXPECT_EQ(e.kind, ErrorKind::kTypo);
  }
  spec.replacement_ratio = 1.0;
  DirtyDataset all_repl = *InjectErrors(wl.clean, wl.rules, spec);
  for (const auto& e : all_repl.truth.errors()) {
    EXPECT_EQ(e.kind, ErrorKind::kReplacement);
  }
}

TEST(InjectorTest, RestrictsToRuleAttributes) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 10, .num_measures = 5});
  // HospitalName is the only attribute no rule touches.
  AttrId hospital_name = *wl.clean.schema().Find("HospitalName");
  ErrorSpec spec;
  spec.error_rate = 0.3;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  for (const auto& e : dd.truth.errors()) {
    EXPECT_NE(e.attr, hospital_name);
  }
}

TEST(InjectorTest, DeterministicForSeed) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 10, .num_measures = 5});
  ErrorSpec spec;
  spec.error_rate = 0.1;
  spec.seed = 77;
  DirtyDataset a = *InjectErrors(wl.clean, wl.rules, spec);
  DirtyDataset b = *InjectErrors(wl.clean, wl.rules, spec);
  EXPECT_EQ(a.dirty, b.dirty);
  spec.seed = 78;
  DirtyDataset c = *InjectErrors(wl.clean, wl.rules, spec);
  EXPECT_FALSE(a.dirty == c.dirty);
}

TEST(InjectorTest, InvalidSpecsRejected) {
  Dataset clean = *SampleHospitalClean();
  RuleSet rules = *SampleHospitalRules();
  ErrorSpec bad;
  bad.error_rate = 1.5;
  EXPECT_FALSE(InjectErrors(clean, rules, bad).ok());
  bad.error_rate = 0.05;
  bad.replacement_ratio = -0.1;
  EXPECT_FALSE(InjectErrors(clean, rules, bad).ok());
}

TEST(InjectorTest, CountClampedToCandidateCapacity) {
  // All four sample attrs are rule-related; a 100% rate over 6x4 cells is
  // feasible, so pick a tiny dataset with one rule attr to force clamping.
  Schema s = *Schema::Make({"A", "B"});
  Dataset clean = *Dataset::Make(s, {{"x", "1"}, {"y", "2"}});
  RuleSet rules(s);
  rules.Add(*Constraint::MakeFd(s, {0}, {1}));
  ErrorSpec spec;
  spec.error_rate = 1.0;  // wants 4 errors, but only 4 rule cells exist
  DirtyDataset dd = *InjectErrors(clean, rules, spec);
  EXPECT_LE(dd.truth.NumErrors(), 4u);
}

TEST(InjectorTest, BurstClustersErrorsInTuples) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 30, .num_measures = 10});
  ErrorSpec spec;
  spec.error_rate = 0.05;
  spec.burst = 3;
  spec.seed = 44;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  // Count errors per tuple: with burst = 3 most corrupted tuples carry
  // exactly 3 errors (the last visited tuple may carry fewer).
  std::unordered_map<TupleId, size_t> per_tuple;
  for (const auto& e : dd.truth.errors()) per_tuple[e.tid]++;
  size_t full_bursts = 0;
  for (const auto& [tid, n] : per_tuple) {
    EXPECT_LE(n, 3u) << "tuple " << tid;
    if (n == 3) ++full_bursts;
  }
  EXPECT_GE(full_bursts, per_tuple.size() - 1);
}

TEST(InjectorTest, BurstPreservesTotalCount) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 20, .num_measures = 8});
  ErrorSpec uniform;
  uniform.error_rate = 0.08;
  uniform.seed = 45;
  ErrorSpec bursty = uniform;
  bursty.burst = 4;
  DirtyDataset a = *InjectErrors(wl.clean, wl.rules, uniform);
  DirtyDataset b = *InjectErrors(wl.clean, wl.rules, bursty);
  EXPECT_EQ(a.truth.NumErrors(), b.truth.NumErrors());
}

TEST(InjectorTest, BurstZeroRejected) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 5, .num_measures = 2});
  ErrorSpec spec;
  spec.burst = 0;
  EXPECT_TRUE(InjectErrors(wl.clean, wl.rules, spec).status().IsInvalid());
}

TEST(InjectorTest, CfdScopeLimitsCandidates) {
  // CAR's CFD only relates to acura rows: Doors errors must land only on
  // acura tuples.
  Workload wl = *MakeCarWorkload({.num_rows = 1500});
  AttrId doors = *wl.clean.schema().Find("Doors");
  AttrId make = *wl.clean.schema().Find("Make");
  ErrorSpec spec;
  spec.error_rate = 0.2;
  spec.seed = 46;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  for (const auto& e : dd.truth.errors()) {
    if (e.attr == doors) {
      EXPECT_EQ(wl.clean.at(e.tid, make), "acura");
    }
  }
}

TEST(DuplicatesTest, AppendsExactCopies) {
  Dataset d = *SampleHospitalClean();
  Rng rng(5);
  std::vector<std::pair<TupleId, TupleId>> pairs;
  AppendDuplicates(&d, 0.5, &rng, &pairs);
  EXPECT_EQ(d.num_rows(), 9u);  // 6 + round(0.5*6)
  ASSERT_EQ(pairs.size(), 3u);
  for (const auto& [copy, src] : pairs) {
    EXPECT_EQ(d.row(copy), d.row(src));
  }
}

}  // namespace
}  // namespace mlnclean
