#include <gtest/gtest.h>

#include "datagen/car.h"
#include "datagen/hospital.h"
#include "datagen/sample.h"
#include "datagen/tpch.h"
#include "rules/violation.h"

namespace mlnclean {
namespace {

TEST(SampleTest, Table1Shape) {
  Dataset dirty = *SampleHospitalDirty();
  EXPECT_EQ(dirty.num_rows(), 6u);
  EXPECT_EQ(dirty.num_attrs(), 4u);
  EXPECT_EQ(dirty.at(1, 1), "DOTH");        // t2's typo
  EXPECT_EQ(dirty.at(3, 2), "AK");          // t4's wrong state
  EXPECT_EQ(dirty.at(2, 3), "2567638410");  // t3's replaced phone
}

TEST(SampleTest, CleanVersionSatisfiesRules) {
  Dataset clean = *SampleHospitalClean();
  RuleSet rules = *SampleHospitalRules();
  EXPECT_TRUE(FindAllViolations(clean, rules).empty());
}

TEST(SampleTest, RuleShapes) {
  RuleSet rules = *SampleHospitalRules();
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules.rule(0).kind(), RuleKind::kFd);
  EXPECT_EQ(rules.rule(1).kind(), RuleKind::kDc);
  EXPECT_EQ(rules.rule(2).kind(), RuleKind::kCfd);
}

class WorkloadTest : public ::testing::TestWithParam<const char*> {
 protected:
  Workload Make() const {
    std::string which = GetParam();
    if (which == "HAI") {
      return *MakeHospitalWorkload({.num_hospitals = 25, .num_measures = 8});
    }
    if (which == "CAR") {
      return *MakeCarWorkload({.num_rows = 2000});
    }
    return *MakeTpchWorkload({.num_customers = 50, .num_rows = 2000});
  }
};

TEST_P(WorkloadTest, CleanByConstruction) {
  // Every generator must produce data on which its Table 4 rules hold.
  Workload wl = Make();
  EXPECT_GT(wl.clean.num_rows(), 0u);
  EXPECT_TRUE(FindAllViolations(wl.clean, wl.rules).empty())
      << wl.name << " generator emitted rule violations";
}

TEST_P(WorkloadTest, DeterministicForSeed) {
  Workload a = Make();
  Workload b = Make();
  EXPECT_EQ(a.clean, b.clean);
}

INSTANTIATE_TEST_SUITE_P(Generators, WorkloadTest,
                         ::testing::Values("HAI", "CAR", "TPCH"));

TEST(HospitalTest, RowTargetHonored) {
  Workload wl = *MakeHospitalWorkload(
      {.num_hospitals = 10, .num_measures = 4, .num_rows = 123});
  EXPECT_EQ(wl.clean.num_rows(), 123u);
}

TEST(HospitalTest, DefaultRowsAreAllPairs) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 10, .num_measures = 4});
  EXPECT_EQ(wl.clean.num_rows(), 40u);
}

TEST(HospitalTest, SevenRulesFromTable4) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 5, .num_measures = 2});
  EXPECT_EQ(wl.rules.size(), 7u);
  EXPECT_EQ(wl.rules.rule(6).kind(), RuleKind::kDc);
}

TEST(HospitalTest, DenseSupport) {
  // Each hospital appears once per measure: reason keys are well
  // supported (the "dense" property the paper attributes to HAI).
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 10, .num_measures = 8});
  AttrId phone = *wl.clean.schema().Find("PhoneNumber");
  std::unordered_map<Value, size_t> counts;
  for (size_t t = 0; t < wl.clean.num_rows(); ++t) {
    counts[wl.clean.at(static_cast<TupleId>(t), phone)]++;
  }
  for (const auto& [v, c] : counts) {
    EXPECT_GE(c, 8u) << v;
  }
}

TEST(CarTest, TwoRulesFromTable4) {
  Workload wl = *MakeCarWorkload({.num_rows = 100});
  EXPECT_EQ(wl.rules.size(), 2u);
  EXPECT_EQ(wl.rules.rule(0).kind(), RuleKind::kCfd);
  EXPECT_EQ(wl.rules.rule(1).kind(), RuleKind::kFd);
}

TEST(CarTest, ContainsAcuraRows) {
  Workload wl = *MakeCarWorkload({.num_rows = 3000});
  AttrId make = *wl.clean.schema().Find("Make");
  bool has_acura = false;
  for (size_t t = 0; t < wl.clean.num_rows() && !has_acura; ++t) {
    has_acura = wl.clean.at(static_cast<TupleId>(t), make) == "acura";
  }
  EXPECT_TRUE(has_acura);
}

TEST(CarTest, RowCountExact) {
  Workload wl = *MakeCarWorkload({.num_rows = 777});
  EXPECT_EQ(wl.clean.num_rows(), 777u);
}

TEST(TpchTest, CustKeyAddressFunctional) {
  Workload wl = *MakeTpchWorkload({.num_customers = 20, .num_rows = 500});
  EXPECT_EQ(wl.rules.size(), 1u);
  AttrId ck = *wl.clean.schema().Find("CustKey");
  AttrId addr = *wl.clean.schema().Find("Address");
  std::unordered_map<Value, Value> mapping;
  for (size_t t = 0; t < wl.clean.num_rows(); ++t) {
    const Value& k = wl.clean.at(static_cast<TupleId>(t), ck);
    const Value& a = wl.clean.at(static_cast<TupleId>(t), addr);
    auto [it, inserted] = mapping.emplace(k, a);
    if (!inserted) {
      EXPECT_EQ(it->second, a);
    }
  }
}

TEST(GeneratorTest, InvalidConfigsRejected) {
  EXPECT_FALSE(MakeHospitalWorkload({.num_hospitals = 0}).ok());
  EXPECT_FALSE(MakeCarWorkload({.num_makes = 0}).ok());
  EXPECT_FALSE(MakeTpchWorkload({.num_customers = 0}).ok());
}

}  // namespace
}  // namespace mlnclean
