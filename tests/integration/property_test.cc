// Property-style sweeps over seeds and configurations: invariants that
// must hold for every run, regardless of the random draw.

#include <gtest/gtest.h>

#include <tuple>

#include "cleaning/engine.h"
#include "datagen/car.h"
#include "datagen/hospital.h"
#include "errorgen/injector.h"
#include "eval/metrics.h"
#include "rules/violation.h"

namespace mlnclean {
namespace {

using SweepParam = std::tuple<int /*seed*/, int /*error_pct*/>;

// Stage I only (index + AGP + learning + RSC), the old RunStageOne cut of
// the plan, expressed as a staged engine session.
Result<MlnIndex> RunStageOne(const CleaningOptions& options, const Dataset& dirty,
                             const RuleSet& rules) {
  MLN_ASSIGN_OR_RETURN(CleanModel model,
                       CleaningEngine(options).Compile(rules.schema(), rules));
  SessionOptions sopts;
  sopts.collect_report = false;
  CleanSession session = model.NewSession(dirty, std::move(sopts));
  MLN_RETURN_NOT_OK(session.RunUntil(Stage::kRsc));
  return std::move(*session.mutable_index());
}

class PipelineSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PipelineSweepTest, InvariantsHoldOnHai) {
  auto [seed, error_pct] = GetParam();
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 15, .num_measures = 6});
  ErrorSpec spec;
  spec.error_rate = error_pct / 100.0;
  spec.seed = static_cast<uint64_t>(seed);
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);

  CleaningOptions options;
  options.agp_threshold = 2;
  auto result = CleaningEngine(options).Clean(dd.dirty, wl.rules);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Invariant 1: row alignment — cleaned has exactly the input rows.
  EXPECT_EQ(result->cleaned.num_rows(), dd.dirty.num_rows());

  // Invariant 2: attributes outside every rule are never modified.
  AttrId name_attr = *wl.clean.schema().Find("HospitalName");
  for (TupleId t = 0; t < static_cast<TupleId>(dd.dirty.num_rows()); ++t) {
    EXPECT_EQ(result->cleaned.at(t, name_attr), dd.dirty.at(t, name_attr));
  }

  // Invariant 3: metrics are well-formed.
  RepairMetrics m = EvaluateRepair(dd.dirty, result->cleaned, dd.truth);
  EXPECT_LE(m.correct, m.updated);
  EXPECT_GE(m.Precision(), 0.0);
  EXPECT_LE(m.Precision(), 1.0);
  EXPECT_LE(m.F1(), 1.0);

  // Invariant 4: dedup output is a subset (no invented tuples).
  EXPECT_LE(result->deduped.num_rows(), result->cleaned.num_rows());

  // Invariant 5: the cleaned data has no violation of FD-style rules that
  // the cleaner actually resolved groups for (soundness of stage 1+2 on
  // covered tuples is approximate; we check it does not *increase*).
  size_t dirty_violations = FindAllViolations(dd.dirty, wl.rules).size();
  size_t clean_violations = FindAllViolations(result->cleaned, wl.rules).size();
  EXPECT_LE(clean_violations, dirty_violations);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(5, 15, 30)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_err" +
             std::to_string(std::get<1>(info.param));
    });

class StageOneInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(StageOneInvariantTest, RscLeavesOneGammaPerGroup) {
  Workload wl = *MakeCarWorkload({.num_rows = 1500, .seed = 77});
  ErrorSpec spec;
  spec.error_rate = 0.08;
  spec.seed = static_cast<uint64_t>(GetParam());
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  CleaningOptions options;
  options.agp_threshold = 1;
  auto index = RunStageOne(options, dd.dirty, wl.rules);
  ASSERT_TRUE(index.ok());
  size_t covered = 0;
  for (const Block& block : index->blocks()) {
    for (const Group& group : block.groups) {
      EXPECT_EQ(group.pieces.size(), 1u);
      covered += group.pieces[0].support();
      EXPECT_GT(group.pieces[0].weight, 0.0);
    }
  }
  EXPECT_GT(covered, 0u);
}

TEST_P(StageOneInvariantTest, TuplePartitionPreservedThroughStageOne) {
  // Every in-scope tuple appears in exactly one γ per block after RSC.
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 12, .num_measures = 5});
  ErrorSpec spec;
  spec.error_rate = 0.1;
  spec.seed = static_cast<uint64_t>(GetParam());
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  CleaningOptions options;
  options.agp_threshold = 2;
  auto index = RunStageOne(options, dd.dirty, wl.rules);
  ASSERT_TRUE(index.ok());
  for (const Block& block : index->blocks()) {
    std::vector<int> seen(dd.dirty.num_rows(), 0);
    for (const Group& group : block.groups) {
      for (const Piece& piece : group.pieces) {
        for (TupleId tid : piece.tuples) seen[static_cast<size_t>(tid)]++;
      }
    }
    const Constraint& rule = wl.rules.rule(block.rule_index);
    for (TupleId t = 0; t < static_cast<TupleId>(dd.dirty.num_rows()); ++t) {
      int expected = rule.InScope(dd.dirty.row(t)) ? 1 : 0;
      EXPECT_EQ(seen[static_cast<size_t>(t)], expected)
          << "tuple " << t << " in block " << block.rule_index;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StageOneInvariantTest, ::testing::Values(4, 8, 15));

class InjectionSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(InjectionSweepTest, ErrorAccountingExact) {
  auto [seed, pct] = GetParam();
  Workload wl = *MakeCarWorkload({.num_rows = 800, .seed = 3});
  ErrorSpec spec;
  spec.error_rate = pct / 100.0;
  spec.seed = static_cast<uint64_t>(seed);
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  // Recount diffs; must equal the recorded error set exactly.
  size_t diffs = 0;
  for (TupleId t = 0; t < static_cast<TupleId>(wl.clean.num_rows()); ++t) {
    for (AttrId a = 0; a < static_cast<AttrId>(wl.clean.num_attrs()); ++a) {
      if (dd.dirty.at(t, a) != wl.clean.at(t, a)) ++diffs;
    }
  }
  EXPECT_EQ(diffs, dd.truth.NumErrors());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InjectionSweepTest,
    ::testing::Combine(::testing::Values(10, 20), ::testing::Values(5, 20, 30)));

}  // namespace
}  // namespace mlnclean
