// End-to-end comparisons: MLNClean vs the HoloClean-style baseline on
// generated workloads, reproducing the headline claims of Section 7 at
// test scale.

#include <gtest/gtest.h>

#include "baseline/holoclean.h"
#include "cleaning/engine.h"
#include "datagen/car.h"
#include "datagen/hospital.h"
#include "errorgen/injector.h"
#include "eval/metrics.h"

namespace mlnclean {
namespace {

struct RunOutcome {
  double mln_f1 = 0.0;
  double base_f1 = 0.0;
};

RunOutcome RunBoth(const Workload& wl, double error_rate, double rret,
                   size_t tau, uint64_t seed) {
  ErrorSpec spec;
  spec.error_rate = error_rate;
  spec.replacement_ratio = rret;
  spec.seed = seed;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);

  CleaningOptions options;
  options.agp_threshold = tau;
  auto mln = CleaningEngine(options).Clean(dd.dirty, wl.rules);
  EXPECT_TRUE(mln.ok()) << mln.status().ToString();

  HoloCleanBaseline baseline;
  auto base = baseline.CleanWithOracle(dd.dirty, wl.rules, dd.truth);
  EXPECT_TRUE(base.ok()) << base.status().ToString();

  RunOutcome out;
  out.mln_f1 = EvaluateRepair(dd.dirty, mln->cleaned, dd.truth).F1();
  out.base_f1 = EvaluateRepair(dd.dirty, base->cleaned, dd.truth).F1();
  return out;
}

TEST(EndToEndTest, HighAccuracyOnHai) {
  // Figure 6(b) territory: MLNClean stays above 0.85 F1 on the dense
  // dataset at the default 5% error rate.
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 40, .num_measures = 10});
  RunOutcome out = RunBoth(wl, 0.05, 0.5, 3, 21);
  EXPECT_GT(out.mln_f1, 0.85);
}

TEST(EndToEndTest, MlnCleanBeatsBaselineOnCarTypos) {
  // Figure 6(a) / Figure 7(a): on the sparse dataset MLNClean tops the
  // oracle-detection baseline, decisively so when typos dominate (the
  // clean partition carries no evidence about a typo'd key).
  Workload wl = *MakeCarWorkload({.num_rows = 3000});
  RunOutcome out = RunBoth(wl, 0.05, 0.0, 2, 22);
  EXPECT_GT(out.mln_f1, out.base_f1);
  EXPECT_GT(out.mln_f1, 0.9);
}

TEST(EndToEndTest, MlnCleanStableAcrossErrorTypeRatio) {
  // Figure 7(b): MLNClean's accuracy moves little as Rret sweeps 0 -> 1.
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 30, .num_measures = 8});
  double lo = 1.0, hi = 0.0;
  for (double rret : {0.0, 0.5, 1.0}) {
    RunOutcome out = RunBoth(wl, 0.05, rret, 3, 23);
    lo = std::min(lo, out.mln_f1);
    hi = std::max(hi, out.mln_f1);
  }
  EXPECT_LT(hi - lo, 0.25) << "MLNClean should be stable w.r.t. Rret";
  EXPECT_GT(lo, 0.6);
}

TEST(EndToEndTest, AccuracyDegradesGracefullyWithErrorRate) {
  // Figure 6: F1 declines slowly as the error rate climbs to 30%.
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 30, .num_measures = 8});
  double f1_low = RunBoth(wl, 0.05, 0.5, 3, 24).mln_f1;
  double f1_high = RunBoth(wl, 0.30, 0.5, 3, 24).mln_f1;
  EXPECT_GT(f1_low, 0.6);
  EXPECT_GT(f1_high, 0.3);
  EXPECT_GE(f1_low + 0.05, f1_high);  // no miraculous improvement
}

TEST(EndToEndTest, DuplicateTuplesRemovedAfterCleaning) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 10, .num_measures = 4});
  Dataset with_dups = wl.clean.Clone();
  Rng rng(25);
  std::vector<std::pair<TupleId, TupleId>> pairs;
  AppendDuplicates(&with_dups, 0.25, &rng, &pairs);
  auto result = CleaningEngine().Clean(with_dups, wl.rules);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->deduped.num_rows(), wl.clean.num_rows());
  EXPECT_EQ(result->report.duplicates.size(), pairs.size());
}

}  // namespace
}  // namespace mlnclean
