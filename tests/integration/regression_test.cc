// Regression tests for behaviours found and fixed while reproducing the
// paper's numbers; each encodes a failure mode in miniature.

#include <gtest/gtest.h>

#include "cleaning/engine.h"
#include "common/csv.h"
#include "datagen/hospital.h"
#include "errorgen/injector.h"
#include "eval/metrics.h"
#include "rules/rule_parser.h"

namespace mlnclean {
namespace {

// A replaced group key must not drag the whole tuple onto another entity.
// Miniature of the HAI "identity drift": hospital A's row gets hospital
// B's phone; rules keyed by phone say "B's zip/state", rules keyed by
// A's own identity say otherwise. The minimal repair (fix the phone)
// must win over the popular rewrite (fix provider+zip+state to B's).
TEST(RegressionTest, FscrPrefersMinimalRepairOverIdentityDrift) {
  Schema s = *Schema::Make({"Provider", "Phone", "Zip", "State"});
  RuleSet rules = *ParseRules(s,
                              "FD: Phone -> Zip\n"
                              "FD: Phone -> State\n"
                              "FD: Provider -> Phone, Zip\n");
  std::vector<std::vector<Value>> rows;
  // Hospital A: provider PA, phone 1111, zip 355, state AL (6 rows).
  for (int i = 0; i < 6; ++i) rows.push_back({"PA", "1111", "355", "AL"});
  // Hospital B: provider PB, phone 2222, zip 366, state GA (6 rows).
  for (int i = 0; i < 6; ++i) rows.push_back({"PB", "2222", "366", "GA"});
  // The corrupted row: hospital A with B's phone.
  rows.push_back({"PA", "2222", "355", "AL"});
  Dataset dirty = *Dataset::Make(s, rows);

  CleaningOptions options;
  options.agp_threshold = 0;  // isolate the FSCR behaviour
  options.remove_duplicates = false;
  auto result = CleaningEngine(options).Clean(dirty, rules);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Minimal repair: phone restored to 1111, everything else untouched.
  EXPECT_EQ(result->cleaned.row(12),
            (std::vector<Value>{"PA", "1111", "355", "AL"}));
}

// With the minimality bias disabled, the same scenario is allowed to
// drift (the two fusions are weight-ties); this guards the knob's
// semantics rather than a specific winner.
TEST(RegressionTest, MinimalityDiscountIsTheTieBreaker) {
  Schema s = *Schema::Make({"Provider", "Phone", "Zip", "State"});
  RuleSet rules = *ParseRules(s,
                              "FD: Phone -> Zip\n"
                              "FD: Phone -> State\n"
                              "FD: Provider -> Phone, Zip\n");
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 6; ++i) rows.push_back({"PA", "1111", "355", "AL"});
  for (int i = 0; i < 6; ++i) rows.push_back({"PB", "2222", "366", "GA"});
  rows.push_back({"PA", "2222", "355", "AL"});
  Dataset dirty = *Dataset::Make(s, rows);

  CleaningOptions with_bias;
  with_bias.agp_threshold = 0;
  with_bias.remove_duplicates = false;
  CleaningOptions without_bias = with_bias;
  without_bias.fscr_minimality_discount = 1.0;

  auto biased = *CleaningEngine(with_bias).Clean(dirty, rules);
  auto unbiased = *CleaningEngine(without_bias).Clean(dirty, rules);
  // The biased run repairs minimally; the unbiased run changes at least
  // as many cells of the corrupted tuple.
  auto changed = [&](const Dataset& cleaned) {
    size_t n = 0;
    for (AttrId a = 0; a < 4; ++a) {
      if (cleaned.at(12, a) != dirty.at(12, a)) ++n;
    }
    return n;
  };
  EXPECT_LE(changed(biased.cleaned), changed(unbiased.cleaned));
  EXPECT_EQ(changed(biased.cleaned), 1u);
}

// Learned γ weights must stay on the probability scale: an uncontested γ
// keeps exactly its Eq. 4 prior, so FSCR products are comparable across
// blocks (the weight-calibration bug class).
TEST(RegressionTest, UncontestedWeightsEqualPriors) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 10, .num_measures = 5});
  MlnIndex learned = *MlnIndex::Build(wl.clean, wl.rules);
  learned.LearnWeights();
  MlnIndex priors = *MlnIndex::Build(wl.clean, wl.rules);
  priors.AssignPriorWeights();
  // Clean data: every group has one γ, so learned == prior everywhere.
  for (size_t bi = 0; bi < learned.num_blocks(); ++bi) {
    const Block& lb = learned.block(bi);
    const Block& pb = priors.block(bi);
    for (size_t gi = 0; gi < lb.groups.size(); ++gi) {
      ASSERT_EQ(lb.groups[gi].pieces.size(), 1u);
      EXPECT_NEAR(lb.groups[gi].pieces[0].weight, pb.groups[gi].pieces[0].weight,
                  1e-9);
    }
  }
}

// End-to-end CSV workflow: dirty CSV in, clean CSV out.
TEST(RegressionTest, CsvRoundTripWorkflow) {
  std::string dir = ::testing::TempDir();
  std::string dirty_path = dir + "/mlnclean_dirty.csv";
  std::string clean_path = dir + "/mlnclean_clean.csv";

  Workload wl = *MakeHospitalWorkload({.num_hospitals = 8, .num_measures = 4});
  ErrorSpec spec;
  spec.error_rate = 0.05;
  spec.seed = 99;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  ASSERT_TRUE(WriteCsvFile(dd.dirty.ToCsv(), dirty_path).ok());

  Dataset loaded = *Dataset::FromCsvFile(dirty_path);
  ASSERT_EQ(loaded, dd.dirty);

  CleaningOptions options;
  options.agp_threshold = 2;
  auto result = CleaningEngine(options).Clean(loaded, wl.rules);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(WriteCsvFile(result->deduped.ToCsv(), clean_path).ok());

  Dataset reloaded = *Dataset::FromCsvFile(clean_path);
  EXPECT_EQ(reloaded, result->deduped);
  RepairMetrics m = EvaluateRepair(dd.dirty, result->cleaned, dd.truth);
  EXPECT_GT(m.F1(), 0.5);
}

// Options validation rejects every bad knob with Invalid, not a crash.
TEST(RegressionTest, OptionValidationCoverage) {
  Dataset d = *Dataset::Make(*Schema::Make({"A", "B"}), {{"x", "1"}});
  RuleSet rules(d.schema());
  rules.Add(*Constraint::MakeFd(d.schema(), {0}, {1}));

  CleaningOptions bad1;
  bad1.fscr_minimality_discount = 0.0;
  EXPECT_TRUE(CleaningEngine(bad1).Clean(d, rules).status().IsInvalid());

  CleaningOptions bad2;
  bad2.fscr_minimality_discount = 1.5;
  EXPECT_TRUE(CleaningEngine(bad2).Clean(d, rules).status().IsInvalid());

  CleaningOptions bad3;
  bad3.learner.l2 = -1.0;
  EXPECT_TRUE(CleaningEngine(bad3).Clean(d, rules).status().IsInvalid());
}

// The report summary renders without crashing and mentions every stage.
TEST(RegressionTest, ReportSummaryMentionsStages) {
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 8, .num_measures = 4});
  ErrorSpec spec;
  spec.error_rate = 0.1;
  spec.seed = 3;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  auto result = *CleaningEngine().Clean(dd.dirty, wl.rules);
  std::string summary = result.report.Summary();
  EXPECT_NE(summary.find("agp"), std::string::npos);
  EXPECT_NE(summary.find("rsc"), std::string::npos);
  EXPECT_NE(summary.find("fscr"), std::string::npos);
}

}  // namespace
}  // namespace mlnclean
