#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace mlnclean {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, FutureResolves) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  auto fut = pool.Submit([&ran] { ran = true; });
  fut.wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> x{0};
  pool.Submit([&x] { x = 7; });
  pool.WaitIdle();
  EXPECT_EQ(x.load(), 7);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(3);
  pool.WaitIdle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, PostRunsFireAndForget) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.Post([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 64);
}

}  // namespace
}  // namespace mlnclean
