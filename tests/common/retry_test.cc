#include "common/retry.h"

#include <gtest/gtest.h>

#include <vector>

namespace mlnclean {
namespace {

using std::chrono::milliseconds;

TEST(RetryPolicyTest, DefaultsValidate) {
  EXPECT_TRUE(RetryPolicy{}.Validate().ok());
}

TEST(RetryPolicyTest, ValidateRejectsBadKnobs) {
  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_TRUE(p.Validate().IsInvalid());

  p = RetryPolicy{};
  p.initial_backoff = milliseconds(-1);
  EXPECT_TRUE(p.Validate().IsInvalid());

  p = RetryPolicy{};
  p.multiplier = 0.5;
  EXPECT_TRUE(p.Validate().IsInvalid());

  p = RetryPolicy{};
  p.jitter = 1.0;  // would allow a zero-length delay window
  EXPECT_TRUE(p.Validate().IsInvalid());
  p.jitter = -0.1;
  EXPECT_TRUE(p.Validate().IsInvalid());
}

TEST(RetryPolicyTest, OnlyBackpressureCodesAreRetryable) {
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::Unavailable("queue full")));
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::ResourceExhausted("oom")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::OK()));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Invalid("bad")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Internal("bug")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Cancelled("stop")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Corruption("torn")));
}

TEST(RetryScheduleTest, NoJitterGrowsExponentiallyToTheCap) {
  RetryPolicy p;
  p.initial_backoff = milliseconds(10);
  p.max_backoff = milliseconds(100);
  p.multiplier = 2.0;
  p.jitter = 0.0;
  RetrySchedule s(p);
  EXPECT_EQ(s.NextDelay(), milliseconds(10));
  EXPECT_EQ(s.NextDelay(), milliseconds(20));
  EXPECT_EQ(s.NextDelay(), milliseconds(40));
  EXPECT_EQ(s.NextDelay(), milliseconds(80));
  EXPECT_EQ(s.NextDelay(), milliseconds(100));  // capped
  EXPECT_EQ(s.NextDelay(), milliseconds(100));  // stays capped
  EXPECT_EQ(s.retries(), 6u);
}

TEST(RetryScheduleTest, SameSeedSameDelays) {
  RetryPolicy p;
  p.seed = 1234;
  auto draw = [&p]() {
    RetrySchedule s(p);
    std::vector<milliseconds> delays;
    for (int i = 0; i < 8; ++i) delays.push_back(s.NextDelay());
    return delays;
  };
  EXPECT_EQ(draw(), draw());

  RetryPolicy other = p;
  other.seed = 1235;
  RetrySchedule changed(other);
  std::vector<milliseconds> reference = draw();
  bool any_different = false;
  for (int i = 0; i < 8; ++i) {
    if (changed.NextDelay() != reference[i]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RetryScheduleTest, JitterStaysInsideItsWindow) {
  RetryPolicy p;
  p.initial_backoff = milliseconds(1000);
  p.max_backoff = milliseconds(1000);
  p.multiplier = 1.0;
  p.jitter = 0.2;
  p.seed = 7;
  RetrySchedule s(p);
  for (int i = 0; i < 64; ++i) {
    milliseconds d = s.NextDelay();
    EXPECT_GE(d, milliseconds(800)) << "draw " << i;
    EXPECT_LE(d, milliseconds(1200)) << "draw " << i;
  }
}

}  // namespace
}  // namespace mlnclean
