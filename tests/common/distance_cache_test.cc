#include "common/distance_cache.h"

#include <gtest/gtest.h>

#include <string>

namespace mlnclean {
namespace {

DistanceFn CountingLevenshtein(size_t* calls) {
  return [calls](std::string_view a, std::string_view b) {
    ++*calls;
    return static_cast<double>(Levenshtein(a, b));
  };
}

TEST(DistanceCacheTest, InterningIsStableAndDeduplicates) {
  size_t calls = 0;
  DistanceFn fn = CountingLevenshtein(&calls);
  DistanceCache cache(fn);
  ValueId a = cache.Intern("DOTHAN");
  ValueId b = cache.Intern("BOAZ");
  EXPECT_NE(a, b);
  EXPECT_EQ(cache.Intern("DOTHAN"), a);
  EXPECT_EQ(cache.Intern("BOAZ"), b);
  EXPECT_EQ(cache.num_values(), 2u);
}

TEST(DistanceCacheTest, MemoizesSymmetricPairs) {
  size_t calls = 0;
  DistanceFn fn = CountingLevenshtein(&calls);
  DistanceCache cache(fn);
  // Long enough that the pair goes through the memo, not the short-string
  // bypass.
  ValueId a = cache.Intern("MRSA BLOODSTREAM INFECTION");
  ValueId b = cache.Intern("MRSA BLOODSTREAM INFECTIONS");
  EXPECT_DOUBLE_EQ(cache.Distance(a, b), 1.0);
  EXPECT_EQ(calls, 1u);
  // Repeat and mirrored lookups come from the memo.
  EXPECT_DOUBLE_EQ(cache.Distance(a, b), 1.0);
  EXPECT_DOUBLE_EQ(cache.Distance(b, a), 1.0);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(cache.num_cached_pairs(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(DistanceCacheTest, ShortPairsBypassTheMemo) {
  // Below the combined-length threshold the kernel runs directly: correct
  // results, nothing stored.
  size_t calls = 0;
  DistanceFn fn = CountingLevenshtein(&calls);
  DistanceCache cache(fn);
  ValueId a = cache.Intern("DOTH");
  ValueId b = cache.Intern("DOTHAN");
  EXPECT_DOUBLE_EQ(cache.Distance(a, b), 2.0);
  EXPECT_DOUBLE_EQ(cache.Distance(a, b), 2.0);
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(cache.num_cached_pairs(), 0u);
}

TEST(DistanceCacheTest, IdenticalIdsSkipTheKernel) {
  size_t calls = 0;
  DistanceFn fn = CountingLevenshtein(&calls);
  DistanceCache cache(fn);
  ValueId a = cache.Intern("AL");
  EXPECT_DOUBLE_EQ(cache.Distance(a, a), 0.0);
  EXPECT_EQ(calls, 0u);
}

TEST(DistanceCacheTest, StringConvenienceMatchesDirect) {
  size_t calls = 0;
  DistanceFn fn = CountingLevenshtein(&calls);
  DistanceCache cache(fn);
  EXPECT_DOUBLE_EQ(cache.Distance("surgical site infection", "surgical cite infections"), 2.0);
  EXPECT_DOUBLE_EQ(cache.Distance("surgical cite infections", "surgical site infection"), 2.0);
  EXPECT_EQ(calls, 1u);
}

TEST(DistanceCacheTest, SurvivesRehash) {
  // Interned ids must keep pointing at valid strings after the id map
  // grows past its initial bucket count.
  size_t calls = 0;
  DistanceFn fn = CountingLevenshtein(&calls);
  DistanceCache cache(fn);
  ValueId first = cache.Intern("value-0");
  for (int i = 1; i < 500; ++i) cache.Intern("value-" + std::to_string(i));
  ValueId again = cache.Intern("value-0");
  EXPECT_EQ(first, again);
  EXPECT_DOUBLE_EQ(cache.Distance(first, cache.Intern("value-499")), 3.0);
}

}  // namespace
}  // namespace mlnclean
