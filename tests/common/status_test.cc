#include "common/status.h"

#include <gtest/gtest.h>

#include <new>
#include <stdexcept>

#include "common/result.h"

namespace mlnclean {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_TRUE(Status::Invalid("x").IsInvalid());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  Status s = Status::Invalid("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "Invalid: bad input");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::IOError("disk gone");
  Status t = s;
  EXPECT_TRUE(t.IsIOError());
  EXPECT_EQ(t.message(), "disk gone");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalid), "Invalid");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
}

TEST(StatusTest, RobustnessCodes) {
  Status oom = Status::ResourceExhausted("allocator said no");
  EXPECT_TRUE(oom.IsResourceExhausted());
  EXPECT_FALSE(oom.IsInternal());
  Status torn = Status::Corruption("section 2 checksum mismatch");
  EXPECT_TRUE(torn.IsCorruption());
  EXPECT_FALSE(torn.IsInvalid());
  EXPECT_STRNE(StatusCodeToString(StatusCode::kResourceExhausted),
               StatusCodeToString(StatusCode::kCorruption));
}

TEST(StatusTest, FromCurrentExceptionMapsTheExceptionType) {
  Status from_runtime = [] {
    try {
      throw std::runtime_error("widget jammed");
    } catch (...) {
      return StatusFromCurrentException("spinning widget");
    }
  }();
  EXPECT_TRUE(from_runtime.IsInternal()) << from_runtime.ToString();
  EXPECT_NE(from_runtime.message().find("spinning widget"), std::string::npos);
  EXPECT_NE(from_runtime.message().find("widget jammed"), std::string::npos);

  Status from_bad_alloc = [] {
    try {
      throw std::bad_alloc();
    } catch (...) {
      return StatusFromCurrentException("allocating");
    }
  }();
  EXPECT_TRUE(from_bad_alloc.IsResourceExhausted())
      << from_bad_alloc.ToString();

  Status from_unknown = [] {
    try {
      throw 42;  // not a std::exception
    } catch (...) {
      return StatusFromCurrentException("computing");
    }
  }();
  EXPECT_TRUE(from_unknown.IsInternal()) << from_unknown.ToString();
  EXPECT_NE(from_unknown.message().find("computing"), std::string::npos);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueUnsafe();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MLN_ASSIGN_OR_RETURN(int h, Half(x));
  MLN_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

Status CheckEven(int x) {
  MLN_RETURN_NOT_OK(Half(x).ok() ? Status::OK() : Half(x).status());
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> bad = Quarter(6);  // 6/2 = 3, odd -> Invalid
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalid());
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(CheckEven(4).ok());
  EXPECT_FALSE(CheckEven(3).ok());
}

}  // namespace
}  // namespace mlnclean
