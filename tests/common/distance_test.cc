#include "common/distance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"

namespace mlnclean {
namespace {

TEST(LevenshteinTest, KnownValues) {
  EXPECT_EQ(Levenshtein("", ""), 0u);
  EXPECT_EQ(Levenshtein("abc", ""), 3u);
  EXPECT_EQ(Levenshtein("", "abc"), 3u);
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(Levenshtein("flaw", "lawn"), 2u);
  EXPECT_EQ(Levenshtein("abc", "abc"), 0u);
  // Paper examples: the typo "DOTH" is two deletions from "DOTHAN".
  EXPECT_EQ(Levenshtein("DOTH", "DOTHAN"), 2u);
  EXPECT_EQ(Levenshtein("AK", "AL"), 1u);
  EXPECT_EQ(Levenshtein("2567638410", "2567688400"), 2u);
}

TEST(DamerauTest, TranspositionCountsAsOne) {
  EXPECT_EQ(DamerauLevenshtein("ab", "ba"), 1u);
  EXPECT_EQ(Levenshtein("ab", "ba"), 2u);
  EXPECT_EQ(DamerauLevenshtein("ca", "abc"), 3u);  // classic OSA example
  EXPECT_EQ(DamerauLevenshtein("abcdef", "abcdfe"), 1u);
  EXPECT_EQ(DamerauLevenshtein("", "xy"), 2u);
}

TEST(CosineTest, RangeAndIdentity) {
  EXPECT_DOUBLE_EQ(CosineBigramDistance("same", "same"), 0.0);
  EXPECT_DOUBLE_EQ(CosineBigramDistance("", "abc"), 1.0);
  double d = CosineBigramDistance("night", "nacht");
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(CosineTest, PrefixTypoVsSuffixTypo) {
  // Cosine over bigrams is position-insensitive: a corrupted first
  // character destroys only one bigram, same as a corrupted last one, so
  // both land far from the prefix-sensitive behaviour the paper discusses
  // for ordering (Table 5 rationale: cosine mis-ranks prefix errors).
  double prefix = CosineBigramDistance("XOTHAN", "DOTHAN");
  double suffix = CosineBigramDistance("DOTHAX", "DOTHAN");
  EXPECT_NEAR(prefix, suffix, 1e-9);
}

TEST(CosineTest, ShortStringsFallBackToUnigrams) {
  EXPECT_DOUBLE_EQ(CosineBigramDistance("a", "a"), 0.0);
  EXPECT_DOUBLE_EQ(CosineBigramDistance("a", "b"), 1.0);
}

TEST(DistanceFnTest, FactoryMatchesDirectCalls) {
  auto lev = MakeDistanceFn(DistanceMetric::kLevenshtein);
  auto cos = MakeDistanceFn(DistanceMetric::kCosine);
  auto dam = MakeDistanceFn(DistanceMetric::kDamerau);
  EXPECT_DOUBLE_EQ(lev("kitten", "sitting"), 3.0);
  EXPECT_DOUBLE_EQ(dam("ab", "ba"), 1.0);
  EXPECT_DOUBLE_EQ(cos("x", "x"), 0.0);
}

TEST(DistanceFnTest, ParseNames) {
  EXPECT_EQ(*ParseDistanceMetric("levenshtein"), DistanceMetric::kLevenshtein);
  EXPECT_EQ(*ParseDistanceMetric("Cosine"), DistanceMetric::kCosine);
  EXPECT_EQ(*ParseDistanceMetric("DAMERAU"), DistanceMetric::kDamerau);
  EXPECT_FALSE(ParseDistanceMetric("hamming").ok());
  EXPECT_STREQ(DistanceMetricName(DistanceMetric::kCosine), "cosine");
}

TEST(NormalizedDistanceTest, EditDistancesScaledByLength) {
  auto norm = MakeNormalizedDistanceFn(DistanceMetric::kLevenshtein);
  EXPECT_DOUBLE_EQ(norm("DOTH", "DOTHAN"), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(norm("", ""), 0.0);
  EXPECT_DOUBLE_EQ(norm("abc", ""), 1.0);  // total rewrite costs 1
  EXPECT_DOUBLE_EQ(norm("AK", "AL"), 0.5);
}

TEST(NormalizedDistanceTest, BoundedByOneForEditMetrics) {
  for (auto metric : {DistanceMetric::kLevenshtein, DistanceMetric::kDamerau}) {
    auto norm = MakeNormalizedDistanceFn(metric);
    EXPECT_LE(norm("abcdef", "xyz"), 1.0);
    EXPECT_LE(norm("a", "completely-different"), 1.0);
  }
}

TEST(NormalizedDistanceTest, CosinePassesThroughUnchanged) {
  auto raw = MakeDistanceFn(DistanceMetric::kCosine);
  auto norm = MakeNormalizedDistanceFn(DistanceMetric::kCosine);
  EXPECT_DOUBLE_EQ(raw("night", "nacht"), norm("night", "nacht"));
}

TEST(NormalizedDistanceTest, OneLongAttrCheaperThanTwoShortOnes) {
  // The property AGP relies on: a fully different long value costs ~1,
  // less than two fully different short values (~2).
  auto norm = MakeNormalizedDistanceFn(DistanceMetric::kLevenshtein);
  double one_long = norm("telluride", "borrego");
  double two_short = norm("suv", "van") + norm("kia", "bmw");
  EXPECT_LT(one_long, two_short);
}

// Property sweep: metric axioms over random strings.
class DistancePropertyTest : public ::testing::TestWithParam<DistanceMetric> {};

TEST_P(DistancePropertyTest, IdentitySymmetryNonNegativity) {
  DistanceFn fn = MakeDistanceFn(GetParam());
  Rng rng(123);
  const std::string alphabet = "abcde";
  for (int trial = 0; trial < 200; ++trial) {
    std::string a, b;
    for (size_t i = rng.NextIndex(10); i > 0; --i) {
      a += alphabet[rng.NextIndex(alphabet.size())];
    }
    for (size_t i = rng.NextIndex(10); i > 0; --i) {
      b += alphabet[rng.NextIndex(alphabet.size())];
    }
    EXPECT_DOUBLE_EQ(fn(a, a), 0.0) << a;
    EXPECT_DOUBLE_EQ(fn(a, b), fn(b, a)) << a << " vs " << b;
    EXPECT_GE(fn(a, b), 0.0);
  }
}

TEST_P(DistancePropertyTest, EditDistancesSatisfyTriangleInequality) {
  if (GetParam() == DistanceMetric::kCosine) {
    GTEST_SKIP() << "cosine over bigram counts is not a metric";
  }
  DistanceFn fn = MakeDistanceFn(GetParam());
  Rng rng(321);
  const std::string alphabet = "abc";
  for (int trial = 0; trial < 100; ++trial) {
    std::string s[3];
    for (auto& str : s) {
      for (size_t i = rng.NextIndex(8); i > 0; --i) {
        str += alphabet[rng.NextIndex(alphabet.size())];
      }
    }
    EXPECT_LE(fn(s[0], s[2]), fn(s[0], s[1]) + fn(s[1], s[2]))
        << s[0] << " " << s[1] << " " << s[2];
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, DistancePropertyTest,
                         ::testing::Values(DistanceMetric::kLevenshtein,
                                           DistanceMetric::kCosine,
                                           DistanceMetric::kDamerau),
                         [](const auto& info) {
                           return DistanceMetricName(info.param);
                         });

// ---- reference implementations the optimized kernels must agree with ----

// Full-matrix Levenshtein, no trimming or rolling rows.
size_t ReferenceLevenshtein(const std::string& a, const std::string& b) {
  std::vector<std::vector<size_t>> d(a.size() + 1,
                                     std::vector<size_t>(b.size() + 1, 0));
  for (size_t i = 0; i <= a.size(); ++i) d[i][0] = i;
  for (size_t j = 0; j <= b.size(); ++j) d[0][j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1, d[i - 1][j - 1] + cost});
    }
  }
  return d[a.size()][b.size()];
}

// Full-matrix optimal-string-alignment Damerau-Levenshtein.
size_t ReferenceDamerau(const std::string& a, const std::string& b) {
  std::vector<std::vector<size_t>> d(a.size() + 1,
                                     std::vector<size_t>(b.size() + 1, 0));
  for (size_t i = 0; i <= a.size(); ++i) d[i][0] = i;
  for (size_t j = 0; j <= b.size(); ++j) d[0][j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1, d[i - 1][j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        d[i][j] = std::min(d[i][j], d[i - 2][j - 2] + 1);
      }
    }
  }
  return d[a.size()][b.size()];
}

// Naive quadratic cosine over bigram (or unigram) count vectors.
double ReferenceCosine(const std::string& a, const std::string& b) {
  if (a == b) return 0.0;
  if (a.empty() || b.empty()) return 1.0;
  auto grams = [](const std::string& s) {
    std::vector<std::pair<uint16_t, double>> out;
    auto add = [&out](uint16_t key) {
      for (auto& kv : out) {
        if (kv.first == key) {
          kv.second += 1.0;
          return;
        }
      }
      out.emplace_back(key, 1.0);
    };
    if (s.size() < 2) {
      for (char c : s) add(static_cast<uint16_t>(static_cast<unsigned char>(c)));
    } else {
      for (size_t i = 0; i + 1 < s.size(); ++i) {
        add(static_cast<uint16_t>((static_cast<unsigned char>(s[i]) << 8) |
                                  static_cast<unsigned char>(s[i + 1])));
      }
    }
    return out;
  };
  auto va = grams(a), vb = grams(b);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [ka, ca] : va) {
    na += ca * ca;
    for (const auto& [kb, cb] : vb) {
      if (ka == kb) dot += ca * cb;
    }
  }
  for (const auto& [kb, cb] : vb) nb += cb * cb;
  if (na == 0.0 || nb == 0.0) return 1.0;
  double sim = dot / (std::sqrt(na) * std::sqrt(nb));
  return std::min(std::max(1.0 - sim, 0.0), 1.0);
}

std::string RandomString(Rng* rng, const std::string& alphabet, size_t max_len) {
  std::string s;
  for (size_t i = rng->NextIndex(max_len + 1); i > 0; --i) {
    s += alphabet[rng->NextIndex(alphabet.size())];
  }
  return s;
}

TEST(KernelPropertyTest, ScratchLevenshteinMatchesReference) {
  Rng rng(2024);
  EditDistanceScratch scratch;
  // A small alphabet forces long shared prefixes/suffixes, exercising the
  // affix-trimming fast path against the untrimmed full matrix.
  const std::string alphabet = "abcd";
  for (int trial = 0; trial < 500; ++trial) {
    std::string a = RandomString(&rng, alphabet, 16);
    std::string b = RandomString(&rng, alphabet, 16);
    EXPECT_EQ(Levenshtein(a, b, &scratch), ReferenceLevenshtein(a, b))
        << '"' << a << "\" vs \"" << b << '"';
    EXPECT_EQ(Levenshtein(a, b), ReferenceLevenshtein(a, b));
  }
}

TEST(KernelPropertyTest, ScratchDamerauMatchesReference) {
  Rng rng(2025);
  EditDistanceScratch scratch;
  const std::string alphabet = "abc";
  for (int trial = 0; trial < 500; ++trial) {
    std::string a = RandomString(&rng, alphabet, 14);
    std::string b = RandomString(&rng, alphabet, 14);
    EXPECT_EQ(DamerauLevenshtein(a, b, &scratch), ReferenceDamerau(a, b))
        << '"' << a << "\" vs \"" << b << '"';
  }
}

// ---- Myers bit-parallel kernel vs the reference DP ----------------------

TEST(MyersPropertyTest, MatchesReferenceDpOnShortStrings) {
  Rng rng(7001);
  EditDistanceScratch scratch, ref_scratch;
  const std::string alphabet = "abcd";
  for (int trial = 0; trial < 1000; ++trial) {
    std::string a = RandomString(&rng, alphabet, 20);
    std::string b = RandomString(&rng, alphabet, 20);
    EXPECT_EQ(Levenshtein(a, b, &scratch),
              LevenshteinReferenceDp(a, b, &ref_scratch))
        << '"' << a << "\" vs \"" << b << '"';
  }
}

TEST(MyersPropertyTest, MatchesReferenceAcrossTheBlockBoundary) {
  Rng rng(7002);
  EditDistanceScratch scratch, ref_scratch;
  const std::string alphabet = "abcdefgh";
  // Lengths straddling 64 force both the single-block kernel near its top
  // bit and the blocked kernel's carry propagation between words. The
  // random prefix keeps affix trimming from shortening everything back
  // under one block.
  for (int trial = 0; trial < 300; ++trial) {
    const size_t len_a = 40 + rng.NextIndex(120);  // up to 159
    const size_t len_b = 40 + rng.NextIndex(120);
    std::string a, b;
    while (a.size() < len_a) a += alphabet[rng.NextIndex(alphabet.size())];
    while (b.size() < len_b) b += alphabet[rng.NextIndex(alphabet.size())];
    EXPECT_EQ(Levenshtein(a, b, &scratch),
              LevenshteinReferenceDp(a, b, &ref_scratch))
        << "lengths " << len_a << " vs " << len_b << " (trial " << trial << ")";
  }
}

TEST(MyersPropertyTest, ExactlySixtyFourAndSixtyFivePatternChars) {
  EditDistanceScratch scratch, ref_scratch;
  // Pin the block boundary itself: a 64-char pattern uses the top bit of
  // the single block, a 65-char pattern is the smallest blocked case.
  std::string base(64, 'x');
  for (size_t i = 0; i < base.size(); i += 7) base[i] = 'y';
  for (size_t extra = 0; extra <= 3; ++extra) {
    std::string a = base + std::string(extra, 'z');
    std::string b = base;
    std::reverse(b.begin(), b.end());
    b += "qq";
    EXPECT_EQ(Levenshtein(a, b, &scratch),
              LevenshteinReferenceDp(a, b, &ref_scratch))
        << "pattern length " << a.size();
  }
}

TEST(MyersPropertyTest, EmptyAndSingleCharStrings) {
  EditDistanceScratch scratch;
  EXPECT_EQ(Levenshtein("", "", &scratch), 0u);
  EXPECT_EQ(Levenshtein("", "abc", &scratch), 3u);
  EXPECT_EQ(Levenshtein("abc", "", &scratch), 3u);
  EXPECT_EQ(Levenshtein("a", "abc", &scratch), 2u);
  EXPECT_EQ(Levenshtein("b", "abc", &scratch), 2u);
  EXPECT_EQ(Levenshtein("z", "abc", &scratch), 3u);
}

TEST(MyersPropertyTest, HighBytesAndUtf8) {
  Rng rng(7003);
  EditDistanceScratch scratch, ref_scratch;
  // The kernel works on raw bytes; multi-byte UTF-8 and bytes >= 0x80 must
  // index the pattern bitmap correctly (unsigned char, not char).
  const std::vector<std::string> pieces = {"é", "ß", "日", "本", "\xff",
                                           "\x80", "a",  "z"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string a, b;
    for (size_t i = rng.NextIndex(40); i > 0; --i) {
      a += pieces[rng.NextIndex(pieces.size())];
    }
    for (size_t i = rng.NextIndex(40); i > 0; --i) {
      b += pieces[rng.NextIndex(pieces.size())];
    }
    EXPECT_EQ(Levenshtein(a, b, &scratch),
              LevenshteinReferenceDp(a, b, &ref_scratch));
  }
}

TEST(MyersPropertyTest, ScratchReuseAcrossMixedLengths) {
  // The pattern-bitmap invariant (all zeros between calls) must survive
  // arbitrary interleavings of short, long, and high-byte patterns in one
  // scratch — a stale bit from a previous call would corrupt a later one.
  Rng rng(7004);
  EditDistanceScratch scratch, ref_scratch;
  const std::string alphabet = "ab\x80\xff";
  for (int trial = 0; trial < 400; ++trial) {
    const size_t max_len = trial % 3 == 0 ? 150 : 12;
    std::string a = RandomString(&rng, alphabet, max_len);
    std::string b = RandomString(&rng, alphabet, max_len);
    EXPECT_EQ(Levenshtein(a, b, &scratch),
              LevenshteinReferenceDp(a, b, &ref_scratch));
  }
}

TEST(MyersPropertyTest, DamerauAffixTrimMatchesUntrimmedReference) {
  Rng rng(7005);
  EditDistanceScratch scratch;
  // Shared prefixes/suffixes around a transposition-heavy core: trims the
  // OSA recurrence must not change (transpositions never straddle an
  // agreeing position).
  const std::string alphabet = "ab";
  for (int trial = 0; trial < 500; ++trial) {
    const std::string prefix = RandomString(&rng, "xy", 6);
    const std::string suffix = RandomString(&rng, "uv", 6);
    std::string a = prefix + RandomString(&rng, alphabet, 10) + suffix;
    std::string b = prefix + RandomString(&rng, alphabet, 10) + suffix;
    EXPECT_EQ(DamerauLevenshtein(a, b, &scratch), ReferenceDamerau(a, b))
        << '"' << a << "\" vs \"" << b << '"';
  }
}

TEST(KernelPropertyTest, ProfileCosineMatchesReference) {
  Rng rng(2026);
  const std::string alphabet = "abcdef";
  BigramProfile pa, pb;
  for (int trial = 0; trial < 500; ++trial) {
    std::string a = RandomString(&rng, alphabet, 20);
    std::string b = RandomString(&rng, alphabet, 20);
    EXPECT_NEAR(CosineBigramDistance(a, b), ReferenceCosine(a, b), 1e-12)
        << '"' << a << "\" vs \"" << b << '"';
    pa.Assign(a);
    pb.Assign(b);
    if (!a.empty() && !b.empty() && a != b) {
      EXPECT_NEAR(CosineProfileDistance(pa, pb), ReferenceCosine(a, b), 1e-12);
    }
  }
}

TEST(BigramProfileTest, CountsSortedAndNormConsistent) {
  BigramProfile p("banana");
  double sq = 0.0;
  for (size_t i = 0; i < p.counts().size(); ++i) {
    if (i > 0) EXPECT_LT(p.counts()[i - 1].first, p.counts()[i].first);
    sq += p.counts()[i].second * p.counts()[i].second;
  }
  EXPECT_DOUBLE_EQ(p.norm(), std::sqrt(sq));
  // "banana" bigrams: ba, an, na, an, na -> 3 distinct keys.
  EXPECT_EQ(p.counts().size(), 3u);
  // Reassignment reuses the profile object.
  p.Assign("");
  EXPECT_TRUE(p.empty());
  EXPECT_DOUBLE_EQ(p.norm(), 0.0);
}

TEST(BigramProfileTest, EmptyProfilesAreDistanceOne) {
  BigramProfile empty(""), other("ab");
  EXPECT_DOUBLE_EQ(CosineProfileDistance(empty, other), 1.0);
  EXPECT_DOUBLE_EQ(CosineProfileDistance(empty, empty), 1.0);
}

}  // namespace
}  // namespace mlnclean
