#include "common/distance.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"

namespace mlnclean {
namespace {

TEST(LevenshteinTest, KnownValues) {
  EXPECT_EQ(Levenshtein("", ""), 0u);
  EXPECT_EQ(Levenshtein("abc", ""), 3u);
  EXPECT_EQ(Levenshtein("", "abc"), 3u);
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(Levenshtein("flaw", "lawn"), 2u);
  EXPECT_EQ(Levenshtein("abc", "abc"), 0u);
  // Paper examples: the typo "DOTH" is two deletions from "DOTHAN".
  EXPECT_EQ(Levenshtein("DOTH", "DOTHAN"), 2u);
  EXPECT_EQ(Levenshtein("AK", "AL"), 1u);
  EXPECT_EQ(Levenshtein("2567638410", "2567688400"), 2u);
}

TEST(DamerauTest, TranspositionCountsAsOne) {
  EXPECT_EQ(DamerauLevenshtein("ab", "ba"), 1u);
  EXPECT_EQ(Levenshtein("ab", "ba"), 2u);
  EXPECT_EQ(DamerauLevenshtein("ca", "abc"), 3u);  // classic OSA example
  EXPECT_EQ(DamerauLevenshtein("abcdef", "abcdfe"), 1u);
  EXPECT_EQ(DamerauLevenshtein("", "xy"), 2u);
}

TEST(CosineTest, RangeAndIdentity) {
  EXPECT_DOUBLE_EQ(CosineBigramDistance("same", "same"), 0.0);
  EXPECT_DOUBLE_EQ(CosineBigramDistance("", "abc"), 1.0);
  double d = CosineBigramDistance("night", "nacht");
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(CosineTest, PrefixTypoVsSuffixTypo) {
  // Cosine over bigrams is position-insensitive: a corrupted first
  // character destroys only one bigram, same as a corrupted last one, so
  // both land far from the prefix-sensitive behaviour the paper discusses
  // for ordering (Table 5 rationale: cosine mis-ranks prefix errors).
  double prefix = CosineBigramDistance("XOTHAN", "DOTHAN");
  double suffix = CosineBigramDistance("DOTHAX", "DOTHAN");
  EXPECT_NEAR(prefix, suffix, 1e-9);
}

TEST(CosineTest, ShortStringsFallBackToUnigrams) {
  EXPECT_DOUBLE_EQ(CosineBigramDistance("a", "a"), 0.0);
  EXPECT_DOUBLE_EQ(CosineBigramDistance("a", "b"), 1.0);
}

TEST(DistanceFnTest, FactoryMatchesDirectCalls) {
  auto lev = MakeDistanceFn(DistanceMetric::kLevenshtein);
  auto cos = MakeDistanceFn(DistanceMetric::kCosine);
  auto dam = MakeDistanceFn(DistanceMetric::kDamerau);
  EXPECT_DOUBLE_EQ(lev("kitten", "sitting"), 3.0);
  EXPECT_DOUBLE_EQ(dam("ab", "ba"), 1.0);
  EXPECT_DOUBLE_EQ(cos("x", "x"), 0.0);
}

TEST(DistanceFnTest, ParseNames) {
  EXPECT_EQ(*ParseDistanceMetric("levenshtein"), DistanceMetric::kLevenshtein);
  EXPECT_EQ(*ParseDistanceMetric("Cosine"), DistanceMetric::kCosine);
  EXPECT_EQ(*ParseDistanceMetric("DAMERAU"), DistanceMetric::kDamerau);
  EXPECT_FALSE(ParseDistanceMetric("hamming").ok());
  EXPECT_STREQ(DistanceMetricName(DistanceMetric::kCosine), "cosine");
}

TEST(NormalizedDistanceTest, EditDistancesScaledByLength) {
  auto norm = MakeNormalizedDistanceFn(DistanceMetric::kLevenshtein);
  EXPECT_DOUBLE_EQ(norm("DOTH", "DOTHAN"), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(norm("", ""), 0.0);
  EXPECT_DOUBLE_EQ(norm("abc", ""), 1.0);  // total rewrite costs 1
  EXPECT_DOUBLE_EQ(norm("AK", "AL"), 0.5);
}

TEST(NormalizedDistanceTest, BoundedByOneForEditMetrics) {
  for (auto metric : {DistanceMetric::kLevenshtein, DistanceMetric::kDamerau}) {
    auto norm = MakeNormalizedDistanceFn(metric);
    EXPECT_LE(norm("abcdef", "xyz"), 1.0);
    EXPECT_LE(norm("a", "completely-different"), 1.0);
  }
}

TEST(NormalizedDistanceTest, CosinePassesThroughUnchanged) {
  auto raw = MakeDistanceFn(DistanceMetric::kCosine);
  auto norm = MakeNormalizedDistanceFn(DistanceMetric::kCosine);
  EXPECT_DOUBLE_EQ(raw("night", "nacht"), norm("night", "nacht"));
}

TEST(NormalizedDistanceTest, OneLongAttrCheaperThanTwoShortOnes) {
  // The property AGP relies on: a fully different long value costs ~1,
  // less than two fully different short values (~2).
  auto norm = MakeNormalizedDistanceFn(DistanceMetric::kLevenshtein);
  double one_long = norm("telluride", "borrego");
  double two_short = norm("suv", "van") + norm("kia", "bmw");
  EXPECT_LT(one_long, two_short);
}

// Property sweep: metric axioms over random strings.
class DistancePropertyTest : public ::testing::TestWithParam<DistanceMetric> {};

TEST_P(DistancePropertyTest, IdentitySymmetryNonNegativity) {
  DistanceFn fn = MakeDistanceFn(GetParam());
  Rng rng(123);
  const std::string alphabet = "abcde";
  for (int trial = 0; trial < 200; ++trial) {
    std::string a, b;
    for (size_t i = rng.NextIndex(10); i > 0; --i) {
      a += alphabet[rng.NextIndex(alphabet.size())];
    }
    for (size_t i = rng.NextIndex(10); i > 0; --i) {
      b += alphabet[rng.NextIndex(alphabet.size())];
    }
    EXPECT_DOUBLE_EQ(fn(a, a), 0.0) << a;
    EXPECT_DOUBLE_EQ(fn(a, b), fn(b, a)) << a << " vs " << b;
    EXPECT_GE(fn(a, b), 0.0);
  }
}

TEST_P(DistancePropertyTest, EditDistancesSatisfyTriangleInequality) {
  if (GetParam() == DistanceMetric::kCosine) {
    GTEST_SKIP() << "cosine over bigram counts is not a metric";
  }
  DistanceFn fn = MakeDistanceFn(GetParam());
  Rng rng(321);
  const std::string alphabet = "abc";
  for (int trial = 0; trial < 100; ++trial) {
    std::string s[3];
    for (auto& str : s) {
      for (size_t i = rng.NextIndex(8); i > 0; --i) {
        str += alphabet[rng.NextIndex(alphabet.size())];
      }
    }
    EXPECT_LE(fn(s[0], s[2]), fn(s[0], s[1]) + fn(s[1], s[2]))
        << s[0] << " " << s[1] << " " << s[2];
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, DistancePropertyTest,
                         ::testing::Values(DistanceMetric::kLevenshtein,
                                           DistanceMetric::kCosine,
                                           DistanceMetric::kDamerau),
                         [](const auto& info) {
                           return DistanceMetricName(info.param);
                         });

}  // namespace
}  // namespace mlnclean
