#include "common/string_util.h"

#include <gtest/gtest.h>

namespace mlnclean {
namespace {

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, SplitAndTrim) {
  EXPECT_EQ(SplitAndTrim("a, b , c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitAndTrim("solo", ','), (std::vector<std::string>{"solo"}));
  EXPECT_EQ(SplitAndTrim("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitAndTrim("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello world", "hello"));
  EXPECT_FALSE(StartsWith("hi", "hello"));
  EXPECT_TRUE(EndsWith("hello world", "world"));
  EXPECT_FALSE(EndsWith("rld", "world"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(StringUtilTest, JoinKeyAppendsUnitSeparators) {
  EXPECT_EQ(JoinKey({}), "");
  EXPECT_EQ(JoinKey({"a"}), "a\x1f");
  EXPECT_EQ(JoinKey({"DOTHAN", "AL"}), "DOTHAN\x1f\x41L\x1f");
  // Distinguishes splits that plain concatenation would collide on.
  EXPECT_NE(JoinKey({"ab", "c"}), JoinKey({"a", "bc"}));
  // Empty fields still contribute a separator.
  EXPECT_EQ(JoinKey({"", ""}), "\x1f\x1f");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace mlnclean
