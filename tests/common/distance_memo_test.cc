#include "common/distance_memo.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mlnclean {
namespace {

TEST(PairDistanceMemoTest, EqualIdsSkipKernelEntirely) {
  size_t calls = 0;
  DistanceFn counting = [&](std::string_view a, std::string_view b) {
    ++calls;
    return static_cast<double>(Levenshtein(a, b));
  };
  PairDistanceMemo memo;
  EXPECT_DOUBLE_EQ(memo.Distance(7, 7, "whatever", "whatever", counting), 0.0);
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(memo.hits(), 1u);
  EXPECT_EQ(memo.num_cached_pairs(), 0u);
}

TEST(PairDistanceMemoTest, MemoizesSymmetricPairs) {
  size_t calls = 0;
  DistanceFn counting = [&](std::string_view a, std::string_view b) {
    ++calls;
    return static_cast<double>(Levenshtein(a, b));
  };
  PairDistanceMemo memo;
  EXPECT_DOUBLE_EQ(memo.Distance(1, 2, "DOTH", "DOTHAN", counting), 2.0);
  EXPECT_EQ(calls, 1u);
  // Repeat and the reversed order both hit the memo.
  EXPECT_DOUBLE_EQ(memo.Distance(1, 2, "DOTH", "DOTHAN", counting), 2.0);
  EXPECT_DOUBLE_EQ(memo.Distance(2, 1, "DOTHAN", "DOTH", counting), 2.0);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(memo.num_cached_pairs(), 1u);
  EXPECT_EQ(memo.hits(), 2u);
  EXPECT_EQ(memo.misses(), 1u);
}

TEST(PairDistanceMemoTest, SurvivesGrowthWithManyPairs) {
  DistanceFn lev = MakeDistanceFn(DistanceMetric::kLevenshtein);
  PairDistanceMemo memo;
  // Enough distinct pairs to force several table growths; values are the
  // decimal renderings of the ids.
  std::vector<std::string> values;
  values.reserve(200);
  for (int i = 0; i < 200; ++i) values.push_back(std::to_string(i));
  for (ValueId a = 0; a < 200; ++a) {
    for (ValueId b = a + 1; b < 200; b += 7) {
      double expected = static_cast<double>(Levenshtein(values[a], values[b]));
      EXPECT_DOUBLE_EQ(memo.Distance(a, b, values[a], values[b], lev), expected);
    }
  }
  const size_t pairs = memo.num_cached_pairs();
  EXPECT_GT(pairs, 256u);  // grew past the initial table
  // A full re-query is all hits.
  const size_t misses_before = memo.misses();
  for (ValueId a = 0; a < 200; ++a) {
    for (ValueId b = a + 1; b < 200; b += 7) {
      double expected = static_cast<double>(Levenshtein(values[a], values[b]));
      EXPECT_DOUBLE_EQ(memo.Distance(a, b, values[a], values[b], lev), expected);
    }
  }
  EXPECT_EQ(memo.misses(), misses_before);
  EXPECT_EQ(memo.num_cached_pairs(), pairs);
}

}  // namespace
}  // namespace mlnclean
