#include "common/csv.h"

#include <gtest/gtest.h>

namespace mlnclean {
namespace {

TEST(CsvTest, ParseSimple) {
  auto r = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(r->rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvTest, ParseQuotedFields) {
  auto r = ParseCsv("name,notes\n\"Doe, John\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0], "Doe, John");
  EXPECT_EQ(r->rows[0][1], "said \"hi\"");
}

TEST(CsvTest, ParseEmbeddedNewline) {
  auto r = ParseCsv("a,b\n\"line1\nline2\",x\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0], "line1\nline2");
}

TEST(CsvTest, ParseCrLf) {
  auto r = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, MissingNewlineAtEof) {
  auto r = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST(CsvTest, ArityMismatchIsError) {
  auto r = ParseCsv("a,b\n1,2,3\n");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(CsvTest, EmptyInputIsError) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(CsvTest, StrayQuoteIsError) {
  EXPECT_FALSE(ParseCsv("a\nx\"y\n").ok());
}

TEST(CsvTest, WriteQuotesOnlyWhenNeeded) {
  CsvTable t;
  t.header = {"a", "b"};
  t.rows = {{"plain", "with,comma"}, {"with\"quote", "with\nnewline"}};
  std::string text = WriteCsv(t);
  EXPECT_EQ(text,
            "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvTest, RoundTrip) {
  CsvTable t;
  t.header = {"x", "y"};
  t.rows = {{"a,b", "c\"d"}, {"", "plain"}, {"nl\nin", "end"}};
  auto r = ParseCsv(WriteCsv(t));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->header, t.header);
  EXPECT_EQ(r->rows, t.rows);
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable t;
  t.header = {"k", "v"};
  t.rows = {{"1", "one"}, {"2", "two"}};
  std::string path = ::testing::TempDir() + "/mlnclean_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto r = ReadCsvFile(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows, t.rows);
}

TEST(CsvTest, MissingFileIsError) {
  EXPECT_TRUE(ReadCsvFile("/nonexistent/path.csv").status().IsIOError());
}

}  // namespace
}  // namespace mlnclean
