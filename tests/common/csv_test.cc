#include "common/csv.h"

#include <gtest/gtest.h>

namespace mlnclean {
namespace {

TEST(CsvTest, ParseSimple) {
  auto r = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(r->rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvTest, ParseQuotedFields) {
  auto r = ParseCsv("name,notes\n\"Doe, John\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0], "Doe, John");
  EXPECT_EQ(r->rows[0][1], "said \"hi\"");
}

TEST(CsvTest, ParseEmbeddedNewline) {
  auto r = ParseCsv("a,b\n\"line1\nline2\",x\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0], "line1\nline2");
}

TEST(CsvTest, ParseCrLf) {
  auto r = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, MissingNewlineAtEof) {
  auto r = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST(CsvTest, ArityMismatchIsError) {
  auto r = ParseCsv("a,b\n1,2,3\n");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(CsvTest, EmptyInputIsError) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(CsvTest, StrayQuoteIsError) {
  EXPECT_FALSE(ParseCsv("a\nx\"y\n").ok());
}

TEST(CsvTest, WriteQuotesOnlyWhenNeeded) {
  CsvTable t;
  t.header = {"a", "b"};
  t.rows = {{"plain", "with,comma"}, {"with\"quote", "with\nnewline"}};
  std::string text = WriteCsv(t);
  EXPECT_EQ(text,
            "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvTest, RoundTrip) {
  CsvTable t;
  t.header = {"x", "y"};
  t.rows = {{"a,b", "c\"d"}, {"", "plain"}, {"nl\nin", "end"}};
  auto r = ParseCsv(WriteCsv(t));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->header, t.header);
  EXPECT_EQ(r->rows, t.rows);
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable t;
  t.header = {"k", "v"};
  t.rows = {{"1", "one"}, {"2", "two"}};
  std::string path = ::testing::TempDir() + "/mlnclean_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto r = ReadCsvFile(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows, t.rows);
}

TEST(CsvTest, MissingFileIsError) {
  EXPECT_TRUE(ReadCsvFile("/nonexistent/path.csv").status().IsIOError());
}

// ------------------------------------------------------ quarantine mode

TEST(CsvQuarantineTest, ArityMismatchIsQuarantinedNotFatal) {
  QuarantineReport q;
  auto r = ParseCsv("a,b\n1,2\n1,2,3\n4,5\n", &q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows, (std::vector<std::vector<std::string>>{{"1", "2"},
                                                            {"4", "5"}}));
  ASSERT_EQ(q.rows.size(), 1u);
  EXPECT_EQ(q.rows[0].row_number, 2u);  // 1-based data row numbers
  EXPECT_EQ(q.rows[0].reason, "3 fields, expected 2");
  EXPECT_EQ(q.rows_kept, 2u);
}

TEST(CsvQuarantineTest, StrayQuoteSkipsToTheNextRow) {
  QuarantineReport q;
  auto r = ParseCsv("a,b\nx\"y,2\n3,4\n", &q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows, (std::vector<std::vector<std::string>>{{"3", "4"}}));
  ASSERT_EQ(q.rows.size(), 1u);
  EXPECT_EQ(q.rows[0].row_number, 1u);
  EXPECT_NE(q.rows[0].reason.find("stray quote"), std::string::npos);
}

TEST(CsvQuarantineTest, UnterminatedQuoteQuarantinesTheTail) {
  QuarantineReport q;
  auto r = ParseCsv("a,b\n1,2\n\"oops,3\n", &q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows, (std::vector<std::vector<std::string>>{{"1", "2"}}));
  ASSERT_EQ(q.rows.size(), 1u);
  EXPECT_EQ(q.rows[0].row_number, 2u);
  EXPECT_NE(q.rows[0].reason.find("unterminated"), std::string::npos);
}

TEST(CsvQuarantineTest, RowNumbersCountQuarantinedRowsToo) {
  QuarantineReport q;
  auto r = ParseCsv("a,b\n1\n2,2\n3\n4,4\n", &q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);
  ASSERT_EQ(q.rows.size(), 2u);
  EXPECT_EQ(q.rows[0].row_number, 1u);
  EXPECT_EQ(q.rows[1].row_number, 3u);
  EXPECT_EQ(q.rows_kept, 2u);
}

TEST(CsvQuarantineTest, BrokenHeaderStillFails) {
  QuarantineReport q;
  EXPECT_FALSE(ParseCsv("\"oops\n", &q).ok());
  EXPECT_FALSE(ParseCsv("", &q).ok());
  EXPECT_TRUE(q.empty());
}

TEST(CsvQuarantineTest, NullQuarantineIsExactlyStrictMode) {
  // Same inputs the strict tests reject must still be rejected, with the
  // same code, when the pointer is null.
  auto strict = ParseCsv("a,b\n1,2,3\n");
  auto via_null = ParseCsv("a,b\n1,2,3\n", nullptr);
  ASSERT_FALSE(strict.ok());
  ASSERT_FALSE(via_null.ok());
  EXPECT_EQ(strict.status().code(), via_null.status().code());
  EXPECT_EQ(strict.status().message(), via_null.status().message());
}

TEST(CsvQuarantineTest, CleanInputLeavesTheReportEmpty) {
  QuarantineReport q;
  auto r = ParseCsv("a,b\n1,2\n3,4\n", &q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.rows_kept, 2u);
}

TEST(CsvQuarantineTest, SummaryNamesCountsAndFirstReason) {
  QuarantineReport q;
  ASSERT_TRUE(ParseCsv("a,b\n1\n2,2\n3\n", &q).ok());
  std::string summary = q.Summary();
  EXPECT_NE(summary.find("2 of 3"), std::string::npos) << summary;
  EXPECT_NE(summary.find("row 1"), std::string::npos) << summary;
}

}  // namespace
}  // namespace mlnclean
