#include "common/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mlnclean {
namespace {

TEST(ExecutorTest, InlineExecutorRunsSubmittedTaskInline) {
  InlineExecutor ex;
  std::thread::id ran_on;
  ex.Submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
  EXPECT_EQ(ex.concurrency(), 1u);
}

TEST(ExecutorTest, PoolExecutorRunsAllTasks) {
  std::atomic<int> counter{0};
  {
    PoolExecutor ex(4);
    EXPECT_EQ(ex.concurrency(), 4u);
    for (int i = 0; i < 100; ++i) {
      ex.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destruction drains the queue and joins
  EXPECT_EQ(counter.load(), 100);
}

TEST(ExecutorTest, ProcessExecutorIsOneSharedInstance) {
  Executor* a = ProcessExecutor();
  Executor* b = ProcessExecutor();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->concurrency(), 1u);
  EXPECT_EQ(SequentialExecutor(), SequentialExecutor());
  EXPECT_EQ(SequentialExecutor()->concurrency(), 1u);
}

TEST(ParallelForTest, CoversAllIndices) {
  PoolExecutor ex(4);
  std::vector<int> hits(1000, 0);
  ParallelFor(hits.size(), &ex, [&hits](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, ZeroItemsNoop) {
  PoolExecutor ex(4);
  ParallelFor(0, &ex, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, NullExecutorRunsInOrder) {
  std::vector<int> order;
  ParallelFor(5, static_cast<Executor*>(nullptr),
              [&order](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, InlineExecutorRunsInOrder) {
  InlineExecutor ex;
  std::vector<int> order;
  ParallelFor(5, &ex, [&order](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, MaxWorkersCapsButStillCovers) {
  PoolExecutor ex(8);
  ExecContext ctx;
  ctx.executor = &ex;
  ctx.max_workers = 2;
  EXPECT_EQ(ctx.parallelism(), 2u);
  std::atomic<int> sum{0};
  ParallelFor(100, ctx, [&sum](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ParallelForTest, NestedOnSameExecutorDoesNotDeadlock) {
  // The deadlock scenario of a shared pool: outer loops occupy every
  // worker, inner loops submit to the same saturated pool. The caller
  // always participates, so nesting completes regardless of pool size.
  PoolExecutor ex(2);
  std::atomic<int> counter{0};
  ParallelFor(8, &ex, [&](size_t) {
    ParallelFor(8, &ex, [&](size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelForTest, ExceptionPropagatesAndStopsEarly) {
  PoolExecutor ex(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      ParallelFor(1000, &ex,
                  [&](size_t i) {
                    if (i == 3) throw std::runtime_error("boom");
                    ran.fetch_add(1);
                  }),
      std::runtime_error);
  EXPECT_LT(ran.load(), 1000);
}

TEST(ExecContextTest, StoppedReflectsCancelAndDeadline) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.Stopped());

  std::atomic<bool> flag{false};
  ctx.cancel = &flag;
  EXPECT_FALSE(ctx.Stopped());
  flag.store(true);
  EXPECT_TRUE(ctx.Stopped());
  flag.store(false);

  ctx.has_deadline = true;
  ctx.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
  EXPECT_FALSE(ctx.Stopped());
  ctx.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  EXPECT_TRUE(ctx.Stopped());
  EXPECT_TRUE(ctx.deadline_expired());
  EXPECT_FALSE(ctx.cancelled());
}

// A sink that records the consumer-side observations.
struct RecordingSink : ProgressSink {
  std::atomic<size_t> ticks{0};
  std::vector<size_t> polled;
  void Tick(size_t units) override { ticks.fetch_add(units); }
  void Poll() override { polled.push_back(ticks.load()); }
};

TEST(ParallelForTest, ProgressSinkTicksAndPollsOnCaller) {
  PoolExecutor ex(4);
  RecordingSink sink;
  ExecContext ctx;
  ctx.executor = &ex;
  ctx.progress = &sink;
  ParallelFor(64, ctx, [&](size_t) { ctx.Tick(1); });
  EXPECT_EQ(sink.ticks.load(), 64u);
  // Poll happened at least once (final flush), always on this thread, and
  // observed a monotone counter.
  ASSERT_FALSE(sink.polled.empty());
  for (size_t i = 1; i < sink.polled.size(); ++i) {
    EXPECT_GE(sink.polled[i], sink.polled[i - 1]);
  }
  EXPECT_EQ(sink.polled.back(), 64u);
}

}  // namespace
}  // namespace mlnclean
