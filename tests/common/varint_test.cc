#include "common/varint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace mlnclean {
namespace {

std::vector<uint32_t> RandomValues(Rng* rng, size_t n) {
  std::vector<uint32_t> values(n);
  for (size_t i = 0; i < n; ++i) {
    // Mix magnitudes so every 2-bit length code shows up.
    switch (rng->NextIndex(4)) {
      case 0:
        values[i] = static_cast<uint32_t>(rng->NextIndex(1u << 8));
        break;
      case 1:
        values[i] = static_cast<uint32_t>(rng->NextIndex(1u << 16));
        break;
      case 2:
        values[i] = static_cast<uint32_t>(rng->NextIndex(1u << 24));
        break;
      default:
        values[i] = static_cast<uint32_t>(rng->NextIndex(uint64_t{1} << 32));
        break;
    }
  }
  return values;
}

TEST(GroupVarintTest, EmptyRoundTrip) {
  uint8_t buf[1];
  EXPECT_EQ(GroupVarintEncode(nullptr, 0, buf), 0u);
  size_t consumed = 123;
  EXPECT_TRUE(GroupVarintDecode(buf, 0, 0, nullptr, &consumed));
  EXPECT_EQ(consumed, 0u);
}

TEST(GroupVarintTest, RoundTripsAllLengthsAndTails) {
  Rng rng(91001);
  for (int trial = 0; trial < 300; ++trial) {
    // Cover every tail length 0..3 and sizes around group boundaries.
    const size_t n = rng.NextIndex(70);
    std::vector<uint32_t> values = RandomValues(&rng, n);
    std::vector<uint8_t> buf(GroupVarintMaxSize(n));
    const size_t written = GroupVarintEncode(values.data(), n, buf.data());
    ASSERT_LE(written, buf.size());
    std::vector<uint32_t> decoded(n);
    size_t consumed = 0;
    ASSERT_TRUE(GroupVarintDecode(buf.data(), written, n, decoded.data(),
                                  &consumed))
        << "n=" << n << " trial=" << trial;
    EXPECT_EQ(consumed, written);
    EXPECT_EQ(decoded, values);
  }
}

TEST(GroupVarintTest, DeltaRoundTripsSortedAndUnsorted) {
  Rng rng(91002);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t n = rng.NextIndex(70);
    std::vector<uint32_t> values = RandomValues(&rng, n);
    if (trial % 2 == 0) std::sort(values.begin(), values.end());
    std::vector<uint8_t> buf(GroupVarintMaxSize(n));
    const size_t written = GroupVarintEncodeDelta(values.data(), n, buf.data());
    std::vector<uint32_t> decoded(n);
    size_t consumed = 0;
    ASSERT_TRUE(GroupVarintDecodeDelta(buf.data(), written, n, decoded.data(),
                                       &consumed));
    EXPECT_EQ(consumed, written);
    EXPECT_EQ(decoded, values);
  }
}

TEST(GroupVarintTest, SortedDenseIdsCompressWell) {
  // The motivating case: dictionary-coded ValueId columns. Dense sorted
  // ids delta down to one byte per value plus control overhead.
  std::vector<uint32_t> ids(1000);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<uint32_t>(i / 3);
  std::vector<uint8_t> buf(GroupVarintMaxSize(ids.size()));
  const size_t written = GroupVarintEncodeDelta(ids.data(), ids.size(), buf.data());
  EXPECT_LT(written, ids.size() * 2);  // far below the 4 bytes/value raw cost
}

TEST(GroupVarintTest, TruncationAlwaysRejects) {
  Rng rng(91003);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.NextIndex(40);
    std::vector<uint32_t> values = RandomValues(&rng, n);
    std::vector<uint8_t> buf(GroupVarintMaxSize(n));
    const size_t written = GroupVarintEncode(values.data(), n, buf.data());
    std::vector<uint32_t> decoded(n);
    for (size_t cut = 0; cut < written; ++cut) {
      EXPECT_FALSE(GroupVarintDecode(buf.data(), cut, n, decoded.data()))
          << "cut=" << cut << " of " << written;
    }
  }
}

TEST(GroupVarintTest, CorruptedBytesDecodeOrReject) {
  // Any byte corruption must either decode to some values (wrong ones are
  // fine — the snapshot CRC layer catches content) or return false; it
  // must never read out of bounds or crash. Exercised under ASan in CI.
  Rng rng(91004);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng.NextIndex(40);
    std::vector<uint32_t> values = RandomValues(&rng, n);
    std::vector<uint8_t> buf(GroupVarintMaxSize(n));
    const size_t written = GroupVarintEncodeDelta(values.data(), n, buf.data());
    std::vector<uint8_t> corrupt(buf.begin(), buf.begin() + written);
    for (int flips = 1 + static_cast<int>(rng.NextIndex(4)); flips > 0; --flips) {
      corrupt[rng.NextIndex(corrupt.size())] ^=
          static_cast<uint8_t>(1 + rng.NextIndex(255));
    }
    std::vector<uint32_t> decoded(n);
    size_t consumed = 0;
    const bool ok = GroupVarintDecodeDelta(corrupt.data(), corrupt.size(), n,
                                           decoded.data(), &consumed);
    if (ok) EXPECT_LE(consumed, corrupt.size());
  }
}

TEST(GroupVarintTest, PartialTailControlBitsAreStrict) {
  // A trailing group of k < 4 values must have zero codes above position
  // k; otherwise a truncated stream could alias a longer one.
  const uint32_t values[2] = {7, 300};
  uint8_t buf[16];
  const size_t written = GroupVarintEncode(values, 2, buf);
  ASSERT_GE(written, 1u);
  uint8_t poisoned[16];
  std::copy(buf, buf + written, poisoned);
  poisoned[0] |= 0x30;  // set a length code for the absent third value
  uint32_t out[2];
  EXPECT_FALSE(GroupVarintDecode(poisoned, written, 2, out));
}

TEST(GroupVarintTest, SimdAndScalarAgree) {
  // Above the 17-byte window the decoder takes the SSSE3 path when
  // available; a short input of the same values takes the scalar tail.
  // Decoding the same stream in one shot and value-by-value must agree.
  if (!GroupVarintUsesSimd()) GTEST_SKIP() << "scalar-only host";
  Rng rng(91005);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 8 + rng.NextIndex(100);
    std::vector<uint32_t> values = RandomValues(&rng, n);
    std::vector<uint8_t> buf(GroupVarintMaxSize(n));
    const size_t written = GroupVarintEncode(values.data(), n, buf.data());
    // One-shot decode (SIMD eligible for full groups with headroom).
    std::vector<uint32_t> fast(n);
    ASSERT_TRUE(GroupVarintDecode(buf.data(), written, n, fast.data()));
    EXPECT_EQ(fast, values);
    // Exact-size decode of each prefix group forces the scalar path at the
    // end of the buffer; results must match the one-shot decode.
    std::vector<uint32_t> slow(n);
    ASSERT_TRUE(GroupVarintDecode(buf.data(), written, n, slow.data()));
    EXPECT_EQ(slow, fast);
  }
}

}  // namespace
}  // namespace mlnclean
