#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mlnclean {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextIndex(1000), b.NextIndex(1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 20 && !differ; ++i) {
    differ = a.NextIndex(1 << 30) != b.NextIndex(1 << 30);
  }
  EXPECT_TRUE(differ);
}

TEST(RngTest, NextIndexInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextIndex(13), 13u);
  }
  EXPECT_EQ(rng.NextIndex(1), 0u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolApproximatesProbability) {
  Rng rng(7);
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ChooseReturnsMember) {
  Rng rng(11);
  std::vector<std::string> items{"a", "b", "c"};
  for (int i = 0; i < 50; ++i) {
    const std::string& pick = rng.Choose(items);
    EXPECT_TRUE(pick == "a" || pick == "b" || pick == "c");
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  // The fork consumes one draw from the parent; both streams stay
  // deterministic.
  Rng b(5);
  Rng child2 = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child.NextIndex(100), child2.NextIndex(100));
    EXPECT_EQ(a.NextIndex(100), b.NextIndex(100));
  }
}

}  // namespace
}  // namespace mlnclean
