#include "rules/rule_parser.h"

#include <gtest/gtest.h>

namespace mlnclean {
namespace {

Schema HospitalSchema() { return *Schema::Make({"HN", "CT", "ST", "PN"}); }

TEST(RuleParserTest, ParseFd) {
  Schema s = HospitalSchema();
  auto r = ParseRule(s, "FD: CT -> ST");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->kind(), RuleKind::kFd);
  EXPECT_EQ(r->reason_attrs(), (std::vector<AttrId>{1}));
  EXPECT_EQ(r->result_attrs(), (std::vector<AttrId>{2}));
}

TEST(RuleParserTest, ParseFdMultiAttr) {
  Schema s = *Schema::Make({"Model", "Type", "Make", "Doors"});
  auto r = ParseRule(s, "FD: Model, Type -> Make, Doors");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reason_attrs(), (std::vector<AttrId>{0, 1}));
  EXPECT_EQ(r->result_attrs(), (std::vector<AttrId>{2, 3}));
}

TEST(RuleParserTest, ParseCfdWithConstants) {
  Schema s = HospitalSchema();
  auto r = ParseRule(s, "CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->kind(), RuleKind::kCfd);
  ASSERT_EQ(r->lhs_patterns().size(), 2u);
  EXPECT_EQ(*r->lhs_patterns()[0].constant, "ELIZA");
  EXPECT_EQ(*r->lhs_patterns()[1].constant, "BOAZ");
  ASSERT_EQ(r->rhs_patterns().size(), 1u);
  EXPECT_EQ(*r->rhs_patterns()[0].constant, "2567688400");
}

TEST(RuleParserTest, ParseCfdWithWildcard) {
  Schema s = *Schema::Make({"Make", "Type", "Doors"});
  auto r = ParseRule(s, "CFD: Make=acura, Type -> Doors");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->lhs_patterns()[0].is_constant());
  EXPECT_FALSE(r->lhs_patterns()[1].is_constant());
  EXPECT_FALSE(r->rhs_patterns()[0].is_constant());
}

TEST(RuleParserTest, ParseCfdQuotedConstant) {
  Schema s = *Schema::Make({"Name", "Phone"});
  auto r = ParseRule(s, "CFD: Name=\"Doe, John -> Jr\" -> Phone=\"555\"");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r->lhs_patterns()[0].constant, "Doe, John -> Jr");
  EXPECT_EQ(*r->rhs_patterns()[0].constant, "555");
}

TEST(RuleParserTest, ParseCfdUnderscoreIsWildcard) {
  Schema s = *Schema::Make({"A", "B"});
  auto r = ParseRule(s, "CFD: A=_ -> B");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->lhs_patterns()[0].is_constant());
}

TEST(RuleParserTest, ParseDc) {
  Schema s = HospitalSchema();
  auto r = ParseRule(s, "DC: !(PN(t1)=PN(t2) & ST(t1)!=ST(t2))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->kind(), RuleKind::kDc);
  ASSERT_EQ(r->predicates().size(), 2u);
  EXPECT_EQ(r->predicates()[0].op, PredOp::kEq);
  EXPECT_EQ(r->predicates()[1].op, PredOp::kNeq);
  EXPECT_EQ(r->reason_attrs(), (std::vector<AttrId>{3}));
  EXPECT_EQ(r->result_attrs(), (std::vector<AttrId>{2}));
}

TEST(RuleParserTest, ParseDcComparisonOps) {
  Schema s = *Schema::Make({"Salary", "Tax"});
  auto r = ParseRule(s, "DC: !(Salary(t1)>Salary(t2) & Tax(t1)<=Tax(t2))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->predicates()[0].op, PredOp::kGt);
  EXPECT_EQ(r->predicates()[1].op, PredOp::kLeq);
}

TEST(RuleParserTest, Errors) {
  Schema s = HospitalSchema();
  EXPECT_FALSE(ParseRule(s, "no colon here").ok());
  EXPECT_FALSE(ParseRule(s, "XX: CT -> ST").ok());
  EXPECT_FALSE(ParseRule(s, "FD: CT ST").ok());            // no arrow
  EXPECT_FALSE(ParseRule(s, "FD: Missing -> ST").ok());    // unknown attr
  EXPECT_FALSE(ParseRule(s, "DC: PN(t1)=PN(t2)").ok());    // missing !( )
  EXPECT_FALSE(ParseRule(s, "DC: !(PN(t1)~PN(t2) & ST(t1)!=ST(t2))").ok());
  EXPECT_FALSE(ParseRule(s, "DC: !(PN(t3)=PN(t2) & ST(t1)!=ST(t2))").ok());
}

TEST(RuleParserTest, ParseRulesSkipsCommentsAndBlanks) {
  Schema s = HospitalSchema();
  auto r = ParseRules(s,
                      "# hospital rules\n"
                      "\n"
                      "FD: CT -> ST\n"
                      "  # indented comment\n"
                      "DC: !(PN(t1)=PN(t2) & ST(t1)!=ST(t2))\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(r->rule(0).name(), "r1");
  EXPECT_EQ(r->rule(1).name(), "r2");
}

TEST(RuleParserTest, ParseRulesPropagatesError) {
  Schema s = HospitalSchema();
  EXPECT_FALSE(ParseRules(s, "FD: CT -> ST\nFD: bogus -> ST\n").ok());
}

TEST(RuleParserTest, QuoteRuleTokenProtectsMetacharacters) {
  EXPECT_EQ(QuoteRuleToken("ELIZA"), "ELIZA");       // plain tokens stay bare
  EXPECT_EQ(QuoteRuleToken(""), "\"\"");             // empty constant
  EXPECT_EQ(QuoteRuleToken("_"), "\"_\"");           // literal underscore
  EXPECT_EQ(QuoteRuleToken("a,b"), "\"a,b\"");       // list separator
  EXPECT_EQ(QuoteRuleToken("a->b"), "\"a->b\"");     // arrow
  EXPECT_EQ(QuoteRuleToken("x=y"), "\"x=y\"");       // pattern separator
  EXPECT_EQ(QuoteRuleToken(" pad "), "\" pad \"");   // edge whitespace
  EXPECT_EQ(QuoteRuleToken("say \"hi\""), "\"say \"\"hi\"\"\"");  // escaping
}

TEST(RuleParserTest, QuotedConstantsRoundTripThroughParse) {
  Schema s = HospitalSchema();
  const Value constants[] = {"a,b", "a->b", "x=y", "say \"hi\"", "", "_",
                             " padded ", "plain"};
  for (const Value& constant : constants) {
    std::string text = "CFD: HN=" + QuoteRuleToken(constant) + " -> CT";
    auto rule = ParseRule(s, text);
    ASSERT_TRUE(rule.ok()) << text << ": " << rule.status().ToString();
    ASSERT_TRUE(rule->lhs_patterns()[0].is_constant()) << text;
    EXPECT_EQ(*rule->lhs_patterns()[0].constant, constant) << text;
  }
}

TEST(RuleParserTest, QuotedAttributeNamesResolve) {
  Schema s = *Schema::Make({"City, State", "PN"});
  auto fd = ParseRule(s, "FD: \"City, State\" -> PN");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  EXPECT_EQ(fd->reason_attrs(), std::vector<AttrId>{0});
  auto cfd = ParseRule(s, "CFD: \"City, State\"=BOAZ -> PN");
  ASSERT_TRUE(cfd.ok()) << cfd.status().ToString();
  EXPECT_EQ(cfd->reason_attrs(), std::vector<AttrId>{0});
  EXPECT_EQ(*cfd->lhs_patterns()[0].constant, "BOAZ");
}

TEST(RuleParserTest, CanonicalTextRoundTripsExactly) {
  Schema s = HospitalSchema();
  const char* inputs[] = {
      "FD: CT -> ST",
      "FD: HN, CT -> ST, PN",
      "CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400",
      "CFD: HN=\"a,weird->name\", CT -> PN=\"_\"",
      "CFD: HN=\"\", CT=\"say \"\"hi\"\"\" -> PN",
      "DC: !(PN(t1)=PN(t2) & ST(t1)!=ST(t2))",
      "DC: !(PN(t1)<=PN(t2) & ST(t1)>ST(t2) & CT(t1)!=CT(t2))",
  };
  for (const char* input : inputs) {
    auto first = ParseRule(s, input);
    ASSERT_TRUE(first.ok()) << input << ": " << first.status().ToString();
    std::string canonical = first->CanonicalText(s);
    auto second = ParseRule(s, canonical);
    ASSERT_TRUE(second.ok()) << canonical << ": " << second.status().ToString();
    // Canonical text is a fixed point: re-encoding the decoded rule gives
    // the same bytes, and the structural rendering agrees.
    EXPECT_EQ(second->CanonicalText(s), canonical) << input;
    EXPECT_EQ(second->ToString(s), first->ToString(s)) << input;
    EXPECT_EQ(second->kind(), first->kind()) << input;
    EXPECT_EQ(second->reason_attrs(), first->reason_attrs()) << input;
    EXPECT_EQ(second->result_attrs(), first->result_attrs()) << input;
  }
}

TEST(RuleParserTest, CanonicalTextQuotesAttributeNames) {
  Schema s = *Schema::Make({"City, State", "PN"});
  auto fd = Constraint::MakeFd(s, {0}, {1});
  ASSERT_TRUE(fd.ok());
  std::string canonical = fd->CanonicalText(s);
  EXPECT_EQ(canonical, "FD: \"City, State\" -> PN");
  auto reparsed = ParseRule(s, canonical);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->reason_attrs(), fd->reason_attrs());
}

TEST(RuleParserTest, RoundTripThroughToString) {
  Schema s = HospitalSchema();
  const char* inputs[] = {
      "FD: CT -> ST",
      "CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400",
      "DC: !(PN(t1)=PN(t2) & ST(t1)!=ST(t2))",
  };
  for (const char* input : inputs) {
    auto first = ParseRule(s, input);
    ASSERT_TRUE(first.ok()) << input;
    auto second = ParseRule(s, first->ToString(s));
    ASSERT_TRUE(second.ok()) << first->ToString(s);
    EXPECT_EQ(first->ToString(s), second->ToString(s));
  }
}

}  // namespace
}  // namespace mlnclean
