#include "rules/constraint.h"

#include <gtest/gtest.h>

#include "datagen/sample.h"

namespace mlnclean {
namespace {

Schema HospitalSchema() { return *Schema::Make({"HN", "CT", "ST", "PN"}); }

TEST(ConstraintTest, FdReasonResultSplit) {
  Schema s = HospitalSchema();
  Constraint fd = *Constraint::MakeFd(s, {1}, {2});  // CT -> ST
  EXPECT_EQ(fd.kind(), RuleKind::kFd);
  EXPECT_EQ(fd.reason_attrs(), (std::vector<AttrId>{1}));
  EXPECT_EQ(fd.result_attrs(), (std::vector<AttrId>{2}));
  EXPECT_EQ(fd.attrs(), (std::vector<AttrId>{1, 2}));
  EXPECT_TRUE(fd.IndexCompatible());
  EXPECT_TRUE(fd.InScope({"x", "y", "z", "w"}));
}

TEST(ConstraintTest, FdValidation) {
  Schema s = HospitalSchema();
  EXPECT_TRUE(Constraint::MakeFd(s, {}, {1}).status().IsInvalid());
  EXPECT_TRUE(Constraint::MakeFd(s, {1}, {}).status().IsInvalid());
  EXPECT_TRUE(Constraint::MakeFd(s, {1}, {1}).status().IsInvalid());  // overlap
  EXPECT_TRUE(Constraint::MakeFd(s, {9}, {1}).status().IsInvalid());  // bad attr
}

TEST(ConstraintTest, FdValues) {
  Schema s = HospitalSchema();
  Constraint fd = *Constraint::MakeFd(s, {1}, {2});
  std::vector<Value> row{"ELIZA", "BOAZ", "AL", "123"};
  EXPECT_EQ(fd.ReasonValues(row), (std::vector<Value>{"BOAZ"}));
  EXPECT_EQ(fd.ResultValues(row), (std::vector<Value>{"AL"}));
}

TEST(ConstraintTest, CfdScopeMatchesFigure2) {
  // r3: HN("ELIZA"), CT("BOAZ") -> PN("2567688400"). Figure 2 places t3
  // (HN=ELIZA but CT=DOTHAN) inside block B3, so scope requires matching
  // at least one lhs constant, not all.
  Schema s = HospitalSchema();
  Constraint cfd = *Constraint::MakeCfd(
      s, {{0, "ELIZA"}, {1, "BOAZ"}}, {{3, "2567688400"}});
  EXPECT_TRUE(cfd.InScope({"ELIZA", "DOTHAN", "AL", "111"}));   // t3
  EXPECT_TRUE(cfd.InScope({"ELIZA", "BOAZ", "AL", "111"}));     // t4-t6
  EXPECT_FALSE(cfd.InScope({"ALABAMA", "DOTHAN", "AL", "111"}));  // t1, t2
  // But the full antecedent match distinguishes t3 from t4.
  EXPECT_FALSE(cfd.MatchesAllLhsConstants({"ELIZA", "DOTHAN", "AL", "111"}));
  EXPECT_TRUE(cfd.MatchesAllLhsConstants({"ELIZA", "BOAZ", "AL", "111"}));
}

TEST(ConstraintTest, CfdWithWildcardLhs) {
  // Make=acura, Type -> Doors: Type is a wildcard.
  Schema s = *Schema::Make({"Make", "Type", "Doors"});
  Constraint cfd = *Constraint::MakeCfd(s, {{0, "acura"}, {1, std::nullopt}},
                                        {{2, std::nullopt}});
  EXPECT_TRUE(cfd.InScope({"acura", "suv", "5"}));
  EXPECT_FALSE(cfd.InScope({"toyota", "suv", "5"}));
  EXPECT_EQ(cfd.reason_attrs(), (std::vector<AttrId>{0, 1}));
  EXPECT_EQ(cfd.result_attrs(), (std::vector<AttrId>{2}));
}

TEST(ConstraintTest, CfdWithoutConstantsBehavesLikeFd) {
  Schema s = *Schema::Make({"A", "B"});
  Constraint cfd =
      *Constraint::MakeCfd(s, {{0, std::nullopt}}, {{1, std::nullopt}});
  EXPECT_TRUE(cfd.InScope({"x", "y"}));
}

TEST(ConstraintTest, CfdRepeatedAttrRejected) {
  Schema s = *Schema::Make({"A", "B"});
  EXPECT_TRUE(Constraint::MakeCfd(s, {{0, "x"}, {0, "y"}}, {{1, std::nullopt}})
                  .status()
                  .IsInvalid());
}

TEST(ConstraintTest, DcReasonResultSplit) {
  // r2: !(PN(t1)=PN(t2) & ST(t1)!=ST(t2)): last predicate is the result.
  Schema s = HospitalSchema();
  Constraint dc = *Constraint::MakeDc(
      s, {{3, PredOp::kEq, 3}, {2, PredOp::kNeq, 2}});
  EXPECT_EQ(dc.reason_attrs(), (std::vector<AttrId>{3}));
  EXPECT_EQ(dc.result_attrs(), (std::vector<AttrId>{2}));
  EXPECT_TRUE(dc.IndexCompatible());
}

TEST(ConstraintTest, GeneralDcNotIndexCompatible) {
  Schema s = *Schema::Make({"Salary", "Tax"});
  Constraint dc = *Constraint::MakeDc(
      s, {{0, PredOp::kGt, 0}, {1, PredOp::kLt, 1}});
  EXPECT_FALSE(dc.IndexCompatible());
}

TEST(ConstraintTest, DcNeedsTwoPredicates) {
  Schema s = HospitalSchema();
  EXPECT_TRUE(Constraint::MakeDc(s, {{3, PredOp::kEq, 3}}).status().IsInvalid());
}

TEST(ConstraintTest, DcPredicateNumericComparison) {
  DcPredicate lt{0, PredOp::kLt, 0};
  EXPECT_TRUE(lt.Eval("9", "10"));    // numeric, not lexicographic
  EXPECT_FALSE(lt.Eval("10", "9"));
  DcPredicate eq{0, PredOp::kEq, 0};
  EXPECT_TRUE(eq.Eval("1.50", "1.5"));  // numeric equality
  EXPECT_FALSE(eq.Eval("a", "b"));
  DcPredicate geq{0, PredOp::kGeq, 0};
  EXPECT_TRUE(geq.Eval("b", "a"));  // lexicographic fallback
}

TEST(ConstraintTest, MlnClauseForms) {
  // Section 3: r1 becomes !CT | ST; r3 keeps its constants.
  Schema s = HospitalSchema();
  Constraint fd = *Constraint::MakeFd(s, {1}, {2});
  EXPECT_EQ(fd.MlnClause(s), "!CT | ST");
  Constraint cfd = *Constraint::MakeCfd(
      s, {{0, "ELIZA"}, {1, "BOAZ"}}, {{3, "2567688400"}});
  EXPECT_EQ(cfd.MlnClause(s), "!HN(\"ELIZA\") | !CT(\"BOAZ\") | PN(\"2567688400\")");
}

TEST(ConstraintTest, ToStringRendering) {
  Schema s = HospitalSchema();
  Constraint fd = *Constraint::MakeFd(s, {1}, {2});
  EXPECT_EQ(fd.ToString(s), "FD: CT -> ST");
  Constraint dc =
      *Constraint::MakeDc(s, {{3, PredOp::kEq, 3}, {2, PredOp::kNeq, 2}});
  EXPECT_EQ(dc.ToString(s), "DC: !(PN(t1)=PN(t2) & ST(t1)!=ST(t2))");
}

TEST(RuleSetTest, AutoNaming) {
  Schema s = HospitalSchema();
  RuleSet set(s);
  set.Add(*Constraint::MakeFd(s, {1}, {2}));
  set.Add(*Constraint::MakeFd(s, {3}, {2}));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.rule(0).name(), "r1");
  EXPECT_EQ(set.rule(1).name(), "r2");
}

TEST(RuleSetTest, ExplicitNameKept) {
  Schema s = HospitalSchema();
  RuleSet set(s);
  Constraint fd = *Constraint::MakeFd(s, {1}, {2});
  fd.set_name("city_state");
  set.Add(std::move(fd));
  EXPECT_EQ(set.rule(0).name(), "city_state");
}

TEST(ConstraintTest, RuleWeightDefaultsToOne) {
  Schema s = HospitalSchema();
  Constraint fd = *Constraint::MakeFd(s, {1}, {2});
  EXPECT_DOUBLE_EQ(fd.rule_weight(), 1.0);
  fd.set_rule_weight(2.5);
  EXPECT_DOUBLE_EQ(fd.rule_weight(), 2.5);
}

}  // namespace
}  // namespace mlnclean
