#include "rules/violation.h"

#include <gtest/gtest.h>

#include "datagen/sample.h"
#include "rules/rule_parser.h"

namespace mlnclean {
namespace {

TEST(ViolationTest, SampleFdViolations) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  // r1 (CT -> ST): only the BOAZ group conflicts (t4 says AK, t5/t6 AL).
  auto violations = FindViolations(dirty, rules.rule(0), 0);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].tuples, (std::vector<TupleId>{3, 4, 5}));
  EXPECT_EQ(violations[0].attrs, rules.rule(0).result_attrs());
}

TEST(ViolationTest, SampleDcViolations) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  // r2: PN 2567688400 appears with both AK and AL.
  auto violations = FindViolations(dirty, rules.rule(1), 1);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].tuples, (std::vector<TupleId>{3, 4, 5}));
}

TEST(ViolationTest, SampleCfdViolations) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  // r3: every tuple matching HN=ELIZA, CT=BOAZ already has the right PN.
  auto violations = FindViolations(dirty, rules.rule(2), 2);
  EXPECT_TRUE(violations.empty());
}

TEST(ViolationTest, CfdConstantMismatchDetected) {
  Schema s = *Schema::Make({"HN", "CT", "PN"});
  Dataset d = *Dataset::Make(s, {{"ELIZA", "BOAZ", "9999"}});
  Constraint cfd = *ParseRule(s, "CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400");
  auto violations = FindViolations(d, cfd);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].tuples, (std::vector<TupleId>{0}));
}

TEST(ViolationTest, CfdVariableRhsDetectedPairwise) {
  Schema s = *Schema::Make({"Make", "Type", "Doors"});
  Constraint cfd = *ParseRule(s, "CFD: Make=acura, Type -> Doors");
  Dataset d = *Dataset::Make(s, {
                                    {"acura", "suv", "5"},
                                    {"acura", "suv", "3"},    // conflict
                                    {"toyota", "suv", "9"},   // out of scope
                                });
  auto violations = FindViolations(d, cfd);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].tuples, (std::vector<TupleId>{0, 1}));
}

TEST(ViolationTest, GeneralDcPairwiseScan) {
  Schema s = *Schema::Make({"Salary", "Tax"});
  // Higher salary must not pay lower tax.
  Constraint dc = *ParseRule(s, "DC: !(Salary(t1)>Salary(t2) & Tax(t1)<Tax(t2))");
  Dataset d = *Dataset::Make(s, {{"100", "10"}, {"200", "5"}, {"300", "30"}});
  auto violations = FindViolations(d, dc);
  // Exactly one ordered pair violates: t1 (200, 5) against t0 (100, 10).
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].tuples, (std::vector<TupleId>{1, 0}));
}

TEST(ViolationTest, CleanDataHasNoViolations) {
  Dataset clean = *SampleHospitalClean();
  RuleSet rules = *SampleHospitalRules();
  EXPECT_TRUE(FindAllViolations(clean, rules).empty());
}

TEST(ViolationTest, CellMaskMarksSuspects) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  auto mask = ViolationCellMask(dirty, rules);
  // t4 (index 3) participates in r1 and r2 violations, both of which
  // manifest on ST; reason-side cells stay unflagged.
  EXPECT_TRUE(mask[3][2]);   // ST (result of r1/r2)
  EXPECT_FALSE(mask[3][1]);  // CT (reason of r1)
  EXPECT_FALSE(mask[3][3]);  // PN (reason of r2)
  // t2 (index 1), the DOTH typo, violates nothing: untouched — the
  // qualitative-detection blind spot of Example 1.
  EXPECT_FALSE(mask[1][0]);
  EXPECT_FALSE(mask[1][1]);
  EXPECT_FALSE(mask[1][2]);
  EXPECT_FALSE(mask[1][3]);
}

TEST(ViolationTest, FindAllAggregatesRules) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  auto all = FindAllViolations(dirty, rules);
  EXPECT_EQ(all.size(), 2u);  // r1 + r2
}

}  // namespace
}  // namespace mlnclean
