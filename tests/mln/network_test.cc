#include "mln/network.h"

#include <gtest/gtest.h>

namespace mlnclean {
namespace {

TEST(GroundNetworkTest, AtomDeduplication) {
  GroundNetwork net;
  AtomId a = net.AddAtom("ST(AL)");
  AtomId b = net.AddAtom("ST(AK)");
  AtomId a2 = net.AddAtom("ST(AL)");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(net.num_atoms(), 2u);
  EXPECT_EQ(net.atom_name(a), "ST(AL)");
  EXPECT_EQ(*net.FindAtom("ST(AK)"), b);
  EXPECT_TRUE(net.FindAtom("missing").status().IsNotFound());
}

TEST(GroundNetworkTest, ClauseValidation) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  EXPECT_TRUE(net.AddClause({{}, 1.0, false}).IsInvalid());          // empty
  EXPECT_TRUE(net.AddClause({{{a, true}}, -1.0, false}).IsInvalid());  // neg soft
  EXPECT_TRUE(net.AddClause({{{a + 5, true}}, 1.0, false}).IsInvalid());
  EXPECT_TRUE(net.AddClause({{{a, true}}, 1.0, false}).ok());
}

TEST(GroundNetworkTest, ClauseSatisfaction) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  AtomId b = net.AddAtom("b");
  MlnClauseG clause{{{a, true}, {b, false}}, 1.0, false};  // a | !b
  EXPECT_TRUE(GroundNetwork::ClauseSatisfied(clause, {true, true}));
  EXPECT_TRUE(GroundNetwork::ClauseSatisfied(clause, {false, false}));
  EXPECT_FALSE(GroundNetwork::ClauseSatisfied(clause, {false, true}));
}

TEST(GroundNetworkTest, LogScoreSumsSatisfiedWeights) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  AtomId b = net.AddAtom("b");
  ASSERT_TRUE(net.AddClause({{{a, true}}, 2.0, false}).ok());
  ASSERT_TRUE(net.AddClause({{{b, true}}, 3.0, false}).ok());
  EXPECT_DOUBLE_EQ(net.LogScore({true, false}), 2.0);
  EXPECT_DOUBLE_EQ(net.LogScore({true, true}), 5.0);
  EXPECT_DOUBLE_EQ(net.LogScore({false, false}), 0.0);
}

TEST(GroundNetworkTest, ViolationCostAndHardClauses) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  ASSERT_TRUE(net.AddClause({{{a, true}}, 2.5, false}).ok());
  ASSERT_TRUE(net.AddClause({{{a, false}}, 0.0, true}).ok());  // hard: !a
  // a=true satisfies the soft clause but violates the hard one.
  EXPECT_GT(net.ViolationCost({true}), 1e8);
  // a=false violates only the soft clause.
  EXPECT_DOUBLE_EQ(net.ViolationCost({false}), 2.5);
}

TEST(GroundNetworkTest, ClausesOfTracksMembership) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  AtomId b = net.AddAtom("b");
  ASSERT_TRUE(net.AddClause({{{a, true}}, 1.0, false}).ok());
  ASSERT_TRUE(net.AddClause({{{a, false}, {b, true}}, 1.0, false}).ok());
  EXPECT_EQ(net.clauses_of(a).size(), 2u);
  EXPECT_EQ(net.clauses_of(b).size(), 1u);
}

}  // namespace
}  // namespace mlnclean
