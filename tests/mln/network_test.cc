#include "mln/network.h"

#include <gtest/gtest.h>

#include "mln/gibbs.h"

namespace mlnclean {
namespace {

TEST(GroundNetworkTest, AtomDeduplication) {
  GroundNetwork net;
  AtomId a = net.AddAtom("ST(AL)");
  AtomId b = net.AddAtom("ST(AK)");
  AtomId a2 = net.AddAtom("ST(AL)");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(net.num_atoms(), 2u);
  EXPECT_EQ(net.atom_name(a), "ST(AL)");
  EXPECT_EQ(*net.FindAtom("ST(AK)"), b);
  EXPECT_TRUE(net.FindAtom("missing").status().IsNotFound());
}

TEST(GroundNetworkTest, ClauseValidation) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  EXPECT_TRUE(net.AddClause({{}, 1.0, false}).IsInvalid());          // empty
  EXPECT_TRUE(net.AddClause({{{a, true}}, -1.0, false}).IsInvalid());  // neg soft
  EXPECT_TRUE(net.AddClause({{{a + 5, true}}, 1.0, false}).IsInvalid());
  EXPECT_TRUE(net.AddClause({{{a, true}}, 1.0, false}).ok());
}

TEST(GroundNetworkTest, ClauseSatisfaction) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  AtomId b = net.AddAtom("b");
  MlnClauseG clause{{{a, true}, {b, false}}, 1.0, false};  // a | !b
  EXPECT_TRUE(GroundNetwork::ClauseSatisfied(clause, {true, true}));
  EXPECT_TRUE(GroundNetwork::ClauseSatisfied(clause, {false, false}));
  EXPECT_FALSE(GroundNetwork::ClauseSatisfied(clause, {false, true}));
}

TEST(GroundNetworkTest, LogScoreSumsSatisfiedWeights) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  AtomId b = net.AddAtom("b");
  ASSERT_TRUE(net.AddClause({{{a, true}}, 2.0, false}).ok());
  ASSERT_TRUE(net.AddClause({{{b, true}}, 3.0, false}).ok());
  EXPECT_DOUBLE_EQ(net.LogScore({true, false}), 2.0);
  EXPECT_DOUBLE_EQ(net.LogScore({true, true}), 5.0);
  EXPECT_DOUBLE_EQ(net.LogScore({false, false}), 0.0);
}

TEST(GroundNetworkTest, ViolationCostAndHardClauses) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  ASSERT_TRUE(net.AddClause({{{a, true}}, 2.5, false}).ok());
  ASSERT_TRUE(net.AddClause({{{a, false}}, 0.0, true}).ok());  // hard: !a
  // a=true satisfies the soft clause but violates the hard one.
  EXPECT_GT(net.ViolationCost({true}), 1e8);
  // a=false violates only the soft clause.
  EXPECT_DOUBLE_EQ(net.ViolationCost({false}), 2.5);
}

TEST(GroundNetworkTest, ClausesOfTracksMembership) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  AtomId b = net.AddAtom("b");
  ASSERT_TRUE(net.AddClause({{{a, true}}, 1.0, false}).ok());
  ASSERT_TRUE(net.AddClause({{{a, false}, {b, true}}, 1.0, false}).ok());
  EXPECT_EQ(net.clauses_of(a).size(), 2u);
  EXPECT_EQ(net.clauses_of(b).size(), 1u);
}

TEST(GroundNetworkTest, CellAtomsKeyOnIdTriples) {
  GroundNetwork net;
  AtomId a = net.AddCellAtom(3, 1, 7);
  EXPECT_EQ(net.AddCellAtom(3, 1, 7), a);  // dedup on the id triple
  AtomId b = net.AddCellAtom(3, 1, 8);     // different candidate value
  AtomId c = net.AddCellAtom(3, 2, 7);     // different attribute
  AtomId d = net.AddCellAtom(4, 1, 7);     // different tuple
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(net.num_atoms(), 4u);
  EXPECT_EQ(*net.FindCellAtom(3, 1, 7), a);
  EXPECT_TRUE(net.FindCellAtom(9, 9, 9).status().IsNotFound());
}

TEST(GroundNetworkTest, CellAtomDomainFromDictionaryIds) {
  // Candidate-domain network for one cell: one atom per dictionary id of
  // the attribute's domain, weighted clauses, Gibbs marginals favour the
  // higher-weight candidate — the atoms never route through name strings.
  Schema s = *Schema::Make({"CT"});
  Dataset data = *Dataset::Make(s, {{"DOTHAN"}, {"DOTH"}, {"DOTHAN"}});
  GroundNetwork net;
  std::vector<AtomId> candidates;
  for (ValueId id = 1; id < static_cast<ValueId>(data.dict(0).size()); ++id) {
    AtomId atom = net.AddCellAtom(/*tid=*/1, /*attr=*/0, id);
    candidates.push_back(atom);
    // Weight by support of the value in the column.
    double support = 0.0;
    for (ValueId cell : data.column(0)) {
      if (cell == id) support += 1.0;
    }
    ASSERT_TRUE(net.AddClause({{{atom, true}}, support, false}).ok());
  }
  ASSERT_EQ(candidates.size(), 2u);
  GibbsOptions opts;
  opts.burn_in_sweeps = 100;
  opts.sample_sweeps = 1500;
  auto marginals = GibbsMarginals(net, opts);
  // DOTHAN (support 2) must dominate DOTH (support 1).
  AtomId dothan = *net.FindCellAtom(1, 0, data.dict(0).Find("DOTHAN"));
  AtomId doth = *net.FindCellAtom(1, 0, data.dict(0).Find("DOTH"));
  EXPECT_GT(marginals[static_cast<size_t>(dothan)],
            marginals[static_cast<size_t>(doth)]);
}

}  // namespace
}  // namespace mlnclean
