#include "mln/ground_rule.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/sample.h"

namespace mlnclean {
namespace {

TEST(GroundRuleTest, Table3Reproduction) {
  // Table 3: grounding r1 (CT -> ST) over Table 1 yields exactly four
  // ground MLN rules.
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  auto grounds = GroundConstraint(dirty, rules.rule(0));
  ASSERT_TRUE(grounds.ok()) << grounds.status().ToString();
  ASSERT_EQ(grounds->size(), 4u);
  std::vector<std::string> rendered;
  for (const auto& g : *grounds) {
    rendered.push_back(GroundRuleToString(rules.schema(), rules.rule(0), g));
  }
  std::vector<std::string> expected = {
      "!CT(\"DOTHAN\") | ST(\"AL\")",
      "!CT(\"DOTH\") | ST(\"AL\")",
      "!CT(\"BOAZ\") | ST(\"AK\")",
      "!CT(\"BOAZ\") | ST(\"AL\")",
  };
  std::sort(rendered.begin(), rendered.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(rendered, expected);
}

TEST(GroundRuleTest, SupportCountsTable1) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  auto grounds = *GroundConstraint(dirty, rules.rule(0));
  size_t total = 0;
  for (const auto& g : grounds) {
    total += g.support();
    if (g.reason == std::vector<Value>{"DOTHAN"}) {
      EXPECT_EQ(g.tuples, (std::vector<TupleId>{0, 2}));  // t1, t3
    }
    if (g.reason == std::vector<Value>{"BOAZ"} &&
        g.result == std::vector<Value>{"AL"}) {
      EXPECT_EQ(g.tuples, (std::vector<TupleId>{4, 5}));  // t5, t6
    }
  }
  EXPECT_EQ(total, dirty.num_rows());  // every tuple contributes one γ
}

TEST(GroundRuleTest, GroundRulesCarryDictionaryIds) {
  // Every γ's id vectors mirror its value vectors through the dataset's
  // per-attribute dictionaries.
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  for (size_t ri = 0; ri < rules.size(); ++ri) {
    const Constraint& rule = rules.rule(ri);
    auto grounds = GroundConstraint(dirty, rule);
    ASSERT_TRUE(grounds.ok()) << grounds.status().ToString();
    for (const auto& g : *grounds) {
      ASSERT_EQ(g.reason_ids.size(), g.reason.size());
      ASSERT_EQ(g.result_ids.size(), g.result.size());
      for (size_t i = 0; i < g.reason.size(); ++i) {
        EXPECT_EQ(dirty.dict(rule.reason_attrs()[i]).value(g.reason_ids[i]),
                  g.reason[i]);
      }
      for (size_t i = 0; i < g.result.size(); ++i) {
        EXPECT_EQ(dirty.dict(rule.result_attrs()[i]).value(g.result_ids[i]),
                  g.result[i]);
      }
    }
  }
}

TEST(GroundRuleTest, CfdScopeRestrictsGrounding) {
  // Block B3 of Figure 2: only the ELIZA tuples ground r3, yielding two
  // distinct γs.
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  auto grounds = *GroundConstraint(dirty, rules.rule(2));
  ASSERT_EQ(grounds.size(), 2u);
  EXPECT_EQ(grounds[0].reason, (std::vector<Value>{"ELIZA", "DOTHAN"}));
  EXPECT_EQ(grounds[0].tuples, (std::vector<TupleId>{2}));
  EXPECT_EQ(grounds[1].reason, (std::vector<Value>{"ELIZA", "BOAZ"}));
  EXPECT_EQ(grounds[1].tuples, (std::vector<TupleId>{3, 4, 5}));
}

TEST(GroundRuleTest, DcGroundsLikeItsFdForm) {
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();
  auto grounds = *GroundConstraint(dirty, rules.rule(1));
  // Distinct (PN, ST) pairs: (3347938701, AL), (2567638410, AL),
  // (2567688400, AK), (2567688400, AL).
  EXPECT_EQ(grounds.size(), 4u);
}

TEST(GroundRuleTest, GeneralDcRejected) {
  Schema s = *Schema::Make({"Salary", "Tax"});
  Dataset d = *Dataset::Make(s, {{"1", "2"}});
  Constraint dc =
      *Constraint::MakeDc(s, {{0, PredOp::kGt, 0}, {1, PredOp::kLt, 1}});
  auto r = GroundConstraint(d, dc);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
}

TEST(GroundRuleTest, EmptyDatasetGroundsToNothing) {
  Schema s = *Schema::Make({"A", "B"});
  Dataset d(s);
  Constraint fd = *Constraint::MakeFd(s, {0}, {1});
  auto grounds = *GroundConstraint(d, fd);
  EXPECT_TRUE(grounds.empty());
}

}  // namespace
}  // namespace mlnclean
