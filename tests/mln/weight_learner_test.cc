#include "mln/weight_learner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "mln/fast_exp.h"

namespace mlnclean {
namespace {

TEST(PriorWeightsTest, Eq4Example) {
  // Section 5.1.2: for γ = {CT: BOAZ, ST: AK} in block B1 of the sample
  // dataset, the prior weight is c(γ)/Σc = 1/6.
  std::vector<double> counts{2, 1, 1, 2};  // DOTHAN/AL, DOTH/AL, BOAZ/AK, BOAZ/AL
  std::vector<double> prior = PriorWeights(counts);
  EXPECT_DOUBLE_EQ(prior[2], 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(prior[0], 2.0 / 6.0);
  double sum = 0;
  for (double p : prior) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(PriorWeightsTest, EmptyAndZero) {
  EXPECT_TRUE(PriorWeights({}).empty());
  std::vector<double> zeros = PriorWeights({0, 0});
  EXPECT_DOUBLE_EQ(zeros[0], 0.0);
  EXPECT_DOUBLE_EQ(zeros[1], 0.0);
}

TEST(LearnWeightsTest, SingletonGroupKeepsPrior) {
  std::vector<double> counts{3, 2};
  std::vector<std::vector<size_t>> groups{{0}, {1}};
  std::vector<double> w = LearnWeights(counts, groups);
  std::vector<double> prior = PriorWeights(counts);
  EXPECT_DOUBLE_EQ(w[0], prior[0]);
  EXPECT_DOUBLE_EQ(w[1], prior[1]);
}

TEST(LearnWeightsTest, OrderingFollowsSupport) {
  // Within a group, the better-supported γ must end with the larger
  // weight (Eq. 3: larger weight <=> larger probability of being clean).
  std::vector<double> counts{2, 1};
  std::vector<std::vector<size_t>> groups{{0, 1}};
  std::vector<double> w = LearnWeights(counts, groups);
  EXPECT_GT(w[0], w[1]);
}

TEST(LearnWeightsTest, ConvergesToSoftmaxProportions) {
  // With weak regularization the learned group softmax approximates the
  // empirical distribution.
  std::vector<double> counts{6, 3, 1};
  std::vector<std::vector<size_t>> groups{{0, 1, 2}};
  WeightLearnerOptions opts;
  opts.l2 = 1e-4;
  opts.max_iterations = 500;
  std::vector<double> w = LearnWeights(counts, groups, opts);
  double z = std::exp(w[0]) + std::exp(w[1]) + std::exp(w[2]);
  EXPECT_NEAR(std::exp(w[0]) / z, 0.6, 0.02);
  EXPECT_NEAR(std::exp(w[1]) / z, 0.3, 0.02);
  EXPECT_NEAR(std::exp(w[2]) / z, 0.1, 0.02);
}

TEST(LearnWeightsTest, TiedSupportsStayTied) {
  std::vector<double> counts{2, 2};
  std::vector<std::vector<size_t>> groups{{0, 1}};
  std::vector<double> w = LearnWeights(counts, groups);
  EXPECT_NEAR(w[0], w[1], 1e-9);
}

TEST(LearnWeightsTest, StrongRegularizationPinsToPrior) {
  std::vector<double> counts{5, 1};
  std::vector<std::vector<size_t>> groups{{0, 1}};
  WeightLearnerOptions opts;
  opts.l2 = 1e6;  // overwhelming prior pull
  std::vector<double> w = LearnWeights(counts, groups, opts);
  std::vector<double> prior = PriorWeights(counts);
  EXPECT_NEAR(w[0], prior[0], 1e-3);
  EXPECT_NEAR(w[1], prior[1], 1e-3);
}

TEST(LearnWeightsTest, ZeroIterationsReturnsPrior) {
  std::vector<double> counts{4, 1};
  std::vector<std::vector<size_t>> groups{{0, 1}};
  WeightLearnerOptions opts;
  opts.max_iterations = 0;
  std::vector<double> w = LearnWeights(counts, groups, opts);
  EXPECT_EQ(w, PriorWeights(counts));
}

TEST(LearnWeightsTest, MultipleGroupsLearnedIndependently) {
  std::vector<double> counts{3, 1, 1, 3};
  std::vector<std::vector<size_t>> groups{{0, 1}, {2, 3}};
  std::vector<double> w = LearnWeights(counts, groups);
  EXPECT_GT(w[0], w[1]);
  EXPECT_GT(w[3], w[2]);
}

TEST(GroupProbabilitiesTest, UncontestedGammaKeepsEq4Prior) {
  // A singleton group's probability weight is exactly its prior: the
  // scale FSCR products and Eq. 6 averaging rely on.
  std::vector<double> counts{8, 1, 9};
  std::vector<std::vector<size_t>> groups{{0, 1}, {2}};
  std::vector<double> w = LearnGroupProbabilities(counts, groups);
  EXPECT_NEAR(w[2], 9.0 / 18.0, 1e-12);
}

TEST(GroupProbabilitiesTest, ContestedGroupSplitsItsMass) {
  std::vector<double> counts{8, 1, 9};
  std::vector<std::vector<size_t>> groups{{0, 1}, {2}};
  std::vector<double> w = LearnGroupProbabilities(counts, groups);
  // Group mass 9/18 split by the learned softmax: winner close to 8/18.
  EXPECT_NEAR(w[0] + w[1], 9.0 / 18.0, 1e-9);
  EXPECT_GT(w[0], w[1]);
  EXPECT_NEAR(w[0], 8.0 / 18.0, 0.05);
}

TEST(GroupProbabilitiesTest, AllWeightsInUnitInterval) {
  std::vector<double> counts{5, 3, 2, 7, 1};
  std::vector<std::vector<size_t>> groups{{0, 1, 2}, {3, 4}};
  for (double w : LearnGroupProbabilities(counts, groups)) {
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(GroupProbabilitiesTest, UngroupedItemsKeepPrior) {
  std::vector<double> counts{4, 6};
  std::vector<std::vector<size_t>> groups{};  // nothing grouped
  std::vector<double> w = LearnGroupProbabilities(counts, groups);
  EXPECT_EQ(w, PriorWeights(counts));
}

// Property sweep: weight ordering matches support ordering for random
// group configurations.
class LearnerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LearnerPropertyTest, WeightsMonotoneInSupport) {
  Rng rng(GetParam());
  std::vector<double> counts;
  std::vector<std::vector<size_t>> groups;
  size_t num_groups = 1 + rng.NextIndex(6);
  for (size_t g = 0; g < num_groups; ++g) {
    std::vector<size_t> members;
    size_t size = 1 + rng.NextIndex(5);
    for (size_t i = 0; i < size; ++i) {
      members.push_back(counts.size());
      counts.push_back(static_cast<double>(1 + rng.NextIndex(20)));
    }
    groups.push_back(std::move(members));
  }
  std::vector<double> w = LearnWeights(counts, groups);
  for (const auto& group : groups) {
    for (size_t i : group) {
      for (size_t j : group) {
        if (counts[i] > counts[j]) {
          EXPECT_GT(w[i], w[j])
              << "support " << counts[i] << " vs " << counts[j];
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LearnerPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(FastExpTest, MatchesLibmAcrossTheSoftmaxRange) {
  // Softmax inputs are w - wmax <= 0, but sweep both signs: relative
  // error must stay ~1e-13 everywhere the result is representable.
  for (double x = -700.0; x <= 700.0; x += 0.37) {
    const double exact = std::exp(x);
    EXPECT_NEAR(FastExp(x), exact, std::abs(exact) * 1e-12) << "x=" << x;
  }
  EXPECT_DOUBLE_EQ(FastExp(0.0), 1.0);
  // Out-of-range inputs clamp instead of producing inf/garbage bits.
  EXPECT_LT(FastExp(-1000.0), 1e-300);
  EXPECT_TRUE(std::isfinite(FastExp(1000.0)));
}

TEST(FastExpTest, BatchMeetsTheAccuracyContract) {
  // The batch may run the AVX2+FMA compilation of the loop, whose FMA
  // contraction rounds the Horner steps differently from the portable
  // scalar — both paths must still sit within ~1e-13 of libm.
  Rng rng(99);
  std::vector<double> xs(257);
  for (double& x : xs) x = -20.0 * rng.NextDouble();
  std::vector<double> batch = xs;
  FastExpBatch(batch.data(), batch.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    const double exact = std::exp(xs[i]);
    EXPECT_NEAR(batch[i], exact, exact * 1e-12) << "x=" << xs[i];
  }
}

TEST(LearnerTest, FastExpWeightsWithinTolerance) {
  // The opt-in vectorized exp moves the Newton fixed point by at most the
  // exp approximation error; learned weights must agree with the libm
  // path far tighter than any consumer can observe. The default path
  // (fast_exp off) is the libm path — bit-identity needs no test.
  Rng rng(7);
  std::vector<double> counts;
  std::vector<std::vector<size_t>> groups;
  for (size_t g = 0; g < 12; ++g) {
    std::vector<size_t> members;
    const size_t size = 2 + rng.NextIndex(6);
    for (size_t i = 0; i < size; ++i) {
      members.push_back(counts.size());
      counts.push_back(static_cast<double>(1 + rng.NextIndex(30)));
    }
    groups.push_back(std::move(members));
  }
  WeightLearnerOptions fast;
  fast.fast_exp = true;
  std::vector<double> exact = LearnWeights(counts, groups);
  std::vector<double> approx = LearnWeights(counts, groups, fast);
  ASSERT_EQ(exact.size(), approx.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(exact[i], approx[i], 1e-8) << "weight " << i;
  }
}

}  // namespace
}  // namespace mlnclean
