#include <gtest/gtest.h>

#include <cmath>

#include "mln/gibbs.h"
#include "mln/network.h"
#include "mln/walksat.h"

namespace mlnclean {
namespace {

TEST(GibbsTest, SingleAtomMatchesSigmoid) {
  // One soft clause (a) with weight w: Pr(a) = e^w / (e^w + 1).
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  ASSERT_TRUE(net.AddClause({{{a, true}}, 1.5, false}).ok());
  GibbsOptions opts;
  opts.burn_in_sweeps = 200;
  opts.sample_sweeps = 3000;
  auto marginals = GibbsMarginals(net, opts);
  double expected = 1.0 / (1.0 + std::exp(-1.5));
  EXPECT_NEAR(marginals[static_cast<size_t>(a)], expected, 0.04);
}

TEST(GibbsTest, EvidenceClamping) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  AtomId b = net.AddAtom("b");
  // a => b as clause (!a | b) with a clamped true: b should be pushed up.
  ASSERT_TRUE(net.AddClause({{{a, false}, {b, true}}, 2.0, false}).ok());
  GibbsOptions opts;
  opts.burn_in_sweeps = 100;
  opts.sample_sweeps = 2000;
  auto marginals = GibbsMarginals(net, opts, {{a, true}});
  EXPECT_DOUBLE_EQ(marginals[static_cast<size_t>(a)], 1.0);
  EXPECT_GT(marginals[static_cast<size_t>(b)], 0.7);
}

TEST(GibbsTest, ZeroWeightClauseIsUninformative) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  ASSERT_TRUE(net.AddClause({{{a, true}}, 0.0, false}).ok());
  GibbsOptions opts;
  opts.burn_in_sweeps = 100;
  opts.sample_sweeps = 3000;
  auto marginals = GibbsMarginals(net, opts);
  EXPECT_NEAR(marginals[static_cast<size_t>(a)], 0.5, 0.05);
}

TEST(GibbsTest, EmptyNetwork) {
  GroundNetwork net;
  auto marginals = GibbsMarginals(net, {});
  EXPECT_TRUE(marginals.empty());
}

TEST(WalkSatTest, SatisfiableInstanceSolved) {
  // (a | b) & (!a | b) & (a | !b): satisfied by a=b=true.
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  AtomId b = net.AddAtom("b");
  ASSERT_TRUE(net.AddClause({{{a, true}, {b, true}}, 1.0, false}).ok());
  ASSERT_TRUE(net.AddClause({{{a, false}, {b, true}}, 1.0, false}).ok());
  ASSERT_TRUE(net.AddClause({{{a, true}, {b, false}}, 1.0, false}).ok());
  double cost = 0.0;
  auto world = MaxWalkSat(net, {}, &cost);
  EXPECT_DOUBLE_EQ(cost, 0.0);
  EXPECT_TRUE(world[static_cast<size_t>(a)]);
  EXPECT_TRUE(world[static_cast<size_t>(b)]);
}

TEST(WalkSatTest, PrefersHeavierClauseWhenInconsistent) {
  // (a) weight 5 vs (!a) weight 1: MAP sets a=true, cost 1.
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  ASSERT_TRUE(net.AddClause({{{a, true}}, 5.0, false}).ok());
  ASSERT_TRUE(net.AddClause({{{a, false}}, 1.0, false}).ok());
  double cost = 0.0;
  auto world = MaxWalkSat(net, {}, &cost);
  EXPECT_TRUE(world[static_cast<size_t>(a)]);
  EXPECT_DOUBLE_EQ(cost, 1.0);
}

TEST(WalkSatTest, HardClauseDominates) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  ASSERT_TRUE(net.AddClause({{{a, true}}, 100.0, false}).ok());
  ASSERT_TRUE(net.AddClause({{{a, false}}, 0.0, true}).ok());  // hard !a
  double cost = 0.0;
  auto world = MaxWalkSat(net, {}, &cost);
  EXPECT_FALSE(world[static_cast<size_t>(a)]);
  EXPECT_DOUBLE_EQ(cost, 100.0);
}

TEST(WalkSatTest, EmptyNetworkZeroCost) {
  GroundNetwork net;
  double cost = -1.0;
  auto world = MaxWalkSat(net, {}, &cost);
  EXPECT_TRUE(world.empty());
  EXPECT_DOUBLE_EQ(cost, 0.0);
}

TEST(WalkSatTest, LargerRandomInstanceImproves) {
  // A chain a1 => a2 => ... => a8 with a heavy unit clause on a1: MAP
  // should satisfy everything (all true).
  GroundNetwork net;
  std::vector<AtomId> atoms;
  for (int i = 0; i < 8; ++i) atoms.push_back(net.AddAtom("x" + std::to_string(i)));
  ASSERT_TRUE(net.AddClause({{{atoms[0], true}}, 10.0, false}).ok());
  for (int i = 0; i + 1 < 8; ++i) {
    ASSERT_TRUE(
        net.AddClause({{{atoms[i], false}, {atoms[i + 1], true}}, 3.0, false}).ok());
  }
  WalkSatOptions opts;
  opts.max_flips = 5000;
  opts.restarts = 5;
  double cost = 0.0;
  auto world = MaxWalkSat(net, opts, &cost);
  EXPECT_DOUBLE_EQ(cost, 0.0);
  for (AtomId a : atoms) EXPECT_TRUE(world[static_cast<size_t>(a)]);
}

}  // namespace
}  // namespace mlnclean
