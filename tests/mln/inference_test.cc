#include <gtest/gtest.h>

#include <cmath>

#include "mln/gibbs.h"
#include "mln/network.h"
#include "mln/walksat.h"

namespace mlnclean {
namespace {

TEST(GibbsTest, SingleAtomMatchesSigmoid) {
  // One soft clause (a) with weight w: Pr(a) = e^w / (e^w + 1).
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  ASSERT_TRUE(net.AddClause({{{a, true}}, 1.5, false}).ok());
  GibbsOptions opts;
  opts.burn_in_sweeps = 200;
  opts.sample_sweeps = 3000;
  auto marginals = GibbsMarginals(net, opts);
  double expected = 1.0 / (1.0 + std::exp(-1.5));
  EXPECT_NEAR(marginals[static_cast<size_t>(a)], expected, 0.04);
}

TEST(GibbsTest, EvidenceClamping) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  AtomId b = net.AddAtom("b");
  // a => b as clause (!a | b) with a clamped true: b should be pushed up.
  ASSERT_TRUE(net.AddClause({{{a, false}, {b, true}}, 2.0, false}).ok());
  GibbsOptions opts;
  opts.burn_in_sweeps = 100;
  opts.sample_sweeps = 2000;
  auto marginals = GibbsMarginals(net, opts, {{a, true}});
  EXPECT_DOUBLE_EQ(marginals[static_cast<size_t>(a)], 1.0);
  EXPECT_GT(marginals[static_cast<size_t>(b)], 0.7);
}

TEST(GibbsTest, ZeroWeightClauseIsUninformative) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  ASSERT_TRUE(net.AddClause({{{a, true}}, 0.0, false}).ok());
  GibbsOptions opts;
  opts.burn_in_sweeps = 100;
  opts.sample_sweeps = 3000;
  auto marginals = GibbsMarginals(net, opts);
  EXPECT_NEAR(marginals[static_cast<size_t>(a)], 0.5, 0.05);
}

TEST(GibbsTest, EmptyNetwork) {
  GroundNetwork net;
  auto marginals = GibbsMarginals(net, {});
  EXPECT_TRUE(marginals.empty());
}

// Builds a ring of implication clauses plus per-atom biases — enough
// shared clauses that the chromatic partition needs several colors.
GroundNetwork RingNetwork(int n) {
  GroundNetwork net;
  std::vector<AtomId> atoms;
  for (int i = 0; i < n; ++i) atoms.push_back(net.AddAtom("a" + std::to_string(i)));
  for (int i = 0; i < n; ++i) {
    AtomId a = atoms[static_cast<size_t>(i)];
    AtomId b = atoms[static_cast<size_t>((i + 1) % n)];
    EXPECT_TRUE(net.AddClause({{{a, false}, {b, true}}, 0.8, false}).ok());
    EXPECT_TRUE(net.AddClause({{{a, true}}, 0.1 * (i % 5), false}).ok());
  }
  return net;
}

TEST(GibbsTest, ChromaticSweepsAreBitIdenticalAcrossThreadCounts) {
  // The determinism contract: the hash-per-(seed, sweep, atom) draws make
  // the marginals a pure function of the options, independent of the
  // executor — sequential, 2-thread, and 8-thread runs must agree to the
  // last bit.
  GroundNetwork net = RingNetwork(31);
  GibbsOptions opts;
  opts.burn_in_sweeps = 30;
  opts.sample_sweeps = 120;
  opts.seed = 977;
  const auto sequential = GibbsMarginals(net, opts, {{0, true}});
  for (size_t threads : {2u, 8u}) {
    PoolExecutor pool(threads);
    ExecContext ctx;
    ctx.executor = &pool;
    const auto parallel = GibbsMarginals(net, opts, {{0, true}}, ctx);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (size_t a = 0; a < sequential.size(); ++a) {
      EXPECT_EQ(parallel[a], sequential[a]) << "atom " << a << " with "
                                            << threads << " threads";
    }
  }
}

TEST(FlatNetworkTest, ColoringIsAConflictFreePartition) {
  GroundNetwork net = RingNetwork(17);
  const FlatNetwork flat = BuildFlatNetwork(net);
  ASSERT_EQ(flat.num_atoms(), net.num_atoms());
  ASSERT_EQ(flat.num_clauses(), net.num_clauses());
  // Every atom appears in exactly one color bucket.
  std::vector<int> seen(flat.num_atoms(), 0);
  for (uint32_t a : flat.color_atoms) ++seen[a];
  for (size_t a = 0; a < flat.num_atoms(); ++a) EXPECT_EQ(seen[a], 1);
  // No clause has two distinct atoms of the same color.
  std::vector<uint32_t> color(flat.num_atoms(), 0);
  for (size_t c = 0; c < flat.num_colors(); ++c) {
    for (size_t k = flat.color_offsets[c]; k < flat.color_offsets[c + 1]; ++k) {
      color[flat.color_atoms[k]] = static_cast<uint32_t>(c);
    }
  }
  for (size_t ci = 0; ci < flat.num_clauses(); ++ci) {
    for (size_t i = flat.clause_offsets[ci]; i < flat.clause_offsets[ci + 1]; ++i) {
      for (size_t j = i + 1; j < flat.clause_offsets[ci + 1]; ++j) {
        const AtomId a = flat.literal_atoms[i];
        const AtomId b = flat.literal_atoms[j];
        if (a != b) {
          EXPECT_NE(color[static_cast<size_t>(a)], color[static_cast<size_t>(b)])
              << "clause " << ci << " atoms " << a << ", " << b;
        }
      }
    }
  }
}

TEST(FlatNetworkTest, AdjacencyCountsPreserveDuplicateLiterals) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  AtomId b = net.AddAtom("b");
  // Clause mentioning `a` twice with both polarities, plus `b`.
  ASSERT_TRUE(net.AddClause({{{a, true}, {a, false}, {b, true}}, 1.0, false}).ok());
  const FlatNetwork flat = BuildFlatNetwork(net);
  const size_t begin = flat.atom_offsets[static_cast<size_t>(a)];
  const size_t end = flat.atom_offsets[static_cast<size_t>(a) + 1];
  ASSERT_EQ(end - begin, 1u);  // one entry for the one clause
  EXPECT_EQ(flat.adj_pos[begin], 1u);
  EXPECT_EQ(flat.adj_neg[begin], 1u);
}

TEST(WalkSatTest, SatisfiableInstanceSolved) {
  // (a | b) & (!a | b) & (a | !b): satisfied by a=b=true.
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  AtomId b = net.AddAtom("b");
  ASSERT_TRUE(net.AddClause({{{a, true}, {b, true}}, 1.0, false}).ok());
  ASSERT_TRUE(net.AddClause({{{a, false}, {b, true}}, 1.0, false}).ok());
  ASSERT_TRUE(net.AddClause({{{a, true}, {b, false}}, 1.0, false}).ok());
  double cost = 0.0;
  auto world = MaxWalkSat(net, {}, &cost);
  EXPECT_DOUBLE_EQ(cost, 0.0);
  EXPECT_TRUE(world[static_cast<size_t>(a)]);
  EXPECT_TRUE(world[static_cast<size_t>(b)]);
}

TEST(WalkSatTest, PrefersHeavierClauseWhenInconsistent) {
  // (a) weight 5 vs (!a) weight 1: MAP sets a=true, cost 1.
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  ASSERT_TRUE(net.AddClause({{{a, true}}, 5.0, false}).ok());
  ASSERT_TRUE(net.AddClause({{{a, false}}, 1.0, false}).ok());
  double cost = 0.0;
  auto world = MaxWalkSat(net, {}, &cost);
  EXPECT_TRUE(world[static_cast<size_t>(a)]);
  EXPECT_DOUBLE_EQ(cost, 1.0);
}

TEST(WalkSatTest, HardClauseDominates) {
  GroundNetwork net;
  AtomId a = net.AddAtom("a");
  ASSERT_TRUE(net.AddClause({{{a, true}}, 100.0, false}).ok());
  ASSERT_TRUE(net.AddClause({{{a, false}}, 0.0, true}).ok());  // hard !a
  double cost = 0.0;
  auto world = MaxWalkSat(net, {}, &cost);
  EXPECT_FALSE(world[static_cast<size_t>(a)]);
  EXPECT_DOUBLE_EQ(cost, 100.0);
}

TEST(WalkSatTest, EmptyNetworkZeroCost) {
  GroundNetwork net;
  double cost = -1.0;
  auto world = MaxWalkSat(net, {}, &cost);
  EXPECT_TRUE(world.empty());
  EXPECT_DOUBLE_EQ(cost, 0.0);
}

TEST(WalkSatTest, LargerRandomInstanceImproves) {
  // A chain a1 => a2 => ... => a8 with a heavy unit clause on a1: MAP
  // should satisfy everything (all true).
  GroundNetwork net;
  std::vector<AtomId> atoms;
  for (int i = 0; i < 8; ++i) atoms.push_back(net.AddAtom("x" + std::to_string(i)));
  ASSERT_TRUE(net.AddClause({{{atoms[0], true}}, 10.0, false}).ok());
  for (int i = 0; i + 1 < 8; ++i) {
    ASSERT_TRUE(
        net.AddClause({{{atoms[i], false}, {atoms[i + 1], true}}, 3.0, false}).ok());
  }
  WalkSatOptions opts;
  opts.max_flips = 5000;
  opts.restarts = 5;
  double cost = 0.0;
  auto world = MaxWalkSat(net, opts, &cost);
  EXPECT_DOUBLE_EQ(cost, 0.0);
  for (AtomId a : atoms) EXPECT_TRUE(world[static_cast<size_t>(a)]);
}

}  // namespace
}  // namespace mlnclean
