#include "discovery/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace mlnclean {
namespace {

std::vector<uint32_t> GroupVec(const StrippedPartition& p, size_t g) {
  return std::vector<uint32_t>(p.group_rows(g), p.group_rows(g) + p.group_size(g));
}

TEST(PartitionTest, FromColumnStripsSingletons) {
  // ids:            0  1  2  1  3  1  2
  const std::vector<ValueId> col = {0, 1, 2, 1, 3, 1, 2};
  StrippedPartition p = StrippedPartition::FromColumn(col, 4);
  ASSERT_EQ(p.num_groups(), 2u);  // ids 0 and 3 are singletons
  EXPECT_EQ(p.covered(), 5u);
  EXPECT_EQ(GroupVec(p, 0), (std::vector<uint32_t>{1, 3, 5}));  // id 1
  EXPECT_EQ(GroupVec(p, 1), (std::vector<uint32_t>{2, 6}));     // id 2
}

TEST(PartitionTest, RefineSplitsGroupsAndStripsSubSingletons) {
  const std::vector<ValueId> a = {1, 1, 1, 1, 2, 2};
  const std::vector<ValueId> b = {0, 1, 0, 2, 3, 3};
  StrippedPartition pa = StrippedPartition::FromColumn(a, 3);
  StrippedPartition pab = pa.Refine(b, 4);
  // Group of a=1 splits to {0,2} (b=0) plus singletons 1 and 3; group of
  // a=2 stays whole.
  ASSERT_EQ(pab.num_groups(), 2u);
  EXPECT_EQ(pab.covered(), 4u);
  EXPECT_EQ(GroupVec(pab, 0), (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(GroupVec(pab, 1), (std::vector<uint32_t>{4, 5}));
}

TEST(PartitionTest, RefineMatchesDirectTwoColumnGrouping) {
  // Property: refining π(A) with B equals grouping by the (A, B) pair
  // directly — compare covered counts and group multisets on random data.
  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 40 + rng.NextIndex(80);
    const size_t da = 2 + rng.NextIndex(6);
    const size_t db = 2 + rng.NextIndex(6);
    std::vector<ValueId> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<ValueId>(rng.NextIndex(da));
      b[i] = static_cast<ValueId>(rng.NextIndex(db));
    }
    StrippedPartition refined = StrippedPartition::FromColumn(a, da).Refine(b, db);

    // Direct grouping by pair id.
    std::vector<ValueId> pair(n);
    for (size_t i = 0; i < n; ++i) pair[i] = static_cast<ValueId>(a[i] * db + b[i]);
    StrippedPartition direct = StrippedPartition::FromColumn(pair, da * db);

    ASSERT_EQ(refined.covered(), direct.covered());
    ASSERT_EQ(refined.num_groups(), direct.num_groups());
    // Same groups up to order: match each refined group by its first row
    // (rows within groups are ascending in both constructions).
    std::vector<std::vector<uint32_t>> got, want;
    for (size_t g = 0; g < refined.num_groups(); ++g) got.push_back(GroupVec(refined, g));
    for (size_t g = 0; g < direct.num_groups(); ++g) want.push_back(GroupVec(direct, g));
    auto by_first = [](const std::vector<uint32_t>& x, const std::vector<uint32_t>& y) {
      return x[0] < y[0];
    };
    std::sort(got.begin(), got.end(), by_first);
    std::sort(want.begin(), want.end(), by_first);
    EXPECT_EQ(got, want);
  }
}

TEST(PartitionTest, EvaluateFdCountsMajorityAgreement) {
  const std::vector<ValueId> lhs = {1, 1, 1, 2, 2, 0};
  const std::vector<ValueId> rhs = {4, 4, 5, 6, 6, 7};
  StrippedPartition p = StrippedPartition::FromColumn(lhs, 3);
  FdEval eval = EvaluateFd(p, rhs, 8);
  // Group lhs=1: majority rhs 4 (2 of 3); group lhs=2: rhs 6 (2 of 2);
  // lhs=0 is a singleton and dropped.
  EXPECT_EQ(eval.agree, 4u);
  ASSERT_EQ(eval.majority_id.size(), 2u);
  EXPECT_EQ(eval.majority_id[0], 4u);
  EXPECT_EQ(eval.majority_count[0], 2u);
  EXPECT_EQ(eval.majority_id[1], 6u);
  EXPECT_EQ(eval.majority_count[1], 2u);
}

TEST(PartitionTest, EvaluateFdTieBreaksDeterministically) {
  const std::vector<ValueId> lhs = {1, 1, 1, 1};
  const std::vector<ValueId> rhs = {9, 3, 3, 9};
  StrippedPartition p = StrippedPartition::FromColumn(lhs, 2);
  FdEval eval = EvaluateFd(p, rhs, 10);
  ASSERT_EQ(eval.majority_id.size(), 1u);
  // 2-2 tie: the id that reaches the majority count first in row order
  // wins (id 3 hits count 2 at row 2; id 9 only at row 3).
  EXPECT_EQ(eval.majority_id[0], 3u);
  EXPECT_EQ(eval.majority_count[0], 2u);
}

}  // namespace
}  // namespace mlnclean
