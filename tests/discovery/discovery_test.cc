#include "discovery/discovery.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cleaning/engine.h"
#include "common/random.h"
#include "datagen/hospital.h"
#include "errorgen/injector.h"
#include "eval/metrics.h"
#include "rules/rule_parser.h"

namespace mlnclean {
namespace {

// The dirty 40-hospital table most discovery tests mine. Static so the
// workload is generated once per process.
const DirtyDataset& SharedDirtyHospital() {
  static const DirtyDataset* dd = [] {
    Workload wl = *MakeHospitalWorkload({.num_hospitals = 40, .num_measures = 10});
    ErrorSpec spec;
    spec.seed = 21;
    return new DirtyDataset(*InjectErrors(wl.clean, wl.rules, spec));
  }();
  return *dd;
}

// Brute-force recomputation of an FD's stripped-partition measures.
struct BruteFd {
  double support = 0.0;
  double confidence = 0.0;
};

BruteFd BruteForceFd(const Dataset& data, const std::vector<AttrId>& lhs, AttrId rhs) {
  std::map<std::vector<ValueId>, std::map<ValueId, size_t>> groups;
  for (size_t row = 0; row < data.num_rows(); ++row) {
    std::vector<ValueId> key;
    for (AttrId a : lhs) key.push_back(data.column(a)[row]);
    ++groups[key][data.column(rhs)[row]];
  }
  size_t covered = 0;
  size_t agree = 0;
  for (const auto& [key, counts] : groups) {
    size_t size = 0;
    size_t majority = 0;
    for (const auto& [id, c] : counts) {
      size += c;
      majority = std::max(majority, c);
    }
    if (size < 2) continue;  // stripped: singleton groups carry no evidence
    covered += size;
    agree += majority;
  }
  BruteFd out;
  if (data.num_rows() > 0) {
    out.support = static_cast<double>(covered) / static_cast<double>(data.num_rows());
  }
  if (covered > 0) {
    out.confidence = static_cast<double>(agree) / static_cast<double>(covered);
  }
  return out;
}

TEST(DiscoveryOptionsTest, DefaultsValidate) {
  EXPECT_TRUE(DiscoveryOptions{}.Validate().ok());
}

TEST(DiscoveryOptionsTest, RejectsOutOfRangeKnobs) {
  auto expect_invalid = [](DiscoveryOptions opts) {
    const Status s = opts.Validate();
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalid);
  };
  DiscoveryOptions o;
  o.max_lhs = 0;
  expect_invalid(o);
  o = {};
  o.max_lhs = 9;
  expect_invalid(o);
  o = {};
  o.min_support = -0.1;
  expect_invalid(o);
  o = {};
  o.min_confidence = 1.5;
  expect_invalid(o);
  o = {};
  o.min_cfd_support = 1;
  expect_invalid(o);
  o = {};
  o.max_rules = 0;
  expect_invalid(o);
  o = {};
  o.md_thresholds = {};
  expect_invalid(o);
  o = {};
  o.md_thresholds = {0.3, 0.2};  // not ascending
  expect_invalid(o);
  o = {};
  o.md_thresholds = {0.0, 0.5};  // zero radius
  expect_invalid(o);
  o = {};
  o.md_min_pairs = 0;
  expect_invalid(o);
  o = {};
  o.mln_sample_rows = 1;
  expect_invalid(o);
  o = {};
  o.min_mln_score = -1.0;
  expect_invalid(o);
}

TEST(DiscoveryOptionsTest, ValidateFuzz) {
  // Random knob assaults: Validate must classify without crashing, and
  // DiscoverRules must honor a failed Validate by refusing to run.
  Rng rng(99);
  const Dataset& dirty = SharedDirtyHospital().dirty;
  const Dataset tiny = dirty.Slice(0, 12);
  for (int round = 0; round < 200; ++round) {
    DiscoveryOptions o;
    o.max_lhs = rng.NextIndex(12);
    o.min_support = rng.NextDouble() * 3.0 - 1.0;
    o.min_confidence = rng.NextDouble() * 3.0 - 1.0;
    o.min_cfd_support = rng.NextIndex(5);
    o.min_cfd_confidence = rng.NextDouble() * 3.0 - 1.0;
    o.max_rules = rng.NextIndex(4);
    o.mine_mds = rng.NextBool(0.5);
    o.md_thresholds.clear();
    for (size_t i = rng.NextIndex(4); i-- > 0;) {
      o.md_thresholds.push_back(rng.NextDouble() * 1.5 - 0.25);
    }
    o.md_max_pairs = rng.NextIndex(3);
    o.md_min_pairs = rng.NextIndex(3);
    o.md_min_confidence = rng.NextDouble() * 3.0 - 1.0;
    o.score_with_mln = rng.NextBool(0.5);
    o.mln_sample_rows = rng.NextIndex(6);
    o.min_mln_score = rng.NextDouble() * 3.0 - 1.0;
    const Status s = o.Validate();
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kInvalid);
      const auto r = DiscoverRules(tiny, o);
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.status().code(), StatusCode::kInvalid);
    } else {
      // A valid configuration must mine without failing.
      EXPECT_TRUE(DiscoverRules(tiny, o).ok());
    }
  }
}

TEST(DiscoveryTest, GoldenHospitalFdsRecovered) {
  // Mining the dirty 40-hospital table must recover (a superset of) the
  // hand-written HAI FDs: every hand-written X -> A appears verbatim in
  // the mined candidate list. (Final keep decisions then select the best
  // determinant per attribute; recovery is a property of the lattice.)
  const DirtyDataset& dd = SharedDirtyHospital();
  const Schema& schema = dd.dirty.schema();
  auto mined = DiscoverRules(dd.dirty);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();

  std::vector<std::pair<std::vector<AttrId>, AttrId>> candidates;
  for (const MinedRuleInfo& info : mined->mined) {
    if (info.kind != RuleKind::kFd) continue;
    Constraint c = *ParseRule(schema, info.text);
    candidates.emplace_back(c.reason_attrs(), c.result_attrs()[0]);
  }

  Workload wl = *MakeHospitalWorkload({.num_hospitals = 40, .num_measures = 10});
  size_t required = 0;
  for (const Constraint& hand : wl.rules.rules()) {
    if (hand.kind() != RuleKind::kFd) continue;
    for (AttrId rhs : hand.result_attrs()) {
      ++required;
      std::vector<AttrId> hand_lhs = hand.reason_attrs();
      std::sort(hand_lhs.begin(), hand_lhs.end());
      bool covered = false;
      for (const auto& [got_lhs, got_rhs] : candidates) {
        if (got_rhs != rhs) continue;
        if (std::includes(hand_lhs.begin(), hand_lhs.end(), got_lhs.begin(),
                          got_lhs.end())) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "no mined FD covers " << hand.ToString(schema)
                           << " for rhs " << schema.name(rhs);
    }
  }
  EXPECT_GE(required, 7u);  // the six FD rules expand to seven single-rhs FDs
  // And every kept rule must still be one of the mined candidates.
  EXPECT_FALSE(mined->rules.empty());
}

TEST(DiscoveryTest, MinedMeasuresMatchBruteForce) {
  // Property: every mined FD's stated support/confidence equals a naive
  // recomputation, and exact FDs (confidence 1.0) hold violation-free.
  const Dataset& dirty = SharedDirtyHospital().dirty;
  DiscoveryOptions opts;
  opts.score_with_mln = false;  // measure the lattice, not the model
  opts.mine_mds = false;
  auto mined = DiscoverRules(dirty, opts);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  ASSERT_FALSE(mined->mined.empty());

  for (const MinedRuleInfo& info : mined->mined) {
    if (info.kind != RuleKind::kFd) continue;
    Constraint c = *ParseRule(dirty.schema(), info.text);
    ASSERT_EQ(c.result_attrs().size(), 1u);
    const BruteFd brute = BruteForceFd(dirty, c.reason_attrs(), c.result_attrs()[0]);
    EXPECT_DOUBLE_EQ(info.support, brute.support) << info.text;
    EXPECT_DOUBLE_EQ(info.confidence, brute.confidence) << info.text;
  }
}

TEST(DiscoveryTest, ExactRulesHoldOnCleanData) {
  // On the clean table with exact thresholds, every mined FD must hold
  // with zero violations and every CFD pattern must be pure.
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 40, .num_measures = 10});
  DiscoveryOptions opts;
  opts.min_confidence = 1.0;
  opts.min_cfd_confidence = 1.0;
  opts.score_with_mln = false;
  opts.mine_mds = false;
  opts.max_rules = 256;
  auto mined = DiscoverRules(wl.clean, opts);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();

  for (const MinedRuleInfo& info : mined->mined) {
    Constraint c = *ParseRule(wl.clean.schema(), info.text);
    if (info.kind == RuleKind::kFd) {
      std::map<std::vector<ValueId>, ValueId> rhs_of;
      for (size_t row = 0; row < wl.clean.num_rows(); ++row) {
        std::vector<ValueId> key;
        for (AttrId a : c.reason_attrs()) key.push_back(wl.clean.column(a)[row]);
        const ValueId rhs = wl.clean.column(c.result_attrs()[0])[row];
        auto [it, inserted] = rhs_of.emplace(key, rhs);
        EXPECT_EQ(it->second, rhs) << info.text << " violated at row " << row;
      }
    } else if (info.kind == RuleKind::kCfd) {
      size_t matched = 0;
      for (size_t row = 0; row < wl.clean.num_rows(); ++row) {
        std::vector<Value> tuple;
        for (size_t a = 0; a < wl.clean.schema().num_attrs(); ++a) {
          tuple.push_back(wl.clean.at(static_cast<TupleId>(row), static_cast<AttrId>(a)));
        }
        if (!c.MatchesAllLhsConstants(tuple)) continue;
        ++matched;
        ASSERT_EQ(c.rhs_patterns().size(), 1u);
        EXPECT_EQ(tuple[c.rhs_patterns()[0].attr], *c.rhs_patterns()[0].constant)
            << info.text << " violated at row " << row;
      }
      EXPECT_GE(matched, DiscoveryOptions{}.min_cfd_support) << info.text;
    }
  }
}

TEST(DiscoveryTest, MinedRulesRoundTripCanonically) {
  const DirtyDataset& dd = SharedDirtyHospital();
  auto mined = DiscoverRules(dd.dirty);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  ASSERT_FALSE(mined->rules.empty());

  // Byte-identical CanonicalText -> ParseRules -> CanonicalText.
  std::string text;
  for (const Constraint& c : mined->rules.rules()) {
    text += c.CanonicalText(dd.dirty.schema());
    text += '\n';
  }
  auto reparsed = ParseRules(dd.dirty.schema(), text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->size(), mined->rules.size());
  for (size_t i = 0; i < reparsed->size(); ++i) {
    EXPECT_EQ(reparsed->rule(i).CanonicalText(dd.dirty.schema()),
              mined->rules.rule(i).CanonicalText(dd.dirty.schema()));
  }
}

TEST(DiscoveryTest, ThreadCountDoesNotChangeTheResult) {
  const DirtyDataset& dd = SharedDirtyHospital();
  DiscoveryOptions seq;
  seq.num_threads = 1;
  auto a = DiscoverRules(dd.dirty, seq);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  DiscoveryOptions par;
  par.num_threads = 4;
  auto b = DiscoverRules(dd.dirty, par);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  ASSERT_EQ(a->mined.size(), b->mined.size());
  for (size_t i = 0; i < a->mined.size(); ++i) {
    EXPECT_EQ(a->mined[i].text, b->mined[i].text);
    EXPECT_EQ(a->mined[i].kept, b->mined[i].kept);
    EXPECT_EQ(a->mined[i].support, b->mined[i].support);
    EXPECT_EQ(a->mined[i].confidence, b->mined[i].confidence);
    EXPECT_EQ(a->mined[i].mln_score, b->mined[i].mln_score);
  }
  ASSERT_EQ(a->rules.size(), b->rules.size());
  for (size_t i = 0; i < a->rules.size(); ++i) {
    EXPECT_EQ(a->rules.rule(i).CanonicalText(dd.dirty.schema()),
              b->rules.rule(i).CanonicalText(dd.dirty.schema()));
  }
  ASSERT_EQ(a->mds.size(), b->mds.size());
  for (size_t i = 0; i < a->mds.size(); ++i) {
    EXPECT_EQ(a->mds[i].lhs_attr, b->mds[i].lhs_attr);
    EXPECT_EQ(a->mds[i].rhs_attr, b->mds[i].rhs_attr);
    EXPECT_EQ(a->mds[i].threshold, b->mds[i].threshold);
    EXPECT_EQ(a->mds[i].similar_pairs, b->mds[i].similar_pairs);
    EXPECT_EQ(a->mds[i].matching_pairs, b->mds[i].matching_pairs);
  }
}

TEST(DiscoveryTest, CancellationAborts) {
  const DirtyDataset& dd = SharedDirtyHospital();
  DiscoveryOptions opts;
  opts.cancel.RequestCancel();
  const auto r = DiscoverRules(dd.dirty, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(DiscoveryTest, MatchingDependenciesFindPlantedSimilarity) {
  // Typos make near-equal HospitalName/City values whose State still
  // agrees — the MD miner must surface at least one such dependency, and
  // every reported MD must satisfy its own bars.
  const DirtyDataset& dd = SharedDirtyHospital();
  auto mined = DiscoverRules(dd.dirty);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  EXPECT_FALSE(mined->mds.empty());
  const DiscoveryOptions defaults;
  for (const MatchingDependency& md : mined->mds) {
    EXPECT_GE(md.similar_pairs, defaults.md_min_pairs);
    EXPECT_GE(md.confidence, defaults.md_min_confidence);
    EXPECT_LE(md.matching_pairs, md.similar_pairs);
    EXPECT_NE(md.lhs_attr, md.rhs_attr);
    EXPECT_FALSE(md.ToString(dd.dirty.schema()).empty());
  }
}

TEST(DiscoveryTest, EndToEndMinedRulesCleanWithinTenPercentOfHandWritten) {
  // The acceptance demo: mine rules from the dirty table with zero
  // hand-written rules, clean with them, and land within 10% of the
  // hand-written-rules F-score.
  Workload wl = *MakeHospitalWorkload({.num_hospitals = 40, .num_measures = 10});
  ErrorSpec spec;
  spec.seed = 21;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);

  auto mined = DiscoverRules(dd.dirty);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  ASSERT_FALSE(mined->rules.empty());

  CleaningOptions copts;
  copts.agp_threshold = 3;
  CleaningEngine engine(copts);
  auto hand = engine.Clean(dd.dirty, wl.rules);
  ASSERT_TRUE(hand.ok()) << hand.status().ToString();
  auto ours = engine.Clean(dd.dirty, mined->rules);
  ASSERT_TRUE(ours.ok()) << ours.status().ToString();

  const double hand_f1 = EvaluateRepair(dd.dirty, hand->cleaned, dd.truth).F1();
  const double mined_f1 = EvaluateRepair(dd.dirty, ours->cleaned, dd.truth).F1();
  EXPECT_GE(mined_f1, hand_f1 * 0.9)
      << "mined F1 " << mined_f1 << " vs hand-written F1 " << hand_f1;
}

}  // namespace
}  // namespace mlnclean
