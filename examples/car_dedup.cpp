// Domain example: the sparse CAR workload with duplicate listings —
// typos corrupt vehicle records, duplicates inflate the table, and
// MLNClean repairs the errors and collapses the duplicates in one pass.
//
//   $ ./examples/car_dedup

#include <cstdio>

#include "mlnclean/internal.h"  // Rng, for the duplicate injection below
#include "mlnclean/mlnclean.h"

using namespace mlnclean;

int main() {
  CarConfig config;
  config.num_rows = 2000;
  Workload wl = *MakeCarWorkload(config);

  // Inject duplicate listings first (the same car posted twice), then
  // typos on the rule attributes.
  Dataset with_dups = wl.clean.Clone();
  Rng rng(3);
  std::vector<std::pair<TupleId, TupleId>> dup_pairs;
  AppendDuplicates(&with_dups, 0.10, &rng, &dup_pairs);
  std::printf("CAR-like dataset: %zu listings (%zu injected duplicates)\n",
              with_dups.num_rows(), dup_pairs.size());

  ErrorSpec spec;
  spec.error_rate = 0.04;
  spec.replacement_ratio = 0.0;  // typos only in this scenario
  spec.seed = 11;
  DirtyDataset dd = *InjectErrors(with_dups, wl.rules, spec);
  std::printf("Injected %zu typos on rule attributes\n", dd.truth.NumErrors());

  CleaningOptions options;
  options.agp_threshold = 2;
  CleanModel model = *CleaningEngine(options).Compile(dd.dirty.schema(), wl.rules);
  CleanResult result = *model.Clean(dd.dirty);

  RepairMetrics m = EvaluateRepair(dd.dirty, result.cleaned, dd.truth);
  std::printf("\nRepair quality: precision %.3f  recall %.3f  F1 %.3f\n",
              m.Precision(), m.Recall(), m.F1());
  std::printf("Cleaning trace: %s\n", result.report.Summary().c_str());
  std::printf("Rows: %zu dirty -> %zu after duplicate elimination\n",
              result.cleaned.num_rows(), result.deduped.num_rows());

  // A few sample repairs.
  int shown = 0;
  for (TupleId t = 0; t < static_cast<TupleId>(dd.dirty.num_rows()) && shown < 5;
       ++t) {
    for (AttrId a = 0; a < static_cast<AttrId>(dd.dirty.num_attrs()); ++a) {
      if (result.cleaned.at(t, a) != dd.dirty.at(t, a)) {
        std::printf("  t%d.%s: '%s' -> '%s'%s\n", t,
                    wl.clean.schema().name(a).c_str(), dd.dirty.at(t, a).c_str(),
                    result.cleaned.at(t, a).c_str(),
                    result.cleaned.at(t, a) == dd.truth.TrueValue(t, a)
                        ? ""
                        : "  (incorrect)");
        if (++shown >= 5) break;
      }
    }
  }
  return 0;
}
