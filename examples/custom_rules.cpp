// Domain example: bring your own data and rules. Loads a small CSV
// (written inline here), declares FD/CFD/DC constraints in the rule DSL,
// and cleans the table — the workflow a downstream user follows.
//
//   $ ./examples/custom_rules

#include <cstdio>

#include "mlnclean/mlnclean.h"

using namespace mlnclean;

int main() {
  // An orders table (one row per invoice line item): Country determines
  // Currency (FD); customers of the "gold" tier get free shipping (CFD);
  // two line items of the same invoice must agree on the total (DC).
  // Note that keys need support: AGP treats groups at or below τ tuples
  // as suspect, so every invoice/country appears on at least two rows.
  const char* csv =
      "OrderId,Country,Currency,Tier,Shipping,Invoice,Total\n"
      "o1,germany,eur,gold,free,inv-100,250\n"
      "o2,germany,eur,gold,free,inv-100,250\n"
      "o3,germany,usd,standard,paid,inv-101,80\n"  // wrong currency
      "o4,germany,eur,standard,paid,inv-101,80\n"
      "o5,france,eur,gold,paid,inv-102,120\n"      // gold but paid shipping
      "o6,france,eur,gold,free,inv-102,120\n"
      "o7,germny,eur,standard,paid,inv-103,75\n"   // typo'd country
      "o8,germany,eur,standard,paid,inv-103,75\n"
      "o9,france,eur,standard,paid,inv-104,60\n"
      "o10,france,eur,standard,paid,inv-104,65\n";  // totals disagree

  Dataset dirty = *Dataset::FromCsv(csv);
  RuleSet rules = *ParseRules(dirty.schema(),
                              "FD: Country -> Currency\n"
                              "CFD: Tier=gold -> Shipping=free\n"
                              "DC: !(Invoice(t1)=Invoice(t2) & Total(t1)!=Total(t2))\n");

  std::printf("Loaded %zu rows; rules:\n", dirty.num_rows());
  for (const auto& rule : rules.rules()) {
    std::printf("  %s: %s\n", rule.name().c_str(),
                rule.ToString(rules.schema()).c_str());
  }

  // Where do the rules flag trouble before cleaning?
  auto violations = FindAllViolations(dirty, rules);
  std::printf("\n%zu violations detected in the dirty data\n", violations.size());

  CleaningOptions options;
  options.agp_threshold = 1;
  CleanModel model = *CleaningEngine(options).Compile(dirty.schema(), rules);
  CleanResult result = *model.Clean(dirty);

  std::printf("\nRepaired table:\n%s", WriteCsv(result.deduped.ToCsv()).c_str());
  std::printf("\nTrace: %s\n", result.report.Summary().c_str());
  std::printf("Violations remaining after cleaning: %zu\n",
              FindAllViolations(result.cleaned, rules).size());
  return 0;
}
