// Domain example: end-to-end cleaning of a generated HAI-like healthcare
// dataset (the paper's dense workload) — corrupt it, clean it, and score
// every component against the injected ground truth.
//
//   $ ./examples/hospital_cleaning

#include <cstdio>

#include "mlnclean/mlnclean.h"

using namespace mlnclean;

int main() {
  HospitalConfig config;
  config.num_hospitals = 50;
  config.num_measures = 10;
  Workload wl = *MakeHospitalWorkload(config);
  std::printf("HAI-like dataset: %zu tuples x %zu attributes, %zu rules\n",
              wl.clean.num_rows(), wl.clean.num_attrs(), wl.rules.size());

  ErrorSpec spec;
  spec.error_rate = 0.05;        // the paper's default
  spec.replacement_ratio = 0.5;  // half typos, half replacement errors
  spec.seed = 7;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  std::printf("Injected %zu errors (error rate %.1f%% of all cells)\n",
              dd.truth.NumErrors(), 100.0 * spec.error_rate);

  CleaningOptions options;
  options.agp_threshold = 3;
  auto eval = *EvaluateComponents(dd.dirty, wl.rules, options, dd.truth);

  std::printf("\nComponent accuracy (Section 7.3 metrics):\n");
  std::printf("  AGP : Precision-A %.3f  Recall-A %.3f  (#dag %zu)\n",
              eval.agp.Precision(), eval.agp.Recall(), eval.dag);
  std::printf("  RSC : Precision-R %.3f  Recall-R %.3f\n", eval.rsc.Precision(),
              eval.rsc.Recall());
  std::printf("  FSCR: Precision-F %.3f  Recall-F %.3f\n", eval.fscr.Precision(),
              eval.fscr.Recall());
  std::printf("\nOverall repair: precision %.3f  recall %.3f  F1 %.3f\n",
              eval.overall.Precision(), eval.overall.Recall(), eval.overall.F1());

  // Compare with the HoloClean-style baseline under oracle detection.
  HoloCleanBaseline baseline;
  auto hc = *baseline.CleanWithOracle(dd.dirty, wl.rules, dd.truth);
  RepairMetrics hm = EvaluateRepair(dd.dirty, hc.cleaned, dd.truth);
  std::printf("Baseline (HoloClean-style, oracle detection): F1 %.3f "
              "(%zu cells repaired one at a time)\n",
              hm.F1(), hc.repaired_cells);
  return 0;
}
