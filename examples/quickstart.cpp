// Quickstart: clean the paper's running example (Table 1) and walk
// through what each stage did.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "mlnclean/internal.h"  // Join, for pretty-printing the trace
#include "mlnclean/mlnclean.h"

using namespace mlnclean;

namespace {

void PrintDataset(const char* title, const Dataset& data) {
  std::printf("%s\n", title);
  std::printf("  %-4s", "TID");
  for (const auto& name : data.schema().names()) std::printf("%-12s", name.c_str());
  std::printf("\n");
  for (TupleId t = 0; t < static_cast<TupleId>(data.num_rows()); ++t) {
    std::printf("  t%-3d", t + 1);
    for (const auto& v : data.row(t)) std::printf("%-12s", v.c_str());
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // Table 1: six hospital tuples with a typo (t2.CT), a replacement error
  // (t3.CT and t3.PN), a schema-level violation (t4.ST), and duplicates.
  Dataset dirty = *SampleHospitalDirty();
  RuleSet rules = *SampleHospitalRules();

  std::printf("Rules:\n");
  for (const auto& rule : rules.rules()) {
    std::printf("  %s: %s   (MLN form: %s)\n", rule.name().c_str(),
                rule.ToString(rules.schema()).c_str(),
                rule.MlnClause(rules.schema()).c_str());
  }

  PrintDataset("\nDirty input (Table 1):", dirty);

  CleaningOptions options;
  options.agp_threshold = 1;  // τ = 1, the paper's CAR/sample setting
  CleaningEngine engine(options);
  CleanModel model = *engine.Compile(dirty.schema(), rules);
  CleanResult result = *model.Clean(dirty);

  PrintDataset("\nRepaired (row-aligned):", result.cleaned);
  PrintDataset("\nAfter duplicate elimination:", result.deduped);

  std::printf("\nWhat happened: %s\n", result.report.Summary().c_str());
  for (const auto& rec : result.report.agp) {
    std::printf("  AGP: group {%s} was abnormal -> merged into {%s}\n",
                Join(rec.abnormal_key, ", ").c_str(),
                Join(rec.target_key, ", ").c_str());
  }
  for (const auto& rec : result.report.rsc) {
    std::printf("  RSC: {%s} rewritten to {%s} (%zu tuple(s))\n",
                Join(rec.loser_values, ", ").c_str(),
                Join(rec.winner_values, ", ").c_str(),
                rec.affected_tuples.size());
  }
  return 0;
}
