// Serving example: one prepared CleanModel cleaning a stream of
// micro-batches. Compile once, warm the Eq. 6 weight store on a sample,
// then serve each incoming batch through a session that reuses the stored
// γ weights instead of re-running the Newton learner — the amortization
// MLNClean's build-once / repair-per-request split exists for. Also shows
// per-stage progress callbacks, cooperative cancellation, and the
// cross-process hand-off: the model is Save()d to a snapshot, this binary
// re-execs itself to Load() it in a fresh process, and the child's cleaned
// output is compared against the in-process run.
//
//   $ ./examples/serve_batches

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "mlnclean/internal.h"  // Timer, for the cold-vs-warm comparison
#include "mlnclean/mlnclean.h"

using namespace mlnclean;

namespace {

// Batch count of the stream; the parent and the re-exec'd child must
// split identically (via the shared SplitIntoBatches) for the round-trip
// comparison to mean anything.
constexpr size_t kBatches = 8;

// Wraps `s` in single quotes for /bin/sh, escaping embedded quotes, so
// paths with spaces or apostrophes survive std::system.
std::string ShellQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += '\'';
  return out;
}

// The deterministic stream both processes regenerate: the parent serves it
// against its in-process model, the re-exec'd child against the loaded
// snapshot of the same model.
struct Stream {
  RuleSet rules;
  Dataset dirty;
};

Stream MakeStream() {
  HospitalConfig config;
  config.num_hospitals = 40;
  config.num_measures = 10;
  Workload wl = *MakeHospitalWorkload(config);
  ErrorSpec spec;
  spec.error_rate = 0.05;
  spec.seed = 21;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  return Stream{std::move(wl.rules), std::move(dd.dirty)};
}

// Serves every batch with stored-weight reuse and returns the concatenated
// cleaned CSVs — the artifact the two processes compare.
std::string ServeAll(const CleanModel& model, const std::vector<Dataset>& batches) {
  std::string out;
  SessionOptions serve;
  serve.reuse_model_weights = true;
  for (const Dataset& batch : batches) {
    CleanResult result = *model.Clean(batch, serve);
    out += WriteCsv(result.cleaned.ToCsv());
  }
  return out;
}

// Child mode (--from-snapshot SNAP OUT): load the snapshot, serve the
// stream, write the cleaned CSVs to OUT.
int RunChild(const char* snapshot_path, const char* out_path) {
  std::ifstream in(snapshot_path, std::ios::binary);
  auto model = CleaningEngine().Load(in);
  if (!model.ok()) {
    std::fprintf(stderr, "child load failed: %s\n", model.status().ToString().c_str());
    return 1;
  }
  Stream stream = MakeStream();
  std::ofstream out(out_path, std::ios::binary);
  out << ServeAll(*model, SplitIntoBatches(stream.dirty, kBatches));
  out.close();  // flush now so write errors surface in the exit code
  return out.fail() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::string(argv[1]) == "--from-snapshot") {
    return RunChild(argv[2], argv[3]);
  }

  // A HAI-like table arriving as a stream of micro-batches.
  Stream stream = MakeStream();
  std::vector<Dataset> batches = SplitIntoBatches(stream.dirty, kBatches);
  std::printf("%zu tuples arriving as %zu micro-batches of ~%zu rows\n",
              stream.dirty.num_rows(), batches.size(), batches[0].num_rows());

  // Build-once phase: compile the rules and warm the weight store.
  CleaningOptions options;
  options.agp_threshold = 3;
  CleaningEngine engine(options);
  CleanModel model = *engine.Compile(stream.dirty.schema(), stream.rules);
  Status warmed = model.Warm(batches[0]);
  if (!warmed.ok()) {
    std::printf("warmup failed: %s\n", warmed.ToString().c_str());
    return 1;
  }
  std::printf("Model compiled: %zu rules, %zu stored γ weights after warmup\n",
              model.rules().size(), model.num_stored_weights());

  // Serve the stream twice: cold (a fresh compile + learner per batch,
  // the one-shot CleaningEngine::Clean path) vs warm (stored weights
  // reused).
  Timer cold_timer;
  for (const Dataset& batch : batches) {
    CleanResult result = *CleaningEngine(options).Clean(batch, stream.rules);
    (void)result;
  }
  double cold_seconds = cold_timer.ElapsedSeconds();

  // Trace collection stays on in both arms so the printed delta is the
  // amortized compile+learn cost, nothing else (collect_report=false is a
  // further serving win when the trace is never read).
  SessionOptions serve;
  serve.reuse_model_weights = true;
  Timer warm_timer;
  for (const Dataset& batch : batches) {
    CleanResult result = *model.Clean(batch, serve);
    (void)result;
  }
  double warm_seconds = warm_timer.ElapsedSeconds();
  std::printf("\n%zu batches cold: %.3f ms   prepared model: %.3f ms (%.2fx)\n",
              batches.size(), 1e3 * cold_seconds, 1e3 * warm_seconds,
              cold_seconds / warm_seconds);

  // Staged execution: progress callbacks per stage, and a CancelToken that
  // aborts the run between blocks/shards.
  SessionOptions staged;
  staged.progress = [](const StageProgress& p) {
    if (p.units_done == p.units_total) {
      std::printf("  stage %-5s done (%zu units, %.2f ms)\n", StageName(p.stage),
                  p.units_total, 1e3 * p.seconds);
    }
  };
  CleanSession session = model.NewSession(batches[1], staged);
  session.RunUntil(Stage::kLearn);  // pause after stage I learning...
  std::printf("  ...paused at %s; resuming\n", StageName(session.next_stage()));
  session.Resume();  // ...and finish the plan
  CleanResult streamed = *session.TakeResult();
  std::printf("Batch 2 served: %zu rows, %zu duplicates removed\n",
              streamed.cleaned.num_rows(),
              streamed.cleaned.num_rows() - streamed.deduped.num_rows());

  SessionOptions doomed;
  doomed.cancel = CancelToken();
  doomed.cancel.RequestCancel();
  Status cancelled = model.NewSession(batches[2], doomed).Resume();
  std::printf("Cancelled session reports: %s\n", cancelled.ToString().c_str());

  // Concurrent serving: a CleanServer schedules sessions onto one shared
  // worker pool. Submission is asynchronous (FIFO, kUnavailable when the
  // queue is full) and tickets are future-style handles; with a warmed
  // store and reuse on, the concurrent results are bit-identical to the
  // sequential ones above.
  {
    PoolExecutor pool(4);
    ServerOptions server_options;
    server_options.executor = &pool;
    server_options.max_concurrent_sessions = 4;
    server_options.queue_capacity = batches.size();
    CleanServer server = *CleanServer::Create(model, server_options);
    std::vector<CleanTicket> tickets;
    for (const Dataset& batch : batches) {
      // Fresh SessionOptions per job, so each ticket gets its own
      // CancelToken (a shared one would make Cancel() cancel every job).
      SessionOptions per_job;
      per_job.reuse_model_weights = true;
      tickets.push_back(*server.Submit(batch, per_job));
    }
    size_t rows = 0;
    for (CleanTicket& ticket : tickets) {
      rows += (*ticket.Take()).deduped.num_rows();
    }
    ServerStats stats = server.Stats();
    std::printf(
        "CleanServer: %zu batches on 4 workers -> %zu clean rows "
        "(%zu completed, %.2f ms cumulative stage time)\n",
        batches.size(), rows, stats.completed,
        1e3 * stats.stage_seconds.total);
  }

  // Cross-process hand-off: Save the warmed model, re-exec this binary to
  // Load it in a fresh process, and check the child's cleaned output is
  // bit-identical to serving the same stream in this process.
  const std::string snapshot_path = "serve_batches_model.bin";
  const std::string child_out_path = "serve_batches_child.csv";
  {
    std::ofstream snap(snapshot_path, std::ios::binary);
    Status saved = model.Save(snap);
    if (!saved.ok()) {
      std::printf("snapshot save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
  }
  std::string parent_served = ServeAll(model, batches);
  std::string cmd = ShellQuote(argv[0]) + " --from-snapshot " +
                    ShellQuote(snapshot_path) + " " + ShellQuote(child_out_path);
  if (std::system(cmd.c_str()) != 0) {
    std::printf("child process failed\n");
    return 1;
  }
  std::stringstream child_served;
  child_served << std::ifstream(child_out_path, std::ios::binary).rdbuf();
  const bool identical = child_served.str() == parent_served;
  std::printf("Snapshot round trip: child process served %zu batches %s\n",
              batches.size(), identical ? "bit-identically" : "DIFFERENTLY (bug!)");
  if (identical) {
    // On mismatch the snapshot and the child transcript are exactly the
    // artifacts needed to debug; only clean up after a pass.
    std::remove(snapshot_path.c_str());
    std::remove(child_out_path.c_str());
  }
  return identical ? 0 : 1;
}
