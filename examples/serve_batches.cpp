// Serving example: one prepared CleanModel cleaning a stream of
// micro-batches. Compile once, warm the Eq. 6 weight store on a sample,
// then serve each incoming batch through a session that reuses the stored
// γ weights instead of re-running the Newton learner — the amortization
// MLNClean's build-once / repair-per-request split exists for. Also shows
// per-stage progress callbacks and cooperative cancellation.
//
//   $ ./examples/serve_batches

#include <cstdio>

#include "mlnclean/internal.h"  // Timer, for the cold-vs-warm comparison
#include "mlnclean/mlnclean.h"

using namespace mlnclean;

namespace {

// Splits `data` into `k` contiguous micro-batches sharing its dictionaries.
std::vector<Dataset> SplitIntoBatches(const Dataset& data, size_t k) {
  std::vector<Dataset> batches;
  const size_t rows = data.num_rows();
  const size_t chunk = (rows + k - 1) / k;
  for (size_t begin = 0; begin < rows; begin += chunk) {
    batches.push_back(data.Slice(begin, begin + chunk));
  }
  return batches;
}

}  // namespace

int main() {
  // A HAI-like table arriving as a stream of micro-batches.
  HospitalConfig config;
  config.num_hospitals = 40;
  config.num_measures = 10;
  Workload wl = *MakeHospitalWorkload(config);
  ErrorSpec spec;
  spec.error_rate = 0.05;
  spec.seed = 21;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);
  const size_t kBatches = 8;
  std::vector<Dataset> batches = SplitIntoBatches(dd.dirty, kBatches);
  std::printf("%zu tuples arriving as %zu micro-batches of ~%zu rows\n",
              dd.dirty.num_rows(), batches.size(), batches[0].num_rows());

  // Build-once phase: compile the rules and warm the weight store.
  CleaningOptions options;
  options.agp_threshold = 3;
  CleaningEngine engine(options);
  CleanModel model = *engine.Compile(dd.dirty.schema(), wl.rules);
  Status warmed = model.Warm(batches[0]);
  if (!warmed.ok()) {
    std::printf("warmup failed: %s\n", warmed.ToString().c_str());
    return 1;
  }
  std::printf("Model compiled: %zu rules, %zu stored γ weights after warmup\n",
              model.rules().size(), model.num_stored_weights());

  // Serve the stream twice: cold (a fresh learner per batch, what the
  // deprecated one-shot facade does) vs warm (stored weights reused).
  Timer cold_timer;
  for (const Dataset& batch : batches) {
    MlnCleanPipeline cleaner(options);
    CleanResult result = *cleaner.Clean(batch, wl.rules);
    (void)result;
  }
  double cold_seconds = cold_timer.ElapsedSeconds();

  // Trace collection stays on in both arms so the printed delta is the
  // amortized compile+learn cost, nothing else (collect_report=false is a
  // further serving win when the trace is never read).
  SessionOptions serve;
  serve.reuse_model_weights = true;
  Timer warm_timer;
  for (const Dataset& batch : batches) {
    CleanResult result = *model.Clean(batch, serve);
    (void)result;
  }
  double warm_seconds = warm_timer.ElapsedSeconds();
  std::printf("\n%zu batches cold: %.3f ms   prepared model: %.3f ms (%.2fx)\n",
              batches.size(), 1e3 * cold_seconds, 1e3 * warm_seconds,
              cold_seconds / warm_seconds);

  // Staged execution: progress callbacks per stage, and a CancelToken that
  // aborts the run between blocks/shards.
  SessionOptions staged;
  staged.progress = [](const StageProgress& p) {
    if (p.units_done == p.units_total) {
      std::printf("  stage %-5s done (%zu units, %.2f ms)\n", StageName(p.stage),
                  p.units_total, 1e3 * p.seconds);
    }
  };
  CleanSession session = model.NewSession(batches[1], staged);
  session.RunUntil(Stage::kLearn);  // pause after stage I learning...
  std::printf("  ...paused at %s; resuming\n", StageName(session.next_stage()));
  session.Resume();  // ...and finish the plan
  CleanResult streamed = *session.TakeResult();
  std::printf("Batch 2 served: %zu rows, %zu duplicates removed\n",
              streamed.cleaned.num_rows(),
              streamed.cleaned.num_rows() - streamed.deduped.num_rows());

  SessionOptions doomed;
  doomed.cancel = CancelToken();
  doomed.cancel.RequestCancel();
  Status cancelled = model.NewSession(batches[2], doomed).Resume();
  std::printf("Cancelled session reports: %s\n", cancelled.ToString().c_str());
  return 0;
}
