// Domain example: distributed MLNClean (Section 6) on a TPC-H-like
// dataset — Algorithm 3 partitioning, per-part cleaning on a worker pool,
// Eq. 6 global weight adjustment, and the gather phase.
//
//   $ ./examples/distributed_cleaning

#include <cstdio>

#include "mlnclean/mlnclean.h"

using namespace mlnclean;

int main() {
  TpchConfig config;
  config.num_customers = 200;
  config.num_rows = 8000;
  Workload wl = *MakeTpchWorkload(config);
  std::printf("TPC-H-like dataset: %zu tuples, rule: %s\n", wl.clean.num_rows(),
              wl.rules.rule(0).ToString(wl.rules.schema()).c_str());

  ErrorSpec spec;
  spec.error_rate = 0.05;
  spec.seed = 13;
  DirtyDataset dd = *InjectErrors(wl.clean, wl.rules, spec);

  DistributedOptions opts;
  opts.num_parts = 8;
  opts.num_workers = 2;
  opts.cleaning.agp_threshold = 3;
  DistributedMlnClean cleaner(opts);
  DistributedResult result = *cleaner.Clean(dd.dirty, wl.rules);

  RepairMetrics m = EvaluateRepair(dd.dirty, result.cleaned, dd.truth);
  std::printf("\nDistributed run: %zu parts, %zu workers\n", opts.num_parts,
              opts.num_workers);
  std::printf("  F1 %.3f  (precision %.3f, recall %.3f)\n", m.F1(), m.Precision(),
              m.Recall());
  std::printf("  wall clock %.3f s; %zu globally merged γ weights (Eq. 6)\n",
              result.wall_seconds, result.global_weights);
  std::printf("  per-part cost (s):");
  for (double s : result.part_seconds) std::printf(" %.3f", s);
  std::printf("\n  simulated makespan: 2 workers %.3f s, 10 workers %.3f s\n",
              result.SimulatedMakespan(2), result.SimulatedMakespan(10));
  return 0;
}
