#include "discovery/fd_miner.h"

#include <algorithm>
#include <set>
#include <utility>

#include "discovery/partition.h"

namespace mlnclean {

namespace {

// One lattice node: an ascending attribute set with its partition.
struct LatticeNode {
  std::vector<AttrId> attrs;
  StrippedPartition part;
};

// A level-(k+1) candidate before its partition exists: parent node to
// refine plus the attribute the join added.
struct Candidate {
  std::vector<AttrId> attrs;
  size_t parent = 0;
  AttrId refine_attr = 0;
};

// Everything one node contributes, filled under ParallelFor and merged
// in node order.
struct NodeResult {
  bool kept = false;  // survived min_support; expands into the next level
  StrippedPartition part;
  std::vector<MinedFd> fds;
  std::vector<MinedCfd> cfds;
};

// True when some mined FD's lhs is a subset of `attrs` with result `rhs`
// (the minimality test). Both attr lists are ascending.
bool CoveredByMined(const std::vector<MinedFd>& mined, const std::vector<AttrId>& attrs,
                    AttrId rhs) {
  for (const MinedFd& fd : mined) {
    if (fd.rhs != rhs) continue;
    if (std::includes(attrs.begin(), attrs.end(), fd.lhs.begin(), fd.lhs.end())) {
      return true;
    }
  }
  return false;
}

// Evaluates one surviving node: examines every eligible result attribute,
// emitting an FD when the global confidence bar is met and otherwise
// (optionally) constant-pattern CFDs from its consistent groups.
void MineNode(const Dataset& data, const DiscoveryOptions& options,
              const std::vector<AttrId>& attrs, const std::vector<MinedFd>& mined_prev,
              double support, NodeResult* out) {
  const size_t num_attrs = data.schema().num_attrs();
  const size_t covered = out->part.covered();
  for (size_t a = 0; a < num_attrs; ++a) {
    const AttrId rhs = static_cast<AttrId>(a);
    if (std::binary_search(attrs.begin(), attrs.end(), rhs)) continue;
    if (CoveredByMined(mined_prev, attrs, rhs)) continue;

    const std::vector<ValueId>& rhs_col = data.column(rhs);
    const FdEval eval = EvaluateFd(out->part, rhs_col, data.dict(rhs).size());
    const double confidence =
        covered > 0 ? static_cast<double>(eval.agree) / static_cast<double>(covered)
                    : 0.0;
    if (confidence >= options.min_confidence) {
      out->fds.push_back(MinedFd{attrs, rhs, support, confidence});
      continue;
    }
    if (!options.mine_cfds) continue;

    // The FD failed globally; mine the groups where it holds locally.
    for (size_t g = 0; g < out->part.num_groups(); ++g) {
      const size_t rows = out->part.group_size(g);
      if (rows < options.min_cfd_support) continue;
      const double group_conf =
          static_cast<double>(eval.majority_count[g]) / static_cast<double>(rows);
      if (group_conf < options.min_cfd_confidence) continue;
      if (eval.majority_id[g] == kNullValueId) continue;  // never repair to NULL

      // Pattern constants come off the group's first row; NULL constants
      // make degenerate patterns and are skipped.
      const uint32_t row0 = out->part.group_rows(g)[0];
      std::vector<ValueId> lhs_ids;
      lhs_ids.reserve(attrs.size());
      bool has_null = false;
      for (AttrId attr : attrs) {
        const ValueId id = data.column(attr)[row0];
        if (id == kNullValueId) {
          has_null = true;
          break;
        }
        lhs_ids.push_back(id);
      }
      if (has_null) continue;
      out->cfds.push_back(MinedCfd{attrs, std::move(lhs_ids), rhs, eval.majority_id[g],
                                   rows, eval.majority_count[g]});
    }
  }
}

}  // namespace

Result<FdMinerOutput> MineFds(const Dataset& data, const DiscoveryOptions& options,
                              const ExecContext& ctx) {
  FdMinerOutput out;
  const size_t n = data.num_rows();
  const size_t num_attrs = data.schema().num_attrs();
  if (n < 2 || num_attrs < 2) return out;

  // Level 1: one candidate per attribute, partitioned from its column.
  std::vector<Candidate> candidates;
  candidates.reserve(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    candidates.push_back(Candidate{{static_cast<AttrId>(a)}, 0, static_cast<AttrId>(a)});
  }

  std::vector<LatticeNode> frontier;  // kept nodes of the previous level
  for (size_t level = 1; level <= options.max_lhs && !candidates.empty(); ++level) {
    // Node work in parallel, one result slot per node; `out.fds` is
    // frozen for the whole level, so minimality tests inside the loop
    // see identical state regardless of scheduling.
    std::vector<NodeResult> slots(candidates.size());
    ParallelFor(candidates.size(), ctx, [&](size_t i) {
      if (ctx.Stopped()) return;
      const Candidate& cand = candidates[i];
      NodeResult& slot = slots[i];
      if (level == 1) {
        slot.part = StrippedPartition::FromColumn(data.column(cand.refine_attr),
                                                  data.dict(cand.refine_attr).size());
      } else {
        slot.part = frontier[cand.parent].part.Refine(
            data.column(cand.refine_attr), data.dict(cand.refine_attr).size());
      }
      const double support =
          static_cast<double>(slot.part.covered()) / static_cast<double>(n);
      if (support < options.min_support) return;  // anti-monotone: prune subtree
      slot.kept = true;
      MineNode(data, options, cand.attrs, out.fds, support, &slot);
      ctx.Tick(1);
    });
    if (ctx.Stopped()) return ctx.StopStatus("rule discovery");

    // Deterministic merge in node order.
    std::vector<LatticeNode> kept;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].kept) continue;
      out.fds.insert(out.fds.end(), slots[i].fds.begin(), slots[i].fds.end());
      out.cfds.insert(out.cfds.end(), std::make_move_iterator(slots[i].cfds.begin()),
                      std::make_move_iterator(slots[i].cfds.end()));
      kept.push_back(LatticeNode{std::move(candidates[i].attrs), std::move(slots[i].part)});
    }
    frontier = std::move(kept);

    // Next level via the apriori join: nodes sharing a (k-1)-prefix, in
    // lexicographic order, with the all-subsets-survived check.
    candidates.clear();
    if (level == options.max_lhs) break;
    std::set<std::vector<AttrId>> survived;
    for (const LatticeNode& node : frontier) survived.insert(node.attrs);
    for (size_t i = 0; i < frontier.size(); ++i) {
      for (size_t j = i + 1; j < frontier.size(); ++j) {
        const std::vector<AttrId>& a = frontier[i].attrs;
        const std::vector<AttrId>& b = frontier[j].attrs;
        if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1)) continue;
        if (a.back() >= b.back()) continue;
        std::vector<AttrId> child = a;
        child.push_back(b.back());
        bool all_survived = true;
        std::vector<AttrId> sub;
        for (size_t drop = 0; all_survived && drop < child.size(); ++drop) {
          sub.clear();
          for (size_t t = 0; t < child.size(); ++t) {
            if (t != drop) sub.push_back(child[t]);
          }
          if (survived.find(sub) == survived.end()) all_survived = false;
        }
        if (!all_survived) continue;
        candidates.push_back(Candidate{std::move(child), i, b.back()});
      }
    }
  }
  return out;
}

}  // namespace mlnclean
