#include "discovery/partition.h"

namespace mlnclean {

StrippedPartition StrippedPartition::FromColumn(const std::vector<ValueId>& col,
                                                size_t dict_size) {
  // Counting sort by ValueId: one pass to size the groups, one to place
  // the rows. Groups with fewer than two rows are stripped.
  std::vector<uint32_t> counts(dict_size, 0);
  for (ValueId id : col) ++counts[id];

  StrippedPartition out;
  out.offsets_.push_back(0);
  // start[id] = write cursor of id's group inside rows_, or kSkip.
  constexpr uint32_t kSkip = ~uint32_t{0};
  std::vector<uint32_t> start(dict_size, kSkip);
  size_t total = 0;
  for (size_t id = 0; id < dict_size; ++id) {
    if (counts[id] < 2) continue;
    start[id] = static_cast<uint32_t>(total);
    total += counts[id];
    out.offsets_.push_back(static_cast<uint32_t>(total));
  }
  out.rows_.resize(total);
  for (size_t row = 0; row < col.size(); ++row) {
    uint32_t& cursor = start[col[row]];
    if (cursor == kSkip) continue;
    out.rows_[cursor++] = static_cast<uint32_t>(row);
  }
  return out;
}

StrippedPartition StrippedPartition::Refine(const std::vector<ValueId>& col,
                                            size_t dict_size) const {
  StrippedPartition out;
  out.offsets_.push_back(0);
  out.rows_.reserve(rows_.size());
  // Per parent group: bucket its rows by the refining column's id. The
  // scratch maps an id to its bucket slot and is reset via the touched
  // list, so the cost per group is proportional to the group, not to the
  // dictionary.
  constexpr uint32_t kUnseen = ~uint32_t{0};
  std::vector<uint32_t> bucket_of(dict_size, kUnseen);
  std::vector<ValueId> touched;
  std::vector<std::vector<uint32_t>> buckets;  // reused across groups
  for (size_t g = 0; g < num_groups(); ++g) {
    const uint32_t* rows = group_rows(g);
    const size_t n = group_size(g);
    size_t used = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint32_t row = rows[i];
      const ValueId id = col[row];
      uint32_t b = bucket_of[id];
      if (b == kUnseen) {
        b = static_cast<uint32_t>(used++);
        bucket_of[id] = b;
        touched.push_back(id);
        if (buckets.size() < used) buckets.emplace_back();
        buckets[b].clear();
      }
      buckets[b].push_back(row);
    }
    // Sub-groups in first-row order (bucket creation order); rows within
    // a bucket inherit the parent's ascending order.
    for (size_t b = 0; b < used; ++b) {
      if (buckets[b].size() < 2) continue;
      out.rows_.insert(out.rows_.end(), buckets[b].begin(), buckets[b].end());
      out.offsets_.push_back(static_cast<uint32_t>(out.rows_.size()));
    }
    for (ValueId id : touched) bucket_of[id] = kUnseen;
    touched.clear();
  }
  return out;
}

FdEval EvaluateFd(const StrippedPartition& lhs, const std::vector<ValueId>& rhs_col,
                  size_t rhs_dict_size) {
  FdEval eval;
  eval.majority_id.reserve(lhs.num_groups());
  eval.majority_count.reserve(lhs.num_groups());
  std::vector<uint32_t> counts(rhs_dict_size, 0);
  std::vector<ValueId> touched;
  for (size_t g = 0; g < lhs.num_groups(); ++g) {
    const uint32_t* rows = lhs.group_rows(g);
    const size_t n = lhs.group_size(g);
    ValueId best_id = rhs_col[rows[0]];
    uint32_t best = 0;
    for (size_t i = 0; i < n; ++i) {
      const ValueId id = rhs_col[rows[i]];
      if (counts[id] == 0) touched.push_back(id);
      const uint32_t c = ++counts[id];
      // Strictly greater: ties go to the id that reaches the majority
      // count first in row order (deterministic).
      if (c > best) {
        best = c;
        best_id = id;
      }
    }
    for (ValueId id : touched) counts[id] = 0;
    touched.clear();
    eval.agree += best;
    eval.majority_id.push_back(best_id);
    eval.majority_count.push_back(best);
  }
  return eval;
}

}  // namespace mlnclean
