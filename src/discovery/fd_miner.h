// Level-wise lattice search for approximate FDs and constant-pattern
// CFDs (TANE/CTane family). Level k holds attribute sets of size k; each
// node carries the stripped partition of its set, built by refining a
// level-(k-1) parent partition with one column (discovery/partition.h).
//
// Pruning:
//  * support is anti-monotone under refinement (a child partition covers
//    a subset of its parent's rows), so nodes below min_support are cut
//    from the lattice entirely — this is also what kills keys/near-keys;
//  * minimality: a result attribute A is not re-examined at X when some
//    already-mined Y -> A with Y ⊆ X exists (the superset FD is implied);
//  * apriori: a level-(k+1) candidate is generated only when all of its
//    k-subsets survived.
//
// CFDs are mined where an FD *fails*: when X -> A misses the global
// confidence bar, individual X-groups that are large and internally
// consistent become constant patterns X=c1,..,ck -> A=b (CTane's
// constant-CFD specialization, restricted to all-constant patterns —
// the fragment the cleaning engine's scope filters execute well).
//
// The per-level node work runs under ParallelFor into per-node result
// slots merged in node order, so the mined lists are identical for any
// thread count; cancellation is polled at node and level boundaries.

#ifndef MLNCLEAN_DISCOVERY_FD_MINER_H_
#define MLNCLEAN_DISCOVERY_FD_MINER_H_

#include <vector>

#include "common/executor.h"
#include "common/result.h"
#include "dataset/dataset.h"
#include "discovery/discovery.h"

namespace mlnclean {

/// An approximate FD mined from the lattice. `lhs` is ascending.
struct MinedFd {
  std::vector<AttrId> lhs;
  AttrId rhs = 0;
  double support = 0.0;
  double confidence = 0.0;
};

/// A constant-pattern CFD candidate: the rows of one LHS group, its
/// constants as ValueIds (resolved to strings by the caller), and the
/// majority result value. `lhs` is ascending; `lhs_ids` is parallel to it.
struct MinedCfd {
  std::vector<AttrId> lhs;
  std::vector<ValueId> lhs_ids;
  AttrId rhs = 0;
  ValueId rhs_id = kNullValueId;
  size_t rows = 0;   // size of the pattern group
  size_t agree = 0;  // rows matching the majority result value
};

/// FD/CFD candidates in deterministic lattice order (level, then node in
/// lexicographic attr order, then result attribute ascending, then —
/// for CFDs — pattern-group order).
struct FdMinerOutput {
  std::vector<MinedFd> fds;
  std::vector<MinedCfd> cfds;
};

/// Runs the lattice search over `data`'s ValueId columns. Reads only the
/// lattice knobs of `options` (max_lhs, min_support, min_confidence,
/// mine_cfds, min_cfd_*); parallelism and cancellation come from `ctx`.
Result<FdMinerOutput> MineFds(const Dataset& data, const DiscoveryOptions& options,
                              const ExecContext& ctx);

}  // namespace mlnclean

#endif  // MLNCLEAN_DISCOVERY_FD_MINER_H_
