// Stripped partitions over dictionary-encoded columns: the workhorse of
// the TANE-style lattice search in fd_miner. The partition of an
// attribute set X groups tuples by their X-values; *stripped* drops the
// singleton groups, which carry no dependency evidence (a tuple with no
// X-partner can neither confirm nor violate X -> A). On the columnar
// Dataset this is cheap: groups key on dense ValueIds, so building a
// partition is a counting pass and refining one is a bucket split — no
// string bytes are touched anywhere in the lattice.
//
// The measures mined from a partition follow the approximate-dependency
// literature (g3-style): for X -> A,
//   support    = |tuples in multi-tuple X-groups| / |R|
//   confidence = Σ_g max_a |{t in g : t[A] = a}| / Σ_g |g|
// i.e. confidence counts, among tuples that do have an X-partner, the
// fraction that agree with their group's majority A-value — the tuples a
// repair of A towards the majority would keep. Singleton groups are
// excluded from both sides, so a near-key LHS cannot ride trivially
// satisfied groups to a high confidence.

#ifndef MLNCLEAN_DISCOVERY_PARTITION_H_
#define MLNCLEAN_DISCOVERY_PARTITION_H_

#include <cstdint>
#include <vector>

#include "dataset/value_dict.h"

namespace mlnclean {

/// A stripped partition: the multi-tuple groups of one attribute set, in
/// CSR layout. Group order and within-group row order are deterministic
/// (construction order; rows ascending within a group), so every
/// downstream consumer — including the parallel lattice — sees identical
/// partitions regardless of thread count.
class StrippedPartition {
 public:
  /// Partition of a single attribute from its column. Groups appear in
  /// ValueId order; rows within a group keep column order (ascending).
  static StrippedPartition FromColumn(const std::vector<ValueId>& col,
                                      size_t dict_size);

  /// Partition of X ∪ {B} from this partition of X and B's column: every
  /// group splits by the B-value of its rows; sub-groups of size one are
  /// stripped. Child groups keep parent-group order, sub-groups within a
  /// parent appear in first-row order.
  StrippedPartition Refine(const std::vector<ValueId>& col, size_t dict_size) const;

  size_t num_groups() const { return offsets_.size() - 1; }
  /// Number of tuples in the partition (all groups have size >= 2).
  size_t covered() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const uint32_t* group_rows(size_t g) const { return rows_.data() + offsets_[g]; }
  size_t group_size(size_t g) const { return offsets_[g + 1] - offsets_[g]; }

 private:
  std::vector<uint32_t> rows_;      // tuple ids, grouped
  std::vector<uint32_t> offsets_;   // num_groups + 1 entries
};

/// Agreement of a partition of X with a result column: per group, the
/// size of the largest single-A-value subset ("keepers" under a
/// majority repair), plus each group's majority value.
struct FdEval {
  /// Σ_g max-count; confidence = agree / partition.covered().
  size_t agree = 0;
  /// Per group: the majority ValueId of the result column (ties: the id
  /// that reaches the majority count first in group row order) and its
  /// count.
  std::vector<ValueId> majority_id;
  std::vector<uint32_t> majority_count;
};

/// Evaluates X -> A on π(X) and A's column in one pass over the rows.
FdEval EvaluateFd(const StrippedPartition& lhs, const std::vector<ValueId>& rhs_col,
                  size_t rhs_dict_size);

}  // namespace mlnclean

#endif  // MLNCLEAN_DISCOVERY_PARTITION_H_
