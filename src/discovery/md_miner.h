// Matching-dependency miner (Bertossi et al. semantics): for attribute
// pairs (L, R), find the largest similarity radius t such that tuple
// pairs whose L-values are within normalized distance t — but not equal —
// still agree on R with high probability. Equal L-values are excluded on
// both sides of the estimate: they are the FD signal, already mined by
// the lattice; an MD is evidence that *near*-equality predicts agreement,
// which is what justifies the AGP/RSC similarity thresholds.
//
// Pairs are sampled once, sequentially, from a seeded Rng (all pairs when
// the table is small enough), then measured in fixed-size chunks under
// ParallelFor; per-chunk counts are integers, so the merged totals are
// identical for any thread count.

#ifndef MLNCLEAN_DISCOVERY_MD_MINER_H_
#define MLNCLEAN_DISCOVERY_MD_MINER_H_

#include <vector>

#include "common/executor.h"
#include "common/result.h"
#include "dataset/dataset.h"
#include "discovery/discovery.h"

namespace mlnclean {

/// Mines matching dependencies over `data`. Reads the md_* knobs of
/// `options`; parallelism and cancellation come from `ctx`. Results are
/// ordered lhs attr ascending, then rhs attr ascending.
Result<std::vector<MatchingDependency>> MineMatchingDependencies(
    const Dataset& data, const DiscoveryOptions& options, const ExecContext& ctx);

}  // namespace mlnclean

#endif  // MLNCLEAN_DISCOVERY_MD_MINER_H_
