#include "discovery/md_miner.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/distance.h"
#include "common/random.h"

namespace mlnclean {

namespace {

// Pair-measurement chunk size: big enough to amortize task dispatch,
// small enough to spread across workers.
constexpr size_t kPairChunk = 1024;

// Per-chunk counters, merged by integer addition (order-independent).
struct ChunkCounts {
  // sim[L * T + ti]: pairs with 0 < d(L) <= thresholds[ti].
  std::vector<uint64_t> sim;
  // match[(L * m + R) * T + ti]: of those, pairs with equal R values.
  std::vector<uint64_t> match;
};

}  // namespace

Result<std::vector<MatchingDependency>> MineMatchingDependencies(
    const Dataset& data, const DiscoveryOptions& options, const ExecContext& ctx) {
  std::vector<MatchingDependency> out;
  const size_t n = data.num_rows();
  const size_t m = data.schema().num_attrs();
  const size_t num_t = options.md_thresholds.size();
  if (n < 2 || m < 2 || num_t == 0) return out;

  // The pair sample, drawn once and sequentially so neither the executor
  // nor the thread count can change which pairs are measured.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  const size_t all_pairs = n * (n - 1) / 2;
  if (all_pairs <= options.md_max_pairs) {
    pairs.reserve(all_pairs);
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
    }
  } else {
    Rng rng(options.md_seed);
    pairs.reserve(options.md_max_pairs);
    while (pairs.size() < options.md_max_pairs) {
      const uint32_t i = static_cast<uint32_t>(rng.NextIndex(n));
      const uint32_t j = static_cast<uint32_t>(rng.NextIndex(n));
      if (i != j) pairs.emplace_back(std::min(i, j), std::max(i, j));
    }
  }

  const DistanceFn dist = MakeNormalizedDistanceFn(options.md_metric);
  const size_t num_chunks = (pairs.size() + kPairChunk - 1) / kPairChunk;
  std::vector<ChunkCounts> slots(num_chunks);
  ParallelFor(num_chunks, ctx, [&](size_t c) {
    if (ctx.Stopped()) return;
    ChunkCounts& counts = slots[c];
    counts.sim.assign(m * num_t, 0);
    counts.match.assign(m * m * num_t, 0);
    std::vector<bool> equal(m);
    std::vector<double> d(m);
    const size_t begin = c * kPairChunk;
    const size_t end = std::min(begin + kPairChunk, pairs.size());
    for (size_t p = begin; p < end; ++p) {
      const auto [u, v] = pairs[p];
      for (size_t a = 0; a < m; ++a) {
        const AttrId attr = static_cast<AttrId>(a);
        const std::vector<ValueId>& col = data.column(attr);
        const ValueId iu = col[u];
        const ValueId iv = col[v];
        equal[a] = iu == iv;
        d[a] = equal[a] ? 0.0
                        : dist(data.dict(attr).value(iu), data.dict(attr).value(iv));
      }
      for (size_t l = 0; l < m; ++l) {
        if (equal[l]) continue;  // equal lhs values are FD evidence, not MD
        for (size_t ti = 0; ti < num_t; ++ti) {
          if (d[l] > options.md_thresholds[ti]) continue;
          ++counts.sim[l * num_t + ti];
          for (size_t r = 0; r < m; ++r) {
            if (r != l && equal[r]) ++counts.match[(l * m + r) * num_t + ti];
          }
        }
      }
    }
    ctx.Tick(end - begin);
  });
  if (ctx.Stopped()) return ctx.StopStatus("matching-dependency mining");

  std::vector<uint64_t> sim(m * num_t, 0);
  std::vector<uint64_t> match(m * m * num_t, 0);
  for (const ChunkCounts& counts : slots) {
    if (counts.sim.empty()) continue;
    for (size_t i = 0; i < sim.size(); ++i) sim[i] += counts.sim[i];
    for (size_t i = 0; i < match.size(); ++i) match[i] += counts.match[i];
  }

  // Per (L, R): the largest radius that still meets the confidence bar.
  for (size_t l = 0; l < m; ++l) {
    for (size_t r = 0; r < m; ++r) {
      if (r == l) continue;
      for (size_t ti = num_t; ti-- > 0;) {
        const uint64_t s = sim[l * num_t + ti];
        const uint64_t mt = match[(l * m + r) * num_t + ti];
        if (s < options.md_min_pairs) continue;
        const double confidence = static_cast<double>(mt) / static_cast<double>(s);
        if (confidence < options.md_min_confidence) continue;
        MatchingDependency md;
        md.lhs_attr = static_cast<AttrId>(l);
        md.rhs_attr = static_cast<AttrId>(r);
        md.threshold = options.md_thresholds[ti];
        md.similar_pairs = static_cast<size_t>(s);
        md.matching_pairs = static_cast<size_t>(mt);
        md.confidence = confidence;
        out.push_back(std::move(md));
        break;
      }
    }
  }
  return out;
}

}  // namespace mlnclean
