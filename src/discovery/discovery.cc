#include "discovery/discovery.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <thread>
#include <utility>

#include "cleaning/engine.h"
#include "common/status.h"
#include "discovery/fd_miner.h"
#include "discovery/md_miner.h"

namespace mlnclean {

size_t DiscoveryOptions::ResolvedNumThreads() const {
  if (num_threads != 0) return num_threads;
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

Executor* DiscoveryOptions::ResolvedExecutor() const {
  if (executor != nullptr) return executor;
  return ResolvedNumThreads() <= 1 ? SequentialExecutor() : ProcessExecutor();
}

Status DiscoveryOptions::Validate() const {
  if (max_lhs < 1 || max_lhs > 8) {
    return Status::Invalid("max_lhs must be in [1, 8]");
  }
  if (min_support < 0.0 || min_support > 1.0) {
    return Status::Invalid("min_support must be in [0, 1]");
  }
  if (min_confidence < 0.0 || min_confidence > 1.0) {
    return Status::Invalid("min_confidence must be in [0, 1]");
  }
  if (min_cfd_support < 2) {
    return Status::Invalid("min_cfd_support must be >= 2 (a one-row pattern is noise)");
  }
  if (min_cfd_confidence < 0.0 || min_cfd_confidence > 1.0) {
    return Status::Invalid("min_cfd_confidence must be in [0, 1]");
  }
  if (max_rules < 1) {
    return Status::Invalid("max_rules must be >= 1");
  }
  if (mine_mds) {
    if (md_thresholds.empty()) {
      return Status::Invalid("md_thresholds must be non-empty when mine_mds is set");
    }
    double prev = 0.0;
    for (double t : md_thresholds) {
      if (t <= 0.0 || t > 1.0) {
        return Status::Invalid("md_thresholds entries must be in (0, 1]");
      }
      if (t <= prev && prev != 0.0) {
        return Status::Invalid("md_thresholds must be strictly ascending");
      }
      prev = t;
    }
    if (md_max_pairs < 1) {
      return Status::Invalid("md_max_pairs must be >= 1");
    }
    if (md_min_pairs < 1) {
      return Status::Invalid("md_min_pairs must be >= 1");
    }
    if (md_min_confidence < 0.0 || md_min_confidence > 1.0) {
      return Status::Invalid("md_min_confidence must be in [0, 1]");
    }
  }
  if (score_with_mln) {
    if (mln_sample_rows < 2) {
      return Status::Invalid("mln_sample_rows must be >= 2");
    }
    if (min_mln_score < 0.0 || min_mln_score > 1.0) {
      return Status::Invalid("min_mln_score must be in [0, 1]");
    }
  }
  return Status::OK();
}

std::string MatchingDependency::ToString(const Schema& schema) const {
  char radius[32];
  std::snprintf(radius, sizeof(radius), "%g", threshold);
  return "MD: " + schema.name(lhs_attr) + "~" + radius + " -> " + schema.name(rhs_attr);
}

namespace {

// Builds the Constraint for one lattice candidate. FDs carry their attrs
// directly; CFDs resolve their pattern ids back to value strings.
Result<Constraint> MakeCandidate(const Dataset& data, const MinedFd& fd) {
  return Constraint::MakeFd(data.schema(), fd.lhs, {fd.rhs});
}

Result<Constraint> MakeCandidate(const Dataset& data, const MinedCfd& cfd) {
  std::vector<CfdPattern> lhs;
  lhs.reserve(cfd.lhs.size());
  for (size_t i = 0; i < cfd.lhs.size(); ++i) {
    lhs.push_back(CfdPattern{cfd.lhs[i], data.dict(cfd.lhs[i]).value(cfd.lhs_ids[i])});
  }
  std::vector<CfdPattern> rhs{CfdPattern{cfd.rhs, data.dict(cfd.rhs).value(cfd.rhs_id)}};
  return Constraint::MakeCfd(data.schema(), std::move(lhs), std::move(rhs));
}

// Scores every candidate through a trial-warmed model: index + AGP +
// weight learning on `sample`, then per rule the support-weighted star
// purity of its conflicted (multi-γ) groups. A rule with no conflicted
// groups on the sample is uncontested and scores 1.0.
Status ScoreWithMln(const Dataset& sample, const RuleSet& candidates,
                    const DiscoveryOptions& options, std::vector<double>* scores) {
  CleaningOptions copts;
  copts.num_threads = options.num_threads;
  copts.executor = options.executor;
  CleaningEngine engine(copts);
  MLN_ASSIGN_OR_RETURN(CleanModel model, engine.Compile(sample.schema(), candidates));
  SessionOptions sopts;
  sopts.cancel = options.cancel;
  sopts.collect_report = false;
  CleanSession session = model.NewSession(sample, std::move(sopts));
  MLN_RETURN_NOT_OK(session.RunUntil(Stage::kLearn));
  for (const Block& block : session.index().blocks()) {
    double purity_mass = 0.0;
    double tuple_mass = 0.0;
    for (const Group& group : block.groups) {
      if (group.pieces.size() < 2) continue;
      double wmax = 0.0;
      double wsum = 0.0;
      for (const Piece& piece : group.pieces) {
        wmax = std::max(wmax, piece.weight);
        wsum += piece.weight;
      }
      if (wsum <= 0.0) continue;
      const double count = static_cast<double>(group.TupleCount());
      purity_mass += (wmax / wsum) * count;
      tuple_mass += count;
    }
    (*scores)[block.rule_index] = tuple_mass > 0.0 ? purity_mass / tuple_mass : 1.0;
  }
  return Status::OK();
}

}  // namespace

Result<DiscoveryResult> DiscoverRules(const Dataset& data,
                                      const DiscoveryOptions& options) {
  MLN_RETURN_NOT_OK(options.Validate());
  DiscoveryResult result(data.schema());

  ExecContext ctx;
  ctx.executor = options.ResolvedExecutor();
  ctx.max_workers = options.ResolvedNumThreads();
  ctx.cancel = options.cancel.flag();

  MLN_ASSIGN_OR_RETURN(FdMinerOutput lattice, MineFds(data, options, ctx));
  if (options.mine_mds) {
    MLN_ASSIGN_OR_RETURN(result.mds, MineMatchingDependencies(data, options, ctx));
  }

  // Candidate constraints in lattice order, with their measures.
  const double n = static_cast<double>(data.num_rows());
  std::vector<Constraint> candidates;
  for (const MinedFd& fd : lattice.fds) {
    MLN_ASSIGN_OR_RETURN(Constraint c, MakeCandidate(data, fd));
    MinedRuleInfo info;
    info.text = c.CanonicalText(data.schema());
    info.kind = RuleKind::kFd;
    info.support = fd.support;
    info.confidence = fd.confidence;
    candidates.push_back(std::move(c));
    result.mined.push_back(std::move(info));
  }
  for (const MinedCfd& cfd : lattice.cfds) {
    MLN_ASSIGN_OR_RETURN(Constraint c, MakeCandidate(data, cfd));
    MinedRuleInfo info;
    info.text = c.CanonicalText(data.schema());
    info.kind = RuleKind::kCfd;
    info.support = n > 0.0 ? static_cast<double>(cfd.rows) / n : 0.0;
    info.confidence =
        cfd.rows > 0 ? static_cast<double>(cfd.agree) / static_cast<double>(cfd.rows)
                     : 0.0;
    candidates.push_back(std::move(c));
    result.mined.push_back(std::move(info));
  }

  // Trial warm: compile all candidates at once and let the learned index
  // say which rules concentrate weight.
  std::vector<double> scores(candidates.size(), 1.0);
  if (options.score_with_mln && !candidates.empty()) {
    const Dataset sample =
        data.Slice(0, std::min(data.num_rows(), options.mln_sample_rows));
    RuleSet trial(data.schema());
    for (const Constraint& c : candidates) trial.Add(c);
    MLN_RETURN_NOT_OK(ScoreWithMln(sample, trial, options, &scores));
    result.sample_rows = sample.num_rows();
  }

  std::vector<bool> keep(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    keep[i] = scores[i] >= options.min_mln_score || !options.score_with_mln;
  }

  // Determinant selection: per result attribute, the top
  // max_fds_per_result FDs by (confidence, support, lattice order).
  if (options.max_fds_per_result > 0) {
    std::map<AttrId, std::vector<size_t>> fds_of;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (keep[i] && result.mined[i].kind == RuleKind::kFd) {
        fds_of[candidates[i].result_attrs()[0]].push_back(i);
      }
    }
    for (auto& [rhs, idx] : fds_of) {
      std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
        if (result.mined[a].confidence != result.mined[b].confidence) {
          return result.mined[a].confidence > result.mined[b].confidence;
        }
        if (result.mined[a].support != result.mined[b].support) {
          return result.mined[a].support > result.mined[b].support;
        }
        return a < b;
      });
      for (size_t r = options.max_fds_per_result; r < idx.size(); ++r) {
        keep[idx[r]] = false;
      }
    }
  }

  // CFDs only where no global determinant survived.
  if (options.cfds_only_without_fd) {
    std::set<AttrId> has_fd;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (keep[i] && result.mined[i].kind == RuleKind::kFd) {
        has_fd.insert(candidates[i].result_attrs()[0]);
      }
    }
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (keep[i] && result.mined[i].kind == RuleKind::kCfd &&
          has_fd.count(candidates[i].result_attrs()[0]) > 0) {
        keep[i] = false;
      }
    }
  }

  // max_rules cap: lowest support goes first, later lattice order first
  // among equals.
  size_t kept_count = 0;
  for (bool k : keep) kept_count += k ? 1 : 0;
  if (kept_count > options.max_rules) {
    std::vector<size_t> kept_idx;
    for (size_t i = 0; i < keep.size(); ++i) {
      if (keep[i]) kept_idx.push_back(i);
    }
    std::stable_sort(kept_idx.begin(), kept_idx.end(), [&](size_t a, size_t b) {
      if (result.mined[a].support != result.mined[b].support) {
        return result.mined[a].support > result.mined[b].support;
      }
      return a < b;
    });
    for (size_t r = options.max_rules; r < kept_idx.size(); ++r) {
      keep[kept_idx[r]] = false;
    }
  }

  for (size_t i = 0; i < candidates.size(); ++i) {
    result.mined[i].mln_score = scores[i];
    result.mined[i].kept = keep[i];
    if (keep[i]) result.rules.Add(std::move(candidates[i]));
  }
  return result;
}

}  // namespace mlnclean
