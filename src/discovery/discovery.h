// Rule discovery: mine a RuleSet directly from (dirty) data, so the
// cleaning pipeline can run without hand-written constraints.
//
// Three passes, all deterministic for any executor/thread count:
//
//  1. A TANE/CTane-style level-wise lattice search over the
//     dictionary-encoded columns (discovery/fd_miner) proposes
//     approximate FDs X -> A and constant-pattern CFDs
//     X=c1,..,ck -> A=b, measured by stripped-partition support and
//     majority-agreement confidence (discovery/partition.h). Approximate
//     admission is the point: on dirty data the true dependencies hold
//     on most-but-not-all tuples, exactly the weak-constraint regime the
//     MLN softens anyway (HoloClean's premise).
//  2. A matching-dependency miner (discovery/md_miner) searches
//     similarity thresholds over the existing distance kernels: pairs of
//     tuples whose values on one attribute are *similar but not equal*
//     yet agree on another attribute. The mined MDs are reported as
//     threshold guidance for the AGP/RSC similarity stages (the DSL has
//     no MD form, so they ride in DiscoveryResult, not the RuleSet).
//  3. An MLN scoring pass: the surviving candidates are compiled into a
//     CleanModel and trial-warmed on a sample (index + AGP + weight
//     learning — exactly CleanModel::Warm's computation, run through a
//     staged session so the learned index stays inspectable). A rule
//     earns its keep when its conflicted γ groups concentrate learned
//     weight on one version (support-weighted star purity >=
//     min_mln_score); rules whose groups stay ambiguous are dropped.
//
// Survivors are emitted as canonical DSL via Constraint::CanonicalText,
// so mined rules round-trip byte-identically through ParseRules and can
// be persisted next to model snapshots. See docs/discovery.md for the
// algorithm, the measures, and knob guidance.

#ifndef MLNCLEAN_DISCOVERY_DISCOVERY_H_
#define MLNCLEAN_DISCOVERY_DISCOVERY_H_

#include <string>
#include <vector>

#include "cleaning/options.h"
#include "common/cancellation.h"
#include "common/distance.h"
#include "common/executor.h"
#include "common/result.h"
#include "dataset/dataset.h"
#include "rules/constraint.h"

namespace mlnclean {

/// Knobs of DiscoverRules. Defaults are tuned for the 5%-error regime of
/// the paper's workloads; see docs/discovery.md for guidance.
struct DiscoveryOptions {
  /// Largest FD/CFD left-hand side the lattice explores (level cap).
  size_t max_lhs = 2;

  /// Minimum fraction of tuples that must appear in multi-tuple LHS
  /// groups for an FD over that LHS to be emitted (and for the LHS to be
  /// expanded — support is anti-monotone under refinement). Keys and
  /// near-keys have no cleaning evidence and die here.
  double min_support = 0.1;

  /// Minimum majority-agreement confidence for an approximate FD: among
  /// tuples with an LHS partner, the fraction agreeing with their
  /// group's majority result value.
  double min_confidence = 0.85;

  /// Mine constant-pattern CFDs from the pattern groups of FDs that
  /// failed min_confidence globally.
  bool mine_cfds = true;
  /// A pattern group must span at least this many rows.
  size_t min_cfd_support = 8;
  /// ... and agree with its majority result value at least this often.
  double min_cfd_confidence = 0.95;

  /// Per result attribute, keep at most this many FDs (highest
  /// confidence first; ties: higher support, then lattice order). Many
  /// determinants for one attribute create competing blocks whose extra
  /// γ versions dilute fusion, so the single most reliable determinant
  /// usually cleans better than all of them together. 0 = unlimited.
  size_t max_fds_per_result = 1;

  /// Keep constant CFDs targeting a result attribute only when no FD for
  /// that attribute survived: mined CFDs are the local fallback where no
  /// global determinant exists, and are redundant beside a kept FD on
  /// the same attribute.
  bool cfds_only_without_fd = true;

  /// Cap on emitted rules; lowest-support rules are dropped first
  /// (ties: later lattice order first). Keeps a pathological input from
  /// flooding the pipeline with thousands of pattern rules.
  size_t max_rules = 64;

  /// Mine matching dependencies over the distance kernels.
  bool mine_mds = true;
  /// Distance metric MD similarity is measured in (normalized to [0,1]
  /// via MakeNormalizedDistanceFn).
  DistanceMetric md_metric = DistanceMetric::kLevenshtein;
  /// Candidate similarity radii, ascending; each MD reports the largest
  /// radius that still meets md_min_confidence.
  std::vector<double> md_thresholds = {0.15, 0.25, 0.35};
  /// Tuple-pair sample budget: all pairs when the table has fewer,
  /// otherwise a seeded uniform sample of this many pairs.
  size_t md_max_pairs = 20000;
  /// Minimum similar-but-unequal pairs backing an MD.
  size_t md_min_pairs = 20;
  /// Minimum fraction of similar LHS pairs whose RHS values are equal.
  double md_min_confidence = 0.9;
  /// Seed of the pair sample (the sample is drawn once, sequentially, so
  /// thread count cannot change which pairs are measured).
  uint64_t md_seed = 7;

  /// Score candidates through a trial-warmed CleanModel and keep only
  /// rules whose conflicted γ groups reach min_mln_score star purity.
  bool score_with_mln = true;
  /// Rows of the scoring sample (a prefix slice of the input).
  size_t mln_sample_rows = 200;
  /// Floor on the support-weighted star purity of a rule's conflicted
  /// groups (1.0 = every conflicted group fully dominated by one γ).
  double min_mln_score = 0.5;

  /// Worker-parallelism cap for the lattice levels, the MD pair sweep,
  /// and the scoring session; same semantics as
  /// CleaningOptions::num_threads (1 = sequential, 0 = auto). Results
  /// are bit-identical for any setting.
  size_t num_threads = 1;
  /// Execution backend; null resolves like CleaningOptions::executor.
  Executor* executor = nullptr;
  /// Cooperative cancellation, polled at lattice-level, pair-chunk, and
  /// session stage boundaries.
  CancelToken cancel;

  /// Validates option consistency (thresholds in range, ascending radii,
  /// usable sample sizes).
  Status Validate() const;

  /// num_threads with 0 resolved to the hardware concurrency (min 1).
  size_t ResolvedNumThreads() const;
  /// The executor discovery runs on; never null.
  Executor* ResolvedExecutor() const;
};

/// One mined FD/CFD candidate with its measures — kept or dropped, in
/// deterministic lattice order (level, then node, then result attribute).
struct MinedRuleInfo {
  /// Canonical DSL text (Constraint::CanonicalText; parses back exactly).
  std::string text;
  RuleKind kind = RuleKind::kFd;
  /// Fraction of rows covered: multi-tuple LHS groups for FDs, the
  /// pattern group for CFDs.
  double support = 0.0;
  /// Majority-agreement confidence on the covered rows.
  double confidence = 0.0;
  /// Support-weighted star purity of the rule's conflicted γ groups
  /// after the trial warm; 1.0 when uncontested (or scoring disabled).
  double mln_score = 1.0;
  /// True when the rule survived every gate and is in the RuleSet.
  bool kept = false;
};

/// One mined matching dependency: tuples whose `lhs_attr` values lie
/// within normalized distance `threshold` (but are not equal) agree on
/// `rhs_attr` with probability `confidence`. Threshold guidance for the
/// similarity stages — not expressible in the rule DSL.
struct MatchingDependency {
  AttrId lhs_attr = 0;
  AttrId rhs_attr = 0;
  double threshold = 0.0;
  /// Sampled pairs with 0 < d(lhs) <= threshold.
  size_t similar_pairs = 0;
  /// ... of which this many have equal rhs values.
  size_t matching_pairs = 0;
  double confidence = 0.0;

  /// Rendering, e.g. "MD: HospitalName~0.25 -> City".
  std::string ToString(const Schema& schema) const;
};

/// Output of DiscoverRules.
struct DiscoveryResult {
  /// The surviving rules, named r1..rn in lattice order — ready for
  /// CleaningEngine::Compile, and round-trippable through ParseRules.
  RuleSet rules;
  /// Every candidate that reached the measurement gates, kept or not.
  std::vector<MinedRuleInfo> mined;
  /// Mined matching dependencies (lhs attr asc, then rhs attr asc).
  std::vector<MatchingDependency> mds;
  /// Rows the MLN scoring pass warmed on (0 = scoring skipped).
  size_t sample_rows = 0;

  DiscoveryResult() : rules(Schema()) {}
  explicit DiscoveryResult(Schema schema) : rules(std::move(schema)) {}
};

/// Mines a RuleSet from `data` (see the file comment for the passes).
/// Deterministic: the result is identical for any executor/thread
/// configuration in `options`. Cancellation via options.cancel aborts
/// with Status::Cancelled.
Result<DiscoveryResult> DiscoverRules(const Dataset& data,
                                      const DiscoveryOptions& options = {});

}  // namespace mlnclean

#endif  // MLNCLEAN_DISCOVERY_DISCOVERY_H_
