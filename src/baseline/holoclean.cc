#include "baseline/holoclean.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/distance.h"
#include "common/random.h"
#include "common/timer.h"
#include "rules/violation.h"

namespace mlnclean {

namespace {

// ---------- statistics over the clean partition ----------

// Composite-key maps: frequencies of (attr, value) and co-occurrence
// counts of (attr_a, value_a, attr_b, value_b) among clean cells.
struct CleanStats {
  std::unordered_map<std::string, double> freq;        // "a|v" -> count
  std::unordered_map<std::string, double> attr_total;  // "a" -> clean cells
  std::unordered_map<std::string, double> cooc;        // "a|v|b|w" -> count
  // "b|w|a" -> candidate values of attr a co-occurring with (b = w).
  std::unordered_map<std::string, std::vector<std::pair<Value, double>>> candidates;
  // Per rule: reason key -> result value counts ("r|key|v" -> count).
  std::unordered_map<std::string, double> rule_result;
  std::unordered_map<std::string, double> rule_reason_total;  // "r|key"

  static std::string FreqKey(AttrId a, const Value& v) {
    return std::to_string(a) + '\x1f' + v;
  }
  static std::string CoocKey(AttrId a, const Value& v, AttrId b, const Value& w) {
    return std::to_string(a) + '\x1f' + v + '\x1f' + std::to_string(b) + '\x1f' + w;
  }
  static std::string CandKey(AttrId b, const Value& w, AttrId a) {
    return std::to_string(b) + '\x1f' + w + '\x1f' + std::to_string(a);
  }
};

std::string RuleReasonKey(size_t rule_index, const std::vector<Value>& reason) {
  std::string key = std::to_string(rule_index);
  key += '\x1e';
  for (const auto& v : reason) {
    key += v;
    key += '\x1f';
  }
  return key;
}

CleanStats BuildStats(const Dataset& data, const RuleSet& rules,
                      const std::vector<std::vector<bool>>& noisy) {
  CleanStats stats;
  const auto rows = static_cast<TupleId>(data.num_rows());
  const auto attrs = static_cast<AttrId>(data.num_attrs());
  for (TupleId t = 0; t < rows; ++t) {
    for (AttrId a = 0; a < attrs; ++a) {
      if (noisy[t][static_cast<size_t>(a)]) continue;
      const Value& v = data.at(t, a);
      stats.freq[CleanStats::FreqKey(a, v)] += 1.0;
      stats.attr_total[std::to_string(a)] += 1.0;
      for (AttrId b = 0; b < attrs; ++b) {
        if (b == a || noisy[t][static_cast<size_t>(b)]) continue;
        stats.cooc[CleanStats::CoocKey(a, v, b, data.at(t, b))] += 1.0;
      }
    }
  }
  // Candidate lists: for every clean pair, remember which values of `a`
  // appear alongside (b = w).
  for (const auto& [key, count] : stats.cooc) {
    // key = a \x1f v \x1f b \x1f w
    size_t p1 = key.find('\x1f');
    size_t p2 = key.find('\x1f', p1 + 1);
    size_t p3 = key.find('\x1f', p2 + 1);
    std::string a = key.substr(0, p1);
    Value v = key.substr(p1 + 1, p2 - p1 - 1);
    std::string b = key.substr(p2 + 1, p3 - p2 - 1);
    Value w = key.substr(p3 + 1);
    stats.candidates[b + '\x1f' + w + '\x1f' + a].emplace_back(std::move(v), count);
  }
  for (auto& [key, cands] : stats.candidates) {
    (void)key;
    std::sort(cands.begin(), cands.end(),
              [](const auto& x, const auto& y) { return x.second > y.second; });
  }
  // Rule-side statistics from tuples whose rule cells are all clean.
  for (size_t ri = 0; ri < rules.size(); ++ri) {
    const Constraint& rule = rules.rule(ri);
    for (TupleId t = 0; t < rows; ++t) {
      if (!rule.InScope(data, t)) continue;
      bool all_clean = true;
      for (AttrId a : rule.attrs()) {
        if (noisy[t][static_cast<size_t>(a)]) {
          all_clean = false;
          break;
        }
      }
      if (!all_clean) continue;
      std::string rk = RuleReasonKey(ri, rule.ReasonValues(data, t));
      stats.rule_reason_total[rk] += 1.0;
      std::string result_key = rk + '\x1d';
      for (const Value& v : rule.ResultValues(data, t)) {
        result_key += v;
        result_key += '\x1f';
      }
      stats.rule_result[result_key] += 1.0;
    }
  }
  return stats;
}

// ---------- featurization ----------

// Feature layout: one co-occurrence slot per neighbour attribute, then
// frequency, constraint agreement, minimality.
struct FeatureSpace {
  size_t num_attrs;
  size_t size() const { return num_attrs + 3; }
  size_t FreqSlot() const { return num_attrs; }
  size_t ConstraintSlot() const { return num_attrs + 1; }
  size_t MinimalitySlot() const { return num_attrs + 2; }
};

// Features of candidate `v` for cell (t, a).
std::vector<double> Featurize(const Dataset& data, const RuleSet& rules,
                              const std::vector<std::vector<bool>>& noisy,
                              const CleanStats& stats, const FeatureSpace& space,
                              TupleId t, AttrId a, const Value& v) {
  std::vector<double> f(space.size(), 0.0);
  const auto attrs = static_cast<AttrId>(data.num_attrs());
  // Co-occurrence with each clean neighbour cell: Pr(a=v | b=w).
  for (AttrId b = 0; b < attrs; ++b) {
    if (b == a || noisy[t][static_cast<size_t>(b)]) continue;
    const Value& w = data.at(t, b);
    auto it = stats.cooc.find(CleanStats::CoocKey(a, v, b, w));
    if (it == stats.cooc.end()) continue;
    auto fb = stats.freq.find(CleanStats::FreqKey(b, w));
    double denom = fb == stats.freq.end() ? 1.0 : fb->second;
    f[static_cast<size_t>(b)] = it->second / std::max(1.0, denom);
  }
  // Frequency prior.
  auto fa = stats.freq.find(CleanStats::FreqKey(a, v));
  auto ta = stats.attr_total.find(std::to_string(a));
  if (fa != stats.freq.end() && ta != stats.attr_total.end() && ta->second > 0.0) {
    f[space.FreqSlot()] = fa->second / ta->second;
  }
  // Constraint agreement: does v match the majority result for the tuple's
  // reason key (rules whose result part contains a), and the CFD constant
  // when the lhs pattern matches?
  double agree = 0.0, considered = 0.0;
  for (size_t ri = 0; ri < rules.size(); ++ri) {
    const Constraint& rule = rules.rule(ri);
    const auto& result_attrs = rule.result_attrs();
    auto pos = std::find(result_attrs.begin(), result_attrs.end(), a);
    if (pos == result_attrs.end()) continue;
    if (!rule.InScope(data, t)) continue;
    if (rule.kind() == RuleKind::kCfd) {
      // Constant-rhs CFD: direct agreement with the constant.
      const auto& rhs = rule.rhs_patterns();
      size_t idx = static_cast<size_t>(pos - result_attrs.begin());
      if (rhs[idx].is_constant() && rule.MatchesAllLhsConstants(data, t)) {
        considered += 1.0;
        if (v == *rhs[idx].constant) agree += 1.0;
        continue;
      }
    }
    // Majority result among clean tuples sharing the reason key.
    std::string rk = RuleReasonKey(ri, rule.ReasonValues(data, t));
    auto total = stats.rule_reason_total.find(rk);
    if (total == stats.rule_reason_total.end() || total->second <= 0.0) continue;
    // Candidate result vector: the tuple's current result values with
    // position `pos` replaced by v.
    std::string result_key = rk + '\x1d';
    for (size_t i = 0; i < result_attrs.size(); ++i) {
      result_key += (result_attrs[i] == a) ? v : data.at(t, result_attrs[i]);
      result_key += '\x1f';
    }
    auto hit = stats.rule_result.find(result_key);
    considered += 1.0;
    if (hit != stats.rule_result.end()) {
      agree += hit->second / total->second;
    }
  }
  f[space.ConstraintSlot()] = considered > 0.0 ? agree / considered : 0.5;
  // Minimality: normalized edit similarity to the current value.
  const Value& current = data.at(t, a);
  size_t max_len = std::max(current.size(), v.size());
  double lev = max_len == 0 ? 0.0 : static_cast<double>(Levenshtein(current, v));
  f[space.MinimalitySlot()] = max_len == 0 ? 1.0 : 1.0 - lev / max_len;
  return f;
}

// Candidate repair values for cell (t, a): co-occurring values ranked by
// evidence, plus the current value.
std::vector<Value> CandidateDomain(const Dataset& data,
                                   const std::vector<std::vector<bool>>& noisy,
                                   const CleanStats& stats, TupleId t, AttrId a,
                                   size_t cap) {
  std::unordered_map<Value, double> scores;
  const auto attrs = static_cast<AttrId>(data.num_attrs());
  for (AttrId b = 0; b < attrs; ++b) {
    if (b == a || noisy[t][static_cast<size_t>(b)]) continue;
    auto it = stats.candidates.find(CleanStats::CandKey(b, data.at(t, b), a));
    if (it == stats.candidates.end()) continue;
    for (const auto& [v, count] : it->second) {
      scores[v] += count;
    }
  }
  std::vector<std::pair<Value, double>> ranked(scores.begin(), scores.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    return x.second > y.second || (x.second == y.second && x.first < y.first);
  });
  std::vector<Value> out;
  out.push_back(data.at(t, a));  // the current value always competes
  for (const auto& [v, score] : ranked) {
    (void)score;
    if (out.size() >= cap) break;
    if (v != out.front()) out.push_back(v);
  }
  return out;
}

double Dot(const std::vector<double>& w, const std::vector<double>& f) {
  double s = 0.0;
  for (size_t i = 0; i < w.size(); ++i) s += w[i] * f[i];
  return s;
}

}  // namespace

HoloCleanBaseline::HoloCleanBaseline(HoloCleanOptions options)
    : options_(std::move(options)) {}

Result<HoloCleanResult> HoloCleanBaseline::CleanWithOracle(
    const Dataset& dirty, const RuleSet& rules, const GroundTruth& truth) const {
  std::vector<std::vector<bool>> noisy(dirty.num_rows(),
                                       std::vector<bool>(dirty.num_attrs(), false));
  for (const auto& e : truth.errors()) {
    noisy[static_cast<size_t>(e.tid)][static_cast<size_t>(e.attr)] = true;
  }
  return Clean(dirty, rules, noisy);
}

Result<HoloCleanResult> HoloCleanBaseline::CleanWithDetector(
    const Dataset& dirty, const RuleSet& rules) const {
  if (options_.cancel.cancelled()) {
    return Status::Cancelled("holoclean cancelled before detection");
  }
  Timer detect;
  std::vector<std::vector<bool>> noisy = ViolationCellMask(dirty, rules);
  MLN_ASSIGN_OR_RETURN(HoloCleanResult result, Clean(dirty, rules, noisy));
  result.detect_seconds = detect.ElapsedSeconds() - result.total_seconds;
  result.total_seconds += result.detect_seconds;
  return result;
}

Result<HoloCleanResult> HoloCleanBaseline::Clean(
    const Dataset& dirty, const RuleSet& rules,
    const std::vector<std::vector<bool>>& noisy) const {
  if (noisy.size() != dirty.num_rows()) {
    return Status::Invalid("noisy mask row count mismatch");
  }
  Timer total;
  HoloCleanResult result;
  result.cleaned = dirty.Clone();
  auto cancelled = [this] { return options_.cancel.cancelled(); };
  if (cancelled()) return Status::Cancelled("holoclean cancelled before compile");

  // ---- Compile: statistics over the clean partition.
  Timer compile;
  CleanStats stats = BuildStats(dirty, rules, noisy);
  FeatureSpace space{dirty.num_attrs()};
  result.compile_seconds = compile.ElapsedSeconds();
  if (cancelled()) return Status::Cancelled("holoclean cancelled before learning");

  // ---- Learn shared feature weights on sampled clean cells.
  Timer learn;
  Rng rng(options_.seed);
  // One weight vector per target attribute: "neighbour b predicts a" is an
  // attribute-pair relationship, so sharing weights across target
  // attributes would conflate reliable and unreliable neighbours.
  std::vector<std::vector<double>> weights(
      dirty.num_attrs(), std::vector<double>(space.size(), 0.1));
  for (auto& w : weights) w[space.MinimalitySlot()] = options_.minimality_prior;
  std::vector<std::pair<TupleId, AttrId>> clean_cells;
  for (TupleId t = 0; t < static_cast<TupleId>(dirty.num_rows()); ++t) {
    for (AttrId a = 0; a < static_cast<AttrId>(dirty.num_attrs()); ++a) {
      if (!noisy[t][static_cast<size_t>(a)]) clean_cells.emplace_back(t, a);
    }
  }
  rng.Shuffle(&clean_cells);
  if (clean_cells.size() > options_.training_cells) {
    clean_cells.resize(options_.training_cells);
  }
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    if (cancelled()) return Status::Cancelled("holoclean cancelled during learning");
    for (const auto& [t, a] : clean_cells) {
      std::vector<Value> domain =
          CandidateDomain(dirty, noisy, stats, t, a, options_.max_candidates);
      if (domain.size() < 2) continue;
      std::vector<double>& w = weights[static_cast<size_t>(a)];
      // Softmax over candidates; observed value (index of the current
      // value, always slot 0) is the positive label.
      std::vector<std::vector<double>> feats;
      feats.reserve(domain.size());
      std::vector<double> scores(domain.size());
      double max_score = -1e300;
      for (size_t c = 0; c < domain.size(); ++c) {
        feats.push_back(
            Featurize(dirty, rules, noisy, stats, space, t, a, domain[c]));
        scores[c] = Dot(w, feats[c]);
        max_score = std::max(max_score, scores[c]);
      }
      double z = 0.0;
      for (double& s : scores) {
        s = std::exp(s - max_score);
        z += s;
      }
      for (size_t c = 0; c < domain.size(); ++c) {
        double p = scores[c] / z;
        double grad_coeff = (c == 0 ? 1.0 : 0.0) - p;
        for (size_t i = 0; i < w.size(); ++i) {
          if (i == space.MinimalitySlot()) continue;  // frozen prior
          w[i] += options_.learning_rate *
                  (grad_coeff * feats[c][i] - options_.l2 * w[i]);
        }
      }
    }
  }
  result.learn_seconds = learn.ElapsedSeconds();

  // ---- Infer: repair each noisy cell with its argmax candidate.
  Timer infer;
  for (TupleId t = 0; t < static_cast<TupleId>(dirty.num_rows()); ++t) {
    if (cancelled()) return Status::Cancelled("holoclean cancelled during inference");
    for (AttrId a = 0; a < static_cast<AttrId>(dirty.num_attrs()); ++a) {
      if (!noisy[t][static_cast<size_t>(a)]) continue;
      ++result.noisy_cells;
      std::vector<Value> domain =
          CandidateDomain(dirty, noisy, stats, t, a, options_.max_candidates);
      const std::vector<double>& w = weights[static_cast<size_t>(a)];
      double best_score = -1e300;
      const Value* best = nullptr;
      for (const Value& v : domain) {
        std::vector<double> f =
            Featurize(dirty, rules, noisy, stats, space, t, a, v);
        double s = Dot(w, f);
        if (s > best_score) {
          best_score = s;
          best = &v;
        }
      }
      if (best != nullptr && *best != dirty.at(t, a)) {
        result.cleaned.set(t, a, *best);
        ++result.repaired_cells;
      }
    }
  }
  result.infer_seconds = infer.ElapsedSeconds();
  result.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace mlnclean
