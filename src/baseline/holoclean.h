// HoloClean-style baseline (Rekatsinas et al., PVLDB 2017), rebuilt from
// scratch as the paper's comparator. Architecture mirrored:
//
//   1. *Detection* separates cells into a noisy and a clean partition. As
//      in the paper's evaluation, detection can be an oracle (100%
//      accurate, from the injected ground truth) or constraint-violation
//      based.
//   2. *Compilation* builds a candidate repair domain per noisy cell from
//      co-occurrence with the tuple's clean cells, plus featurization:
//      per-neighbor-attribute co-occurrence probabilities, value
//      frequency, constraint agreement, and a minimality prior.
//   3. *Learning* fits shared feature weights on the clean partition
//      (observed values as positives, softmax over sampled candidate
//      sets) — HoloClean's "learn from clean cells" step.
//   4. *Inference* scores each noisy cell's candidates and repairs with
//      the argmax, one cell at a time (the per-value granularity the
//      paper contrasts with MLNClean's per-γ cleaning).
//
// The known qualitative behaviours of HoloClean that the paper exploits
// emerge from this construction: typos absent from the clean partition
// weaken the model (Figure 7), sparse data starves co-occurrence
// statistics (CAR vs HAI), and per-cell inference costs more time than
// per-γ cleaning (Figure 6(c,d)).

#ifndef MLNCLEAN_BASELINE_HOLOCLEAN_H_
#define MLNCLEAN_BASELINE_HOLOCLEAN_H_

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "errorgen/injector.h"
#include "rules/constraint.h"

namespace mlnclean {

/// Baseline tuning knobs.
struct HoloCleanOptions {
  /// Candidate domain cap per noisy cell (HoloClean's domain pruning).
  size_t max_candidates = 24;
  /// SGD epochs over the sampled clean cells.
  int epochs = 12;
  double learning_rate = 0.05;
  double l2 = 1e-4;
  /// Number of clean cells sampled for training.
  size_t training_cells = 4000;
  /// Fixed weight of the minimal-repair prior feature. HoloClean applies
  /// minimality as a prior rather than a trained feature: training it on
  /// clean cells degenerates (the observed value is trivially the most
  /// similar to itself), so the weight is frozen.
  double minimality_prior = 0.5;
  uint64_t seed = 17;
  /// Cooperative cancellation, shared with the engine's serving API: the
  /// run aborts between its phases (and between training epochs /
  /// inference rows) with Status::Cancelled, leaving the input untouched.
  CancelToken cancel;
};

/// Stage timing and outcome of a baseline run.
struct HoloCleanResult {
  Dataset cleaned;
  size_t noisy_cells = 0;
  size_t repaired_cells = 0;
  double detect_seconds = 0.0;
  double compile_seconds = 0.0;
  double learn_seconds = 0.0;
  double infer_seconds = 0.0;
  double total_seconds = 0.0;
};

/// The baseline repairer.
class HoloCleanBaseline {
 public:
  explicit HoloCleanBaseline(HoloCleanOptions options = {});

  /// Oracle detection (the paper's setup: "we set the detection accuracy
  /// of HoloClean as 100%"): the noisy mask is exactly the injected error
  /// cells; repair runs on those.
  Result<HoloCleanResult> CleanWithOracle(const Dataset& dirty, const RuleSet& rules,
                                          const GroundTruth& truth) const;

  /// Detection from integrity-constraint violations (no oracle).
  Result<HoloCleanResult> CleanWithDetector(const Dataset& dirty,
                                            const RuleSet& rules) const;

  /// Core repair on an explicit noisy mask.
  Result<HoloCleanResult> Clean(const Dataset& dirty, const RuleSet& rules,
                                const std::vector<std::vector<bool>>& noisy_mask)
      const;

 private:
  HoloCleanOptions options_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_BASELINE_HOLOCLEAN_H_
