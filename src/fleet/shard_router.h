// ShardRouter: the deterministic front door of a CleanFleet (fleet.h).
//
// A fleet serves one logical table from N shards; the router decides, for
// every incoming row, which shard owns it. Routing must be *stable*: the
// same row must reach the same shard across batches, processes, and
// restarts, or per-shard grounding (and with it every repair) drifts.
// The router therefore fixes its reference points once, at fleet build —
// `Build` runs the distributed partitioner's centroid selection
// (Algorithm 3's seeded draw) over a reference dataset and keeps the
// centroid rows *by value*, as strings. Routing then assigns each row to
// the nearest centroid under the same per-attribute normalized distance
// the partitioner uses, with ties broken toward the lowest shard index.
//
// Two deliberate differences from PartitionDataset:
//  - routing compares *values*, never dictionary ids, so two datasets
//    holding the same rows under permuted id assignments route
//    identically (ids are an encoding accident; shard ownership is not);
//  - assignment is pure nearest-centroid with no capacity bound — a
//    capacity-bounded assignment depends on what else is in the batch,
//    which would make a row's shard a function of its neighbours.
//
// The centroid table serializes (`Encode`/`Decode`, versioned + strictly
// bounds-checked like every other wire format here) so a fleet restarted
// from a snapshot routes exactly as the fleet that built it.

#ifndef MLNCLEAN_FLEET_SHARD_ROUTER_H_
#define MLNCLEAN_FLEET_SHARD_ROUTER_H_

#include <cstdint>
#include <vector>

#include "common/distance.h"
#include "common/executor.h"
#include "common/result.h"
#include "dataset/dataset.h"

namespace mlnclean {

/// Router construction knobs. Defaults mirror PartitionOptions.
struct ShardRouterOptions {
  /// Shards the fleet serves from; at least 1, at most the reference
  /// dataset's row count (each centroid is a reference row).
  size_t num_shards = 2;
  /// Metric behind the per-attribute normalized tuple distance.
  DistanceMetric distance = DistanceMetric::kLevenshtein;
  /// Seed of the centroid draw (Algorithm 3 line 3).
  uint64_t seed = 99;
  /// Executor for the centroid-selection distance precompute at Build
  /// time only; routing itself is sequential per batch. Null = inline.
  Executor* executor = nullptr;
};

/// One batch split by shard ownership: `shards[s]` holds the rows routed
/// to shard s (dictionary-bearing sub-datasets per shard_merge.h, possibly
/// empty), and `mapping[s][local]` is the batch row that shard row came
/// from — what the fleet's id-remap reassembly consumes.
struct ShardedBatch {
  std::vector<Dataset> shards;
  std::vector<std::vector<TupleId>> mapping;
};

class ShardRouter {
 public:
  /// Selects `options.num_shards` centroid rows from `reference` (the
  /// dataset the fleet is built over — typically the table the model was
  /// warmed on) and captures them by value.
  static Result<ShardRouter> Build(const Dataset& reference,
                                   ShardRouterOptions options = {});

  size_t num_shards() const { return centroids_.size(); }
  const Schema& schema() const { return schema_; }
  DistanceMetric distance() const { return metric_; }
  /// The captured centroid rows (num_shards x num_attrs value strings).
  const std::vector<std::vector<Value>>& centroids() const { return centroids_; }

  /// Shard index for every row of `batch` (schema must match). Pure in
  /// the row's values: permuting `batch`'s dictionary ids, slicing, or
  /// reordering rows never changes any row's shard.
  Result<std::vector<size_t>> RouteRows(const Dataset& batch) const;

  /// RouteRows + shard materialization: splits `batch` into per-shard
  /// dictionary-bearing sub-datasets (shard_merge.h protocol), preserving
  /// batch row order within each shard. With `ship_packed`, each shard is
  /// round-tripped through the packed wire codec as a remote worker would
  /// receive it (id-identical; `executor` fans the decode out).
  Result<ShardedBatch> Shard(const Dataset& batch, bool ship_packed = false,
                             Executor* executor = nullptr) const;

  /// Versioned binary image of the router (metric, seed, schema, centroid
  /// values) — persist next to the model snapshot so serving processes
  /// route identically to the builder.
  std::vector<uint8_t> Encode() const;

  /// Strict decode of an Encode image: every length is bounds-checked,
  /// unknown versions/metrics and trailing bytes are rejected with
  /// kInvalid naming the byte position.
  static Result<ShardRouter> Decode(const uint8_t* data, size_t size);
  static Result<ShardRouter> Decode(const std::vector<uint8_t>& bytes);

 private:
  ShardRouter() = default;

  Schema schema_;
  DistanceMetric metric_ = DistanceMetric::kLevenshtein;
  uint64_t seed_ = 0;
  std::vector<std::vector<Value>> centroids_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_FLEET_SHARD_ROUTER_H_
