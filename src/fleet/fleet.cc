#include "fleet/fleet.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "cleaning/dedup.h"
#include "distributed/shard_merge.h"

namespace mlnclean {

/// Shared fleet state: the model, the router, and one server per shard.
/// Tickets pin it, so harvesting outlives the last CleanFleet handle.
struct FleetState {
  FleetState(CleanModel model_in, ShardRouter router_in, FleetOptions options_in)
      : model(std::move(model_in)),
        router(std::move(router_in)),
        options(std::move(options_in)) {}

  const CleanModel model;
  const ShardRouter router;
  const FleetOptions options;
  std::vector<CleanServer> servers;  // one per shard, fixed after Create

  mutable std::mutex mu;  // guards the counters and the reservoir
  size_t submitted = 0;
  size_t completed = 0;
  size_t failed = 0;
  size_t cancelled = 0;
  size_t deadline_expired = 0;
  LatencyReservoir latencies;
};

/// One fleet submission: the routed fan-out plus everything the harvest
/// needs to reassemble. The shard datasets were *moved into* the shard
/// jobs (owning SubmitStaged), so this struct owns no data a server
/// still points at — dropping every ticket handle mid-flight is safe.
struct FleetJob {
  std::shared_ptr<FleetState> fleet;
  SessionOptions opts;
  std::chrono::steady_clock::time_point submitted_at;

  Dataset assembled;                  // clone of the input; merge target
  std::vector<size_t> shipped_sizes;  // dict watermark of the input
  std::vector<std::vector<TupleId>> mapping;  // per shard: local -> input row
  std::vector<size_t> active;         // shard indexes that received rows
  std::vector<CleanTicket> tickets;   // parallel to `active`

  std::mutex mu;
  std::condition_variable cv;
  enum class Harvest { kPending, kRunning, kDone } harvest = Harvest::kPending;
  Status status;
  std::optional<CleanResult> result;
  bool taken = false;
};

namespace {

/// Splices one shard session's decision trace into the fleet report,
/// rewriting shard-local tuple ids to input rows. Value fields carry no
/// ids and pass through.
void SpliceShardReport(const CleaningReport& shard,
                       const std::vector<TupleId>& mapping,
                       CleaningReport* into) {
  for (AgpMergeRecord rec : shard.agp) {
    for (TupleId& t : rec.abnormal_tuples) t = mapping[static_cast<size_t>(t)];
    into->agp.push_back(std::move(rec));
  }
  for (RscRepairRecord rec : shard.rsc) {
    for (TupleId& t : rec.affected_tuples) t = mapping[static_cast<size_t>(t)];
    into->rsc.push_back(std::move(rec));
  }
  for (FscrRecord rec : shard.fscr) {
    rec.tuple = mapping[static_cast<size_t>(rec.tuple)];
    into->fscr.push_back(std::move(rec));
  }
  into->timings.index += shard.timings.index;
  into->timings.agp += shard.timings.agp;
  into->timings.learn += shard.timings.learn;
  into->timings.rsc += shard.timings.rsc;
  into->timings.fscr += shard.timings.fscr;
  into->timings.dedup += shard.timings.dedup;
  into->timings.total += shard.timings.total;
}

/// Error-path teardown: cancel every shard leg, nudge parked legs through
/// a throwaway resume so they reach a terminal state (and release their
/// session), and wait them out. Blocking the aborting caller briefly
/// beats leaking parked sessions for the server's lifetime.
void AbortShardLegs(std::vector<CleanTicket>* tickets) {
  for (CleanTicket& t : *tickets) t.Cancel();
  for (CleanTicket& t : *tickets) {
    if (t.WaitPaused().ok()) {
      t.ResumeJob();  // a cancelled resume leg dies at its first boundary
    }
  }
  for (CleanTicket& t : *tickets) t.Wait();
}

/// The cross-shard protocol, on the harvesting caller's thread. Returns
/// the fleet status; on OK, `*result` holds the assembled output.
Status HarvestLocked(FleetJob* job, std::optional<CleanResult>* result) {
  const size_t k = job->active.size();

  // Barrier 1: every shard leg parked at kLearn (or terminal-failed).
  Status first_bad;
  for (CleanTicket& t : job->tickets) {
    Status st = t.WaitPaused();
    if (!st.ok() && first_bad.ok()) first_bad = st;
  }
  if (!first_bad.ok()) {
    AbortShardLegs(&job->tickets);
    return first_bad;
  }

  // Eq. 6 cross-shard weight merge. Skipped at one shard: merging a
  // single session is semantically the identity, and skipping it keeps
  // the 1-shard fleet bit-identical to a plain server (the (1·w)/1
  // round trip is not an FP no-op).
  if (k > 1) {
    std::vector<CleanSession*> sessions;
    sessions.reserve(k);
    for (CleanTicket& t : job->tickets) sessions.push_back(t.session());
    Result<size_t> merged = job->fleet->model.AdjustWeightsAcross(sessions);
    if (!merged.ok()) {
      AbortShardLegs(&job->tickets);
      return merged.status();
    }
  }

  // Resume every leg to kFscr; a leg that cannot re-enqueue is the only
  // one we must not Wait on (it never reaches a terminal state).
  std::vector<bool> resumed(k, false);
  Status resume_bad;
  for (size_t i = 0; i < k; ++i) {
    Status st = job->tickets[i].ResumeJob();
    resumed[i] = st.ok();
    if (!st.ok() && resume_bad.ok()) resume_bad = st;
  }
  if (!resume_bad.ok()) {
    for (CleanTicket& t : job->tickets) t.Cancel();
  }
  for (size_t i = 0; i < k; ++i) {
    if (!resumed[i]) continue;
    Status st = job->tickets[i].Wait();
    if (!st.ok() && first_bad.ok()) first_bad = st;
  }
  if (!resume_bad.ok()) return resume_bad;
  if (!first_bad.ok()) {
    AbortShardLegs(&job->tickets);
    return first_bad;
  }

  // Reassembly: id-remap merge in shard order (deterministic — merging
  // interns shard-local repairs, so order is part of the contract), then
  // report splicing and the global dedup the shard legs stopped short of.
  CleanResult out;
  for (size_t i = 0; i < k; ++i) {
    const CleanSession* session = job->tickets[i].session();
    MergeShardRows(session->cleaned(), job->mapping[job->active[i]],
                   job->shipped_sizes, &job->assembled);
    if (job->opts.collect_report) {
      SpliceShardReport(session->report(), job->mapping[job->active[i]],
                        &out.report);
    }
  }
  out.cleaned = std::move(job->assembled);
  if (job->fleet->model.options().remove_duplicates) {
    out.deduped = RemoveDuplicates(
        out.cleaned, job->opts.collect_report ? &out.report.duplicates : nullptr);
  } else {
    out.deduped = out.cleaned;
  }
  *result = std::move(out);
  return Status::OK();
}

/// Single-entry lazy harvest: the first caller runs the protocol, racing
/// callers block on the cv, later callers read the recorded outcome.
void EnsureHarvested(const std::shared_ptr<FleetJob>& job) {
  {
    std::unique_lock<std::mutex> lock(job->mu);
    if (job->harvest == FleetJob::Harvest::kDone) return;
    if (job->harvest == FleetJob::Harvest::kRunning) {
      job->cv.wait(lock,
                   [&] { return job->harvest == FleetJob::Harvest::kDone; });
      return;
    }
    job->harvest = FleetJob::Harvest::kRunning;
  }
  std::optional<CleanResult> result;
  Status status;
  try {
    status = HarvestLocked(job.get(), &result);
  } catch (...) {
    status = StatusFromCurrentException("fleet harvest failed");
    result.reset();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    job->submitted_at)
          .count();
  {
    std::lock_guard<std::mutex> lock(job->fleet->mu);
    job->fleet->latencies.Add(elapsed);
    if (status.ok()) {
      ++job->fleet->completed;
    } else if (status.IsCancelled()) {
      ++job->fleet->cancelled;
    } else if (status.IsDeadlineExceeded()) {
      ++job->fleet->deadline_expired;
    } else {
      ++job->fleet->failed;
    }
  }
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->status = std::move(status);
    job->result = std::move(result);
    job->harvest = FleetJob::Harvest::kDone;
  }
  job->cv.notify_all();
}

}  // namespace

// ------------------------------------------------------------- FleetTicket

Status FleetTicket::Wait() const {
  EnsureHarvested(job_);
  std::lock_guard<std::mutex> lock(job_->mu);
  return job_->status;
}

Result<CleanResult> FleetTicket::Take() {
  EnsureHarvested(job_);
  std::lock_guard<std::mutex> lock(job_->mu);
  if (!job_->status.ok()) return job_->status;
  if (job_->taken || !job_->result.has_value()) {
    return Status::Invalid("result already taken from this fleet ticket");
  }
  job_->taken = true;
  Result<CleanResult> out(std::move(*job_->result));
  job_->result.reset();
  return out;
}

void FleetTicket::Cancel() { job_->opts.cancel.RequestCancel(); }

bool FleetTicket::done() const {
  std::lock_guard<std::mutex> lock(job_->mu);
  return job_->harvest == FleetJob::Harvest::kDone;
}

// -------------------------------------------------------------- CleanFleet

Result<CleanFleet> CleanFleet::Create(CleanModel model, ShardRouter router,
                                      FleetOptions options) {
  const size_t k = router.num_shards();
  if (!(router.schema() == model.schema())) {
    return Status::Invalid("shard router schema does not match the model's");
  }
  if (!options.shard_executors.empty() && options.shard_executors.size() != k) {
    return Status::Invalid("shard_executors must be empty or hold one executor "
                           "per shard (" +
                           std::to_string(k) + ")");
  }
  if (options.executor == nullptr) options.executor = ProcessExecutor();

  auto state = std::make_shared<FleetState>(std::move(model), std::move(router),
                                            std::move(options));
  state->servers.reserve(k);
  for (size_t s = 0; s < k; ++s) {
    ServerOptions sopts;
    sopts.executor = state->options.shard_executors.empty()
                         ? state->options.executor
                         : state->options.shard_executors[s];
    sopts.max_concurrent_sessions = state->options.max_concurrent_sessions;
    sopts.queue_capacity = state->options.queue_capacity;
    sopts.coalesce_max_rows = state->options.coalesce_max_rows;
    MLN_ASSIGN_OR_RETURN(CleanServer server,
                         CleanServer::Create(state->model, sopts));
    state->servers.push_back(std::move(server));
  }
  return CleanFleet(std::move(state));
}

Result<FleetTicket> CleanFleet::Submit(const Dataset& dirty, SessionOptions opts) {
  if (opts.incremental) {
    return Status::Invalid("fleet submissions cannot use the incremental lane");
  }
  if (opts.progress) {
    return Status::Invalid(
        "fleet submissions do not support progress callbacks");
  }
  MLN_ASSIGN_OR_RETURN(
      ShardedBatch sharded,
      state_->router.Shard(dirty, state_->options.ship_packed,
                           state_->options.executor));

  auto job = std::make_shared<FleetJob>();
  job->fleet = state_;
  job->opts = opts;  // copy: the CancelToken handle is shared with shards
  job->submitted_at = std::chrono::steady_clock::now();
  job->assembled = dirty.Clone();
  job->shipped_sizes = ShippedDictSizes(dirty);
  job->mapping = std::move(sharded.mapping);

  for (size_t s = 0; s < state_->servers.size(); ++s) {
    if (job->mapping[s].empty()) continue;
    SessionOptions sopts = opts;  // shares cancel; copies deadline/priority
    sopts.progress = nullptr;
    Result<CleanTicket> leg = state_->servers[s].SubmitStaged(
        std::move(sharded.shards[s]), Stage::kLearn, Stage::kFscr,
        std::move(sopts));
    if (!leg.ok()) {
      // A shard queue refused the fan-out: cancel and drain the legs
      // already shipped, then surface the rejection (kUnavailable —
      // retryable upstream, same as a plain server).
      AbortShardLegs(&job->tickets);
      return leg.status();
    }
    job->active.push_back(s);
    job->tickets.push_back(std::move(*leg));
  }
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    ++state_->submitted;
  }
  return FleetTicket(std::move(job));
}

FleetStats CleanFleet::Stats() const {
  FleetStats stats;
  std::vector<double> window;
  size_t samples = 0;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    stats.submitted = state_->submitted;
    stats.completed = state_->completed;
    stats.failed = state_->failed;
    stats.cancelled = state_->cancelled;
    stats.deadline_expired = state_->deadline_expired;
    window = state_->latencies.Window();
    samples = state_->latencies.samples();
  }
  stats.latency = SummarizeLatencies(std::move(window), samples);
  stats.shards.reserve(state_->servers.size());
  for (const CleanServer& server : state_->servers) {
    stats.shards.push_back(server.Stats());
  }
  return stats;
}

size_t CleanFleet::num_shards() const { return state_->servers.size(); }

const ShardRouter& CleanFleet::router() const { return state_->router; }

const CleanModel& CleanFleet::model() const { return state_->model; }

const CleanServer& CleanFleet::shard_server(size_t shard) const {
  return state_->servers[shard];
}

}  // namespace mlnclean
