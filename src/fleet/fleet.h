// CleanFleet: one logical cleaning service over N shards — the scale-out
// layer of the serving stack (docs/fleet.md).
//
// A fleet fronts M CleanServer instances, every one serving the same
// prepared CleanModel (typically loaded from one snapshot). Submit routes
// the incoming batch through the fleet's ShardRouter, ships each
// non-empty shard to its server as a *staged* submission paused at
// Stage::kLearn, and returns a FleetTicket. Harvesting the ticket drives
// the cross-shard protocol, which is the distributed driver's dataflow
// served online:
//
//   per shard:   RunUntil(kLearn)                  (on the shard servers)
//   barrier:     CleanModel::AdjustWeightsAcross   (Eq. 6 weight merge)
//   per shard:   RunUntil(kFscr)                   (on the shard servers)
//   reassembly:  id-remap merge in shard order, then global dedup
//
// The Eq. 6 barrier is what makes a fleet more than N independent
// servers: every shard repairs with the support-weighted global γ
// weights, exactly like the paper's Section 6 worker set.
//
// Determinism contract: a 1-shard fleet is bit-identical to a plain
// CleanServer over the same model and batches, at any thread count and
// with weight reuse on or off (the Eq. 6 barrier is skipped at one shard
// — merging one session is the identity, and skipping it avoids the
// (1·w)/1 floating-point round trip). Multi-shard results are
// bit-identical across processes, thread counts, and ship_packed on/off
// for a fixed router; they differ from the 1-shard result in general,
// because grounding sees per-shard groups (same trade as the distributed
// driver).
//
// Coordination runs on the *harvesting caller's* thread, never as an
// executor task — a coordinator blocking on shard tickets from inside
// the shared pool could deadlock a 1-thread executor; a caller thread
// cannot. Shard-stage work runs server-side as usual.
//
// Cancellation/deadline fan out through the shared SessionOptions: the
// ticket's Cancel() (or the caller's own CancelToken handle) stops every
// shard at its next block/shard boundary, and a deadline is enforced
// per shard. A shard failure aborts its siblings through that same
// shared token, so one token should not be reused across independent
// submissions.

#ifndef MLNCLEAN_FLEET_FLEET_H_
#define MLNCLEAN_FLEET_FLEET_H_

#include <memory>
#include <vector>

#include "cleaning/server.h"
#include "fleet/shard_router.h"

namespace mlnclean {

struct FleetJob;    // internal per-submission state (fleet.cc)
struct FleetState;  // internal shared fleet state (fleet.cc)

/// Fleet tuning knobs. Per-server knobs apply to every shard server.
struct FleetOptions {
  /// Executor the shard servers schedule sessions on (and packed shard
  /// shipping decodes on). Null = the shared process executor. Borrowed;
  /// must outlive the fleet and every outstanding ticket.
  Executor* executor = nullptr;
  /// Optional per-shard executor override (size must equal the router's
  /// num_shards): shard s's server runs on shard_executors[s] — the
  /// "one pool per shard box" deployment shape. Empty = every shard on
  /// `executor`.
  std::vector<Executor*> shard_executors;
  /// Per shard server: sessions allowed to execute simultaneously
  /// (0 = that server executor's concurrency).
  size_t max_concurrent_sessions = 0;
  /// Per shard server: pending-queue capacity. A Submit whose shard
  /// fan-out hits a full shard queue fails with kUnavailable (the
  /// already-fanned shard jobs are cancelled).
  size_t queue_capacity = 64;
  /// Per shard server: micro-batch coalescing budget in rows (0 = off).
  /// Staged shard jobs never coalesce; this knob only affects plain
  /// submissions sent directly to a shard server.
  size_t coalesce_max_rows = 0;
  /// Route shards through the packed wire codec (EncodePacked round
  /// trip), as remote shard servers would receive them. Bit-identical to
  /// in-process shipping by the codec contract.
  bool ship_packed = false;
};

/// Fleet-level counter snapshot plus the per-shard server views.
struct FleetStats {
  size_t submitted = 0;         // fleet tickets admitted
  size_t completed = 0;         // fleet tickets harvested OK
  size_t failed = 0;            // harvested with an error status
  size_t cancelled = 0;         // harvested kCancelled
  size_t deadline_expired = 0;  // harvested kDeadlineExceeded
  /// Submit-to-harvest fleet ticket latency percentiles (sliding
  /// reservoir window, like ServerStats::latency).
  LatencySnapshot latency;
  /// Stats() of every shard server, in shard order — per-shard queue
  /// depth, terminal counts, and ticket-latency percentiles.
  std::vector<ServerStats> shards;
};

/// Handle to one fleet submission. Cheap to copy (a shared handle).
/// Harvesting is *lazy and caller-driven*: the first Wait()/Take() runs
/// the cross-shard barrier, merge, and reassembly on the calling thread
/// (concurrent harvesters of the same ticket are serialized; later calls
/// return the recorded outcome). Dropping every handle without
/// harvesting abandons the submission: shard legs already queued run to
/// their pause and are discarded.
class FleetTicket {
 public:
  /// Drives the job to its terminal state (see class comment) and
  /// returns the final status.
  Status Wait() const;

  /// Wait() + move the assembled CleanResult out; like
  /// CleanTicket::Take, the result can be taken exactly once.
  Result<CleanResult> Take();

  /// Cooperative fleet-wide cancel: every shard leg stops at its next
  /// block/shard boundary (shares the submission's CancelToken).
  void Cancel();

  /// True once a harvest has completed (never blocks).
  bool done() const;

 private:
  friend class CleanFleet;
  explicit FleetTicket(std::shared_ptr<FleetJob> job) : job_(std::move(job)) {}
  std::shared_ptr<FleetJob> job_;
};

/// The sharded serving front door. Cheap to copy (a shared handle);
/// outstanding tickets pin the fleet state, so harvesting stays valid
/// after the last fleet handle drops.
class CleanFleet {
 public:
  /// Validates `options`, checks the router against the model's schema,
  /// and spins up one CleanServer per router shard over `model`.
  static Result<CleanFleet> Create(CleanModel model, ShardRouter router,
                                   FleetOptions options = {});

  /// Routes `dirty` across the shards and fans the shard jobs out as
  /// staged submissions. Unlike CleanServer::Submit, `dirty` is only
  /// *read* during this call (routed shard copies ship to the servers;
  /// the result is assembled into a clone), so the caller's dataset need
  /// not outlive the ticket. `opts.progress` and `opts.incremental` are
  /// not supported at fleet level; priority/deadline/cancel/weight flags
  /// apply to every shard leg.
  Result<FleetTicket> Submit(const Dataset& dirty, SessionOptions opts = {});

  /// Fleet counters plus every shard server's Stats(), in shard order.
  FleetStats Stats() const;

  size_t num_shards() const;
  const ShardRouter& router() const;
  const CleanModel& model() const;
  /// Shard s's server — for direct (non-fleet) submissions or probing.
  const CleanServer& shard_server(size_t shard) const;

 private:
  explicit CleanFleet(std::shared_ptr<FleetState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<FleetState> state_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_FLEET_FLEET_H_
