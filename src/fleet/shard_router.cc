#include "fleet/shard_router.h"

#include <algorithm>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>

#include "distributed/partitioner.h"
#include "distributed/shard_merge.h"

namespace mlnclean {

namespace {

constexpr uint8_t kMagic[4] = {'M', 'L', 'R', 'T'};
constexpr uint32_t kVersion = 1;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

/// Strict little-endian reader: every Get checks the remaining length and
/// fails with the byte position, never reading past `size`.
struct Reader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  Status Need(size_t n) {
    if (size - pos < n) {
      return Status::Invalid("shard router image truncated at byte " +
                             std::to_string(pos));
    }
    return Status::OK();
  }
  Result<uint32_t> GetU32() {
    MLN_RETURN_NOT_OK(Need(4));
    uint32_t v = static_cast<uint32_t>(data[pos]) |
                 static_cast<uint32_t>(data[pos + 1]) << 8 |
                 static_cast<uint32_t>(data[pos + 2]) << 16 |
                 static_cast<uint32_t>(data[pos + 3]) << 24;
    pos += 4;
    return v;
  }
  Result<uint64_t> GetU64() {
    MLN_ASSIGN_OR_RETURN(uint32_t lo, GetU32());
    MLN_ASSIGN_OR_RETURN(uint32_t hi, GetU32());
    return static_cast<uint64_t>(hi) << 32 | lo;
  }
  Result<std::string> GetString() {
    MLN_ASSIGN_OR_RETURN(uint32_t len, GetU32());
    MLN_RETURN_NOT_OK(Need(len));
    std::string s(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return s;
  }
};

}  // namespace

Result<ShardRouter> ShardRouter::Build(const Dataset& reference,
                                       ShardRouterOptions options) {
  if (options.num_shards == 0) {
    return Status::Invalid("num_shards must be > 0");
  }
  // Reuse Algorithm 3's seeded centroid draw (and its spread heuristics)
  // rather than inventing a second sampling scheme; only the centroids
  // are kept — the capacity-bounded parts are a batch-composition
  // artifact the router must not depend on.
  PartitionOptions popts;
  popts.num_parts = options.num_shards;
  popts.distance = options.distance;
  popts.seed = options.seed;
  popts.executor = options.executor;
  MLN_ASSIGN_OR_RETURN(Partition partition, PartitionDataset(reference, popts));

  ShardRouter router;
  router.schema_ = reference.schema();
  router.metric_ = options.distance;
  router.seed_ = options.seed;
  router.centroids_.reserve(partition.centroids.size());
  for (TupleId tid : partition.centroids) {
    router.centroids_.push_back(reference.row(tid));
  }
  return router;
}

Result<std::vector<size_t>> ShardRouter::RouteRows(const Dataset& batch) const {
  if (!(batch.schema() == schema_)) {
    return Status::Invalid("batch schema does not match the shard router's");
  }
  const size_t n = batch.num_rows();
  const size_t k = centroids_.size();
  std::vector<size_t> shard_of(n, 0);
  if (k <= 1) return shard_of;

  // Per-attribute memo: batch values repeat heavily (dictionary-encoded
  // columns), so each distinct (value, centroid) pair pays for one kernel
  // call per batch. Keys are this batch's ids — a pure caching detail;
  // the distances, and with them the routing, depend only on the values.
  const DistanceFn dist = MakeNormalizedDistanceFn(metric_);
  const auto num_attrs = static_cast<AttrId>(batch.num_attrs());
  std::vector<std::unordered_map<ValueId, std::vector<double>>> memo(
      static_cast<size_t>(num_attrs));

  for (size_t r = 0; r < n; ++r) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_s = 0;
    std::vector<double> totals(k, 0.0);
    for (AttrId a = 0; a < num_attrs; ++a) {
      const ValueId id = batch.id_at(static_cast<TupleId>(r), a);
      auto [it, fresh] = memo[static_cast<size_t>(a)].try_emplace(id);
      if (fresh) {
        const Value& v = batch.dict(a).value(id);
        it->second.resize(k);
        for (size_t s = 0; s < k; ++s) {
          it->second[s] = dist(v, centroids_[s][static_cast<size_t>(a)]);
        }
      }
      for (size_t s = 0; s < k; ++s) totals[s] += it->second[s];
    }
    for (size_t s = 0; s < k; ++s) {
      if (totals[s] < best) {  // strict: ties stay with the lowest index
        best = totals[s];
        best_s = s;
      }
    }
    shard_of[r] = best_s;
  }
  return shard_of;
}

Result<ShardedBatch> ShardRouter::Shard(const Dataset& batch, bool ship_packed,
                                        Executor* executor) const {
  MLN_ASSIGN_OR_RETURN(std::vector<size_t> shard_of, RouteRows(batch));
  ShardedBatch out;
  out.mapping.resize(num_shards());
  for (size_t r = 0; r < shard_of.size(); ++r) {
    out.mapping[shard_of[r]].push_back(static_cast<TupleId>(r));
  }
  out.shards = MaterializeShards(batch, out.mapping);
  if (ship_packed) {
    MLN_RETURN_NOT_OK(ShipShardsPacked(&out.shards, executor));
  }
  return out;
}

std::vector<uint8_t> ShardRouter::Encode() const {
  std::vector<uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  PutU32(&out, kVersion);
  PutU32(&out, static_cast<uint32_t>(metric_));
  PutU64(&out, seed_);
  PutU32(&out, static_cast<uint32_t>(schema_.num_attrs()));
  for (const std::string& name : schema_.names()) PutString(&out, name);
  PutU32(&out, static_cast<uint32_t>(centroids_.size()));
  for (const std::vector<Value>& row : centroids_) {
    for (const Value& v : row) PutString(&out, v);
  }
  return out;
}

Result<ShardRouter> ShardRouter::Decode(const uint8_t* data, size_t size) {
  Reader in{data, size};
  MLN_RETURN_NOT_OK(in.Need(4));
  if (!std::equal(kMagic, kMagic + 4, data)) {
    return Status::Invalid("not a shard router image (bad magic)");
  }
  in.pos = 4;
  MLN_ASSIGN_OR_RETURN(uint32_t version, in.GetU32());
  if (version != kVersion) {
    return Status::Invalid("unsupported shard router version " +
                           std::to_string(version));
  }
  MLN_ASSIGN_OR_RETURN(uint32_t metric, in.GetU32());
  if (metric > static_cast<uint32_t>(DistanceMetric::kDamerau)) {
    return Status::Invalid("unknown distance metric " + std::to_string(metric) +
                           " at byte " + std::to_string(in.pos - 4));
  }
  MLN_ASSIGN_OR_RETURN(uint64_t seed, in.GetU64());
  MLN_ASSIGN_OR_RETURN(uint32_t num_attrs, in.GetU32());
  std::vector<std::string> names;
  names.reserve(num_attrs);
  for (uint32_t a = 0; a < num_attrs; ++a) {
    MLN_ASSIGN_OR_RETURN(std::string name, in.GetString());
    names.push_back(std::move(name));
  }
  MLN_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(names)));
  MLN_ASSIGN_OR_RETURN(uint32_t num_shards, in.GetU32());
  if (num_shards == 0) {
    return Status::Invalid("shard router image declares zero shards");
  }
  std::vector<std::vector<Value>> centroids;
  centroids.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    std::vector<Value> row;
    row.reserve(num_attrs);
    for (uint32_t a = 0; a < num_attrs; ++a) {
      MLN_ASSIGN_OR_RETURN(Value v, in.GetString());
      row.push_back(std::move(v));
    }
    centroids.push_back(std::move(row));
  }
  if (in.pos != size) {
    return Status::Invalid(std::to_string(size - in.pos) +
                           " trailing bytes after the shard router image");
  }
  ShardRouter router;
  router.schema_ = std::move(schema);
  router.metric_ = static_cast<DistanceMetric>(metric);
  router.seed_ = seed;
  router.centroids_ = std::move(centroids);
  return router;
}

Result<ShardRouter> ShardRouter::Decode(const std::vector<uint8_t>& bytes) {
  return Decode(bytes.data(), bytes.size());
}

}  // namespace mlnclean
