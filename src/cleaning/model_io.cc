// Snapshot codec for CleanModel (format: cleaning/model_io.h). The
// decoder trusts nothing: every read is bounds-checked against the buffer
// and the enclosing section's declared length, and every failure is a
// StatusCode::kInvalid carrying the byte position — corrupt input can
// reject, never crash.

#include "cleaning/model_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <utility>

#include "cleaning/model_state.h"
#include "common/failpoint.h"
#include "common/varint.h"
#include "index/mln_index.h"
#include "rules/rule_parser.h"

namespace mlnclean {

namespace {

// Wire encoding of ValueDict::kNoNullRank. Fixed at u64 max so the bytes
// do not depend on the writer's size_t width (kNoNullRank is ~size_t{0},
// which is a different value on a 32-bit host).
constexpr uint64_t kNoNullRankWire = ~uint64_t{0};

// CRC-32C (Castagnoli, reflected 0x82F63B78) over one section's payload.
// Structural decoding catches framing corruption with a precise byte
// position; the per-section checksum catches content corruption that
// stays structurally valid (a flipped value byte, a bit-rotted weight) —
// and is verified *before* the payload is parsed, so a torn section
// reports kCorruption instead of whatever framing error the garbage
// happens to produce.
uint32_t Crc32c(const char* data, size_t size) {
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc ^= static_cast<unsigned char>(data[i]);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0x82f63b78u & (~(crc & 1u) + 1u));
    }
  }
  return ~crc;
}

// Section tags, in the order they must appear.
enum SectionTag : uint32_t {
  kSchemaTag = 1,
  kRulesTag = 2,
  kOptionsTag = 3,
  kWeightsTag = 4,
  kIndexTag = 5,
};
constexpr uint32_t kNumSections = 5;

// ------------------------------------------------------------------ encode

class Encoder {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void F64(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "f64 must be 8 bytes");
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }
  /// A u64 length followed by raw bytes — the framing of the v4
  /// group-varint blocks inside the weights section.
  void Blob(const uint8_t* data, size_t size) {
    U64(size);
    out_.append(reinterpret_cast<const char*>(data), size);
  }
  /// Appends a finished sub-encoder as one framed, checksummed section.
  void Section(uint32_t tag, const Encoder& payload) {
    U32(tag);
    U64(payload.out_.size());
    U32(Crc32c(payload.out_.data(), payload.out_.size()));
    out_.append(payload.out_);
  }
  const std::string& bytes() const { return out_; }

 private:
  std::string out_;
};

// ------------------------------------------------------------------ decode

/// Cursor over the fully buffered snapshot. `limit_` fences reads inside
/// the current section so a corrupt payload cannot consume its neighbour.
class Decoder {
 public:
  explicit Decoder(std::string data) : data_(std::move(data)), limit_(data_.size()) {}

  size_t pos() const { return pos_; }
  size_t size() const { return data_.size(); }
  const char* data() const { return data_.data(); }

  Status Fail(const std::string& what) const {
    return Status::Invalid("invalid model snapshot: " + what + " at byte " +
                           std::to_string(pos_));
  }

  Status Bytes(void* out, size_t n, const char* what) {
    if (n > limit_ - pos_) {
      return Fail(std::string("truncated ") + what + " (need " + std::to_string(n) +
                  " bytes, " + std::to_string(limit_ - pos_) + " left)");
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Result<uint8_t> U8(const char* what) {
    uint8_t v = 0;
    MLN_RETURN_NOT_OK(Bytes(&v, 1, what));
    return v;
  }
  Result<uint32_t> U32(const char* what) {
    unsigned char b[4];
    MLN_RETURN_NOT_OK(Bytes(b, 4, what));
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
  Result<uint64_t> U64(const char* what) {
    unsigned char b[8];
    MLN_RETURN_NOT_OK(Bytes(b, 8, what));
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
  Result<double> F64(const char* what) {
    MLN_ASSIGN_OR_RETURN(uint64_t bits, U64(what));
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  Result<std::string> Str(const char* what) {
    MLN_ASSIGN_OR_RETURN(uint32_t len, U32(what));
    if (len > limit_ - pos_) {
      return Fail(std::string(what) + " length " + std::to_string(len) +
                  " overruns its section (" + std::to_string(limit_ - pos_) +
                  " bytes left)");
    }
    std::string s(data_.data() + pos_, len);
    pos_ += len;
    return s;
  }

  /// A u64-length-prefixed raw byte run (the v4 varint blocks). The
  /// returned pointer aliases the snapshot buffer; valid while the
  /// decoder lives.
  Result<std::pair<const uint8_t*, size_t>> Blob(const char* what) {
    MLN_ASSIGN_OR_RETURN(uint64_t len, U64(what));
    if (len > limit_ - pos_) {
      return Fail(std::string(what) + " blob length " + std::to_string(len) +
                  " overruns its section (" + std::to_string(limit_ - pos_) +
                  " bytes left)");
    }
    const uint8_t* ptr = reinterpret_cast<const uint8_t*>(data_.data() + pos_);
    pos_ += static_cast<size_t>(len);
    return std::make_pair(ptr, static_cast<size_t>(len));
  }

  /// Enters a section of `length` bytes starting at the cursor.
  Status EnterSection(uint64_t length, uint32_t tag) {
    if (length > data_.size() - pos_) {
      return Fail("section " + std::to_string(tag) + " declares " +
                  std::to_string(length) + " bytes but only " +
                  std::to_string(data_.size() - pos_) + " remain");
    }
    limit_ = pos_ + static_cast<size_t>(length);
    return Status::OK();
  }
  /// Leaves the current section; the payload must be fully consumed.
  Status ExitSection(uint32_t tag) {
    if (pos_ != limit_) {
      return Fail("section " + std::to_string(tag) + " has " +
                  std::to_string(limit_ - pos_) + " trailing bytes");
    }
    limit_ = data_.size();
    return Status::OK();
  }

 private:
  std::string data_;
  size_t pos_ = 0;
  size_t limit_ = 0;
};

// Everything a snapshot holds, decoded but not yet compiled.
struct DecodedSnapshot {
  uint32_t version = 0;
  std::vector<std::string> attr_names;
  std::vector<std::string> rule_names;
  std::vector<double> rule_weights;
  std::vector<std::string> rule_texts;
  CleaningOptions options;
  std::vector<ValueDict> dicts;  // weight-store interners, ids preserved
  uint64_t weight_batches = 0;   // decay clock of the store
  std::vector<GlobalWeightTable::EntryView> entries;
  bool has_index = false;        // v5 index section present flag
  uint64_t indexed_rows = 0;     // rows the saved index covers
  std::vector<Block> index_blocks;
};

void EncodeOptions(const CleaningOptions& o, Encoder* e) {
  e->U64(o.agp_threshold);
  e->U32(static_cast<uint32_t>(o.distance));
  e->U32(static_cast<uint32_t>(o.learner.max_iterations));
  e->F64(o.learner.l2);
  e->F64(o.learner.tolerance);
  e->F64(o.learner.max_step);
  e->F64(o.learner.damping);
  e->U8(o.learn_weights ? 1 : 0);
  e->U8(o.remove_duplicates ? 1 : 0);
  e->U64(o.max_exhaustive_fusion);
  e->U64(o.max_fusion_nodes);
  e->U64(o.num_threads);
  e->U8(o.cache_distances ? 1 : 0);
  e->F64(o.fscr_minimality_discount);
  e->U64(o.weight_half_life_batches);
}

Status DecodeOptions(Decoder* d, CleaningOptions* o) {
  MLN_ASSIGN_OR_RETURN(uint64_t agp, d->U64("agp_threshold"));
  o->agp_threshold = static_cast<size_t>(agp);
  MLN_ASSIGN_OR_RETURN(uint32_t metric, d->U32("distance metric"));
  if (metric > static_cast<uint32_t>(DistanceMetric::kDamerau)) {
    return d->Fail("unknown distance metric " + std::to_string(metric));
  }
  o->distance = static_cast<DistanceMetric>(metric);
  MLN_ASSIGN_OR_RETURN(uint32_t iters, d->U32("learner.max_iterations"));
  o->learner.max_iterations = static_cast<int>(iters);
  MLN_ASSIGN_OR_RETURN(o->learner.l2, d->F64("learner.l2"));
  MLN_ASSIGN_OR_RETURN(o->learner.tolerance, d->F64("learner.tolerance"));
  MLN_ASSIGN_OR_RETURN(o->learner.max_step, d->F64("learner.max_step"));
  MLN_ASSIGN_OR_RETURN(o->learner.damping, d->F64("learner.damping"));
  MLN_ASSIGN_OR_RETURN(uint8_t learn, d->U8("learn_weights"));
  o->learn_weights = learn != 0;
  MLN_ASSIGN_OR_RETURN(uint8_t dedup, d->U8("remove_duplicates"));
  o->remove_duplicates = dedup != 0;
  MLN_ASSIGN_OR_RETURN(uint64_t exhaustive, d->U64("max_exhaustive_fusion"));
  o->max_exhaustive_fusion = static_cast<size_t>(exhaustive);
  MLN_ASSIGN_OR_RETURN(uint64_t nodes, d->U64("max_fusion_nodes"));
  o->max_fusion_nodes = static_cast<size_t>(nodes);
  MLN_ASSIGN_OR_RETURN(uint64_t threads, d->U64("num_threads"));
  o->num_threads = static_cast<size_t>(threads);
  MLN_ASSIGN_OR_RETURN(uint8_t cache, d->U8("cache_distances"));
  o->cache_distances = cache != 0;
  MLN_ASSIGN_OR_RETURN(o->fscr_minimality_discount, d->F64("fscr_minimality_discount"));
  MLN_ASSIGN_OR_RETURN(uint64_t half_life, d->U64("weight_half_life_batches"));
  o->weight_half_life_batches = static_cast<size_t>(half_life);
  return Status::OK();
}

Status DecodeSchemaSection(Decoder* d, DecodedSnapshot* snap) {
  MLN_ASSIGN_OR_RETURN(uint32_t num_attrs, d->U32("attribute count"));
  snap->attr_names.clear();
  for (uint32_t i = 0; i < num_attrs; ++i) {
    MLN_ASSIGN_OR_RETURN(std::string name, d->Str("attribute name"));
    snap->attr_names.push_back(std::move(name));
  }
  return Status::OK();
}

Status DecodeRulesSection(Decoder* d, DecodedSnapshot* snap) {
  MLN_ASSIGN_OR_RETURN(uint32_t num_rules, d->U32("rule count"));
  for (uint32_t i = 0; i < num_rules; ++i) {
    MLN_ASSIGN_OR_RETURN(std::string name, d->Str("rule name"));
    MLN_ASSIGN_OR_RETURN(double weight, d->F64("rule weight"));
    MLN_ASSIGN_OR_RETURN(std::string text, d->Str("rule text"));
    snap->rule_names.push_back(std::move(name));
    snap->rule_weights.push_back(weight);
    snap->rule_texts.push_back(std::move(text));
  }
  return Status::OK();
}

Status DecodeWeightsSection(Decoder* d, DecodedSnapshot* snap) {
  MLN_ASSIGN_OR_RETURN(uint32_t num_dicts, d->U32("weight dictionary count"));
  for (uint32_t a = 0; a < num_dicts; ++a) {
    MLN_ASSIGN_OR_RETURN(uint64_t num_values, d->U64("dictionary size"));
    if (num_values == 0) {
      return d->Fail("dictionary " + std::to_string(a) +
                     " has zero values (id 0 is always present)");
    }
    ValueDict dict;  // id 0 (NULL) pre-interned by construction
    for (uint64_t id = 1; id < num_values; ++id) {
      MLN_ASSIGN_OR_RETURN(std::string value, d->Str("dictionary value"));
      if (dict.Intern(value) != static_cast<ValueId>(id)) {
        return d->Fail("dictionary " + std::to_string(a) +
                       " repeats a value (ids would shift)");
      }
    }
    MLN_ASSIGN_OR_RETURN(uint64_t null_rank, d->U64("dictionary null rank"));
    if (null_rank != kNoNullRankWire && null_rank >= num_values) {
      return d->Fail("dictionary " + std::to_string(a) + " null rank " +
                     std::to_string(null_rank) + " exceeds its value count");
    }
    dict.RestoreNullRank(null_rank == kNoNullRankWire
                             ? ValueDict::kNoNullRank
                             : static_cast<size_t>(null_rank));
    snap->dicts.push_back(std::move(dict));
  }
  MLN_ASSIGN_OR_RETURN(snap->weight_batches, d->U64("weight batch counter"));
  MLN_ASSIGN_OR_RETURN(uint64_t num_entries, d->U64("weight entry count"));

  // v4 columnar entries: four group-varint blocks (rule indexes, the two
  // arities, the flat id stream) followed by the raw float and batch-stamp
  // columns. Every block's value count is bounds-checked against its byte
  // length before anything is allocated — a forged entry count cannot
  // force a huge allocation, it just fails the plausibility check.
  auto read_block = [&](uint64_t count, bool delta,
                        const char* what) -> Result<std::vector<uint32_t>> {
    MLN_ASSIGN_OR_RETURN(auto blob, d->Blob(what));
    // Four values cost at least one control byte.
    if (count > 0 && blob.second < (count + 3) / 4) {
      return d->Fail(std::string(what) + " block of " +
                     std::to_string(blob.second) + " bytes cannot hold " +
                     std::to_string(count) + " values");
    }
    std::vector<uint32_t> values(static_cast<size_t>(count));
    size_t consumed = 0;
    const bool ok =
        delta ? GroupVarintDecodeDelta(blob.first, blob.second,
                                       values.size(), values.data(), &consumed)
              : GroupVarintDecode(blob.first, blob.second, values.size(),
                                  values.data(), &consumed);
    if (!ok || consumed != blob.second) {
      return d->Fail(std::string(what) + " varint block is malformed");
    }
    return values;
  };
  MLN_ASSIGN_OR_RETURN(std::vector<uint32_t> rule_indexes,
                       read_block(num_entries, true, "weight entry rule index"));
  MLN_ASSIGN_OR_RETURN(
      std::vector<uint32_t> reason_arities,
      read_block(num_entries, false, "weight entry reason arity"));
  MLN_ASSIGN_OR_RETURN(
      std::vector<uint32_t> result_arities,
      read_block(num_entries, false, "weight entry result arity"));
  uint64_t total_ids = 0;
  for (uint64_t i = 0; i < num_entries; ++i) {
    total_ids += static_cast<uint64_t>(reason_arities[i]) + result_arities[i];
  }
  MLN_ASSIGN_OR_RETURN(std::vector<uint32_t> flat_ids,
                       read_block(total_ids, true, "weight entry value id"));

  snap->entries.resize(static_cast<size_t>(num_entries));
  size_t id_cursor = 0;
  for (uint64_t i = 0; i < num_entries; ++i) {
    GlobalWeightTable::EntryView& entry = snap->entries[static_cast<size_t>(i)];
    entry.rule_index = rule_indexes[static_cast<size_t>(i)];
    const uint32_t n_reason = reason_arities[static_cast<size_t>(i)];
    const uint32_t n_result = result_arities[static_cast<size_t>(i)];
    entry.reason_ids.assign(flat_ids.begin() + id_cursor,
                            flat_ids.begin() + id_cursor + n_reason);
    id_cursor += n_reason;
    entry.result_ids.assign(flat_ids.begin() + id_cursor,
                            flat_ids.begin() + id_cursor + n_result);
    id_cursor += n_result;
  }
  for (uint64_t i = 0; i < num_entries; ++i) {
    MLN_ASSIGN_OR_RETURN(snap->entries[static_cast<size_t>(i)].weighted_sum,
                         d->F64("weight entry sum"));
  }
  for (uint64_t i = 0; i < num_entries; ++i) {
    MLN_ASSIGN_OR_RETURN(snap->entries[static_cast<size_t>(i)].support,
                         d->F64("weight entry support"));
  }
  for (uint64_t i = 0; i < num_entries; ++i) {
    GlobalWeightTable::EntryView& entry = snap->entries[static_cast<size_t>(i)];
    MLN_ASSIGN_OR_RETURN(entry.last_batch, d->U64("weight entry last batch"));
    if (entry.last_batch > snap->weight_batches) {
      return d->Fail("weight entry last batch " +
                     std::to_string(entry.last_batch) +
                     " is ahead of the store's batch counter");
    }
  }
  return Status::OK();
}

// v5 index section: a serialized pre-AGP MlnIndex. Everything is written
// in index order (blocks, groups, γs, tuple lists), so encoding the same
// index twice yields identical bytes. Group keys are reconstructed from
// each group's first γ — the pre-AGP invariant the encoder enforces.
Status EncodeIndexSection(const MlnIndex* index, size_t indexed_rows,
                          Encoder* e) {
  if (index == nullptr) {
    e->U8(0);
    return Status::OK();
  }
  e->U8(1);
  e->U64(indexed_rows);
  e->U32(static_cast<uint32_t>(index->num_blocks()));
  std::vector<uint32_t> tids;
  std::vector<uint8_t> packed;
  for (const Block& block : index->blocks()) {
    e->U64(block.rule_index);
    e->U64(block.groups.size());
    for (const Group& group : block.groups) {
      if (group.pieces.empty() || group.key != group.pieces.front().reason) {
        return Status::Invalid(
            "cannot serialize index: a group's key does not match its first "
            "γ — only pre-AGP (base) indexes are snapshot-able");
      }
      e->U64(group.pieces.size());
      for (const Piece& piece : group.pieces) {
        if (!piece.has_ids()) {
          return Status::Invalid(
              "cannot serialize index: a γ lacks its dictionary-id mirror");
        }
        e->U32(static_cast<uint32_t>(piece.reason.size()));
        for (const Value& v : piece.reason) e->Str(v);
        e->U32(static_cast<uint32_t>(piece.result.size()));
        for (const Value& v : piece.result) e->Str(v);
        for (ValueId id : piece.reason_ids) e->U32(id);
        for (ValueId id : piece.result_ids) e->U32(id);
        e->F64(piece.weight);
        e->U64(piece.tuples.size());
        tids.assign(piece.tuples.begin(), piece.tuples.end());
        packed.resize(GroupVarintMaxSize(tids.size()));
        const size_t written =
            GroupVarintEncodeDelta(tids.data(), tids.size(), packed.data());
        e->Blob(packed.data(), written);
      }
    }
  }
  return Status::OK();
}

Status DecodeIndexSection(Decoder* d, DecodedSnapshot* snap) {
  MLN_ASSIGN_OR_RETURN(uint8_t present, d->U8("index present flag"));
  if (present > 1) {
    return d->Fail("index present flag is " + std::to_string(present));
  }
  snap->has_index = present != 0;
  if (!snap->has_index) return Status::OK();
  MLN_ASSIGN_OR_RETURN(snap->indexed_rows, d->U64("indexed row count"));
  MLN_ASSIGN_OR_RETURN(uint32_t num_blocks, d->U32("index block count"));
  snap->index_blocks.reserve(num_blocks);
  for (uint32_t bi = 0; bi < num_blocks; ++bi) {
    Block block;
    MLN_ASSIGN_OR_RETURN(uint64_t rule_index, d->U64("block rule index"));
    block.rule_index = static_cast<size_t>(rule_index);
    MLN_ASSIGN_OR_RETURN(uint64_t num_groups, d->U64("block group count"));
    for (uint64_t gi = 0; gi < num_groups; ++gi) {
      Group group;
      MLN_ASSIGN_OR_RETURN(uint64_t num_pieces, d->U64("group γ count"));
      if (num_pieces == 0) {
        return d->Fail("index group with zero γs");
      }
      for (uint64_t pi = 0; pi < num_pieces; ++pi) {
        Piece piece;
        MLN_ASSIGN_OR_RETURN(uint32_t n_reason, d->U32("γ reason arity"));
        for (uint32_t p = 0; p < n_reason; ++p) {
          MLN_ASSIGN_OR_RETURN(std::string v, d->Str("γ reason value"));
          piece.reason.push_back(std::move(v));
        }
        MLN_ASSIGN_OR_RETURN(uint32_t n_result, d->U32("γ result arity"));
        for (uint32_t p = 0; p < n_result; ++p) {
          MLN_ASSIGN_OR_RETURN(std::string v, d->Str("γ result value"));
          piece.result.push_back(std::move(v));
        }
        piece.reason_ids.resize(n_reason);
        for (uint32_t p = 0; p < n_reason; ++p) {
          MLN_ASSIGN_OR_RETURN(piece.reason_ids[p], d->U32("γ reason id"));
        }
        piece.result_ids.resize(n_result);
        for (uint32_t p = 0; p < n_result; ++p) {
          MLN_ASSIGN_OR_RETURN(piece.result_ids[p], d->U32("γ result id"));
        }
        MLN_ASSIGN_OR_RETURN(piece.weight, d->F64("γ weight"));
        MLN_ASSIGN_OR_RETURN(uint64_t num_tuples, d->U64("γ tuple count"));
        MLN_ASSIGN_OR_RETURN(auto blob, d->Blob("γ tuple ids"));
        // Plausibility before allocation: four values cost at least one
        // control byte, so a forged count cannot force a huge vector.
        if (num_tuples > 0 && blob.second < (num_tuples + 3) / 4) {
          return d->Fail("γ tuple blob of " + std::to_string(blob.second) +
                         " bytes cannot hold " + std::to_string(num_tuples) +
                         " ids");
        }
        std::vector<uint32_t> tids(static_cast<size_t>(num_tuples));
        size_t consumed = 0;
        if (!GroupVarintDecodeDelta(blob.first, blob.second, tids.size(),
                                    tids.data(), &consumed) ||
            consumed != blob.second) {
          return d->Fail("γ tuple varint block is malformed");
        }
        piece.tuples.assign(tids.begin(), tids.end());
        group.pieces.push_back(std::move(piece));
      }
      group.key = group.pieces.front().reason;
      block.groups.push_back(std::move(group));
    }
    snap->index_blocks.push_back(std::move(block));
  }
  return Status::OK();
}

/// Buffers the stream and decodes the whole snapshot structure. Semantic
/// validation (schema build, rule parse, option consistency, id bounds)
/// happens in the callers, which have the context to do it.
Result<DecodedSnapshot> DecodeSnapshotBytes(std::string data) {
  Decoder d(std::move(data));
  char magic[4];
  MLN_RETURN_NOT_OK(d.Bytes(magic, 4, "magic"));
  if (std::memcmp(magic, kModelSnapshotMagic, 4) != 0) {
    return Status::Invalid(
        "invalid model snapshot: bad magic at byte 0 (not a CleanModel "
        "snapshot)");
  }
  DecodedSnapshot snap;
  MLN_ASSIGN_OR_RETURN(snap.version, d.U32("format version"));
  if (snap.version != kModelSnapshotVersion) {
    return Status::Invalid("invalid model snapshot: unsupported format version " +
                           std::to_string(snap.version) + " at byte 4 (this "
                           "reader understands version " +
                           std::to_string(kModelSnapshotVersion) + ")");
  }
  MLN_ASSIGN_OR_RETURN(uint32_t num_sections, d.U32("section count"));
  if (num_sections != kNumSections) {
    return d.Fail("expected " + std::to_string(kNumSections) + " sections, got " +
                  std::to_string(num_sections));
  }
  for (uint32_t expected_tag = kSchemaTag; expected_tag <= kIndexTag;
       ++expected_tag) {
    MLN_ASSIGN_OR_RETURN(uint32_t tag, d.U32("section tag"));
    if (tag != expected_tag) {
      return d.Fail("unexpected section tag " + std::to_string(tag) +
                    " (expected " + std::to_string(expected_tag) + ")");
    }
    MLN_ASSIGN_OR_RETURN(uint64_t length, d.U64("section length"));
    MLN_ASSIGN_OR_RETURN(uint32_t stored_crc, d.U32("section checksum"));
    MLN_RETURN_NOT_OK(d.EnterSection(length, tag));
    // Verified before the payload parse: torn/bit-rotted content is
    // kCorruption with the section named, not a downstream framing error.
    const size_t payload_begin = d.pos();
    const uint32_t computed_crc =
        Crc32c(d.data() + payload_begin, static_cast<size_t>(length));
    if (computed_crc != stored_crc) {
      return Status::Corruption(
          "model snapshot section " + std::to_string(tag) +
          " checksum mismatch (stored " + std::to_string(stored_crc) +
          ", computed " + std::to_string(computed_crc) + ") over bytes [" +
          std::to_string(payload_begin) + ", " +
          std::to_string(payload_begin + static_cast<size_t>(length)) +
          "): the snapshot is torn or bit-rotted — re-copy or regenerate it");
    }
    switch (tag) {
      case kSchemaTag:
        MLN_RETURN_NOT_OK(DecodeSchemaSection(&d, &snap));
        break;
      case kRulesTag:
        MLN_RETURN_NOT_OK(DecodeRulesSection(&d, &snap));
        break;
      case kOptionsTag:
        MLN_RETURN_NOT_OK(DecodeOptions(&d, &snap.options));
        break;
      case kWeightsTag:
        MLN_RETURN_NOT_OK(DecodeWeightsSection(&d, &snap));
        break;
      case kIndexTag:
        MLN_RETURN_NOT_OK(DecodeIndexSection(&d, &snap));
        break;
    }
    MLN_RETURN_NOT_OK(d.ExitSection(tag));
  }
  if (d.pos() != d.size()) {
    return d.Fail(std::to_string(d.size() - d.pos()) +
                  " trailing bytes after the last section");
  }
  return snap;
}

Result<DecodedSnapshot> DecodeSnapshot(std::istream& in) {
  try {
    MLN_FAILPOINT("snapshot/decode");
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (in.bad()) {
      return Status::IOError("failed to read model snapshot stream");
    }
    return DecodeSnapshotBytes(std::move(data));
  } catch (...) {
    return StatusFromCurrentException("snapshot decode failed");
  }
}

}  // namespace

// ---------------------------------------------------------------- Save

Result<std::string> CleanModel::EncodeSnapshotBytes(const MlnIndex* index,
                                                    size_t indexed_rows) const {
 try {
  MLN_FAILPOINT("snapshot/encode");
  const Schema& schema = state_->rules.schema();

  Encoder schema_section;
  schema_section.U32(static_cast<uint32_t>(schema.num_attrs()));
  for (const std::string& name : schema.names()) schema_section.Str(name);

  Encoder rules_section;
  rules_section.U32(static_cast<uint32_t>(state_->rules.size()));
  for (const Constraint& rule : state_->rules.rules()) {
    // Refuse to write a snapshot Load can never read: the DC grammar has
    // no quoting, so a DC over attribute names containing DSL
    // metacharacters has no round-trippable text. Catching it here keeps
    // the failure on the builder box instead of on N serving workers.
    const std::string canonical = rule.CanonicalText(schema);
    auto reparsed = ParseRule(schema, canonical);
    if (!reparsed.ok() || reparsed->CanonicalText(schema) != canonical) {
      return Status::Invalid("rule '" + rule.name() +
                             "' cannot be serialized: its canonical text does "
                             "not round-trip through the rule DSL: " +
                             canonical);
    }
    rules_section.Str(rule.name());
    rules_section.F64(rule.rule_weight());
    rules_section.Str(canonical);
  }

  Encoder options_section;
  EncodeOptions(state_->options, &options_section);

  Encoder weights_section;
  {
    std::shared_lock<std::shared_mutex> lock(state_->weights_mu);
    const GlobalWeightTable& table = state_->weights;
    weights_section.U32(static_cast<uint32_t>(table.num_attr_dicts()));
    for (size_t a = 0; a < table.num_attr_dicts(); ++a) {
      const ValueDict& dict = table.attr_dict(a);
      weights_section.U64(dict.size());
      for (ValueId id = 1; id < dict.size(); ++id) weights_section.Str(dict.value(id));
      weights_section.U64(dict.null_used() ? dict.null_rank() : kNoNullRankWire);
    }
    weights_section.U64(table.batches());
    weights_section.U64(table.size());
    // v4: columnar entries. The integer columns (rule index, arities, the
    // flat reason+result id stream) are group-varint coded — entries come
    // out of ForEachEntrySorted ordered by rule and ids, so the
    // zigzag+delta streams are mostly one byte per value. The float
    // columns and batch stamps stay raw fixed-width.
    std::vector<uint32_t> rule_indexes, reason_arities, result_arities;
    std::vector<uint32_t> flat_ids;
    std::vector<double> sums, supports;
    std::vector<uint64_t> last_batches;
    table.ForEachEntrySorted([&](const GlobalWeightTable::EntryView& entry) {
      rule_indexes.push_back(static_cast<uint32_t>(entry.rule_index));
      reason_arities.push_back(static_cast<uint32_t>(entry.reason_ids.size()));
      result_arities.push_back(static_cast<uint32_t>(entry.result_ids.size()));
      flat_ids.insert(flat_ids.end(), entry.reason_ids.begin(),
                      entry.reason_ids.end());
      flat_ids.insert(flat_ids.end(), entry.result_ids.begin(),
                      entry.result_ids.end());
      sums.push_back(entry.weighted_sum);
      supports.push_back(entry.support);
      last_batches.push_back(entry.last_batch);
    });
    std::vector<uint8_t> packed;
    auto put_block = [&](const std::vector<uint32_t>& values, bool delta) {
      packed.resize(GroupVarintMaxSize(values.size()));
      const size_t written =
          delta ? GroupVarintEncodeDelta(values.data(), values.size(),
                                         packed.data())
                : GroupVarintEncode(values.data(), values.size(), packed.data());
      weights_section.Blob(packed.data(), written);
    };
    put_block(rule_indexes, /*delta=*/true);   // non-decreasing in sort order
    put_block(reason_arities, /*delta=*/false);
    put_block(result_arities, /*delta=*/false);
    put_block(flat_ids, /*delta=*/true);
    for (double v : sums) weights_section.F64(v);
    for (double v : supports) weights_section.F64(v);
    for (uint64_t v : last_batches) weights_section.U64(v);
  }

  Encoder index_section;
  MLN_RETURN_NOT_OK(EncodeIndexSection(index, indexed_rows, &index_section));

  // Assemble: magic, version, section count, checksummed framed sections.
  Encoder sections;
  sections.Section(kSchemaTag, schema_section);
  sections.Section(kRulesTag, rules_section);
  sections.Section(kOptionsTag, options_section);
  sections.Section(kWeightsTag, weights_section);
  sections.Section(kIndexTag, index_section);
  std::string bytes;
  bytes.append(kModelSnapshotMagic, 4);
  Encoder header;
  header.U32(kModelSnapshotVersion);
  header.U32(kNumSections);
  bytes.append(header.bytes());
  bytes.append(sections.bytes());
  return bytes;
 } catch (...) {
  return StatusFromCurrentException("snapshot encode failed");
 }
}

namespace {

Status WriteSnapshotStream(const std::string& bytes, std::ostream& out) {
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) {
    return Status::IOError("failed to write model snapshot stream");
  }
  return Status::OK();
}

Status WriteSnapshotBytesToFile(const std::string& bytes,
                                const std::string& path);

}  // namespace

Status CleanModel::Save(std::ostream& out) const {
  MLN_ASSIGN_OR_RETURN(std::string bytes, EncodeSnapshotBytes(nullptr, 0));
  return WriteSnapshotStream(bytes, out);
}

Status CleanModel::Save(std::ostream& out, const MlnIndex& index,
                        size_t indexed_rows) const {
  MLN_ASSIGN_OR_RETURN(std::string bytes,
                       EncodeSnapshotBytes(&index, indexed_rows));
  return WriteSnapshotStream(bytes, out);
}

Status CleanModel::SaveToFile(const std::string& path, const MlnIndex& index,
                              size_t indexed_rows) const {
  MLN_ASSIGN_OR_RETURN(std::string bytes,
                       EncodeSnapshotBytes(&index, indexed_rows));
  return WriteSnapshotBytesToFile(bytes, path);
}

Status CleanModel::SaveToFile(const std::string& path) const {
  MLN_ASSIGN_OR_RETURN(std::string bytes, EncodeSnapshotBytes(nullptr, 0));
  return WriteSnapshotBytesToFile(bytes, path);
}

namespace {

// Crash-safe temp + fsync + atomic-rename write of an encoded snapshot.
Status WriteSnapshotBytesToFile(const std::string& bytes,
                                const std::string& path) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());

  int fd = -1;
  try {
    MLN_FAILPOINT("snapshot/open-temp");
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } catch (...) {
    return StatusFromCurrentException("snapshot temp open failed");
  }
  if (fd < 0) {
    return Status::IOError("cannot create temp snapshot " + tmp + ": " +
                           std::strerror(errno));
  }

  // Write + fsync the temp file. Any failure (including an injected one)
  // must close the descriptor and unlink the temp so a failed Save leaves
  // no debris and never touches `path`.
  Status status = Status::OK();
  try {
    MLN_FAILPOINT("snapshot/write-temp");
    size_t off = 0;
    while (off < bytes.size() && status.ok()) {
      const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        status = Status::IOError("cannot write temp snapshot " + tmp + ": " +
                                 std::strerror(errno));
        break;
      }
      off += static_cast<size_t>(n);
    }
    if (status.ok()) {
      MLN_FAILPOINT("snapshot/fsync-temp");
      if (::fsync(fd) != 0) {
        status = Status::IOError("cannot fsync temp snapshot " + tmp + ": " +
                                 std::strerror(errno));
      }
    }
  } catch (...) {
    status = StatusFromCurrentException("snapshot write failed");
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::IOError("cannot close temp snapshot " + tmp + ": " +
                             std::strerror(errno));
  }

  if (status.ok()) {
    try {
      // The crash-safety pivot: a durable, fully written temp replaces
      // `path` in one atomic step. Dying before this line leaves the old
      // snapshot untouched; after it, the new one is complete.
      MLN_FAILPOINT("snapshot/before-rename");
      if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        status = Status::IOError("cannot rename " + tmp + " over " + path +
                                 ": " + std::strerror(errno));
      }
    } catch (...) {
      status = StatusFromCurrentException("snapshot rename failed");
    }
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }

  // Make the rename itself durable. Best-effort: some filesystems refuse
  // directory fsync, and the data is already safe in the file.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------- Load

Result<CleanModel> CleaningEngine::Load(std::istream& in) const {
  // The index section, if any, is decoded and dropped: Load's contract is
  // the model alone.
  MLN_ASSIGN_OR_RETURN(LoadedSnapshot loaded, LoadWithIndex(in));
  return std::move(loaded.model);
}

Result<LoadedSnapshot> CleaningEngine::LoadWithIndex(std::istream& in) const {
  MLN_ASSIGN_OR_RETURN(DecodedSnapshot snap, DecodeSnapshot(in));

  MLN_ASSIGN_OR_RETURN(Schema schema, Schema::Make(snap.attr_names));
  RuleSet rules(schema);
  for (size_t i = 0; i < snap.rule_texts.size(); ++i) {
    auto parsed = ParseRule(schema, snap.rule_texts[i]);
    if (!parsed.ok()) {
      return Status::Invalid("invalid model snapshot: rule " + std::to_string(i) +
                             " does not decode: " + parsed.status().message());
    }
    Constraint rule = std::move(parsed).ValueUnsafe();
    rule.set_name(snap.rule_names[i]);
    rule.set_rule_weight(snap.rule_weights[i]);
    rules.Add(std::move(rule));
  }

  // Compile re-runs the full model validation (options, schema match,
  // index-hostability), so a snapshot cannot smuggle in a model state the
  // engine would refuse to build directly.
  MLN_ASSIGN_OR_RETURN(CleanModel model, Compile(schema, rules, snap.options));

  if (!snap.dicts.empty() && snap.dicts.size() != schema.num_attrs()) {
    return Status::Invalid("invalid model snapshot: weight store has " +
                           std::to_string(snap.dicts.size()) +
                           " dictionaries for a " +
                           std::to_string(schema.num_attrs()) + "-attribute schema");
  }
  if (snap.dicts.empty() && !snap.entries.empty()) {
    return Status::Invalid(
        "invalid model snapshot: weight entries without dictionaries");
  }
  // Freshly compiled and unpublished: no lock needed yet.
  GlobalWeightTable& weights = model.state_->weights;
  weights.RestoreDicts(std::move(snap.dicts));
  weights.RestoreBatches(snap.weight_batches);
  for (const GlobalWeightTable::EntryView& entry : snap.entries) {
    Status st = weights.RestoreEntry(model.state_->rules, entry);
    if (!st.ok()) {
      return Status::Invalid("invalid model snapshot: " + st.message());
    }
  }

  LoadedSnapshot loaded{std::move(model), std::nullopt, 0};
  if (snap.has_index) {
    // Block/rule alignment is the only semantic check possible without
    // the accumulated dataset; ResumeIncrementalSession runs the full
    // MlnIndex::Validate once the caller rebuilds it.
    if (snap.index_blocks.size() != rules.size()) {
      return Status::Invalid("invalid model snapshot: index has " +
                             std::to_string(snap.index_blocks.size()) +
                             " blocks for a " + std::to_string(rules.size()) +
                             "-rule model");
    }
    for (size_t bi = 0; bi < snap.index_blocks.size(); ++bi) {
      if (snap.index_blocks[bi].rule_index != bi) {
        return Status::Invalid(
            "invalid model snapshot: index block " + std::to_string(bi) +
            " claims rule index " +
            std::to_string(snap.index_blocks[bi].rule_index));
      }
    }
    loaded.index = MlnIndex::FromBlocks(std::move(snap.index_blocks));
    loaded.indexed_rows = static_cast<size_t>(snap.indexed_rows);
  }
  return loaded;
}

Result<CleanModel> CleaningEngine::LoadFromFile(const std::string& path) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open model snapshot: " + path);
  return Load(in);
}

Result<LoadedSnapshot> CleaningEngine::LoadWithIndexFromFile(
    const std::string& path) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open model snapshot: " + path);
  return LoadWithIndex(in);
}

// ---------------------------------------------------------------- Inspect

Result<ModelSnapshotInfo> InspectModelSnapshot(std::istream& in) {
  MLN_ASSIGN_OR_RETURN(DecodedSnapshot snap, DecodeSnapshot(in));
  ModelSnapshotInfo info;
  info.version = snap.version;
  info.attr_names = std::move(snap.attr_names);
  info.rule_names = std::move(snap.rule_names);
  info.rule_texts = std::move(snap.rule_texts);
  info.rule_weights = std::move(snap.rule_weights);
  info.options = snap.options;
  info.num_stored_weights = snap.entries.size();
  for (const ValueDict& dict : snap.dicts) {
    info.weight_dict_sizes.push_back(dict.size());
  }
  info.has_index = snap.has_index;
  info.indexed_rows = static_cast<size_t>(snap.indexed_rows);
  for (const Block& block : snap.index_blocks) {
    info.index_pieces += block.PieceCount();
  }
  return info;
}

}  // namespace mlnclean
