// Configuration shared by the MLNClean stages.

#ifndef MLNCLEAN_CLEANING_OPTIONS_H_
#define MLNCLEAN_CLEANING_OPTIONS_H_

#include <cstddef>

#include "common/distance.h"
#include "common/executor.h"
#include "mln/weight_learner.h"

namespace mlnclean {

/// Knobs of the two-stage cleaner. Defaults follow the paper: τ = 1,
/// Levenshtein distance, duplicates removed after FSCR.
struct CleaningOptions {
  /// AGP threshold τ: a group whose tuple count is <= τ is abnormal.
  /// τ = 0 disables abnormal-group detection.
  size_t agp_threshold = 1;

  /// Distance metric for AGP group distance and the RSC reliability score.
  DistanceMetric distance = DistanceMetric::kLevenshtein;

  /// Markov weight learning configuration (Section 5.1.2).
  WeightLearnerOptions learner;

  /// When false, γ weights stay at the Eq. 4 priors (ablation knob).
  bool learn_weights = true;

  /// Remove exact duplicate tuples after FSCR (instance-level duplicates).
  bool remove_duplicates = true;

  /// FSCR explores merge orders exhaustively only up to this many versions
  /// per tuple; beyond it, versions are merged greedily by weight. The
  /// paper's rule sets have at most 7 rules, so the cap is rarely hit.
  size_t max_exhaustive_fusion = 7;

  /// Safety cap on fusion search nodes per tuple (the m! blow-up of
  /// Algorithm 2 is bounded in practice; this bounds it in theory too).
  size_t max_fusion_nodes = 20000;

  /// Worker-parallelism cap for the parallelizable stages: AGP, weight
  /// learning, and RSC run per block; FSCR runs sharded over tuples.
  /// Blocks (and tuples in stage II) are independent, and per-shard report
  /// entries are merged back in deterministic order, so any thread count
  /// (and any executor) produces a CleanResult bit-identical to the
  /// sequential run. 1 (default) keeps every stage sequential; 0 means
  /// "auto" (hardware concurrency). Workers come from `executor` (or the
  /// shared process pool), not from per-count pools — this knob only caps
  /// how many of its workers one stage loop may occupy.
  size_t num_threads = 1;

  /// Execution backend for the parallel stages. Null resolves from
  /// `num_threads`: the shared process-wide pool when it allows
  /// parallelism, inline execution otherwise. Set it to run cleaning work
  /// on a caller-owned PoolExecutor — the CleanServer does exactly that
  /// to schedule many concurrent sessions onto one worker set. Borrowed;
  /// must outlive every model compiled from these options. Not part of a
  /// model snapshot (model_io stores `num_threads` only; the serving
  /// process wires its own executor).
  Executor* executor = nullptr;

  /// Half-life, in contributed batches, of the Eq. 6 weight store's
  /// memory (0 = off, the default: plain all-history averaging). With a
  /// half-life H, every γ's previously stored support decays by 2^(-1/H)
  /// per batch folded into the store, so on a drifting stream the stored
  /// average tracks recent batches instead of pinning to stale history: a
  /// γ contributed H batches ago weighs half as much as one contributed
  /// now. Decay applies to the model's store (Warm / contribute_weights);
  /// the per-run distributed Eq. 6 merge is a one-shot average and
  /// ignores it. The snapshot format carries the decay state (batch
  /// counter and per-entry batch stamps), see docs/snapshot_format.md.
  size_t weight_half_life_batches = 0;

  /// Memoize pairwise value distances during AGP's abnormal-vs-normal γ*
  /// scan and RSC's per-group loops (one PieceDistanceMemo per block task,
  /// keyed on dictionary id pairs). Purely an evaluation cache: results
  /// are identical with it on or off. Re-measured against the bit-parallel
  /// edit-distance kernels (Myers over 64-column words, scratch-reusing):
  /// on 40- and 120-hospital at 5-10% error rate the memo now *loses*
  /// ~25-35% of AGP stage time and is a wash on RSC — a short-value
  /// kernel call is down to roughly the cost of the memo's hash probe, so
  /// the insert traffic for rarely-repeating distinct pairs is pure
  /// overhead (within a group most positions share one dictionary id,
  /// which short-circuits before either path). Off by default, and the
  /// bar for enabling it has risen with the kernels: it only pays for
  /// workloads with long values (where O(n*m/64) per call still dwarfs a
  /// probe) and heavy cross-block value-pair reuse.
  bool cache_distances = false;

  /// Minimality bias of FSCR: each attribute a candidate fusion changes
  /// away from the tuple's current (dirty) value multiplies its f-score
  /// by this factor. Pure Eq. 5 maximization ties between "repair the one
  /// corrupted cell" and "rewrite the tuple into a different, equally
  /// popular entity"; the discount resolves such ties toward the minimal
  /// repair, mirroring how the reliability score folds the minimality
  /// principle into stage I. 1.0 disables the bias.
  double fscr_minimality_discount = 0.25;

  /// Validates option consistency.
  Status Validate() const;

  /// num_threads with 0 resolved to the hardware concurrency (min 1).
  size_t ResolvedNumThreads() const;

  /// The executor the stage drivers run on: `executor` when set,
  /// otherwise the shared process pool (num_threads != 1) or the inline
  /// executor (num_threads == 1). Never null.
  Executor* ResolvedExecutor() const;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_CLEANING_OPTIONS_H_
