#include "cleaning/agp.h"

#include <iterator>
#include <limits>
#include <optional>

namespace mlnclean {

size_t RunAgp(Block* block, const CleaningOptions& options, const DistanceFn& dist,
              CleaningReport* report) {
  const size_t tau = options.agp_threshold;
  std::vector<size_t> normal_idx, abnormal_idx;
  for (size_t gi = 0; gi < block->groups.size(); ++gi) {
    if (block->groups[gi].TupleCount() <= tau) {
      abnormal_idx.push_back(gi);
    } else {
      normal_idx.push_back(gi);
    }
  }
  if (abnormal_idx.empty()) return 0;

  // One id-pair memo set for the whole abnormal × normal scan (values are
  // dictionary-interned at load time, so γ* pairs key directly on ids).
  // Each normal γ* pointer is resolved once; a group's entry is refreshed
  // only after a merge lands in it (merged-in pieces can change its γ*).
  std::optional<PieceDistanceMemo> memo;
  if (options.cache_distances) memo.emplace(dist);
  std::vector<const Piece*> normal_star(normal_idx.size(), nullptr);

  size_t merged_count = 0;
  std::vector<bool> remove(block->groups.size(), false);
  for (size_t ai : abnormal_idx) {
    Group& abnormal = block->groups[ai];
    AgpMergeRecord rec;
    rec.block = block->rule_index;
    rec.abnormal_key = abnormal.key;
    rec.num_pieces = abnormal.pieces.size();
    for (const auto& piece : abnormal.pieces) {
      rec.abnormal_tuples.insert(rec.abnormal_tuples.end(), piece.tuples.begin(),
                                 piece.tuples.end());
    }
    if (normal_idx.empty()) {
      // No normal group to merge into: leave the group in place.
      rec.merged = false;
      if (report) report->agp.push_back(std::move(rec));
      continue;
    }
    // Nearest normal group by γ*-to-γ* distance.
    const Piece& a_star = abnormal.Star();
    double best = std::numeric_limits<double>::infinity();
    size_t best_pos = 0;
    size_t best_gi = normal_idx.front();
    for (size_t pos = 0; pos < normal_idx.size(); ++pos) {
      const size_t ni = normal_idx[pos];
      if (normal_star[pos] == nullptr) {
        normal_star[pos] = &block->groups[ni].Star();
      }
      // Bounded by the running best: only the strict minimum matters, so
      // candidates may be abandoned mid-sum without changing the winner.
      double d = memo ? memo->DistanceBounded(a_star, *normal_star[pos], best)
                      : PieceDistanceBounded(a_star, *normal_star[pos], dist, best);
      if (d < best) {
        best = d;
        best_pos = pos;
        best_gi = ni;
      }
    }
    // The merge below can change the target's γ* and reallocate its pieces.
    normal_star[best_pos] = nullptr;
    Group& target = block->groups[best_gi];
    rec.target_key = target.key;
    rec.merged = true;
    for (auto& piece : abnormal.pieces) {
      target.pieces.push_back(std::move(piece));
    }
    abnormal.pieces.clear();
    remove[ai] = true;
    ++merged_count;
    if (report) report->agp.push_back(std::move(rec));
  }

  if (merged_count > 0) {
    std::vector<Group> kept;
    kept.reserve(block->groups.size() - merged_count);
    for (size_t gi = 0; gi < block->groups.size(); ++gi) {
      if (!remove[gi]) kept.push_back(std::move(block->groups[gi]));
    }
    block->groups = std::move(kept);
  }
  return merged_count;
}

void RunAgpAll(MlnIndex* index, const CleaningOptions& options, const DistanceFn& dist,
               CleaningReport* report, const ExecContext& ctx) {
  const size_t num_blocks = index->num_blocks();
  if (ctx.parallelism() <= 1 || num_blocks <= 1) {
    for (size_t bi = 0; bi < num_blocks; ++bi) {
      if (ctx.Stopped()) return;
      size_t merged = RunAgp(&index->block(bi), options, dist, report);
      if (merged > 0) index->ReindexBlock(bi);
      ctx.Tick(1);
    }
    return;
  }
  // Blocks are independent; collect per-block records and splice them back
  // in block order so the report is identical to the sequential run.
  std::vector<CleaningReport> local(report ? num_blocks : 0);
  ParallelFor(num_blocks, ctx, [&](size_t bi) {
    if (ctx.Stopped()) return;
    size_t merged = RunAgp(&index->block(bi), options, dist,
                           report ? &local[bi] : nullptr);
    if (merged > 0) index->ReindexBlock(bi);
    ctx.Tick(1);
  });
  if (report) {
    for (auto& block_report : local) {
      std::move(block_report.agp.begin(), block_report.agp.end(),
                std::back_inserter(report->agp));
    }
  }
}

}  // namespace mlnclean
