#include "cleaning/agp.h"

#include <limits>

namespace mlnclean {

size_t RunAgp(Block* block, const CleaningOptions& options, const DistanceFn& dist,
              CleaningReport* report) {
  const size_t tau = options.agp_threshold;
  std::vector<size_t> normal_idx, abnormal_idx;
  for (size_t gi = 0; gi < block->groups.size(); ++gi) {
    if (block->groups[gi].TupleCount() <= tau) {
      abnormal_idx.push_back(gi);
    } else {
      normal_idx.push_back(gi);
    }
  }
  if (abnormal_idx.empty()) return 0;

  size_t merged_count = 0;
  std::vector<bool> remove(block->groups.size(), false);
  for (size_t ai : abnormal_idx) {
    Group& abnormal = block->groups[ai];
    AgpMergeRecord rec;
    rec.block = block->rule_index;
    rec.abnormal_key = abnormal.key;
    rec.num_pieces = abnormal.pieces.size();
    for (const auto& piece : abnormal.pieces) {
      rec.abnormal_tuples.insert(rec.abnormal_tuples.end(), piece.tuples.begin(),
                                 piece.tuples.end());
    }
    if (normal_idx.empty()) {
      // No normal group to merge into: leave the group in place.
      rec.merged = false;
      if (report) report->agp.push_back(std::move(rec));
      continue;
    }
    // Nearest normal group by γ*-to-γ* distance.
    const Piece& a_star = abnormal.Star();
    double best = std::numeric_limits<double>::infinity();
    size_t best_gi = normal_idx.front();
    for (size_t ni : normal_idx) {
      double d = PieceDistance(a_star, block->groups[ni].Star(), dist);
      if (d < best) {
        best = d;
        best_gi = ni;
      }
    }
    Group& target = block->groups[best_gi];
    rec.target_key = target.key;
    rec.merged = true;
    for (auto& piece : abnormal.pieces) {
      target.pieces.push_back(std::move(piece));
    }
    abnormal.pieces.clear();
    remove[ai] = true;
    ++merged_count;
    if (report) report->agp.push_back(std::move(rec));
  }

  if (merged_count > 0) {
    std::vector<Group> kept;
    kept.reserve(block->groups.size() - merged_count);
    for (size_t gi = 0; gi < block->groups.size(); ++gi) {
      if (!remove[gi]) kept.push_back(std::move(block->groups[gi]));
    }
    block->groups = std::move(kept);
  }
  return merged_count;
}

void RunAgpAll(MlnIndex* index, const CleaningOptions& options, const DistanceFn& dist,
               CleaningReport* report) {
  for (size_t bi = 0; bi < index->num_blocks(); ++bi) {
    size_t merged = RunAgp(&index->block(bi), options, dist, report);
    if (merged > 0) index->ReindexBlock(bi);
  }
}

}  // namespace mlnclean
