// RSC — reliability-score based cleaning (Section 5.1.2, Definition 2).
// Within each group, the γ with the highest reliability score
//     r-score(γi) = min_{γ* in G - {γi}} dist(γi, γ*) · w(γi),
//     dist(γi, γ*) = n/Z · d(γi, γ*),
// is declared clean and every other γ in the group is rewritten to it
// (its tuples are re-associated with the winner), leaving exactly one γ
// per group.

#ifndef MLNCLEAN_CLEANING_RSC_H_
#define MLNCLEAN_CLEANING_RSC_H_

#include <vector>

#include "cleaning/options.h"
#include "cleaning/report.h"
#include "common/executor.h"
#include "index/mln_index.h"

namespace mlnclean {

/// Reliability scores of every γ in `group`, in piece order. Groups with a
/// single γ get the score n/Z·w with dist treated as 1 (they are skipped by
/// RSC anyway). Z is the maximum raw pairwise distance within the group.
/// `memo` (optional) memoizes the pairwise value distances on dictionary
/// id pairs; it may be shared across the groups of one block.
std::vector<double> ReliabilityScores(const Group& group, const DistanceFn& dist,
                                      PieceDistanceMemo* memo = nullptr);

/// Runs RSC over one group in place; appends one record per replaced γ.
void RunRscGroup(Group* group, size_t block_rule_index, const DistanceFn& dist,
                 CleaningReport* report, PieceDistanceMemo* memo = nullptr);

/// Runs RSC over every group of every block and refreshes the group maps.
/// Blocks run in parallel on `ctx`'s executor (one progress unit per
/// block); when `ctx` is stopped, blocks not yet started are skipped
/// (cooperative; the caller reports the terminal Status).
void RunRscAll(MlnIndex* index, const CleaningOptions& options, const DistanceFn& dist,
               CleaningReport* report, const ExecContext& ctx = {});

}  // namespace mlnclean

#endif  // MLNCLEAN_CLEANING_RSC_H_
