// CleaningReport: a structured trace of every decision the pipeline takes.
// The evaluation module joins it with the injected ground truth to compute
// the per-component accuracies of Section 7.3 (Precision/Recall-A, -R, -F
// and #dag).

#ifndef MLNCLEAN_CLEANING_REPORT_H_
#define MLNCLEAN_CLEANING_REPORT_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "dataset/dataset.h"
#include "dataset/schema.h"

namespace mlnclean {

/// One AGP decision: an abnormal group and where it was merged.
struct AgpMergeRecord {
  size_t block = 0;
  std::vector<Value> abnormal_key;
  /// Tuples inside the abnormal group when it was detected.
  std::vector<TupleId> abnormal_tuples;
  /// Number of γs in the abnormal group (contributes to #dag).
  size_t num_pieces = 0;
  /// Reason key of the normal group it was merged into; empty when the
  /// block had no normal group and the merge was skipped.
  std::vector<Value> target_key;
  bool merged = false;
};

/// One RSC replacement: a losing γ rewritten to the group's winner.
struct RscRepairRecord {
  size_t block = 0;
  std::vector<Value> group_key;
  /// reason+result values of the winning γ.
  std::vector<Value> winner_values;
  /// reason+result values of the replaced γ.
  std::vector<Value> loser_values;
  /// Tuples that carried the losing γ.
  std::vector<TupleId> affected_tuples;
};

/// FSCR outcome for one tuple.
struct FscrRecord {
  TupleId tuple = 0;
  /// Attributes on which at least two stage-1 versions disagreed.
  std::vector<AttrId> conflict_attrs;
  /// Whether a non-zero f-score fusion was found.
  bool fused = false;
  double f_score = 0.0;
};

/// Wall-clock breakdown of one pipeline run, in seconds.
struct StageTimings {
  double index = 0.0;
  double agp = 0.0;
  double learn = 0.0;
  double rsc = 0.0;
  double fscr = 0.0;
  double dedup = 0.0;
  double total = 0.0;
};

/// Full decision trace of a cleaning run.
struct CleaningReport {
  std::vector<AgpMergeRecord> agp;
  std::vector<RscRepairRecord> rsc;
  std::vector<FscrRecord> fscr;
  /// (removed tuple, kept representative) pairs from duplicate removal.
  std::vector<std::pair<TupleId, TupleId>> duplicates;
  StageTimings timings;

  /// #dag: total number of γs inside detected abnormal groups (Fig. 8).
  size_t NumDetectedAbnormalPieces() const;

  /// Number of groups AGP flagged abnormal.
  size_t NumDetectedAbnormalGroups() const { return agp.size(); }

  /// Short human-readable summary.
  std::string Summary() const;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_CLEANING_REPORT_H_
