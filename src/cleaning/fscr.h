// FSCR — fusion-score based conflict resolution (Section 5.2,
// Algorithm 2). After stage 1 every block holds one clean γ per group, so
// each tuple has up to |B| clean "versions" (one per rule it is in scope
// for). FSCR fuses them into a single clean tuple, maximizing the fusion
// score f-score(t) = Π w(γ) over merge orders; when two versions conflict
// on a shared attribute, the conflicting version is substituted by the
// highest-weight conflict-free γ of the same block, or the merge order is
// abandoned (f = 0).
//
// On top of the Eq. 5 product, candidate fusions are discounted per cell
// they change on the dirty tuple (CleaningOptions::fscr_minimality_discount)
// so that near-tied fusions resolve toward the minimal repair; the
// reported f_score includes this factor.

#ifndef MLNCLEAN_CLEANING_FSCR_H_
#define MLNCLEAN_CLEANING_FSCR_H_

#include "cleaning/options.h"
#include "cleaning/report.h"
#include "common/executor.h"
#include "index/mln_index.h"
#include "rules/constraint.h"

namespace mlnclean {

/// Runs FSCR: starting from the dirty dataset, writes the fused clean
/// values into `cleaned` (which must start as a copy of the dirty data)
/// and appends one FscrRecord per tuple to `report` (may be null).
/// `index` must have been through AGP + weight learning + RSC, i.e. every
/// group holds exactly one γ. Tuples run sharded on `ctx`'s executor (one
/// progress unit per fused tuple); when `ctx` is stopped, tuples not yet
/// fused are skipped (cooperative; the caller reports the terminal Status
/// and discards the partially fused copy).
void RunFscr(const Dataset& dirty, const RuleSet& rules, const MlnIndex& index,
             const CleaningOptions& options, Dataset* cleaned,
             CleaningReport* report, const ExecContext& ctx = {});

}  // namespace mlnclean

#endif  // MLNCLEAN_CLEANING_FSCR_H_
