// CleaningEngine: the prepared-model serving API of MLNClean.
//
// The two-stage design factors into a build-once phase (rule validation
// and compilation, reusable planning state, an Eq. 6 weight store) and a
// per-request repair phase. `CleaningEngine::Compile` performs the former
// and returns a `CleanModel`; `CleanModel::NewSession` binds the model to
// one (micro-)batch of dirty data and runs the pipeline with staged
// execution:
//
//   CleaningEngine engine(options);
//   MLN_ASSIGN_OR_RETURN(CleanModel model, engine.Compile(schema, rules));
//   CleanSession session = model.NewSession(batch);
//   MLN_RETURN_NOT_OK(session.RunUntil(Stage::kLearn));  // inspect weights
//   MLN_RETURN_NOT_OK(session.Resume());                 // finish the plan
//   MLN_ASSIGN_OR_RETURN(CleanResult result, session.TakeResult());
//
// Sessions support per-stage (and, on parallel executors, intra-stage)
// progress callbacks, a cooperative CancelToken that aborts between
// blocks/shards with Status::Cancelled, and an optional deadline enforced
// at the same boundaries (Status kDeadlineExceeded). Learned γ-weights
// persist on the model (`Warm`, `contribute_weights`), so serving K
// micro-batches against one prepared model amortizes the learn cost; with
// weight reuse off, a session is bit-identical to a cold
// `CleaningEngine::Clean` run on the same batch. For concurrent
// multi-batch serving, put a CleanServer (cleaning/server.h) in front of
// the model.

#ifndef MLNCLEAN_CLEANING_ENGINE_H_
#define MLNCLEAN_CLEANING_ENGINE_H_

#include <chrono>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "cleaning/options.h"
#include "cleaning/report.h"
#include "common/cancellation.h"
#include "common/executor.h"
#include "common/result.h"
#include "index/mln_index.h"
#include "index/weight_merge.h"
#include "rules/constraint.h"

namespace mlnclean {

/// Output of a cleaning run.
struct CleanResult {
  /// Repaired dataset, row-aligned with the dirty input (before duplicate
  /// removal) — the dataset accuracy metrics are computed on.
  Dataset cleaned;
  /// Final dataset after duplicate elimination.
  Dataset deduped;
  /// Decision trace and stage timings.
  CleaningReport report;
};

/// The pipeline stages, in execution order. `RunUntil(stage)` runs every
/// stage up to and including `stage`; `Stage::kDedup` is the full plan.
enum class Stage : int {
  kIndex = 0,  // MLN index construction (grounding + grouping)
  kAgp = 1,    // abnormal group processing
  kLearn = 2,  // γ weight learning (or prior/stored-weight assignment)
  kRsc = 3,    // reliability-score based cleaning
  kFscr = 4,   // fusion-score based conflict resolution
  kDedup = 5,  // duplicate elimination
};

inline constexpr int kNumStages = 6;

/// Short lowercase stage name ("index", "agp", ...).
const char* StageName(Stage stage);

/// One progress event. Sessions emit a pair per stage — units_done == 0
/// when the stage starts and units_done == units_total when it completes —
/// plus, when the stage runs on a parallel executor, intra-stage events
/// as blocks/shards complete. All events fire on the thread driving the
/// session (workers only tick an atomic counter; the driving thread
/// drains it between its own work items — a mutex-free MPSC path), so
/// the callback needs no synchronization of its own, and per stage the
/// units_done it sees are monotonically non-decreasing. Sequential
/// sections keep the plain begin/end pairs.
struct StageProgress {
  Stage stage = Stage::kIndex;
  /// Work units of the stage: rules for kIndex, blocks for kAgp/kLearn/
  /// kRsc, tuples for kFscr/kDedup.
  size_t units_done = 0;
  size_t units_total = 0;
  /// Seconds spent in the stage so far (0 at the start event).
  double seconds = 0.0;
};

using ProgressFn = std::function<void(const StageProgress&)>;

/// Per-session knobs (the cleaning knobs themselves live on the model).
struct SessionOptions {
  /// Called at every stage boundary; may call CancelToken::RequestCancel.
  ProgressFn progress;
  /// Cancels the run between blocks/shards; the session then reports
  /// Status::Cancelled and stays terminally cancelled.
  CancelToken cancel;
  /// Optional deadline, enforced at the same block/shard boundaries the
  /// cancel flag is polled at: once it passes, the session aborts with
  /// Status kDeadlineExceeded, stays terminal, and the input dataset is
  /// untouched (exactly the cancellation contract). A deadline already in
  /// the past fails the run before any stage work.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// CleanServer scheduling class: among queued submissions, a higher
  /// priority always pops first; within one priority the earliest
  /// deadline wins (EDF — a job without a deadline sorts after every job
  /// with one), and admission order breaks the remaining ties. 0 is the
  /// default class; the session itself ignores this field.
  int priority = 0;
  /// kLearn draws γ weights from the model's Eq. 6 store (Eq. 4 priors
  /// overridden by any stored weight) instead of running the Newton
  /// learner — the amortization lever for serving micro-batches. Falls
  /// back to fresh learning while the store is empty. Off by default:
  /// a fresh-weights session is bit-identical to a cold pipeline run.
  bool reuse_model_weights = false;
  /// After kLearn, folds this session's learned weights into the model's
  /// store (support-weighted, Eq. 6) so later sessions can reuse them.
  /// Only *freshly learned* weights contribute: a session that reused the
  /// store (or ran the prior-only ablation) never writes back, so the
  /// store cannot re-average itself or absorb unlearned priors.
  bool contribute_weights = false;
  /// When false, the per-decision trace (AGP/RSC/FSCR records, duplicate
  /// pairs) is not materialized — only stage timings are kept. Serving
  /// paths that never read the trace skip its allocation cost.
  bool collect_report = true;
  /// CleanServer routing flag: Submit appends this batch to the server's
  /// single live incremental session (created on first use) instead of
  /// opening a cold session, and the ticket resolves to the *accumulated*
  /// cleaned output over every batch appended so far. Incremental
  /// submissions are processed strictly in submission order, one at a
  /// time. The live session adopts the session-level flags (weight reuse/
  /// contribution, report collection) of the first incremental
  /// submission; per-job progress/cancel/deadline are not supported in
  /// this mode (a cancel would poison the shared stream) and are ignored.
  /// Direct engine users call CleanModel::NewIncrementalSession instead.
  bool incremental = false;
};

class CleanSession;
class StageProgressRelay;  // internal: the intra-stage progress sink

/// A compiled, reusable cleaning model: validated rules, resolved
/// options, and a store of learned γ weights shared by every session.
/// Cheap to copy (a shared handle); sessions keep the state alive.
class CleanModel {
 public:
  const Schema& schema() const;
  const RuleSet& rules() const;
  const CleaningOptions& options() const;

  /// Opens a staged session over `dirty`, which must outlive the session
  /// and match the model's schema (checked on the first Run* call).
  CleanSession NewSession(const Dataset& dirty, SessionOptions opts = {}) const;

  /// Opens a session positioned at Stage::kFscr over an externally built
  /// stage-I index (borrowed; must outlive the session) and an existing
  /// decision trace. Serves the stage-II-only flows (the deprecated
  /// pipeline facade, index hand-off between processes).
  CleanSession ResumeSession(const Dataset& dirty, const MlnIndex* index,
                             CleaningReport report, SessionOptions opts = {}) const;

  /// Opens an empty row-incremental session: feed it micro-batches with
  /// CleanSession::AppendRows, then Resume() to clean everything
  /// accumulated so far. The session owns the accumulated dataset and
  /// maintains the stage-I MlnIndex across appends (only new rows are
  /// re-ground), so each Resume is bit-identical to — but much cheaper
  /// than — a cold session over the concatenation of every batch appended
  /// so far (docs/streaming.md).
  CleanSession NewIncrementalSession(SessionOptions opts = {}) const;

  /// Reopens an incremental session from a serialized base index (loaded
  /// via CleaningEngine::LoadWithIndex): `accumulated` must be the rows
  /// the index was built over, appended in the original order (so the
  /// dictionaries reproduce the ids the index carries) — validated with
  /// MlnIndex::Validate before anything runs; a mismatch makes the
  /// session terminally Invalid. The cross-process continuation of a
  /// long-running stream.
  CleanSession ResumeIncrementalSession(Dataset accumulated, MlnIndex base,
                                        SessionOptions opts = {}) const;

  /// One-shot convenience: NewSession + Resume + TakeResult.
  Result<CleanResult> Clean(const Dataset& dirty, SessionOptions opts = {}) const;

  /// Runs index+AGP+learning over `sample` and stores the learned weights
  /// on the model, so sessions with `reuse_model_weights` skip the
  /// learner. Equivalent to a contribute-only session run to kLearn.
  Status Warm(const Dataset& sample) const;

  /// γs with a stored (Eq. 6 merged) weight.
  size_t num_stored_weights() const;

  /// Writes a versioned binary snapshot of the model — schema, rules,
  /// resolved options, and the Eq. 6 weight store with its interners — to
  /// `out`, so a serving process can `CleaningEngine::Load` it and serve
  /// micro-batches bit-identically to this in-process model. Safe to call
  /// while sessions run (the store is read under the shared lock). Format
  /// and version policy: cleaning/model_io.h and docs/snapshot_format.md.
  Status Save(std::ostream& out) const;

  /// Save plus a serialized stage-I index: writes a v5 snapshot whose
  /// index section carries `index` (a pre-AGP index over `indexed_rows`
  /// rows — an incremental session's base_index()), so another process
  /// can LoadWithIndex + ResumeIncrementalSession and keep appending
  /// without re-grounding history. Plain CleaningEngine::Load reads the
  /// same snapshot and simply drops the index.
  Status Save(std::ostream& out, const MlnIndex& index, size_t indexed_rows) const;

  /// Crash-safe Save: encodes the snapshot, writes it to a temp file next
  /// to `path`, fsyncs, then atomically renames over `path` (and fsyncs
  /// the parent directory). A crash or failure at any point leaves either
  /// the old file intact or the new one complete — never a torn snapshot
  /// at `path`; the temp file is unlinked on every failure path.
  Status SaveToFile(const std::string& path) const;

  /// Crash-safe SaveToFile carrying a stage-I index (see the Save
  /// overload above).
  Status SaveToFile(const std::string& path, const MlnIndex& index,
                    size_t indexed_rows) const;

  /// Model-level Eq. 6 weight adjustment across concurrent sessions (the
  /// distributed driver's global merge): every γ learned in several
  /// sessions gets the support-weighted average of its per-session
  /// weights, written back into every session's index. Each session must
  /// have completed Stage::kLearn and not yet run Stage::kRsc. Returns
  /// the number of γs in the merged global weight table.
  Result<size_t> AdjustWeightsAcross(const std::vector<CleanSession*>& sessions) const;

 private:
  friend class CleaningEngine;
  friend class CleanSession;
  struct State;
  explicit CleanModel(std::shared_ptr<State> state) : state_(std::move(state)) {}
  /// Serializes the snapshot to its wire bytes (model_io.cc); `index` may
  /// be null (empty index section).
  Result<std::string> EncodeSnapshotBytes(const MlnIndex* index,
                                          size_t indexed_rows) const;
  std::shared_ptr<State> state_;
};

/// One staged cleaning run of a model over one dataset. Move-only; the
/// dirty dataset is borrowed and never mutated (repairs are written into
/// the session-owned `cleaned()` copy), so a cancelled or failed run
/// leaves the input untouched.
class CleanSession {
 public:
  // Out-of-line: the progress relay member is an incomplete type here.
  CleanSession(CleanSession&&) noexcept;
  CleanSession& operator=(CleanSession&&) noexcept;
  ~CleanSession();
  CleanSession(const CleanSession&) = delete;
  CleanSession& operator=(const CleanSession&) = delete;

  /// Runs every not-yet-run stage up to and including `last`. Stages
  /// already behind the cursor are not re-run (so RunUntil(kAgp) after
  /// RunUntil(kLearn) is an OK no-op). On cancellation or failure the
  /// session becomes terminal and every later call returns that Status.
  Status RunUntil(Stage last);

  /// Runs the remaining stages to completion: RunUntil(Stage::kDedup).
  Status Resume();

  /// Incremental sessions only: appends `batch`'s rows to the session's
  /// accumulated dataset and rewinds the stage cursor to Stage::kIndex,
  /// so the next Run*/Resume recleans the whole accumulation — but the
  /// index stage only grounds the rows appended since the last run
  /// (MlnIndex::AppendRows), which is where the incremental saving lives.
  /// The batch must match the model's schema; a mismatched batch is
  /// rejected without poisoning the session. Invalid on non-incremental
  /// sessions; the terminal Status on a dead one.
  Status AppendRows(const Dataset& batch);

  /// True for sessions opened with NewIncrementalSession /
  /// ResumeIncrementalSession.
  bool incremental() const { return incremental_; }

  /// Incremental sessions: the rows accumulated across every AppendRows.
  /// (Non-incremental sessions: the borrowed dirty batch.)
  const Dataset& data() const { return *dirty_; }

  /// Incremental sessions, after the index stage has run: the maintained
  /// pre-AGP base index over the accumulated rows — what
  /// CleanModel::Save(out, base_index(), data().num_rows()) snapshots for
  /// a cross-process ResumeIncrementalSession. (The stage-II index()
  /// accessor returns the per-run working copy AGP/RSC mutate instead.)
  const MlnIndex& base_index() const { return base_index_; }

  /// The first stage a Run* call would execute next.
  Stage next_stage() const { return static_cast<Stage>(next_); }
  /// True once every stage has run.
  bool finished() const { return next_ >= kNumStages; }

  /// Decision trace accumulated so far.
  const CleaningReport& report() const { return report_; }
  /// Mutable trace, for callers that move it out or splice records in
  /// (the deprecated pipeline facade's report-passing contract).
  CleaningReport* mutable_report() { return &report_; }

  /// The stage-I index; meaningful after Stage::kIndex has run.
  const MlnIndex& index() const {
    return borrowed_index_ != nullptr ? *borrowed_index_ : owned_index_;
  }
  /// Mutable index between stages (the model-level weight merge writes
  /// through this). Null for ResumeSession-borrowed indexes.
  MlnIndex* mutable_index() {
    return borrowed_index_ == nullptr ? &owned_index_ : nullptr;
  }

  /// Repaired dataset; meaningful after Stage::kFscr has run.
  const Dataset& cleaned() const { return cleaned_; }
  /// Deduplicated dataset; meaningful after Stage::kDedup has run.
  const Dataset& deduped() const { return deduped_; }

  /// Moves the run's output out of a finished session (Invalid if stages
  /// remain, the terminal Status if the run failed or was cancelled).
  Result<CleanResult> TakeResult();

 private:
  friend class CleanModel;
  CleanSession(std::shared_ptr<CleanModel::State> model, const Dataset* dirty,
               SessionOptions opts);

  Status RunStage(Stage stage, const ExecContext& ctx);
  /// The execution context stage drivers run under: the model's resolved
  /// executor and thread cap, this session's cancel flag and deadline.
  ExecContext MakeContext() const;
  /// Maps a stop observed at a boundary to the terminal Status: an
  /// expired deadline wins unless the user also cancelled explicitly.
  Status StopStatus(const char* when, Stage stage) const;
  void EmitProgress(Stage stage, size_t done, size_t total, double seconds);
  size_t StageUnits(Stage stage) const;

  std::shared_ptr<CleanModel::State> model_;  // shared: pins the model state
  const Dataset* dirty_;
  SessionOptions opts_;
  DistanceFn dist_;
  // Incremental sessions own their accumulated rows (dirty_ points here;
  // behind unique_ptr so the defaulted moves keep dirty_ valid) and keep
  // the pre-AGP base index alive across appends; grounded_rows_ counts
  // the rows base_index_ already covers.
  std::unique_ptr<Dataset> accumulated_;
  MlnIndex base_index_;
  size_t grounded_rows_ = 0;
  bool incremental_ = false;
  MlnIndex owned_index_;
  const MlnIndex* borrowed_index_ = nullptr;  // ResumeSession only
  CleaningReport report_;
  Dataset cleaned_;
  Dataset deduped_;
  std::unique_ptr<StageProgressRelay> relay_;  // set iff opts_.progress
  int next_ = 0;
  Status terminal_;  // sticky failure/cancellation; OK while runnable
};

/// A snapshot decoded together with its optional index section (v5):
/// what CleaningEngine::LoadWithIndex returns.
struct LoadedSnapshot {
  CleanModel model;
  /// The serialized pre-AGP base index, when the snapshot carries one.
  std::optional<MlnIndex> index;
  /// Rows of the accumulated dataset the saved index covers (0 without an
  /// index) — ResumeIncrementalSession's caller rebuilds that dataset and
  /// can sanity-check the row count before handing it over.
  size_t indexed_rows = 0;
};

/// Compiles rule sets into reusable CleanModels. Construction only stores
/// the default options; all validation happens in Compile, so a misconfig
/// surfaces once per model, not once per request.
class CleaningEngine {
 public:
  explicit CleaningEngine(CleaningOptions defaults = {});

  const CleaningOptions& options() const { return defaults_; }

  /// Validates `options` and every rule (schema match, index
  /// compatibility) and returns a prepared model. `rules` is copied onto
  /// the model; the schema must equal `rules.schema()`.
  Result<CleanModel> Compile(const Schema& schema, const RuleSet& rules,
                             const CleaningOptions& options) const;
  /// Compile with the engine's default options.
  Result<CleanModel> Compile(const Schema& schema, const RuleSet& rules) const;

  /// One-shot convenience for single batches: Compile + model.Clean. This
  /// is the cold path — it validates and compiles per call, which is
  /// exactly the cost a kept CleanModel (or a CleanServer) amortizes away
  /// when more than one batch arrives.
  Result<CleanResult> Clean(const Dataset& dirty, const RuleSet& rules,
                            SessionOptions opts = {}) const;

  /// Reads a snapshot written by CleanModel::Save and returns a model
  /// equivalent to the saved one: same schema, rules, options (the
  /// snapshot's options override this engine's defaults), and the same
  /// stored γ weights bit-for-bit. Malformed input (bad magic, framing,
  /// structure) is rejected with StatusCode::kInvalid naming the
  /// offending byte position — the decoder never reads past a section's
  /// declared length; torn or bit-rotted content whose framing still
  /// parses is rejected with StatusCode::kCorruption naming the section
  /// and its byte range (the per-section checksum).
  Result<CleanModel> Load(std::istream& in) const;

  /// Load from a file path (the counterpart of CleanModel::SaveToFile).
  Result<CleanModel> LoadFromFile(const std::string& path) const;

  /// Like Load, but also decodes the snapshot's index section when one is
  /// present — the cross-process continuation path: LoadWithIndex, rebuild
  /// the accumulated dataset, then CleanModel::ResumeIncrementalSession.
  /// Snapshots without a saved index load fine (`index` is empty).
  Result<LoadedSnapshot> LoadWithIndex(std::istream& in) const;

  /// LoadWithIndex from a file path.
  Result<LoadedSnapshot> LoadWithIndexFromFile(const std::string& path) const;

 private:
  CleaningOptions defaults_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_CLEANING_ENGINE_H_
