#include "cleaning/report.h"

#include <sstream>

namespace mlnclean {

size_t CleaningReport::NumDetectedAbnormalPieces() const {
  size_t n = 0;
  for (const auto& rec : agp) n += rec.num_pieces;
  return n;
}

std::string CleaningReport::Summary() const {
  std::ostringstream out;
  out << "agp: " << agp.size() << " abnormal groups (" << NumDetectedAbnormalPieces()
      << " pieces); rsc: " << rsc.size() << " replacements; fscr: ";
  size_t conflicted = 0;
  for (const auto& rec : fscr) {
    if (!rec.conflict_attrs.empty()) ++conflicted;
  }
  out << conflicted << "/" << fscr.size() << " tuples with conflicts; duplicates: "
      << duplicates.size();
  return out.str();
}

}  // namespace mlnclean
