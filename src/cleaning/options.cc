#include "cleaning/options.h"

#include <algorithm>
#include <thread>

#include "common/status.h"

namespace mlnclean {

size_t CleaningOptions::ResolvedNumThreads() const {
  if (num_threads != 0) return num_threads;
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

Executor* CleaningOptions::ResolvedExecutor() const {
  if (executor != nullptr) return executor;
  return ResolvedNumThreads() <= 1 ? SequentialExecutor() : ProcessExecutor();
}

Status CleaningOptions::Validate() const {
  if (learner.max_iterations < 0) {
    return Status::Invalid("learner.max_iterations must be >= 0");
  }
  if (learner.l2 < 0.0) {
    return Status::Invalid("learner.l2 must be >= 0");
  }
  if (max_fusion_nodes == 0) {
    return Status::Invalid("max_fusion_nodes must be > 0");
  }
  if (fscr_minimality_discount <= 0.0 || fscr_minimality_discount > 1.0) {
    return Status::Invalid("fscr_minimality_discount must be in (0, 1]");
  }
  return Status::OK();
}

}  // namespace mlnclean
