#include "cleaning/server.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "common/failpoint.h"

namespace mlnclean {

/// One submission. The ticket and the worker share it; its own mutex
/// covers only the terminal hand-off (status/result/done), so a ticket
/// waiting on one job never contends with the server's admission lock.
struct ServerJob {
  const Dataset* dirty = nullptr;
  /// Set by the owning Submit overloads; `dirty` then points here.
  std::optional<Dataset> owned;
  SessionOptions opts;

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool done = false;
  bool taken = false;
  Status status;
  std::optional<CleanResult> result;
};

/// State shared by the server handle, its tickets, and the worker tasks
/// scheduled on the executor. Worker tasks hold a shared_ptr, so work
/// drains even after the last CleanServer handle is gone.
struct ServerState {
  ServerState(CleanModel model_in, ServerOptions options_in)
      : model(std::move(model_in)), options(options_in) {}

  const CleanModel model;
  const ServerOptions options;

  std::mutex mu;  // guards everything below
  std::deque<std::shared_ptr<ServerJob>> queue;
  size_t workers = 0;  // worker loops scheduled or running
  size_t running = 0;  // jobs currently executing
  ServerStats totals;  // queued/running are derived on snapshot

  // Incremental serving lane: submissions flagged SessionOptions::
  // incremental feed one live row-incremental session through their own
  // FIFO, drained by a single task (never two), so batches append in
  // strict submission order — the ordering the concatenation-bit-identity
  // contract is defined over. The session itself is only ever touched by
  // the lone drainer; the mutex covers just the queue and the
  // draining flag.
  std::deque<std::shared_ptr<ServerJob>> inc_queue;
  bool inc_draining = false;
  std::unique_ptr<CleanSession> inc_session;  // drainer-only access
};

namespace {

void AddTimings(StageTimings* into, const StageTimings& t) {
  into->index += t.index;
  into->agp += t.agp;
  into->learn += t.learn;
  into->rsc += t.rsc;
  into->fscr += t.fscr;
  into->dedup += t.dedup;
  into->total += t.total;
}

void RunJob(const std::shared_ptr<ServerState>& state,
            const std::shared_ptr<ServerJob>& job) {
  Status status;
  std::optional<CleanResult> result;
  StageTimings timings;
  // Backstop exception boundary: the session already converts stage and
  // progress-callback exceptions to Status, but anything that still
  // escapes (session construction, result hand-off, injected faults)
  // must become a failed ticket — an exception leaving this frame would
  // take down the executor thread and strand every waiter.
  try {
    MLN_FAILPOINT("server/worker-loop");
    CleanSession session = state->model.NewSession(*job->dirty, job->opts);
    status = session.Resume();
    timings = session.report().timings;
    if (status.ok()) {
      Result<CleanResult> taken = session.TakeResult();
      if (taken.ok()) {
        result = std::move(taken).ValueUnsafe();
      } else {
        status = taken.status();
      }
    }
  } catch (...) {
    status = StatusFromCurrentException("serving job failed");
    result.reset();
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    AddTimings(&state->totals.stage_seconds, timings);
    if (status.ok()) {
      ++state->totals.completed;
    } else if (status.IsCancelled()) {
      ++state->totals.cancelled;
    } else if (status.IsDeadlineExceeded()) {
      ++state->totals.deadline_expired;
    } else {
      ++state->totals.failed;
    }
  }
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->status = std::move(status);
    job->result = std::move(result);
    job->done = true;
  }
  job->cv.notify_all();
}

// Appends one incremental submission to the live session and resolves its
// ticket with the accumulated output. Runs only on the single drainer
// task, so the session needs no lock of its own.
void RunIncrementalJob(const std::shared_ptr<ServerState>& state,
                       const std::shared_ptr<ServerJob>& job) {
  Status status;
  std::optional<CleanResult> result;
  StageTimings timings;
  try {
    if (state->inc_session == nullptr) {
      // The live session adopts the first submission's session-level
      // flags (documented in SessionOptions::incremental); per-job
      // progress/cancel/deadline stay off — they would act on the shared
      // stream, not one job.
      SessionOptions sopts;
      sopts.reuse_model_weights = job->opts.reuse_model_weights;
      sopts.contribute_weights = job->opts.contribute_weights;
      sopts.collect_report = job->opts.collect_report;
      state->inc_session = std::make_unique<CleanSession>(
          state->model.NewIncrementalSession(std::move(sopts)));
    }
    CleanSession& session = *state->inc_session;
    status = session.AppendRows(*job->dirty);
    if (status.ok()) status = session.Resume();
    timings = session.report().timings;
    if (status.ok()) {
      // The accumulated outputs stay on the session for the next append;
      // the ticket gets copies.
      CleanResult out;
      out.cleaned = session.cleaned().Clone();
      out.deduped = session.deduped().Clone();
      out.report = session.report();
      result = std::move(out);
    }
  } catch (...) {
    status = StatusFromCurrentException("incremental serving job failed");
    result.reset();
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    AddTimings(&state->totals.stage_seconds, timings);
    if (status.ok()) {
      ++state->totals.completed;
    } else {
      ++state->totals.failed;
    }
  }
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->status = std::move(status);
    job->result = std::move(result);
    job->done = true;
  }
  job->cv.notify_all();
}

// The incremental lane's single drainer: runs submissions in FIFO order
// until the lane is empty, then retires (Submit spawns a new drainer when
// the next incremental batch arrives). At most one drainer exists at any
// time; successive drainers hand the session off through the state lock.
void RunIncrementalDrainer(const std::shared_ptr<ServerState>& state) {
  for (;;) {
    std::shared_ptr<ServerJob> job;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->inc_queue.empty()) {
        state->inc_draining = false;
        return;
      }
      job = std::move(state->inc_queue.front());
      state->inc_queue.pop_front();
      ++state->running;
    }
    RunIncrementalJob(state, job);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      --state->running;
    }
  }
}

// One worker task: runs queued jobs until the queue is empty, then
// retires. Submit schedules a new worker whenever fewer than
// max_concurrent_sessions are alive, so the worker count breathes with
// the load instead of parking executor threads on an idle server.
void RunWorker(const std::shared_ptr<ServerState>& state) {
  for (;;) {
    std::shared_ptr<ServerJob> job;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->queue.empty()) {
        --state->workers;
        return;
      }
      job = std::move(state->queue.front());
      state->queue.pop_front();
      ++state->running;
    }
    RunJob(state, job);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      --state->running;
    }
  }
}

}  // namespace

// ------------------------------------------------------------- CleanTicket

bool CleanTicket::done() const {
  std::lock_guard<std::mutex> lock(job_->mu);
  return job_->done;
}

Status CleanTicket::Wait() const {
  std::unique_lock<std::mutex> lock(job_->mu);
  job_->cv.wait(lock, [this] { return job_->done; });
  return job_->status;
}

std::optional<Result<CleanResult>> CleanTicket::TryGet() {
  std::lock_guard<std::mutex> lock(job_->mu);
  if (!job_->done) return std::nullopt;
  if (!job_->status.ok()) return Result<CleanResult>(job_->status);
  if (job_->taken || !job_->result.has_value()) {
    return Result<CleanResult>(
        Status::Invalid("result already taken from this ticket"));
  }
  job_->taken = true;
  Result<CleanResult> out(std::move(*job_->result));
  job_->result.reset();
  return out;
}

Result<CleanResult> CleanTicket::Take() {
  Wait();
  return *TryGet();  // non-empty: the job is done
}

void CleanTicket::Cancel() { job_->opts.cancel.RequestCancel(); }

// ------------------------------------------------------------- CleanServer

Result<CleanServer> CleanServer::Create(CleanModel model, ServerOptions options) {
  if (options.executor == nullptr) options.executor = ProcessExecutor();
  if (options.max_concurrent_sessions == 0) {
    options.max_concurrent_sessions = options.executor->concurrency();
  }
  if (options.queue_capacity == 0) {
    return Status::Invalid("queue_capacity must be at least 1");
  }
  return CleanServer(std::make_shared<ServerState>(std::move(model), options));
}

Result<CleanTicket> CleanServer::Submit(const Dataset& dirty, SessionOptions opts) {
  auto job = std::make_shared<ServerJob>();
  job->dirty = &dirty;
  job->opts = std::move(opts);
  return Enqueue(std::move(job));
}

Result<CleanTicket> CleanServer::Submit(Dataset&& dirty, SessionOptions opts) {
  auto job = std::make_shared<ServerJob>();
  job->owned.emplace(std::move(dirty));
  job->dirty = &*job->owned;
  job->opts = std::move(opts);
  return Enqueue(std::move(job));
}

Result<CleanTicket> CleanServer::SubmitCsv(std::string_view csv_text,
                                           SessionOptions opts,
                                           QuarantineReport* quarantine) {
  MLN_ASSIGN_OR_RETURN(Dataset batch, Dataset::FromCsv(csv_text, quarantine));
  return Submit(std::move(batch), std::move(opts));
}

Result<CleanTicket> CleanServer::SubmitWithRetry(const Dataset& dirty,
                                                 SessionOptions opts,
                                                 const RetryPolicy& policy,
                                                 size_t* retries_out) {
  MLN_RETURN_NOT_OK(policy.Validate());
  RetrySchedule schedule(policy);
  for (;;) {
    Result<CleanTicket> ticket = Submit(dirty, opts);
    const bool out_of_attempts = schedule.retries() + 1 >= policy.max_attempts;
    if (ticket.ok() || !RetryPolicy::IsRetryable(ticket.status()) ||
        out_of_attempts) {
      if (retries_out != nullptr) *retries_out = schedule.retries();
      return ticket;
    }
    std::this_thread::sleep_for(schedule.NextDelay());
  }
}

Result<CleanTicket> CleanServer::Enqueue(std::shared_ptr<ServerJob> job) {
  bool spawn = false;
  const bool incremental = job->opts.incremental;
  try {
    MLN_FAILPOINT("server/admission");
    std::lock_guard<std::mutex> lock(state_->mu);
    auto& queue = incremental ? state_->inc_queue : state_->queue;
    const size_t depth = queue.size();
    if (depth >= state_->options.queue_capacity) {
      ++state_->totals.rejected;
      return Status::Unavailable(
          "server queue is full (" + std::to_string(depth) + " of " +
          std::to_string(state_->options.queue_capacity) +
          " pending submissions); retry later");
    }
    queue.push_back(job);
    ++state_->totals.submitted;
    if (incremental) {
      // One drainer, ever: submission order is append order.
      if (!state_->inc_draining) {
        state_->inc_draining = true;
        spawn = true;
      }
    } else if (state_->workers < state_->options.max_concurrent_sessions) {
      ++state_->workers;
      spawn = true;
    }
  } catch (...) {
    // The job was not enqueued (push_back is the only throwing statement
    // past the capacity check, and a failed push leaves the deque
    // unchanged), so rejecting here keeps the queue and counters
    // consistent for the next Submit.
    return StatusFromCurrentException("submit failed");
  }
  // Submitted outside the admission lock: an InlineExecutor runs the
  // whole worker loop right here, and it must be free to take that lock.
  if (spawn) {
    std::shared_ptr<ServerState> state = state_;
    if (incremental) {
      state_->options.executor->Submit([state] { RunIncrementalDrainer(state); });
    } else {
      state_->options.executor->Submit([state] { RunWorker(state); });
    }
  }
  return CleanTicket(std::move(job));
}

ServerStats CleanServer::Stats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  ServerStats stats = state_->totals;
  stats.queued = state_->queue.size() + state_->inc_queue.size();
  stats.running = state_->running;
  return stats;
}

const CleanModel& CleanServer::model() const { return state_->model; }

}  // namespace mlnclean
