#include "cleaning/server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"

namespace mlnclean {

/// One submission. The ticket and the worker share it; its own mutex
/// covers only the pause/terminal hand-off (paused/status/result/done),
/// so a ticket waiting on one job never contends with the server's
/// admission lock.
struct ServerJob {
  const Dataset* dirty = nullptr;
  /// Set by the owning Submit overloads; `dirty` then points here.
  std::optional<Dataset> owned;
  SessionOptions opts;

  // Scheduling keys, assigned once under the server lock at admission.
  // The queue pops by (opts.priority desc, opts.deadline asc, seq asc);
  // a resumed staged job keeps its original seq, so it re-queues at its
  // original rank within its class.
  uint64_t seq = 0;
  std::chrono::steady_clock::time_point submitted_at;

  // Staged submissions (SubmitStaged): leg 1 runs to `pause_after` and
  // parks, leg 2 (after ResumeJob) runs to `final_stage`. The live
  // session survives the park; `server` is what ResumeJob re-enqueues
  // into (set only for staged jobs — a plain job never needs the server
  // back).
  std::optional<Stage> pause_after;
  Stage final_stage = Stage::kDedup;
  std::unique_ptr<CleanSession> session;
  std::shared_ptr<ServerState> server;

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool paused = false;   // staged: parked at pause_after, session readable
  bool resumed = false;  // staged: ResumeJob already re-enqueued it
  bool done = false;
  bool taken = false;
  Status status;
  std::optional<CleanResult> result;
};

/// State shared by the server handle, its tickets, and the worker tasks
/// scheduled on the executor. Worker tasks hold a shared_ptr, so work
/// drains even after the last CleanServer handle is gone.
struct ServerState {
  ServerState(CleanModel model_in, ServerOptions options_in)
      : model(std::move(model_in)), options(options_in) {}

  const CleanModel model;
  const ServerOptions options;

  std::mutex mu;  // guards everything below
  /// The pending cold-lane queue, kept as a binary heap under JobAfter
  /// (std::push_heap/pop_heap): top = highest priority, then earliest
  /// deadline, then lowest admission seq — plain FIFO when nobody sets
  /// priorities or deadlines.
  std::deque<std::shared_ptr<ServerJob>> queue;
  uint64_t next_seq = 0;  // admission order stamp
  size_t workers = 0;  // worker loops scheduled or running
  size_t running = 0;  // jobs currently executing
  ServerStats totals;  // queued/running/latency are derived on snapshot
  /// Submit-to-terminal latencies, recorded under `mu` at job completion;
  /// Stats() copies the window out and sorts outside the lock.
  LatencyReservoir latencies;

  // Incremental serving lane: submissions flagged SessionOptions::
  // incremental feed one live row-incremental session through their own
  // FIFO, drained by a single task (never two), so batches append in
  // strict submission order — the ordering the concatenation-bit-identity
  // contract is defined over. The session itself is only ever touched by
  // the lone drainer; the mutex covers just the queue and the
  // draining flag.
  std::deque<std::shared_ptr<ServerJob>> inc_queue;
  bool inc_draining = false;
  std::unique_ptr<CleanSession> inc_session;  // drainer-only access
};

namespace {

void AddTimings(StageTimings* into, const StageTimings& t) {
  into->index += t.index;
  into->agp += t.agp;
  into->learn += t.learn;
  into->rsc += t.rsc;
  into->fscr += t.fscr;
  into->dedup += t.dedup;
  into->total += t.total;
}

// Heap comparator: true when `a` should pop *after* `b`. Higher priority
// first; within a priority the earliest deadline (EDF — no deadline sorts
// after every deadline), then admission order.
bool JobAfter(const std::shared_ptr<ServerJob>& a,
              const std::shared_ptr<ServerJob>& b) {
  if (a->opts.priority != b->opts.priority) {
    return a->opts.priority < b->opts.priority;
  }
  constexpr auto kNever = std::chrono::steady_clock::time_point::max();
  const auto da = a->opts.deadline.value_or(kNever);
  const auto db = b->opts.deadline.value_or(kNever);
  if (da != db) return da > db;
  return a->seq > b->seq;
}

void RunJob(const std::shared_ptr<ServerState>& state,
            const std::shared_ptr<ServerJob>& job) {
  Status status;
  std::optional<CleanResult> result;
  StageTimings timings;
  bool pause = false;  // this leg ends parked at pause_after, not terminal
  // Backstop exception boundary: the session already converts stage and
  // progress-callback exceptions to Status, but anything that still
  // escapes (session construction, result hand-off, injected faults)
  // must become a failed ticket — an exception leaving this frame would
  // take down the executor thread and strand every waiter.
  try {
    MLN_FAILPOINT("server/worker-loop");
    bool resumed_leg = false;
    if (job->pause_after.has_value()) {
      std::lock_guard<std::mutex> lock(job->mu);
      resumed_leg = job->resumed;
    }
    if (job->pause_after.has_value() && !resumed_leg) {
      // Staged leg 1: open the live session, run to the pause stage. The
      // session outlives this leg on the job; the coordinating caller
      // owns it between WaitPaused and ResumeJob.
      job->session = std::make_unique<CleanSession>(
          state->model.NewSession(*job->dirty, job->opts));
      status = job->session->RunUntil(*job->pause_after);
      if (status.ok()) {
        pause = true;
      } else {
        timings = job->session->report().timings;
      }
    } else if (job->session != nullptr) {
      // Staged leg 2: finish the parked session. With a final stage short
      // of kDedup the outputs deliberately stay on the session — the
      // fleet's merge reads session()->cleaned(), there is no CleanResult
      // to move.
      status = job->session->RunUntil(job->final_stage);
      timings = job->session->report().timings;
      if (status.ok() && job->final_stage == Stage::kDedup) {
        Result<CleanResult> taken = job->session->TakeResult();
        if (taken.ok()) {
          result = std::move(taken).ValueUnsafe();
        } else {
          status = taken.status();
        }
      }
    } else {
      CleanSession session = state->model.NewSession(*job->dirty, job->opts);
      status = session.Resume();
      timings = session.report().timings;
      if (status.ok()) {
        Result<CleanResult> taken = session.TakeResult();
        if (taken.ok()) {
          result = std::move(taken).ValueUnsafe();
        } else {
          status = taken.status();
        }
      }
    }
  } catch (...) {
    status = StatusFromCurrentException("serving job failed");
    result.reset();
  }
  if (pause) {
    // Parked OK at the pause stage: wake WaitPaused() callers and leave
    // the job non-terminal. Timings, terminal counters, and the latency
    // sample are all recorded once, when the resumed leg finishes.
    {
      std::lock_guard<std::mutex> lock(state->mu);
      --state->running;
    }
    {
      std::lock_guard<std::mutex> lock(job->mu);
      job->paused = true;
    }
    job->cv.notify_all();
    return;
  }
  // `running` drops in the same critical section as the terminal
  // counters, *before* the done flag wakes Wait()ers — a caller
  // snapshotting Stats() right after Wait() must never see this job
  // still counted as running.
  {
    std::lock_guard<std::mutex> lock(state->mu);
    --state->running;
    AddTimings(&state->totals.stage_seconds, timings);
    state->latencies.Add(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - job->submitted_at)
                             .count());
    if (status.ok()) {
      ++state->totals.completed;
    } else if (status.IsCancelled()) {
      ++state->totals.cancelled;
    } else if (status.IsDeadlineExceeded()) {
      ++state->totals.deadline_expired;
    } else {
      ++state->totals.failed;
    }
  }
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->status = std::move(status);
    job->result = std::move(result);
    job->done = true;
  }
  job->cv.notify_all();
}

// Appends one incremental submission to the live session and resolves its
// ticket with the accumulated output. Runs only on the single drainer
// task, so the session needs no lock of its own.
void RunIncrementalJob(const std::shared_ptr<ServerState>& state,
                       const std::shared_ptr<ServerJob>& job) {
  Status status;
  std::optional<CleanResult> result;
  StageTimings timings;
  try {
    if (state->inc_session == nullptr) {
      // The live session adopts the first submission's session-level
      // flags (documented in SessionOptions::incremental); per-job
      // progress/cancel/deadline stay off — they would act on the shared
      // stream, not one job.
      SessionOptions sopts;
      sopts.reuse_model_weights = job->opts.reuse_model_weights;
      sopts.contribute_weights = job->opts.contribute_weights;
      sopts.collect_report = job->opts.collect_report;
      state->inc_session = std::make_unique<CleanSession>(
          state->model.NewIncrementalSession(std::move(sopts)));
    }
    CleanSession& session = *state->inc_session;
    status = session.AppendRows(*job->dirty);
    if (status.ok()) status = session.Resume();
    timings = session.report().timings;
    if (status.ok()) {
      // The accumulated outputs stay on the session for the next append;
      // the ticket gets copies.
      CleanResult out;
      out.cleaned = session.cleaned().Clone();
      out.deduped = session.deduped().Clone();
      out.report = session.report();
      result = std::move(out);
    }
  } catch (...) {
    status = StatusFromCurrentException("incremental serving job failed");
    result.reset();
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    --state->running;  // before the done flag wakes Wait()ers (see RunJob)
    AddTimings(&state->totals.stage_seconds, timings);
    state->latencies.Add(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - job->submitted_at)
                             .count());
    if (status.ok()) {
      ++state->totals.completed;
    } else {
      ++state->totals.failed;
    }
  }
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->status = std::move(status);
    job->result = std::move(result);
    job->done = true;
  }
  job->cv.notify_all();
}

// The incremental lane's single drainer: runs submissions in FIFO order
// until the lane is empty, then retires (Submit spawns a new drainer when
// the next incremental batch arrives). At most one drainer exists at any
// time; successive drainers hand the session off through the state lock.
void RunIncrementalDrainer(const std::shared_ptr<ServerState>& state) {
  for (;;) {
    std::shared_ptr<ServerJob> job;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->inc_queue.empty()) {
        state->inc_draining = false;
        return;
      }
      job = std::move(state->inc_queue.front());
      state->inc_queue.pop_front();
      ++state->running;
    }
    RunIncrementalJob(state, job);  // decrements `running` at its terminal
  }
}

// One worker task: runs queued jobs until the queue is empty, then
// retires. Submit schedules a new worker whenever fewer than
// max_concurrent_sessions are alive, so the worker count breathes with
// the load instead of parking executor threads on an idle server. Jobs
// pop in heap order (priority, EDF, admission order — see JobAfter); with
// a coalescing budget the worker drains a run of small jobs in one pop.
void RunWorker(const std::shared_ptr<ServerState>& state) {
  for (;;) {
    std::vector<std::shared_ptr<ServerJob>> group;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->queue.empty()) {
        --state->workers;
        return;
      }
      std::pop_heap(state->queue.begin(), state->queue.end(), JobAfter);
      group.push_back(std::move(state->queue.back()));
      state->queue.pop_back();
      // Micro-batch coalescing: keep popping while the next job in queue
      // order fits the row budget — the group then runs back-to-back on
      // this worker as one dispatch. Each job still runs its own session
      // (results are bit-identical to individual execution; coalescing
      // batches the scheduling, not the evidence). Staged jobs coordinate
      // externally and never join or start a group.
      const size_t budget = state->options.coalesce_max_rows;
      if (budget > 0 && !group.front()->pause_after.has_value()) {
        size_t rows = group.front()->dirty->num_rows();
        while (!state->queue.empty()) {
          const std::shared_ptr<ServerJob>& next = state->queue.front();
          if (next->pause_after.has_value()) break;
          const size_t next_rows = next->dirty->num_rows();
          if (rows + next_rows > budget) break;
          std::pop_heap(state->queue.begin(), state->queue.end(), JobAfter);
          group.push_back(std::move(state->queue.back()));
          state->queue.pop_back();
          rows += next_rows;
        }
        if (group.size() > 1) {
          ++state->totals.coalesced_groups;
          state->totals.coalesced_jobs += group.size();
        }
      }
      state->running += group.size();
    }
    for (const std::shared_ptr<ServerJob>& job : group) {
      RunJob(state, job);  // decrements `running` when it parks or finishes
    }
  }
}

// Re-admission for a resumed staged job: no capacity check (the job was
// admitted once and merely parked), original scheduling keys. Shared by
// CleanTicket::ResumeJob, which has a job handle but no server handle.
Status EnqueueResumed(const std::shared_ptr<ServerState>& state,
                      std::shared_ptr<ServerJob> job) {
  bool spawn = false;
  try {
    std::lock_guard<std::mutex> lock(state->mu);
    state->queue.push_back(std::move(job));
    std::push_heap(state->queue.begin(), state->queue.end(), JobAfter);
    if (state->workers < state->options.max_concurrent_sessions) {
      ++state->workers;
      spawn = true;
    }
  } catch (...) {
    return StatusFromCurrentException("resume failed");
  }
  if (spawn) {
    state->options.executor->Submit([state] { RunWorker(state); });
  }
  return Status::OK();
}

}  // namespace

// ------------------------------------------------------------- CleanTicket

bool CleanTicket::done() const {
  std::lock_guard<std::mutex> lock(job_->mu);
  return job_->done;
}

Status CleanTicket::Wait() const {
  std::unique_lock<std::mutex> lock(job_->mu);
  job_->cv.wait(lock, [this] { return job_->done; });
  return job_->status;
}

std::optional<Result<CleanResult>> CleanTicket::TryGet() {
  std::lock_guard<std::mutex> lock(job_->mu);
  if (!job_->done) return std::nullopt;
  if (!job_->status.ok()) return Result<CleanResult>(job_->status);
  if (job_->taken || !job_->result.has_value()) {
    return Result<CleanResult>(
        Status::Invalid("result already taken from this ticket"));
  }
  job_->taken = true;
  Result<CleanResult> out(std::move(*job_->result));
  job_->result.reset();
  return out;
}

Result<CleanResult> CleanTicket::Take() {
  Wait();
  return *TryGet();  // non-empty: the job is done
}

void CleanTicket::Cancel() { job_->opts.cancel.RequestCancel(); }

Status CleanTicket::WaitPaused() const {
  std::unique_lock<std::mutex> lock(job_->mu);
  job_->cv.wait(lock, [this] { return job_->paused || job_->done; });
  return job_->done ? job_->status : Status::OK();
}

CleanSession* CleanTicket::session() const {
  std::lock_guard<std::mutex> lock(job_->mu);
  return job_->session.get();
}

Status CleanTicket::ResumeJob() {
  std::shared_ptr<ServerState> server;
  {
    std::lock_guard<std::mutex> lock(job_->mu);
    if (!job_->pause_after.has_value()) {
      return Status::Invalid("ResumeJob on a ticket that was not staged");
    }
    if (job_->done) return job_->status;  // the first leg already failed
    if (!job_->paused) {
      return Status::Invalid("job has not reached its pause stage yet");
    }
    if (job_->resumed) return Status::Invalid("job already resumed");
    job_->resumed = true;
    server = job_->server;
  }
  return EnqueueResumed(server, job_);
}

// ------------------------------------------------------------- CleanServer

Result<CleanServer> CleanServer::Create(CleanModel model, ServerOptions options) {
  if (options.executor == nullptr) options.executor = ProcessExecutor();
  if (options.max_concurrent_sessions == 0) {
    options.max_concurrent_sessions = options.executor->concurrency();
  }
  if (options.queue_capacity == 0) {
    return Status::Invalid("queue_capacity must be at least 1");
  }
  return CleanServer(std::make_shared<ServerState>(std::move(model), options));
}

Result<CleanTicket> CleanServer::Submit(const Dataset& dirty, SessionOptions opts) {
  auto job = std::make_shared<ServerJob>();
  job->dirty = &dirty;
  job->opts = std::move(opts);
  return Enqueue(std::move(job));
}

Result<CleanTicket> CleanServer::Submit(Dataset&& dirty, SessionOptions opts) {
  auto job = std::make_shared<ServerJob>();
  job->owned.emplace(std::move(dirty));
  job->dirty = &*job->owned;
  job->opts = std::move(opts);
  return Enqueue(std::move(job));
}

Result<CleanTicket> CleanServer::SubmitCsv(std::string_view csv_text,
                                           SessionOptions opts,
                                           QuarantineReport* quarantine) {
  MLN_ASSIGN_OR_RETURN(Dataset batch, Dataset::FromCsv(csv_text, quarantine));
  return Submit(std::move(batch), std::move(opts));
}

Result<CleanTicket> CleanServer::SubmitStaged(const Dataset& dirty,
                                              Stage pause_after,
                                              Stage final_stage,
                                              SessionOptions opts) {
  if (opts.incremental) {
    return Status::Invalid("staged submissions cannot use the incremental lane");
  }
  if (static_cast<int>(pause_after) >= static_cast<int>(final_stage)) {
    return Status::Invalid("pause_after must precede final_stage");
  }
  auto job = std::make_shared<ServerJob>();
  job->dirty = &dirty;
  job->opts = std::move(opts);
  job->pause_after = pause_after;
  job->final_stage = final_stage;
  job->server = state_;
  return Enqueue(std::move(job));
}

Result<CleanTicket> CleanServer::SubmitStaged(Dataset&& dirty, Stage pause_after,
                                              Stage final_stage,
                                              SessionOptions opts) {
  if (opts.incremental) {
    return Status::Invalid("staged submissions cannot use the incremental lane");
  }
  if (static_cast<int>(pause_after) >= static_cast<int>(final_stage)) {
    return Status::Invalid("pause_after must precede final_stage");
  }
  auto job = std::make_shared<ServerJob>();
  job->owned.emplace(std::move(dirty));
  job->dirty = &*job->owned;
  job->opts = std::move(opts);
  job->pause_after = pause_after;
  job->final_stage = final_stage;
  job->server = state_;
  return Enqueue(std::move(job));
}

Result<CleanTicket> CleanServer::SubmitWithRetry(const Dataset& dirty,
                                                 SessionOptions opts,
                                                 const RetryPolicy& policy,
                                                 size_t* retries_out) {
  MLN_RETURN_NOT_OK(policy.Validate());
  RetrySchedule schedule(policy);
  for (;;) {
    Result<CleanTicket> ticket = Submit(dirty, opts);
    const bool out_of_attempts = schedule.retries() + 1 >= policy.max_attempts;
    if (ticket.ok() || !RetryPolicy::IsRetryable(ticket.status()) ||
        out_of_attempts) {
      if (retries_out != nullptr) *retries_out = schedule.retries();
      return ticket;
    }
    std::this_thread::sleep_for(schedule.NextDelay());
  }
}

Result<CleanTicket> CleanServer::Enqueue(std::shared_ptr<ServerJob> job) {
  bool spawn = false;
  const bool incremental = job->opts.incremental;
  try {
    MLN_FAILPOINT("server/admission");
    std::lock_guard<std::mutex> lock(state_->mu);
    auto& queue = incremental ? state_->inc_queue : state_->queue;
    const size_t depth = queue.size();
    if (depth >= state_->options.queue_capacity) {
      ++state_->totals.rejected;
      return Status::Unavailable(
          "server queue is full (" + std::to_string(depth) + " of " +
          std::to_string(state_->options.queue_capacity) +
          " pending submissions); retry later");
    }
    job->seq = state_->next_seq++;
    job->submitted_at = std::chrono::steady_clock::now();
    queue.push_back(job);
    // The cold lane is a heap (priority/EDF/seq); push_heap only swaps
    // shared_ptrs under a non-throwing comparator, so push_back stays the
    // only throwing statement past the capacity check. The incremental
    // lane remains strict FIFO — its ordering IS its contract.
    if (!incremental) {
      std::push_heap(state_->queue.begin(), state_->queue.end(), JobAfter);
    }
    ++state_->totals.submitted;
    if (incremental) {
      // One drainer, ever: submission order is append order.
      if (!state_->inc_draining) {
        state_->inc_draining = true;
        spawn = true;
      }
    } else if (state_->workers < state_->options.max_concurrent_sessions) {
      ++state_->workers;
      spawn = true;
    }
  } catch (...) {
    // The job was not enqueued (push_back is the only throwing statement
    // past the capacity check, and a failed push leaves the deque
    // unchanged), so rejecting here keeps the queue and counters
    // consistent for the next Submit.
    return StatusFromCurrentException("submit failed");
  }
  // Submitted outside the admission lock: an InlineExecutor runs the
  // whole worker loop right here, and it must be free to take that lock.
  if (spawn) {
    std::shared_ptr<ServerState> state = state_;
    if (incremental) {
      state_->options.executor->Submit([state] { RunIncrementalDrainer(state); });
    } else {
      state_->options.executor->Submit([state] { RunWorker(state); });
    }
  }
  return CleanTicket(std::move(job));
}

ServerStats CleanServer::Stats() const {
  ServerStats stats;
  std::vector<double> window;
  size_t samples = 0;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    stats = state_->totals;
    stats.queued = state_->queue.size() + state_->inc_queue.size();
    stats.running = state_->running;
    window = state_->latencies.Window();
    samples = state_->latencies.samples();
  }
  // Percentile sort outside the lock: Stats() holds `mu` only for the
  // counter copy and the bounded window memcpy.
  stats.latency = SummarizeLatencies(std::move(window), samples);
  return stats;
}

const CleanModel& CleanServer::model() const { return state_->model; }

}  // namespace mlnclean
