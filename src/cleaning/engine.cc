#include "cleaning/engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>

#include "cleaning/agp.h"
#include "cleaning/dedup.h"
#include "cleaning/fscr.h"
#include "cleaning/model_state.h"
#include "cleaning/rsc.h"
#include "common/failpoint.h"
#include "common/timer.h"

namespace mlnclean {

/// Bridges worker-side progress ticks to the session's ProgressFn. The
/// multi-producer half is one relaxed atomic counter (workers Tick units
/// as blocks/shards complete — no mutex, no queue); the single-consumer
/// half runs only on the session's driving thread, which Polls the
/// counter between its own work items and turns increases into
/// StageProgress events. The callback therefore always fires on the
/// driving thread, and units_done is monotone per stage by construction.
class StageProgressRelay : public ProgressSink {
 public:
  /// Driving thread, before the stage's drivers start.
  void BeginStage(Stage stage, size_t total, const ProgressFn* fn,
                  const Timer* timer) {
    stage_ = stage;
    total_ = total;
    fn_ = fn;
    timer_ = timer;
    done_.store(0, std::memory_order_relaxed);
    last_emitted_ = 0;
  }

  /// Driving thread, after the stage's drivers returned (the session
  /// emits the final end event itself).
  void EndStage() {
    fn_ = nullptr;
    timer_ = nullptr;
  }

  void Tick(size_t units) override {
    done_.fetch_add(units, std::memory_order_relaxed);
  }

  void Poll() override {
    if (fn_ == nullptr) return;
    const size_t done = std::min(done_.load(std::memory_order_relaxed), total_);
    if (done == last_emitted_ || done == 0) return;
    last_emitted_ = done;
    StageProgress event;
    event.stage = stage_;
    event.units_done = done;
    event.units_total = total_;
    event.seconds = timer_ != nullptr ? timer_->ElapsedSeconds() : 0.0;
    (*fn_)(event);
  }

 private:
  Stage stage_ = Stage::kIndex;
  size_t total_ = 0;
  size_t last_emitted_ = 0;           // driving thread only
  const ProgressFn* fn_ = nullptr;    // null outside a stage
  const Timer* timer_ = nullptr;
  std::atomic<size_t> done_{0};
};

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kIndex:
      return "index";
    case Stage::kAgp:
      return "agp";
    case Stage::kLearn:
      return "learn";
    case Stage::kRsc:
      return "rsc";
    case Stage::kFscr:
      return "fscr";
    case Stage::kDedup:
      return "dedup";
  }
  return "unknown";
}

// ---------------------------------------------------------- CleaningEngine

CleaningEngine::CleaningEngine(CleaningOptions defaults)
    : defaults_(std::move(defaults)) {}

Result<CleanModel> CleaningEngine::Compile(const Schema& schema, const RuleSet& rules,
                                           const CleaningOptions& options) const {
  MLN_RETURN_NOT_OK(options.Validate());
  if (!(schema == rules.schema())) {
    return Status::Invalid("rule set is declared over a different schema");
  }
  // Surface unhostable rules once at compile time instead of once per
  // cleaning request (MlnIndex::Build would reject them on every call).
  for (size_t ri = 0; ri < rules.size(); ++ri) {
    if (!rules.rule(ri).IndexCompatible()) {
      return Status::Invalid("rule '" + rules.rule(ri).name() +
                             "' cannot be hosted by the MLN index");
    }
  }
  return CleanModel(std::make_shared<CleanModel::State>(rules, options));
}

Result<CleanModel> CleaningEngine::Compile(const Schema& schema,
                                           const RuleSet& rules) const {
  return Compile(schema, rules, defaults_);
}

Result<CleanResult> CleaningEngine::Clean(const Dataset& dirty, const RuleSet& rules,
                                          SessionOptions opts) const {
  MLN_ASSIGN_OR_RETURN(CleanModel model, Compile(rules.schema(), rules));
  return model.Clean(dirty, std::move(opts));
}

// -------------------------------------------------------------- CleanModel

const Schema& CleanModel::schema() const { return state_->rules.schema(); }
const RuleSet& CleanModel::rules() const { return state_->rules; }
const CleaningOptions& CleanModel::options() const { return state_->options; }

CleanSession CleanModel::NewSession(const Dataset& dirty, SessionOptions opts) const {
  return CleanSession(state_, &dirty, std::move(opts));
}

CleanSession CleanModel::ResumeSession(const Dataset& dirty, const MlnIndex* index,
                                       CleaningReport report,
                                       SessionOptions opts) const {
  CleanSession session(state_, &dirty, std::move(opts));
  session.borrowed_index_ = index;
  session.report_ = std::move(report);
  session.next_ = static_cast<int>(Stage::kFscr);
  return session;
}

CleanSession CleanModel::NewIncrementalSession(SessionOptions opts) const {
  auto accumulated = std::make_unique<Dataset>(state_->rules.schema());
  CleanSession session(state_, accumulated.get(), std::move(opts));
  session.accumulated_ = std::move(accumulated);
  session.incremental_ = true;
  // An empty base index: one empty block per rule, so the first append
  // has blocks to merge into. Cannot fail — Compile already proved every
  // rule index-hostable, and there are no rows to ground.
  Result<MlnIndex> base = MlnIndex::Build(*session.accumulated_, state_->rules);
  if (base.ok()) {
    session.base_index_ = std::move(base).ValueUnsafe();
  } else if (session.terminal_.ok()) {
    session.terminal_ = base.status();
  }
  return session;
}

CleanSession CleanModel::ResumeIncrementalSession(Dataset accumulated,
                                                  MlnIndex base,
                                                  SessionOptions opts) const {
  auto owned = std::make_unique<Dataset>(std::move(accumulated));
  CleanSession session(state_, owned.get(), std::move(opts));
  session.accumulated_ = std::move(owned);
  session.incremental_ = true;
  // The loaded index must actually describe the rebuilt accumulation —
  // wrong dataset, wrong order, or a foreign index all fail here, before
  // any stage could act on inconsistent state.
  if (session.terminal_.ok()) {
    Status valid = base.Validate(*session.accumulated_, state_->rules);
    if (!valid.ok()) {
      session.terminal_ = Status::Invalid(
          "ResumeIncrementalSession: index does not match the accumulated "
          "dataset: " + valid.message());
      return session;
    }
  }
  session.base_index_ = std::move(base);
  // The base already covers every accumulated row; the next index stage
  // appends nothing and just re-copies the base into the working index.
  session.grounded_rows_ = session.accumulated_->num_rows();
  return session;
}

Result<CleanResult> CleanModel::Clean(const Dataset& dirty, SessionOptions opts) const {
  CleanSession session = NewSession(dirty, std::move(opts));
  MLN_RETURN_NOT_OK(session.Resume());
  return session.TakeResult();
}

Status CleanModel::Warm(const Dataset& sample) const {
  SessionOptions opts;
  opts.contribute_weights = true;
  CleanSession session = NewSession(sample, std::move(opts));
  return session.RunUntil(Stage::kLearn);
}

size_t CleanModel::num_stored_weights() const {
  std::shared_lock<std::shared_mutex> lock(state_->weights_mu);
  return state_->weights.size();
}

Result<size_t> CleanModel::AdjustWeightsAcross(
    const std::vector<CleanSession*>& sessions) const {
  // Eq. 6 over sessions instead of Spark parts: accumulate every session's
  // post-learning weights, then write the support-weighted averages back.
  GlobalWeightTable table;
  for (CleanSession* session : sessions) {
    if (session == nullptr) {
      return Status::Invalid("AdjustWeightsAcross: null session");
    }
    if (session->finished() || session->next_stage() != Stage::kRsc) {
      return Status::Invalid(
          "AdjustWeightsAcross: session must have completed kLearn and not "
          "yet run kRsc");
    }
    if (session->mutable_index() == nullptr) {
      return Status::Invalid(
          "AdjustWeightsAcross: session does not own its index");
    }
    table.Accumulate(session->index(), state_->rules);
  }
  for (CleanSession* session : sessions) {
    table.Apply(session->mutable_index(), state_->rules);
  }
  return table.size();
}

// ------------------------------------------------------------ CleanSession

CleanSession::CleanSession(CleanSession&&) noexcept = default;
CleanSession& CleanSession::operator=(CleanSession&&) noexcept = default;
CleanSession::~CleanSession() = default;

CleanSession::CleanSession(std::shared_ptr<CleanModel::State> model,
                           const Dataset* dirty, SessionOptions opts)
    : model_(std::move(model)),
      dirty_(dirty),
      opts_(std::move(opts)),
      dist_(MakeNormalizedDistanceFn(model_->options.distance)) {
  if (opts_.progress) relay_ = std::make_unique<StageProgressRelay>();
  if (!(dirty_->schema() == model_->rules.schema())) {
    terminal_ = Status::Invalid("dataset schema does not match the compiled model");
  }
}

ExecContext CleanSession::MakeContext() const {
  ExecContext ctx;
  ctx.executor = model_->options.ResolvedExecutor();
  ctx.max_workers = model_->options.ResolvedNumThreads();
  ctx.cancel = opts_.cancel.flag();
  if (opts_.deadline.has_value()) {
    ctx.has_deadline = true;
    ctx.deadline = *opts_.deadline;
  }
  ctx.progress = relay_.get();
  return ctx;
}

Status CleanSession::StopStatus(const char* when, Stage stage) const {
  const std::string what = std::string(when) + " stage " + StageName(stage);
  // An explicit cancel keeps its Status even when the deadline has also
  // passed by now — the user asked first.
  if (opts_.cancel.cancelled()) return Status::Cancelled("cancelled " + what);
  return Status::DeadlineExceeded("deadline expired " + what);
}

void CleanSession::EmitProgress(Stage stage, size_t done, size_t total,
                                double seconds) {
  if (!opts_.progress) return;
  StageProgress event;
  event.stage = stage;
  event.units_done = done;
  event.units_total = total;
  event.seconds = seconds;
  opts_.progress(event);
}

size_t CleanSession::StageUnits(Stage stage) const {
  switch (stage) {
    case Stage::kIndex:
      return model_->rules.size();
    case Stage::kAgp:
    case Stage::kLearn:
    case Stage::kRsc:
      return index().num_blocks();
    case Stage::kFscr:
    case Stage::kDedup:
      return dirty_->num_rows();
  }
  return 0;
}

Status CleanSession::RunStage(Stage stage, const ExecContext& ctx) {
  const CleaningOptions& options = model_->options;
  CleaningReport* report = opts_.collect_report ? &report_ : nullptr;
  switch (stage) {
    case Stage::kIndex: {
      if (incremental_) {
        // Ground only the rows appended since the last run into the live
        // base index, then work on a copy — AGP/RSC merge and collapse
        // groups destructively, and the base must survive for the next
        // append. The copy is what makes incremental == cold: the base
        // equals a cold Build over the accumulation (MlnIndex::AppendRows
        // contract), and every later stage starts from it.
        MLN_RETURN_NOT_OK(
            base_index_.AppendRows(*dirty_, model_->rules, grounded_rows_, ctx));
        grounded_rows_ = dirty_->num_rows();
        owned_index_ = base_index_;
        return Status::OK();
      }
      MLN_ASSIGN_OR_RETURN(owned_index_,
                           MlnIndex::Build(*dirty_, model_->rules, ctx));
      return Status::OK();
    }
    case Stage::kAgp:
      RunAgpAll(&owned_index_, options, dist_, report, ctx);
      return Status::OK();
    case Stage::kLearn: {
      bool reused = false;
      if (!options.learn_weights) {
        owned_index_.AssignPriorWeights();  // ablation: Eq. 4 priors only
      } else if (opts_.reuse_model_weights) {
        // Serving path: Eq. 4 priors for γs the store has never seen,
        // stored Eq. 6 averages for the rest — no Newton solves. The
        // prior pass touches only this session's index, so it runs
        // outside the lock; Apply holds it shared, letting concurrent
        // reuse sessions read the store in parallel.
        owned_index_.AssignPriorWeights();
        std::shared_lock<std::shared_mutex> lock(model_->weights_mu);
        if (model_->weights.size() > 0) {
          model_->weights.Apply(&owned_index_, model_->rules);
          reused = true;
        }
      }
      if (options.learn_weights && !reused) {
        owned_index_.LearnWeights(options.learner, ctx);
      }
      // Only freshly learned weights enter the store: contributing reused
      // weights would re-average the store with its own output, and
      // contributing Eq. 4 priors would record never-learned values. A
      // stopped (cancelled / past-deadline) run never contributes a
      // half-learned index either.
      if (opts_.contribute_weights && options.learn_weights && !reused &&
          !ctx.Stopped()) {
        MLN_FAILPOINT("engine/weight-contribute");
        std::unique_lock<std::shared_mutex> lock(model_->weights_mu);
        model_->weights.Accumulate(owned_index_, model_->rules);
      }
      return Status::OK();
    }
    case Stage::kRsc:
      RunRscAll(&owned_index_, options, dist_, report, ctx);
      return Status::OK();
    case Stage::kFscr:
      cleaned_ = dirty_->Clone();
      RunFscr(*dirty_, model_->rules, index(), options, &cleaned_, report, ctx);
      return Status::OK();
    case Stage::kDedup:
      if (options.remove_duplicates) {
        deduped_ = RemoveDuplicates(cleaned_,
                                    report ? &report->duplicates : nullptr, ctx);
      } else {
        deduped_ = cleaned_;
      }
      return Status::OK();
  }
  return Status::Internal("unknown stage");
}

Status CleanSession::RunUntil(Stage last) {
  if (!terminal_.ok()) return terminal_;
  const ExecContext ctx = MakeContext();
  const int target = static_cast<int>(last);
  while (next_ <= target && next_ < kNumStages) {
    const Stage stage = static_cast<Stage>(next_);
    if (ctx.Stopped()) {
      terminal_ = StopStatus("before", stage);
      return terminal_;
    }
    const size_t units = StageUnits(stage);
    Timer timer;
    Status status;
    // Panic-free boundary: nothing a stage driver, a ParallelFor body, a
    // progress callback, or an injected failpoint throws may escape a
    // session — the exception becomes this session's terminal Status
    // (kResourceExhausted for bad_alloc, kInternal otherwise) and the
    // caller (a server worker loop, a CLI) stays alive. The input dataset
    // is untouched either way: repairs only ever land in the session-owned
    // clone.
    try {
      EmitProgress(stage, 0, units, 0.0);
      if (relay_ != nullptr) {
        relay_->BeginStage(stage, units, &opts_.progress, &timer);
      }
      MLN_FAILPOINT(std::string("engine/stage-") + StageName(stage));
      status = RunStage(stage, ctx);
    } catch (...) {
      status = StatusFromCurrentException(std::string("stage ") +
                                          StageName(stage) + " failed");
    }
    if (relay_ != nullptr) relay_->EndStage();
    const double seconds = timer.ElapsedSeconds();
    if (status.ok() && ctx.Stopped()) {
      // The stage driver stopped at a block/shard boundary; its partial
      // output stays inside the session (the input dataset is untouched).
      // Drivers that report their own stop (MlnIndex::Build) already
      // derive the right code from ExecContext::StopStatus.
      status = StopStatus("during", stage);
    }
    if (!status.ok()) {
      terminal_ = status;
      return terminal_;
    }
    switch (stage) {
      case Stage::kIndex:
        report_.timings.index = seconds;
        break;
      case Stage::kAgp:
        report_.timings.agp = seconds;
        break;
      case Stage::kLearn:
        report_.timings.learn = seconds;
        break;
      case Stage::kRsc:
        report_.timings.rsc = seconds;
        break;
      case Stage::kFscr:
        report_.timings.fscr = seconds;
        break;
      case Stage::kDedup:
        report_.timings.dedup = seconds;
        break;
    }
    report_.timings.total += seconds;
    // The end event runs user code too: a throwing callback poisons this
    // session (the stage's work is done, but the user clearly cannot
    // consume it), never the process.
    try {
      EmitProgress(stage, units, units, seconds);
    } catch (...) {
      terminal_ = StatusFromCurrentException(
          std::string("progress callback failed after stage ") +
          StageName(stage));
      return terminal_;
    }
    ++next_;
  }
  return Status::OK();
}

Status CleanSession::Resume() { return RunUntil(Stage::kDedup); }

Status CleanSession::AppendRows(const Dataset& batch) {
  if (!terminal_.ok()) return terminal_;
  if (!incremental_) {
    return Status::Invalid(
        "AppendRows requires an incremental session "
        "(CleanModel::NewIncrementalSession)");
  }
  if (!(batch.schema() == model_->rules.schema())) {
    // Reject the batch without poisoning the stream: the accumulation is
    // untouched, the caller can fix the batch and append again.
    return Status::Invalid("batch schema does not match the compiled model");
  }
  accumulated_->Reserve(accumulated_->num_rows() + batch.num_rows());
  const auto batch_rows = static_cast<TupleId>(batch.num_rows());
  for (TupleId tid = 0; tid < batch_rows; ++tid) {
    MLN_RETURN_NOT_OK(accumulated_->Append(batch.row(tid)));
  }
  // Rewind to the index stage: the next run recleans the accumulation
  // from a fresh working copy. Only the appended rows get ground (the
  // base index survives); everything downstream is recomputed, so the
  // previous run's outputs are dropped here rather than served stale.
  next_ = static_cast<int>(Stage::kIndex);
  report_ = CleaningReport();
  cleaned_ = Dataset();
  deduped_ = Dataset();
  return Status::OK();
}

Result<CleanResult> CleanSession::TakeResult() {
  if (!terminal_.ok()) return terminal_;
  if (!finished()) {
    return Status::Invalid("session has stages left to run; call Resume() first");
  }
  CleanResult result;
  result.cleaned = std::move(cleaned_);
  result.deduped = std::move(deduped_);
  result.report = std::move(report_);
  terminal_ = Status::Invalid("result already taken from this session");
  return result;
}

}  // namespace mlnclean
