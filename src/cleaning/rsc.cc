#include "cleaning/rsc.h"

#include <algorithm>
#include <limits>

namespace mlnclean {

std::vector<double> ReliabilityScores(const Group& group, const DistanceFn& dist) {
  const size_t m = group.pieces.size();
  std::vector<double> scores(m, 0.0);
  if (m == 0) return scores;
  if (m == 1) {
    scores[0] = static_cast<double>(group.pieces[0].support()) * group.pieces[0].weight;
    return scores;
  }
  // Pairwise raw distances and the normalizer Z (max pairwise distance).
  std::vector<double> min_dist(m, std::numeric_limits<double>::infinity());
  double z = 0.0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      double d = PieceDistance(group.pieces[i], group.pieces[j], dist);
      z = std::max(z, d);
      min_dist[i] = std::min(min_dist[i], d);
      min_dist[j] = std::min(min_dist[j], d);
    }
  }
  if (z <= 0.0) z = 1.0;  // all γs at distance zero: scores reduce to n·w
  for (size_t i = 0; i < m; ++i) {
    double n = static_cast<double>(group.pieces[i].support());
    double d = (min_dist[i] == std::numeric_limits<double>::infinity())
                   ? 1.0
                   : min_dist[i];
    scores[i] = (n / z) * d * group.pieces[i].weight;
  }
  return scores;
}

void RunRscGroup(Group* group, size_t block_rule_index, const DistanceFn& dist,
                 CleaningReport* report) {
  if (group->pieces.size() <= 1) return;  // already in the ideal state
  std::vector<double> scores = ReliabilityScores(*group, dist);
  // Winner: max r-score; ties broken by weight, then support, then order.
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    const Piece& cand = group->pieces[i];
    const Piece& cur = group->pieces[best];
    if (scores[i] > scores[best] ||
        (scores[i] == scores[best] &&
         (cand.weight > cur.weight ||
          (cand.weight == cur.weight && cand.support() > cur.support())))) {
      best = i;
    }
  }
  Piece winner = std::move(group->pieces[best]);
  for (size_t i = 0; i < group->pieces.size(); ++i) {
    if (i == best) continue;
    Piece& loser = group->pieces[i];
    if (report) {
      RscRepairRecord rec;
      rec.block = block_rule_index;
      rec.group_key = group->key;
      rec.winner_values = winner.AllValues();
      rec.loser_values = loser.AllValues();
      rec.affected_tuples = loser.tuples;
      report->rsc.push_back(std::move(rec));
    }
    winner.tuples.insert(winner.tuples.end(), loser.tuples.begin(),
                         loser.tuples.end());
  }
  group->pieces.clear();
  group->pieces.push_back(std::move(winner));
  // The winner may be a merged-in γ whose reason differs from the build-time
  // key; the group now represents the winner's reason values.
  group->key = group->pieces.front().reason;
}

void RunRscAll(MlnIndex* index, const CleaningOptions& options, const DistanceFn& dist,
               CleaningReport* report) {
  (void)options;
  for (size_t bi = 0; bi < index->num_blocks(); ++bi) {
    Block& block = index->block(bi);
    for (Group& group : block.groups) {
      RunRscGroup(&group, block.rule_index, dist, report);
    }
    index->ReindexBlock(bi);
  }
}

}  // namespace mlnclean
