#include "cleaning/rsc.h"

#include <algorithm>
#include <iterator>
#include <limits>
#include <optional>

namespace mlnclean {

namespace {

// min-distance scratch reused across all the groups of a block.
struct RscScratch {
  std::vector<double> min_dist;
};

void ComputeReliabilityScores(const Group& group, const DistanceFn& dist,
                              PieceDistanceMemo* memo, RscScratch* scratch,
                              std::vector<double>* scores) {
  const size_t m = group.pieces.size();
  scores->assign(m, 0.0);
  if (m == 0) return;
  if (m == 1) {
    (*scores)[0] =
        static_cast<double>(group.pieces[0].support()) * group.pieces[0].weight;
    return;
  }
  // Pairwise raw distances and the normalizer Z (max pairwise distance).
  // With a memo, repeated (id, id) value pairs cost a table probe instead
  // of a distance kernel; equal-id positions are free either way.
  std::vector<double>& min_dist = scratch->min_dist;
  min_dist.assign(m, std::numeric_limits<double>::infinity());
  double z = 0.0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      double d = memo ? memo->Distance(group.pieces[i], group.pieces[j])
                      : PieceDistance(group.pieces[i], group.pieces[j], dist);
      z = std::max(z, d);
      min_dist[i] = std::min(min_dist[i], d);
      min_dist[j] = std::min(min_dist[j], d);
    }
  }
  if (z <= 0.0) z = 1.0;  // all γs at distance zero: scores reduce to n·w
  for (size_t i = 0; i < m; ++i) {
    double n = static_cast<double>(group.pieces[i].support());
    double d = (min_dist[i] == std::numeric_limits<double>::infinity())
                   ? 1.0
                   : min_dist[i];
    (*scores)[i] = (n / z) * d * group.pieces[i].weight;
  }
}

void RunRscGroupImpl(Group* group, size_t block_rule_index, const DistanceFn& dist,
                     CleaningReport* report, PieceDistanceMemo* memo,
                     RscScratch* scratch, std::vector<double>* scores);

}  // namespace

std::vector<double> ReliabilityScores(const Group& group, const DistanceFn& dist,
                                      PieceDistanceMemo* memo) {
  RscScratch scratch;
  std::vector<double> scores;
  ComputeReliabilityScores(group, dist, memo, &scratch, &scores);
  return scores;
}

void RunRscGroup(Group* group, size_t block_rule_index, const DistanceFn& dist,
                 CleaningReport* report, PieceDistanceMemo* memo) {
  RscScratch scratch;
  std::vector<double> scores;
  RunRscGroupImpl(group, block_rule_index, dist, report, memo, &scratch, &scores);
}

namespace {

void RunRscGroupImpl(Group* group, size_t block_rule_index, const DistanceFn& dist,
                     CleaningReport* report, PieceDistanceMemo* memo,
                     RscScratch* scratch, std::vector<double>* scores_buf) {
  if (group->pieces.size() <= 1) return;  // already in the ideal state
  ComputeReliabilityScores(*group, dist, memo, scratch, scores_buf);
  std::vector<double>& scores = *scores_buf;
  // Winner: max r-score; ties broken by weight, then support, then order.
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    const Piece& cand = group->pieces[i];
    const Piece& cur = group->pieces[best];
    if (scores[i] > scores[best] ||
        (scores[i] == scores[best] &&
         (cand.weight > cur.weight ||
          (cand.weight == cur.weight && cand.support() > cur.support())))) {
      best = i;
    }
  }
  Piece winner = std::move(group->pieces[best]);
  for (size_t i = 0; i < group->pieces.size(); ++i) {
    if (i == best) continue;
    Piece& loser = group->pieces[i];
    if (report) {
      RscRepairRecord rec;
      rec.block = block_rule_index;
      rec.group_key = group->key;
      rec.winner_values = winner.AllValues();
      rec.loser_values = loser.AllValues();
      rec.affected_tuples = loser.tuples;
      report->rsc.push_back(std::move(rec));
    }
    winner.tuples.insert(winner.tuples.end(), loser.tuples.begin(),
                         loser.tuples.end());
  }
  group->pieces.clear();
  group->pieces.push_back(std::move(winner));
  // The winner may be a merged-in γ whose reason differs from the build-time
  // key; the group now represents the winner's reason values.
  group->key = group->pieces.front().reason;
}

// RSC over one block: one shared id-pair memo set and one scratch for all
// of its groups.
void RunRscBlock(MlnIndex* index, size_t block_index, const CleaningOptions& options,
                 const DistanceFn& dist, CleaningReport* report) {
  Block& block = index->block(block_index);
  std::optional<PieceDistanceMemo> memo;
  if (options.cache_distances) memo.emplace(dist);
  RscScratch scratch;
  std::vector<double> scores;
  for (Group& group : block.groups) {
    RunRscGroupImpl(&group, block.rule_index, dist, report,
                    memo ? &*memo : nullptr, &scratch, &scores);
  }
  index->ReindexBlock(block_index);
}

}  // namespace

void RunRscAll(MlnIndex* index, const CleaningOptions& options, const DistanceFn& dist,
               CleaningReport* report, const ExecContext& ctx) {
  const size_t num_blocks = index->num_blocks();
  if (ctx.parallelism() <= 1 || num_blocks <= 1) {
    for (size_t bi = 0; bi < num_blocks; ++bi) {
      if (ctx.Stopped()) return;
      RunRscBlock(index, bi, options, dist, report);
      ctx.Tick(1);
    }
    return;
  }
  // Per-block record buffers spliced back in block order keep the report
  // identical to the sequential run.
  std::vector<CleaningReport> local(report ? num_blocks : 0);
  ParallelFor(num_blocks, ctx, [&](size_t bi) {
    if (ctx.Stopped()) return;
    RunRscBlock(index, bi, options, dist, report ? &local[bi] : nullptr);
    ctx.Tick(1);
  });
  if (report) {
    for (auto& block_report : local) {
      std::move(block_report.rsc.begin(), block_report.rsc.end(),
                std::back_inserter(report->rsc));
    }
  }
}

}  // namespace mlnclean
