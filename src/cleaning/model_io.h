// CleanModel snapshots: a versioned binary format for handing a compiled
// model to another process (CleanModel::Save / CleaningEngine::Load,
// declared in cleaning/engine.h and implemented here). A builder box
// compiles and warms a model once; serving workers Load the snapshot and
// serve micro-batches bit-identically to the in-process original —
// including Eq. 6 stored weights, whose f64 bits round-trip exactly.
//
// Layout (all integers little-endian, f64 as IEEE-754 bits):
//
//   magic   "MLNM" (4 bytes)
//   u32     format version (kModelSnapshotVersion)
//   u32     section count (5)
//   5 x section, each: u32 tag, u64 payload length,
//           u32 CRC-32C (Castagnoli, reflected) of the payload, payload
//
//   tag 1 schema:   u32 #attrs, then each name as str (u32 len + bytes)
//   tag 2 rules:    u32 #rules, then per rule: str name, f64 rule weight,
//                   str canonical DSL text (Constraint::CanonicalText,
//                   decoded via ParseRule)
//   tag 3 options:  the resolved CleaningOptions field by field (see
//                   model_io.cc; validated by CleaningOptions::Validate on
//                   load). num_threads is stored raw: 0 = "auto" resolves
//                   against the *serving* host, as it should. The
//                   executor pointer is never stored — the serving
//                   process wires its own. v2 appended
//                   weight_half_life_batches (u64).
//   tag 4 weights:  the Eq. 6 GlobalWeightTable — u32 #dicts (0 or
//                   #attrs), per dict the interned values in id order plus
//                   the NULL rank (so restored ids equal saved ids), then
//                   (v2) the u64 contributed-batch counter, u64 #entries,
//                   per entry the γ key (u32 rule index, u32 reason
//                   arity, u32 result arity, the ids), f64 weighted_sum /
//                   support, and (v2) the u64 last-contribution batch —
//                   the decay state weight_half_life_batches ages entries
//                   by. Entries are written in sorted key order: saving
//                   the same model twice produces identical bytes.
//   tag 5 index:    (v5) an optional serialized pre-AGP MlnIndex — the
//                   base index of a row-incremental session, so another
//                   process can ResumeIncrementalSession without
//                   re-grounding history. u8 present flag; when present:
//                   u64 indexed row count, u32 #blocks, per block u64
//                   rule index + u64 #groups, per group u64 #γs, per γ
//                   the reason then result values (u32 count + strs
//                   each), their raw u32 value ids, the f64 weight, and
//                   the supporting tuple ids (u64 count + a group-varint
//                   delta blob — the lists are sorted, so most ids cost
//                   one byte). Group keys are not stored: pre-AGP they
//                   equal the first γ's reason values, and the encoder
//                   refuses indexes where they do not. Blocks, groups,
//                   γs, and tuples are written in index order, so saving
//                   the same index twice produces identical bytes.
//
// Sections appear exactly once, in tag order. Decoding is strict and
// bounds-checked: truncated input, bad magic, an unsupported version, an
// unknown tag, a length prefix pointing past the buffer, a section with
// trailing bytes, or trailing bytes after the last section all return
// StatusCode::kInvalid naming the offending byte position — never
// undefined behaviour. Each section's CRC-32C is verified *before* its
// payload is parsed: torn or bit-rotted content (a flipped value byte, a
// truncating write that the framing survives) returns
// StatusCode::kCorruption naming the section and its byte range, distinct
// from the kInvalid of structurally malformed input — the caller can tell
// "re-copy the file" from "this is not a snapshot". Version policy
// (docs/snapshot_format.md): any layout change bumps
// kModelSnapshotVersion; readers reject versions they do not know;
// writers always write the current version.

#ifndef MLNCLEAN_CLEANING_MODEL_IO_H_
#define MLNCLEAN_CLEANING_MODEL_IO_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cleaning/options.h"
#include "common/result.h"

namespace mlnclean {

/// First bytes of every snapshot.
inline constexpr char kModelSnapshotMagic[4] = {'M', 'L', 'N', 'M'};

/// Current snapshot format version. v2 added the weight-store decay
/// state (weight_half_life_batches option, batch counter, per-entry batch
/// stamps); v3 moved integrity from one global header CRC-32 to a
/// per-section CRC-32C verified before the payload is parsed (checksum
/// mismatch = kCorruption with the section named); v4 made the weight
/// entries columnar with the rule indexes, arities, and γ value ids
/// group-varint compressed; v5 added the optional index section (tag 5)
/// carrying an incremental session's pre-AGP base index
/// (docs/snapshot_format.md). Per the version policy, older snapshots
/// are rejected — regenerate from the builder.
inline constexpr uint32_t kModelSnapshotVersion = 5;

/// Summary of a snapshot, decoded without compiling a model — what
/// `mlnclean_model inspect` prints.
struct ModelSnapshotInfo {
  uint32_t version = 0;
  std::vector<std::string> attr_names;
  std::vector<std::string> rule_names;
  std::vector<std::string> rule_texts;   // canonical DSL
  std::vector<double> rule_weights;
  CleaningOptions options;
  size_t num_stored_weights = 0;         // γ entries in the weight store
  std::vector<size_t> weight_dict_sizes; // per-attribute interner sizes
  bool has_index = false;                // v5: snapshot carries a base index
  size_t indexed_rows = 0;               // rows the saved index covers
  size_t index_pieces = 0;               // γs across the saved index
};

/// Fully decodes and validates a snapshot's framing without constructing a
/// CleanModel (rule texts stay text; use CleaningEngine::Load to serve).
Result<ModelSnapshotInfo> InspectModelSnapshot(std::istream& in);

}  // namespace mlnclean

#endif  // MLNCLEAN_CLEANING_MODEL_IO_H_
