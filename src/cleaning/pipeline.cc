#include "cleaning/pipeline.h"

#include <utility>

namespace mlnclean {

MlnCleanPipeline::MlnCleanPipeline(CleaningOptions options)
    : options_(std::move(options)) {}

Result<CleanResult> MlnCleanPipeline::Clean(const Dataset& dirty,
                                            const RuleSet& rules) const {
  MLN_ASSIGN_OR_RETURN(CleanModel model,
                       CleaningEngine(options_).Compile(rules.schema(), rules));
  return model.Clean(dirty);
}

Result<MlnIndex> MlnCleanPipeline::RunStageOne(const Dataset& dirty,
                                               const RuleSet& rules,
                                               CleaningReport* report) const {
  MLN_ASSIGN_OR_RETURN(CleanModel model,
                       CleaningEngine(options_).Compile(rules.schema(), rules));
  SessionOptions opts;
  opts.collect_report = report != nullptr;
  CleanSession session = model.NewSession(dirty, std::move(opts));
  MLN_RETURN_NOT_OK(session.RunUntil(Stage::kRsc));
  if (report != nullptr) *report = std::move(*session.mutable_report());
  return std::move(*session.mutable_index());
}

Result<CleanResult> MlnCleanPipeline::RunStageTwo(const Dataset& dirty,
                                                  const RuleSet& rules,
                                                  const MlnIndex& index,
                                                  CleaningReport* report) const {
  MLN_ASSIGN_OR_RETURN(CleanModel model,
                       CleaningEngine(options_).Compile(rules.schema(), rules));
  CleaningReport trace = report != nullptr ? std::move(*report) : CleaningReport{};
  CleanSession session = model.ResumeSession(dirty, &index, std::move(trace));
  Status status = session.Resume();
  if (!status.ok()) {
    // Hand the stage-one trace back so a failed call does not destroy it.
    if (report != nullptr) *report = std::move(*session.mutable_report());
    return status;
  }
  return session.TakeResult();
}

CleanResult MlnCleanPipeline::RunStageTwo(const Dataset& dirty, const RuleSet& rules,
                                          const MlnIndex& index,
                                          CleaningReport report) const {
  Result<CleanResult> result = RunStageTwo(dirty, rules, index, &report);
  if (result.ok()) return std::move(result).ValueUnsafe();
  // This legacy signature has no error channel. Callers that went through
  // RunStageOne cannot land here (the same options and rules compiled),
  // but a hand-built index over mismatched options/schema now fails
  // validation the old code never ran — return the input unrepaired with
  // the trace intact rather than crash; the pointer overload reports the
  // actual Status.
  CleanResult fallback;
  fallback.cleaned = dirty.Clone();
  fallback.deduped = dirty.Clone();
  fallback.report = std::move(report);
  return fallback;
}

}  // namespace mlnclean
