#include "cleaning/pipeline.h"

#include "cleaning/agp.h"
#include "cleaning/dedup.h"
#include "cleaning/fscr.h"
#include "cleaning/rsc.h"
#include "common/timer.h"

namespace mlnclean {

MlnCleanPipeline::MlnCleanPipeline(CleaningOptions options)
    : options_(std::move(options)) {}

Result<MlnIndex> MlnCleanPipeline::RunStageOne(const Dataset& dirty,
                                               const RuleSet& rules,
                                               CleaningReport* report) const {
  MLN_RETURN_NOT_OK(options_.Validate());
  DistanceFn dist = MakeNormalizedDistanceFn(options_.distance);

  Timer timer;
  MLN_ASSIGN_OR_RETURN(MlnIndex index,
                       MlnIndex::Build(dirty, rules, options_.ResolvedNumThreads()));
  if (report) report->timings.index = timer.ElapsedSeconds();

  timer.Restart();
  RunAgpAll(&index, options_, dist, report);
  if (report) report->timings.agp = timer.ElapsedSeconds();

  timer.Restart();
  if (options_.learn_weights) {
    index.LearnWeights(options_.learner, options_.ResolvedNumThreads());
  } else {
    index.AssignPriorWeights();  // ablation: Eq. 4 priors only
  }
  if (report) report->timings.learn = timer.ElapsedSeconds();

  timer.Restart();
  RunRscAll(&index, options_, dist, report);
  if (report) report->timings.rsc = timer.ElapsedSeconds();
  return index;
}

CleanResult MlnCleanPipeline::RunStageTwo(const Dataset& dirty, const RuleSet& rules,
                                          const MlnIndex& index,
                                          CleaningReport report) const {
  Timer timer;
  CleanResult result;
  result.cleaned = dirty.Clone();
  RunFscr(dirty, rules, index, options_, &result.cleaned, &report);
  report.timings.fscr = timer.ElapsedSeconds();

  timer.Restart();
  if (options_.remove_duplicates) {
    result.deduped = RemoveDuplicates(result.cleaned, &report.duplicates);
  } else {
    result.deduped = result.cleaned;
  }
  report.timings.dedup = timer.ElapsedSeconds();
  result.report = std::move(report);
  return result;
}

Result<CleanResult> MlnCleanPipeline::Clean(const Dataset& dirty,
                                            const RuleSet& rules) const {
  Timer total;
  CleaningReport report;
  MLN_ASSIGN_OR_RETURN(MlnIndex index, RunStageOne(dirty, rules, &report));
  CleanResult result = RunStageTwo(dirty, rules, index, std::move(report));
  result.report.timings.total = total.ElapsedSeconds();
  return result;
}

}  // namespace mlnclean
