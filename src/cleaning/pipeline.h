// MlnCleanPipeline: the end-to-end MLNClean cleaner (Algorithm 1) —
// MLN index construction, stage I (AGP + weight learning + RSC), stage II
// (FSCR + duplicate removal).

#ifndef MLNCLEAN_CLEANING_PIPELINE_H_
#define MLNCLEAN_CLEANING_PIPELINE_H_

#include "cleaning/options.h"
#include "cleaning/report.h"
#include "common/result.h"
#include "index/mln_index.h"
#include "rules/constraint.h"

namespace mlnclean {

/// Output of a cleaning run.
struct CleanResult {
  /// Repaired dataset, row-aligned with the dirty input (before duplicate
  /// removal) — the dataset accuracy metrics are computed on.
  Dataset cleaned;
  /// Final dataset after duplicate elimination.
  Dataset deduped;
  /// Decision trace and stage timings.
  CleaningReport report;
};

/// The MLNClean framework facade.
///
/// Typical use:
///   MlnCleanPipeline cleaner(options);
///   MLN_ASSIGN_OR_RETURN(CleanResult result, cleaner.Clean(dirty, rules));
class MlnCleanPipeline {
 public:
  explicit MlnCleanPipeline(CleaningOptions options = {});

  const CleaningOptions& options() const { return options_; }

  /// Runs the full two-stage cleaning process on `dirty`.
  Result<CleanResult> Clean(const Dataset& dirty, const RuleSet& rules) const;

  /// Stage I only: builds the index, runs AGP, learns weights, runs RSC.
  /// Exposed for the distributed driver and for component-level
  /// experiments; `report` may be null.
  Result<MlnIndex> RunStageOne(const Dataset& dirty, const RuleSet& rules,
                               CleaningReport* report) const;

  /// Stage II only: FSCR over a stage-I index plus duplicate removal.
  CleanResult RunStageTwo(const Dataset& dirty, const RuleSet& rules,
                          const MlnIndex& index, CleaningReport report) const;

 private:
  CleaningOptions options_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_CLEANING_PIPELINE_H_
