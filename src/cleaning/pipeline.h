// MlnCleanPipeline: the original end-to-end facade over the MLNClean
// cleaner (Algorithm 1), kept working for one release as a thin adapter
// over the CleaningEngine.
//
// DEPRECATED: new code should compile a CleanModel once and serve
// datasets through sessions (see cleaning/engine.h) — this facade
// re-compiles the rules on every call, which is exactly the cost the
// engine exists to amortize.

#ifndef MLNCLEAN_CLEANING_PIPELINE_H_
#define MLNCLEAN_CLEANING_PIPELINE_H_

#include "cleaning/engine.h"
#include "cleaning/options.h"
#include "cleaning/report.h"
#include "common/result.h"
#include "index/mln_index.h"
#include "rules/constraint.h"

namespace mlnclean {

/// The legacy MLNClean framework facade (adapter over CleaningEngine).
///
/// Typical use:
///   MlnCleanPipeline cleaner(options);
///   MLN_ASSIGN_OR_RETURN(CleanResult result, cleaner.Clean(dirty, rules));
class MlnCleanPipeline {
 public:
  explicit MlnCleanPipeline(CleaningOptions options = {});

  const CleaningOptions& options() const { return options_; }

  /// Runs the full two-stage cleaning process on `dirty`: compiles a
  /// one-shot model and runs a session over the whole plan.
  Result<CleanResult> Clean(const Dataset& dirty, const RuleSet& rules) const;

  /// Stage I only: builds the index, runs AGP, learns weights, runs RSC
  /// (a session run until Stage::kRsc). Exposed for the distributed
  /// driver and for component-level experiments; `report` may be null.
  Result<MlnIndex> RunStageOne(const Dataset& dirty, const RuleSet& rules,
                               CleaningReport* report) const;

  /// Stage II only: FSCR over a stage-I index plus duplicate removal (a
  /// session resumed at Stage::kFscr). `report` (may be null) is consumed
  /// into the returned CleanResult — no copy of the decision trace.
  Result<CleanResult> RunStageTwo(const Dataset& dirty, const RuleSet& rules,
                                  const MlnIndex& index,
                                  CleaningReport* report) const;

  /// DEPRECATED overload: copies the full decision trace per call. Kept
  /// for one release; use the pointer overload above.
  CleanResult RunStageTwo(const Dataset& dirty, const RuleSet& rules,
                          const MlnIndex& index, CleaningReport report) const;

 private:
  CleaningOptions options_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_CLEANING_PIPELINE_H_
