// AGP — abnormal group processing (Section 5.1.1). Groups whose tuple
// count is at most the threshold τ are considered abnormal (they likely
// exist only because an error in a rule's reason part spawned a spurious
// reason key) and are merged into the nearest normal group of the same
// block, where "distance between groups" is the distance between their γ*
// representatives.

#ifndef MLNCLEAN_CLEANING_AGP_H_
#define MLNCLEAN_CLEANING_AGP_H_

#include "cleaning/options.h"
#include "cleaning/report.h"
#include "common/executor.h"
#include "index/mln_index.h"

namespace mlnclean {

/// Runs AGP over one block in place, appending a record per detected
/// abnormal group to `report` (which may be null). Returns the number of
/// abnormal groups that were actually merged.
size_t RunAgp(Block* block, const CleaningOptions& options, const DistanceFn& dist,
              CleaningReport* report);

/// Runs AGP over every block of the index and reindexes the group maps.
/// Blocks run in parallel on `ctx`'s executor (one progress unit per
/// block); when `ctx` is stopped (cancelled or past its deadline), blocks
/// not yet started are skipped (cooperative; the caller reports the
/// terminal Status).
void RunAgpAll(MlnIndex* index, const CleaningOptions& options, const DistanceFn& dist,
               CleaningReport* report, const ExecContext& ctx = {});

}  // namespace mlnclean

#endif  // MLNCLEAN_CLEANING_AGP_H_
