#include "cleaning/fscr.h"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "common/distance.h"

namespace mlnclean {

namespace {

// One fused cell: the target attribute, the repair value's id in the
// cleaned dataset's dictionary (dirty ids are a prefix of it, so dirty
// cells compare directly), and a pointer to the value string owned by the
// γ it came from.
struct AssignedCell {
  AttrId attr;
  ValueId id;
  const Value* value;
};

// Sparse attribute assignment accumulated during fusion. Conflict checks
// compare ids — within one attribute's dictionary, id equality is value
// equality.
using Assignment = std::vector<AssignedCell>;

// A stage-1 clean version of a tuple: a γ (one per block the tuple is in
// scope for). The flattened (attr, id, value) form is shared with every
// other tuple the γ covers — it is computed once per γ, not once per
// (γ, tuple).
struct Version {
  size_t block_index = 0;
  const Piece* piece = nullptr;
  const Assignment* assignment = nullptr;
  double weight = 0.0;
};

// Returns the cell assigned to `attr`, or nullptr.
const AssignedCell* Lookup(const Assignment& a, AttrId attr) {
  for (const auto& cell : a) {
    if (cell.attr == attr) return &cell;
  }
  return nullptr;
}

// True when `v` disagrees with `a` on some shared attribute.
bool ConflictsWith(const Assignment& a, const Assignment& v) {
  for (const auto& cell : v) {
    const AssignedCell* cur = Lookup(a, cell.attr);
    if (cur != nullptr && cur->id != cell.id) return true;
  }
  return false;
}

// Merges `v` into `a` (values for already-assigned attrs must agree).
void MergeInto(Assignment* a, const Assignment& v) {
  for (const auto& cell : v) {
    if (Lookup(*a, cell.attr) == nullptr) a->push_back(cell);
  }
}

// Flattens a γ into assigned cells using its rule's attribute lists,
// resolving every value to an id in `cleaned`'s dictionaries (interning is
// only needed for hand-built pieces whose values never occurred in the
// data; grounded pieces reuse their dataset ids).
Assignment PieceAssignment(const Constraint& rule, const Piece& piece,
                           Dataset* cleaned) {
  Assignment out;
  const auto& reason_attrs = rule.reason_attrs();
  const auto& result_attrs = rule.result_attrs();
  out.reserve(reason_attrs.size() + result_attrs.size());
  auto resolve = [&](AttrId attr, const Value& value, const std::vector<ValueId>& ids,
                     size_t i) {
    ValueId id;
    if (i < ids.size() && ids[i] < cleaned->dict(attr).size() &&
        cleaned->dict(attr).value(ids[i]) == value) {
      id = ids[i];
    } else {
      id = cleaned->InternValue(attr, value);
    }
    out.push_back(AssignedCell{attr, id, &value});
  };
  for (size_t i = 0; i < reason_attrs.size(); ++i) {
    resolve(reason_attrs[i], piece.reason[i], piece.reason_ids, i);
  }
  for (size_t i = 0; i < result_attrs.size(); ++i) {
    resolve(result_attrs[i], piece.result[i], piece.result_ids, i);
  }
  return out;
}

// Per-block list of γs sorted by descending weight, for the γ' fallback
// search of Algorithm 2 (line 19). Assignments point into the per-piece
// storage owned by RunFscr.
struct BlockCandidates {
  std::vector<const Piece*> by_weight;
  std::vector<const Assignment*> assignments;
};

// Recursive exploration of merge orders (GetFusionT). `remaining` is a
// bitmask over the tuple's versions.
class FusionSearch {
 public:
  FusionSearch(const std::vector<Version>& versions,
               const std::vector<BlockCandidates>& candidates,
               const std::vector<uint32_t>& conflict_masks, size_t node_budget,
               const Dataset& dirty, TupleId tid, double minimality_discount)
      : versions_(versions),
        candidates_(candidates),
        conflict_masks_(conflict_masks),
        node_budget_(node_budget),
        dirty_(dirty),
        tid_(tid),
        minimality_discount_(minimality_discount) {}

  // Returns the best (minimality-discounted) f-score; writes the
  // corresponding assignment.
  double Run(Assignment* best_assignment) {
    Assignment current;
    Explore(FullMask(), current, 1.0);
    *best_assignment = std::move(best_assignment_);
    return best_f_;
  }

  // f-score of a complete fusion: the Eq. 5 weight product times the
  // minimality discount raised to the total *normalized edit distance*
  // between the fusion and the tuple's current values. Rewriting a value
  // entirely costs a full discount factor; nudging a typo costs a small
  // fraction — the same distance-over-minimality reasoning the
  // reliability score applies in stage I. Unchanged cells are detected by
  // id compare alone.
  double FinalScore(double f, const Assignment& assignment) const {
    double total = 0.0;
    for (const auto& cell : assignment) {
      if (dirty_.id_at(tid_, cell.attr) == cell.id) continue;
      const Value& current = dirty_.at(tid_, cell.attr);
      size_t max_len = std::max(current.size(), cell.value->size());
      if (max_len == 0) continue;
      total += static_cast<double>(Levenshtein(current, *cell.value)) / max_len;
    }
    return total == 0.0 ? f : f * std::pow(minimality_discount_, total);
  }

 private:
  uint32_t FullMask() const {
    return versions_.size() >= 32 ? ~uint32_t{0}
                                  : ((uint32_t{1} << versions_.size()) - 1);
  }

  void Explore(uint32_t remaining, const Assignment& current, double f) {
    if (node_budget_ == 0) return;
    --node_budget_;
    if (remaining == 0) {
      double total = FinalScore(f, current);
      if (total > best_f_) {
        best_f_ = total;
        best_assignment_ = current;
      }
      return;
    }
    // Fast path: when the remaining versions neither conflict pairwise nor
    // with the accumulated assignment, the product is order-independent.
    if (RemainingConflictFree(remaining, current)) {
      double total = f;
      Assignment merged = current;
      for (size_t j = 0; j < versions_.size(); ++j) {
        if ((remaining >> j) & 1u) {
          total *= versions_[j].weight;
          MergeInto(&merged, *versions_[j].assignment);
        }
      }
      total = FinalScore(total, merged);
      if (total > best_f_) {
        best_f_ = total;
        best_assignment_ = std::move(merged);
      }
      return;
    }
    for (size_t j = 0; j < versions_.size() && node_budget_ > 0; ++j) {
      if (((remaining >> j) & 1u) == 0) continue;
      const Version& vj = versions_[j];
      Assignment next = current;
      double fj;
      if (!ConflictsWith(current, *vj.assignment)) {
        MergeInto(&next, *vj.assignment);
        fj = vj.weight;
      } else {
        // Algorithm 2 line 19: substitute γj by the highest-weight γ' of
        // block Bj that does not conflict with the accumulated fusion.
        const BlockCandidates& cands = candidates_[vj.block_index];
        const Piece* found = nullptr;
        double found_w = 0.0;
        for (size_t c = 0; c < cands.by_weight.size(); ++c) {
          if (cands.by_weight[c] == vj.piece) continue;  // Bj - {γj}
          if (!ConflictsWith(current, *cands.assignments[c])) {
            found = cands.by_weight[c];
            found_w = found->weight;
            MergeInto(&next, *cands.assignments[c]);
            break;
          }
        }
        if (found == nullptr) continue;  // this merge order fails (f = 0)
        fj = found_w;
      }
      Explore(remaining & ~(uint32_t{1} << j), next, f * fj);
    }
  }

  bool RemainingConflictFree(uint32_t remaining, const Assignment& current) const {
    for (size_t j = 0; j < versions_.size(); ++j) {
      if (((remaining >> j) & 1u) == 0) continue;
      if (conflict_masks_[j] & remaining) return false;
      if (ConflictsWith(current, *versions_[j].assignment)) return false;
    }
    return true;
  }

  const std::vector<Version>& versions_;
  const std::vector<BlockCandidates>& candidates_;
  const std::vector<uint32_t>& conflict_masks_;
  size_t node_budget_;
  const Dataset& dirty_;
  TupleId tid_;
  double minimality_discount_;
  double best_f_ = 0.0;
  Assignment best_assignment_;
};

// Greedy fallback for tuples with more versions than the exhaustive cap:
// merge in descending-weight order with the same substitution rule.
double GreedyFusion(const std::vector<Version>& versions,
                    const std::vector<BlockCandidates>& candidates,
                    Assignment* out) {
  std::vector<size_t> order(versions.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return versions[a].weight > versions[b].weight;
  });
  Assignment current;
  double f = 1.0;
  for (size_t j : order) {
    const Version& vj = versions[j];
    if (!ConflictsWith(current, *vj.assignment)) {
      MergeInto(&current, *vj.assignment);
      f *= vj.weight;
      continue;
    }
    const BlockCandidates& cands = candidates[vj.block_index];
    bool found = false;
    for (size_t c = 0; c < cands.by_weight.size(); ++c) {
      if (cands.by_weight[c] == vj.piece) continue;
      if (!ConflictsWith(current, *cands.assignments[c])) {
        MergeInto(&current, *cands.assignments[c]);
        f *= cands.by_weight[c]->weight;
        found = true;
        break;
      }
    }
    if (!found) return 0.0;
  }
  *out = std::move(current);
  return f;
}

}  // namespace

void RunFscr(const Dataset& dirty, const RuleSet& rules, const MlnIndex& index,
             const CleaningOptions& options, Dataset* cleaned,
             CleaningReport* report, const ExecContext& ctx) {
  const size_t num_rows = dirty.num_rows();
  // Per block: every γ's flattened assignment, computed exactly once (a γ
  // covering k tuples used to be flattened k times). Value-to-id
  // resolution (and any interning of never-seen values) happens here, in
  // the sequential setup — the parallel fusion below only reads
  // dictionaries and writes column slots via set_id.
  std::vector<std::vector<const Piece*>> block_pieces(index.num_blocks());
  std::vector<std::vector<Assignment>> block_assignments(index.num_blocks());
  // tid -> versions (one per block whose γ covers the tuple).
  std::vector<std::vector<Version>> versions_of(num_rows);
  std::vector<BlockCandidates> candidates(index.num_blocks());
  for (size_t bi = 0; bi < index.num_blocks(); ++bi) {
    const Block& block = index.block(bi);
    const Constraint& rule = rules.rule(block.rule_index);
    std::vector<const Piece*>& pieces = block_pieces[bi];
    std::vector<Assignment>& assignments = block_assignments[bi];
    pieces.reserve(block.PieceCount());
    for (const Group& group : block.groups) {
      for (const Piece& piece : group.pieces) pieces.push_back(&piece);
    }
    assignments.reserve(pieces.size());
    for (const Piece* piece : pieces) {
      assignments.push_back(PieceAssignment(rule, *piece, cleaned));
    }
    for (size_t pi = 0; pi < pieces.size(); ++pi) {
      Version v;
      v.block_index = bi;
      v.piece = pieces[pi];
      v.assignment = &assignments[pi];
      v.weight = pieces[pi]->weight;
      for (TupleId tid : pieces[pi]->tuples) {
        versions_of[static_cast<size_t>(tid)].push_back(v);
      }
    }
    // Candidate order for the γ' fallback: descending weight.
    BlockCandidates& cands = candidates[bi];
    std::vector<size_t> order(pieces.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return pieces[a]->weight > pieces[b]->weight;
    });
    cands.by_weight.reserve(order.size());
    cands.assignments.reserve(order.size());
    for (size_t i : order) {
      cands.by_weight.push_back(pieces[i]);
      cands.assignments.push_back(&assignments[i]);
    }
  }

  // Fusion is per tuple (reads shared candidates, writes only its own row
  // and record slot), so the tuple space shards freely across threads; the
  // record vector is indexed by tid, keeping the report in tuple order no
  // matter which shard finishes first. Without a report the records are
  // not materialized at all.
  std::vector<FscrRecord> records(report ? num_rows : 0);
  auto fuse_tuple = [&](size_t tid) {
    std::vector<Version>& versions = versions_of[tid];
    FscrRecord local;
    FscrRecord& rec = report ? records[tid] : local;
    rec.tuple = static_cast<TupleId>(tid);
    if (versions.empty()) return;
    // Conflict attributes among the original versions (order-independent;
    // this is the "detected conflicts" signal of the Precision-F metric).
    // The bitmask only tracks the first 32 versions — the exhaustive search
    // is capped below that anyway — but conflict_attrs records every pair.
    std::vector<uint32_t> conflict_masks(versions.size(), 0);
    for (size_t i = 0; i < versions.size(); ++i) {
      for (size_t j = i + 1; j < versions.size(); ++j) {
        for (const auto& cell : *versions[i].assignment) {
          const AssignedCell* other = Lookup(*versions[j].assignment, cell.attr);
          if (other != nullptr && other->id != cell.id) {
            if (j < 32) conflict_masks[i] |= uint32_t{1} << j;
            if (i < 32) conflict_masks[j] |= uint32_t{1} << i;
            if (std::find(rec.conflict_attrs.begin(), rec.conflict_attrs.end(),
                          cell.attr) == rec.conflict_attrs.end()) {
              rec.conflict_attrs.push_back(cell.attr);
            }
          }
        }
      }
    }

    Assignment best;
    double f;
    FusionSearch search(versions, candidates, conflict_masks,
                        options.max_fusion_nodes, dirty, static_cast<TupleId>(tid),
                        options.fscr_minimality_discount);
    // The search's version bitmask is a uint32_t, so exhaustive exploration
    // is hard-capped at 31 versions regardless of the configured limit.
    if (versions.size() <= std::min<size_t>(options.max_exhaustive_fusion, 31)) {
      f = search.Run(&best);
    } else {
      f = GreedyFusion(versions, candidates, &best);
      if (f > 0.0) f = search.FinalScore(f, best);
    }
    if (f > 0.0) {
      rec.fused = true;
      rec.f_score = f;
      for (const auto& cell : best) {
        cleaned->set_id(static_cast<TupleId>(tid), cell.attr, cell.id);
      }
    }
    // f == 0: every merge order failed; the tuple keeps its current values
    // (Algorithm 2 initializes tfmax to t itself).
  };

  const size_t parallelism = ctx.parallelism();
  if (parallelism <= 1 || num_rows <= 1) {
    for (size_t tid = 0; tid < num_rows; ++tid) {
      if (ctx.Stopped()) return;
      fuse_tuple(tid);
      ctx.Tick(1);
    }
  } else {
    // Contiguous shards, one per worker: each tuple's fusion is computed
    // identically regardless of which shard runs it, so the shard count
    // (and hence the executor's worker count) never changes the result.
    const size_t shards = parallelism;
    const size_t chunk = (num_rows + shards - 1) / shards;
    ParallelFor(shards, ctx, [&](size_t s) {
      const size_t begin = s * chunk;
      const size_t end = std::min(num_rows, begin + chunk);
      for (size_t tid = begin; tid < end; ++tid) {
        if (ctx.Stopped()) return;
        fuse_tuple(tid);
        ctx.Tick(1);
      }
    });
  }

  if (report) {
    report->fscr.reserve(report->fscr.size() + records.size());
    std::move(records.begin(), records.end(), std::back_inserter(report->fscr));
  }
}

}  // namespace mlnclean
