// Internal: the shared state behind CleanModel, split out of engine.cc so
// the snapshot codec (model_io.cc) can reach it without widening the
// public API. Everything outside cleaning/ should go through CleanModel.

#ifndef MLNCLEAN_CLEANING_MODEL_STATE_H_
#define MLNCLEAN_CLEANING_MODEL_STATE_H_

#include <shared_mutex>
#include <utility>

#include "cleaning/engine.h"
#include "index/weight_merge.h"

namespace mlnclean {

/// Shared, session-pinned model state: the compiled rules and options plus
/// the Eq. 6 weight store. Sessions may contribute weights concurrently
/// (the distributed driver runs sessions on a worker pool) while many
/// serving sessions read the store, so it sits behind a reader-writer
/// lock: Accumulate is the only writer, Apply/size are shared readers and
/// do not serialize concurrent weight-reuse sessions. Everything else is
/// immutable after Compile.
struct CleanModel::State {
  State(RuleSet rules_in, CleaningOptions options_in)
      : rules(std::move(rules_in)), options(std::move(options_in)) {
    weights.set_half_life_batches(options.weight_half_life_batches);
  }

  const RuleSet rules;
  const CleaningOptions options;
  mutable std::shared_mutex weights_mu;
  GlobalWeightTable weights;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_CLEANING_MODEL_STATE_H_
