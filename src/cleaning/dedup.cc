#include "cleaning/dedup.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mlnclean {

Dataset RemoveDuplicates(const Dataset& data,
                         std::vector<std::pair<TupleId, TupleId>>* removed,
                         const ExecContext& ctx) {
  // Within one dataset, rows are equal iff their id rows are equal, so
  // duplicate detection never touches value bytes; the output shares the
  // input's dictionaries and copies survivors by id.
  Dataset out = Dataset::EmptyLike(data);
  std::unordered_map<uint64_t, std::vector<TupleId>> seen;
  seen.reserve(data.num_rows() * 2);
  for (TupleId tid = 0; tid < static_cast<TupleId>(data.num_rows()); ++tid) {
    // Stop checks are batched: a clock read per row would dominate the
    // hash probe the row actually pays for.
    if ((tid & 0x3ff) == 0 && ctx.Stopped()) return out;
    ctx.Tick(1);
    auto& bucket = seen[HashRowIds(data, tid)];
    TupleId first = -1;
    for (TupleId prev : bucket) {
      if (SameRowIds(data, prev, tid)) {
        first = prev;
        break;
      }
    }
    if (first < 0) {
      bucket.push_back(tid);
      out.AppendRowFrom(data, tid);
    } else if (removed != nullptr) {
      removed->emplace_back(tid, first);
    }
  }
  return out;
}

}  // namespace mlnclean
