#include "cleaning/dedup.h"

#include <string>
#include <unordered_map>

#include "common/string_util.h"

namespace mlnclean {

Dataset RemoveDuplicates(const Dataset& data,
                         std::vector<std::pair<TupleId, TupleId>>* removed) {
  Dataset out(data.schema());
  std::unordered_map<std::string, TupleId> seen;
  for (TupleId tid = 0; tid < static_cast<TupleId>(data.num_rows()); ++tid) {
    const auto& row = data.row(tid);
    auto [it, inserted] = seen.emplace(JoinKey(row), tid);
    if (inserted) {
      // Append preserves arity by construction; ignore the impossible error.
      (void)out.Append(row);
    } else if (removed != nullptr) {
      removed->emplace_back(tid, it->second);
    }
  }
  return out;
}

}  // namespace mlnclean
