// Duplicate elimination (Section 5.2, final step): after FSCR has unified
// the clean versions, tuples that became exact copies of one another refer
// to the same real-world entity and all but one representative are removed.

#ifndef MLNCLEAN_CLEANING_DEDUP_H_
#define MLNCLEAN_CLEANING_DEDUP_H_

#include <utility>
#include <vector>

#include "common/executor.h"
#include "dataset/dataset.h"

namespace mlnclean {

/// Returns `data` with exact duplicate rows removed (first occurrence
/// kept). Appends one (removed, kept) pair per dropped tuple to `removed`
/// when non-null. The hash pass is inherently sequential (survivorship
/// depends on every earlier row), so `ctx` contributes progress ticks
/// (one per row) and stop checks only: when `ctx` is stopped the partial
/// result is returned and the caller reports the terminal Status.
Dataset RemoveDuplicates(const Dataset& data,
                         std::vector<std::pair<TupleId, TupleId>>* removed,
                         const ExecContext& ctx = {});

}  // namespace mlnclean

#endif  // MLNCLEAN_CLEANING_DEDUP_H_
