// CleanServer: concurrent multi-session serving of one prepared
// CleanModel on a shared executor — the long-lived service front door the
// paper's deployable-cleaner pitch implies (its Section 6 maps the same
// pipeline onto a Spark worker set; HoloClean-style systems win in
// practice by serving, not batch-scripting).
//
//   CleanServer server = *CleanServer::Create(model, {&executor});
//   CleanTicket t1 = *server.Submit(batch1);       // non-blocking
//   CleanTicket t2 = *server.Submit(batch2, opts); // runs concurrently
//   CleanResult r1 = *t1.Take();                   // future-style harvest
//
// Submission is asynchronous; at most `max_concurrent_sessions` jobs run
// at a time, each as one task on the shared executor. The pending queue
// pops by (priority desc, deadline asc, admission order): submissions of
// one priority class with the same deadline state run in submit order
// (plain FIFO when nobody sets either knob), a higher
// SessionOptions::priority always goes first, and within a class the
// earliest deadline wins (EDF; deadline-less jobs sort last). Optionally
// the popping worker coalesces runs of small queued jobs into one
// dispatch (ServerOptions::coalesce_max_rows) — each job still runs its
// own session, so results are bit-identical to individual execution.
// When the pending queue is full, Submit returns
// StatusCode::kUnavailable immediately (backpressure — the caller sheds
// or retries; nothing blocks). Every ticket carries its session's
// CancelToken and optional deadline, both enforced cooperatively at
// block/shard boundaries, and `Stats()` reports queue depth, terminal
// counts, cumulative per-stage seconds, and ticket-latency percentiles
// from a fixed-size reservoir.
//
// Staged submissions (`SubmitStaged`) are the fleet's coordination
// primitive (src/fleet/): the job runs to a pause stage, parks with its
// live session exposed through the ticket (`WaitPaused` + `session()`),
// and re-enters the queue on `ResumeJob()` to run to its final stage —
// which is exactly the RunUntil(kLearn) / AdjustWeightsAcross / resume
// cut the Eq. 6 cross-shard weight merge needs.
//
// Determinism: with weight reuse off (or a warmed, no-longer-written
// store), K sessions served concurrently produce results bit-identical to
// K sequential cold runs of the same batches — sessions share nothing
// mutable but the lock-protected weight store, and every stage driver is
// executor-agnostic by construction. tests/cleaning/server_test.cc pins
// this under ThreadSanitizer in CI.
//
// Incremental lane: submissions with SessionOptions::incremental set feed
// one live row-incremental session (CleanModel::NewIncrementalSession)
// through a dedicated FIFO drained by a single task, so batches append in
// strict submission order and each ticket resolves to the *accumulated*
// cleaned output over every batch appended so far — bit-identical to a
// cold session over the concatenation (docs/streaming.md). The lane adds
// at most one concurrently executing session on top of
// max_concurrent_sessions and shares queue_capacity.

#ifndef MLNCLEAN_CLEANING_SERVER_H_
#define MLNCLEAN_CLEANING_SERVER_H_

#include <memory>
#include <optional>

#include "cleaning/engine.h"
#include "common/executor.h"
#include "common/latency_reservoir.h"
#include "common/result.h"
#include "common/retry.h"

namespace mlnclean {

struct ServerJob;    // internal per-submission state (server.cc)
struct ServerState;  // internal shared server state (server.cc)

/// Server tuning knobs.
struct ServerOptions {
  /// Worker set sessions run on. Null = the shared process executor.
  /// Borrowed; must outlive the server and every outstanding ticket.
  /// With an InlineExecutor, Submit degrades gracefully to synchronous
  /// execution (it returns a completed ticket). Note the split: this
  /// executor schedules *sessions*; the parallelism *inside* a session
  /// follows the model's own CleaningOptions (executor / num_threads) —
  /// point both at the same pool to share one worker set end to end.
  Executor* executor = nullptr;
  /// Sessions allowed to execute simultaneously. 0 = the executor's
  /// concurrency. More concurrent sessions than executor workers simply
  /// queue inside the executor.
  size_t max_concurrent_sessions = 0;
  /// Submissions allowed to wait for a session slot. A Submit that would
  /// push the pending queue past this returns kUnavailable.
  size_t queue_capacity = 64;
  /// Micro-batch coalescing budget, in rows. 0 = off. When a worker pops
  /// a job, it keeps popping while the next queued job (in queue order)
  /// would keep the group's total row count within this budget, then runs
  /// the whole group back-to-back as one dispatch — one lock
  /// acquisition and one worker wake-up for a flurry of small
  /// submissions instead of one each. Every job still runs as its own
  /// session, so each ticket's result is bit-identical to individual
  /// execution; coalescing batches the scheduling, not the evidence
  /// (grounding never mixes batches). Staged submissions never coalesce.
  size_t coalesce_max_rows = 0;
};

/// A snapshot of server counters (all since Create).
struct ServerStats {
  size_t queued = 0;     // submitted, not yet running
  size_t running = 0;    // sessions currently executing
  size_t submitted = 0;  // admitted submissions (excludes kUnavailable)
  size_t completed = 0;  // finished OK
  size_t failed = 0;     // finished with an error status
  size_t cancelled = 0;  // finished kCancelled
  size_t deadline_expired = 0;  // finished kDeadlineExceeded
  size_t rejected = 0;   // Submits refused with kUnavailable (queue full)
  size_t coalesced_groups = 0;  // dispatch groups of >= 2 coalesced jobs
  size_t coalesced_jobs = 0;    // jobs that ran inside such a group
  /// Cumulative wall seconds spent per stage across every finished
  /// session (partial stages of cancelled/expired sessions included).
  StageTimings stage_seconds;
  /// Submit-to-terminal ticket latency percentiles over a sliding window
  /// of the last 1024 finished jobs (common/latency_reservoir.h; the
  /// percentile sort runs on the Stats() caller, outside the server
  /// lock). `latency.samples` counts all-time finished jobs.
  LatencySnapshot latency;
};

/// Future-style handle to one submitted cleaning job. Cheap to copy (a
/// shared handle); the last copy going away never blocks — the job keeps
/// itself alive until it finishes.
class CleanTicket {
 public:
  /// True once the job reached a terminal state.
  bool done() const;

  /// Blocks until terminal; returns the final status (OK, kCancelled,
  /// kDeadlineExceeded, or the failure).
  Status Wait() const;

  /// Non-blocking harvest: empty while the job is pending or running;
  /// otherwise the moved-out CleanResult (or the terminal error). Like
  /// CleanSession::TakeResult, the result can be taken exactly once —
  /// later calls return kInvalid.
  std::optional<Result<CleanResult>> TryGet();

  /// Wait() + move the result out.
  Result<CleanResult> Take();

  /// Requests cooperative cancellation of this job (same semantics as
  /// the session CancelToken: the run stops at the next block/shard
  /// boundary; a still-queued job cancels when it reaches a worker).
  void Cancel();

  // ---- staged tickets (SubmitStaged) -------------------------------------

  /// Blocks until a staged job parks at its pause stage (returns OK) or
  /// reaches a terminal state first (returns that status — the pause
  /// point was never reached). On a plain ticket this is Wait().
  Status WaitPaused() const;

  /// The parked live session of a staged job — valid between a WaitPaused
  /// that returned OK and the matching ResumeJob(), exclusively for the
  /// coordinating caller (inspect weights, AdjustWeightsAcross). Null for
  /// plain tickets. The session lives until the last ticket handle drops,
  /// but must not be touched while the server is running it.
  CleanSession* session() const;

  /// Re-enqueues a parked staged job to run to its final stage. Bypasses
  /// the admission capacity check (the job was admitted once); scheduling
  /// keys (priority, deadline, admission order) are unchanged. Invalid on
  /// plain tickets, before the pause point, or twice; returns the
  /// terminal status if the first leg already failed.
  Status ResumeJob();

 private:
  friend class CleanServer;
  explicit CleanTicket(std::shared_ptr<ServerJob> job) : job_(std::move(job)) {}
  std::shared_ptr<ServerJob> job_;
};

/// The serving front door. Cheap to copy (a shared handle). Destroying
/// the last handle does not abort outstanding work: queued and running
/// jobs finish (they pin the shared state), only new submissions become
/// impossible. The datasets behind outstanding tickets are borrowed and
/// must stay alive until their tickets are terminal — unless submitted
/// through the owning overloads (Submit(Dataset&&), SubmitCsv), where the
/// job keeps the batch alive itself.
class CleanServer {
 public:
  /// Validates `options` and returns a server over `model`.
  static Result<CleanServer> Create(CleanModel model, ServerOptions options = {});

  /// Enqueues one batch for cleaning and returns its ticket without
  /// waiting for execution. `dirty` is borrowed (the session contract)
  /// and must outlive the ticket's terminal state. Fails with
  /// kUnavailable when the pending queue is at capacity. `opts` is the
  /// per-session configuration (progress callback — which fires on the
  /// executor thread serving this job — cancel token, deadline, weight
  /// reuse); the ticket's Cancel() shares `opts.cancel`.
  Result<CleanTicket> Submit(const Dataset& dirty, SessionOptions opts = {});

  /// Owning Submit: the batch moves into the job, so the caller needs no
  /// dataset outliving the ticket. SubmitCsv builds on this.
  Result<CleanTicket> Submit(Dataset&& dirty, SessionOptions opts = {});

  /// Parses `csv_text` and submits the resulting batch (owned by the
  /// job). With a non-null `quarantine`, malformed data rows are set
  /// aside per Dataset::FromCsv — one bad row degrades the batch instead
  /// of failing the submission; a broken header still fails.
  Result<CleanTicket> SubmitCsv(std::string_view csv_text, SessionOptions opts = {},
                                QuarantineReport* quarantine = nullptr);

  /// Submit with capped-exponential-backoff retries on retryable
  /// rejections (kUnavailable backpressure, kResourceExhausted). Sleeps
  /// between attempts on the calling thread; the delay sequence is
  /// RetrySchedule(policy) — deterministic, so retried runs reproduce.
  /// On an uncontended server the first attempt is admitted and no delay
  /// is ever drawn, making this byte-identical to plain Submit.
  /// `retries_out` (optional) receives the number of retries performed.
  Result<CleanTicket> SubmitWithRetry(const Dataset& dirty, SessionOptions opts = {},
                                      const RetryPolicy& policy = {},
                                      size_t* retries_out = nullptr);

  /// Staged submission: the job runs RunUntil(pause_after), parks with
  /// its live session reachable via CleanTicket::session() (after
  /// WaitPaused()), and on CleanTicket::ResumeJob() re-enters the queue
  /// to run RunUntil(final_stage). `pause_after` must precede
  /// `final_stage`; the incremental lane does not support staging. With
  /// final_stage == Stage::kDedup the ticket resolves to a CleanResult
  /// like a plain submission; with an earlier final stage the outputs
  /// stay on the session (Take() has nothing to move) — the fleet's
  /// merge reads session()->cleaned() directly.
  Result<CleanTicket> SubmitStaged(const Dataset& dirty, Stage pause_after,
                                   Stage final_stage, SessionOptions opts = {});

  /// Owning SubmitStaged: the batch moves into the job (the fleet ships
  /// routed shards this way, so a fleet ticket never borrows).
  Result<CleanTicket> SubmitStaged(Dataset&& dirty, Stage pause_after,
                                   Stage final_stage, SessionOptions opts = {});

  /// Counter snapshot (queue depth, terminal counts, stage seconds).
  ServerStats Stats() const;

  /// The served model.
  const CleanModel& model() const;

 private:
  explicit CleanServer(std::shared_ptr<ServerState> state)
      : state_(std::move(state)) {}
  Result<CleanTicket> Enqueue(std::shared_ptr<ServerJob> job);
  std::shared_ptr<ServerState> state_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_CLEANING_SERVER_H_
