// CleanServer: concurrent multi-session serving of one prepared
// CleanModel on a shared executor — the long-lived service front door the
// paper's deployable-cleaner pitch implies (its Section 6 maps the same
// pipeline onto a Spark worker set; HoloClean-style systems win in
// practice by serving, not batch-scripting).
//
//   CleanServer server = *CleanServer::Create(model, {&executor});
//   CleanTicket t1 = *server.Submit(batch1);       // non-blocking
//   CleanTicket t2 = *server.Submit(batch2, opts); // runs concurrently
//   CleanResult r1 = *t1.Take();                   // future-style harvest
//
// Submission is asynchronous with fair FIFO admission: jobs run in submit
// order, at most `max_concurrent_sessions` at a time, each as one task on
// the shared executor. When the pending queue is full, Submit returns
// StatusCode::kUnavailable immediately (backpressure — the caller sheds
// or retries; nothing blocks). Every ticket carries its session's
// CancelToken and optional deadline, both enforced cooperatively at
// block/shard boundaries, and `Stats()` reports queue depth, terminal
// counts, and cumulative per-stage seconds.
//
// Determinism: with weight reuse off (or a warmed, no-longer-written
// store), K sessions served concurrently produce results bit-identical to
// K sequential cold runs of the same batches — sessions share nothing
// mutable but the lock-protected weight store, and every stage driver is
// executor-agnostic by construction. tests/cleaning/server_test.cc pins
// this under ThreadSanitizer in CI.
//
// Incremental lane: submissions with SessionOptions::incremental set feed
// one live row-incremental session (CleanModel::NewIncrementalSession)
// through a dedicated FIFO drained by a single task, so batches append in
// strict submission order and each ticket resolves to the *accumulated*
// cleaned output over every batch appended so far — bit-identical to a
// cold session over the concatenation (docs/streaming.md). The lane adds
// at most one concurrently executing session on top of
// max_concurrent_sessions and shares queue_capacity.

#ifndef MLNCLEAN_CLEANING_SERVER_H_
#define MLNCLEAN_CLEANING_SERVER_H_

#include <memory>
#include <optional>

#include "cleaning/engine.h"
#include "common/executor.h"
#include "common/result.h"
#include "common/retry.h"

namespace mlnclean {

struct ServerJob;    // internal per-submission state (server.cc)
struct ServerState;  // internal shared server state (server.cc)

/// Server tuning knobs.
struct ServerOptions {
  /// Worker set sessions run on. Null = the shared process executor.
  /// Borrowed; must outlive the server and every outstanding ticket.
  /// With an InlineExecutor, Submit degrades gracefully to synchronous
  /// execution (it returns a completed ticket). Note the split: this
  /// executor schedules *sessions*; the parallelism *inside* a session
  /// follows the model's own CleaningOptions (executor / num_threads) —
  /// point both at the same pool to share one worker set end to end.
  Executor* executor = nullptr;
  /// Sessions allowed to execute simultaneously. 0 = the executor's
  /// concurrency. More concurrent sessions than executor workers simply
  /// queue inside the executor.
  size_t max_concurrent_sessions = 0;
  /// Submissions allowed to wait for a session slot. A Submit that would
  /// push the pending queue past this returns kUnavailable.
  size_t queue_capacity = 64;
};

/// A snapshot of server counters (all since Create).
struct ServerStats {
  size_t queued = 0;     // submitted, not yet running
  size_t running = 0;    // sessions currently executing
  size_t submitted = 0;  // admitted submissions (excludes kUnavailable)
  size_t completed = 0;  // finished OK
  size_t failed = 0;     // finished with an error status
  size_t cancelled = 0;  // finished kCancelled
  size_t deadline_expired = 0;  // finished kDeadlineExceeded
  size_t rejected = 0;   // Submits refused with kUnavailable (queue full)
  /// Cumulative wall seconds spent per stage across every finished
  /// session (partial stages of cancelled/expired sessions included).
  StageTimings stage_seconds;
};

/// Future-style handle to one submitted cleaning job. Cheap to copy (a
/// shared handle); the last copy going away never blocks — the job keeps
/// itself alive until it finishes.
class CleanTicket {
 public:
  /// True once the job reached a terminal state.
  bool done() const;

  /// Blocks until terminal; returns the final status (OK, kCancelled,
  /// kDeadlineExceeded, or the failure).
  Status Wait() const;

  /// Non-blocking harvest: empty while the job is pending or running;
  /// otherwise the moved-out CleanResult (or the terminal error). Like
  /// CleanSession::TakeResult, the result can be taken exactly once —
  /// later calls return kInvalid.
  std::optional<Result<CleanResult>> TryGet();

  /// Wait() + move the result out.
  Result<CleanResult> Take();

  /// Requests cooperative cancellation of this job (same semantics as
  /// the session CancelToken: the run stops at the next block/shard
  /// boundary; a still-queued job cancels when it reaches a worker).
  void Cancel();

 private:
  friend class CleanServer;
  explicit CleanTicket(std::shared_ptr<ServerJob> job) : job_(std::move(job)) {}
  std::shared_ptr<ServerJob> job_;
};

/// The serving front door. Cheap to copy (a shared handle). Destroying
/// the last handle does not abort outstanding work: queued and running
/// jobs finish (they pin the shared state), only new submissions become
/// impossible. The datasets behind outstanding tickets are borrowed and
/// must stay alive until their tickets are terminal — unless submitted
/// through the owning overloads (Submit(Dataset&&), SubmitCsv), where the
/// job keeps the batch alive itself.
class CleanServer {
 public:
  /// Validates `options` and returns a server over `model`.
  static Result<CleanServer> Create(CleanModel model, ServerOptions options = {});

  /// Enqueues one batch for cleaning and returns its ticket without
  /// waiting for execution. `dirty` is borrowed (the session contract)
  /// and must outlive the ticket's terminal state. Fails with
  /// kUnavailable when the pending queue is at capacity. `opts` is the
  /// per-session configuration (progress callback — which fires on the
  /// executor thread serving this job — cancel token, deadline, weight
  /// reuse); the ticket's Cancel() shares `opts.cancel`.
  Result<CleanTicket> Submit(const Dataset& dirty, SessionOptions opts = {});

  /// Owning Submit: the batch moves into the job, so the caller needs no
  /// dataset outliving the ticket. SubmitCsv builds on this.
  Result<CleanTicket> Submit(Dataset&& dirty, SessionOptions opts = {});

  /// Parses `csv_text` and submits the resulting batch (owned by the
  /// job). With a non-null `quarantine`, malformed data rows are set
  /// aside per Dataset::FromCsv — one bad row degrades the batch instead
  /// of failing the submission; a broken header still fails.
  Result<CleanTicket> SubmitCsv(std::string_view csv_text, SessionOptions opts = {},
                                QuarantineReport* quarantine = nullptr);

  /// Submit with capped-exponential-backoff retries on retryable
  /// rejections (kUnavailable backpressure, kResourceExhausted). Sleeps
  /// between attempts on the calling thread; the delay sequence is
  /// RetrySchedule(policy) — deterministic, so retried runs reproduce.
  /// On an uncontended server the first attempt is admitted and no delay
  /// is ever drawn, making this byte-identical to plain Submit.
  /// `retries_out` (optional) receives the number of retries performed.
  Result<CleanTicket> SubmitWithRetry(const Dataset& dirty, SessionOptions opts = {},
                                      const RetryPolicy& policy = {},
                                      size_t* retries_out = nullptr);

  /// Counter snapshot (queue depth, terminal counts, stage seconds).
  ServerStats Stats() const;

  /// The served model.
  const CleanModel& model() const;

 private:
  explicit CleanServer(std::shared_ptr<ServerState> state)
      : state_(std::move(state)) {}
  Result<CleanTicket> Enqueue(std::shared_ptr<ServerJob> job);
  std::shared_ptr<ServerState> state_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_CLEANING_SERVER_H_
