#include "common/varint.h"

#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace mlnclean {
namespace {

// 2-bit length code for one value: encoded length minus one.
inline uint32_t LengthCode(uint32_t v) {
  if (v < (uint32_t{1} << 8)) return 0;
  if (v < (uint32_t{1} << 16)) return 1;
  if (v < (uint32_t{1} << 24)) return 2;
  return 3;
}

inline uint32_t ZigzagEncode(uint32_t delta) {
  const int32_t d = static_cast<int32_t>(delta);
  return (static_cast<uint32_t>(d) << 1) ^ static_cast<uint32_t>(d >> 31);
}

inline uint32_t ZigzagDecode(uint32_t z) {
  return (z >> 1) ^ (~(z & 1) + 1);
}

// Appends one little-endian value of `len` bytes (1..4).
inline uint8_t* PutValue(uint8_t* out, uint32_t v, uint32_t len) {
  // Always store 4 bytes but only advance `len`: the scratch headroom the
  // encoder's MaxSize contract guarantees makes the unconditional store
  // safe and branch-free.
  std::memcpy(out, &v, sizeof(v));
  return out + len;
}

inline uint32_t GetValue(const uint8_t* in, uint32_t len) {
  uint32_t v = 0;
  std::memcpy(&v, in, len);
  return v;
}

// Scalar decode of one full group of four values.
inline const uint8_t* DecodeGroupScalar(uint8_t control, const uint8_t* data,
                                        uint32_t* out) {
  const uint32_t l0 = (control & 3u) + 1;
  const uint32_t l1 = ((control >> 2) & 3u) + 1;
  const uint32_t l2 = ((control >> 4) & 3u) + 1;
  const uint32_t l3 = ((control >> 6) & 3u) + 1;
  out[0] = GetValue(data, l0);
  data += l0;
  out[1] = GetValue(data, l1);
  data += l1;
  out[2] = GetValue(data, l2);
  data += l2;
  out[3] = GetValue(data, l3);
  return data + l3;
}

// Total data bytes of a full group, straight from the control byte.
inline uint32_t GroupDataBytes(uint8_t control) {
  return 4 + (control & 3u) + ((control >> 2) & 3u) + ((control >> 4) & 3u) +
         ((control >> 6) & 3u);
}

#if defined(__x86_64__)

// Shuffle masks for _mm_shuffle_epi8: entry c expands the packed bytes of
// the group with control byte c into four little-endian u32 lanes (0x80
// lanes produce zeros).
struct ShuffleTable {
  alignas(16) uint8_t masks[256][16];
  ShuffleTable() {
    for (int c = 0; c < 256; ++c) {
      uint8_t src = 0;
      for (int v = 0; v < 4; ++v) {
        const int len = ((c >> (2 * v)) & 3) + 1;
        for (int byte = 0; byte < 4; ++byte) {
          masks[c][4 * v + byte] =
              byte < len ? src++ : uint8_t{0x80};
        }
      }
    }
  }
};

const ShuffleTable& Shuffles() {
  static const ShuffleTable table;
  return table;
}

__attribute__((target("ssse3"))) const uint8_t* DecodeGroupSsse3(
    uint8_t control, const uint8_t* data, uint32_t* out) {
  const __m128i raw =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(data));
  const __m128i mask = _mm_load_si128(
      reinterpret_cast<const __m128i*>(Shuffles().masks[control]));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                   _mm_shuffle_epi8(raw, mask));
  return data + GroupDataBytes(control);
}

bool CpuHasSsse3() {
  static const bool has = __builtin_cpu_supports("ssse3");
  return has;
}

#endif  // __x86_64__

// Core decode loop shared by the raw and delta entry points. `Post` maps
// each decoded group in place (identity for raw, prefix-sum for delta).
template <typename Post>
bool DecodeImpl(const uint8_t* in, size_t in_size, size_t n, uint32_t* out,
                size_t* consumed, Post post) {
  const uint8_t* p = in;
  const uint8_t* const end = in + in_size;
  size_t i = 0;
#if defined(__x86_64__)
  if (CpuHasSsse3()) {
    // The SIMD group decode loads 16 bytes unconditionally, so it runs
    // only while a full 1 + 16 byte window is available; the scalar tail
    // below finishes the stream exactly.
    while (i + 4 <= n && end - p >= 17) {
      const uint8_t control = *p++;
      p = DecodeGroupSsse3(control, p, out + i);
      post(out, i, 4);
      i += 4;
    }
  }
#endif
  while (i + 4 <= n) {
    if (p >= end) return false;
    const uint8_t control = *p++;
    if (static_cast<size_t>(end - p) < GroupDataBytes(control)) return false;
    p = DecodeGroupScalar(control, p, out + i);
    post(out, i, 4);
    i += 4;
  }
  if (i < n) {
    // Trailing partial group: the unused high codes of the control byte
    // are required to be zero (the encoder writes them as zero), so a
    // truncated tail can't silently alias a longer one.
    if (p >= end) return false;
    const uint8_t control = *p++;
    const size_t rest = n - i;
    if ((control >> (2 * rest)) != 0) return false;
    for (size_t v = 0; v < rest; ++v) {
      const uint32_t len = ((control >> (2 * v)) & 3u) + 1;
      if (static_cast<size_t>(end - p) < len) return false;
      out[i + v] = GetValue(p, len);
      p += len;
    }
    post(out, i, rest);
    i += rest;
  }
  if (consumed != nullptr) *consumed = static_cast<size_t>(p - in);
  return true;
}

}  // namespace

size_t GroupVarintEncode(const uint32_t* values, size_t n, uint8_t* out) {
  uint8_t* p = out;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32_t c0 = LengthCode(values[i]);
    const uint32_t c1 = LengthCode(values[i + 1]);
    const uint32_t c2 = LengthCode(values[i + 2]);
    const uint32_t c3 = LengthCode(values[i + 3]);
    *p++ = static_cast<uint8_t>(c0 | (c1 << 2) | (c2 << 4) | (c3 << 6));
    p = PutValue(p, values[i], c0 + 1);
    p = PutValue(p, values[i + 1], c1 + 1);
    p = PutValue(p, values[i + 2], c2 + 1);
    p = PutValue(p, values[i + 3], c3 + 1);
  }
  if (i < n) {
    uint8_t control = 0;
    for (size_t v = 0; i + v < n; ++v) {
      control |= static_cast<uint8_t>(LengthCode(values[i + v]) << (2 * v));
    }
    *p++ = control;
    for (size_t v = 0; i + v < n; ++v) {
      p = PutValue(p, values[i + v], LengthCode(values[i + v]) + 1);
    }
  }
  return static_cast<size_t>(p - out);
}

bool GroupVarintDecode(const uint8_t* in, size_t in_size, size_t n,
                       uint32_t* out, size_t* consumed) {
  return DecodeImpl(in, in_size, n, out, consumed,
                    [](uint32_t*, size_t, size_t) {});
}

size_t GroupVarintEncodeDelta(const uint32_t* values, size_t n, uint8_t* out) {
  uint8_t* p = out;
  uint32_t prev = 0;
  size_t i = 0;
  uint32_t group[4];
  while (i < n) {
    const size_t rest = n - i < 4 ? n - i : 4;
    for (size_t v = 0; v < rest; ++v) {
      group[v] = ZigzagEncode(values[i + v] - prev);
      prev = values[i + v];
    }
    p += GroupVarintEncode(group, rest, p);
    i += rest;
  }
  return static_cast<size_t>(p - out);
}

bool GroupVarintDecodeDelta(const uint8_t* in, size_t in_size, size_t n,
                            uint32_t* out, size_t* consumed) {
  uint32_t prev = 0;
  return DecodeImpl(in, in_size, n, out, consumed,
                    [&prev](uint32_t* data, size_t start, size_t count) {
                      for (size_t v = 0; v < count; ++v) {
                        prev += ZigzagDecode(data[start + v]);
                        data[start + v] = prev;
                      }
                    });
}

void GroupVarintEncodeDelta(const std::vector<uint32_t>& values,
                            std::vector<uint8_t>* out) {
  const size_t base = out->size();
  out->resize(base + GroupVarintMaxSize(values.size()));
  const size_t written =
      GroupVarintEncodeDelta(values.data(), values.size(), out->data() + base);
  out->resize(base + written);
}

bool GroupVarintUsesSimd() {
#if defined(__x86_64__)
  return CpuHasSsse3();
#else
  return false;
#endif
}

}  // namespace mlnclean
