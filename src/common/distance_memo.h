// PairDistanceMemo: symmetric distance memoization over one dictionary's
// ValueIds. With values interned at load time (see dataset/value_dict.h),
// the memo key is just the (min, max) id pair — no value hashing, no
// separate interner. AGP's abnormal-vs-normal γ* scan and RSC's O(m²)
// per-group loops keep hitting the same value pairs (cities, states,
// measure names repeat across γs), so each distinct unordered pair pays
// for the distance kernel at most once per block.
//
// The table is flat open addressing: a lookup is a 64-bit mix plus a short
// linear probe, an insert never allocates a node, and in steady state the
// memo does no heap allocation at all.
//
// Not thread-safe: the parallel stages create one memo set per block task.

#ifndef MLNCLEAN_COMMON_DISTANCE_MEMO_H_
#define MLNCLEAN_COMMON_DISTANCE_MEMO_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/distance.h"
#include "dataset/value_dict.h"

namespace mlnclean {

/// Memoizes a symmetric distance over the ValueIds of one dictionary.
/// Callers supply the value strings on a miss (pieces carry them), so the
/// memo never needs the dictionary itself.
class PairDistanceMemo {
 public:
  PairDistanceMemo() = default;

  /// Memoized distance. `a`/`b` must identify `va`/`vb` in one dictionary;
  /// equal ids return 0 without consulting the kernel or the memo.
  double Distance(ValueId a, ValueId b, std::string_view va, std::string_view vb,
                  const DistanceFn& dist);

  size_t num_cached_pairs() const { return num_pairs_; }
  /// Distance() calls answered without the kernel (memo hits plus the
  /// id-equality fast path); exposed for tests and benchmarks.
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  // Key packs the two ids as min << 32 | max. min < max always (equal ids
  // short-circuit), so ~0 can never be a real key.
  struct Slot {
    uint64_t key = kEmptyKey;
    double distance = 0.0;
  };
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};

  void Grow();

  std::vector<Slot> slots_;
  size_t num_pairs_ = 0;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_DISTANCE_MEMO_H_
