#include "common/status.h"

#include <exception>
#include <new>

namespace mlnclean {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalid:
      return "Invalid";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

Status StatusFromCurrentException(const std::string& context) {
  try {
    throw;  // rethrow the in-flight exception to dispatch on its type
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(context + ": out of memory (bad_alloc)");
  } catch (const std::exception& e) {
    return Status::Internal(context + ": " + e.what());
  } catch (...) {
    return Status::Internal(context + ": non-standard exception");
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace mlnclean
