#include "common/status.h"

namespace mlnclean {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalid:
      return "Invalid";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace mlnclean
