// Result<T>: value-or-Status, in the style of arrow::Result.

#ifndef MLNCLEAN_COMMON_RESULT_H_
#define MLNCLEAN_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mlnclean {

/// Holds either a T or a non-OK Status explaining why no T is available.
///
/// Typical use:
///   Result<Dataset> r = Dataset::FromCsv(path);
///   if (!r.ok()) return r.status();
///   Dataset d = std::move(r).ValueUnsafe();
/// or, inside a Status/Result-returning function:
///   MLN_ASSIGN_OR_RETURN(Dataset d, Dataset::FromCsv(path));
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit so `return status;` works).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result must not be built from an OK Status");
    if (status_.ok()) status_ = Status::Internal("Result built from OK Status");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  const T& ValueUnsafe() const& { return *value_; }
  T& ValueUnsafe() & { return *value_; }
  T ValueUnsafe() && { return std::move(*value_); }

  /// The contained value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  const T& operator*() const& { return ValueUnsafe(); }
  T& operator*() & { return ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_RESULT_H_
