#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_map>

namespace mlnclean {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

namespace {

// Long-lived pools shared by every ParallelFor call, one per distinct
// worker count: spawning (and joining) threads per call costs more than
// many of the loops it runs. Intentionally leaked at process exit.
ThreadPool& SharedPoolFor(size_t num_threads) {
  static std::mutex mu;
  static auto* pools = new std::unordered_map<size_t, std::unique_ptr<ThreadPool>>();
  std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<ThreadPool>& pool = (*pools)[num_threads];
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(num_threads);
  return *pool;
}

}  // namespace

void ParallelFor(size_t n, size_t num_threads, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  num_threads = std::max<size_t>(1, num_threads);
  if (num_threads == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One worker task per thread, pulling indices from a shared counter:
  // dynamic load balancing without a queue entry per index, and completion
  // is tracked per call so concurrent ParallelFors on the same pool do not
  // observe each other. The pool is keyed by the *requested* thread count
  // (not the n-clamped worker count) so a process only ever holds one pool
  // per configured concurrency, not one per loop size.
  ThreadPool& pool = SharedPoolFor(num_threads);
  const size_t workers = std::min(num_threads, n);
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::promise<void> all_done;
  std::future<void> all_done_future = all_done.get_future();
  for (size_t w = 0; w < workers; ++w) {
    pool.Submit([&] {
      try {
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= n) break;
          fn(i);
        }
      } catch (...) {
        // Record the first failure and stop handing out indices; the
        // promise must still be fulfilled or the caller hangs forever.
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        next.store(n);
      }
      if (done.fetch_add(1) + 1 == workers) all_done.set_value();
    });
  }
  all_done_future.wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mlnclean
