#include "common/thread_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace mlnclean {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> fut = task->get_future();
  Post([task] { (*task)(); });
  return fut;
}

void ThreadPool::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace mlnclean
