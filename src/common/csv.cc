#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace mlnclean {

namespace {

// Parses one record starting at *pos; advances *pos past the record and its
// trailing newline. Returns false at end of input. A malformed record
// (stray or unterminated quote) sets *reason, advances *pos past the rest
// of the physical line — the recovery point a quarantining caller resumes
// from; any quoted newlines the broken row meant to contain are discarded
// with it — and still returns true.
bool ParseRecord(std::string_view text, size_t* pos, std::vector<std::string>* fields,
                 std::string* reason) {
  fields->clear();
  reason->clear();
  size_t i = *pos;
  if (i >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  bool record_done = false;
  while (i < text.size() && !record_done) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
    } else {
      switch (c) {
        case '"':
          if (!field.empty()) {
            *reason = "stray quote inside unquoted CSV field";
            while (i < text.size() && text[i] != '\n') ++i;
            if (i < text.size()) ++i;  // consume the newline
            *pos = i;
            return true;
          }
          in_quotes = true;
          ++i;
          break;
        case ',':
          fields->push_back(std::move(field));
          field.clear();
          ++i;
          break;
        case '\r':
          ++i;
          if (i < text.size() && text[i] == '\n') ++i;
          record_done = true;
          break;
        case '\n':
          ++i;
          record_done = true;
          break;
        default:
          field += c;
          ++i;
      }
    }
  }
  if (in_quotes) {
    *reason = "unterminated quoted CSV field";
    *pos = i;  // end of input: nothing left to resume from
    return true;
  }
  fields->push_back(std::move(field));
  *pos = i;
  return true;
}

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\r\n") != std::string_view::npos;
}

void AppendField(std::string* out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

std::string QuarantineReport::Summary() const {
  std::ostringstream out;
  out << "quarantined " << rows.size() << " of " << rows.size() + rows_kept
      << " rows";
  if (!rows.empty()) {
    out << " (first: row " << rows.front().row_number << ": "
        << rows.front().reason << ")";
  }
  return out.str();
}

Result<CsvTable> ParseCsv(std::string_view text) { return ParseCsv(text, nullptr); }

Result<CsvTable> ParseCsv(std::string_view text, QuarantineReport* quarantine) {
  CsvTable table;
  size_t pos = 0;
  std::string reason;
  std::vector<std::string> fields;
  if (!ParseRecord(text, &pos, &fields, &reason)) {
    return Status::IOError("empty CSV input");
  }
  // A broken header fails even a quarantining parse: without a schema
  // there is nothing to keep the surviving rows under.
  if (!reason.empty()) return Status::IOError(reason);
  table.header = std::move(fields);
  size_t arity = table.header.size();
  size_t row_number = 0;  // 1-based data rows; the header is row 0
  while (ParseRecord(text, &pos, &fields, &reason)) {
    ++row_number;
    if (!reason.empty()) {
      if (quarantine == nullptr) return Status::IOError(reason);
      quarantine->rows.push_back({row_number, reason});
      continue;
    }
    // Tolerate a trailing blank line.
    if (fields.size() == 1 && fields[0].empty() && pos >= text.size()) break;
    if (fields.size() != arity) {
      std::ostringstream msg;
      msg << fields.size() << " fields, expected " << arity;
      if (quarantine == nullptr) {
        std::ostringstream full;
        full << "CSV row " << row_number << " has " << msg.str();
        return Status::IOError(full.str());
      }
      quarantine->rows.push_back({row_number, msg.str()});
      continue;
    }
    table.rows.push_back(std::move(fields));
  }
  if (quarantine != nullptr) quarantine->rows_kept = table.rows.size();
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  return ReadCsvFile(path, nullptr);
}

Result<CsvTable> ReadCsvFile(const std::string& path, QuarantineReport* quarantine) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), quarantine);
}

std::string WriteCsv(const CsvTable& table) {
  std::string out;
  for (size_t i = 0; i < table.header.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendField(&out, table.header[i]);
  }
  out.push_back('\n');
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(&out, row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const CsvTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open file for write: " + path);
  out << WriteCsv(table);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace mlnclean
