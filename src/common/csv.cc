#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace mlnclean {

namespace {

// Parses one record starting at *pos; advances *pos past the record and its
// trailing newline. Returns false at end of input.
bool ParseRecord(std::string_view text, size_t* pos, std::vector<std::string>* fields,
                 Status* error) {
  fields->clear();
  size_t i = *pos;
  if (i >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  bool record_done = false;
  while (i < text.size() && !record_done) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
    } else {
      switch (c) {
        case '"':
          if (!field.empty()) {
            *error = Status::IOError("stray quote inside unquoted CSV field");
            return false;
          }
          in_quotes = true;
          ++i;
          break;
        case ',':
          fields->push_back(std::move(field));
          field.clear();
          ++i;
          break;
        case '\r':
          ++i;
          if (i < text.size() && text[i] == '\n') ++i;
          record_done = true;
          break;
        case '\n':
          ++i;
          record_done = true;
          break;
        default:
          field += c;
          ++i;
      }
    }
  }
  if (in_quotes) {
    *error = Status::IOError("unterminated quoted CSV field");
    return false;
  }
  fields->push_back(std::move(field));
  *pos = i;
  return true;
}

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\r\n") != std::string_view::npos;
}

void AppendField(std::string* out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<CsvTable> ParseCsv(std::string_view text) {
  CsvTable table;
  size_t pos = 0;
  Status error;
  std::vector<std::string> fields;
  if (!ParseRecord(text, &pos, &fields, &error)) {
    if (!error.ok()) return error;
    return Status::IOError("empty CSV input");
  }
  table.header = std::move(fields);
  size_t arity = table.header.size();
  while (ParseRecord(text, &pos, &fields, &error)) {
    // Tolerate a trailing blank line.
    if (fields.size() == 1 && fields[0].empty() && pos >= text.size()) break;
    if (fields.size() != arity) {
      std::ostringstream msg;
      msg << "CSV row " << table.rows.size() + 1 << " has " << fields.size()
          << " fields, expected " << arity;
      return Status::IOError(msg.str());
    }
    table.rows.push_back(std::move(fields));
  }
  if (!error.ok()) return error;
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

std::string WriteCsv(const CsvTable& table) {
  std::string out;
  for (size_t i = 0; i < table.header.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendField(&out, table.header[i]);
  }
  out.push_back('\n');
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(&out, row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const CsvTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open file for write: " + path);
  out << WriteCsv(table);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace mlnclean
