#include "common/retry.h"

#include <algorithm>
#include <cmath>

namespace mlnclean {

Status RetryPolicy::Validate() const {
  if (max_attempts == 0) {
    return Status::Invalid("retry max_attempts must be at least 1");
  }
  if (initial_backoff.count() < 0 || max_backoff.count() < 0) {
    return Status::Invalid("retry backoff delays must be non-negative");
  }
  if (!(multiplier >= 1.0)) {
    return Status::Invalid("retry multiplier must be at least 1");
  }
  if (!(jitter >= 0.0 && jitter < 1.0)) {
    return Status::Invalid("retry jitter must be in [0, 1)");
  }
  return Status::OK();
}

bool RetryPolicy::IsRetryable(const Status& status) {
  return status.IsUnavailable() || status.IsResourceExhausted();
}

RetrySchedule::RetrySchedule(const RetryPolicy& policy)
    : policy_(policy), rng_(policy.seed) {}

std::chrono::milliseconds RetrySchedule::NextDelay() {
  double base = static_cast<double>(policy_.initial_backoff.count()) *
                std::pow(policy_.multiplier, static_cast<double>(retries_));
  base = std::min(base, static_cast<double>(policy_.max_backoff.count()));
  ++retries_;
  if (policy_.jitter > 0.0) {
    // One draw per delay even when the base is already capped, so the
    // jitter stream position depends only on the retry count.
    base *= 1.0 - policy_.jitter + 2.0 * policy_.jitter * rng_.NextDouble();
  }
  return std::chrono::milliseconds(
      static_cast<std::chrono::milliseconds::rep>(std::llround(base)));
}

}  // namespace mlnclean
