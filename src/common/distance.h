// String distance metrics used by AGP (group-to-group distance) and RSC
// (reliability score). The paper evaluates Levenshtein vs. cosine distance
// (Table 5); Damerau-Levenshtein is provided as an extension.
//
// The kernels here are the pipeline's innermost hot path: stage I calls
// them for every abnormal-vs-normal γ* pair (AGP) and every γ pair inside
// every group (RSC). All entry points are allocation-free in steady state —
// the DP rows and bigram profiles live in caller-provided (or thread-local)
// scratch that only ever grows.

#ifndef MLNCLEAN_COMMON_DISTANCE_H_
#define MLNCLEAN_COMMON_DISTANCE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace mlnclean {

/// Metric selector for MLNClean's pluggable distance.
enum class DistanceMetric {
  kLevenshtein,
  kCosine,   // cosine distance over character-bigram frequency vectors
  kDamerau,  // Damerau-Levenshtein (adjacent transpositions count as 1)
};

/// Reusable scratch for the edit-distance kernels. Pass one instance into
/// a tight comparison loop to keep the kernels allocation-free; the
/// buffers grow to the longest string seen and are never shrunk.
///
/// `rows` holds the DP rows of the reference kernel and Damerau.
/// `pattern_bits` is the Myers pattern bitmap (one bit row per pattern
/// character, char-major); the kernels maintain the invariant that it is
/// all zeros between calls, so each call only touches the entries of the
/// characters actually present in its pattern instead of wiping 2 KiB.
struct EditDistanceScratch {
  std::vector<size_t> rows;
  std::vector<uint64_t> pattern_bits;
};

/// Edit distance (insert/delete/substitute) via the Myers 1999 bit-vector
/// kernel: one uint64_t block when the (shorter, affix-trimmed) string
/// fits in 64 characters, the blocked variant above that. Equal strings
/// and shared prefixes/suffixes are resolved without touching the kernel.
/// The two-argument form uses a thread-local scratch.
size_t Levenshtein(std::string_view a, std::string_view b);
size_t Levenshtein(std::string_view a, std::string_view b, EditDistanceScratch* scratch);

/// The classic rolling-row dynamic program, kept as the reference the
/// bit-parallel kernel is property-tested against (and as the readable
/// statement of the recurrence). Same trimming fast paths as Levenshtein.
size_t LevenshteinReferenceDp(std::string_view a, std::string_view b,
                              EditDistanceScratch* scratch);

/// Damerau-Levenshtein distance with adjacent transpositions.
size_t DamerauLevenshtein(std::string_view a, std::string_view b);
size_t DamerauLevenshtein(std::string_view a, std::string_view b,
                          EditDistanceScratch* scratch);

/// Sorted character-bigram frequency profile of a string: distinct packed
/// bigrams in ascending key order with their counts, plus the vector's
/// Euclidean norm. Build once per distinct value, then compare profiles in
/// O(|a| + |b|) via CosineProfileDistance. Strings shorter than two
/// characters fall back to unigram profiles (matching CosineBigramDistance).
class BigramProfile {
 public:
  BigramProfile() = default;
  explicit BigramProfile(std::string_view s) { Assign(s); }

  /// Rebuilds the profile for `s`, reusing the existing capacity.
  void Assign(std::string_view s);

  const std::vector<std::pair<uint16_t, double>>& counts() const { return counts_; }
  double norm() const { return norm_; }
  bool empty() const { return counts_.empty(); }

 private:
  std::vector<std::pair<uint16_t, double>> counts_;  // sorted by key
  double norm_ = 0.0;
};

/// Cosine distance between two prebuilt profiles: a single linear merge of
/// the two sorted count vectors. Empty profiles are at distance 1 from
/// everything (including each other), matching CosineBigramDistance's
/// handling of empty strings.
double CosineProfileDistance(const BigramProfile& a, const BigramProfile& b);

/// Cosine distance (1 - cosine similarity) between character-bigram
/// frequency vectors; returns a value in [0, 1]. Builds the two profiles in
/// thread-local scratch; prefer prebuilt BigramProfiles when comparing the
/// same value many times.
double CosineBigramDistance(std::string_view a, std::string_view b);

/// A string distance function. All built-in metrics return non-negative
/// values with d(a, a) == 0.
using DistanceFn = std::function<double(std::string_view, std::string_view)>;

/// Returns the distance function for `metric`. Every returned function has
/// an a == b -> 0.0 fast path that skips the kernel entirely.
DistanceFn MakeDistanceFn(DistanceMetric metric);

/// Returns the length-normalized variant used for multi-attribute piece
/// comparisons: edit distances are divided by the longer string's length
/// (so every attribute contributes at most ~1 regardless of value
/// length); cosine is already normalized and is returned unchanged.
DistanceFn MakeNormalizedDistanceFn(DistanceMetric metric);

/// Parses "levenshtein" | "cosine" | "damerau" (case-insensitive).
Result<DistanceMetric> ParseDistanceMetric(std::string_view name);

/// Human-readable name of a metric.
const char* DistanceMetricName(DistanceMetric metric);

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_DISTANCE_H_
