// String distance metrics used by AGP (group-to-group distance) and RSC
// (reliability score). The paper evaluates Levenshtein vs. cosine distance
// (Table 5); Damerau-Levenshtein is provided as an extension.

#ifndef MLNCLEAN_COMMON_DISTANCE_H_
#define MLNCLEAN_COMMON_DISTANCE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"

namespace mlnclean {

/// Metric selector for MLNClean's pluggable distance.
enum class DistanceMetric {
  kLevenshtein,
  kCosine,   // cosine distance over character-bigram frequency vectors
  kDamerau,  // Damerau-Levenshtein (adjacent transpositions count as 1)
};

/// Classic dynamic-programming edit distance (insert/delete/substitute).
size_t Levenshtein(std::string_view a, std::string_view b);

/// Damerau-Levenshtein distance with adjacent transpositions.
size_t DamerauLevenshtein(std::string_view a, std::string_view b);

/// Cosine distance (1 - cosine similarity) between character-bigram
/// frequency vectors; returns a value in [0, 1]. Strings shorter than two
/// characters fall back to unigram vectors.
double CosineBigramDistance(std::string_view a, std::string_view b);

/// A string distance function. All built-in metrics return non-negative
/// values with d(a, a) == 0.
using DistanceFn = std::function<double(std::string_view, std::string_view)>;

/// Returns the distance function for `metric`.
DistanceFn MakeDistanceFn(DistanceMetric metric);

/// Returns the length-normalized variant used for multi-attribute piece
/// comparisons: edit distances are divided by the longer string's length
/// (so every attribute contributes at most ~1 regardless of value
/// length); cosine is already normalized and is returned unchanged.
DistanceFn MakeNormalizedDistanceFn(DistanceMetric metric);

/// Parses "levenshtein" | "cosine" | "damerau" (case-insensitive).
Result<DistanceMetric> ParseDistanceMetric(std::string_view name);

/// Human-readable name of a metric.
const char* DistanceMetricName(DistanceMetric metric);

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_DISTANCE_H_
