// Executor: the process-wide execution abstraction behind every parallel
// stage driver. PR 1 gave each distinct thread count its own long-lived
// ThreadPool; with the serving layer running many sessions at once that
// multiplies pools and oversubscribes the host. Now there is one
// interface (`Executor`), two implementations (`InlineExecutor`,
// `PoolExecutor`), one shared process pool (`ProcessExecutor()`), and
// `ParallelFor` is a thin helper over an `Executor*`: the calling thread
// always participates in the loop, so nested ParallelFor calls on one
// shared pool (a CleanServer session running its stage drivers on the
// same executor that scheduled the session) can never deadlock — even if
// no pool worker ever picks the subtasks up, the caller drains the index
// space itself.
//
// ExecContext bundles what a stage driver needs from its caller: the
// executor, a worker cap, the cooperative cancellation flag, an optional
// deadline (both polled at block/shard boundaries via `Stopped()`), and
// an optional ProgressSink for intra-stage progress. The sink's contract
// is a mutex-free MPSC path: any worker may `Tick()` units (a relaxed
// atomic add), and only the single driving thread `Poll()`s them out to
// the user's callback — ParallelFor polls between the caller's own
// indices and while it waits for in-flight workers.

#ifndef MLNCLEAN_COMMON_EXECUTOR_H_
#define MLNCLEAN_COMMON_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"

namespace mlnclean {

class ThreadPool;

/// Where tasks run. Implementations must be thread-safe: any thread may
/// Submit, including a task already running on the executor.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Schedules `fn`. May run it inline (InlineExecutor) or on a worker
  /// thread; must never block on other queued tasks.
  virtual void Submit(std::function<void()> fn) = 0;

  /// Number of worker threads (1 for inline). A parallelism hint: callers
  /// submitting fan-out work should not submit more concurrent tasks.
  virtual size_t concurrency() const = 0;
};

/// Runs every task inline on the submitting thread. The sequential
/// executor; also the zero-dependency fallback everywhere an ExecContext
/// is default-constructed.
class InlineExecutor : public Executor {
 public:
  void Submit(std::function<void()> fn) override { fn(); }
  size_t concurrency() const override { return 1; }
};

/// A fixed-size worker pool (wraps ThreadPool). Threads spawn at
/// construction and join at destruction; destruction drains the queue.
class PoolExecutor : public Executor {
 public:
  explicit PoolExecutor(size_t num_threads);
  ~PoolExecutor() override;

  void Submit(std::function<void()> fn) override;
  size_t concurrency() const override;

 private:
  std::unique_ptr<ThreadPool> pool_;
};

/// The shared process-wide pool, sized to the hardware concurrency and
/// created on first use (intentionally leaked at exit, like the old
/// per-thread-count pools — one pool per process, not one per distinct
/// thread count). This is what `CleaningOptions::ResolvedExecutor()`
/// hands to stage drivers when no explicit executor is configured.
Executor* ProcessExecutor();

/// The shared inline (sequential) executor.
Executor* SequentialExecutor();

/// Intra-stage progress sink. `Tick` is the multi-producer half (any
/// worker thread, lock-free); `Poll` is the single-consumer half and must
/// only be called from the thread driving the loop — it is where
/// aggregated ticks become user-visible progress events.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  virtual void Tick(size_t units) = 0;
  virtual void Poll() = 0;
};

/// Everything a stage driver needs from its caller. Default-constructed:
/// sequential, no cancellation, no deadline, no progress.
struct ExecContext {
  /// Null means inline (sequential) execution.
  Executor* executor = nullptr;
  /// Caps the worker tasks a single ParallelFor submits (0 = the
  /// executor's concurrency). Lets a shared pool serve callers with
  /// different configured `num_threads` without dedicated pools.
  size_t max_workers = 0;
  /// Cooperative cancellation flag, polled at block/shard boundaries.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional deadline, also polled at block/shard boundaries.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  /// Optional intra-stage progress sink (see ProgressSink).
  ProgressSink* progress = nullptr;

  /// Worker parallelism this context may use (>= 1).
  size_t parallelism() const {
    size_t p = executor != nullptr ? executor->concurrency() : 1;
    if (max_workers != 0 && max_workers < p) p = max_workers;
    return p > 0 ? p : 1;
  }

  bool cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }
  bool deadline_expired() const {
    return has_deadline && std::chrono::steady_clock::now() >= deadline;
  }
  /// True when the driver should stop at the next block/shard boundary
  /// (cancellation requested or deadline passed).
  bool Stopped() const { return cancelled() || deadline_expired(); }

  /// The terminal Status for a stop observed at a boundary: kCancelled
  /// for an explicit cancel (which wins even when the deadline has also
  /// passed — the user asked first), kDeadlineExceeded otherwise. Every
  /// driver that reports its own stop derives the Status here, so
  /// deadline-only stops are never misattributed as cancellations.
  Status StopStatus(const std::string& what) const {
    if (cancelled()) return Status::Cancelled(what + " cancelled");
    return Status::DeadlineExceeded(what + " aborted: deadline expired");
  }

  void Tick(size_t units) const {
    if (progress != nullptr) progress->Tick(units);
  }
  void Poll() const {
    if (progress != nullptr) progress->Poll();
  }
};

/// Runs `fn(i)` for i in [0, n) and waits for completion. Worker tasks
/// come from `ctx.executor` (capped by `ctx.max_workers`), indices are
/// handed out dynamically for load balance, and the calling thread always
/// participates — see the deadlock note at the top of this header. The
/// caller's thread additionally `Poll()`s the context's progress sink
/// between its own indices and while waiting on in-flight workers, so
/// intra-stage progress reaches the user mid-loop without the workers
/// ever touching the callback. `fn` must be safe to call concurrently;
/// exceptions stop the loop early and the first one is rethrown on the
/// caller. With a null/inline executor (or n == 1) the loop runs inline
/// in index order with zero overhead.
void ParallelFor(size_t n, const ExecContext& ctx, const std::function<void(size_t)>& fn);

/// ParallelFor with a bare executor and no cancellation/progress.
void ParallelFor(size_t n, Executor* executor, const std::function<void(size_t)>& fn);

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_EXECUTOR_H_
