// RetryPolicy: capped exponential backoff with deterministic, seeded
// jitter — the client half of the server's backpressure contract. A
// Submit rejected with kUnavailable (queue full; the message carries the
// live queue depth) is worth retrying after a delay; kResourceExhausted
// (a bad_alloc surfaced as a Status) may clear once concurrent sessions
// finish. Everything else — kInvalid, kInternal, kCancelled — will fail
// the same way again and is not retryable.
//
// Jitter is deterministic on purpose: the backoff sequence is a pure
// function of (policy, seed), so a retried run is exactly reproducible —
// the same property every other stochastic component of this library
// (error injection, Gibbs, partition seeding) already has via Rng.

#ifndef MLNCLEAN_COMMON_RETRY_H_
#define MLNCLEAN_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>

#include "common/random.h"
#include "common/status.h"

namespace mlnclean {

/// Backoff configuration of one retry loop.
struct RetryPolicy {
  /// Total attempts, the first one included (1 = no retry).
  size_t max_attempts = 5;
  /// Delay before the first retry.
  std::chrono::milliseconds initial_backoff{10};
  /// Cap applied to the exponential growth (before jitter).
  std::chrono::milliseconds max_backoff{2000};
  /// Per-retry growth factor of the capped base delay.
  double multiplier = 2.0;
  /// Jitter fraction j: each delay is scaled by a uniform draw from
  /// [1 - j, 1 + j). 0 disables jitter.
  double jitter = 0.2;
  /// Seeds the jitter stream; same (policy, seed) -> same delays.
  uint64_t seed = 0;

  Status Validate() const;

  /// True for the Status codes a retry can help with: kUnavailable and
  /// kResourceExhausted.
  static bool IsRetryable(const Status& status);
};

/// The delay sequence of one retry loop. Deterministic: two schedules
/// built from equal policies produce identical delays.
class RetrySchedule {
 public:
  explicit RetrySchedule(const RetryPolicy& policy);

  /// Delay to wait before the next retry; advances the exponential base
  /// and the jitter stream.
  std::chrono::milliseconds NextDelay();

  /// Delays handed out so far.
  size_t retries() const { return retries_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  size_t retries_ = 0;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_RETRY_H_
