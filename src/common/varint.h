// Group-varint (streamvbyte-style) codec for uint32_t sequences.
//
// Values are encoded four at a time: one control byte holds four 2-bit
// length codes (encoded length minus one, 1..4 bytes per value), followed
// by the values' little-endian payload bytes. The control stream and data
// stream are interleaved per group, so the codec is a single forward pass
// in both directions. A zigzag+delta variant turns sorted or
// slowly-varying sequences (dictionary-coded ValueId columns, snapshot
// γ-id arrays) into streams of mostly 1-byte deltas.
//
// Decoding is strict: every entry point takes the available byte count and
// refuses to read past it, returning false instead of over-reading, so
// corrupted or truncated input can never crash the decoder. On x86-64 a
// SSSE3 shuffle-table fast path is selected at runtime (per-process CPUID
// check); scalar code is always compiled and is the only path elsewhere.
// Both paths produce identical bytes in and out.

#ifndef MLNCLEAN_COMMON_VARINT_H_
#define MLNCLEAN_COMMON_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mlnclean {

/// Upper bound on the encoded size of `n` values: one control byte plus up
/// to 16 data bytes per group of four.
inline size_t GroupVarintMaxSize(size_t n) {
  const size_t groups = (n + 3) / 4;
  return groups + n * 4;
}

/// Encodes `n` raw values into `out`, which must hold at least
/// GroupVarintMaxSize(n) bytes. Returns the number of bytes written.
size_t GroupVarintEncode(const uint32_t* values, size_t n, uint8_t* out);

/// Decodes exactly `n` values from `in` (holding `in_size` readable bytes)
/// into `out`. Returns false if the stream is truncated; on success
/// `*consumed` (if non-null) receives the number of input bytes read.
bool GroupVarintDecode(const uint8_t* in, size_t in_size, size_t n,
                       uint32_t* out, size_t* consumed = nullptr);

/// Delta+zigzag variants: value i is encoded as
/// zigzag(values[i] - values[i-1]) with values[-1] = 0, all arithmetic
/// mod 2^32. Ideal for sorted id arrays; never worse than ~5 bytes per
/// value on adversarial input.
size_t GroupVarintEncodeDelta(const uint32_t* values, size_t n, uint8_t* out);
bool GroupVarintDecodeDelta(const uint8_t* in, size_t in_size, size_t n,
                            uint32_t* out, size_t* consumed = nullptr);

/// Convenience wrappers appending to / reading from byte vectors.
void GroupVarintEncodeDelta(const std::vector<uint32_t>& values,
                            std::vector<uint8_t>* out);

/// True when the runtime-dispatched SSSE3 decode path is active (x86-64
/// with SSSE3 support); exposed so tests can report which path they pinned.
bool GroupVarintUsesSimd();

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_VARINT_H_
