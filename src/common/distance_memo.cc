#include "common/distance_memo.h"

#include <algorithm>

namespace mlnclean {

double PairDistanceMemo::Distance(ValueId a, ValueId b, std::string_view va,
                                  std::string_view vb, const DistanceFn& dist) {
  if (a == b) {
    ++hits_;
    return 0.0;
  }
  if (slots_.empty()) slots_.resize(256);
  if ((num_pairs_ + 1) * 2 > slots_.size()) Grow();
  const uint64_t key = (static_cast<uint64_t>(std::min(a, b)) << 32) |
                       static_cast<uint64_t>(std::max(a, b));
  const size_t mask = slots_.size() - 1;
  // Multiplicative mixing spreads the packed ids across the table.
  size_t i = (key * uint64_t{0x9e3779b97f4a7c15}) >> 32 & mask;
  while (true) {
    Slot& slot = slots_[i];
    if (slot.key == key) {
      ++hits_;
      return slot.distance;
    }
    if (slot.key == kEmptyKey) {
      ++misses_;
      const double d = dist(va, vb);
      slot.key = key;
      slot.distance = d;
      ++num_pairs_;
      return d;
    }
    i = (i + 1) & mask;
  }
}

void PairDistanceMemo::Grow() {
  std::vector<Slot> grown(slots_.size() * 2);
  const size_t mask = grown.size() - 1;
  for (const Slot& slot : slots_) {
    if (slot.key == kEmptyKey) continue;
    size_t i = (slot.key * uint64_t{0x9e3779b97f4a7c15}) >> 32 & mask;
    while (grown[i].key != kEmptyKey) i = (i + 1) & mask;
    grown[i] = slot;
  }
  slots_ = std::move(grown);
}

}  // namespace mlnclean
