// DistanceCache: value interning plus pairwise distance memoization for
// one block's stage-I scans. AGP compares every abnormal γ* against every
// normal γ* and RSC runs an O(m²) loop inside every group; both keep
// hitting the same pairs of attribute values (cities, states, measure
// names repeat across γs), so each distinct unordered value pair pays for
// the distance kernel at most once per block.
//
// Both the value interner and the pair memo are flat open-addressing
// tables: a lookup is a hash plus a short linear probe, an insert never
// allocates a node, and in steady state (tables at size) the cache does no
// heap allocation at all — a plain std::unordered_map memo was measurably
// slower than just re-running the optimized kernels.
//
// Not thread-safe: the parallel stages create one cache per block task.

#ifndef MLNCLEAN_COMMON_DISTANCE_CACHE_H_
#define MLNCLEAN_COMMON_DISTANCE_CACHE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/distance.h"

namespace mlnclean {

/// Interned handle of a distinct value string inside one cache.
using ValueId = uint32_t;

/// Memoizes a symmetric string distance over an interned value universe.
class DistanceCache {
 public:
  /// `dist` must outlive the cache (the stage runners own it).
  /// `direct_length_sum`: pairs whose combined value length is at most
  /// this run the kernel directly instead of going through the memo — for
  /// edit distances a tiny DP is cheaper than a probe + insert, while
  /// cosine pays profile construction at any length (pass 0 to always
  /// memoize). DirectLengthSumFor picks the measured default per metric.
  explicit DistanceCache(const DistanceFn& dist,
                         size_t direct_length_sum = kDefaultDirectLengthSum);

  /// The measured break-even bypass threshold for a metric.
  static size_t DirectLengthSumFor(DistanceMetric metric) {
    return metric == DistanceMetric::kCosine ? 0 : kDefaultDirectLengthSum;
  }

  DistanceCache(const DistanceCache&) = delete;
  DistanceCache& operator=(const DistanceCache&) = delete;

  /// Returns the stable id of `value`, interning it on first sight.
  ValueId Intern(std::string_view value);

  /// Memoized distance between two interned values; d(x, x) == 0 without
  /// consulting the kernel.
  double Distance(ValueId a, ValueId b);

  /// Convenience: intern-then-distance for raw strings.
  double Distance(std::string_view a, std::string_view b) {
    return Distance(Intern(a), Intern(b));
  }

  size_t num_values() const { return values_.size(); }
  size_t num_cached_pairs() const { return num_pairs_; }
  /// Distance() calls answered without the kernel (memo hits plus the
  /// id-equality fast path); exposed for tests and benchmarks.
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  // Value interner: id slots store (hash, id + 1); 0 marks an empty slot.
  struct IdSlot {
    uint32_t hash = 0;
    uint32_t id_plus_one = 0;
  };
  // Pair memo: key packs the two ids as min << 32 | max. min < max always
  // (equal ids short-circuit), so ~0 can never be a real key.
  struct PairSlot {
    uint64_t key = kEmptyKey;
    double distance = 0.0;
  };
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};

 public:
  static constexpr size_t kDefaultDirectLengthSum = 16;

 private:

  void GrowIdTable();
  void GrowPairTable();

  const DistanceFn* dist_;
  size_t direct_length_sum_;
  std::vector<std::string> values_;   // id -> value
  std::vector<uint32_t> hashes_;      // id -> full value hash (for rehash)
  std::vector<IdSlot> id_slots_;      // power-of-two open addressing
  std::vector<PairSlot> pair_slots_;  // power-of-two open addressing
  size_t num_pairs_ = 0;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_DISTANCE_CACHE_H_
