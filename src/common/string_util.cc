#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace mlnclean {

namespace {
bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string_view TrimView(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(Trim(s.substr(start)));
      break;
    }
    out.push_back(Trim(s.substr(start, pos - start)));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string JoinKey(const std::vector<std::string>& parts) {
  size_t total = parts.size();
  for (const auto& p : parts) total += p.size();
  std::string out;
  out.reserve(total);
  for (const auto& p : parts) {
    out += p;
    out += '\x1f';
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace mlnclean
