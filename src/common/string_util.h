// Small string helpers shared across the library.

#ifndef MLNCLEAN_COMMON_STRING_UTIL_H_
#define MLNCLEAN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mlnclean {

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// Splits on `sep`, trimming each field. Empty input yields {""}.
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Hash key for a value vector: every element followed by the ASCII unit
/// separator '\x1f' (unambiguous because values never contain it). The
/// output is reserved up front. Used for the MLN index's string-facing
/// group keys (built once per group) and cross-shard weight merging; the
/// per-tuple hot paths key on dictionary ids instead.
std::string JoinKey(const std::vector<std::string>& parts);

/// ASCII lower-casing (data values in this library are ASCII).
std::string ToLower(std::string_view s);

/// True when `s` begins with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_STRING_UTIL_H_
