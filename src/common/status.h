// Status: error propagation without exceptions, in the style used by
// Apache Arrow / RocksDB. Every fallible public API in this library
// returns a Status (or a Result<T>, see result.h).

#ifndef MLNCLEAN_COMMON_STATUS_H_
#define MLNCLEAN_COMMON_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace mlnclean {

/// Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalid = 1,        // invalid argument or malformed input
  kNotFound = 2,       // referenced entity does not exist
  kAlreadyExists = 3,  // entity clashes with an existing one
  kIOError = 4,        // filesystem / parsing failure
  kNotImplemented = 5, // requested behaviour is out of scope
  kInternal = 6,       // invariant breached inside the library
  kCancelled = 7,      // run aborted by a cooperative CancelToken
  kUnavailable = 8,    // resource saturated; retry later (server backpressure)
  kDeadlineExceeded = 9,  // run aborted because its deadline passed
  kResourceExhausted = 10,  // allocation or quota failure (std::bad_alloc)
  kCorruption = 11,    // stored bytes torn/bit-rotted (checksum mismatch)
};

/// Returns a short human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: either OK or a code plus message.
///
/// Statuses are cheap to move and to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  /// Returns an OK status.
  static Status OK() { return Status(); }

  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalid, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }

  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }

  /// Message attached at construction; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalid() const { return code() == StatusCode::kInvalid; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Shared so that copying a failed Status stays cheap; never mutated.
  std::shared_ptr<const State> state_;
};

/// Maps the in-flight exception to a Status — the panic-free boundary
/// helper. Call only from inside a catch block: std::bad_alloc becomes
/// kResourceExhausted (the allocator said no; retrying a smaller batch
/// may succeed), everything else kInternal carrying `context` and, for
/// std::exception, its what(). Never throws.
Status StatusFromCurrentException(const std::string& context);

}  // namespace mlnclean

/// Propagates a non-OK Status to the caller.
#define MLN_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::mlnclean::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

#define MLN_CONCAT_IMPL(x, y) x##y
#define MLN_CONCAT(x, y) MLN_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// otherwise returns its Status to the caller.
#define MLN_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  auto MLN_CONCAT(_res_, __LINE__) = (rexpr);                       \
  if (!MLN_CONCAT(_res_, __LINE__).ok())                            \
    return MLN_CONCAT(_res_, __LINE__).status();                    \
  lhs = std::move(MLN_CONCAT(_res_, __LINE__)).ValueUnsafe()

#endif  // MLNCLEAN_COMMON_STATUS_H_
