// Fixed-size thread pool. Stands in for the Spark worker set of the
// paper's distributed deployment (Section 6): each "worker" executes
// cleaning jobs for the data parts assigned to it.

#ifndef MLNCLEAN_COMMON_THREAD_POOL_H_
#define MLNCLEAN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mlnclean {

/// A minimal fixed-size worker pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`; the future resolves when it has run.
  std::future<void> Submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has completed.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;        // signals workers: work available / stop
  std::condition_variable idle_cv_;   // signals WaitIdle: pool drained
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs `fn(i)` for i in [0, n) across `num_threads` workers and waits.
/// Workers come from a long-lived shared pool (one per distinct thread
/// count), so calling this in a loop does not re-spawn threads; indices
/// are handed out dynamically for load balance. `fn` must be safe to call
/// concurrently. num_threads == 1 runs inline with zero overhead.
void ParallelFor(size_t n, size_t num_threads, const std::function<void(size_t)>& fn);

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_THREAD_POOL_H_
