// Fixed-size thread pool. Stands in for the Spark worker set of the
// paper's distributed deployment (Section 6): each "worker" executes
// cleaning jobs for the data parts assigned to it. Parallel loops do not
// use this class directly any more — they go through the Executor
// abstraction (common/executor.h), whose PoolExecutor wraps one of these.

#ifndef MLNCLEAN_COMMON_THREAD_POOL_H_
#define MLNCLEAN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mlnclean {

/// A minimal fixed-size worker pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`; the future resolves when it has run.
  std::future<void> Submit(std::function<void()> fn);

  /// Fire-and-forget Submit: no future, no packaged_task allocation. An
  /// exception escaping `fn` terminates the process (like an unhandled
  /// exception on any thread), so callers wrap fallible work themselves.
  void Post(std::function<void()> fn);

  /// Blocks until every task submitted so far has completed.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;        // signals workers: work available / stop
  std::condition_variable idle_cv_;   // signals WaitIdle: pool drained
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_THREAD_POOL_H_
