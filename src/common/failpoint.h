// Failpoints: named fault-injection sites wired through the serving
// layers (RocksDB-sync-point style). A site is one macro invocation:
//
//   MLN_FAILPOINT("server/worker-loop");
//
// In a normal build the macro compiles to `((void)0)` — the name
// expression is never even evaluated, so hot paths (ParallelFor block
// claims, executor task dispatch) pay exactly nothing. A fault build
// (`cmake -DMLNCLEAN_FAILPOINTS=ON`, which defines MLNCLEAN_FAILPOINTS)
// turns every site into a registry lookup that can *fire* according to a
// per-site trigger policy armed by the test harness:
//
//   ConfigureFailpoint("engine/stage-agp", FailpointSpec::Once());
//   ... Submit(batch) ...        // the AGP stage throws InjectedFault
//   ResetFailpoints();
//
// Firing throws — either InjectedFault (a std::runtime_error carrying the
// site name) or std::bad_alloc, chosen by the spec — because the point of
// the subsystem is to prove the exception *hardening*: every catch
// boundary (session stage loop, server worker loop, snapshot save path)
// must convert the throw into a Status and leave its layer consistent.
// The fault-sweep test (tests/cleaning/fault_injection_test.cc) fires
// every catalogued site one at a time against a live CleanServer and
// asserts no crash, a non-OK ticket, consistent Stats(), and a healthy
// next Submit.
//
// Site naming convention: `layer/where`, lowercase, '-' inside a word
// group ("engine/stage-agp", "snapshot/before-rename"). Every site must
// be listed in the catalog (failpoint.cc); ConfigureFailpoint rejects
// unknown names so a typo in a test arms nothing silently. The catalog —
// with each site's domain and when it fires — is documented in
// docs/robustness.md.

#ifndef MLNCLEAN_COMMON_FAILPOINT_H_
#define MLNCLEAN_COMMON_FAILPOINT_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/status.h"

namespace mlnclean {

/// What a fired failpoint throws by default. Derives from
/// std::runtime_error so generic exception hardening (catch
/// std::exception) handles it without knowing about fault injection.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& site)
      : std::runtime_error("injected fault at failpoint '" + site + "'"),
        site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Trigger policy of one armed site.
struct FailpointSpec {
  enum class Mode {
    kOff,          // never fires (the disarmed state)
    kOnce,         // fires on the first evaluation after arming, then disarms
    kEveryN,       // fires on every n-th evaluation (n, 2n, ...)
    kProbability,  // fires with probability p per evaluation (seeded RNG)
  };
  enum class Action {
    kThrowFault,     // throw InjectedFault(site)
    kThrowBadAlloc,  // throw std::bad_alloc (exercises kResourceExhausted)
  };

  Mode mode = Mode::kOff;
  Action action = Action::kThrowFault;
  uint64_t every_n = 1;      // kEveryN period
  double probability = 0.0;  // kProbability chance per hit
  uint64_t seed = 0;         // seeds the site's RNG (kProbability)

  static FailpointSpec Once(Action action = Action::kThrowFault) {
    FailpointSpec spec;
    spec.mode = Mode::kOnce;
    spec.action = action;
    return spec;
  }
  static FailpointSpec EveryN(uint64_t n, Action action = Action::kThrowFault) {
    FailpointSpec spec;
    spec.mode = Mode::kEveryN;
    spec.every_n = n;
    spec.action = action;
    return spec;
  }
  static FailpointSpec Probability(double p, uint64_t seed,
                                   Action action = Action::kThrowFault) {
    FailpointSpec spec;
    spec.mode = Mode::kProbability;
    spec.probability = p;
    spec.seed = seed;
    spec.action = action;
    return spec;
  }
};

/// Where a site sits, so test harnesses can sweep the right subset: kServe
/// sites fire while a server session executes a submitted batch, kSubmit
/// on the submitting caller's thread inside CleanServer::Submit, and the
/// snapshot domains inside SaveToFile / Load respectively.
enum class FailpointDomain {
  kServe,
  kSubmit,
  kSnapshotWrite,
  kSnapshotRead,
};

/// One catalogued site.
struct FailpointInfo {
  const char* name;
  FailpointDomain domain;
};

/// True when the library was built with -DMLNCLEAN_FAILPOINTS=ON. All the
/// functions below exist in every build so tests always link; in a normal
/// build ConfigureFailpoint returns kNotImplemented and the counters stay
/// zero (no site ever evaluates).
bool FailpointsCompiledIn();

/// Every site in the library, with its domain. Available in all builds
/// (it is a static catalog, not a runtime registry).
const std::vector<FailpointInfo>& FailpointCatalog();

/// Arms `name` with `spec` (kNotFound for names outside the catalog,
/// kNotImplemented in a normal build). Arming replaces any previous spec
/// and resets the site's hit/fire counters.
Status ConfigureFailpoint(const std::string& name, const FailpointSpec& spec);

/// Disarms every site and zeroes all counters.
void ResetFailpoints();

/// Evaluations of `name` so far (0 for unknown names or normal builds).
/// Counts every pass through the site, fired or not — the sweep uses it
/// to assert a site was actually reached by the scenario under test.
uint64_t FailpointHits(const std::string& name);

/// Times `name` actually fired (threw) so far.
uint64_t FailpointFires(const std::string& name);

namespace failpoint_internal {
/// The site hook behind MLN_FAILPOINT. May throw per the armed spec.
void Evaluate(const std::string& name);
}  // namespace failpoint_internal

}  // namespace mlnclean

#ifdef MLNCLEAN_FAILPOINTS
#define MLN_FAILPOINT(name) ::mlnclean::failpoint_internal::Evaluate(name)
#else
/// Compiled out: the argument expression is not evaluated.
#define MLN_FAILPOINT(name) ((void)0)
#endif

#endif  // MLNCLEAN_COMMON_FAILPOINT_H_
