#include "common/distance_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace mlnclean {

namespace {

constexpr size_t kInitialIdSlots = 64;     // power of two
constexpr size_t kInitialPairSlots = 256;  // power of two

uint32_t HashValue(std::string_view value) {
  return static_cast<uint32_t>(std::hash<std::string_view>{}(value));
}

}  // namespace

DistanceCache::DistanceCache(const DistanceFn& dist, size_t direct_length_sum)
    : dist_(&dist),
      direct_length_sum_(direct_length_sum),
      id_slots_(kInitialIdSlots),
      pair_slots_(kInitialPairSlots) {}

ValueId DistanceCache::Intern(std::string_view value) {
  // Keep load factor below 1/2 so probes stay short.
  if ((values_.size() + 1) * 2 > id_slots_.size()) GrowIdTable();
  const uint32_t hash = HashValue(value);
  const size_t mask = id_slots_.size() - 1;
  size_t i = hash & mask;
  while (true) {
    IdSlot& slot = id_slots_[i];
    if (slot.id_plus_one == 0) {
      const ValueId id = static_cast<ValueId>(values_.size());
      values_.emplace_back(value);
      hashes_.push_back(hash);
      slot.hash = hash;
      slot.id_plus_one = id + 1;
      return id;
    }
    if (slot.hash == hash && values_[slot.id_plus_one - 1] == value) {
      return slot.id_plus_one - 1;
    }
    i = (i + 1) & mask;
  }
}

double DistanceCache::Distance(ValueId a, ValueId b) {
  if (a == b) {
    ++hits_;
    return 0.0;
  }
  // Cost-based bypass: for a pair of short values the optimized kernels
  // (affix trimming, tiny DP) are about as cheap as a table probe, so
  // memoizing them only adds insert traffic. Long pairs are the ones worth
  // remembering.
  if (values_[a].size() + values_[b].size() <= direct_length_sum_) {
    ++misses_;
    return (*dist_)(values_[a], values_[b]);
  }
  if ((num_pairs_ + 1) * 2 > pair_slots_.size()) GrowPairTable();
  const uint64_t key = (static_cast<uint64_t>(std::min(a, b)) << 32) |
                       static_cast<uint64_t>(std::max(a, b));
  const size_t mask = pair_slots_.size() - 1;
  // Multiplicative mixing spreads the packed ids across the table.
  size_t i = (key * uint64_t{0x9e3779b97f4a7c15}) >> 32 & mask;
  while (true) {
    PairSlot& slot = pair_slots_[i];
    if (slot.key == key) {
      ++hits_;
      return slot.distance;
    }
    if (slot.key == kEmptyKey) {
      ++misses_;
      const double d = (*dist_)(values_[a], values_[b]);
      slot.key = key;
      slot.distance = d;
      ++num_pairs_;
      return d;
    }
    i = (i + 1) & mask;
  }
}

void DistanceCache::GrowIdTable() {
  std::vector<IdSlot> grown(id_slots_.size() * 2);
  const size_t mask = grown.size() - 1;
  for (ValueId id = 0; id < values_.size(); ++id) {
    size_t i = hashes_[id] & mask;
    while (grown[i].id_plus_one != 0) i = (i + 1) & mask;
    grown[i].hash = hashes_[id];
    grown[i].id_plus_one = id + 1;
  }
  id_slots_ = std::move(grown);
}

void DistanceCache::GrowPairTable() {
  std::vector<PairSlot> grown(pair_slots_.size() * 2);
  const size_t mask = grown.size() - 1;
  for (const PairSlot& slot : pair_slots_) {
    if (slot.key == kEmptyKey) continue;
    size_t i = (slot.key * uint64_t{0x9e3779b97f4a7c15}) >> 32 & mask;
    while (grown[i].key != kEmptyKey) i = (i + 1) & mask;
    grown[i] = slot;
  }
  pair_slots_ = std::move(grown);
}

}  // namespace mlnclean
