// Fixed-size latency reservoir for serving observability: O(1) recording
// on the hot path (a ring overwrite, no allocation past construction), a
// cheap Window() copy under the caller's lock, and percentile math pushed
// entirely outside it — which is what keeps CleanServer::Stats() and
// CleanFleet::Stats() lock-cheap regardless of how many tickets were
// served.
//
// The reservoir is deliberately a sliding window, not an all-time
// histogram: once `capacity` samples have been recorded, each new sample
// overwrites the oldest, so percentiles track *recent* behaviour — the
// number an operator watching a saturating fleet actually wants.
//
// Not internally synchronized: Add() and Window() must run under the same
// external lock (the server/fleet state mutex). SummarizeLatencies does
// the sorting and runs lock-free on the snapshotting caller's thread.

#ifndef MLNCLEAN_COMMON_LATENCY_RESERVOIR_H_
#define MLNCLEAN_COMMON_LATENCY_RESERVOIR_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace mlnclean {

/// Percentile snapshot over a reservoir window, in seconds. `samples` is
/// the all-time recorded count (it keeps growing after the window wraps);
/// percentiles are 0 while no sample has been recorded.
struct LatencySnapshot {
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  size_t samples = 0;
};

/// The bounded sample store. External synchronization required (see file
/// comment).
class LatencyReservoir {
 public:
  explicit LatencyReservoir(size_t capacity = 1024)
      : window_(capacity > 0 ? capacity : 1) {}

  /// Records one latency, overwriting the oldest sample once full.
  void Add(double seconds) {
    window_[next_] = seconds;
    next_ = (next_ + 1) % window_.size();
    ++total_;
  }

  /// All-time recorded count.
  size_t samples() const { return total_; }

  /// Copy of the retained window (unsorted, at most `capacity` values).
  std::vector<double> Window() const {
    const size_t held = std::min(total_, window_.size());
    return std::vector<double>(window_.begin(),
                               window_.begin() + static_cast<ptrdiff_t>(held));
  }

 private:
  std::vector<double> window_;
  size_t next_ = 0;
  size_t total_ = 0;
};

/// Nearest-rank percentiles over a window copied out of a reservoir.
/// Sorts `window` in place; call outside any lock.
inline LatencySnapshot SummarizeLatencies(std::vector<double> window,
                                          size_t total_samples) {
  LatencySnapshot snap;
  snap.samples = total_samples;
  if (window.empty()) return snap;
  std::sort(window.begin(), window.end());
  const auto rank = [&](double q) {
    // Nearest-rank: the smallest value with at least q of the mass at or
    // below it. ceil(q * n) is in [1, n] for q in (0, 1].
    size_t r = static_cast<size_t>(std::ceil(q * static_cast<double>(window.size())));
    if (r == 0) r = 1;
    return window[std::min(r, window.size()) - 1];
  };
  snap.p50 = rank(0.50);
  snap.p99 = rank(0.99);
  snap.p999 = rank(0.999);
  return snap;
}

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_LATENCY_RESERVOIR_H_
