#include "common/distance.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/string_util.h"

namespace mlnclean {

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // keep the row for the shorter string
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  std::vector<size_t> row(n + 1);
  std::iota(row.begin(), row.end(), size_t{0});
  for (size_t j = 1; j <= m; ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= n; ++i) {
      size_t cur = row[i];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, prev_diag + cost});
      prev_diag = cur;
    }
  }
  return row[n];
}

size_t DamerauLevenshtein(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  // Three rolling rows: i-2, i-1, i.
  std::vector<size_t> two(m + 1), one(m + 1), cur(m + 1);
  std::iota(one.begin(), one.end(), size_t{0});
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({one[j] + 1, cur[j - 1] + 1, one[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], two[j - 2] + 1);
      }
    }
    std::swap(two, one);
    std::swap(one, cur);
  }
  return one[m];
}

namespace {

// Accumulates character-bigram counts of `s` into a sparse map keyed by the
// 16-bit packed bigram. Unigrams are used for strings of length < 2.
void BigramCounts(std::string_view s, std::vector<std::pair<uint16_t, double>>* out) {
  out->clear();
  auto add = [out](uint16_t key) {
    for (auto& kv : *out) {
      if (kv.first == key) {
        kv.second += 1.0;
        return;
      }
    }
    out->emplace_back(key, 1.0);
  };
  if (s.size() < 2) {
    for (char c : s) add(static_cast<uint16_t>(static_cast<unsigned char>(c)));
    return;
  }
  for (size_t i = 0; i + 1 < s.size(); ++i) {
    uint16_t key = static_cast<uint16_t>((static_cast<unsigned char>(s[i]) << 8) |
                                         static_cast<unsigned char>(s[i + 1]));
    add(key);
  }
}

}  // namespace

double CosineBigramDistance(std::string_view a, std::string_view b) {
  if (a == b) return 0.0;
  if (a.empty() || b.empty()) return 1.0;
  std::vector<std::pair<uint16_t, double>> va, vb;
  BigramCounts(a, &va);
  BigramCounts(b, &vb);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [ka, ca] : va) {
    na += ca * ca;
    for (const auto& [kb, cb] : vb) {
      if (ka == kb) dot += ca * cb;
    }
  }
  for (const auto& [kb, cb] : vb) nb += cb * cb;
  if (na == 0.0 || nb == 0.0) return 1.0;
  double sim = dot / (std::sqrt(na) * std::sqrt(nb));
  return std::clamp(1.0 - sim, 0.0, 1.0);
}

DistanceFn MakeDistanceFn(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kLevenshtein:
      return [](std::string_view a, std::string_view b) {
        return static_cast<double>(Levenshtein(a, b));
      };
    case DistanceMetric::kCosine:
      return [](std::string_view a, std::string_view b) {
        return CosineBigramDistance(a, b);
      };
    case DistanceMetric::kDamerau:
      return [](std::string_view a, std::string_view b) {
        return static_cast<double>(DamerauLevenshtein(a, b));
      };
  }
  return [](std::string_view, std::string_view) { return 0.0; };
}

DistanceFn MakeNormalizedDistanceFn(DistanceMetric metric) {
  if (metric == DistanceMetric::kCosine) return MakeDistanceFn(metric);
  DistanceFn raw = MakeDistanceFn(metric);
  return [raw](std::string_view a, std::string_view b) {
    size_t max_len = std::max(a.size(), b.size());
    if (max_len == 0) return 0.0;
    return raw(a, b) / static_cast<double>(max_len);
  };
}

Result<DistanceMetric> ParseDistanceMetric(std::string_view name) {
  std::string lower = ToLower(name);
  if (lower == "levenshtein") return DistanceMetric::kLevenshtein;
  if (lower == "cosine") return DistanceMetric::kCosine;
  if (lower == "damerau") return DistanceMetric::kDamerau;
  return Status::Invalid("unknown distance metric: " + std::string(name));
}

const char* DistanceMetricName(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kLevenshtein:
      return "levenshtein";
    case DistanceMetric::kCosine:
      return "cosine";
    case DistanceMetric::kDamerau:
      return "damerau";
  }
  return "unknown";
}

}  // namespace mlnclean
