#include "common/distance.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"

namespace mlnclean {

namespace {

EditDistanceScratch& ThreadLocalScratch() {
  thread_local EditDistanceScratch scratch;
  return scratch;
}

// Strips the longest shared prefix and suffix; the edit distance of the
// remainder equals the edit distance of the originals.
void TrimCommonAffixes(std::string_view* a, std::string_view* b) {
  size_t prefix = 0;
  const size_t limit = std::min(a->size(), b->size());
  while (prefix < limit && (*a)[prefix] == (*b)[prefix]) ++prefix;
  a->remove_prefix(prefix);
  b->remove_prefix(prefix);
  size_t suffix = 0;
  const size_t rest = std::min(a->size(), b->size());
  while (suffix < rest && (*a)[a->size() - 1 - suffix] == (*b)[b->size() - 1 - suffix]) {
    ++suffix;
  }
  a->remove_suffix(suffix);
  b->remove_suffix(suffix);
}

// Myers 1999 bit-parallel edit distance, pattern `a` (n <= 64) vs text
// `b`. The pattern's character bitmaps live in scratch->pattern_bits
// (entry c = positions of character c in the pattern); the array is
// all-zero between calls, so only the pattern's own characters are set up
// front and cleared at the end — characters absent from the pattern read
// a correct 0 without a full 256-entry wipe. Each text character then
// advances every DP row at once: Pv/Mv hold the vertical +1/-1 deltas of
// the current column, Xh/Ph/Mh derive the horizontal deltas, and the
// score tracks the bottom row through the high bit.
size_t MyersLevenshtein64(std::string_view a, std::string_view b,
                          EditDistanceScratch* scratch) {
  const size_t n = a.size();
  std::vector<uint64_t>& peq = scratch->pattern_bits;
  if (peq.size() < 256) peq.resize(256, 0);
  for (size_t i = 0; i < n; ++i) {
    peq[static_cast<unsigned char>(a[i])] |= uint64_t{1} << i;
  }
  uint64_t pv = ~uint64_t{0};
  uint64_t mv = 0;
  size_t score = n;
  for (const char c : b) {
    const uint64_t eq = peq[static_cast<unsigned char>(c)];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    score += (ph >> (n - 1)) & 1;
    score -= (mh >> (n - 1)) & 1;
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  for (const char c : a) peq[static_cast<unsigned char>(c)] = 0;
  return score;
}

// Blocked Myers for patterns longer than 64 characters (Hyyrö 2003): the
// pattern is cut into ceil(n/64)-word columns, each text character walks
// the blocks bottom-up carrying the horizontal delta (+1/0/-1) between
// them, and the score is read at the pattern's true last row inside the
// top block (padding bits above it are never consulted). pattern_bits is
// char-major with `words` entries per character, same all-zero-between-
// calls contract as the single-block kernel.
size_t MyersLevenshteinBlocked(std::string_view a, std::string_view b,
                               EditDistanceScratch* scratch) {
  const size_t n = a.size();
  const size_t words = (n + 63) / 64;
  std::vector<uint64_t>& peq = scratch->pattern_bits;
  if (peq.size() < 256 * words) peq.resize(256 * words, 0);
  for (size_t i = 0; i < n; ++i) {
    peq[static_cast<unsigned char>(a[i]) * words + i / 64] |= uint64_t{1}
                                                             << (i % 64);
  }
  // Per-block vertical delta state, Pv in [0, words), Mv in [words, 2*words).
  std::vector<size_t>& state = scratch->rows;
  static_assert(sizeof(size_t) == sizeof(uint64_t),
                "blocked Myers packs uint64_t state into the size_t scratch");
  if (state.size() < 2 * words) state.resize(2 * words);
  uint64_t* pv = reinterpret_cast<uint64_t*>(state.data());
  uint64_t* mv = pv + words;
  for (size_t w = 0; w < words; ++w) {
    pv[w] = ~uint64_t{0};
    mv[w] = 0;
  }
  size_t score = n;
  const size_t last_bit = (n - 1) % 64;
  for (const char c : b) {
    const uint64_t* eq_row = peq.data() + static_cast<unsigned char>(c) * words;
    int carry = 1;  // row 0 of the DP always steps +1 per text character
    for (size_t w = 0; w < words; ++w) {
      uint64_t eq = eq_row[w];
      const uint64_t xv = eq | mv[w];
      if (carry < 0) eq |= 1;
      const uint64_t xh = (((eq & pv[w]) + pv[w]) ^ pv[w]) | eq;
      uint64_t ph = mv[w] | ~(xh | pv[w]);
      uint64_t mh = pv[w] & xh;
      if (w == words - 1) {
        score += (ph >> last_bit) & 1;
        score -= (mh >> last_bit) & 1;
      }
      const int carry_out =
          static_cast<int>((ph >> 63) & 1) - static_cast<int>((mh >> 63) & 1);
      ph <<= 1;
      mh <<= 1;
      if (carry > 0) {
        ph |= 1;
      } else if (carry < 0) {
        mh |= 1;
      }
      pv[w] = mh | ~(xv | ph);
      mv[w] = ph & xv;
      carry = carry_out;
    }
  }
  for (const char c : a) {
    uint64_t* row = peq.data() + static_cast<unsigned char>(c) * words;
    for (size_t w = 0; w < words; ++w) row[w] = 0;
  }
  return score;
}

}  // namespace

size_t Levenshtein(std::string_view a, std::string_view b) {
  return Levenshtein(a, b, &ThreadLocalScratch());
}

size_t Levenshtein(std::string_view a, std::string_view b,
                   EditDistanceScratch* scratch) {
  if (a == b) return 0;
  TrimCommonAffixes(&a, &b);
  if (a.size() > b.size()) std::swap(a, b);  // the shorter string is the pattern
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (n == 1) {
    // One pattern character: distance is m minus one free match, if any.
    return m - (b.find(a[0]) != std::string_view::npos ? 1 : 0);
  }
  if (n <= 64) return MyersLevenshtein64(a, b, scratch);
  return MyersLevenshteinBlocked(a, b, scratch);
}

size_t LevenshteinReferenceDp(std::string_view a, std::string_view b,
                              EditDistanceScratch* scratch) {
  if (a == b) return 0;
  TrimCommonAffixes(&a, &b);
  if (a.size() > b.size()) std::swap(a, b);  // keep the row for the shorter string
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  std::vector<size_t>& row = scratch->rows;
  if (row.size() < n + 1) row.resize(n + 1);
  std::iota(row.begin(), row.begin() + static_cast<ptrdiff_t>(n + 1), size_t{0});
  for (size_t j = 1; j <= m; ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= n; ++i) {
      size_t cur = row[i];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, prev_diag + cost});
      prev_diag = cur;
    }
  }
  return row[n];
}

size_t DamerauLevenshtein(std::string_view a, std::string_view b) {
  return DamerauLevenshtein(a, b, &ThreadLocalScratch());
}

size_t DamerauLevenshtein(std::string_view a, std::string_view b,
                          EditDistanceScratch* scratch) {
  if (a == b) return 0;
  // Affix trimming is safe for the optimal-string-alignment recurrence:
  // transpositions never straddle a position where both strings agree, so
  // the trimmed remainder carries the whole distance (property-tested
  // against the untrimmed full matrix).
  TrimCommonAffixes(&a, &b);
  if (a.size() > b.size()) std::swap(a, b);  // smaller row stride
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  // Three rolling rows (i-2, i-1, i) packed into one scratch buffer.
  const size_t stride = m + 1;
  std::vector<size_t>& buf = scratch->rows;
  if (buf.size() < 3 * stride) buf.resize(3 * stride);
  size_t* two = buf.data();
  size_t* one = buf.data() + stride;
  size_t* cur = buf.data() + 2 * stride;
  std::iota(one, one + stride, size_t{0});
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({one[j] + 1, cur[j - 1] + 1, one[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], two[j - 2] + 1);
      }
    }
    std::swap(two, one);
    std::swap(one, cur);
  }
  return one[m];
}

void BigramProfile::Assign(std::string_view s) {
  counts_.clear();
  norm_ = 0.0;
  if (s.size() < 2) {
    for (char c : s) {
      counts_.emplace_back(static_cast<uint16_t>(static_cast<unsigned char>(c)), 1.0);
    }
  } else {
    for (size_t i = 0; i + 1 < s.size(); ++i) {
      uint16_t key = static_cast<uint16_t>((static_cast<unsigned char>(s[i]) << 8) |
                                           static_cast<unsigned char>(s[i + 1]));
      counts_.emplace_back(key, 1.0);
    }
  }
  std::sort(counts_.begin(), counts_.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  // Coalesce duplicate keys in place.
  size_t w = 0;
  for (size_t r = 0; r < counts_.size(); ++r) {
    if (w > 0 && counts_[w - 1].first == counts_[r].first) {
      counts_[w - 1].second += counts_[r].second;
    } else {
      counts_[w++] = counts_[r];
    }
  }
  counts_.resize(w);
  double sq = 0.0;
  for (const auto& [key, count] : counts_) sq += count * count;
  norm_ = std::sqrt(sq);
}

double CosineProfileDistance(const BigramProfile& a, const BigramProfile& b) {
  if (a.empty() || b.empty()) return 1.0;
  const auto& va = a.counts();
  const auto& vb = b.counts();
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < va.size() && j < vb.size()) {
    if (va[i].first < vb[j].first) {
      ++i;
    } else if (vb[j].first < va[i].first) {
      ++j;
    } else {
      dot += va[i].second * vb[j].second;
      ++i;
      ++j;
    }
  }
  if (dot == 0.0) return 1.0;
  double sim = dot / (a.norm() * b.norm());
  return std::clamp(1.0 - sim, 0.0, 1.0);
}

double CosineBigramDistance(std::string_view a, std::string_view b) {
  if (a == b) return 0.0;
  if (a.empty() || b.empty()) return 1.0;
  thread_local BigramProfile pa, pb;
  pa.Assign(a);
  pb.Assign(b);
  return CosineProfileDistance(pa, pb);
}

DistanceFn MakeDistanceFn(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kLevenshtein:
      return [](std::string_view a, std::string_view b) {
        if (a == b) return 0.0;
        return static_cast<double>(Levenshtein(a, b));
      };
    case DistanceMetric::kCosine:
      return [](std::string_view a, std::string_view b) {
        return CosineBigramDistance(a, b);
      };
    case DistanceMetric::kDamerau:
      return [](std::string_view a, std::string_view b) {
        if (a == b) return 0.0;
        return static_cast<double>(DamerauLevenshtein(a, b));
      };
  }
  return [](std::string_view, std::string_view) { return 0.0; };
}

DistanceFn MakeNormalizedDistanceFn(DistanceMetric metric) {
  if (metric == DistanceMetric::kCosine) return MakeDistanceFn(metric);
  DistanceFn raw = MakeDistanceFn(metric);
  return [raw](std::string_view a, std::string_view b) {
    if (a == b) return 0.0;
    size_t max_len = std::max(a.size(), b.size());
    if (max_len == 0) return 0.0;
    return raw(a, b) / static_cast<double>(max_len);
  };
}

Result<DistanceMetric> ParseDistanceMetric(std::string_view name) {
  std::string lower = ToLower(name);
  if (lower == "levenshtein") return DistanceMetric::kLevenshtein;
  if (lower == "cosine") return DistanceMetric::kCosine;
  if (lower == "damerau") return DistanceMetric::kDamerau;
  return Status::Invalid("unknown distance metric: " + std::string(name));
}

const char* DistanceMetricName(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kLevenshtein:
      return "levenshtein";
    case DistanceMetric::kCosine:
      return "cosine";
    case DistanceMetric::kDamerau:
      return "damerau";
  }
  return "unknown";
}

}  // namespace mlnclean
