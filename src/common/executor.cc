#include "common/executor.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/thread_pool.h"

namespace mlnclean {

PoolExecutor::PoolExecutor(size_t num_threads)
    : pool_(std::make_unique<ThreadPool>(num_threads)) {}

PoolExecutor::~PoolExecutor() = default;

void PoolExecutor::Submit(std::function<void()> fn) {
  pool_->Post(std::move(fn));
}

size_t PoolExecutor::concurrency() const { return pool_->num_threads(); }

Executor* ProcessExecutor() {
  // Leaked on purpose: the workers live for the process, exactly like the
  // old per-thread-count shared pools, but there is only ever this one.
  static PoolExecutor* pool = new PoolExecutor(
      std::max<size_t>(1, std::thread::hardware_concurrency()));
  return pool;
}

Executor* SequentialExecutor() {
  static InlineExecutor inline_executor;
  return &inline_executor;
}

namespace {

// State shared between the ParallelFor caller and its worker tasks. Kept
// alive by shared_ptr because a worker task may be dequeued after the
// caller has already drained the index space and returned — such a task
// observes next >= n and exits without ever dereferencing `fn`, which
// lives on the caller's stack.
struct LoopState {
  explicit LoopState(size_t n_in, const std::function<void(size_t)>* fn_in)
      : n(n_in), fn(fn_in) {}

  const size_t n;
  const std::function<void(size_t)>* const fn;  // valid only while the caller waits
  std::atomic<size_t> next{0};

  std::mutex mu;
  std::condition_variable cv;
  size_t started = 0;   // worker tasks that began their claim loop
  size_t finished = 0;  // worker tasks that completed it
  std::exception_ptr error;

  // Claims and runs indices until the space is exhausted. Returns the
  // first exception thrown by `fn` on this thread, if any.
  std::exception_ptr Drain(const ExecContext* poll_ctx) {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return nullptr;
      try {
        MLN_FAILPOINT("parallel-for/block");
        (*fn)(i);
      } catch (...) {
        next.store(n, std::memory_order_relaxed);  // stop handing out work
        return std::current_exception();
      }
      if (poll_ctx != nullptr) poll_ctx->Poll();
    }
  }

  void RecordError(std::exception_ptr e) {
    if (e == nullptr) return;
    std::lock_guard<std::mutex> lock(mu);
    if (!error) error = std::move(e);
  }
};

}  // namespace

void ParallelFor(size_t n, const ExecContext& ctx,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t parallelism = ctx.parallelism();
  if (parallelism <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      MLN_FAILPOINT("parallel-for/block");
      fn(i);
    }
    return;
  }

  auto state = std::make_shared<LoopState>(n, &fn);
  // The caller is one of the workers, so submit at most parallelism - 1
  // tasks; more tasks than remaining indices would be pure no-ops.
  const size_t tasks = std::min(parallelism - 1, n - 1);
  for (size_t t = 0; t < tasks; ++t) {
    ctx.executor->Submit([state] {
      {
        std::lock_guard<std::mutex> lock(state->mu);
        ++state->started;
      }
      // Nothing may escape this task into the executor's run loop (an
      // uncaught exception on a pool thread is std::terminate): the
      // dispatch failpoint and Drain both resolve to an exception_ptr
      // handed back to the driving thread.
      std::exception_ptr error;
      try {
        MLN_FAILPOINT("executor/worker-task");
        error = state->Drain(nullptr);
      } catch (...) {
        error = std::current_exception();
      }
      state->RecordError(std::move(error));
      {
        std::lock_guard<std::mutex> lock(state->mu);
        ++state->finished;
        if (state->finished == state->started) state->cv.notify_all();
      }
    });
  }

  state->RecordError(state->Drain(&ctx));

  // Wait until no started worker is still inside its claim loop. Tasks
  // that never started cannot touch an index any more (the space is
  // exhausted) and only bump started/finished when the pool eventually
  // runs them — the shared state outlives this frame for exactly that.
  // With a progress sink the wait wakes periodically to keep ticks
  // flowing to the user; without one it blocks outright.
  if (ctx.progress != nullptr) {
    while (true) {
      {
        std::unique_lock<std::mutex> lock(state->mu);
        if (state->cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
              return state->finished == state->started;
            })) {
          break;
        }
      }
      ctx.Poll();
    }
    ctx.Poll();
  } else {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->finished == state->started; });
  }

  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    error = state->error;
  }
  if (error) std::rethrow_exception(error);
}

void ParallelFor(size_t n, Executor* executor,
                 const std::function<void(size_t)>& fn) {
  ExecContext ctx;
  ctx.executor = executor;
  ParallelFor(n, ctx, fn);
}

}  // namespace mlnclean
