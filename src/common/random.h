// Seeded random-number helper. Every stochastic component of the library
// (error injection, data generation, Gibbs sampling, partition seeding)
// takes an explicit Rng so that experiments are reproducible.

#ifndef MLNCLEAN_COMMON_RANDOM_H_
#define MLNCLEAN_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace mlnclean {

/// Deterministic pseudo-random source (mt19937_64 under the hood).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextIndex(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p of true.
  bool NextBool(double p);

  /// Uniformly chosen element of `items`; items must be non-empty.
  template <typename T>
  const T& Choose(const std::vector<T>& items) {
    return items[NextIndex(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      std::swap((*items)[i - 1], (*items)[NextIndex(i)]);
    }
  }

  /// Derives an independent child generator (for per-worker streams).
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_RANDOM_H_
