// Wall-clock stopwatch used by the experiment harnesses.

#ifndef MLNCLEAN_COMMON_TIMER_H_
#define MLNCLEAN_COMMON_TIMER_H_

#include <chrono>

namespace mlnclean {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_TIMER_H_
