// Cooperative cancellation. A CancelToken is a cheap shared handle to one
// atomic flag: hand copies to long-running work (a CleanSession, the
// distributed driver, the HoloClean baseline) and call RequestCancel()
// from any thread; the work polls the flag at its block/shard boundaries
// and aborts with Status::Cancelled.

#ifndef MLNCLEAN_COMMON_CANCELLATION_H_
#define MLNCLEAN_COMMON_CANCELLATION_H_

#include <atomic>
#include <memory>

namespace mlnclean {

/// Copies share one flag, so the token handed to a run can be cancelled
/// from another thread; cancellation is sticky and cannot be reset.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void RequestCancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

  /// The raw flag, for threading into stage drivers that take a plain
  /// `const std::atomic<bool>*` instead of depending on this type.
  const std::atomic<bool>* flag() const { return flag_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_CANCELLATION_H_
