// Failpoint registry (see failpoint.h). The catalog below is the single
// source of truth for site names: every MLN_FAILPOINT invocation in the
// library must use a name listed here, and ConfigureFailpoint rejects
// anything else so a typo in a test arms nothing silently.

#include "common/failpoint.h"

#include <atomic>
#include <map>
#include <mutex>
#include <new>
#include <random>

namespace mlnclean {

namespace {

// Every site in the library. Keep docs/robustness.md's catalog table in
// sync when adding a row.
const std::vector<FailpointInfo>& Catalog() {
  static const std::vector<FailpointInfo>* catalog = new std::vector<FailpointInfo>{
      // Serving path: fire while a session executes (the fault sweep
      // arms each of these and submits one batch against a live server).
      {"executor/worker-task", FailpointDomain::kServe},
      {"parallel-for/block", FailpointDomain::kServe},
      {"engine/stage-index", FailpointDomain::kServe},
      {"engine/stage-agp", FailpointDomain::kServe},
      {"engine/stage-learn", FailpointDomain::kServe},
      {"engine/stage-rsc", FailpointDomain::kServe},
      {"engine/stage-fscr", FailpointDomain::kServe},
      {"engine/stage-dedup", FailpointDomain::kServe},
      {"engine/weight-contribute", FailpointDomain::kServe},
      {"server/worker-loop", FailpointDomain::kServe},
      // Admission path: fires on the submitting caller's thread.
      {"server/admission", FailpointDomain::kSubmit},
      // Snapshot write path (CleanModel::SaveToFile).
      {"snapshot/encode", FailpointDomain::kSnapshotWrite},
      {"snapshot/open-temp", FailpointDomain::kSnapshotWrite},
      {"snapshot/write-temp", FailpointDomain::kSnapshotWrite},
      {"snapshot/fsync-temp", FailpointDomain::kSnapshotWrite},
      {"snapshot/before-rename", FailpointDomain::kSnapshotWrite},
      // Snapshot read path (CleaningEngine::Load / LoadFromFile).
      {"snapshot/decode", FailpointDomain::kSnapshotRead},
  };
  return *catalog;
}

#ifdef MLNCLEAN_FAILPOINTS

// Per-site state. Guarded by g_mu: failpoint evaluation is a fault-build
// diagnostic path, not a production hot path, so one mutex is fine — and
// it keeps kOnce ("exactly one throw even when many workers race through
// the site") trivially correct.
struct Site {
  FailpointSpec spec;
  uint64_t hits = 0;   // evaluations since the last arm/reset
  uint64_t fires = 0;  // throws since the last arm/reset
  std::mt19937_64 rng{0};
};

std::mutex g_mu;
std::map<std::string, Site>* g_sites = nullptr;  // leaked, like the catalog
// Fast bail for the common "nothing armed" state: sites still count hits,
// but only after this flips do evaluations consult specs.
std::atomic<bool> g_any_armed{false};

std::map<std::string, Site>& Sites() {
  if (g_sites == nullptr) {
    g_sites = new std::map<std::string, Site>();
    for (const FailpointInfo& info : Catalog()) (*g_sites)[info.name];
  }
  return *g_sites;
}

#endif  // MLNCLEAN_FAILPOINTS

}  // namespace

bool FailpointsCompiledIn() {
#ifdef MLNCLEAN_FAILPOINTS
  return true;
#else
  return false;
#endif
}

const std::vector<FailpointInfo>& FailpointCatalog() { return Catalog(); }

#ifdef MLNCLEAN_FAILPOINTS

Status ConfigureFailpoint(const std::string& name, const FailpointSpec& spec) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = Sites().find(name);
  if (it == Sites().end()) {
    return Status::NotFound("unknown failpoint '" + name +
                            "' (not in the catalog; see docs/robustness.md)");
  }
  if (spec.mode == FailpointSpec::Mode::kEveryN && spec.every_n == 0) {
    return Status::Invalid("failpoint every_n must be at least 1");
  }
  if (spec.mode == FailpointSpec::Mode::kProbability &&
      !(spec.probability >= 0.0 && spec.probability <= 1.0)) {
    return Status::Invalid("failpoint probability must be in [0, 1]");
  }
  it->second.spec = spec;
  it->second.hits = 0;
  it->second.fires = 0;
  it->second.rng.seed(spec.seed);
  bool any = false;
  for (const auto& entry : Sites()) {
    if (entry.second.spec.mode != FailpointSpec::Mode::kOff) any = true;
  }
  g_any_armed.store(any, std::memory_order_release);
  return Status::OK();
}

void ResetFailpoints() {
  std::lock_guard<std::mutex> lock(g_mu);
  for (auto& entry : Sites()) {
    entry.second.spec = FailpointSpec{};
    entry.second.hits = 0;
    entry.second.fires = 0;
  }
  g_any_armed.store(false, std::memory_order_release);
}

uint64_t FailpointHits(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = Sites().find(name);
  return it != Sites().end() ? it->second.hits : 0;
}

uint64_t FailpointFires(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = Sites().find(name);
  return it != Sites().end() ? it->second.fires : 0;
}

namespace failpoint_internal {

void Evaluate(const std::string& name) {
  FailpointSpec::Action action;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    auto it = Sites().find(name);
    if (it == Sites().end()) return;  // site not catalogued: never fires
    Site& site = it->second;
    ++site.hits;
    if (!g_any_armed.load(std::memory_order_acquire)) return;
    bool fire = false;
    switch (site.spec.mode) {
      case FailpointSpec::Mode::kOff:
        break;
      case FailpointSpec::Mode::kOnce:
        fire = site.fires == 0;
        break;
      case FailpointSpec::Mode::kEveryN:
        fire = site.hits % site.spec.every_n == 0;
        break;
      case FailpointSpec::Mode::kProbability: {
        std::uniform_real_distribution<double> uniform(0.0, 1.0);
        fire = uniform(site.rng) < site.spec.probability;
        break;
      }
    }
    if (!fire) return;
    ++site.fires;
    action = site.spec.action;
  }
  // Throw outside the lock: the catch boundary under test may itself call
  // back into the registry (hit counters, reconfiguration).
  switch (action) {
    case FailpointSpec::Action::kThrowFault:
      throw InjectedFault(name);
    case FailpointSpec::Action::kThrowBadAlloc:
      throw std::bad_alloc();
  }
}

}  // namespace failpoint_internal

#else  // !MLNCLEAN_FAILPOINTS

Status ConfigureFailpoint(const std::string& name, const FailpointSpec&) {
  return Status::NotImplemented(
      "failpoint '" + name +
      "' cannot be armed: build with -DMLNCLEAN_FAILPOINTS=ON");
}

void ResetFailpoints() {}

uint64_t FailpointHits(const std::string&) { return 0; }
uint64_t FailpointFires(const std::string&) { return 0; }

namespace failpoint_internal {
void Evaluate(const std::string&) {}
}  // namespace failpoint_internal

#endif  // MLNCLEAN_FAILPOINTS

}  // namespace mlnclean
