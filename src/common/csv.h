// Minimal RFC-4180-ish CSV reader/writer used to load and persist
// datasets. Supports quoted fields containing commas, quotes and newlines.

#ifndef MLNCLEAN_COMMON_CSV_H_
#define MLNCLEAN_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mlnclean {

/// Parsed CSV content: a header row plus data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text. Every row must have the same arity as the header.
Result<CsvTable> ParseCsv(std::string_view text);

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// Serializes a table to CSV text, quoting only where necessary.
std::string WriteCsv(const CsvTable& table);

/// Writes a table to a file.
Status WriteCsvFile(const CsvTable& table, const std::string& path);

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_CSV_H_
