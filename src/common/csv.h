// Minimal RFC-4180-ish CSV reader/writer used to load and persist
// datasets. Supports quoted fields containing commas, quotes and newlines.

#ifndef MLNCLEAN_COMMON_CSV_H_
#define MLNCLEAN_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mlnclean {

/// Parsed CSV content: a header row plus data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// One malformed row set aside during a quarantining parse.
struct QuarantinedRow {
  /// 1-based data row number (the header is row 0), counted over the
  /// input — quarantined rows keep their numbers, so the caller can point
  /// a user at the exact line of the source file.
  size_t row_number = 0;
  /// Why the row was set aside ("7 fields, expected 9", "stray quote
  /// inside unquoted CSV field", ...).
  std::string reason;
};

/// Outcome of a quarantining parse: which rows were set aside and why.
/// One bad row degrades a batch instead of failing it — the contract
/// Dataset::FromCsv and CleanServer::SubmitCsv expose.
struct QuarantineReport {
  std::vector<QuarantinedRow> rows;
  /// Well-formed data rows that made it into the table.
  size_t rows_kept = 0;

  bool empty() const { return rows.empty(); }
  /// "quarantined 2 of 42 rows (first: row 7: ...)" — for logs/CLIs.
  std::string Summary() const;
};

/// Parses CSV text. Every row must have the same arity as the header.
Result<CsvTable> ParseCsv(std::string_view text);

/// Quarantining parse: malformed data rows (wrong arity, stray quote,
/// unterminated quote) are recorded in `quarantine` with their row number
/// and skipped instead of failing the parse. Only a malformed *header*
/// (or empty input) still fails — without a header there is no schema to
/// keep anything under. With `quarantine == nullptr` this is exactly the
/// strict overload.
Result<CsvTable> ParseCsv(std::string_view text, QuarantineReport* quarantine);

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path);
Result<CsvTable> ReadCsvFile(const std::string& path, QuarantineReport* quarantine);

/// Serializes a table to CSV text, quoting only where necessary.
std::string WriteCsv(const CsvTable& table);

/// Writes a table to a file.
Status WriteCsvFile(const CsvTable& table, const std::string& path);

}  // namespace mlnclean

#endif  // MLNCLEAN_COMMON_CSV_H_
