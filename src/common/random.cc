#include "common/random.h"

#include <cassert>

namespace mlnclean {

uint64_t Rng::NextIndex(uint64_t n) {
  assert(n > 0);
  std::uniform_int_distribution<uint64_t> dist(0, n - 1);
  return dist(engine_);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(engine_()); }

}  // namespace mlnclean
