// MaxWalkSAT: stochastic local search for the MAP (most probable) world of
// a GroundNetwork — minimizes the total weight of violated clauses.

#ifndef MLNCLEAN_MLN_WALKSAT_H_
#define MLNCLEAN_MLN_WALKSAT_H_

#include <cstdint>
#include <vector>

#include "mln/network.h"

namespace mlnclean {

/// Tuning knobs for MaxWalkSAT.
struct WalkSatOptions {
  int max_flips = 10000;
  int restarts = 3;
  /// Probability of a random walk move instead of a greedy one.
  double p_random = 0.2;
  uint64_t seed = 42;
};

/// Returns the best world found (one bool per atom) and writes its
/// violation cost to `*best_cost` when non-null.
std::vector<bool> MaxWalkSat(const GroundNetwork& network,
                             const WalkSatOptions& options,
                             double* best_cost = nullptr);

}  // namespace mlnclean

#endif  // MLNCLEAN_MLN_WALKSAT_H_
