#include "mln/network.h"

namespace mlnclean {

namespace {
// Penalty charged per violated hard clause; large enough to dominate any
// realistic sum of soft weights.
constexpr double kHardPenalty = 1e9;
}  // namespace

AtomId GroundNetwork::AddAtom(const std::string& name) {
  auto it = atom_ids_.find(name);
  if (it != atom_ids_.end()) return it->second;
  AtomId id = static_cast<AtomId>(atom_names_.size());
  atom_ids_.emplace(name, id);
  atom_names_.push_back(name);
  atom_clauses_.emplace_back();
  return id;
}

Result<AtomId> GroundNetwork::FindAtom(const std::string& name) const {
  auto it = atom_ids_.find(name);
  if (it == atom_ids_.end()) return Status::NotFound("no atom named '" + name + "'");
  return it->second;
}

AtomId GroundNetwork::AddCellAtom(TupleId tid, AttrId attr, ValueId value) {
  const CellKey key{tid, attr, value};
  auto it = cell_atom_ids_.find(key);
  if (it != cell_atom_ids_.end()) return it->second;
  // Printable name built exactly once per distinct cell atom.
  AtomId id = AddAtom("t" + std::to_string(tid) + ":" + std::to_string(attr) + "=" +
                      std::to_string(value));
  cell_atom_ids_.emplace(key, id);
  return id;
}

Result<AtomId> GroundNetwork::FindCellAtom(TupleId tid, AttrId attr,
                                           ValueId value) const {
  auto it = cell_atom_ids_.find(CellKey{tid, attr, value});
  if (it == cell_atom_ids_.end()) {
    return Status::NotFound("no atom for the given (tuple, attr, value id) cell");
  }
  return it->second;
}

Status GroundNetwork::AddClause(MlnClauseG clause) {
  if (clause.literals.empty()) {
    return Status::Invalid("clause must have at least one literal");
  }
  if (!clause.hard && clause.weight < 0.0) {
    return Status::Invalid("soft clause weight must be non-negative");
  }
  for (const auto& lit : clause.literals) {
    if (lit.atom < 0 || static_cast<size_t>(lit.atom) >= atom_names_.size()) {
      return Status::Invalid("clause literal references unknown atom");
    }
  }
  size_t idx = clauses_.size();
  for (const auto& lit : clause.literals) {
    atom_clauses_[static_cast<size_t>(lit.atom)].push_back(idx);
  }
  clauses_.push_back(std::move(clause));
  return Status::OK();
}

bool GroundNetwork::ClauseSatisfied(const MlnClauseG& clause,
                                    const std::vector<bool>& world) {
  for (const auto& lit : clause.literals) {
    if (world[static_cast<size_t>(lit.atom)] == lit.positive) return true;
  }
  return false;
}

double GroundNetwork::LogScore(const std::vector<bool>& world) const {
  double score = 0.0;
  for (const auto& clause : clauses_) {
    if (ClauseSatisfied(clause, world)) score += clause.weight;
  }
  return score;
}

double GroundNetwork::ViolationCost(const std::vector<bool>& world) const {
  double cost = 0.0;
  for (const auto& clause : clauses_) {
    if (!ClauseSatisfied(clause, world)) {
      cost += clause.hard ? kHardPenalty : clause.weight;
    }
  }
  return cost;
}

}  // namespace mlnclean
