#include "mln/network.h"

#include <algorithm>

namespace mlnclean {

namespace {
// Penalty charged per violated hard clause; large enough to dominate any
// realistic sum of soft weights.
constexpr double kHardPenalty = 1e9;
}  // namespace

AtomId GroundNetwork::AddAtom(const std::string& name) {
  auto it = atom_ids_.find(name);
  if (it != atom_ids_.end()) return it->second;
  AtomId id = static_cast<AtomId>(atom_names_.size());
  atom_ids_.emplace(name, id);
  atom_names_.push_back(name);
  atom_clauses_.emplace_back();
  return id;
}

Result<AtomId> GroundNetwork::FindAtom(const std::string& name) const {
  auto it = atom_ids_.find(name);
  if (it == atom_ids_.end()) return Status::NotFound("no atom named '" + name + "'");
  return it->second;
}

AtomId GroundNetwork::AddCellAtom(TupleId tid, AttrId attr, ValueId value) {
  const CellKey key{tid, attr, value};
  auto it = cell_atom_ids_.find(key);
  if (it != cell_atom_ids_.end()) return it->second;
  // Printable name built exactly once per distinct cell atom.
  AtomId id = AddAtom("t" + std::to_string(tid) + ":" + std::to_string(attr) + "=" +
                      std::to_string(value));
  cell_atom_ids_.emplace(key, id);
  return id;
}

Result<AtomId> GroundNetwork::FindCellAtom(TupleId tid, AttrId attr,
                                           ValueId value) const {
  auto it = cell_atom_ids_.find(CellKey{tid, attr, value});
  if (it == cell_atom_ids_.end()) {
    return Status::NotFound("no atom for the given (tuple, attr, value id) cell");
  }
  return it->second;
}

Status GroundNetwork::AddClause(MlnClauseG clause) {
  if (clause.literals.empty()) {
    return Status::Invalid("clause must have at least one literal");
  }
  if (!clause.hard && clause.weight < 0.0) {
    return Status::Invalid("soft clause weight must be non-negative");
  }
  for (const auto& lit : clause.literals) {
    if (lit.atom < 0 || static_cast<size_t>(lit.atom) >= atom_names_.size()) {
      return Status::Invalid("clause literal references unknown atom");
    }
  }
  size_t idx = clauses_.size();
  for (const auto& lit : clause.literals) {
    atom_clauses_[static_cast<size_t>(lit.atom)].push_back(idx);
  }
  clauses_.push_back(std::move(clause));
  return Status::OK();
}

bool GroundNetwork::ClauseSatisfied(const MlnClauseG& clause,
                                    const std::vector<bool>& world) {
  for (const auto& lit : clause.literals) {
    if (world[static_cast<size_t>(lit.atom)] == lit.positive) return true;
  }
  return false;
}

double GroundNetwork::LogScore(const std::vector<bool>& world) const {
  double score = 0.0;
  for (const auto& clause : clauses_) {
    if (ClauseSatisfied(clause, world)) score += clause.weight;
  }
  return score;
}

double GroundNetwork::ViolationCost(const std::vector<bool>& world) const {
  double cost = 0.0;
  for (const auto& clause : clauses_) {
    if (!ClauseSatisfied(clause, world)) {
      cost += clause.hard ? kHardPenalty : clause.weight;
    }
  }
  return cost;
}

FlatNetwork BuildFlatNetwork(const GroundNetwork& network) {
  FlatNetwork flat;
  const size_t n = network.num_atoms();
  const size_t m = network.num_clauses();

  // Clause-major literal CSR.
  flat.clause_offsets.reserve(m + 1);
  flat.clause_offsets.push_back(0);
  flat.clause_weights.reserve(m);
  flat.clause_hard.reserve(m);
  for (size_t ci = 0; ci < m; ++ci) {
    const MlnClauseG& clause = network.clause(ci);
    for (const MlnLiteral& lit : clause.literals) {
      flat.literal_atoms.push_back(lit.atom);
      flat.literal_positive.push_back(lit.positive ? 1 : 0);
    }
    flat.clause_offsets.push_back(flat.literal_atoms.size());
    flat.clause_weights.push_back(clause.weight);
    flat.clause_hard.push_back(clause.hard ? 1 : 0);
  }

  // Atom-major adjacency. An atom that appears k times in one clause gets
  // a single adjacency entry whose pos/neg counts sum to k; the first
  // occurrence inside the clause owns the entry.
  auto first_occurrence = [&](size_t ci, size_t li) {
    const AtomId atom = flat.literal_atoms[li];
    for (size_t j = flat.clause_offsets[ci]; j < li; ++j) {
      if (flat.literal_atoms[j] == atom) return false;
    }
    return true;
  };
  std::vector<size_t> degree(n, 0);
  for (size_t ci = 0; ci < m; ++ci) {
    for (size_t li = flat.clause_offsets[ci]; li < flat.clause_offsets[ci + 1]; ++li) {
      if (first_occurrence(ci, li)) {
        ++degree[static_cast<size_t>(flat.literal_atoms[li])];
      }
    }
  }
  flat.atom_offsets.assign(n + 1, 0);
  for (size_t a = 0; a < n; ++a) {
    flat.atom_offsets[a + 1] = flat.atom_offsets[a] + degree[a];
  }
  const size_t num_entries = flat.atom_offsets[n];
  flat.adj_clause.resize(num_entries);
  flat.adj_pos.resize(num_entries);
  flat.adj_neg.resize(num_entries);
  std::vector<size_t> cursor(flat.atom_offsets.begin(), flat.atom_offsets.end() - 1);
  for (size_t ci = 0; ci < m; ++ci) {
    for (size_t li = flat.clause_offsets[ci]; li < flat.clause_offsets[ci + 1]; ++li) {
      if (!first_occurrence(ci, li)) continue;
      const size_t atom = static_cast<size_t>(flat.literal_atoms[li]);
      uint32_t pos = 0, neg = 0;
      for (size_t j = li; j < flat.clause_offsets[ci + 1]; ++j) {
        if (static_cast<size_t>(flat.literal_atoms[j]) != atom) continue;
        if (flat.literal_positive[j] != 0) {
          ++pos;
        } else {
          ++neg;
        }
      }
      const size_t slot = cursor[atom]++;
      flat.adj_clause[slot] = static_cast<uint32_t>(ci);
      flat.adj_pos[slot] = pos;
      flat.adj_neg[slot] = neg;
    }
  }

  // Greedy coloring in atom order: each atom takes the smallest color not
  // used by an already-colored clause neighbor. `stamp` makes "color in
  // use" checks O(1) without clearing a set per atom.
  std::vector<uint32_t> color(n, 0);
  std::vector<size_t> stamp;  // stamp[c] == a+1 -> color c used by a neighbor of a
  for (size_t a = 0; a < n; ++a) {
    for (size_t e = flat.atom_offsets[a]; e < flat.atom_offsets[a + 1]; ++e) {
      const size_t ci = flat.adj_clause[e];
      for (size_t j = flat.clause_offsets[ci]; j < flat.clause_offsets[ci + 1]; ++j) {
        const size_t b = static_cast<size_t>(flat.literal_atoms[j]);
        if (b >= a) continue;  // not colored yet (or the atom itself)
        const uint32_t c = color[b];
        if (c >= stamp.size()) stamp.resize(c + 1, 0);
        stamp[c] = a + 1;
      }
    }
    uint32_t c = 0;
    while (c < stamp.size() && stamp[c] == a + 1) ++c;
    color[a] = c;
  }
  uint32_t num_colors = 0;
  for (size_t a = 0; a < n; ++a) {
    num_colors = std::max(num_colors, color[a] + 1);
  }
  flat.color_offsets.assign(num_colors + 1, 0);
  for (size_t a = 0; a < n; ++a) ++flat.color_offsets[color[a] + 1];
  for (size_t c = 0; c < num_colors; ++c) {
    flat.color_offsets[c + 1] += flat.color_offsets[c];
  }
  flat.color_atoms.resize(n);
  std::vector<size_t> color_cursor(flat.color_offsets.begin(),
                                   flat.color_offsets.end() - 1);
  for (size_t a = 0; a < n; ++a) {
    flat.color_atoms[color_cursor[color[a]]++] = static_cast<uint32_t>(a);
  }
  return flat;
}

}  // namespace mlnclean
