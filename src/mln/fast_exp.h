// Branch-free polynomial exp for the weight-learning softmax.
//
// The Newton iterations of LearnWeights spend most of their time in
// exp(w_i - wmax) over each group's CSR slice (see docs/perf.md). libm's
// exp is accurate to 0.5 ulp but is a scalar call the compiler cannot
// vectorize through. FastExp trades the last few ulp for a straight-line
// formulation — magic-number rounding, Cody-Waite range reduction
// against ln 2, a degree-12 Taylor polynomial on [-ln2/2, ln2/2], and a
// 2^n scale assembled directly in the exponent bits — that the
// auto-vectorizer turns into SIMD across a batch.
//
// Accuracy: relative error stays below ~1e-13 over [-700, 700]; inputs
// below -708 are clamped (exp(-708) ~ 3e-308, zero for every consumer
// here). The softmax inputs are always <= 0 (wmax is subtracted), so the
// overflow side never fires but is clamped anyway for safety.
//
// This path is opt-in: WeightLearnerOptions::fast_exp gates it, and the
// default (off) keeps learned weights bit-identical to libm.

#ifndef MLNCLEAN_MLN_FAST_EXP_H_
#define MLNCLEAN_MLN_FAST_EXP_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace mlnclean {

/// exp(x) to ~1e-13 relative error, branch-free (clamps outside
/// [-708, 708] instead of overflowing/underflowing).
inline double FastExp(double x) {
  // 1.5 * 2^52: adding it rounds x*log2(e) to the nearest integer in the
  // low mantissa bits (round-to-nearest-even, exact for |n| < 2^31).
  constexpr double kRoundMagic = 6755399441055744.0;
  constexpr double kLog2e = 1.4426950408889634074;
  // ln 2 split hi/lo so r = x - n*ln2 is computed to ~2^-100 (Cody-Waite).
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;

  x = x < -708.0 ? -708.0 : x;
  x = x > 708.0 ? 708.0 : x;

  const double t = x * kLog2e + kRoundMagic;
  uint64_t tb;
  std::memcpy(&tb, &t, sizeof(tb));
  const auto n = static_cast<int64_t>(static_cast<int32_t>(tb));  // round(x*log2e)
  const double nd = t - kRoundMagic;
  const double r = (x - nd * kLn2Hi) - nd * kLn2Lo;  // r in [-ln2/2, ln2/2]

  // exp(r) by degree-12 Taylor (Horner): remainder < r^13/13! ~ 2e-16.
  double p = 2.08767569878680989792e-09;  // 1/12!
  p = p * r + 2.50521083854417187751e-08;  // 1/11!
  p = p * r + 2.75573192239858906526e-07;  // 1/10!
  p = p * r + 2.75573192239858925110e-06;  // 1/9!
  p = p * r + 2.48015873015873015873e-05;  // 1/8!
  p = p * r + 1.98412698412698412526e-04;  // 1/7!
  p = p * r + 1.38888888888888894069e-03;  // 1/6!
  p = p * r + 8.33333333333333321769e-03;  // 1/5!
  p = p * r + 4.16666666666666666435e-02;  // 1/4!
  p = p * r + 1.66666666666666666667e-01;  // 1/3!
  p = p * r + 5.00000000000000000000e-01;  // 1/2!
  p = p * r + 1.0;
  p = p * r + 1.0;

  // 2^n straight into the exponent field (n in [-1022, 1023] after the
  // clamp, so the biased exponent never leaves (0, 2047)).
  const uint64_t eb = static_cast<uint64_t>(n + 1023) << 52;
  double two_n;
  std::memcpy(&two_n, &eb, sizeof(two_n));
  return p * two_n;
}

namespace fast_exp_internal {

inline void BatchPortable(double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = FastExp(x[i]);
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
// Same straight-line body compiled for AVX2+FMA: the auto-vectorizer
// turns it into 4-wide fused multiply-adds. FMA contracts the Horner
// steps, so this path's last-ulp rounding differs from the portable one —
// both stay within the ~1e-13 contract, and which path runs is fixed per
// process (CPUID), never per thread.
__attribute__((target("avx2,fma"))) inline void BatchAvx2(double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = FastExp(x[i]);
}

inline bool CpuHasAvx2Fma() {
  static const bool has =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return has;
}
#endif

}  // namespace fast_exp_internal

/// In-place exp over a contiguous batch. Dispatches once per process to
/// an AVX2+FMA compilation of the same loop when the CPU has it (the
/// varint codec's dispatch idiom), else the portable scalar body.
inline void FastExpBatch(double* x, size_t n) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (fast_exp_internal::CpuHasAvx2Fma()) {
    fast_exp_internal::BatchAvx2(x, n);
    return;
  }
#endif
  fast_exp_internal::BatchPortable(x, n);
}

}  // namespace mlnclean

#endif  // MLNCLEAN_MLN_FAST_EXP_H_
