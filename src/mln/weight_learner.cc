#include "mln/weight_learner.h"

#include <algorithm>
#include <cmath>

namespace mlnclean {

std::vector<double> PriorWeights(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) total += c;
  std::vector<double> out(counts.size(), 0.0);
  if (total <= 0.0) return out;
  for (size_t i = 0; i < counts.size(); ++i) out[i] = counts[i] / total;
  return out;
}

std::vector<double> LearnWeights(const std::vector<double>& counts,
                                 const std::vector<std::vector<size_t>>& groups,
                                 const WeightLearnerOptions& options) {
  std::vector<double> prior = PriorWeights(counts);
  std::vector<double> w = prior;
  const double lambda = std::max(options.l2, 1e-9);

  std::vector<double> probs;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double max_delta = 0.0;
    for (const auto& group : groups) {
      if (group.size() < 2) continue;  // singleton: gradient is exactly zero
      // Softmax over the group's weights (subtract max for stability).
      double wmax = -1e300;
      for (size_t idx : group) wmax = std::max(wmax, w[idx]);
      double z = 0.0;
      probs.resize(group.size());
      for (size_t k = 0; k < group.size(); ++k) {
        probs[k] = std::exp(w[group[k]] - wmax);
        z += probs[k];
      }
      double n_group = 0.0;
      for (size_t idx : group) n_group += counts[idx];
      for (size_t k = 0; k < group.size(); ++k) {
        size_t idx = group[k];
        double p = probs[k] / z;
        double expected = n_group * p;
        double grad = counts[idx] - expected - lambda * (w[idx] - prior[idx]);
        double hess = n_group * p * (1.0 - p) + lambda;
        double step = options.damping * grad / hess;
        step = std::clamp(step, -options.max_step, options.max_step);
        w[idx] += step;
        max_delta = std::max(max_delta, std::abs(step));
      }
    }
    if (max_delta < options.tolerance) break;
  }
  return w;
}

std::vector<double> LearnGroupProbabilities(
    const std::vector<double>& counts, const std::vector<std::vector<size_t>>& groups,
    const WeightLearnerOptions& options) {
  // Items outside every group default to their Eq. 4 prior.
  std::vector<double> out = PriorWeights(counts);
  std::vector<double> log_w = LearnWeights(counts, groups, options);
  double total = 0.0;
  for (double c : counts) total += c;
  if (total <= 0.0) return out;
  for (const auto& group : groups) {
    if (group.empty()) continue;
    double n_group = 0.0;
    double wmax = -1e300;
    for (size_t idx : group) {
      n_group += counts[idx];
      wmax = std::max(wmax, log_w[idx]);
    }
    double z = 0.0;
    for (size_t idx : group) z += std::exp(log_w[idx] - wmax);
    const double group_mass = n_group / total;
    for (size_t idx : group) {
      out[idx] = std::exp(log_w[idx] - wmax) / z * group_mass;
    }
  }
  return out;
}

}  // namespace mlnclean
