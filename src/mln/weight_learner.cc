#include "mln/weight_learner.h"

#include <algorithm>
#include <cmath>

#include "mln/fast_exp.h"

namespace mlnclean {

std::vector<double> PriorWeights(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) total += c;
  std::vector<double> out(counts.size(), 0.0);
  if (total <= 0.0) return out;
  for (size_t i = 0; i < counts.size(); ++i) out[i] = counts[i] / total;
  return out;
}

std::vector<double> LearnWeights(const std::vector<double>& counts,
                                 const std::vector<std::vector<size_t>>& groups,
                                 const WeightLearnerOptions& options) {
  std::vector<double> prior = PriorWeights(counts);
  std::vector<double> w = prior;
  const double lambda = std::max(options.l2, 1e-9);

  // Flatten the multi-member groups into CSR arrays once, hoisting
  // everything the Newton iterations never change: the member lists, the
  // gathered member counts, and the per-group support totals. Singleton
  // groups are excluded up front — their gradient is exactly zero, so
  // they keep the prior. The iterate-order arithmetic below matches the
  // nested-vector formulation operation for operation, so learned weights
  // are bit-identical to it.
  std::vector<size_t> group_offsets;
  group_offsets.push_back(0);
  std::vector<size_t> members;
  std::vector<double> member_counts;
  std::vector<double> n_group;
  size_t max_group = 0;
  for (const auto& group : groups) {
    if (group.size() < 2) continue;
    double total = 0.0;
    for (size_t idx : group) {
      members.push_back(idx);
      member_counts.push_back(counts[idx]);
      total += counts[idx];
    }
    group_offsets.push_back(members.size());
    n_group.push_back(total);
    max_group = std::max(max_group, group.size());
  }
  if (members.empty()) return w;

  std::vector<double> probs(max_group);
  // fast_exp scratch: the softmax inputs of every group, flattened so one
  // wide exp batch per iteration keeps the SIMD lanes full (per-group
  // batches of 2-6 elements never would).
  std::vector<double> flat;
  if (options.fast_exp) flat.resize(members.size());
  const size_t num_groups = n_group.size();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double max_delta = 0.0;
    if (options.fast_exp) {
      // Groups are disjoint, so no group's softmax inputs depend on
      // another group's step within this iteration: gather them all,
      // exponentiate once, step per group below.
      for (size_t g = 0; g < num_groups; ++g) {
        double wmax = -1e300;
        for (size_t k = group_offsets[g]; k < group_offsets[g + 1]; ++k) {
          wmax = std::max(wmax, w[members[k]]);
        }
        for (size_t k = group_offsets[g]; k < group_offsets[g + 1]; ++k) {
          flat[k] = w[members[k]] - wmax;
        }
      }
      FastExpBatch(flat.data(), flat.size());
    }
    for (size_t g = 0; g < num_groups; ++g) {
      const size_t begin = group_offsets[g];
      const size_t end = group_offsets[g + 1];
      // Fused sweep: softmax, gradient, and diagonal-Hessian step all come
      // from two passes over the group's contiguous CSR slice.
      double z = 0.0;
      const double* e = probs.data();
      if (options.fast_exp) {
        e = flat.data() + begin;
        for (size_t k = begin; k < end; ++k) z += flat[k];
      } else {
        double wmax = -1e300;
        for (size_t k = begin; k < end; ++k) wmax = std::max(wmax, w[members[k]]);
        for (size_t k = begin; k < end; ++k) {
          const double ek = std::exp(w[members[k]] - wmax);
          probs[k - begin] = ek;
          z += ek;
        }
      }
      for (size_t k = begin; k < end; ++k) {
        const size_t idx = members[k];
        const double p = e[k - begin] / z;
        const double expected = n_group[g] * p;
        const double grad =
            member_counts[k] - expected - lambda * (w[idx] - prior[idx]);
        const double hess = n_group[g] * p * (1.0 - p) + lambda;
        double step = options.damping * grad / hess;
        step = std::clamp(step, -options.max_step, options.max_step);
        w[idx] += step;
        max_delta = std::max(max_delta, std::abs(step));
      }
    }
    if (max_delta < options.tolerance) break;
  }
  return w;
}

std::vector<double> LearnGroupProbabilities(
    const std::vector<double>& counts, const std::vector<std::vector<size_t>>& groups,
    const WeightLearnerOptions& options) {
  // Items outside every group default to their Eq. 4 prior.
  std::vector<double> out = PriorWeights(counts);
  std::vector<double> log_w = LearnWeights(counts, groups, options);
  double total = 0.0;
  for (double c : counts) total += c;
  if (total <= 0.0) return out;
  for (const auto& group : groups) {
    if (group.empty()) continue;
    double n_group = 0.0;
    double wmax = -1e300;
    for (size_t idx : group) {
      n_group += counts[idx];
      wmax = std::max(wmax, log_w[idx]);
    }
    double z = 0.0;
    for (size_t idx : group) z += std::exp(log_w[idx] - wmax);
    const double group_mass = n_group / total;
    for (size_t idx : group) {
      out[idx] = std::exp(log_w[idx] - wmax) / z * group_mass;
    }
  }
  return out;
}

}  // namespace mlnclean
