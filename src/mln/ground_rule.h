// Grounding (Section 3, Table 3): instantiating an MLN rule's variables
// with the constants found in a dataset. A ground rule of an
// index-compatible constraint is a distinct (reason values, result values)
// combination together with its supporting tuples; its learned weight
// reflects the probability of those attribute values being clean.
//
// Grounding runs entirely on the dataset's dictionary ids: per tuple it
// gathers the rule's attribute ids straight from the columns, hashes the
// id tuple, and dedups bindings in a flat open-addressing table — no
// per-tuple key strings are built. Value strings are materialized once per
// distinct γ, from the dictionaries.

#ifndef MLNCLEAN_MLN_GROUND_RULE_H_
#define MLNCLEAN_MLN_GROUND_RULE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rules/constraint.h"

namespace mlnclean {

/// One ground MLN rule: a concrete binding of a rule's reason/result
/// attributes, with the tuples exhibiting it. The `*_ids` vectors mirror
/// the values as dictionary ids of the grounded-over dataset.
struct GroundRule {
  std::vector<Value> reason;
  std::vector<Value> result;
  std::vector<TupleId> tuples;
  double weight = 0.0;
  std::vector<ValueId> reason_ids;
  std::vector<ValueId> result_ids;

  /// Number of supporting tuples (the c(γ) of Eq. 4).
  size_t support() const { return tuples.size(); }
};

/// Grounds `rule` over `data`: one GroundRule per distinct
/// (reason, result) binding among in-scope tuples, in first-appearance
/// order. Fails with Invalid for rules the MLN index cannot handle
/// (general DCs; see Constraint::IndexCompatible).
Result<std::vector<GroundRule>> GroundConstraint(const Dataset& data,
                                                 const Constraint& rule);

/// Grounds `rule` over the tuple range [first, end) only — the
/// incremental-append primitive. Bindings and tuples come out in the same
/// first-appearance order a full grounding would visit them in, so merging
/// a range grounding into an index built over [0, first) reproduces the
/// full build exactly (MlnIndex::AppendRows relies on this).
Result<std::vector<GroundRule>> GroundConstraintRange(const Dataset& data,
                                                      const Constraint& rule,
                                                      TupleId first, TupleId end);

/// Renders a ground rule in the clausal form of Table 3, e.g.
/// `!CT("DOTHAN") | ST("AL")`.
std::string GroundRuleToString(const Schema& schema, const Constraint& rule,
                               const GroundRule& ground);

}  // namespace mlnclean

#endif  // MLNCLEAN_MLN_GROUND_RULE_H_
