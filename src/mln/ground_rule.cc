#include "mln/ground_rule.h"

#include <unordered_map>

namespace mlnclean {

namespace {

// Builds the reason\x1e result binding key straight from the row (values
// gathered by attribute id), reusing `key`'s capacity across tuples so the
// common repeated-binding case costs no allocation.
void BindingKeyFromRow(const std::vector<Value>& row,
                       const std::vector<AttrId>& reason_attrs,
                       const std::vector<AttrId>& result_attrs, std::string* key) {
  key->clear();
  for (AttrId a : reason_attrs) {
    *key += row[static_cast<size_t>(a)];
    *key += '\x1f';
  }
  *key += '\x1e';
  for (AttrId a : result_attrs) {
    *key += row[static_cast<size_t>(a)];
    *key += '\x1f';
  }
}

}  // namespace

Result<std::vector<GroundRule>> GroundConstraint(const Dataset& data,
                                                 const Constraint& rule) {
  if (!rule.IndexCompatible()) {
    return Status::Invalid(
        "rule '" + rule.name() +
        "' is not index-compatible: DC reason predicates must be same-attribute "
        "equalities and the result predicate a same-attribute disequality");
  }
  std::vector<GroundRule> out;
  std::unordered_map<std::string, size_t> by_binding;
  std::string key;
  for (TupleId tid = 0; tid < static_cast<TupleId>(data.num_rows()); ++tid) {
    const auto& row = data.row(tid);
    if (!rule.InScope(row)) continue;
    BindingKeyFromRow(row, rule.reason_attrs(), rule.result_attrs(), &key);
    auto it = by_binding.find(key);
    if (it == by_binding.end()) {
      // First sight of this binding: materialize the γ's value vectors.
      by_binding.emplace(key, out.size());
      out.push_back(GroundRule{rule.ReasonValues(row), rule.ResultValues(row),
                               {tid}, 0.0});
    } else {
      out[it->second].tuples.push_back(tid);
    }
  }
  return out;
}

std::string GroundRuleToString(const Schema& schema, const Constraint& rule,
                               const GroundRule& ground) {
  std::string out;
  auto append = [&out](bool negated, const std::string& pred, const Value& constant) {
    if (!out.empty()) out += " | ";
    if (negated) out += "!";
    out += pred + "(\"" + constant + "\")";
  };
  const auto& reason_attrs = rule.reason_attrs();
  for (size_t i = 0; i < reason_attrs.size(); ++i) {
    append(true, schema.name(reason_attrs[i]), ground.reason[i]);
  }
  const auto& result_attrs = rule.result_attrs();
  for (size_t i = 0; i < result_attrs.size(); ++i) {
    append(false, schema.name(result_attrs[i]), ground.result[i]);
  }
  return out;
}

}  // namespace mlnclean
