#include "mln/ground_rule.h"

#include <algorithm>

namespace mlnclean {

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Result<std::vector<GroundRule>> GroundConstraint(const Dataset& data,
                                                 const Constraint& rule) {
  return GroundConstraintRange(data, rule, 0,
                               static_cast<TupleId>(data.num_rows()));
}

Result<std::vector<GroundRule>> GroundConstraintRange(const Dataset& data,
                                                      const Constraint& rule,
                                                      TupleId first,
                                                      TupleId end) {
  if (!rule.IndexCompatible()) {
    return Status::Invalid(
        "rule '" + rule.name() +
        "' is not index-compatible: DC reason predicates must be same-attribute "
        "equalities and the result predicate a same-attribute disequality");
  }
  if (first < 0 || end < first || static_cast<size_t>(end) > data.num_rows()) {
    return Status::Invalid("grounding range [" + std::to_string(first) + ", " +
                           std::to_string(end) + ") is out of bounds for " +
                           std::to_string(data.num_rows()) + " rows");
  }
  const auto& reason_attrs = rule.reason_attrs();
  const auto& result_attrs = rule.result_attrs();
  const size_t n_reason = reason_attrs.size();
  const size_t arity = n_reason + result_attrs.size();
  // Column pointers in binding order (reason attrs then result attrs).
  std::vector<const ValueId*> cols;
  cols.reserve(arity);
  for (AttrId a : reason_attrs) cols.push_back(data.column(a).data());
  for (AttrId a : result_attrs) cols.push_back(data.column(a).data());

  const ScopeFilter scope = rule.MakeScopeFilter(data);

  std::vector<GroundRule> out;
  // Flat open-addressing binding table: slots hold (hash, γ index + 1);
  // matches are confirmed against the stored γ's id vectors. Sized for the
  // worst case (every tuple a distinct binding) so it never rehashes.
  const size_t cap =
      NextPowerOfTwo(static_cast<size_t>(end - first) * 2 + 1);
  const size_t mask = cap - 1;
  std::vector<uint64_t> slot_hash(cap);
  std::vector<uint32_t> slot_idx(cap, 0);

  std::vector<ValueId> ids(arity);
  for (TupleId tid = first; tid < end; ++tid) {
    if (!scope.InScope(tid)) continue;
    for (size_t p = 0; p < arity; ++p) ids[p] = cols[p][tid];
    const uint64_t h = HashValueIds(ids);
    size_t i = h & mask;
    while (true) {
      if (slot_idx[i] == 0) {
        // First sight of this binding: materialize the γ's value vectors
        // from the dictionaries (once per distinct γ, not per tuple).
        slot_hash[i] = h;
        slot_idx[i] = static_cast<uint32_t>(out.size()) + 1;
        GroundRule g;
        g.reason_ids.assign(ids.begin(), ids.begin() + n_reason);
        g.result_ids.assign(ids.begin() + n_reason, ids.end());
        g.reason.reserve(n_reason);
        for (size_t p = 0; p < n_reason; ++p) {
          g.reason.push_back(data.dict(reason_attrs[p]).value(ids[p]));
        }
        g.result.reserve(arity - n_reason);
        for (size_t p = n_reason; p < arity; ++p) {
          g.result.push_back(data.dict(result_attrs[p - n_reason]).value(ids[p]));
        }
        g.tuples.push_back(tid);
        out.push_back(std::move(g));
        break;
      }
      if (slot_hash[i] == h) {
        GroundRule& g = out[slot_idx[i] - 1];
        if (std::equal(ids.begin(), ids.begin() + n_reason, g.reason_ids.begin()) &&
            std::equal(ids.begin() + n_reason, ids.end(), g.result_ids.begin())) {
          g.tuples.push_back(tid);
          break;
        }
      }
      i = (i + 1) & mask;
    }
  }
  return out;
}

std::string GroundRuleToString(const Schema& schema, const Constraint& rule,
                               const GroundRule& ground) {
  std::string out;
  auto append = [&out](bool negated, const std::string& pred, const Value& constant) {
    if (!out.empty()) out += " | ";
    if (negated) out += "!";
    out += pred + "(\"" + constant + "\")";
  };
  const auto& reason_attrs = rule.reason_attrs();
  for (size_t i = 0; i < reason_attrs.size(); ++i) {
    append(true, schema.name(reason_attrs[i]), ground.reason[i]);
  }
  const auto& result_attrs = rule.result_attrs();
  for (size_t i = 0; i < result_attrs.size(); ++i) {
    append(false, schema.name(result_attrs[i]), ground.result[i]);
  }
  return out;
}

}  // namespace mlnclean
