#include "mln/ground_rule.h"

#include <unordered_map>

namespace mlnclean {

namespace {

std::string BindingKey(const std::vector<Value>& reason,
                       const std::vector<Value>& result) {
  std::string key;
  for (const auto& v : reason) {
    key += v;
    key += '\x1f';
  }
  key += '\x1e';
  for (const auto& v : result) {
    key += v;
    key += '\x1f';
  }
  return key;
}

}  // namespace

Result<std::vector<GroundRule>> GroundConstraint(const Dataset& data,
                                                 const Constraint& rule) {
  if (!rule.IndexCompatible()) {
    return Status::Invalid(
        "rule '" + rule.name() +
        "' is not index-compatible: DC reason predicates must be same-attribute "
        "equalities and the result predicate a same-attribute disequality");
  }
  std::vector<GroundRule> out;
  std::unordered_map<std::string, size_t> by_binding;
  for (TupleId tid = 0; tid < static_cast<TupleId>(data.num_rows()); ++tid) {
    const auto& row = data.row(tid);
    if (!rule.InScope(row)) continue;
    std::vector<Value> reason = rule.ReasonValues(row);
    std::vector<Value> result = rule.ResultValues(row);
    std::string key = BindingKey(reason, result);
    auto it = by_binding.find(key);
    if (it == by_binding.end()) {
      by_binding.emplace(std::move(key), out.size());
      out.push_back(GroundRule{std::move(reason), std::move(result), {tid}, 0.0});
    } else {
      out[it->second].tuples.push_back(tid);
    }
  }
  return out;
}

std::string GroundRuleToString(const Schema& schema, const Constraint& rule,
                               const GroundRule& ground) {
  std::string out;
  auto append = [&out](bool negated, const std::string& pred, const Value& constant) {
    if (!out.empty()) out += " | ";
    if (negated) out += "!";
    out += pred + "(\"" + constant + "\")";
  };
  const auto& reason_attrs = rule.reason_attrs();
  for (size_t i = 0; i < reason_attrs.size(); ++i) {
    append(true, schema.name(reason_attrs[i]), ground.reason[i]);
  }
  const auto& result_attrs = rule.result_attrs();
  for (size_t i = 0; i < result_attrs.size(); ++i) {
    append(false, schema.name(result_attrs[i]), ground.result[i]);
  }
  return out;
}

}  // namespace mlnclean
