// Generic ground Markov logic network (Definition 1): weighted disjunctive
// clauses over boolean ground atoms, with the log-linear distribution
// Pr(x) ∝ exp(Σ_i w_i n_i(x)) of Eq. 2. Inference is provided by Gibbs
// sampling (marginals, gibbs.h) and MaxWalkSAT (MAP, walksat.h).

#ifndef MLNCLEAN_MLN_NETWORK_H_
#define MLNCLEAN_MLN_NETWORK_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"

namespace mlnclean {

/// Index of a ground atom inside a network.
using AtomId = int;

/// A literal: an atom or its negation.
struct MlnLiteral {
  AtomId atom;
  bool positive;
};

/// A weighted ground clause (disjunction of literals). `hard` clauses must
/// hold in any MAP state; their weight is ignored by WalkSAT's objective
/// scaling but they dominate soft clauses.
struct MlnClauseG {
  std::vector<MlnLiteral> literals;
  double weight = 1.0;
  bool hard = false;
};

/// A ground MLN: named boolean atoms plus weighted clauses.
class GroundNetwork {
 public:
  GroundNetwork() = default;

  /// Adds (or finds) an atom by name; returns its id.
  AtomId AddAtom(const std::string& name);

  /// Number of atoms so far.
  size_t num_atoms() const { return atom_names_.size(); }

  const std::string& atom_name(AtomId id) const {
    return atom_names_[static_cast<size_t>(id)];
  }

  /// Looks up an existing atom.
  Result<AtomId> FindAtom(const std::string& name) const;

  /// Adds (or finds) the atom "cell (tid, attr) takes the value with
  /// dictionary id `value`". Candidate-domain networks draw their atoms
  /// from an attribute's dictionary ids: the id triple is the lookup key,
  /// so repeated queries never build name strings (the printable name is
  /// materialized once, on first insertion).
  AtomId AddCellAtom(TupleId tid, AttrId attr, ValueId value);

  /// Looks up an existing cell atom by its id triple.
  Result<AtomId> FindCellAtom(TupleId tid, AttrId attr, ValueId value) const;

  /// Adds a clause; every literal must reference an existing atom and
  /// soft weights must be non-negative.
  Status AddClause(MlnClauseG clause);

  size_t num_clauses() const { return clauses_.size(); }
  const MlnClauseG& clause(size_t i) const { return clauses_[i]; }
  const std::vector<MlnClauseG>& clauses() const { return clauses_; }

  /// Clauses that mention a given atom (for incremental evaluation).
  const std::vector<size_t>& clauses_of(AtomId atom) const {
    return atom_clauses_[static_cast<size_t>(atom)];
  }

  /// True when the clause is satisfied in `world`.
  static bool ClauseSatisfied(const MlnClauseG& clause, const std::vector<bool>& world);

  /// Un-normalized log-probability Σ_i w_i [clause_i satisfied] of a world
  /// (Eq. 2 without the partition function).
  double LogScore(const std::vector<bool>& world) const;

  /// Total weight of violated soft clauses plus a large penalty per
  /// violated hard clause (the MaxWalkSAT objective, to be minimized).
  double ViolationCost(const std::vector<bool>& world) const;

 private:
  // Exact key of a cell atom; hashed as a mixed triple.
  struct CellKey {
    TupleId tid;
    AttrId attr;
    ValueId value;
    bool operator==(const CellKey& o) const {
      return tid == o.tid && attr == o.attr && value == o.value;
    }
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& k) const {
      uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(k.tid)) << 32) |
                   k.value;
      x ^= static_cast<uint64_t>(static_cast<uint32_t>(k.attr)) << 17;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      return static_cast<size_t>(x);
    }
  };

  std::vector<std::string> atom_names_;
  std::unordered_map<std::string, AtomId> atom_ids_;
  std::unordered_map<CellKey, AtomId, CellKeyHash> cell_atom_ids_;
  std::vector<MlnClauseG> clauses_;
  std::vector<std::vector<size_t>> atom_clauses_;
};

/// CSR ("flat") image of a finished GroundNetwork, built once before
/// inference so the sampling hot loops touch only contiguous arrays
/// instead of per-clause vectors of structs.
///
/// Three views of the same network:
///  - clause-major literal lists (`clause_offsets` into `literal_*`),
///  - atom-major adjacency with per-(atom, clause) literal counts
///    (`atom_offsets` into `adj_*`; `adj_pos`/`adj_neg` count how many
///    positive/negative literals the clause has on that atom, so duplicate
///    literals are preserved exactly),
///  - a greedy conflict-free coloring of the atom graph (`color_offsets`
///    into `color_atoms`): two atoms of the same color never share a
///    clause, so all atoms of one color can be Gibbs-resampled in
///    parallel without synchronization.
struct FlatNetwork {
  std::vector<size_t> clause_offsets;  // num_clauses + 1
  std::vector<AtomId> literal_atoms;
  std::vector<uint8_t> literal_positive;
  std::vector<double> clause_weights;
  std::vector<uint8_t> clause_hard;

  std::vector<size_t> atom_offsets;  // num_atoms + 1
  std::vector<uint32_t> adj_clause;
  std::vector<uint32_t> adj_pos;
  std::vector<uint32_t> adj_neg;

  std::vector<size_t> color_offsets;  // num_colors + 1
  std::vector<uint32_t> color_atoms;  // atoms grouped by color, ascending

  size_t num_atoms() const {
    return atom_offsets.empty() ? 0 : atom_offsets.size() - 1;
  }
  size_t num_clauses() const {
    return clause_offsets.empty() ? 0 : clause_offsets.size() - 1;
  }
  size_t num_colors() const {
    return color_offsets.empty() ? 0 : color_offsets.size() - 1;
  }
};

/// Flattens `network` into CSR arrays and colors its atom graph.
FlatNetwork BuildFlatNetwork(const GroundNetwork& network);

}  // namespace mlnclean

#endif  // MLNCLEAN_MLN_NETWORK_H_
