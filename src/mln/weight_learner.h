// MLN weight learning in the style of Tuffy's diagonal Newton method
// (Section 5.1.2). The paper consumes one learned weight per ground rule
// (γ); by Eq. 3 a larger weight must mean a larger probability of the γ
// being clean.
//
// Model: within each group (γs sharing a reason key), Pr(γi) is the
// softmax of the weights of the group's γs. The learner maximizes the
// support-weighted log-likelihood with an L2 prior centred on the Eq. 4
// prior weights, taking damped diagonal Newton steps
//     w_i += (c_i - E[c_i] - λ(w_i - w0_i)) / (Var[c_i] + λ).

#ifndef MLNCLEAN_MLN_WEIGHT_LEARNER_H_
#define MLNCLEAN_MLN_WEIGHT_LEARNER_H_

#include <cstddef>
#include <vector>

namespace mlnclean {

/// Tuning knobs for diagonal-Newton weight learning.
struct WeightLearnerOptions {
  int max_iterations = 100;
  /// L2 pull towards the Eq. 4 prior; also regularizes the Newton step.
  double l2 = 0.05;
  /// Convergence threshold on the max absolute weight change.
  double tolerance = 1e-7;
  /// Per-iteration weight change is clipped to this magnitude.
  double max_step = 1.0;
  /// Newton step damping. The diagonal approximation ignores the softmax
  /// cross-coupling (moving every group member at once roughly doubles the
  /// intended effect), so an undamped step oscillates; 0.5 compensates
  /// exactly for two-member groups and converges for larger ones.
  double damping = 0.5;
  /// Use the branch-free polynomial exp (mln/fast_exp.h, ~1e-13 relative
  /// error, SIMD via per-process AVX2+FMA dispatch) for the softmax,
  /// batched across all groups per Newton iteration. Off by default:
  /// learned weights are then bit-identical to previous releases. With it
  /// on, weights can drift by up to ~1e-8 (the Newton fixed point moves
  /// with the exp) and may differ between CPU generations (FMA vs
  /// portable path) — but never between thread counts or runs.
  bool fast_exp = false;
};

/// Eq. 4 prior weights: w0_i = c_i / sum_j c_j over the whole block.
/// Returns an empty vector for empty input.
std::vector<double> PriorWeights(const std::vector<double>& counts);

/// Learns one log-space weight per item. `counts[i]` is the tuple support
/// c(γi); `groups` partitions item indices by reason key (indices not
/// listed in any group keep their prior weight). Returns the learned
/// weights.
std::vector<double> LearnWeights(const std::vector<double>& counts,
                                 const std::vector<std::vector<size_t>>& groups,
                                 const WeightLearnerOptions& options = {});

/// Probability-scale γ weights for the cleaning stages: the within-group
/// softmax of the learned log weights, scaled by the group's share of the
/// block's tuples. This keeps every weight on the same [0, 1] scale as
/// the Eq. 4 prior (an uncontested γ's weight *is* its prior), which is
/// what makes FSCR's f-score products (Eq. 5) and the distributed Eq. 6
/// linear averaging comparable across groups and blocks.
std::vector<double> LearnGroupProbabilities(
    const std::vector<double>& counts, const std::vector<std::vector<size_t>>& groups,
    const WeightLearnerOptions& options = {});

}  // namespace mlnclean

#endif  // MLNCLEAN_MLN_WEIGHT_LEARNER_H_
