// Gibbs sampling for marginal inference over a GroundNetwork: repeatedly
// resamples each atom from its full conditional under the Eq. 2
// distribution and averages post-burn-in samples.
//
// The sampler runs chromatic sweeps over the FlatNetwork's conflict-free
// coloring: within a color no two atoms share a clause, so the whole color
// is resampled in parallel on the caller's ExecContext. Every atom draw
// comes from a counter-based hash of (seed, sweep, atom), so the marginals
// are bit-identical for any thread count — the same determinism contract
// the stage drivers keep.

#ifndef MLNCLEAN_MLN_GIBBS_H_
#define MLNCLEAN_MLN_GIBBS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/executor.h"
#include "mln/network.h"

namespace mlnclean {

/// Tuning knobs for Gibbs sampling.
struct GibbsOptions {
  int burn_in_sweeps = 100;
  int sample_sweeps = 400;
  uint64_t seed = 42;
};

/// Estimates Pr(atom = true) for every atom. Atoms listed in `evidence`
/// (pairs of atom id and value) are clamped and reported at their clamped
/// value. `ctx` supplies the executor for within-color parallelism; the
/// default context runs sequentially and produces the exact same marginals.
std::vector<double> GibbsMarginals(
    const GroundNetwork& network, const GibbsOptions& options,
    const std::vector<std::pair<AtomId, bool>>& evidence = {},
    const ExecContext& ctx = {});

}  // namespace mlnclean

#endif  // MLNCLEAN_MLN_GIBBS_H_
