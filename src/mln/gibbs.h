// Gibbs sampling for marginal inference over a GroundNetwork: repeatedly
// resamples each atom from its full conditional under the Eq. 2
// distribution and averages post-burn-in samples.

#ifndef MLNCLEAN_MLN_GIBBS_H_
#define MLNCLEAN_MLN_GIBBS_H_

#include <cstdint>
#include <vector>

#include "mln/network.h"

namespace mlnclean {

/// Tuning knobs for Gibbs sampling.
struct GibbsOptions {
  int burn_in_sweeps = 100;
  int sample_sweeps = 400;
  uint64_t seed = 42;
};

/// Estimates Pr(atom = true) for every atom. Atoms listed in `evidence`
/// (pairs of atom id and value) are clamped and reported at their clamped
/// value.
std::vector<double> GibbsMarginals(
    const GroundNetwork& network, const GibbsOptions& options,
    const std::vector<std::pair<AtomId, bool>>& evidence = {});

}  // namespace mlnclean

#endif  // MLNCLEAN_MLN_GIBBS_H_
