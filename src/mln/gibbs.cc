#include "mln/gibbs.h"

#include <cmath>

#include "common/random.h"

namespace mlnclean {

namespace {

// Effective weight of a hard clause inside the sampler's conditionals:
// large enough to pin the conditional at ~0/1 through the sigmoid clamp.
constexpr double kHardWeight = 1e6;

inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Counter-based uniform in [0, 1): every (seed, sweep, atom) triple has
// its own fixed draw, so the sampling schedule is independent of how the
// atoms of a color are distributed over threads.
inline double HashUniform(uint64_t seed, uint64_t sweep, uint64_t atom) {
  uint64_t x = SplitMix64(seed ^ (sweep * 0x9e3779b97f4a7c15ull));
  x = SplitMix64(x ^ (atom * 0xd1b54a32d192ed03ull));
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

std::vector<double> GibbsMarginals(
    const GroundNetwork& network, const GibbsOptions& options,
    const std::vector<std::pair<AtomId, bool>>& evidence,
    const ExecContext& ctx) {
  const size_t n = network.num_atoms();
  std::vector<double> marginals(n, 0.0);
  if (n == 0) return marginals;

  const FlatNetwork flat = BuildFlatNetwork(network);

  // uint8_t (not vector<bool>) so same-color atoms can write concurrently.
  std::vector<uint8_t> world(n, 0);
  std::vector<uint8_t> clamped(n, 0);
  for (const auto& [atom, value] : evidence) {
    world[static_cast<size_t>(atom)] = value ? 1 : 0;
    clamped[static_cast<size_t>(atom)] = 1;
  }
  Rng rng(options.seed);
  for (size_t a = 0; a < n; ++a) {
    if (clamped[a] == 0) world[a] = rng.NextBool(0.5) ? 1 : 0;
  }

  // Number of currently-true literals per clause, maintained incrementally
  // so each resample sees "satisfied by someone else" in O(1) per clause.
  std::vector<uint32_t> true_lits(flat.num_clauses(), 0);
  for (size_t ci = 0; ci < flat.num_clauses(); ++ci) {
    uint32_t count = 0;
    for (size_t j = flat.clause_offsets[ci]; j < flat.clause_offsets[ci + 1]; ++j) {
      const uint8_t value = world[static_cast<size_t>(flat.literal_atoms[j])];
      if (value == flat.literal_positive[j]) ++count;
    }
    true_lits[ci] = count;
  }

  // Resamples atom `a` from its full conditional. Only touches `world[a]`
  // and the clauses adjacent to `a`, none of which another atom of the
  // same color can reach — the coloring makes the within-color loop
  // race-free by construction.
  auto resample = [&](size_t a, int sweep) {
    double score_true = 0.0, score_false = 0.0;
    const size_t begin = flat.atom_offsets[a];
    const size_t end = flat.atom_offsets[a + 1];
    for (size_t e = begin; e < end; ++e) {
      const uint32_t ci = flat.adj_clause[e];
      const double w =
          flat.clause_hard[ci] != 0 ? kHardWeight : flat.clause_weights[ci];
      const uint32_t own = world[a] != 0 ? flat.adj_pos[e] : flat.adj_neg[e];
      const bool sat_other = true_lits[ci] > own;
      if (sat_other || flat.adj_pos[e] > 0) score_true += w;
      if (sat_other || flat.adj_neg[e] > 0) score_false += w;
    }
    // Numerically stable sigmoid of (score_true - score_false).
    const double d = score_true - score_false;
    double p;
    if (d > 35.0) {
      p = 1.0;
    } else if (d < -35.0) {
      p = 0.0;
    } else {
      p = 1.0 / (1.0 + std::exp(-d));
    }
    const uint8_t next =
        HashUniform(options.seed, static_cast<uint64_t>(sweep), a) < p ? 1 : 0;
    if (next != world[a]) {
      for (size_t e = begin; e < end; ++e) {
        const uint32_t ci = flat.adj_clause[e];
        const int delta =
            static_cast<int>(next != 0 ? flat.adj_pos[e] : flat.adj_neg[e]) -
            static_cast<int>(world[a] != 0 ? flat.adj_pos[e] : flat.adj_neg[e]);
        true_lits[ci] = static_cast<uint32_t>(static_cast<int>(true_lits[ci]) + delta);
      }
      world[a] = next;
    }
  };

  std::vector<uint32_t> true_counts(n, 0);
  const int total_sweeps = options.burn_in_sweeps + options.sample_sweeps;
  // With no worker parallelism, dispatch the resamples directly — the
  // per-index std::function call inside ParallelFor costs as much as a
  // small-network resample itself. The iteration order (colors ascending,
  // color_atoms order within a color) is exactly what ParallelFor's
  // sequential drain produces, so both paths stay bit-identical.
  const bool sequential = ctx.parallelism() <= 1;
  int kept = 0;
  for (int sweep = 0; sweep < total_sweeps; ++sweep) {
    if (sequential) {
      for (size_t k = 0; k < flat.color_atoms.size(); ++k) {
        const size_t a = flat.color_atoms[k];
        if (clamped[a] == 0) resample(a, sweep);
      }
    } else {
      for (size_t c = 0; c < flat.num_colors(); ++c) {
        const size_t begin = flat.color_offsets[c];
        const size_t count = flat.color_offsets[c + 1] - begin;
        ParallelFor(count, ctx, [&](size_t k) {
          const size_t a = flat.color_atoms[begin + k];
          if (clamped[a] == 0) resample(a, sweep);
        });
      }
    }
    if (sweep >= options.burn_in_sweeps) {
      ++kept;
      for (size_t a = 0; a < n; ++a) true_counts[a] += world[a];
    }
  }
  if (kept > 0) {
    for (size_t a = 0; a < n; ++a) {
      marginals[a] = static_cast<double>(true_counts[a]) / kept;
    }
  }
  for (const auto& [atom, value] : evidence) {
    marginals[static_cast<size_t>(atom)] = value ? 1.0 : 0.0;
  }
  return marginals;
}

}  // namespace mlnclean
