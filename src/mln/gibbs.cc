#include "mln/gibbs.h"

#include <cmath>

#include "common/random.h"

namespace mlnclean {

std::vector<double> GibbsMarginals(
    const GroundNetwork& network, const GibbsOptions& options,
    const std::vector<std::pair<AtomId, bool>>& evidence) {
  const size_t n = network.num_atoms();
  std::vector<double> marginals(n, 0.0);
  if (n == 0) return marginals;

  Rng rng(options.seed);
  std::vector<bool> world(n, false);
  std::vector<bool> clamped(n, false);
  for (const auto& [atom, value] : evidence) {
    world[static_cast<size_t>(atom)] = value;
    clamped[static_cast<size_t>(atom)] = true;
  }
  for (size_t a = 0; a < n; ++a) {
    if (!clamped[a]) world[a] = rng.NextBool(0.5);
  }

  // Score delta of flipping atom `a` to true vs. false, touching only the
  // clauses that mention it.
  auto conditional_true_prob = [&](size_t a) {
    double score_true = 0.0, score_false = 0.0;
    for (size_t ci : network.clauses_of(static_cast<AtomId>(a))) {
      const MlnClauseG& clause = network.clause(ci);
      double w = clause.hard ? 1e6 : clause.weight;
      bool sat_other = false;  // satisfied by some literal not on atom a
      bool sat_if_true = false, sat_if_false = false;
      for (const auto& lit : clause.literals) {
        if (static_cast<size_t>(lit.atom) == a) {
          (lit.positive ? sat_if_true : sat_if_false) = true;
        } else if (world[static_cast<size_t>(lit.atom)] == lit.positive) {
          sat_other = true;
        }
      }
      if (sat_other || sat_if_true) score_true += w;
      if (sat_other || sat_if_false) score_false += w;
    }
    // Numerically stable sigmoid of (score_true - score_false).
    double d = score_true - score_false;
    if (d > 35.0) return 1.0;
    if (d < -35.0) return 0.0;
    return 1.0 / (1.0 + std::exp(-d));
  };

  const int total_sweeps = options.burn_in_sweeps + options.sample_sweeps;
  int kept = 0;
  for (int sweep = 0; sweep < total_sweeps; ++sweep) {
    for (size_t a = 0; a < n; ++a) {
      if (clamped[a]) continue;
      world[a] = rng.NextBool(conditional_true_prob(a));
    }
    if (sweep >= options.burn_in_sweeps) {
      ++kept;
      for (size_t a = 0; a < n; ++a) {
        if (world[a]) marginals[a] += 1.0;
      }
    }
  }
  if (kept > 0) {
    for (double& m : marginals) m /= kept;
  }
  for (const auto& [atom, value] : evidence) {
    marginals[static_cast<size_t>(atom)] = value ? 1.0 : 0.0;
  }
  return marginals;
}

}  // namespace mlnclean
