#include "mln/walksat.h"

#include <limits>

#include "common/random.h"

namespace mlnclean {

namespace {

// Cost change caused by flipping `atom` in `world`, looking only at the
// clauses that mention it.
double FlipDelta(const GroundNetwork& network, const std::vector<bool>& world,
                 size_t atom) {
  double delta = 0.0;
  for (size_t ci : network.clauses_of(static_cast<AtomId>(atom))) {
    const MlnClauseG& clause = network.clause(ci);
    double w = clause.hard ? 1e9 : clause.weight;
    bool sat_before = GroundNetwork::ClauseSatisfied(clause, world);
    // Evaluate after the hypothetical flip without copying the world.
    bool sat_after = false;
    for (const auto& lit : clause.literals) {
      bool value = world[static_cast<size_t>(lit.atom)];
      if (static_cast<size_t>(lit.atom) == atom) value = !value;
      if (value == lit.positive) {
        sat_after = true;
        break;
      }
    }
    if (sat_before && !sat_after) delta += w;
    if (!sat_before && sat_after) delta -= w;
  }
  return delta;
}

}  // namespace

std::vector<bool> MaxWalkSat(const GroundNetwork& network,
                             const WalkSatOptions& options, double* best_cost) {
  const size_t n = network.num_atoms();
  std::vector<bool> best(n, false);
  double best_c = std::numeric_limits<double>::infinity();
  if (n == 0) {
    if (best_cost) *best_cost = 0.0;
    return best;
  }

  Rng rng(options.seed);
  std::vector<size_t> unsat;
  for (int restart = 0; restart < std::max(1, options.restarts); ++restart) {
    std::vector<bool> world(n);
    for (size_t a = 0; a < n; ++a) world[a] = rng.NextBool(0.5);
    double cost = network.ViolationCost(world);
    if (cost < best_c) {
      best_c = cost;
      best = world;
    }
    for (int flip = 0; flip < options.max_flips && best_c > 0.0; ++flip) {
      // Collect currently unsatisfied clauses.
      unsat.clear();
      for (size_t ci = 0; ci < network.num_clauses(); ++ci) {
        if (!GroundNetwork::ClauseSatisfied(network.clause(ci), world)) {
          unsat.push_back(ci);
        }
      }
      if (unsat.empty()) break;  // current world satisfies everything
      const MlnClauseG& clause = network.clause(unsat[rng.NextIndex(unsat.size())]);
      size_t chosen_atom;
      if (rng.NextBool(options.p_random)) {
        chosen_atom = static_cast<size_t>(
            clause.literals[rng.NextIndex(clause.literals.size())].atom);
      } else {
        // Greedy: flip an atom of the clause minimizing the cost delta.
        // Ties are broken uniformly at random — deterministic tie-breaking
        // biases the walk and can trap it on zero-delta plateaus.
        double best_delta = std::numeric_limits<double>::infinity();
        std::vector<size_t> best_atoms;
        for (const auto& lit : clause.literals) {
          double d = FlipDelta(network, world, static_cast<size_t>(lit.atom));
          if (d < best_delta) {
            best_delta = d;
            best_atoms.assign(1, static_cast<size_t>(lit.atom));
          } else if (d == best_delta) {
            best_atoms.push_back(static_cast<size_t>(lit.atom));
          }
        }
        chosen_atom = best_atoms[rng.NextIndex(best_atoms.size())];
      }
      cost += FlipDelta(network, world, chosen_atom);
      world[chosen_atom] = !world[chosen_atom];
      if (cost < best_c) {
        best_c = cost;
        best = world;
      }
    }
  }
  if (best_cost) *best_cost = best_c;
  return best;
}

}  // namespace mlnclean
