#include "errorgen/injector.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace mlnclean {

namespace {

uint64_t CellKey(TupleId tid, AttrId attr) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(tid)) << 32) |
         static_cast<uint32_t>(attr);
}

}  // namespace

GroundTruth::GroundTruth(Dataset clean, std::vector<InjectedError> errors)
    : clean_(std::move(clean)), errors_(std::move(errors)) {
  error_cells_.reserve(errors_.size() * 2);
  for (const auto& e : errors_) {
    error_cells_.insert(CellKey(e.tid, e.attr));
  }
}

bool GroundTruth::IsErrorCell(TupleId tid, AttrId attr) const {
  return error_cells_.count(CellKey(tid, attr)) > 0;
}

Value MakeTypo(const Value& v, Rng* rng) {
  if (v.size() < 2) {
    return v + static_cast<char>('a' + rng->NextIndex(26));
  }
  Value out = v;
  out.erase(rng->NextIndex(out.size()), 1);
  return out;
}

Value MakeReplacement(const Value& v, const std::vector<Value>& domain, Rng* rng) {
  // Count alternatives; bail to a typo if the domain is degenerate.
  size_t alternatives = 0;
  for (const auto& d : domain) {
    if (d != v) ++alternatives;
  }
  if (alternatives == 0) return MakeTypo(v, rng);
  size_t pick = rng->NextIndex(alternatives);
  for (const auto& d : domain) {
    if (d == v) continue;
    if (pick == 0) return d;
    --pick;
  }
  return MakeTypo(v, rng);  // unreachable
}

Result<DirtyDataset> InjectErrors(const Dataset& clean, const RuleSet& rules,
                                  const ErrorSpec& spec) {
  if (spec.error_rate < 0.0 || spec.error_rate > 1.0) {
    return Status::Invalid("error_rate must be in [0, 1]");
  }
  if (spec.replacement_ratio < 0.0 || spec.replacement_ratio > 1.0) {
    return Status::Invalid("replacement_ratio must be in [0, 1]");
  }

  // Candidate cells: (tuple, attribute) pairs "related to the integrity
  // constraints" — the attribute belongs to a rule that is in scope for
  // the tuple (a CFD only relates to the tuples its pattern applies to).
  std::vector<uint64_t> cells;
  std::vector<bool> attr_used(clean.num_attrs(), false);
  if (spec.restrict_to_rule_attrs && !rules.empty()) {
    for (TupleId tid = 0; tid < static_cast<TupleId>(clean.num_rows()); ++tid) {
      std::unordered_set<AttrId> attrs_here;
      for (const auto& rule : rules.rules()) {
        if (!rule.InScope(clean, tid)) continue;
        for (AttrId a : rule.attrs()) attrs_here.insert(a);
      }
      for (AttrId a : attrs_here) {
        cells.push_back(CellKey(tid, a));
        attr_used[static_cast<size_t>(a)] = true;
      }
    }
  } else {
    for (TupleId tid = 0; tid < static_cast<TupleId>(clean.num_rows()); ++tid) {
      for (AttrId a = 0; a < static_cast<AttrId>(clean.num_attrs()); ++a) {
        cells.push_back(CellKey(tid, a));
        attr_used[static_cast<size_t>(a)] = true;
      }
    }
  }

  if (spec.burst == 0) {
    return Status::Invalid("burst must be >= 1");
  }

  Rng rng(spec.seed);
  // The error rate is measured against the candidate cells (the attribute
  // values related to the integrity constraints): corrupting `rate` of
  // *all* cells while placing every error on the rule-related subset
  // would overload it whenever rules cover few attributes.
  const size_t want = static_cast<size_t>(
      std::llround(spec.error_rate * static_cast<double>(cells.size())));
  const size_t count = std::min(want, cells.size());

  // Sample `count` candidate cells without replacement.
  rng.Shuffle(&cells);
  if (spec.burst > 1) {
    // Cluster the corruption: visit tuples in shuffled order and take up
    // to `burst` of their candidate cells before moving on.
    std::unordered_map<TupleId, std::vector<uint64_t>> by_tuple;
    std::vector<TupleId> tuple_order;
    for (uint64_t cell : cells) {
      TupleId tid = static_cast<TupleId>(cell >> 32);
      auto [it, inserted] = by_tuple.emplace(tid, std::vector<uint64_t>{});
      if (inserted) tuple_order.push_back(tid);
      it->second.push_back(cell);
    }
    std::vector<uint64_t> clustered;
    clustered.reserve(count);
    size_t round = 0;
    while (clustered.size() < count) {
      bool any = false;
      for (TupleId tid : tuple_order) {
        auto& pool = by_tuple[tid];
        for (size_t k = 0; k < spec.burst && clustered.size() < count; ++k) {
          size_t idx = round * spec.burst + k;
          if (idx >= pool.size()) break;
          clustered.push_back(pool[idx]);
          any = true;
        }
        if (clustered.size() >= count) break;
      }
      if (!any) break;  // every tuple exhausted
      ++round;
    }
    cells = std::move(clustered);
  }
  cells.resize(std::min(count, cells.size()));

  // Precompute per-attribute domains (from the clean data) for replacement
  // errors.
  std::vector<std::vector<Value>> domains(clean.num_attrs());
  for (AttrId a = 0; a < static_cast<AttrId>(clean.num_attrs()); ++a) {
    if (attr_used[static_cast<size_t>(a)]) {
      domains[static_cast<size_t>(a)] = clean.Domain(a);
    }
  }

  Dataset dirty = clean.Clone();
  std::vector<InjectedError> errors;
  errors.reserve(count);
  size_t replacement_budget = static_cast<size_t>(
      std::llround(spec.replacement_ratio * static_cast<double>(count)));
  for (size_t i = 0; i < cells.size(); ++i) {
    TupleId tid = static_cast<TupleId>(cells[i] >> 32);
    AttrId attr = static_cast<AttrId>(cells[i] & 0xffffffffu);
    const Value& original = clean.at(tid, attr);
    InjectedError err;
    err.tid = tid;
    err.attr = attr;
    err.original = original;
    if (i < replacement_budget) {
      err.kind = ErrorKind::kReplacement;
      dirty.set(tid, attr,
                MakeReplacement(original, domains[static_cast<size_t>(attr)], &rng));
    } else {
      err.kind = ErrorKind::kTypo;
      dirty.set(tid, attr, MakeTypo(original, &rng));
    }
    errors.push_back(std::move(err));
  }

  return DirtyDataset{std::move(dirty), GroundTruth(clean.Clone(), std::move(errors))};
}

void AppendDuplicates(Dataset* data, double fraction, Rng* rng,
                      std::vector<std::pair<TupleId, TupleId>>* pairs) {
  const size_t base_rows = data->num_rows();
  const size_t copies = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(base_rows)));
  for (size_t i = 0; i < copies; ++i) {
    TupleId src = static_cast<TupleId>(rng->NextIndex(base_rows));
    // Same-dataset copy: the duplicate row is appended by id.
    data->AppendRowFrom(*data, src);
    if (pairs != nullptr) {
      pairs->emplace_back(static_cast<TupleId>(data->num_rows() - 1), src);
    }
  }
}

}  // namespace mlnclean
