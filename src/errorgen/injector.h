// Error injection (Section 7.1). The paper's generator, reproduced:
// typos delete one random letter of a value; replacement errors swap a
// value for a different value of the same attribute domain. Errors are
// placed on attributes related to the integrity constraints, the error
// rate is measured against the total number of attribute values, and the
// replacement/typo split is controlled by Rret.

#ifndef MLNCLEAN_ERRORGEN_INJECTOR_H_
#define MLNCLEAN_ERRORGEN_INJECTOR_H_

#include <unordered_set>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "rules/constraint.h"

namespace mlnclean {

/// Kind of injected instance-level error.
enum class ErrorKind { kTypo, kReplacement };

/// One injected error.
struct InjectedError {
  TupleId tid;
  AttrId attr;
  ErrorKind kind;
  Value original;
};

/// Injection parameters.
struct ErrorSpec {
  /// Fraction of the candidate attribute values to corrupt (paper
  /// default 5%). Candidates are the rule-related cells when
  /// restrict_to_rule_attrs is set, every cell otherwise.
  double error_rate = 0.05;
  /// Rret: fraction of errors that are replacement errors (rest: typos).
  double replacement_ratio = 0.5;
  /// Place errors only on cells related to the integrity constraints: the
  /// attribute belongs to a rule that is in scope for the tuple (a CFD
  /// only relates to tuples its pattern applies to). When false (or when
  /// the rule set is empty), every cell is a candidate.
  bool restrict_to_rule_attrs = true;
  /// Spatial clustering of errors: up to `burst` corrupted cells land in
  /// the same tuple before the injector moves on to another tuple. 1 =
  /// uniformly scattered cells; real dirty rows tend to be dirty in
  /// several fields at once.
  size_t burst = 1;
  uint64_t seed = 42;
};

/// The clean reference plus the injected error positions.
class GroundTruth {
 public:
  GroundTruth(Dataset clean, std::vector<InjectedError> errors);

  const Dataset& clean() const { return clean_; }
  const std::vector<InjectedError>& errors() const { return errors_; }
  size_t NumErrors() const { return errors_.size(); }

  /// True when the cell was corrupted by injection.
  bool IsErrorCell(TupleId tid, AttrId attr) const;

  /// Ground-truth value of a cell.
  const Value& TrueValue(TupleId tid, AttrId attr) const {
    return clean_.at(tid, attr);
  }

 private:
  Dataset clean_;
  std::vector<InjectedError> errors_;
  std::unordered_set<uint64_t> error_cells_;
};

/// Result of injection: the dirtied dataset plus its ground truth.
struct DirtyDataset {
  Dataset dirty;
  GroundTruth truth;
};

/// Corrupts `clean` per `spec`. The number of injected errors is
/// round(error_rate * #candidate cells); each chosen cell is corrupted
/// once and is guaranteed to differ from its original value.
Result<DirtyDataset> InjectErrors(const Dataset& clean, const RuleSet& rules,
                                  const ErrorSpec& spec);

/// Applies a typo to `v`: deletes one random character. Values of length
/// < 2 gain a random lowercase letter instead (deleting would produce an
/// empty/NULL value).
Value MakeTypo(const Value& v, Rng* rng);

/// Picks a value from `domain` different from `v`; falls back to a typo
/// when the domain has no alternative.
Value MakeReplacement(const Value& v, const std::vector<Value>& domain, Rng* rng);

/// Appends exact copies of `fraction * num_rows` randomly chosen tuples
/// (instance-level duplicates). Records (copy tid, source tid) pairs.
void AppendDuplicates(Dataset* data, double fraction, Rng* rng,
                      std::vector<std::pair<TupleId, TupleId>>* pairs);

}  // namespace mlnclean

#endif  // MLNCLEAN_ERRORGEN_INJECTOR_H_
