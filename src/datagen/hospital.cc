#include "datagen/hospital.h"

#include <array>

#include "common/random.h"
#include "rules/rule_parser.h"

namespace mlnclean {

namespace {

constexpr std::array<const char*, 30> kCities = {
    "DOTHAN",     "BOAZ",      "BIRMINGHAM", "MONTGOMERY", "HUNTSVILLE",
    "MOBILE",     "TUSCALOOSA", "DECATUR",   "AUBURN",     "FLORENCE",
    "GADSDEN",    "VESTAVIA",  "PHENIX",     "PRATTVILLE", "OPELIKA",
    "ANNISTON",   "ATHENS",    "SELMA",      "TROY",       "CULLMAN",
    "EUFAULA",    "OZARK",     "JASPER",     "FAIRHOPE",   "SARALAND",
    "ALBERTVILLE", "FOLEY",    "HOMEWOOD",   "HOOVER",     "MILLBROOK"};

constexpr std::array<const char*, 10> kStates = {"AL", "GA", "FL", "TN", "MS",
                                                 "LA", "SC", "NC", "KY", "VA"};

constexpr std::array<const char*, 20> kCounties = {
    "HOUSTON",  "MARSHALL", "JEFFERSON", "MONTGOMERY", "MADISON",
    "MOBILE",   "TUSCALOOSA", "MORGAN",  "LEE",        "LAUDERDALE",
    "ETOWAH",   "SHELBY",   "RUSSELL",   "AUTAUGA",    "CALHOUN",
    "LIMESTONE", "DALLAS",  "PIKE",      "CULLMAN",    "BARBOUR"};

constexpr std::array<const char*, 16> kHospitalNames = {
    "ALABAMA MEDICAL",  "ELIZA GENERAL",   "ST MARY",        "MERCY HEALTH",
    "UNITY HOSPITAL",   "GRACE MEDICAL",   "RIVERSIDE CARE", "NORTH REGIONAL",
    "SOUTH REGIONAL",   "LAKESIDE CLINIC", "PIEDMONT CARE",  "CRESTWOOD",
    "BAPTIST MEDICAL",  "HIGHLANDS",       "PROVIDENCE",     "SUMMIT HEALTH"};

constexpr std::array<const char*, 24> kMeasureNames = {
    "CLABSI ICU",           "CAUTI ICU",          "SSI COLON",
    "SSI HYSTERECTOMY",     "MRSA BACTEREMIA",    "C DIFF",
    "CLABSI WARD",          "CAUTI WARD",         "VAP ICU",
    "SEPSIS CARE",          "HAND HYGIENE",       "FLU VACCINATION",
    "READMISSION RATE",     "MORTALITY RATE",     "PATIENT SAFETY",
    "INFECTION CONTROL",    "ANTIBIOTIC USE",     "BLOOD CULTURE",
    "SURGICAL TIMING",      "WOUND CARE",         "CATHETER CARE",
    "VENTILATOR CARE",      "ISOLATION PROTOCOL", "STERILIZATION AUDIT"};

}  // namespace

Result<Workload> MakeHospitalWorkload(const HospitalConfig& config) {
  if (config.num_hospitals == 0 || config.num_measures == 0) {
    return Status::Invalid("hospital generator needs >= 1 hospital and measure");
  }
  MLN_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({"ProviderID", "HospitalName", "City", "State", "ZIPCode",
                    "CountyName", "PhoneNumber", "MeasureID", "MeasureName"}));

  Rng rng(config.seed);

  // City -> (state, county, zip prefix) assignments: each city belongs to
  // exactly one state and county so the FDs ZIPCode->City, ZIPCode->County
  // and the phone/state rules can hold by construction.
  struct CityInfo {
    std::string name;
    std::string state;
    std::string county;
  };
  std::vector<CityInfo> cities;
  cities.reserve(kCities.size());
  for (size_t i = 0; i < kCities.size(); ++i) {
    cities.push_back(CityInfo{kCities[i], kStates[i % kStates.size()],
                              kCounties[i % kCounties.size()]});
  }

  // Hospitals: each gets a unique provider id and phone number, one city
  // (hence state/county), and a zip unique to the hospital (a zip maps to
  // one city, but a city may have several zips).
  struct Hospital {
    std::string provider_id;
    std::string name;
    size_t city;
    std::string zip;
    std::string phone;
  };
  std::vector<Hospital> hospitals;
  hospitals.reserve(config.num_hospitals);
  for (size_t h = 0; h < config.num_hospitals; ++h) {
    Hospital hosp;
    hosp.provider_id = "P" + std::to_string(10000 + h);
    hosp.name = std::string(kHospitalNames[h % kHospitalNames.size()]) + " " +
                std::to_string(h / kHospitalNames.size() + 1);
    hosp.city = rng.NextIndex(cities.size());
    hosp.zip = "3" + std::to_string(5000 + hosp.city) + std::to_string(h % 10);
    hosp.phone = "334" + std::to_string(1000000 + h * 13 % 9000000);
    hospitals.push_back(std::move(hosp));
  }

  // Measures: id -> name is functional.
  std::vector<std::pair<std::string, std::string>> measures;
  measures.reserve(config.num_measures);
  for (size_t m = 0; m < config.num_measures; ++m) {
    std::string name = std::string(kMeasureNames[m % kMeasureNames.size()]);
    if (m >= kMeasureNames.size()) {
      name += " V" + std::to_string(m / kMeasureNames.size() + 1);
    }
    measures.emplace_back("M" + std::to_string(100 + m), std::move(name));
  }

  const size_t all_pairs = config.num_hospitals * config.num_measures;
  const size_t target = config.num_rows == 0 ? all_pairs : config.num_rows;

  Dataset data(schema);
  data.Reserve(target);
  for (size_t i = 0; i < target; ++i) {
    const Hospital& h = hospitals[(i / config.num_measures) % config.num_hospitals];
    const auto& m = measures[i % config.num_measures];
    const CityInfo& city = cities[h.city];
    MLN_RETURN_NOT_OK(data.Append({h.provider_id, h.name, city.name, city.state,
                                   h.zip, city.county, h.phone, m.first, m.second}));
  }

  // Table 4, HAI rules: six FDs plus one DC.
  MLN_ASSIGN_OR_RETURN(
      RuleSet rules,
      ParseRules(schema,
                 "FD: PhoneNumber -> ZIPCode\n"
                 "FD: PhoneNumber -> State\n"
                 "FD: ZIPCode -> City\n"
                 "FD: MeasureID -> MeasureName\n"
                 "FD: ZIPCode -> CountyName\n"
                 "FD: ProviderID -> City, PhoneNumber\n"
                 "DC: !(PhoneNumber(t1)=PhoneNumber(t2) & State(t1)!=State(t2))\n"));

  return Workload{"HAI", std::move(data), std::move(rules)};
}

}  // namespace mlnclean
