// The running example of the paper: the six-tuple hospital sample of
// Table 1 with rules r1 (FD), r2 (DC), r3 (CFD), plus its expected clean
// version. Used by tests, the quickstart example, and documentation.

#ifndef MLNCLEAN_DATAGEN_SAMPLE_H_
#define MLNCLEAN_DATAGEN_SAMPLE_H_

#include "common/result.h"
#include "datagen/workload.h"

namespace mlnclean {

/// Table 1 exactly as printed (six tuples, errors included).
Result<Dataset> SampleHospitalDirty();

/// The ground-truth clean version of Table 1: t2's typo fixed, t3's city
/// and phone corrected, t4's state corrected.
Result<Dataset> SampleHospitalClean();

/// Rules r1-r3 of Example 1 over the sample schema (HN, CT, ST, PN).
Result<RuleSet> SampleHospitalRules();

}  // namespace mlnclean

#endif  // MLNCLEAN_DATAGEN_SAMPLE_H_
