#include "datagen/tpch.h"

#include <array>

#include "common/random.h"
#include "rules/rule_parser.h"

namespace mlnclean {

namespace {

constexpr std::array<const char*, 25> kNations = {
    "ALGERIA",    "ARGENTINA", "BRAZIL",  "CANADA",     "EGYPT",
    "ETHIOPIA",   "FRANCE",    "GERMANY", "INDIA",      "INDONESIA",
    "IRAN",       "IRAQ",      "JAPAN",   "JORDAN",     "KENYA",
    "MOROCCO",    "MOZAMBIQUE", "PERU",   "CHINA",      "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA",  "UNITED KINGDOM", "UNITED STATES"};

constexpr std::array<const char*, 8> kStreets = {
    "MAPLE ST", "OAK AVE",  "CEDAR RD", "PINE LN",
    "ELM DR",   "BIRCH CT", "ASH BLVD", "WALNUT WAY"};

}  // namespace

Result<Workload> MakeTpchWorkload(const TpchConfig& config) {
  if (config.num_customers == 0) {
    return Status::Invalid("tpch generator needs >= 1 customer");
  }
  MLN_ASSIGN_OR_RETURN(Schema schema,
                       Schema::Make({"CustKey", "Name", "Address", "Nation",
                                     "OrderKey", "PartKey", "Quantity",
                                     "ExtendedPrice"}));

  Rng rng(config.seed);

  struct Customer {
    std::string key;
    std::string name;
    std::string address;
    std::string nation;
  };
  std::vector<Customer> customers;
  customers.reserve(config.num_customers);
  for (size_t c = 0; c < config.num_customers; ++c) {
    Customer cust;
    cust.key = "C" + std::to_string(100000 + c);
    cust.name = "Customer#" + std::to_string(100000 + c);
    cust.address = std::to_string(100 + rng.NextIndex(900)) + " " +
                   kStreets[rng.NextIndex(kStreets.size())] + " #" +
                   std::to_string(c);
    cust.nation = kNations[rng.NextIndex(kNations.size())];
    customers.push_back(std::move(cust));
  }

  Dataset data(schema);
  data.Reserve(config.num_rows);
  for (size_t i = 0; i < config.num_rows; ++i) {
    const Customer& cust = customers[rng.NextIndex(customers.size())];
    size_t quantity = 1 + rng.NextIndex(50);
    size_t unit_price = 100 + rng.NextIndex(9900);
    MLN_RETURN_NOT_OK(
        data.Append({cust.key, cust.name, cust.address, cust.nation,
                     "O" + std::to_string(1000000 + rng.NextIndex(9000000)),
                     "PT" + std::to_string(10000 + rng.NextIndex(90000)),
                     std::to_string(quantity),
                     std::to_string(quantity * unit_price)}));
  }

  // Table 4, TPC-H rule.
  MLN_ASSIGN_OR_RETURN(RuleSet rules, ParseRules(schema, "FD: CustKey -> Address\n"));

  return Workload{"TPC-H", std::move(data), std::move(rules)};
}

}  // namespace mlnclean
