#include "datagen/sample.h"

#include "rules/rule_parser.h"

namespace mlnclean {

namespace {

Result<Schema> SampleSchema() { return Schema::Make({"HN", "CT", "ST", "PN"}); }

}  // namespace

Result<Dataset> SampleHospitalDirty() {
  MLN_ASSIGN_OR_RETURN(Schema schema, SampleSchema());
  return Dataset::Make(std::move(schema),
                       {
                           {"ALABAMA", "DOTHAN", "AL", "3347938701"},  // t1
                           {"ALABAMA", "DOTH", "AL", "3347938701"},    // t2: typo
                           {"ELIZA", "DOTHAN", "AL", "2567638410"},    // t3: replaced
                           {"ELIZA", "BOAZ", "AK", "2567688400"},      // t4: wrong ST
                           {"ELIZA", "BOAZ", "AL", "2567688400"},      // t5
                           {"ELIZA", "BOAZ", "AL", "2567688400"},      // t6
                       });
}

Result<Dataset> SampleHospitalClean() {
  MLN_ASSIGN_OR_RETURN(Schema schema, SampleSchema());
  return Dataset::Make(std::move(schema),
                       {
                           {"ALABAMA", "DOTHAN", "AL", "3347938701"},
                           {"ALABAMA", "DOTHAN", "AL", "3347938701"},
                           {"ELIZA", "BOAZ", "AL", "2567688400"},
                           {"ELIZA", "BOAZ", "AL", "2567688400"},
                           {"ELIZA", "BOAZ", "AL", "2567688400"},
                           {"ELIZA", "BOAZ", "AL", "2567688400"},
                       });
}

Result<RuleSet> SampleHospitalRules() {
  MLN_ASSIGN_OR_RETURN(Schema schema, SampleSchema());
  return ParseRules(schema,
                    "FD: CT -> ST\n"
                    "DC: !(PN(t1)=PN(t2) & ST(t1)!=ST(t2))\n"
                    "CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400\n");
}

}  // namespace mlnclean
