// CAR-like generator: a used-vehicle dataset shaped like the paper's CAR
// workload (cars.com): attributes model, make, type, year, condition,
// wheelDrive, doors, engine, with the Table 4 rules
//     CFD: Make=acura, Type -> Doors
//     FD:  Model, Type -> Make.
// The dataset is *sparse*: each (model, type) listing appears only a
// handful of times, so reason keys have small support — the property that
// makes HoloClean-style learning fragile in Figure 7(a).

#ifndef MLNCLEAN_DATAGEN_CAR_H_
#define MLNCLEAN_DATAGEN_CAR_H_

#include <cstdint>

#include "common/result.h"
#include "datagen/workload.h"

namespace mlnclean {

/// Size/seed knobs of the CAR-like generator.
struct CarConfig {
  size_t num_makes = 12;           // includes "acura"
  size_t models_per_make = 25;
  size_t num_rows = 5000;
  /// Mean listings per (model, type) pair; small values keep the data
  /// sparse like the real CAR scrape.
  size_t listings_per_model = 3;
  uint64_t seed = 11;
};

/// Generates the workload (schema: Model, Make, Type, Year, Condition,
/// WheelDrive, Doors, Engine).
Result<Workload> MakeCarWorkload(const CarConfig& config);

}  // namespace mlnclean

#endif  // MLNCLEAN_DATAGEN_CAR_H_
