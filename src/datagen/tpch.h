// TPC-H-like generator: a synthetic dataset shaped like the paper's
// TPC-H workload — a denormalized join of the customer and lineitem
// tables with the Table 4 rule CustKey -> Address. Used by the
// distributed experiments (Figure 15, Table 6).

#ifndef MLNCLEAN_DATAGEN_TPCH_H_
#define MLNCLEAN_DATAGEN_TPCH_H_

#include <cstdint>

#include "common/result.h"
#include "datagen/workload.h"

namespace mlnclean {

/// Size/seed knobs of the TPC-H-like generator.
struct TpchConfig {
  size_t num_customers = 500;
  size_t num_rows = 20000;
  uint64_t seed = 23;
};

/// Generates the workload (schema: CustKey, Name, Address, Nation,
/// OrderKey, PartKey, Quantity, ExtendedPrice).
Result<Workload> MakeTpchWorkload(const TpchConfig& config);

}  // namespace mlnclean

#endif  // MLNCLEAN_DATAGEN_TPCH_H_
