#include "datagen/car.h"

#include <array>

#include "common/random.h"
#include "rules/rule_parser.h"

namespace mlnclean {

namespace {

constexpr std::array<const char*, 12> kMakes = {
    "acura", "toyota", "honda", "ford",   "chevrolet", "nissan",
    "bmw",   "audi",   "mazda", "subaru", "hyundai",   "kia"};

constexpr std::array<const char*, 6> kTypes = {"sedan", "suv",       "coupe",
                                               "truck", "hatchback", "van"};

// Doors per body type; the CFD Make=acura, Type -> Doors binds the acura
// rows to this mapping, and the other makes follow it too.
constexpr std::array<const char*, 6> kDoorsByType = {"4", "5", "2", "2", "5", "4"};

constexpr std::array<const char*, 5> kConditions = {"new", "like new", "good",
                                                    "fair", "salvage"};

constexpr std::array<const char*, 3> kWheelDrives = {"fwd", "rwd", "awd"};

constexpr std::array<const char*, 6> kEngines = {"1.5L I4", "2.0L I4", "2.5L I4",
                                                 "3.0L V6", "3.5L V6", "5.0L V8"};

// Model name pool. Real model names are several edits apart from one
// another, which is what lets AGP re-attach a corrupted model key to its
// own group instead of a stranger's; the pool mirrors that property.
constexpr std::array<const char*, 126> kModelNames = {
    "accord",    "camry",     "corolla",   "civic",      "altima",
    "sentra",    "maxima",    "impala",    "malibu",     "silverado",
    "tahoe",     "suburban",  "equinox",   "traverse",   "cruze",
    "fusion",    "focus",     "fiesta",    "mustang",    "explorer",
    "expedition", "ranger",   "bronco",    "escape",     "odyssey",
    "pilot",     "passport",  "ridgeline", "insight",    "legend",
    "integra",   "vigor",     "prelude",   "avalon",     "sienna",
    "highlander", "tacoma",   "tundra",    "venza",      "supra",
    "yaris",     "prius",     "sequoia",   "pathfinder", "murano",
    "rogue",     "frontier",  "titan",     "armada",     "juke",
    "leaf",      "versa",     "quest",     "xterra",     "outback",
    "forester",  "impreza",   "legacy",    "crosstrek",  "ascent",
    "baja",      "tribeca",   "elantra",   "sonata",     "tucson",
    "santafe",   "palisade",  "kona",      "veloster",   "azera",
    "genesis",   "venue",     "sorento",   "sportage",   "telluride",
    "stinger",   "cadenza",   "sedona",    "carnival",   "mohave",
    "borrego",   "miata",     "protege",   "tribute",    "millenia",
    "navajo",    "lantis",    "demio",     "axela",      "atenza",
    "luce",      "cosmo",     "capella",   "familia",    "bongo",
    "premacy",   "verisa",    "biante",    "carol",      "flair",
    "quattro",   "allroad",   "avant",     "etron",      "rosemeyer",
    "nuvolari",  "imola",     "nardo",     "lemans",     "avus",
    "touareg",   "passat",    "jetta",     "golf",       "tiguan",
    "arteon",    "atlas",     "beetle",    "scirocco",   "corrado",
    "vanagon",   "karmann",   "phideon",   "lavida",     "bora",
    "magotan"};

std::string ModelName(size_t index) {
  std::string name = kModelNames[index % kModelNames.size()];
  if (index >= kModelNames.size()) {
    name += " mk" + std::to_string(index / kModelNames.size() + 1);
  }
  return name;
}

}  // namespace

Result<Workload> MakeCarWorkload(const CarConfig& config) {
  if (config.num_makes == 0 || config.models_per_make == 0) {
    return Status::Invalid("car generator needs >= 1 make and model");
  }
  MLN_ASSIGN_OR_RETURN(Schema schema,
                       Schema::Make({"Model", "Make", "Type", "Year", "Condition",
                                     "WheelDrive", "Doors", "Engine"}));

  Rng rng(config.seed);
  const size_t num_makes = std::min(config.num_makes, kMakes.size());

  // Catalogue: every model belongs to one make and comes in exactly one
  // body type (hence one door count), as real listings overwhelmingly do.
  struct ModelInfo {
    std::string model;
    std::string make;
    size_t type;
  };
  std::vector<ModelInfo> catalogue;
  catalogue.reserve(num_makes * config.models_per_make);
  for (size_t mk = 0; mk < num_makes; ++mk) {
    for (size_t md = 0; md < config.models_per_make; ++md) {
      size_t index = mk * config.models_per_make + md;
      catalogue.push_back(ModelInfo{ModelName(index), kMakes[mk],
                                    (index * 7 + 3) % kTypes.size()});
    }
  }

  Dataset data(schema);
  data.Reserve(config.num_rows);
  size_t produced = 0;
  // Cycle over the catalogue in bursts of at least two listings so every
  // (model, type) reason key has support >= 2: singleton groups then
  // signal corruption, which is exactly what AGP keys on at τ = 1.
  std::vector<size_t> order(catalogue.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  while (produced < config.num_rows) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      if (produced >= config.num_rows) break;
      const ModelInfo& mi = catalogue[idx];
      size_t listings =
          2 + rng.NextIndex(std::max<size_t>(1, config.listings_per_model));
      for (size_t l = 0; l < listings && produced < config.num_rows;
           ++l, ++produced) {
        MLN_RETURN_NOT_OK(data.Append(
            {mi.model, mi.make, kTypes[mi.type],
             std::to_string(2005 + rng.NextIndex(20)),
             kConditions[rng.NextIndex(kConditions.size())],
             kWheelDrives[rng.NextIndex(kWheelDrives.size())],
             kDoorsByType[mi.type], kEngines[rng.NextIndex(kEngines.size())]}));
      }
    }
  }

  // Table 4, CAR rules.
  MLN_ASSIGN_OR_RETURN(RuleSet rules,
                       ParseRules(schema,
                                  "CFD: Make=acura, Type -> Doors\n"
                                  "FD: Model, Type -> Make\n"));

  return Workload{"CAR", std::move(data), std::move(rules)};
}

}  // namespace mlnclean
