// A workload bundles a clean dataset with its integrity constraints —
// the unit the experiment harnesses corrupt, clean, and score.

#ifndef MLNCLEAN_DATAGEN_WORKLOAD_H_
#define MLNCLEAN_DATAGEN_WORKLOAD_H_

#include <string>

#include "dataset/dataset.h"
#include "rules/constraint.h"

namespace mlnclean {

/// A named clean dataset plus the rules that hold on it by construction.
struct Workload {
  std::string name;
  Dataset clean;
  RuleSet rules;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_DATAGEN_WORKLOAD_H_
