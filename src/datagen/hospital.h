// HAI-like generator: a healthcare-associated-infections dataset shaped
// like the paper's HAI workload (data.medicare.gov). Rows are
// hospital x measure observations; the Table 4 HAI rules (six FDs and one
// DC) hold on the generated data by construction. The dataset is *dense*:
// every hospital contributes one row per measure, so reason keys have
// large support.

#ifndef MLNCLEAN_DATAGEN_HOSPITAL_H_
#define MLNCLEAN_DATAGEN_HOSPITAL_H_

#include <cstdint>

#include "common/result.h"
#include "datagen/workload.h"

namespace mlnclean {

/// Size/seed knobs of the HAI-like generator.
struct HospitalConfig {
  size_t num_hospitals = 100;
  size_t num_measures = 20;
  /// Target row count; rows are hospital x measure pairs cycled until the
  /// target is met (0 = all pairs once).
  size_t num_rows = 0;
  uint64_t seed = 7;
};

/// Generates the workload (schema: ProviderID, HospitalName, City, State,
/// ZIPCode, CountyName, PhoneNumber, MeasureID, MeasureName).
Result<Workload> MakeHospitalWorkload(const HospitalConfig& config);

}  // namespace mlnclean

#endif  // MLNCLEAN_DATAGEN_HOSPITAL_H_
