// Integrity constraints (Section 3): functional dependencies (FDs),
// conditional functional dependencies (CFDs), and denial constraints (DCs),
// plus their decomposition into a *reason part* and a *result part*
// (Section 4) and their clausal MLN form.

#ifndef MLNCLEAN_RULES_CONSTRAINT_H_
#define MLNCLEAN_RULES_CONSTRAINT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/schema.h"

namespace mlnclean {

/// The three constraint classes MLNClean supports.
enum class RuleKind { kFd, kCfd, kDc };

const char* RuleKindName(RuleKind kind);

/// Comparison operator of a DC predicate.
enum class PredOp { kEq, kNeq, kLt, kLeq, kGt, kGeq };

const char* PredOpSymbol(PredOp op);

/// One DC predicate `left_attr(t) op right_attr(t')` over a tuple pair.
struct DcPredicate {
  AttrId left_attr;
  PredOp op;
  AttrId right_attr;

  /// Evaluates the predicate on concrete values, comparing numerically when
  /// both sides parse as numbers and lexicographically otherwise.
  bool Eval(const Value& left, const Value& right) const;
};

/// One CFD pattern cell: an attribute plus either a constant or a wildcard.
struct CfdPattern {
  AttrId attr;
  std::optional<Value> constant;  // nullopt = wildcard variable "_"

  bool is_constant() const { return constant.has_value(); }
};

/// Id-resolved tuple-scope test bound to one dataset (see
/// Constraint::MakeScopeFilter). Per tuple it compares column ids against
/// pre-resolved CFD constant ids — no string compares on the hot path.
class ScopeFilter {
 public:
  bool InScope(TupleId tid) const {
    if (!check_) return true;
    for (const auto& [col, id] : matchers_) {
      if ((*col)[static_cast<size_t>(tid)] == id) return true;
    }
    return false;
  }

 private:
  friend class Constraint;
  bool check_ = false;  // false: every tuple in scope
  // (column, constant id) per lhs constant present in the dictionary.
  std::vector<std::pair<const std::vector<ValueId>*, ValueId>> matchers_;
};

/// An integrity constraint with its reason/result decomposition.
///
/// * FD   `A1,..,Ak -> B1,..,Bm`: reason = lhs attrs, result = rhs attrs.
/// * CFD  `A1=c1,..,Ak -> B=c`: patterns may carry constants; reason = lhs
///   attrs, result = rhs attrs.
/// * DC   `!(p1 & .. & pn)`: the last predicate is the result part, the
///   others the reason part (Section 4).
class Constraint {
 public:
  /// Builds an FD. Attribute lists must be non-empty and disjoint.
  static Result<Constraint> MakeFd(const Schema& schema, std::vector<AttrId> lhs,
                                   std::vector<AttrId> rhs);

  /// Builds a CFD from lhs/rhs patterns.
  static Result<Constraint> MakeCfd(const Schema& schema, std::vector<CfdPattern> lhs,
                                    std::vector<CfdPattern> rhs);

  /// Builds a DC from its predicate list (>= 2 predicates).
  static Result<Constraint> MakeDc(const Schema& schema,
                                   std::vector<DcPredicate> predicates);

  RuleKind kind() const { return kind_; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Rule-level MLN weight (Definition 1). Defaults to 1; ground-rule
  /// weights are learned separately (Section 5).
  double rule_weight() const { return rule_weight_; }
  void set_rule_weight(double w) { rule_weight_ = w; }

  /// Attributes of the reason part, in declaration order.
  const std::vector<AttrId>& reason_attrs() const { return reason_attrs_; }
  /// Attributes of the result part, in declaration order.
  const std::vector<AttrId>& result_attrs() const { return result_attrs_; }

  /// All attributes this rule touches (reason then result).
  std::vector<AttrId> attrs() const;

  const std::vector<CfdPattern>& lhs_patterns() const { return lhs_patterns_; }
  const std::vector<CfdPattern>& rhs_patterns() const { return rhs_patterns_; }
  const std::vector<DcPredicate>& predicates() const { return predicates_; }

  /// Whether a tuple contributes a piece of data (γ) to this rule's block.
  /// FDs and DCs admit every tuple. CFDs admit a tuple when it matches at
  /// least one lhs constant pattern — the membership criterion implied by
  /// Figure 2 of the paper (see DESIGN.md). The (data, tid) overload reads
  /// the cells straight off the columns without materializing a row.
  bool InScope(const std::vector<Value>& row) const;
  bool InScope(const Dataset& data, TupleId tid) const;

  /// The scope test pre-resolved against `data`'s dictionaries for
  /// whole-table scans (grounding): CFD lhs constants become ids up
  /// front (a constant absent from an attribute's dictionary can never
  /// match), and InScope(tid) is id compares only. The filter borrows
  /// `data`'s columns and must not outlive them or survive appends.
  ScopeFilter MakeScopeFilter(const Dataset& data) const;

  /// Whether a tuple matches *all* lhs constants (CFD antecedent holds).
  bool MatchesAllLhsConstants(const std::vector<Value>& row) const;
  bool MatchesAllLhsConstants(const Dataset& data, TupleId tid) const;

  /// True when the index builder can use this rule: FDs, CFDs, and DCs
  /// whose reason predicates are same-attribute equalities and whose result
  /// predicate is a same-attribute disequality.
  bool IndexCompatible() const;

  /// Reason-part values of a tuple (the group key of Section 4).
  std::vector<Value> ReasonValues(const std::vector<Value>& row) const;
  std::vector<Value> ReasonValues(const Dataset& data, TupleId tid) const;
  /// Result-part values of a tuple.
  std::vector<Value> ResultValues(const std::vector<Value>& row) const;
  std::vector<Value> ResultValues(const Dataset& data, TupleId tid) const;

  /// Clausal MLN form, e.g. "!CT | ST" for the FD CT -> ST (Section 3).
  std::string MlnClause(const Schema& schema) const;

  /// Human-readable rendering, e.g. "FD: CT -> ST".
  std::string ToString(const Schema& schema) const;

  /// Round-trippable DSL rendering: ParseRule(schema, CanonicalText(schema))
  /// reconstructs this constraint exactly (kind, attributes, patterns,
  /// predicates — name and rule weight travel beside the text, not in it).
  /// Unlike ToString, attribute names and CFD constants are quoted via
  /// QuoteRuleToken whenever they could be misparsed. This is the rule
  /// encoding the model snapshot persists. DC attribute names cannot be
  /// quoted by the DSL grammar, so DCs over names containing DSL
  /// metacharacters ('(', ')', '&', operators) are not representable.
  std::string CanonicalText(const Schema& schema) const;

 private:
  Constraint() = default;

  RuleKind kind_ = RuleKind::kFd;
  std::string name_;
  double rule_weight_ = 1.0;
  std::vector<AttrId> reason_attrs_;
  std::vector<AttrId> result_attrs_;
  std::vector<CfdPattern> lhs_patterns_;  // CFD only
  std::vector<CfdPattern> rhs_patterns_;  // CFD only
  std::vector<DcPredicate> predicates_;   // DC only
};

/// A named, ordered collection of constraints over one schema.
class RuleSet {
 public:
  explicit RuleSet(Schema schema) : schema_(std::move(schema)) {}

  /// Adds a rule, assigning the name "r<k>" if it has none.
  void Add(Constraint rule);

  const Schema& schema() const { return schema_; }
  size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }
  const Constraint& rule(size_t i) const { return rules_[i]; }
  const std::vector<Constraint>& rules() const { return rules_; }

 private:
  Schema schema_;
  std::vector<Constraint> rules_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_RULES_CONSTRAINT_H_
