// Text DSL for integrity constraints:
//
//   FD:  CT -> ST
//   FD:  Model, Type -> Make
//   CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400
//   CFD: Make=acura, Type -> Doors
//   DC:  !(PN(t1)=PN(t2) & ST(t1)!=ST(t2))
//
// Attribute names must exist in the schema. Constants may be quoted with
// double quotes when they contain ',', '-', '>' or spaces.

#ifndef MLNCLEAN_RULES_RULE_PARSER_H_
#define MLNCLEAN_RULES_RULE_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rules/constraint.h"

namespace mlnclean {

/// Parses one rule definition against `schema`.
Result<Constraint> ParseRule(const Schema& schema, std::string_view text);

/// Renders an attribute name or constant as a DSL token ParseRule reads
/// back verbatim: tokens that could be misparsed (empty, the wildcard "_",
/// or containing quotes, separators, operators, '#', or edge whitespace)
/// are double-quoted, with embedded '"' escaped as '""' (CSV style). This
/// is the encoder half of Constraint::CanonicalText — the snapshot codec
/// round-trips rules as canonical DSL text through ParseRule.
std::string QuoteRuleToken(std::string_view token);

/// Parses a newline-separated list of rules; blank lines and lines starting
/// with '#' are ignored. Rules are named r1..rn in order.
Result<RuleSet> ParseRules(const Schema& schema, std::string_view text);

}  // namespace mlnclean

#endif  // MLNCLEAN_RULES_RULE_PARSER_H_
