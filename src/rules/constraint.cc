#include "rules/constraint.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <unordered_set>

#include "rules/rule_parser.h"

namespace mlnclean {

const char* RuleKindName(RuleKind kind) {
  switch (kind) {
    case RuleKind::kFd:
      return "FD";
    case RuleKind::kCfd:
      return "CFD";
    case RuleKind::kDc:
      return "DC";
  }
  return "?";
}

const char* PredOpSymbol(PredOp op) {
  switch (op) {
    case PredOp::kEq:
      return "=";
    case PredOp::kNeq:
      return "!=";
    case PredOp::kLt:
      return "<";
    case PredOp::kLeq:
      return "<=";
    case PredOp::kGt:
      return ">";
    case PredOp::kGeq:
      return ">=";
  }
  return "?";
}

namespace {

bool ParseNumber(const Value& v, double* out) {
  if (v.empty()) return false;
  const char* begin = v.data();
  const char* end = begin + v.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

int CompareValues(const Value& a, const Value& b) {
  double na = 0, nb = 0;
  if (ParseNumber(a, &na) && ParseNumber(b, &nb)) {
    if (na < nb) return -1;
    if (na > nb) return 1;
    return 0;
  }
  return a.compare(b) < 0 ? -1 : (a == b ? 0 : 1);
}

Status ValidateAttrs(const Schema& schema, const std::vector<AttrId>& attrs,
                     const char* side) {
  if (attrs.empty()) {
    return Status::Invalid(std::string(side) + " attribute list is empty");
  }
  for (AttrId a : attrs) {
    if (!schema.Contains(a)) {
      return Status::Invalid(std::string(side) + " references attribute id " +
                             std::to_string(a) + " outside the schema");
    }
  }
  return Status::OK();
}

}  // namespace

bool DcPredicate::Eval(const Value& left, const Value& right) const {
  int cmp = CompareValues(left, right);
  switch (op) {
    case PredOp::kEq:
      return cmp == 0;
    case PredOp::kNeq:
      return cmp != 0;
    case PredOp::kLt:
      return cmp < 0;
    case PredOp::kLeq:
      return cmp <= 0;
    case PredOp::kGt:
      return cmp > 0;
    case PredOp::kGeq:
      return cmp >= 0;
  }
  return false;
}

Result<Constraint> Constraint::MakeFd(const Schema& schema, std::vector<AttrId> lhs,
                                      std::vector<AttrId> rhs) {
  MLN_RETURN_NOT_OK(ValidateAttrs(schema, lhs, "FD lhs"));
  MLN_RETURN_NOT_OK(ValidateAttrs(schema, rhs, "FD rhs"));
  std::unordered_set<AttrId> lhs_set(lhs.begin(), lhs.end());
  for (AttrId a : rhs) {
    if (lhs_set.count(a) > 0) {
      return Status::Invalid("FD attribute '" + schema.name(a) +
                             "' appears on both sides");
    }
  }
  Constraint c;
  c.kind_ = RuleKind::kFd;
  c.reason_attrs_ = std::move(lhs);
  c.result_attrs_ = std::move(rhs);
  return c;
}

Result<Constraint> Constraint::MakeCfd(const Schema& schema,
                                       std::vector<CfdPattern> lhs,
                                       std::vector<CfdPattern> rhs) {
  if (lhs.empty() || rhs.empty()) {
    return Status::Invalid("CFD pattern lists must be non-empty");
  }
  Constraint c;
  c.kind_ = RuleKind::kCfd;
  std::unordered_set<AttrId> seen;
  for (const auto& p : lhs) {
    if (!schema.Contains(p.attr)) {
      return Status::Invalid("CFD lhs attribute id out of range");
    }
    if (!seen.insert(p.attr).second) {
      return Status::Invalid("CFD repeats attribute '" + schema.name(p.attr) + "'");
    }
    c.reason_attrs_.push_back(p.attr);
  }
  for (const auto& p : rhs) {
    if (!schema.Contains(p.attr)) {
      return Status::Invalid("CFD rhs attribute id out of range");
    }
    if (!seen.insert(p.attr).second) {
      return Status::Invalid("CFD repeats attribute '" + schema.name(p.attr) + "'");
    }
    c.result_attrs_.push_back(p.attr);
  }
  c.lhs_patterns_ = std::move(lhs);
  c.rhs_patterns_ = std::move(rhs);
  return c;
}

Result<Constraint> Constraint::MakeDc(const Schema& schema,
                                      std::vector<DcPredicate> predicates) {
  if (predicates.size() < 2) {
    return Status::Invalid("DC needs at least two predicates (reason + result)");
  }
  for (const auto& p : predicates) {
    if (!schema.Contains(p.left_attr) || !schema.Contains(p.right_attr)) {
      return Status::Invalid("DC predicate references attribute outside the schema");
    }
  }
  Constraint c;
  c.kind_ = RuleKind::kDc;
  // Section 4: the last predicate is the result part, the rest the reason.
  for (size_t i = 0; i + 1 < predicates.size(); ++i) {
    c.reason_attrs_.push_back(predicates[i].left_attr);
  }
  c.result_attrs_.push_back(predicates.back().left_attr);
  c.predicates_ = std::move(predicates);
  return c;
}

std::vector<AttrId> Constraint::attrs() const {
  std::vector<AttrId> out = reason_attrs_;
  out.insert(out.end(), result_attrs_.begin(), result_attrs_.end());
  return out;
}

namespace {

// The row-based and columnar overload pairs below share these bodies;
// `get(attr)` reads one cell of the tuple under test.

template <typename GetCell>
bool InScopeImpl(RuleKind kind, const std::vector<CfdPattern>& lhs_patterns,
                 GetCell get) {
  if (kind != RuleKind::kCfd) return true;
  bool has_constant = false;
  for (const auto& p : lhs_patterns) {
    if (!p.is_constant()) continue;
    has_constant = true;
    if (get(p.attr) == *p.constant) return true;
  }
  // A CFD without lhs constants behaves like an FD: every tuple in scope.
  return !has_constant;
}

template <typename GetCell>
bool MatchesAllLhsConstantsImpl(RuleKind kind,
                                const std::vector<CfdPattern>& lhs_patterns,
                                GetCell get) {
  if (kind != RuleKind::kCfd) return true;
  for (const auto& p : lhs_patterns) {
    if (p.is_constant() && get(p.attr) != *p.constant) return false;
  }
  return true;
}

template <typename GetCell>
std::vector<Value> GatherValues(const std::vector<AttrId>& attrs, GetCell get) {
  std::vector<Value> out;
  out.reserve(attrs.size());
  for (AttrId a : attrs) out.push_back(get(a));
  return out;
}

// Cell accessors over the two tuple representations.
auto CellOf(const std::vector<Value>& row) {
  return [&row](AttrId a) -> const Value& { return row[static_cast<size_t>(a)]; };
}
auto CellOf(const Dataset& data, TupleId tid) {
  return [&data, tid](AttrId a) -> const Value& { return data.at(tid, a); };
}

}  // namespace

bool Constraint::InScope(const std::vector<Value>& row) const {
  return InScopeImpl(kind_, lhs_patterns_, CellOf(row));
}

bool Constraint::InScope(const Dataset& data, TupleId tid) const {
  return InScopeImpl(kind_, lhs_patterns_, CellOf(data, tid));
}

bool Constraint::MatchesAllLhsConstants(const std::vector<Value>& row) const {
  return MatchesAllLhsConstantsImpl(kind_, lhs_patterns_, CellOf(row));
}

bool Constraint::MatchesAllLhsConstants(const Dataset& data, TupleId tid) const {
  return MatchesAllLhsConstantsImpl(kind_, lhs_patterns_, CellOf(data, tid));
}

ScopeFilter Constraint::MakeScopeFilter(const Dataset& data) const {
  // Mirrors InScopeImpl ("at least one lhs constant matches; a CFD
  // without constants admits every tuple"), resolved to ids once.
  ScopeFilter f;
  if (kind_ != RuleKind::kCfd) return f;
  bool has_constant = false;
  for (const auto& p : lhs_patterns_) {
    if (!p.is_constant()) continue;
    has_constant = true;
    ValueId id = data.dict(p.attr).Find(*p.constant);
    if (id != kInvalidValueId) {
      f.matchers_.emplace_back(&data.column(p.attr), id);
    }
  }
  f.check_ = has_constant;
  return f;
}

bool Constraint::IndexCompatible() const {
  if (kind_ != RuleKind::kDc) return true;
  for (size_t i = 0; i + 1 < predicates_.size(); ++i) {
    const auto& p = predicates_[i];
    if (p.op != PredOp::kEq || p.left_attr != p.right_attr) return false;
  }
  const auto& last = predicates_.back();
  return last.op == PredOp::kNeq && last.left_attr == last.right_attr;
}

std::vector<Value> Constraint::ReasonValues(const std::vector<Value>& row) const {
  return GatherValues(reason_attrs_, CellOf(row));
}

std::vector<Value> Constraint::ReasonValues(const Dataset& data, TupleId tid) const {
  return GatherValues(reason_attrs_, CellOf(data, tid));
}

std::vector<Value> Constraint::ResultValues(const std::vector<Value>& row) const {
  return GatherValues(result_attrs_, CellOf(row));
}

std::vector<Value> Constraint::ResultValues(const Dataset& data, TupleId tid) const {
  return GatherValues(result_attrs_, CellOf(data, tid));
}

std::string Constraint::MlnClause(const Schema& schema) const {
  std::string out;
  auto append_lit = [&](bool negated, const std::string& pred,
                        const std::optional<Value>& constant) {
    if (!out.empty()) out += " | ";
    if (negated) out += "!";
    out += pred;
    if (constant.has_value()) out += "(\"" + *constant + "\")";
  };
  switch (kind_) {
    case RuleKind::kFd:
      for (AttrId a : reason_attrs_) append_lit(true, schema.name(a), std::nullopt);
      for (AttrId a : result_attrs_) append_lit(false, schema.name(a), std::nullopt);
      break;
    case RuleKind::kCfd:
      for (const auto& p : lhs_patterns_) {
        append_lit(true, schema.name(p.attr), p.constant);
      }
      for (const auto& p : rhs_patterns_) {
        append_lit(false, schema.name(p.attr), p.constant);
      }
      break;
    case RuleKind::kDc:
      // ¬(p1 ∧ … ∧ pn) == ¬p1 ∨ … ∨ ¬pn.
      for (const auto& p : predicates_) {
        if (!out.empty()) out += " | ";
        out += "!(";
        out += schema.name(p.left_attr) + "(t1) ";
        out += PredOpSymbol(p.op);
        out += " " + schema.name(p.right_attr) + "(t2))";
      }
      break;
  }
  return out;
}

std::string Constraint::ToString(const Schema& schema) const {
  std::string out = RuleKindName(kind_);
  out += ": ";
  switch (kind_) {
    case RuleKind::kFd: {
      for (size_t i = 0; i < reason_attrs_.size(); ++i) {
        if (i > 0) out += ", ";
        out += schema.name(reason_attrs_[i]);
      }
      out += " -> ";
      for (size_t i = 0; i < result_attrs_.size(); ++i) {
        if (i > 0) out += ", ";
        out += schema.name(result_attrs_[i]);
      }
      break;
    }
    case RuleKind::kCfd: {
      auto render = [&](const std::vector<CfdPattern>& ps) {
        std::string s;
        for (size_t i = 0; i < ps.size(); ++i) {
          if (i > 0) s += ", ";
          s += schema.name(ps[i].attr);
          if (ps[i].is_constant()) s += "=" + *ps[i].constant;
        }
        return s;
      };
      out += render(lhs_patterns_) + " -> " + render(rhs_patterns_);
      break;
    }
    case RuleKind::kDc: {
      out += "!(";
      for (size_t i = 0; i < predicates_.size(); ++i) {
        if (i > 0) out += " & ";
        const auto& p = predicates_[i];
        out += schema.name(p.left_attr) + "(t1)";
        out += PredOpSymbol(p.op);
        out += schema.name(p.right_attr) + "(t2)";
      }
      out += ")";
      break;
    }
  }
  return out;
}

std::string Constraint::CanonicalText(const Schema& schema) const {
  std::string out = RuleKindName(kind_);
  out += ": ";
  switch (kind_) {
    case RuleKind::kFd: {
      for (size_t i = 0; i < reason_attrs_.size(); ++i) {
        if (i > 0) out += ", ";
        out += QuoteRuleToken(schema.name(reason_attrs_[i]));
      }
      out += " -> ";
      for (size_t i = 0; i < result_attrs_.size(); ++i) {
        if (i > 0) out += ", ";
        out += QuoteRuleToken(schema.name(result_attrs_[i]));
      }
      break;
    }
    case RuleKind::kCfd: {
      auto render = [&](const std::vector<CfdPattern>& ps) {
        std::string s;
        for (size_t i = 0; i < ps.size(); ++i) {
          if (i > 0) s += ", ";
          s += QuoteRuleToken(schema.name(ps[i].attr));
          // Wildcards are canonically bare attribute names; the parser
          // reads a pattern without '=' as a wildcard.
          if (ps[i].is_constant()) s += "=" + QuoteRuleToken(*ps[i].constant);
        }
        return s;
      };
      out += render(lhs_patterns_) + " -> " + render(rhs_patterns_);
      break;
    }
    case RuleKind::kDc: {
      // The DC grammar has no quoting; this matches ToString (and is
      // round-trippable for any attribute name free of DSL
      // metacharacters, which MakeDc-hosted schemas are in practice).
      out += "!(";
      for (size_t i = 0; i < predicates_.size(); ++i) {
        if (i > 0) out += " & ";
        const auto& p = predicates_[i];
        out += schema.name(p.left_attr) + "(t1)";
        out += PredOpSymbol(p.op);
        out += schema.name(p.right_attr) + "(t2)";
      }
      out += ")";
      break;
    }
  }
  return out;
}

void RuleSet::Add(Constraint rule) {
  if (rule.name().empty()) {
    std::string name = "r";
    name += std::to_string(rules_.size() + 1);
    rule.set_name(std::move(name));
  }
  rules_.push_back(std::move(rule));
}

}  // namespace mlnclean
