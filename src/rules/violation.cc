#include "rules/violation.h"

#include <cstdint>
#include <unordered_map>

namespace mlnclean {

namespace {

// FD-style detection: group tuples by their reason-part dictionary ids; a
// group whose tuples disagree on the result ids is a violation. Within one
// dataset, id equality is value equality, so no keys or value strings are
// built. Groups are emitted in first-appearance order.
void DetectGrouped(const Dataset& data, const Constraint& rule, size_t rule_index,
                   bool require_all_constants, std::vector<Violation>* out) {
  const std::vector<AttrId>& reason_attrs = rule.reason_attrs();
  const std::vector<AttrId>& result_attrs = rule.result_attrs();
  std::vector<std::vector<TupleId>> groups;
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  for (TupleId tid = 0; tid < static_cast<TupleId>(data.num_rows()); ++tid) {
    if (require_all_constants && !rule.MatchesAllLhsConstants(data, tid)) continue;
    auto& bucket = buckets[HashRowIds(data, tid, reason_attrs)];
    size_t group_idx = groups.size();
    for (size_t gi : bucket) {
      if (SameRowIds(data, groups[gi].front(), tid, reason_attrs)) {
        group_idx = gi;
        break;
      }
    }
    if (group_idx == groups.size()) {
      bucket.push_back(group_idx);
      groups.emplace_back();
    }
    groups[group_idx].push_back(tid);
  }
  for (const auto& tids : groups) {
    if (tids.size() < 2) continue;
    bool conflict = false;
    for (size_t i = 1; i < tids.size(); ++i) {
      if (!SameRowIds(data, tids[0], tids[i], result_attrs)) {
        conflict = true;
        break;
      }
    }
    if (conflict) {
      out->push_back(Violation{rule_index, tids, result_attrs});
    }
  }
}

// Constant-rhs CFD: a tuple matching every lhs constant must carry the rhs
// constants.
void DetectCfdConstants(const Dataset& data, const Constraint& rule,
                        size_t rule_index, std::vector<Violation>* out) {
  for (TupleId tid = 0; tid < static_cast<TupleId>(data.num_rows()); ++tid) {
    if (!rule.MatchesAllLhsConstants(data, tid)) continue;
    for (const auto& p : rule.rhs_patterns()) {
      if (p.is_constant() && data.at(tid, p.attr) != *p.constant) {
        out->push_back(Violation{rule_index, {tid}, {p.attr}});
        break;
      }
    }
  }
}

// General DC: quadratic scan evaluating every predicate on ordered pairs.
// Predicates may be asymmetric (<, >), so both orders must be checked; the
// violating pair is reported in predicate order (t1, t2).
void DetectDcPairwise(const Dataset& data, const Constraint& rule, size_t rule_index,
                      std::vector<Violation>* out) {
  const auto n = static_cast<TupleId>(data.num_rows());
  for (TupleId i = 0; i < n; ++i) {
    for (TupleId j = 0; j < n; ++j) {
      if (i == j) continue;
      bool all_hold = true;
      for (const auto& p : rule.predicates()) {
        if (!p.Eval(data.at(i, p.left_attr), data.at(j, p.right_attr))) {
          all_hold = false;
          break;
        }
      }
      if (all_hold) {
        out->push_back(Violation{rule_index, {i, j}, rule.result_attrs()});
      }
    }
  }
}

}  // namespace

std::vector<Violation> FindViolations(const Dataset& data, const Constraint& rule,
                                      size_t rule_index) {
  std::vector<Violation> out;
  switch (rule.kind()) {
    case RuleKind::kFd:
      DetectGrouped(data, rule, rule_index, /*require_all_constants=*/false, &out);
      break;
    case RuleKind::kCfd: {
      bool rhs_has_constant = false;
      bool rhs_has_variable = false;
      for (const auto& p : rule.rhs_patterns()) {
        (p.is_constant() ? rhs_has_constant : rhs_has_variable) = true;
      }
      if (rhs_has_constant) DetectCfdConstants(data, rule, rule_index, &out);
      if (rhs_has_variable) {
        DetectGrouped(data, rule, rule_index, /*require_all_constants=*/true, &out);
      }
      break;
    }
    case RuleKind::kDc:
      if (rule.IndexCompatible()) {
        // The equality/disequality class admits hash-based detection.
        DetectGrouped(data, rule, rule_index, /*require_all_constants=*/false, &out);
      } else {
        DetectDcPairwise(data, rule, rule_index, &out);
      }
      break;
  }
  return out;
}

std::vector<Violation> FindAllViolations(const Dataset& data, const RuleSet& rules) {
  std::vector<Violation> out;
  for (size_t i = 0; i < rules.size(); ++i) {
    auto found = FindViolations(data, rules.rule(i), i);
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

std::vector<std::vector<bool>> ViolationCellMask(const Dataset& data,
                                                 const RuleSet& rules) {
  std::vector<std::vector<bool>> mask(data.num_rows(),
                                      std::vector<bool>(data.num_attrs(), false));
  for (const Violation& v : FindAllViolations(data, rules)) {
    for (TupleId tid : v.tuples) {
      // Only the cells the violation manifests on (the result part) are
      // flagged: reason-part errors form new keys and violate nothing —
      // the qualitative-detection blind spot Example 1 of the paper
      // illustrates with the "DOTH" typo.
      for (AttrId a : v.attrs) mask[tid][static_cast<size_t>(a)] = true;
    }
  }
  return mask;
}

}  // namespace mlnclean
