// Violation detection: finds the tuples/cells that breach a constraint.
// Used by tests, by the HoloClean-style baseline's detector, and for
// schema-level error accounting.

#ifndef MLNCLEAN_RULES_VIOLATION_H_
#define MLNCLEAN_RULES_VIOLATION_H_

#include <cstddef>
#include <vector>

#include "rules/constraint.h"

namespace mlnclean {

/// One detected inconsistency: the set of tuples that jointly violate the
/// rule (2+ for FD/DC conflicts, 1 for constant-CFD mismatches) and the
/// attributes implicated (the rule's result part).
struct Violation {
  size_t rule_index = 0;
  std::vector<TupleId> tuples;
  std::vector<AttrId> attrs;
};

/// Finds all violations of `rule` in `data`. For FD-style rules a single
/// Violation covers one conflicting reason-group (all its tuples).
std::vector<Violation> FindViolations(const Dataset& data, const Constraint& rule,
                                      size_t rule_index = 0);

/// Finds violations of every rule in the set.
std::vector<Violation> FindAllViolations(const Dataset& data, const RuleSet& rules);

/// Per-cell mask: mask[tid][attr] is true when the cell participates in at
/// least one violation (the qualitative "where might errors hide" signal).
std::vector<std::vector<bool>> ViolationCellMask(const Dataset& data,
                                                 const RuleSet& rules);

}  // namespace mlnclean

#endif  // MLNCLEAN_RULES_VIOLATION_H_
