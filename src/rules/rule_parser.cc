#include "rules/rule_parser.h"

#include <cctype>

#include "common/string_util.h"

namespace mlnclean {

namespace {

// Splits "lhs -> rhs" around the first "->" not inside quotes.
Status SplitArrow(std::string_view body, std::string_view* lhs, std::string_view* rhs) {
  bool in_quotes = false;
  for (size_t i = 0; i + 1 < body.size(); ++i) {
    char c = body[i];
    if (c == '"') in_quotes = !in_quotes;
    if (!in_quotes && c == '-' && body[i + 1] == '>') {
      *lhs = TrimView(body.substr(0, i));
      *rhs = TrimView(body.substr(i + 2));
      return Status::OK();
    }
  }
  return Status::Invalid("rule body lacks '->': " + std::string(body));
}

// Splits on commas outside quotes, trimming each piece.
std::vector<std::string> SplitTopLevel(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  for (char c : s) {
    if (c == '"') {
      in_quotes = !in_quotes;
      cur += c;
    } else if (c == ',' && !in_quotes) {
      out.push_back(Trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(Trim(cur));
  return out;
}

// Strips surrounding double quotes if present, unescaping doubled quotes
// ('""' -> '"') inside the quoted body — the inverse of QuoteRuleToken.
std::string Unquote(std::string_view s) {
  s = TrimView(s);
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    std::string_view body = s.substr(1, s.size() - 2);
    std::string out;
    out.reserve(body.size());
    for (size_t i = 0; i < body.size(); ++i) {
      out += body[i];
      if (body[i] == '"' && i + 1 < body.size() && body[i + 1] == '"') ++i;
    }
    return out;
  }
  return std::string(s);
}

Result<std::vector<AttrId>> ParseAttrList(const Schema& schema, std::string_view s) {
  std::vector<AttrId> out;
  for (const std::string& item : SplitTopLevel(s)) {
    if (item.empty()) return Status::Invalid("empty attribute in rule");
    MLN_ASSIGN_OR_RETURN(AttrId id, schema.Find(Unquote(item)));
    out.push_back(id);
  }
  return out;
}

Result<std::vector<CfdPattern>> ParsePatternList(const Schema& schema,
                                                 std::string_view s) {
  std::vector<CfdPattern> out;
  for (const std::string& item : SplitTopLevel(s)) {
    if (item.empty()) return Status::Invalid("empty pattern in CFD");
    size_t eq = std::string_view::npos;
    bool in_quotes = false;
    for (size_t i = 0; i < item.size(); ++i) {
      if (item[i] == '"') in_quotes = !in_quotes;
      if (item[i] == '=' && !in_quotes) {
        eq = i;
        break;
      }
    }
    CfdPattern p;
    if (eq == std::string_view::npos) {
      MLN_ASSIGN_OR_RETURN(p.attr, schema.Find(Unquote(Trim(item))));
      p.constant = std::nullopt;
    } else {
      MLN_ASSIGN_OR_RETURN(p.attr, schema.Find(Unquote(Trim(item.substr(0, eq)))));
      std::string_view raw = TrimView(std::string_view(item).substr(eq + 1));
      if (raw == "_") {
        // Only a *bare* underscore is the wildcard; a quoted "_" is the
        // literal constant (QuoteRuleToken always quotes it).
        p.constant = std::nullopt;
      } else {
        p.constant = Unquote(raw);
      }
    }
    out.push_back(std::move(p));
  }
  return out;
}

Result<PredOp> ParseOp(std::string_view s) {
  if (s == "=") return PredOp::kEq;
  if (s == "!=" || s == "<>") return PredOp::kNeq;
  if (s == "<") return PredOp::kLt;
  if (s == "<=") return PredOp::kLeq;
  if (s == ">") return PredOp::kGt;
  if (s == ">=") return PredOp::kGeq;
  return Status::Invalid("unknown predicate operator: " + std::string(s));
}

// Parses "Attr(t1) OP Attr(t2)".
Result<DcPredicate> ParseDcPredicate(const Schema& schema, std::string_view s) {
  s = TrimView(s);
  auto parse_side = [&schema](std::string_view side,
                              std::string_view tvar) -> Result<AttrId> {
    side = TrimView(side);
    size_t open = side.find('(');
    if (open == std::string_view::npos || side.back() != ')') {
      return Status::Invalid("DC term must look like Attr(t1): " + std::string(side));
    }
    std::string_view var = TrimView(side.substr(open + 1, side.size() - open - 2));
    if (var != tvar) {
      return Status::Invalid("expected tuple variable " + std::string(tvar) +
                             " in DC term: " + std::string(side));
    }
    return schema.Find(TrimView(side.substr(0, open)));
  };
  // Find the operator: first of <=, >=, !=, <>, =, <, > outside parens.
  size_t op_pos = std::string_view::npos;
  size_t op_len = 0;
  int depth = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (depth != 0) continue;
    if (c == '<' || c == '>' || c == '!' || c == '=') {
      op_pos = i;
      op_len = (i + 1 < s.size() && s[i + 1] == '=') ? 2 : 1;
      if (c == '<' && i + 1 < s.size() && s[i + 1] == '>') op_len = 2;
      break;
    }
  }
  if (op_pos == std::string_view::npos) {
    return Status::Invalid("DC predicate lacks an operator: " + std::string(s));
  }
  MLN_ASSIGN_OR_RETURN(PredOp op, ParseOp(s.substr(op_pos, op_len)));
  DcPredicate pred;
  pred.op = op;
  MLN_ASSIGN_OR_RETURN(pred.left_attr, parse_side(s.substr(0, op_pos), "t1"));
  MLN_ASSIGN_OR_RETURN(pred.right_attr, parse_side(s.substr(op_pos + op_len), "t2"));
  return pred;
}

Result<Constraint> ParseDc(const Schema& schema, std::string_view body) {
  body = TrimView(body);
  if (!StartsWith(body, "!(") || !EndsWith(body, ")")) {
    return Status::Invalid("DC body must look like !(p1 & p2 & ...): " +
                           std::string(body));
  }
  std::string_view inner = body.substr(2, body.size() - 3);
  std::vector<DcPredicate> preds;
  size_t start = 0;
  int depth = 0;
  for (size_t i = 0; i <= inner.size(); ++i) {
    if (i < inner.size() && inner[i] == '(') ++depth;
    if (i < inner.size() && inner[i] == ')') --depth;
    bool split = (i == inner.size()) || (inner[i] == '&' && depth == 0);
    if (!split) continue;
    std::string_view piece = TrimView(inner.substr(start, i - start));
    if (!piece.empty()) {
      MLN_ASSIGN_OR_RETURN(DcPredicate p, ParseDcPredicate(schema, piece));
      preds.push_back(p);
    }
    start = i + 1;
  }
  return Constraint::MakeDc(schema, std::move(preds));
}

}  // namespace

std::string QuoteRuleToken(std::string_view token) {
  // Quote whenever any character could collide with DSL syntax — list and
  // pattern separators (',', '='), the arrow ('-', '>'), DC syntax
  // ('&', '(', ')', '<', '!'), comments ('#'), quotes — or when trimming
  // would change the token (edge whitespace, empty), or when a bare token
  // would read as the wildcard ("_").
  bool needs_quotes = token.empty() || token == "_";
  if (!needs_quotes) {
    for (char c : token) {
      if (c == ',' || c == '"' || c == '-' || c == '>' || c == '=' || c == '&' ||
          c == '(' || c == ')' || c == '<' || c == '!' || c == '#' || c == ':') {
        needs_quotes = true;
        break;
      }
    }
    if (std::isspace(static_cast<unsigned char>(token.front())) ||
        std::isspace(static_cast<unsigned char>(token.back()))) {
      needs_quotes = true;
    }
  }
  if (!needs_quotes) return std::string(token);
  std::string out = "\"";
  for (char c : token) {
    out += c;
    if (c == '"') out += '"';
  }
  out += '"';
  return out;
}

Result<Constraint> ParseRule(const Schema& schema, std::string_view text) {
  std::string_view line = TrimView(text);
  size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    return Status::Invalid("rule must start with 'FD:', 'CFD:' or 'DC:': " +
                           std::string(line));
  }
  std::string kind = ToLower(TrimView(line.substr(0, colon)));
  std::string_view body = TrimView(line.substr(colon + 1));
  if (kind == "fd") {
    std::string_view lhs, rhs;
    MLN_RETURN_NOT_OK(SplitArrow(body, &lhs, &rhs));
    MLN_ASSIGN_OR_RETURN(std::vector<AttrId> l, ParseAttrList(schema, lhs));
    MLN_ASSIGN_OR_RETURN(std::vector<AttrId> r, ParseAttrList(schema, rhs));
    return Constraint::MakeFd(schema, std::move(l), std::move(r));
  }
  if (kind == "cfd") {
    std::string_view lhs, rhs;
    MLN_RETURN_NOT_OK(SplitArrow(body, &lhs, &rhs));
    MLN_ASSIGN_OR_RETURN(std::vector<CfdPattern> l, ParsePatternList(schema, lhs));
    MLN_ASSIGN_OR_RETURN(std::vector<CfdPattern> r, ParsePatternList(schema, rhs));
    return Constraint::MakeCfd(schema, std::move(l), std::move(r));
  }
  if (kind == "dc") {
    return ParseDc(schema, body);
  }
  return Status::Invalid("unknown rule kind: " + kind);
}

Result<RuleSet> ParseRules(const Schema& schema, std::string_view text) {
  RuleSet set(schema);
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    start = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    line = TrimView(line);
    if (line.empty() || line.front() == '#') continue;
    MLN_ASSIGN_OR_RETURN(Constraint rule, ParseRule(schema, line));
    set.Add(std::move(rule));
  }
  return set;
}

}  // namespace mlnclean
