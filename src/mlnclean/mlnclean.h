// Umbrella header: the public API of the MLNClean library.
//
// MLNClean is a hybrid data-cleaning framework on top of Markov logic
// networks (Gao et al.): integrity constraints (FDs, CFDs, DCs) are
// softened into weighted MLN rules, grounded over the dirty data, indexed
// in a two-layer structure, and cleaned in two stages (per-rule data
// versions via AGP + RSC, then cross-rule fusion via FSCR).
//
// Quick start — compile a model once, serve datasets through sessions:
//
//   #include "mlnclean/mlnclean.h"
//   using namespace mlnclean;
//
//   Dataset dirty = *Dataset::FromCsvFile("hospital.csv");
//   RuleSet rules = *ParseRules(dirty.schema(),
//                               "FD: City -> State\n"
//                               "CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400\n");
//   CleaningEngine engine;
//   CleanModel model = *engine.Compile(dirty.schema(), rules);
//   CleanResult result = *model.Clean(dirty);
//   // result.deduped is the clean dataset.
//
// Serving micro-batches against one prepared model amortizes rule
// compilation and weight learning (model.Warm(sample) fills the Eq. 6
// weight store; sessions with reuse_model_weights skip the learner), and
// staged sessions add progress callbacks and cooperative cancellation:
//
//   CleanSession session = model.NewSession(batch, options);
//   session.RunUntil(Stage::kLearn);   // inspect, then
//   session.Resume();                  // finish; or cancel via CancelToken
//
// Models outlive their process: Save writes a versioned binary snapshot
// (schema, rules, options, and the warmed weight store with stable γ ids)
// and Load rebuilds a model that serves bit-identically — compile and
// warm once on a builder box, fan out to N serving workers:
//
//   std::ofstream out("model.bin", std::ios::binary);
//   MLN_RETURN_NOT_OK(model.Save(out));
//   // ... in the serving process:
//   std::ifstream in("model.bin", std::ios::binary);
//   MLN_ASSIGN_OR_RETURN(CleanModel served, CleaningEngine().Load(in));
//   CleanResult result = *served.Clean(batch, serve_options);
//
// The same flow is scriptable via the tools/mlnclean_model CLI
// (save / inspect / serve); format and version policy live in
// cleaning/model_io.h and docs/snapshot_format.md. Corrupt or truncated
// snapshots are rejected with Status kInvalid, never undefined behaviour.
//
// The deprecated MlnCleanPipeline facade (one-shot Clean per call) keeps
// working for one release. Implementation utilities (thread pool, timers,
// string/random helpers) moved to "mlnclean/internal.h".

#ifndef MLNCLEAN_MLNCLEAN_H_
#define MLNCLEAN_MLNCLEAN_H_

#include "baseline/holoclean.h"
#include "cleaning/agp.h"
#include "cleaning/dedup.h"
#include "cleaning/engine.h"
#include "cleaning/fscr.h"
#include "cleaning/model_io.h"
#include "cleaning/options.h"
#include "cleaning/pipeline.h"
#include "cleaning/report.h"
#include "cleaning/rsc.h"
#include "common/cancellation.h"
#include "common/csv.h"
#include "common/distance.h"
#include "common/result.h"
#include "common/status.h"
#include "datagen/car.h"
#include "datagen/hospital.h"
#include "datagen/sample.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "dataset/dataset.h"
#include "dataset/schema.h"
#include "distributed/distributed_pipeline.h"
#include "distributed/partitioner.h"
#include "errorgen/injector.h"
#include "eval/component_metrics.h"
#include "eval/metrics.h"
#include "index/mln_index.h"
#include "index/piece.h"
#include "index/weight_merge.h"
#include "mln/gibbs.h"
#include "mln/ground_rule.h"
#include "mln/network.h"
#include "mln/walksat.h"
#include "mln/weight_learner.h"
#include "rules/constraint.h"
#include "rules/rule_parser.h"
#include "rules/violation.h"

#endif  // MLNCLEAN_MLNCLEAN_H_
