// Umbrella header: the public API of the MLNClean library.
//
// MLNClean is a hybrid data-cleaning framework on top of Markov logic
// networks (Gao et al.): integrity constraints (FDs, CFDs, DCs) are
// softened into weighted MLN rules, grounded over the dirty data, indexed
// in a two-layer structure, and cleaned in two stages (per-rule data
// versions via AGP + RSC, then cross-rule fusion via FSCR).
//
// Quick start — for multi-batch workloads, compile a model once and put a
// CleanServer in front of it; batches are submitted asynchronously, run
// concurrently on one shared executor, and are harvested through
// future-style tickets:
//
//   #include "mlnclean/mlnclean.h"
//   using namespace mlnclean;
//
//   RuleSet rules = *ParseRules(schema,
//                               "FD: City -> State\n"
//                               "CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400\n");
//   CleanModel model = *CleaningEngine().Compile(schema, rules);
//   CleanServer server = *CleanServer::Create(model);
//
//   std::vector<CleanTicket> tickets;
//   for (const Dataset& batch : batches) {
//     auto ticket = server.Submit(batch);       // non-blocking, FIFO
//     if (!ticket.ok()) { /* kUnavailable: queue full, shed or retry */ }
//     tickets.push_back(*ticket);
//   }
//   for (CleanTicket& t : tickets) {
//     CleanResult result = *t.Take();           // result.deduped is clean
//   }
//
// Tickets support TryGet() polling, cooperative Cancel(), and per-job
// deadlines (SessionOptions::deadline, enforced between blocks/shards —
// an expired job reports kDeadlineExceeded and its input is untouched);
// server.Stats() exposes queue depth and cumulative per-stage seconds.
// Serving K sessions concurrently is bit-identical to K sequential runs
// (see cleaning/server.h). For a single one-off batch, skip the server:
//
//   CleanResult result = *CleaningEngine(options).Clean(dirty, rules);
//
// Sessions remain the streaming/staged core under both paths: Warm /
// reuse_model_weights amortize weight learning across micro-batches
// (CleaningOptions::weight_half_life_batches ages the store for drifting
// streams), staged sessions add per-stage and intra-stage progress
// callbacks plus cancellation:
//
//   CleanSession session = model.NewSession(batch, options);
//   session.RunUntil(Stage::kLearn);   // inspect, then
//   session.Resume();                  // finish; or cancel via CancelToken
//
// One growing table instead of independent batches? An incremental
// session owns the accumulation and re-grounds only appended rows; each
// Resume is bit-identical to a cold run over everything so far:
//
//   CleanSession stream = model.NewIncrementalSession(options);
//   for (const Dataset& batch : ticks) {
//     MLN_RETURN_NOT_OK(stream.AppendRows(batch)); // suffix-only re-ground
//     MLN_RETURN_NOT_OK(stream.Resume());          // clean the accumulation
//   }                                  // stream.cleaned() covers all rows
//
// model.Save(out, stream.base_index(), stream.data().num_rows()) writes
// the resume point into the snapshot (v5), and LoadWithIndex +
// ResumeIncrementalSession continue the stream in another process; a
// CleanServer routes stream submissions through a strict-FIFO lane via
// SessionOptions::incremental. Contract and trade-offs: docs/streaming.md.
//
// Models outlive their process: Save writes a versioned binary snapshot
// (schema, rules, options, and the warmed weight store with stable γ ids)
// and Load rebuilds a model that serves bit-identically — compile and
// warm once on a builder box, fan out to N serving workers:
//
//   std::ofstream out("model.bin", std::ios::binary);
//   MLN_RETURN_NOT_OK(model.Save(out));
//   // ... in the serving process:
//   std::ifstream in("model.bin", std::ios::binary);
//   MLN_ASSIGN_OR_RETURN(CleanModel served, CleaningEngine().Load(in));
//   CleanServer server = *CleanServer::Create(served, {&my_executor});
//
// Out of room on one server? A CleanFleet serves the same logical table
// from N shards: a deterministic ShardRouter (centroids fixed at build,
// persisted via Encode/Decode) splits each batch, every shard runs on its
// own CleanServer to Stage::kLearn, the Eq. 6 cross-shard weight merge
// runs at the barrier, and the ticket reassembles the shards in order —
// a 1-shard fleet is bit-identical to a plain server (docs/fleet.md):
//
//   ShardRouter router = *ShardRouter::Build(reference, {.num_shards = 3});
//   CleanFleet fleet = *CleanFleet::Create(model, router, {&my_executor});
//   FleetTicket ticket = *fleet.Submit(batch);
//   CleanResult result = *ticket.Take();
//
// The same flow is scriptable via the tools/mlnclean_model CLI
// (save / inspect / serve, with `serve --jobs N` driving batches through
// a CleanServer and `serve --shards N` through a CleanFleet); format and
// version policy live in cleaning/model_io.h
// and docs/snapshot_format.md. Malformed snapshots are rejected with
// Status kInvalid, torn/bit-rotted ones with kCorruption (per-section
// checksums) — never undefined behaviour; CleanModel::SaveToFile writes
// them crash-safely (temp file + fsync + atomic rename). The serving
// architecture — executor model, admission, deadlines — is documented in
// docs/serving.md, the robustness contract (error taxonomy, retries,
// quarantine, failpoints) in docs/robustness.md.
//
// No hand-written rules? Mine them. DiscoverRules proposes approximate
// FDs and constant CFDs straight from the dirty table (TANE-style
// lattice over the dictionary-encoded columns), measures similarity
// thresholds as matching dependencies, trial-warms the candidates
// through a compiled model, and keeps the rules whose γ groups
// concentrate learned weight — survivors come back as a ready-to-compile
// RuleSet whose canonical DSL round-trips through ParseRules:
//
//   DiscoveryResult mined = *DiscoverRules(dirty);
//   CleanModel model = *CleaningEngine().Compile(dirty.schema(), mined.rules);
//   for (const MinedRuleInfo& r : mined.mined)   // measures per candidate
//     std::printf("%s sup=%.2f conf=%.2f mln=%.2f\n", r.text.c_str(),
//                 r.support, r.confidence, r.mln_score);
//
// Knobs, the algorithm, and threshold guidance live in DiscoveryOptions
// and docs/discovery.md; `mlnclean_model discover` is the CLI face.
//
// The MlnCleanPipeline facade deprecated in the engine release has been
// removed; CleaningEngine::Clean is the one-shot equivalent.
// Implementation utilities (executors, thread pool, timers, string/random
// helpers) live in "mlnclean/internal.h".

#ifndef MLNCLEAN_MLNCLEAN_H_
#define MLNCLEAN_MLNCLEAN_H_

#include "baseline/holoclean.h"
#include "cleaning/agp.h"
#include "cleaning/dedup.h"
#include "cleaning/engine.h"
#include "cleaning/fscr.h"
#include "cleaning/model_io.h"
#include "cleaning/options.h"
#include "cleaning/report.h"
#include "cleaning/rsc.h"
#include "cleaning/server.h"
#include "common/cancellation.h"
#include "common/csv.h"
#include "common/distance.h"
#include "common/failpoint.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "datagen/car.h"
#include "datagen/hospital.h"
#include "datagen/sample.h"
#include "datagen/tpch.h"
#include "datagen/workload.h"
#include "dataset/dataset.h"
#include "dataset/schema.h"
#include "discovery/discovery.h"
#include "distributed/distributed_pipeline.h"
#include "distributed/partitioner.h"
#include "errorgen/injector.h"
#include "fleet/fleet.h"
#include "fleet/shard_router.h"
#include "eval/component_metrics.h"
#include "eval/metrics.h"
#include "index/mln_index.h"
#include "index/piece.h"
#include "index/weight_merge.h"
#include "mln/gibbs.h"
#include "mln/ground_rule.h"
#include "mln/network.h"
#include "mln/walksat.h"
#include "mln/weight_learner.h"
#include "rules/constraint.h"
#include "rules/rule_parser.h"
#include "rules/violation.h"

#endif  // MLNCLEAN_MLNCLEAN_H_
