// Implementation utilities that used to leak through the public umbrella
// header: the worker pool, wall-clock timers, string helpers, and the
// deterministic RNG. They are stable enough to build tools against, but
// they are not part of the cleaning API surface — include this header (or
// the specific ones below) explicitly when you need them.

#ifndef MLNCLEAN_MLNCLEAN_INTERNAL_H_
#define MLNCLEAN_MLNCLEAN_INTERNAL_H_

#include "common/executor.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"

#endif  // MLNCLEAN_MLNCLEAN_INTERNAL_H_
