#include "index/mln_index.h"

#include <algorithm>

#include "common/string_util.h"
#include "mln/ground_rule.h"

namespace mlnclean {

size_t Group::TupleCount() const {
  size_t n = 0;
  for (const auto& p : pieces) n += p.support();
  return n;
}

const Piece& Group::Star() const {
  const Piece* best = &pieces.front();
  for (const auto& p : pieces) {
    if (p.support() > best->support()) best = &p;
  }
  return *best;
}

Piece& Group::Star() {
  return const_cast<Piece&>(static_cast<const Group*>(this)->Star());
}

size_t Block::TupleCount() const {
  size_t n = 0;
  for (const auto& g : groups) n += g.TupleCount();
  return n;
}

size_t Block::PieceCount() const {
  size_t n = 0;
  for (const auto& g : groups) n += g.pieces.size();
  return n;
}

std::string MlnIndex::KeyOf(const std::vector<Value>& values) {
  return JoinKey(values);
}

Result<MlnIndex> MlnIndex::Build(const Dataset& data, const RuleSet& rules,
                                 const ExecContext& ctx) {
  MlnIndex index;
  index.blocks_.resize(rules.size());
  index.group_maps_.resize(rules.size());
  // Each rule grounds and groups independently into its own slot; errors
  // are surfaced in rule order so the result is thread-count-agnostic.
  std::vector<Status> statuses(rules.size());
  ParallelFor(rules.size(), ctx, [&](size_t ri) {
    if (ctx.Stopped()) return;
    const Constraint& rule = rules.rule(ri);
    // Grounding yields the distinct γs with their supporting tuples.
    Result<std::vector<GroundRule>> grounds = GroundConstraint(data, rule);
    if (!grounds.ok()) {
      statuses[ri] = grounds.status();
      return;
    }
    Block& block = index.blocks_[ri];
    block.rule_index = ri;
    auto& group_map = index.group_maps_[ri];
    // Groups dedup on reason ids (γs carry them from grounding); the
    // string key of the lookup map is built once per final group, for the
    // FindGroup/ReindexBlock facade.
    std::unordered_map<uint64_t, std::vector<size_t>> by_reason_ids;
    for (auto& g : grounds.ValueUnsafe()) {
      auto& bucket = by_reason_ids[HashValueIds(g.reason_ids)];
      size_t group_idx = block.groups.size();
      for (size_t gi : bucket) {
        if (block.groups[gi].pieces.front().reason_ids == g.reason_ids) {
          group_idx = gi;
          break;
        }
      }
      if (group_idx == block.groups.size()) {
        bucket.push_back(group_idx);
        group_map.emplace(KeyOf(g.reason), group_idx);
        Group group;
        group.key = g.reason;
        block.groups.push_back(std::move(group));
      }
      Piece piece;
      piece.reason = std::move(g.reason);
      piece.result = std::move(g.result);
      piece.tuples = std::move(g.tuples);
      piece.reason_ids = std::move(g.reason_ids);
      piece.result_ids = std::move(g.result_ids);
      block.groups[group_idx].pieces.push_back(std::move(piece));
    }
    ctx.Tick(1);
  });
  if (ctx.Stopped()) return ctx.StopStatus("index build");
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return index;
}

Status MlnIndex::AppendRows(const Dataset& data, const RuleSet& rules,
                            size_t first_row, const ExecContext& ctx) {
  if (blocks_.size() != rules.size()) {
    return Status::Invalid("index has " + std::to_string(blocks_.size()) +
                           " blocks for a " + std::to_string(rules.size()) +
                           "-rule set");
  }
  if (first_row > data.num_rows()) {
    return Status::Invalid("append start " + std::to_string(first_row) +
                           " is past the dataset's " +
                           std::to_string(data.num_rows()) + " rows");
  }
  // Rules merge independently into their own blocks, like Build; only the
  // new rows are ground.
  std::vector<Status> statuses(rules.size());
  ParallelFor(rules.size(), ctx, [&](size_t ri) {
    if (ctx.Stopped()) return;
    const Constraint& rule = rules.rule(ri);
    Result<std::vector<GroundRule>> grounds = GroundConstraintRange(
        data, rule, static_cast<TupleId>(first_row),
        static_cast<TupleId>(data.num_rows()));
    if (!grounds.ok()) {
      statuses[ri] = grounds.status();
      return;
    }
    Block& block = blocks_[ri];
    auto& group_map = group_maps_[ri];
    for (auto& g : grounds.ValueUnsafe()) {
      // Touch rule: locate the γ's group by reason key; a miss is a
      // brand-new reason binding, appended where a cold build would have
      // first seen it (the end of the block).
      size_t group_idx = 0;
      auto it = group_map.find(KeyOf(g.reason));
      if (it != group_map.end()) {
        group_idx = it->second;
      } else {
        group_idx = block.groups.size();
        group_map.emplace(KeyOf(g.reason), group_idx);
        Group group;
        group.key = g.reason;
        block.groups.push_back(std::move(group));
      }
      Group& group = block.groups[group_idx];
      Piece* match = nullptr;
      for (Piece& piece : group.pieces) {
        if (piece.reason_ids == g.reason_ids &&
            piece.result_ids == g.result_ids) {
          match = &piece;
          break;
        }
      }
      if (match != nullptr) {
        // Existing γ gained members: the new tids all exceed the old ones,
        // so appending keeps the ascending order a cold build produces.
        match->tuples.insert(match->tuples.end(), g.tuples.begin(),
                             g.tuples.end());
      } else {
        Piece piece;
        piece.reason = std::move(g.reason);
        piece.result = std::move(g.result);
        piece.tuples = std::move(g.tuples);
        piece.reason_ids = std::move(g.reason_ids);
        piece.result_ids = std::move(g.result_ids);
        group.pieces.push_back(std::move(piece));
      }
    }
    ctx.Tick(1);
  });
  if (ctx.Stopped()) return ctx.StopStatus("index append");
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Status MlnIndex::Validate(const Dataset& data, const RuleSet& rules) const {
  if (blocks_.size() != rules.size()) {
    return Status::Invalid("index has " + std::to_string(blocks_.size()) +
                           " blocks for a " + std::to_string(rules.size()) +
                           "-rule set");
  }
  const auto num_rows = static_cast<TupleId>(data.num_rows());
  for (size_t ri = 0; ri < blocks_.size(); ++ri) {
    const Block& block = blocks_[ri];
    const std::string where = "block " + std::to_string(ri);
    if (block.rule_index != ri) {
      return Status::Invalid(where + " claims rule index " +
                             std::to_string(block.rule_index));
    }
    const Constraint& rule = rules.rule(ri);
    const auto& reason_attrs = rule.reason_attrs();
    const auto& result_attrs = rule.result_attrs();
    for (const Group& group : block.groups) {
      if (group.pieces.empty()) {
        return Status::Invalid(where + " has an empty group");
      }
      if (group.key != group.pieces.front().reason) {
        return Status::Invalid(where +
                               " group key does not match its first γ "
                               "(not a pre-AGP index)");
      }
      for (const Piece& piece : group.pieces) {
        if (piece.reason.size() != reason_attrs.size() ||
            piece.result.size() != result_attrs.size() || !piece.has_ids()) {
          return Status::Invalid(where + " has a γ whose arity or id mirror "
                                         "does not match its rule");
        }
        auto check_values = [&](const std::vector<AttrId>& attrs,
                                const std::vector<Value>& values,
                                const std::vector<ValueId>& ids) -> Status {
          for (size_t p = 0; p < attrs.size(); ++p) {
            const ValueDict& dict = data.dict(attrs[p]);
            if (ids[p] >= dict.size() || dict.value(ids[p]) != values[p]) {
              return Status::Invalid(
                  where + " has a γ whose ids disagree with the dataset's "
                          "dictionaries (wrong dataset for this index?)");
            }
          }
          return Status::OK();
        };
        MLN_RETURN_NOT_OK(check_values(reason_attrs, piece.reason, piece.reason_ids));
        MLN_RETURN_NOT_OK(check_values(result_attrs, piece.result, piece.result_ids));
        if (piece.tuples.empty()) {
          return Status::Invalid(where + " has a γ with no supporting tuples");
        }
        TupleId prev = -1;
        for (TupleId tid : piece.tuples) {
          if (tid <= prev || tid >= num_rows) {
            return Status::Invalid(
                where + " has a γ with out-of-bounds or unsorted tuple ids "
                        "(index covers more rows than the dataset?)");
          }
          prev = tid;
        }
      }
    }
  }
  return Status::OK();
}

MlnIndex MlnIndex::FromBlocks(std::vector<Block> blocks) {
  MlnIndex index;
  index.blocks_ = std::move(blocks);
  index.group_maps_.resize(index.blocks_.size());
  for (size_t bi = 0; bi < index.blocks_.size(); ++bi) index.ReindexBlock(bi);
  return index;
}

Result<size_t> MlnIndex::FindGroup(size_t block_index,
                                   const std::vector<Value>& key) const {
  const auto& map = group_maps_[block_index];
  auto it = map.find(KeyOf(key));
  if (it == map.end()) {
    return Status::NotFound("no group for the given reason key");
  }
  return it->second;
}

void MlnIndex::LearnBlockWeights(Block* block, const WeightLearnerOptions& options) {
  // Flatten the block's γs into the learner's count/group representation.
  std::vector<double> counts;
  std::vector<std::vector<size_t>> groups;
  std::vector<Piece*> pieces;
  for (auto& group : block->groups) {
    std::vector<size_t> member_ids;
    member_ids.reserve(group.pieces.size());
    for (auto& piece : group.pieces) {
      member_ids.push_back(counts.size());
      counts.push_back(static_cast<double>(piece.support()));
      pieces.push_back(&piece);
    }
    groups.push_back(std::move(member_ids));
  }
  // Probability-scale weights: comparable across groups and blocks, which
  // FSCR's f-score products and the distributed Eq. 6 averaging require.
  std::vector<double> weights = LearnGroupProbabilities(counts, groups, options);
  for (size_t i = 0; i < pieces.size(); ++i) pieces[i]->weight = weights[i];
}

void MlnIndex::LearnWeights(const WeightLearnerOptions& options,
                            const ExecContext& ctx) {
  // Blocks are independent weight-learning problems; each task writes only
  // its own block's γ weights.
  ParallelFor(blocks_.size(), ctx, [&](size_t bi) {
    if (ctx.Stopped()) return;
    LearnBlockWeights(&blocks_[bi], options);
    ctx.Tick(1);
  });
}

void MlnIndex::AssignPriorWeights() {
  for (auto& block : blocks_) {
    std::vector<double> counts;
    std::vector<Piece*> pieces;
    for (auto& group : block.groups) {
      for (auto& piece : group.pieces) {
        counts.push_back(static_cast<double>(piece.support()));
        pieces.push_back(&piece);
      }
    }
    std::vector<double> prior = PriorWeights(counts);
    for (size_t i = 0; i < pieces.size(); ++i) pieces[i]->weight = prior[i];
  }
}

void MlnIndex::ReindexBlock(size_t block_index) {
  auto& map = group_maps_[block_index];
  map.clear();
  const Block& block = blocks_[block_index];
  for (size_t gi = 0; gi < block.groups.size(); ++gi) {
    map.emplace(KeyOf(block.groups[gi].key), gi);
  }
}

}  // namespace mlnclean
