#include "index/weight_merge.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace mlnclean {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, 4);
  out->append(bytes, 4);
}

uint32_t ReadU32(const std::string& s, size_t pos) {
  uint32_t v = 0;
  std::memcpy(&v, s.data() + pos, 4);
  return v;
}

}  // namespace

std::string GlobalWeightTable::PackKey(size_t rule_index,
                                       const std::vector<ValueId>& reason_ids,
                                       const std::vector<ValueId>& result_ids) {
  std::string key;
  key.reserve(8 + 4 * (reason_ids.size() + result_ids.size()));
  AppendU32(&key, static_cast<uint32_t>(rule_index));
  AppendU32(&key, static_cast<uint32_t>(reason_ids.size()));
  for (ValueId id : reason_ids) AppendU32(&key, id);
  for (ValueId id : result_ids) AppendU32(&key, id);
  return key;
}

namespace {

// Resolves one side's values to table ids via `lookup(attr, value)`; false
// when an arity mismatches or a value cannot be resolved.
template <typename LookupFn>
bool ResolveSide(const std::vector<AttrId>& attrs, const std::vector<Value>& values,
                 LookupFn lookup, std::vector<ValueId>* out) {
  if (attrs.size() != values.size()) return false;
  out->clear();
  out->reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    ValueId id = lookup(static_cast<size_t>(attrs[i]), values[i]);
    if (id == kInvalidValueId) return false;
    out->push_back(id);
  }
  return true;
}

}  // namespace

bool GlobalWeightTable::InternIds(const Constraint& rule,
                                  const std::vector<Value>& reason,
                                  const std::vector<Value>& result,
                                  std::vector<ValueId>* reason_ids,
                                  std::vector<ValueId>* result_ids) {
  auto intern = [this](size_t a, const Value& v) {
    return a < dicts_.size() ? dicts_[a].Intern(v) : kInvalidValueId;
  };
  return ResolveSide(rule.reason_attrs(), reason, intern, reason_ids) &&
         ResolveSide(rule.result_attrs(), result, intern, result_ids);
}

bool GlobalWeightTable::FindIds(const Constraint& rule,
                                const std::vector<Value>& reason,
                                const std::vector<Value>& result,
                                std::vector<ValueId>* reason_ids,
                                std::vector<ValueId>* result_ids) const {
  auto find = [this](size_t a, const Value& v) {
    return a < dicts_.size() ? dicts_[a].Find(v) : kInvalidValueId;
  };
  return ResolveSide(rule.reason_attrs(), reason, find, reason_ids) &&
         ResolveSide(rule.result_attrs(), result, find, result_ids);
}

void GlobalWeightTable::Accumulate(const MlnIndex& part_index, const RuleSet& rules) {
  if (dicts_.empty()) dicts_.resize(rules.schema().num_attrs());
  ++batches_;  // the decay clock; counted even with decay off so a
               // snapshot records how many batches ever contributed
  std::vector<ValueId> reason_ids, result_ids;
  for (const Block& block : part_index.blocks()) {
    if (block.rule_index >= rules.size()) continue;  // foreign index; skip
    const Constraint& rule = rules.rule(block.rule_index);
    for (const Group& group : block.groups) {
      for (const Piece& piece : group.pieces) {
        if (!InternIds(rule, piece.reason, piece.result, &reason_ids, &result_ids)) {
          continue;  // arity mismatch: γ not built from this rule set
        }
        Entry& entry = table_[PackKey(block.rule_index, reason_ids, result_ids)];
        // Lazy geometric aging: scale the mass stored Δ batches ago by
        // 2^(-Δ/H) before the new batch lands on top. Reads never need
        // the factor — within one entry it cancels in the Eq. 6 ratio
        // until new (undecayed) mass arrives, which is exactly when the
        // recency bias is supposed to show.
        if (half_life_ > 0 && entry.support != 0.0 &&
            entry.last_batch < batches_) {
          const double decay =
              std::exp2(-static_cast<double>(batches_ - entry.last_batch) /
                        static_cast<double>(half_life_));
          entry.weighted_sum *= decay;
          entry.support *= decay;
        }
        entry.last_batch = batches_;
        const double n = static_cast<double>(piece.support());
        entry.weighted_sum += n * piece.weight;
        entry.support += n;
      }
    }
  }
}

void GlobalWeightTable::Apply(MlnIndex* part_index, const RuleSet& rules) const {
  std::vector<ValueId> reason_ids, result_ids;
  for (Block& block : part_index->blocks()) {
    if (block.rule_index >= rules.size()) continue;
    const Constraint& rule = rules.rule(block.rule_index);
    for (Group& group : block.groups) {
      for (Piece& piece : group.pieces) {
        if (!FindIds(rule, piece.reason, piece.result, &reason_ids, &result_ids)) {
          continue;  // a value the table never saw: no merged weight
        }
        auto it = table_.find(PackKey(block.rule_index, reason_ids, result_ids));
        if (it != table_.end() && it->second.support > 0.0) {
          piece.weight = it->second.weighted_sum / it->second.support;
        }
      }
    }
  }
}

Result<double> GlobalWeightTable::Lookup(const RuleSet& rules, size_t rule_index,
                                         const std::vector<Value>& reason,
                                         const std::vector<Value>& result) const {
  if (rule_index >= rules.size()) {
    return Status::Invalid("Lookup: rule index " + std::to_string(rule_index) +
                           " outside the rule set");
  }
  std::vector<ValueId> reason_ids, result_ids;
  if (!FindIds(rules.rule(rule_index), reason, result, &reason_ids, &result_ids)) {
    return Status::NotFound("no merged weight for the given γ");
  }
  auto it = table_.find(PackKey(rule_index, reason_ids, result_ids));
  if (it == table_.end() || it->second.support <= 0.0) {
    return Status::NotFound("no merged weight for the given γ");
  }
  return it->second.weighted_sum / it->second.support;
}

void GlobalWeightTable::ForEachEntrySorted(
    const std::function<void(const EntryView&)>& fn) const {
  std::vector<const std::pair<const std::string, Entry>*> sorted;
  sorted.reserve(table_.size());
  for (const auto& kv : table_) sorted.push_back(&kv);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  EntryView view;
  for (const auto* kv : sorted) {
    const std::string& key = kv->first;
    const size_t num_ids = key.size() / 4 - 2;
    const size_t n_reason = ReadU32(key, 4);
    view.rule_index = ReadU32(key, 0);
    view.reason_ids.clear();
    view.result_ids.clear();
    for (size_t i = 0; i < num_ids; ++i) {
      ValueId id = ReadU32(key, 8 + 4 * i);
      (i < n_reason ? view.reason_ids : view.result_ids).push_back(id);
    }
    view.weighted_sum = kv->second.weighted_sum;
    view.support = kv->second.support;
    view.last_batch = kv->second.last_batch;
    fn(view);
  }
}

void GlobalWeightTable::RestoreDicts(std::vector<ValueDict> dicts) {
  dicts_ = std::move(dicts);
}

Status GlobalWeightTable::RestoreEntry(const RuleSet& rules, const EntryView& entry) {
  if (entry.rule_index >= rules.size()) {
    return Status::Invalid("weight entry references rule index " +
                           std::to_string(entry.rule_index) + " but the model has " +
                           std::to_string(rules.size()) + " rules");
  }
  const Constraint& rule = rules.rule(entry.rule_index);
  auto check = [&](const std::vector<AttrId>& attrs, const std::vector<ValueId>& ids,
                   const char* side) -> Status {
    if (attrs.size() != ids.size()) {
      return Status::Invalid(std::string("weight entry ") + side + " arity " +
                             std::to_string(ids.size()) + " does not match rule '" +
                             rule.name() + "' (" + std::to_string(attrs.size()) + ")");
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      const size_t a = static_cast<size_t>(attrs[i]);
      if (a >= dicts_.size() || ids[i] >= dicts_[a].size()) {
        return Status::Invalid(std::string("weight entry ") + side + " id " +
                               std::to_string(ids[i]) +
                               " outside attribute dictionary " + std::to_string(a));
      }
    }
    return Status::OK();
  };
  MLN_RETURN_NOT_OK(check(rule.reason_attrs(), entry.reason_ids, "reason"));
  MLN_RETURN_NOT_OK(check(rule.result_attrs(), entry.result_ids, "result"));
  Entry& e = table_[PackKey(entry.rule_index, entry.reason_ids, entry.result_ids)];
  e.weighted_sum = entry.weighted_sum;
  e.support = entry.support;
  e.last_batch = entry.last_batch;
  return Status::OK();
}

}  // namespace mlnclean
