#include "index/weight_merge.h"

namespace mlnclean {

std::string GlobalWeightTable::KeyOf(size_t rule_index,
                                     const std::vector<Value>& reason,
                                     const std::vector<Value>& result) {
  std::string key = std::to_string(rule_index);
  key += '\x1e';
  key += MlnIndex::KeyOf(reason);
  key += '\x1e';
  key += MlnIndex::KeyOf(result);
  return key;
}

void GlobalWeightTable::Accumulate(const MlnIndex& part_index) {
  for (const Block& block : part_index.blocks()) {
    for (const Group& group : block.groups) {
      for (const Piece& piece : group.pieces) {
        Entry& entry = table_[KeyOf(block.rule_index, piece.reason, piece.result)];
        const double n = static_cast<double>(piece.support());
        entry.weighted_sum += n * piece.weight;
        entry.support += n;
      }
    }
  }
}

void GlobalWeightTable::Apply(MlnIndex* part_index) const {
  for (Block& block : part_index->blocks()) {
    for (Group& group : block.groups) {
      for (Piece& piece : group.pieces) {
        auto it = table_.find(KeyOf(block.rule_index, piece.reason, piece.result));
        if (it != table_.end() && it->second.support > 0.0) {
          piece.weight = it->second.weighted_sum / it->second.support;
        }
      }
    }
  }
}

Result<double> GlobalWeightTable::Lookup(size_t rule_index,
                                         const std::vector<Value>& reason,
                                         const std::vector<Value>& result) const {
  auto it = table_.find(KeyOf(rule_index, reason, result));
  if (it == table_.end() || it->second.support <= 0.0) {
    return Status::NotFound("no merged weight for the given γ");
  }
  return it->second.weighted_sum / it->second.support;
}

}  // namespace mlnclean
