// Piece of data (γ, Section 4): the attribute values of one tuple with
// respect to one rule — reason-part values plus result-part values —
// together with the set of tuples exhibiting exactly those values.

#ifndef MLNCLEAN_INDEX_PIECE_H_
#define MLNCLEAN_INDEX_PIECE_H_

#include <string>
#include <vector>

#include "common/distance.h"
#include "common/distance_cache.h"
#include "dataset/dataset.h"

namespace mlnclean {

/// A γ: one distinct (reason, result) binding inside a block, its
/// supporting tuples, and its learned MLN weight.
struct Piece {
  std::vector<Value> reason;
  std::vector<Value> result;
  std::vector<TupleId> tuples;
  double weight = 0.0;

  /// Tuple support c(γ) (Eq. 4).
  size_t support() const { return tuples.size(); }

  /// All values, reason part first (the unit RSC compares and replaces).
  std::vector<Value> AllValues() const;

  /// Debug rendering, e.g. `{CT: DOTHAN, ST: AL}`.
  std::string ToString(const Schema& schema, const std::vector<AttrId>& reason_attrs,
                       const std::vector<AttrId>& result_attrs) const;
};

/// Distance between two γs: the sum of attribute-wise distances over
/// reason and result values (both γs must come from the same rule, so the
/// attribute lists align).
double PieceDistance(const Piece& a, const Piece& b, const DistanceFn& dist);

/// Interns a γ's reason+result values into `cache`, writing the ids into
/// `out` (cleared first; capacity is reused across calls).
void InternPieceValues(const Piece& piece, DistanceCache* cache,
                       std::vector<ValueId>* out);

/// Memoized counterpart of PieceDistance over interned value ids. Both id
/// vectors must come from same-rule γs (aligned attribute lists), which is
/// always the case inside one block — the only place caches live.
double CachedPieceDistance(const std::vector<ValueId>& a,
                           const std::vector<ValueId>& b, DistanceCache* cache);

/// PieceDistance with early abandon: stops accumulating attribute
/// distances once the running sum reaches `bound` and returns it (some
/// value >= bound). Nearest-neighbour scans that only keep the strict
/// minimum can pass their current best — abandoned candidates could never
/// have won, so the selected minimum is unchanged.
double PieceDistanceBounded(const Piece& a, const Piece& b, const DistanceFn& dist,
                            double bound);
double CachedPieceDistanceBounded(const std::vector<ValueId>& a,
                                  const std::vector<ValueId>& b,
                                  DistanceCache* cache, double bound);

}  // namespace mlnclean

#endif  // MLNCLEAN_INDEX_PIECE_H_
