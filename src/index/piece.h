// Piece of data (γ, Section 4): the attribute values of one tuple with
// respect to one rule — reason-part values plus result-part values —
// together with the set of tuples exhibiting exactly those values.
//
// Grounded pieces carry their values twice: as strings (for reports and
// cross-shard weight merging) and as the source dataset's dictionary ids.
// The stage-I distance scans compare ids first — equal ids are distance 0
// without touching value bytes — and key the optional per-attribute memo
// on id pairs.

#ifndef MLNCLEAN_INDEX_PIECE_H_
#define MLNCLEAN_INDEX_PIECE_H_

#include <string>
#include <vector>

#include "common/distance.h"
#include "common/distance_memo.h"
#include "dataset/dataset.h"

namespace mlnclean {

/// A γ: one distinct (reason, result) binding inside a block, its
/// supporting tuples, and its learned MLN weight. `reason_ids`/
/// `result_ids` mirror the value vectors as dictionary ids of the dataset
/// the γ was grounded over (empty on hand-built pieces, in which case the
/// distance paths fall back to plain string comparison).
struct Piece {
  std::vector<Value> reason;
  std::vector<Value> result;
  std::vector<TupleId> tuples;
  double weight = 0.0;
  std::vector<ValueId> reason_ids;
  std::vector<ValueId> result_ids;

  /// Tuple support c(γ) (Eq. 4).
  size_t support() const { return tuples.size(); }

  /// True when the id mirrors are populated for every value.
  bool has_ids() const {
    return reason_ids.size() == reason.size() && result_ids.size() == result.size();
  }

  /// All values, reason part first (the unit RSC compares and replaces).
  std::vector<Value> AllValues() const;

  /// Debug rendering, e.g. `{CT: DOTHAN, ST: AL}`.
  std::string ToString(const Schema& schema, const std::vector<AttrId>& reason_attrs,
                       const std::vector<AttrId>& result_attrs) const;
};

/// Distance between two γs: the sum of attribute-wise distances over
/// reason and result values (both γs must come from the same rule, so the
/// attribute lists align). Positions with equal dictionary ids cost an
/// integer compare, not a kernel call.
double PieceDistance(const Piece& a, const Piece& b, const DistanceFn& dist);

/// PieceDistance with early abandon: stops accumulating attribute
/// distances once the running sum reaches `bound` and returns it (some
/// value >= bound). Nearest-neighbour scans that only keep the strict
/// minimum can pass their current best — abandoned candidates could never
/// have won, so the selected minimum is unchanged.
double PieceDistanceBounded(const Piece& a, const Piece& b, const DistanceFn& dist,
                            double bound);

/// Per-attribute-position id-pair memos for one block task. Same-rule γs
/// align position-by-position, and each position draws from one
/// attribute's dictionary, so position p gets its own PairDistanceMemo.
/// Pieces without ids fall back to the unmemoized kernels.
class PieceDistanceMemo {
 public:
  explicit PieceDistanceMemo(const DistanceFn& dist) : dist_(&dist) {}

  double Distance(const Piece& a, const Piece& b);
  double DistanceBounded(const Piece& a, const Piece& b, double bound);

 private:
  const DistanceFn* dist_;
  std::vector<PairDistanceMemo> per_attr_;  // indexed by value position
};

}  // namespace mlnclean

#endif  // MLNCLEAN_INDEX_PIECE_H_
