// Global weight adjustment (Section 6, Eq. 6): a γ learned in several
// parts gets the support-weighted average
//     w(γ) = Σ_i n_i·w_i / Σ_i n_i
// of its per-part weights, so evidence from one part backs up γs that are
// under-supported in another. Backs both the distributed driver's global
// merge and the CleanModel weight store (it depends only on the index
// layer, which is why it lives here rather than under distributed/).

#ifndef MLNCLEAN_INDEX_WEIGHT_MERGE_H_
#define MLNCLEAN_INDEX_WEIGHT_MERGE_H_

#include <string>
#include <unordered_map>

#include "index/mln_index.h"

namespace mlnclean {

/// Accumulates per-part learned weights keyed by γ identity
/// (rule, reason values, result values) and hands back the Eq. 6 average.
class GlobalWeightTable {
 public:
  /// Folds in one part's post-learning index (call after weight learning,
  /// before RSC).
  void Accumulate(const MlnIndex& part_index);

  /// Overwrites every γ weight in `part_index` with its merged global
  /// weight. γs never seen by Accumulate keep their local weight.
  void Apply(MlnIndex* part_index) const;

  /// Merged weight of a γ, or NotFound.
  Result<double> Lookup(size_t rule_index, const std::vector<Value>& reason,
                        const std::vector<Value>& result) const;

  size_t size() const { return table_.size(); }

 private:
  struct Entry {
    double weighted_sum = 0.0;  // Σ n_i w_i
    double support = 0.0;       // Σ n_i
  };
  static std::string KeyOf(size_t rule_index, const std::vector<Value>& reason,
                           const std::vector<Value>& result);
  std::unordered_map<std::string, Entry> table_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_INDEX_WEIGHT_MERGE_H_
